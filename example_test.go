package bsrng_test

import (
	"fmt"
	"log"
	"math/rand"

	bsrng "repro"
)

// The basic use: a seeded, deterministic byte stream.
func ExampleNew() {
	g, err := bsrng.New(bsrng.MICKEY, 42)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 8)
	g.Read(buf)
	fmt.Printf("%x\n", buf)
	// Output: d6b4add6880fc536
}

// Seeding is reproducible: the receiver of paper §5.4 regenerates the
// identical sequence from the seed alone.
func ExampleNew_reproducible() {
	a, _ := bsrng.New(bsrng.GRAIN, 7)
	b, _ := bsrng.New(bsrng.GRAIN, 7)
	x := make([]byte, 16)
	y := make([]byte, 16)
	a.Read(x)
	b.Read(y)
	fmt.Println(string(fmt.Sprintf("%x", x)) == string(fmt.Sprintf("%x", y)))
	// Output: true
}

// The engines drive stdlib math/rand consumers through Source64.
func ExampleNewSource64() {
	src, err := bsrng.NewSource64(bsrng.TRIVIUM, 1)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(src)
	f := r.Float64()
	fmt.Println(f >= 0 && f < 1)
	// Output: true
}

// Fill generates in parallel across workers, deterministically.
func ExampleFill() {
	buf := make([]byte, 4096)
	if err := bsrng.Fill(bsrng.GRAIN, 99, 4, buf); err != nil {
		log.Fatal(err)
	}
	again := make([]byte, 4096)
	bsrng.Fill(bsrng.GRAIN, 99, 4, again)
	same := true
	for i := range buf {
		if buf[i] != again[i] {
			same = false
		}
	}
	fmt.Println(same)
	// Output: true
}
