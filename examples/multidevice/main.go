// Multidevice: the paper's §5.4 scenario twice over — (a) real multi-core
// scaling of the bitsliced engines measured on this host, and (b) the
// modeled multi-GPU aggregate of the paper's setup (2x GTX 1080 Ti at
// 1.92x, declining at 4 and 8).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	bsrng "repro"
	"repro/internal/device"
)

func main() {
	fmt.Println("(a) measured multi-core scaling of bitsliced Grain on this host")
	fmt.Printf("%-10s %-12s %s\n", "workers", "Gbit/s", "speedup")
	buf := make([]byte, 8<<20)
	base := 0.0
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if w > runtime.NumCPU() || seen[w] {
			continue
		}
		seen[w] = true
		gbps := measure(bsrng.GRAIN, w, buf)
		if base == 0 {
			base = gbps
		}
		fmt.Printf("%-10d %-12.2f %.2fx\n", w, gbps, gbps/base)
	}

	fmt.Println()
	fmt.Println("(b) modeled multi-GPU aggregate (paper §5.4)")
	mickey, err := device.ProfileByName(device.CalibratedProfiles, "MICKEY 2.0 (bitsliced)")
	if err != nil {
		log.Fatal(err)
	}
	d, _ := device.DeviceByName("GTX 1080 Ti")
	fmt.Print(device.FormatScaling(mickey, d, []int{1, 2, 4, 8}))
}

func measure(alg bsrng.Algorithm, workers int, buf []byte) float64 {
	s, err := bsrng.NewStream(alg, 1, bsrng.StreamConfig{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	// Warm up the pool, then time.
	s.Read(buf[:1<<20])
	start := time.Now()
	rounds := 0
	for time.Since(start) < 400*time.Millisecond {
		s.Read(buf)
		rounds++
	}
	el := time.Since(start).Seconds()
	return float64(rounds*len(buf)) * 8 / el / 1e9
}
