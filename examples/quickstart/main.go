// Quickstart: seed a bitsliced generator, read random bytes, and show the
// determinism and multi-core paths of the public API.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	bsrng "repro"
)

func main() {
	// A Generator is one 64-lane bitsliced MICKEY 2.0 engine.
	g, err := bsrng.New(bsrng.MICKEY, 42)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 32)
	g.Read(buf)
	fmt.Printf("mickey/seed 42, first 32 bytes: %s\n", hex.EncodeToString(buf))

	// Same seed → same stream, reproducible end-to-end.
	g2, _ := bsrng.New(bsrng.MICKEY, 42)
	buf2 := make([]byte, 32)
	g2.Read(buf2)
	fmt.Printf("reproduced:                     %s\n", hex.EncodeToString(buf2))

	// Every algorithm behind the same interface.
	for _, alg := range bsrng.Algorithms {
		a, err := bsrng.New(alg, 7)
		if err != nil {
			log.Fatal(err)
		}
		b := make([]byte, 8)
		a.Read(b)
		fmt.Printf("%-8s first word: %s\n", alg, hex.EncodeToString(b))
	}

	// Multi-core: a deterministic worker-pool stream.
	s, err := bsrng.NewStream(bsrng.GRAIN, 42, bsrng.StreamConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	big := make([]byte, 1<<20)
	s.Read(big)
	fmt.Printf("stream produced %d bytes across %d workers\n", len(big), 4)
}
