// Crccheck: the paper's §4.2 worked example — 64 independent CRC-8
// streams computed simultaneously by the bitsliced engine (Fig. 6),
// checked against the conventional bit-serial register (Fig. 5).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/crc"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const streamLen = 1 << 16
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, streamLen)
		rng.Read(streams[l])
	}

	// Bitsliced: all 64 streams at once.
	sliced, err := crc.NewSliced8(crc.Poly8Maxim, nil)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := sliced.Write(streams); err != nil {
		log.Fatal(err)
	}
	slicedTime := time.Since(start)

	// Naive: one bit-serial register per stream (Fig. 5).
	start = time.Now()
	naive := make([]uint8, 64)
	for l := range streams {
		reg := crc.NewBitSerial8(crc.Poly8Maxim, 0)
		reg.Write(streams[l])
		naive[l] = reg.Sum8()
	}
	naiveTime := time.Since(start)

	mismatches := 0
	for l := 0; l < 64; l++ {
		if sliced.Lane(l) != naive[l] {
			mismatches++
		}
	}
	fmt.Printf("64 streams x %d bytes\n", streamLen)
	fmt.Printf("bit-serial (Fig. 5): %v\n", naiveTime)
	fmt.Printf("bitsliced  (Fig. 6): %v  (%.1fx faster)\n",
		slicedTime, naiveTime.Seconds()/slicedTime.Seconds())
	fmt.Printf("agreement: %d/64 lanes", 64-mismatches)
	if mismatches > 0 {
		log.Fatalf(" — %d mismatches!", mismatches)
	}
	fmt.Println(" ✓")
	fmt.Printf("sample: lane 0 CRC-8/MAXIM = %#02x\n", sliced.Lane(0))
}
