// Keystream: use the bitsliced engines as stream ciphers — encrypt a
// message by XOR with the keystream, decrypt by regenerating it from the
// same seed, the two-way-communication scenario of paper §5.4 ("the same
// output sequence ... could be generated identically ... at the
// receiver").
package main

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"log"

	bsrng "repro"
)

func xorStream(alg bsrng.Algorithm, seed uint64, msg []byte) []byte {
	g, err := bsrng.New(alg, seed)
	if err != nil {
		log.Fatal(err)
	}
	ks := make([]byte, len(msg))
	g.Read(ks)
	out := make([]byte, len(msg))
	for i := range msg {
		out[i] = msg[i] ^ ks[i]
	}
	return out
}

func main() {
	plain := []byte("bitslicing turns 64 shift registers into 100 XOR planes")
	const seed = 0xC0FFEE

	ct := xorStream(bsrng.MICKEY, seed, plain)
	fmt.Printf("plaintext:  %q\n", plain)
	fmt.Printf("ciphertext: %s\n", hex.EncodeToString(ct))

	// The receiver reconstructs the identical keystream from the seed.
	pt := xorStream(bsrng.MICKEY, seed, ct)
	fmt.Printf("decrypted:  %q\n", pt)
	if !bytes.Equal(pt, plain) {
		log.Fatal("round trip failed")
	}

	// A wrong seed yields garbage, as it must.
	bad := xorStream(bsrng.MICKEY, seed+1, ct)
	fmt.Printf("wrong seed: %q\n", bad[:24])
}
