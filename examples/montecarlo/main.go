// Monte Carlo: estimate π by dart-throwing, driven by the bitsliced
// generators through the math/rand adapter — the stochastic-simulation
// workload the paper's introduction motivates (Monte Carlo simulation is
// its canonical PRNG consumer).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	bsrng "repro"
)

func main() {
	const darts = 2_000_000
	for _, alg := range bsrng.Algorithms {
		src, err := bsrng.NewSource64(alg, 2024)
		if err != nil {
			log.Fatal(err)
		}
		r := rand.New(src)
		in := 0
		for i := 0; i < darts; i++ {
			x, y := r.Float64(), r.Float64()
			if x*x+y*y <= 1 {
				in++
			}
		}
		est := 4 * float64(in) / darts
		fmt.Printf("%-8s π ≈ %.5f (error %+.5f, %d darts)\n",
			alg, est, est-math.Pi, darts)
	}
}
