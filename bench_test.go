package bsrng

// The root benchmark harness: one benchmark per table/figure of the
// paper's evaluation (the experiment index in DESIGN.md §4 maps each to
// its experiment id). Run with:
//
//	go test -bench=. -benchmem .
//
// cmd/experiments prints the corresponding tables.

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bitslice"
	"repro/internal/core"
	"repro/internal/crc"
	"repro/internal/curand"
	"repro/internal/device"
	"repro/internal/grain"
	"repro/internal/lfsr"
	"repro/internal/mickey"
	"repro/internal/sp80022"
)

// E1 — Table 1: normalized throughput of the prior works (model-side
// arithmetic; the interesting output is cmd/experiments -exp table1).
func BenchmarkTable1Normalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range device.PriorWorks {
			_ = w.Normalized()
		}
	}
}

// E3 — Figure 10: the roofline projection of all four kernels on all six
// devices.
func BenchmarkFig10Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = device.Fig10(device.CalibratedProfiles)
	}
}

// E4 — Figure 11: the normalized comparison including the prior works.
func BenchmarkFig11Normalized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = device.Fig11(device.CalibratedProfiles)
	}
}

// E5 — §5.4: real multi-core scaling of the bitsliced engines (the CPU
// analogue of the paper's multi-GPU experiment; the modeled version is
// cmd/experiments -exp multigpu).
func BenchmarkMultiDeviceScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		if workers > runtime.NumCPU() {
			continue
		}
		b.Run(benchName("workers", workers), func(b *testing.B) {
			s, err := NewStream(GRAIN, 1, StreamConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			buf := make([]byte, 1<<20)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Read(buf)
			}
		})
	}
}

// E6 — Table 3: cost of the NIST battery's core tests on 100 kbit of
// MICKEY output (the full battery is cmd/nist).
func BenchmarkTable3NIST(b *testing.B) {
	g, err := New(MICKEY, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 100000/8)
	g.Read(buf)
	bits := sp80022.BitsFromBytes(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp80022.Frequency(bits); err != nil {
			b.Fatal(err)
		}
		if _, err := sp80022.Runs(bits); err != nil {
			b.Fatal(err)
		}
		if _, err := sp80022.BlockFrequency(bits, 128); err != nil {
			b.Fatal(err)
		}
		if _, err := sp80022.LongestRun(bits); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — Fig. 7 vs Fig. 8: the naive 64-register farm against the bitsliced
// LFSR engine.
func BenchmarkLFSRNaiveVsBitsliced(b *testing.B) {
	exps, _ := lfsr.Primitive(64)
	rng := rand.New(rand.NewSource(7))
	states := make([]uint64, 64)
	for i := range states {
		states[i] = rng.Uint64() | 1
	}
	dst := make([]uint64, 1024)
	b.Run("naive-farm", func(b *testing.B) {
		fm, _ := lfsr.NewFarm(64, exps, states)
		b.SetBytes(1024 * 8)
		for i := 0; i < b.N; i++ {
			fm.FillRaw(dst)
		}
	})
	b.Run("bitsliced", func(b *testing.B) {
		sl, _ := lfsr.NewSliced(64, exps, states, lfsr.Rename)
		b.SetBytes(1024 * 8)
		for i := 0; i < b.N; i++ {
			sl.FillRaw(dst)
		}
	})
}

// E7b — ablation: register renaming vs physical plane copies in the
// bitsliced LFSR.
func BenchmarkLFSRSwapStrategies(b *testing.B) {
	exps, _ := lfsr.Primitive(64)
	rng := rand.New(rand.NewSource(7))
	states := make([]uint64, 64)
	for i := range states {
		states[i] = rng.Uint64() | 1
	}
	dst := make([]uint64, 1024)
	for _, strat := range []struct {
		name string
		s    lfsr.ShiftStrategy
	}{{"rename", lfsr.Rename}, {"copy", lfsr.Copy}} {
		b.Run(strat.name, func(b *testing.B) {
			sl, _ := lfsr.NewSliced(64, exps, states, strat.s)
			b.SetBytes(1024 * 8)
			for i := 0; i < b.N; i++ {
				sl.FillRaw(dst)
			}
		})
	}
}

// E8 — Fig. 5 vs Fig. 6: 64 CRC-8 streams, bit-serial vs bitsliced.
func BenchmarkCRCNaiveVsBitsliced(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, 1024)
		rng.Read(streams[l])
	}
	b.Run("bit-serial", func(b *testing.B) {
		b.SetBytes(64 * 1024)
		for i := 0; i < b.N; i++ {
			for l := range streams {
				reg := crc.NewBitSerial8(crc.Poly8Maxim, 0)
				reg.Write(streams[l])
			}
		}
	})
	b.Run("bitsliced", func(b *testing.B) {
		b.SetBytes(64 * 1024)
		for i := 0; i < b.N; i++ {
			s, _ := crc.NewSliced8(crc.Poly8Maxim, nil)
			s.Write(streams)
		}
	})
}

// E9 — measured CPU throughput of every generator (the honest CPU-port
// numbers; cmd/experiments -exp cpu prints them as a table). Every
// engine runs at each supported lane width; the bytes are identical, so
// the spread is pure datapath-width effect.
func BenchmarkCPUThroughput(b *testing.B) {
	for _, alg := range Algorithms {
		for _, lanes := range SupportedLanes {
			b.Run(alg.String()+"-bitsliced-"+benchName("lanes", lanes), func(b *testing.B) {
				g, err := NewWithLanes(alg, 1, lanes)
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, 64<<10)
				b.SetBytes(int64(len(buf)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g.Read(buf)
				}
			})
		}
	}
	b.Run("mickey-naive", func(b *testing.B) {
		key := make([]byte, mickey.KeySize)
		m, err := mickey.NewPacked(key, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 4096)
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Keystream(buf)
		}
	})
	b.Run("curand-mt19937", func(b *testing.B) {
		g := curand.NewMT19937(1)
		dst := make([]uint32, 16<<10)
		b.SetBytes(int64(4 * len(dst)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			curand.Fill32(g, dst)
		}
	})
	b.Run("curand-philox", func(b *testing.B) {
		g := curand.NewPhilox4x32(1)
		dst := make([]uint32, 16<<10)
		b.SetBytes(int64(4 * len(dst)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			curand.Fill32(g, dst)
		}
	})
}

// E10 — §4.5 ablation: staging ("shared memory") chunk size sweep.
func BenchmarkStagingAblation(b *testing.B) {
	for _, staging := range []int{1 << 10, 8 << 10, 64 << 10, 512 << 10} {
		b.Run(benchName("staging", staging), func(b *testing.B) {
			s, err := NewStream(GRAIN, 1, StreamConfig{Workers: runtime.NumCPU(), StagingBytes: staging})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			buf := make([]byte, 1<<20)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Read(buf)
			}
		})
	}
}

// benchGrainVec measures the raw Grain datapath at one Vec width: a
// lock-step keystream block with no segment rekeying, so the number is
// the pure cost of widening the plane words.
func benchGrainVec[V bitslice.Vec](b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	lanes := bitslice.VecLanes[V]()
	keys := make([][]byte, lanes)
	ivs := make([][]byte, lanes)
	for l := range keys {
		keys[l] = make([]byte, grain.KeySize)
		ivs[l] = make([]byte, grain.IVSize)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	g, err := grain.NewSlicedVec[V](keys, ivs)
	if err != nil {
		b.Fatal(err)
	}
	var blk [64]V
	b.SetBytes(int64(64 * 8 * bitslice.VecWords[V]())) // 64 rows of K words
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KeystreamBlockVec(&blk)
	}
}

// Ablation — lane width. Part one: the generalized Vec datapath at
// 64/256/512 lanes on the Grain engine (wider planes amortize loop
// overhead; the acceptance bar is 256 lanes ≥ the 64-lane baseline in
// bytes/s). Part two: the original degree-64 LFSR comparison of 64-lane
// uint64 planes vs 32-lane uint32 planes (the paper's single-precision
// registers).
func BenchmarkLaneWidth(b *testing.B) {
	b.Run("grain-64-lanes", benchGrainVec[bitslice.V64])
	b.Run("grain-256-lanes", benchGrainVec[bitslice.V256])
	b.Run("grain-512-lanes", benchGrainVec[bitslice.V512])

	exps, _ := lfsr.Primitive(64)
	rng := rand.New(rand.NewSource(7))
	b.Run("64-lanes-uint64", func(b *testing.B) {
		states := make([]uint64, 64)
		for i := range states {
			states[i] = rng.Uint64() | 1
		}
		sl, _ := lfsr.NewSliced(64, exps, states, lfsr.Rename)
		dst := make([]uint64, 1024)
		b.SetBytes(1024 * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sl.FillRaw(dst)
		}
	})
	b.Run("32-lanes-uint32", func(b *testing.B) {
		var planes [64]uint32
		for i := range planes {
			planes[i] = rng.Uint32()
		}
		taps := []int{63, 61, 60, 0}
		dst := make([]uint32, 2048) // same bit volume
		b.SetBytes(1024 * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			head := 0
			for j := range dst {
				var fb uint32
				for _, e := range taps {
					fb ^= planes[(head+e)&63]
				}
				dst[j] = planes[head]
				head = (head + 1) & 63
				planes[(head+63)&63] = fb
			}
		}
	})
}

// E2 is static data (cmd/experiments -exp table2); Fill's one-shot
// parallel path is benchmarked here for completeness.
func BenchmarkFillParallel(b *testing.B) {
	buf := make([]byte, 4<<20)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := core.Fill(core.GRAIN, 1, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	switch {
	case v >= 1<<20 && v%(1<<20) == 0:
		return prefix + "-" + itoa(v>>20) + "MiB"
	case v >= 1<<10 && v%(1<<10) == 0:
		return prefix + "-" + itoa(v>>10) + "KiB"
	}
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
