package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseAlgs(t *testing.T) {
	if algs, err := parseAlgs(""); err != nil || algs != nil {
		t.Errorf("empty list: %v, %v (want nil, nil = all algorithms)", algs, err)
	}
	algs, err := parseAlgs("mickey, trivium")
	if err != nil {
		t.Fatal(err)
	}
	if len(algs) != 2 || algs[0] != core.MICKEY || algs[1] != core.TRIVIUM {
		t.Errorf("parsed %v", algs)
	}
	if _, err := parseAlgs("mickey,rot13"); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestRunRouterUsage(t *testing.T) {
	if err := runRouter(":0", "", 0); err == nil {
		t.Error("-router without -ring accepted")
	}
	if err := runRouter(":0", t.TempDir()+"/missing.json", 0); err == nil {
		t.Error("missing ring file accepted")
	}
}
