// Command bsrngd serves pseudo-random bytes from the bitsliced engines
// over HTTP — the BSRNG generator operated as a bulk entropy service.
//
// Usage:
//
//	bsrngd -addr :8080 -seed 42 -algs mickey,grain,aes-ctr,trivium,xorgens
//	bsrngd -algs 'trivium,chaotic(trivium)'
//	curl 'localhost:8080/bytes?alg=mickey&n=1024' -o random.bin
//	curl 'localhost:8080/bytes?alg=trivium&n=32&hex=1'
//	curl 'localhost:8080/stream?alg=grain&n=1048576' -o stream.bin   # chunked, flushed per chunk
//	curl 'localhost:8080/stream?alg=grain&segment=16&n=4096'         # deterministic addressed window
//	curl -X POST 'localhost:8080/lease?alg=grain&segments=64'        # lease a resumable window
//	curl 'localhost:8080/stream?lease=<id>&off=65536'                # resume mid-lease
//	curl 'localhost:8080/metrics'
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, in-flight
// requests complete (bounded by -drain-timeout), then the stream pools
// shut down.
//
// Every shard stream runs the continuous online health tests of
// internal/health (disable with -no-health); shards that trip repeated
// failures are quarantined, reseeded in the background and re-admitted
// after a clean probation pass (-quarantine-after, -probation-segments).
// /healthz reports the per-algorithm pool state as JSON and degrades to
// 503 while any algorithm's pool is fully quarantined. -max-inflight
// sheds excess load with 429 + Retry-After. The bsrngd_health_* metric
// family on /metrics covers failures, quarantines, reseeds and
// re-admissions.
//
// Cluster mode: -router turns the process into the consistent-hash
// router tier over the N bsrngd nodes named in -ring (a ring.json
// membership file, reloaded on SIGHUP):
//
//	bsrngd -router -ring ring.json -addr :8080
//	kill -HUP $(pidof bsrngd)   # apply an edited ring.json
//
// The router proxies /bytes, /stream and the lease endpoints to the
// node owning the request's (alg, domain, segment-window) address, with
// health-aware failover to any replica — every node sharing the seed
// serves addressed windows byte-identically, so failover never changes
// the bytes. See internal/cluster and DESIGN.md §13.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	router := flag.Bool("router", false, "run as the cluster router tier over the ring in -ring instead of serving engines")
	ringPath := flag.String("ring", "", "router mode: ring membership config (JSON), reloaded on SIGHUP")
	seed := flag.Uint64("seed", 1, "deterministic base seed")
	algs := flag.String("algs", "", "comma-separated algorithms to serve, e.g. trivium,chaotic(grain) (default: every base engine plus chaotic(grain))")
	shards := flag.Int("shards", 0, "stream shards per algorithm (0 = default 2)")
	workers := flag.Int("workers", 0, "stream workers per shard (0 = spread CPUs)")
	staging := flag.Int("staging", 0, "per-worker staging bytes (0 = 64 KiB)")
	lanes := flag.Int("lanes", 0, "engine lane width: 64, 256 or 512 (0 = 64); served bytes are identical at every width")
	maxBytes := flag.Int64("max-bytes", 0, "per-request byte cap (0 = 16 MiB)")
	reqTimeout := flag.Duration("timeout", 0, "per-request timeout (0 = 30s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent /bytes + /stream requests; excess get 429 + Retry-After (0 = unlimited)")
	maxLeaseSegments := flag.Int("max-lease-segments", 0, "per-lease window cap in segments (0 = 65536, i.e. 128 MiB)")
	noHealth := flag.Bool("no-health", false, "disable the continuous online health tests and shard quarantine")
	quarantineAfter := flag.Int("quarantine-after", 0, "consecutive failing checkouts before a shard is quarantined (0 = 3)")
	probationSegments := flag.Int("probation-segments", 0, "clean segments a reseeded shard must produce before re-admission (0 = 4)")
	probationInterval := flag.Duration("probation-interval", 0, "delay between failed probation attempts (0 = 1s)")
	rctCutoff := flag.Int("health-rct-cutoff", 0, "RCT failing run of identical bytes (0 = 8)")
	aptWindow := flag.Int("health-apt-window", 0, "APT window size in bytes (0 = 512)")
	aptCutoff := flag.Int("health-apt-cutoff", 0, "APT failing occurrence count (0 = 48)")
	monobitSlack := flag.Int("health-monobit-slack", 0, "monobit allowed |ones − bits/2| per segment (0 = 1024)")
	longRunBits := flag.Int("health-longrun-bits", 0, "long-run failing run of identical bits (0 = 64)")
	flag.Parse()

	if *router {
		if err := runRouter(*addr, *ringPath, *drainTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "bsrngd:", err)
			os.Exit(2)
		}
		return
	}

	algorithms, err := parseAlgs(*algs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsrngd:", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Config{
		Seed:             *seed,
		Algorithms:       algorithms,
		ShardsPerAlg:     *shards,
		WorkersPerShard:  *workers,
		StagingBytes:     *staging,
		Lanes:            *lanes,
		MaxRequestBytes:  *maxBytes,
		RequestTimeout:   *reqTimeout,
		MaxInflight:      *maxInflight,
		MaxLeaseSegments: *maxLeaseSegments,
		DisableHealth:    *noHealth,
		Health: health.Config{
			RCTCutoff:    *rctCutoff,
			APTWindow:    *aptWindow,
			APTCutoff:    *aptCutoff,
			MonobitSlack: *monobitSlack,
			LongRunBits:  *longRunBits,
		},
		QuarantineAfter:   *quarantineAfter,
		ProbationSegments: *probationSegments,
		ProbationInterval: *probationInterval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsrngd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("bsrngd listening on %s (seed=%d)", *addr, *seed)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("bsrngd: %v, draining", sig)
	case err := <-errc:
		log.Fatalf("bsrngd: listen: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("bsrngd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("bsrngd: pool shutdown: %v", err)
	}
	log.Print("bsrngd: drained, bye")
}

// runRouter is the -router main loop: serve the cluster router over
// the ring file, reload the ring on SIGHUP, drain on SIGINT/SIGTERM.
func runRouter(addr, ringPath string, drainTimeout time.Duration) error {
	if ringPath == "" {
		return errors.New("-router requires -ring <ring.json>")
	}
	ring, err := cluster.LoadRing(ringPath)
	if err != nil {
		return err
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Ring: ring, RingPath: ringPath})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	hs := &http.Server{Addr: addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("bsrngd router listening on %s (%d nodes, ring %s)",
		addr, len(ring.Nodes()), ringPath)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if err := rt.ReloadFromFile(); err != nil {
					log.Printf("bsrngd router: ring reload failed, keeping current ring: %v", err)
				} else {
					log.Printf("bsrngd router: ring reloaded (%d nodes)", len(rt.Ring().Nodes()))
				}
				continue
			}
			log.Printf("bsrngd router: %v, draining", sig)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("bsrngd router: http shutdown: %v", err)
			}
			log.Print("bsrngd router: drained, bye")
			return nil
		case err := <-errc:
			return fmt.Errorf("listen: %w", err)
		}
	}
}

// parseAlgs maps a comma-separated algorithm list to core.Algorithms;
// empty input selects every engine.
func parseAlgs(s string) ([]core.Algorithm, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []core.Algorithm
	for _, name := range strings.Split(s, ",") {
		alg, err := core.ParseAlgorithm(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, alg)
	}
	return out, nil
}
