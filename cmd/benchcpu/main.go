// Command benchcpu measures the sustained CPU throughput of every
// bitsliced engine at every supported lane width and worker count, and
// writes the result as machine-readable JSON (the committed
// BENCH_cpu.json; `make bench` regenerates it and CI uploads it as an
// artifact).
//
// Usage:
//
//	benchcpu -out BENCH_cpu.json -mintime 1s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
)

// result is one measured cell of the alg × lanes × workers grid.
type result struct {
	Alg         string  `json:"alg"`
	Lanes       int     `json:"lanes"`
	Workers     int     `json:"workers"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// report is the full BENCH_cpu.json document.
type report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	MinSeconds float64  `json:"min_seconds_per_cell"`
	Results    []result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_cpu.json", "output path (- for stdout)")
	minTime := flag.Duration("mintime", time.Second, "minimum measurement time per cell")
	flag.Parse()

	rep, err := measure(*minTime, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcpu:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
}

// measure runs the full grid. Each cell reads from a dedicated Stream so
// engine construction (key schedules, init clocking) is amortized out of
// the steady-state number; progress goes to log.
func measure(minTime time.Duration, log io.Writer) (*report, error) {
	rep := &report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		MinSeconds: minTime.Seconds(),
	}
	workerSet := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerSet = append(workerSet, n)
	}
	buf := make([]byte, 4<<20)
	for _, alg := range core.Algorithms {
		for _, lanes := range core.SupportedLanes {
			for _, workers := range workerSet {
				r, err := measureCell(alg, lanes, workers, minTime, buf)
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(log, "benchcpu: %-8s lanes=%-4d workers=%-3d %8.1f MB/s\n",
					r.Alg, r.Lanes, r.Workers, r.BytesPerSec/1e6)
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, nil
}

func measureCell(alg core.Algorithm, lanes, workers int, minTime time.Duration, buf []byte) (result, error) {
	s, err := core.NewStream(alg, 1, core.StreamConfig{Workers: workers, Lanes: lanes})
	if err != nil {
		return result{}, err
	}
	defer s.Close()
	// Warm up: fill the staging pipeline before the clock starts.
	if _, err := s.Read(buf); err != nil {
		return result{}, err
	}
	var total int64
	start := time.Now()
	for time.Since(start) < minTime {
		n, err := s.Read(buf)
		if err != nil {
			return result{}, err
		}
		total += int64(n)
	}
	elapsed := time.Since(start).Seconds()
	return result{
		Alg:         alg.String(),
		Lanes:       lanes,
		Workers:     workers,
		Bytes:       total,
		Seconds:     elapsed,
		BytesPerSec: float64(total) / elapsed,
	}, nil
}
