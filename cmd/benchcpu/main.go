// Command benchcpu measures the sustained CPU throughput of every
// bitsliced engine at every supported lane width and worker count, and
// writes the result as machine-readable JSON (the committed
// BENCH_cpu.json; `make bench` regenerates it and CI uploads it as an
// artifact).
//
// Usage:
//
//	benchcpu -out BENCH_cpu.json -mintime 1s
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
)

// result is one measured cell of the alg × lanes × workers grid.
type result struct {
	Alg         string  `json:"alg"`
	Lanes       int     `json:"lanes"`
	Workers     int     `json:"workers"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	// AllocsPerMiB is heap allocations per MiB delivered during the
	// measurement window — ~0 pins the allocation-free steady state.
	AllocsPerMiB float64 `json:"allocs_per_mib"`
}

// report is the full BENCH_cpu.json document.
type report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	MinSeconds float64  `json:"min_seconds_per_cell"`
	Results    []result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_cpu.json", "output path (- for stdout)")
	minTime := flag.Duration("mintime", time.Second, "minimum measurement time per cell")
	flag.Parse()

	rep, err := measure(*minTime, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcpu:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
}

// measure runs the full grid. Each cell streams from a dedicated Stream
// so engine construction (key schedules, init clocking) is amortized out
// of the steady-state number; progress goes to log.
func measure(minTime time.Duration, log io.Writer) (*report, error) {
	rep := &report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		MinSeconds: minTime.Seconds(),
	}
	workerSet := workerSweep(runtime.NumCPU())
	for _, alg := range core.ServedAlgorithms {
		for _, lanes := range core.SupportedLanes {
			for _, workers := range workerSet {
				r, err := measureCell(alg, lanes, workers, minTime)
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(log, "benchcpu: %-8s lanes=%-4d workers=%-3d %8.1f MB/s %6.2f allocs/MiB\n",
					r.Alg, r.Lanes, r.Workers, r.BytesPerSec/1e6, r.AllocsPerMiB)
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, nil
}

// workerSweep returns the worker counts to measure on a machine with
// numCPU logical CPUs: every power of two up to numCPU, plus numCPU
// itself, so the scaling curve in BENCH_cpu.json has enough points to
// show where throughput stops growing.
func workerSweep(numCPU int) []int {
	set := []int{1}
	for w := 2; w < numCPU; w *= 2 {
		set = append(set, w)
	}
	if numCPU > 1 {
		set = append(set, numCPU)
	}
	return set
}

// errWindowDone stops Stream.WriteTo once a cell's measurement window
// has elapsed.
var errWindowDone = errors.New("benchcpu: measurement window elapsed")

// benchSink counts delivered bytes without copying them and fails the
// write after the deadline, ending WriteTo. Consuming through WriteTo
// measures the zero-copy serving path (the same one bsrngd uses for
// bulk /bytes responses): chunks travel from the engines to the sink
// without an intermediate consumer buffer.
type benchSink struct {
	total    int64
	deadline time.Time
}

func (b *benchSink) Write(p []byte) (int, error) {
	b.total += int64(len(p))
	if time.Now().After(b.deadline) {
		return len(p), errWindowDone
	}
	return len(p), nil
}

func measureCell(alg core.Algorithm, lanes, workers int, minTime time.Duration) (result, error) {
	s, err := core.NewStream(alg, 1, core.StreamConfig{Workers: workers, Lanes: lanes})
	if err != nil {
		return result{}, err
	}
	defer s.Close()
	// Warm up: fill the staging pipeline and retire the lazily-allocated
	// first chunks before the clock (and the allocation meter) starts.
	warm := &benchSink{deadline: time.Now().Add(minTime / 10)}
	if _, err := s.WriteTo(warm); err != nil && !errors.Is(err, errWindowDone) {
		return result{}, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sink := &benchSink{deadline: time.Now().Add(minTime)}
	start := time.Now()
	if _, err := s.WriteTo(sink); err != nil && !errors.Is(err, errWindowDone) {
		return result{}, err
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.Mallocs - m0.Mallocs)
	return result{
		Alg:          alg.String(),
		Lanes:        lanes,
		Workers:      workers,
		Bytes:        sink.total,
		Seconds:      elapsed,
		BytesPerSec:  float64(sink.total) / elapsed,
		AllocsPerMiB: allocs / (float64(sink.total) / (1 << 20)),
	}, nil
}
