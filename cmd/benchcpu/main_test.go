package main

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

// A fast measurement pass must cover the whole alg × lanes × workers
// grid and report sane numbers — this is the shape contract for the
// committed BENCH_cpu.json.
func TestMeasureGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement loop")
	}
	rep, err := measure(time.Millisecond, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wantWorkers := 1
	if rep.NumCPU > 1 {
		wantWorkers = 2
	}
	wantCells := len(core.ServedAlgorithms) * len(core.SupportedLanes) * wantWorkers
	if len(rep.Results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Results), wantCells)
	}
	seen := map[[3]interface{}]bool{}
	for _, r := range rep.Results {
		if r.BytesPerSec <= 0 || r.Bytes <= 0 || r.Seconds <= 0 {
			t.Errorf("%s lanes=%d workers=%d: non-positive measurement %+v",
				r.Alg, r.Lanes, r.Workers, r)
		}
		if r.AllocsPerMiB < 0 {
			t.Errorf("%s lanes=%d workers=%d: negative allocs_per_mib %+v",
				r.Alg, r.Lanes, r.Workers, r)
		}
		key := [3]interface{}{r.Alg, r.Lanes, r.Workers}
		if seen[key] {
			t.Errorf("duplicate cell %v", key)
		}
		seen[key] = true
	}
	if rep.GoVersion == "" || rep.GOARCH == "" || rep.NumCPU < 1 {
		t.Errorf("incomplete metadata: %+v", rep)
	}
}
