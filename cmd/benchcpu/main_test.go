package main

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

// A fast measurement pass must cover the whole alg × lanes × workers
// grid and report sane numbers — this is the shape contract for the
// committed BENCH_cpu.json.
func TestMeasureGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement loop")
	}
	rep, err := measure(time.Millisecond, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(core.ServedAlgorithms) * len(core.SupportedLanes) * len(workerSweep(rep.NumCPU))
	if len(rep.Results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Results), wantCells)
	}
	seen := map[[3]interface{}]bool{}
	for _, r := range rep.Results {
		if r.BytesPerSec <= 0 || r.Bytes <= 0 || r.Seconds <= 0 {
			t.Errorf("%s lanes=%d workers=%d: non-positive measurement %+v",
				r.Alg, r.Lanes, r.Workers, r)
		}
		if r.AllocsPerMiB < 0 {
			t.Errorf("%s lanes=%d workers=%d: negative allocs_per_mib %+v",
				r.Alg, r.Lanes, r.Workers, r)
		}
		key := [3]interface{}{r.Alg, r.Lanes, r.Workers}
		if seen[key] {
			t.Errorf("duplicate cell %v", key)
		}
		seen[key] = true
	}
	if rep.GoVersion == "" || rep.GOARCH == "" || rep.NumCPU < 1 {
		t.Errorf("incomplete metadata: %+v", rep)
	}
}

// The worker sweep must walk powers of two up to NumCPU and always end
// at NumCPU itself, without duplicating the top point.
func TestWorkerSweep(t *testing.T) {
	cases := []struct {
		numCPU int
		want   []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{12, []int{1, 2, 4, 8, 12}},
		{16, []int{1, 2, 4, 8, 16}},
	}
	for _, tc := range cases {
		got := workerSweep(tc.numCPU)
		if len(got) != len(tc.want) {
			t.Errorf("workerSweep(%d) = %v, want %v", tc.numCPU, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("workerSweep(%d) = %v, want %v", tc.numCPU, got, tc.want)
				break
			}
		}
	}
}
