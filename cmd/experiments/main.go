// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index):
//
//	experiments -exp table1    prior GPU PRNGs and their normalized rates
//	experiments -exp table2    the six evaluation GPU platforms
//	experiments -exp fig10     projected throughput per GPU per kernel
//	experiments -exp fig11     normalized comparison with prior works
//	experiments -exp multigpu  §5.4 multi-device scaling
//	experiments -exp table3    NIST battery on the MICKEY output (scaled)
//	experiments -exp cpu       measured throughput of this repo's engines
//	experiments -exp all       everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	bsrng "repro"
	"repro/internal/curand"
	"repro/internal/device"
	"repro/internal/mickey"
	"repro/internal/sp80022"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig10, fig11, multigpu, table3, cpu, all")
	analytic := flag.Bool("analytic", false, "use measured-cost kernel profiles instead of paper-calibrated ones")
	streams := flag.Int("streams", 32, "table3: number of streams")
	bits := flag.Int("bits", 100000, "table3: bits per stream")
	flag.Parse()

	profiles := device.CalibratedProfiles
	profileName := "paper-calibrated"
	if *analytic {
		profiles = device.AnalyticProfiles
		profileName = "analytic (measured op costs)"
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Println("Paper Table 1: previously proposed PRNG implementations on GPU")
		fmt.Print(device.FormatTable1())
		return nil
	})
	run("table2", func() error {
		fmt.Println("Paper Table 2: evaluation GPU platforms")
		fmt.Print(device.FormatTable2())
		return nil
	})
	run("fig10", func() error {
		fmt.Printf("Paper Figure 10: projected throughput (Gbit/s), %s profiles\n", profileName)
		fmt.Print(device.FormatFig10(profiles))
		return nil
	})
	run("fig11", func() error {
		fmt.Printf("Paper Figure 11: normalized throughput (Gbps/GFLOPS), %s profiles\n", profileName)
		fmt.Print(device.FormatFig11(profiles))
		return nil
	})
	run("multigpu", func() error {
		mickeyProf, err := device.ProfileByName(profiles, "MICKEY 2.0 (bitsliced)")
		if err != nil {
			return err
		}
		d, _ := device.DeviceByName("GTX 1080 Ti")
		fmt.Println("Paper §5.4: multi-GPU scaling (2x GTX 1080 Ti measured 1.92x)")
		fmt.Print(device.FormatScaling(mickeyProf, d, []int{1, 2, 4, 8}))
		return nil
	})
	run("table3", func() error { return table3(*streams, *bits) })
	run("cpu", cpuThroughput)
}

// table3 regenerates the paper's NIST table on the bitsliced MICKEY
// output (scaled by default; use -streams 1000 -bits 1000000 for the
// paper's full configuration).
func table3(streams, bits int) error {
	fmt.Printf("Paper Table 3: NIST SP 800-22 on bitsliced MICKEY output (%d x %d bits)\n", streams, bits)
	byteLen := (bits + 7) / 8
	results := make([][]sp80022.Result, streams)
	for i := range results {
		g, err := bsrng.New(bsrng.MICKEY, uint64(1000+i))
		if err != nil {
			return err
		}
		buf := make([]byte, byteLen)
		g.Read(buf)
		results[i] = sp80022.RunAll(sp80022.BitsFromBytes(buf)[:bits], sp80022.Params{})
	}
	fmt.Printf("%-24s %-10s %-10s %s\n", "Test", "P-value", "Proportion", "Result")
	for _, s := range sp80022.Summarize(results) {
		fmt.Println(s.String())
	}
	return nil
}

// cpuThroughput measures this host's real engine throughput — the honest
// CPU-port numbers behind the analytic kernel profiles.
func cpuThroughput() error {
	fmt.Printf("Measured throughput on this host (%d cores):\n", runtime.NumCPU())
	fmt.Printf("%-36s %12s\n", "engine", "Gbit/s")

	measure := func(name string, bytesPerRound int, f func()) {
		const target = 300 * time.Millisecond
		start := time.Now()
		rounds := 0
		for time.Since(start) < target {
			f()
			rounds++
		}
		el := time.Since(start).Seconds()
		gbps := float64(rounds*bytesPerRound) * 8 / el / 1e9
		fmt.Printf("%-36s %12.3f\n", name, gbps)
	}

	// Naive (row-major) MICKEY baseline: one instance.
	key := make([]byte, mickey.KeySize)
	pk, err := mickey.NewPacked(key, nil, 0)
	if err != nil {
		return err
	}
	nb := make([]byte, 1<<14)
	measure("MICKEY 2.0 naive (1 instance)", len(nb), func() { pk.Keystream(nb) })

	buf := make([]byte, 1<<20)
	for _, alg := range bsrng.Algorithms {
		g, err := bsrng.New(alg, 1)
		if err != nil {
			return err
		}
		measure(fmt.Sprintf("%s bitsliced (1 core)", alg), len(buf), func() { g.Read(buf) })
	}
	for _, alg := range bsrng.Algorithms {
		s, err := bsrng.NewStream(alg, 1, bsrng.StreamConfig{})
		if err != nil {
			return err
		}
		measure(fmt.Sprintf("%s bitsliced (all cores)", alg), len(buf), func() { s.Read(buf) })
		s.Close()
	}

	mt := curand.NewMT19937(1)
	w32 := make([]uint32, 1<<18)
	measure("MT19937 baseline (1 core)", 4*len(w32), func() { curand.Fill32(mt, w32) })
	ph := curand.NewPhilox4x32(1)
	measure("Philox4x32-10 baseline (1 core)", 4*len(w32), func() { curand.Fill32(ph, w32) })
	return nil
}
