// Command escapecheck is the compiler-assisted allocation gate
// (DESIGN.md §14): it runs `go build -gcflags=-m` over the hot-path
// packages, maps every "escapes to heap"/"moved to heap" diagnostic to
// its enclosing function, and fails when one lands in a function on
// the segment fill/transpose/WriteTo path that is not waived in the
// committed .escapeallow file.
//
// The AllocsPerRun tests pin a handful of sampled paths at runtime;
// this gate covers every hot function at compile time, so an
// accidental heap allocation introduced by a kernel rewrite fails CI
// before a benchmark ever runs.
//
// Waiver file format (.escapeallow at the module root), one entry per
// line, pipe-separated, # comments:
//
//	file|function|message-substring|reason
//
// Every field is mandatory — a waiver without a reason is a finding,
// and so is a waiver that matches nothing (mirroring bsrnglint's
// //bsrng:lint-ignore auditing). Exit codes: 0 clean, 1 findings,
// 2 tool/build failure.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// hotPackages are the packages whose kernels carry the paper's
// throughput claim — the default -pkgs value.
var hotPackages = []string{
	"internal/core",
	"internal/bitslice",
	"internal/mickey",
	"internal/grain",
	"internal/trivium",
	"internal/aes",
	"internal/xorgens",
	"internal/chaotic",
}

// hotFuncs names, per package, the functions on the segment
// fill/transpose/WriteTo path: the steady-state work between two
// reseeds. Constructors (New*) and epoch/reseed key derivation are
// deliberately absent — they run once per segment window and are
// allowed to allocate.
var hotFuncs = map[string][]string{
	"internal/core": {
		// Stream steady state: the chunk pipeline and its workers.
		"Read", "WriteTo", "NextChunk", "Recycle", "advance", "run", "checkSegment",
		// Generator/engine steady state.
		"fillPass", "advancePass", "nextBlock", "nextBlocks", "blockBytes", "seek",
		// Per-segment-window material derivation (in place by design).
		"derive", "next", "fill", "deriveChaoticX0s",
	},
	"internal/bitslice": {
		// PackBits/UnpackBits/PackWords/UnpackWords/ExtractLane allocate
		// their result by contract and are deliberately absent: the
		// steady-state kernels use the *Vec / *Into variants, which
		// return fixed-size arrays by value or write into caller-owned
		// storage.
		"Transpose32", "Transpose64", "TransposeVec",
		"PackBitsVec", "UnpackBitsVec", "PackWordsVec", "UnpackWordsVecInto",
		"Broadcast", "BroadcastVec", "SetLaneBit", "SetLaneBitVec",
		"LaneBit", "LaneBitVec", "ExtractLaneVec",
		"VecWords", "VecLanes",
	},
	"internal/mickey": {
		"Keystream", "KeystreamWords", "KeystreamBlock", "KeystreamBlockVec",
		"ClockVec", "ClockWord", "clockKG", "Reseed",
	},
	"internal/grain": {
		"Keystream", "KeystreamWords", "KeystreamBlock", "KeystreamBlockVec",
		"ClockVec", "ClockWord", "clock", "outputVec", "packPlanes", "Reseed",
	},
	"internal/trivium": {
		"Keystream", "KeystreamWords", "KeystreamBlock", "KeystreamBlockVec",
		"ClockVec", "ClockWord", "Reseed",
	},
	"internal/aes": {
		// PackBlocksVec allocates by contract and only serves the
		// reference/test path; Keystream's steady state goes through
		// nextBlockPlanes → the fused Boyar–Peralta round kernels and
		// the in-plane counter increment, none of which may allocate.
		"Keystream", "NextBatch", "nextBlockPlanes", "incCounterPlanes",
		"EncryptBlocks", "subShiftP", "subShiftXorP", "mixColumnsARKP",
		"addRoundKeyFromP", "bpSbox", "Reseed", "loadNonces",
	},
	"internal/xorgens": {
		"Keystream", "KeystreamBlockVec", "clockPlanes", "NextWord", "step", "mix64", "Reseed",
	},
	"internal/chaotic": {
		"Post", "Unpost",
	},
}

func main() {
	opts := options{}
	var pkgs, hot string
	flag.StringVar(&opts.dir, "dir", ".", "module root to analyze")
	flag.StringVar(&pkgs, "pkgs", strings.Join(hotPackages, ","), "comma-separated package dirs to gate")
	flag.StringVar(&opts.allowPath, "allow", "", "waiver file (default <dir>/.escapeallow)")
	flag.BoolVar(&opts.emit, "emit-allow", false, "print waiver-format lines for unwaived findings and exit")
	flag.StringVar(&opts.raw, "raw", "", "parse saved compiler -m output from this file instead of running go build")
	flag.StringVar(&hot, "hot", "", "override the hot-function table: pkg=fn,fn;pkg2=fn (tests/tuning)")
	flag.Parse()
	opts.pkgs = strings.Split(pkgs, ",")
	var err error
	if opts.hot, err = parseHot(hot); err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(2)
	}
	os.Exit(run(opts, os.Stdout, os.Stderr))
}

// parseHot parses the -hot override ("pkg=fn,fn;pkg2=fn"). An empty
// string keeps the built-in table (nil map).
func parseHot(hot string) (map[string][]string, error) {
	if hot == "" {
		return nil, nil
	}
	table := map[string][]string{}
	for _, ent := range strings.Split(hot, ";") {
		k, v, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("bad -hot entry %q (want pkg=fn,fn)", ent)
		}
		table[k] = strings.Split(v, ",")
	}
	return table, nil
}

type options struct {
	dir       string
	pkgs      []string
	allowPath string
	emit      bool
	raw       string
	hot       map[string][]string // nil: use the built-in hotFuncs table
}

// diag is one deduplicated compiler escape diagnostic, resolved to its
// enclosing function.
type diag struct {
	file string // module-relative, slash-separated
	line int
	fn   string
	msg  string
}

// allowEntry is one parsed .escapeallow waiver.
type allowEntry struct {
	file, fn, substr, reason string
	line                     int
	used                     bool
}

var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(?:\d+:)? (.*)$`)

func run(opts options, out, errw io.Writer) int {
	root, err := filepath.Abs(opts.dir)
	if err != nil {
		fmt.Fprintln(errw, "escapecheck:", err)
		return 2
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		fmt.Fprintf(errw, "escapecheck: %s is not a module root: %v\n", root, err)
		return 2
	}
	raw, code := compilerOutput(opts, root, errw)
	if code != 0 {
		return code
	}
	diags, err := resolveDiags(root, parseEscapes(raw))
	if err != nil {
		fmt.Fprintln(errw, "escapecheck:", err)
		return 2
	}

	hot := opts.hot
	if hot == nil {
		hot = hotFuncs
	}
	var gated []diag
	for _, d := range diags {
		if d.fn == "" {
			continue // package-scope initialization, not a function
		}
		names, ok := hot[path.Dir(d.file)]
		if !ok {
			continue
		}
		for _, n := range names {
			if n == d.fn {
				gated = append(gated, d)
				break
			}
		}
	}

	allowPath := opts.allowPath
	if allowPath == "" {
		allowPath = filepath.Join(root, ".escapeallow")
	}
	allows, bad, err := loadAllow(allowPath)
	if err != nil {
		fmt.Fprintln(errw, "escapecheck:", err)
		return 2
	}

	findings := 0
	for _, d := range gated {
		if waiverFor(allows, d) != nil {
			continue
		}
		if opts.emit {
			fmt.Fprintf(out, "%s|%s|%s|TODO: justify this allocation\n", d.file, d.fn, d.msg)
			findings++
			continue
		}
		fmt.Fprintf(out, "%s:%d: [escape-gate] %s: %s (waive in .escapeallow with a reason if intended)\n", d.file, d.line, d.fn, d.msg)
		findings++
	}
	if !opts.emit {
		allowName := filepath.Base(allowPath)
		for _, b := range bad {
			fmt.Fprintf(out, "%s:%d: [escape-gate] malformed waiver: %s\n", allowName, b.line, b.reason)
			findings++
		}
		for _, a := range allows {
			if !a.used {
				fmt.Fprintf(out, "%s:%d: [escape-gate] unused waiver %s|%s|%s (nothing matches — delete it)\n", allowName, a.line, a.file, a.fn, a.substr)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(errw, "escapecheck: %d finding(s) over %d hot-path escape diagnostic(s)\n", findings, len(gated))
		return 1
	}
	fmt.Fprintf(errw, "escapecheck: clean (%d hot-path escape diagnostic(s), all waived with reasons)\n", len(gated))
	return 0
}

// compilerOutput returns the -gcflags=-m diagnostics, either replayed
// from -raw or by building the gated packages (the build cache replays
// compiler output, so warm runs are cheap).
func compilerOutput(opts options, root string, errw io.Writer) (string, int) {
	if opts.raw != "" {
		data, err := os.ReadFile(opts.raw)
		if err != nil {
			fmt.Fprintln(errw, "escapecheck:", err)
			return "", 2
		}
		return string(data), 0
	}
	args := []string{"build", "-gcflags=-m"}
	for _, p := range opts.pkgs {
		args = append(args, "./"+path.Clean(strings.TrimSpace(p)))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	outb, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(errw, "escapecheck: go %s failed: %v\n%s", strings.Join(args, " "), err, outb)
		return "", 2
	}
	return string(outb), 0
}

// parseEscapes extracts and deduplicates heap-escape diagnostics from
// raw compiler output (generic instantiations repeat them verbatim).
func parseEscapes(raw string) []diag {
	seen := map[diag]bool{}
	var out []diag
	for _, line := range strings.Split(raw, "\n") {
		mm := diagRE.FindStringSubmatch(strings.TrimSpace(line))
		if mm == nil {
			continue
		}
		msg := mm[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		n, err := strconv.Atoi(mm[2])
		if err != nil {
			continue
		}
		d := diag{file: filepath.ToSlash(mm[1]), line: n, msg: msg}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		if out[i].line != out[j].line {
			return out[i].line < out[j].line
		}
		return out[i].msg < out[j].msg
	})
	return out
}

// resolveDiags fills in each diagnostic's enclosing function by parsing
// the named files (the compiler's -m output carries no function names).
func resolveDiags(root string, diags []diag) ([]diag, error) {
	type span struct {
		name       string
		start, end int
	}
	spans := map[string][]span{}
	fset := token.NewFileSet()
	for i, d := range diags {
		ss, ok := spans[d.file]
		if !ok {
			f, err := parser.ParseFile(fset, filepath.Join(root, filepath.FromSlash(d.file)), nil, parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					ss = append(ss, span{
						name:  fd.Name.Name,
						start: fset.Position(fd.Pos()).Line,
						end:   fset.Position(fd.End()).Line,
					})
				}
			}
			spans[d.file] = ss
		}
		for _, s := range ss {
			if d.line >= s.start && d.line <= s.end {
				diags[i].fn = s.name
				break
			}
		}
	}
	return diags, nil
}

// loadAllow parses the waiver file; a missing file is an empty set.
func loadAllow(path string) (entries []*allowEntry, malformed []*allowEntry, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 4 {
			malformed = append(malformed, &allowEntry{line: i + 1,
				reason: fmt.Sprintf("want file|function|message-substring|reason, got %d field(s)", len(parts))})
			continue
		}
		e := &allowEntry{
			file: strings.TrimSpace(parts[0]), fn: strings.TrimSpace(parts[1]),
			substr: strings.TrimSpace(parts[2]), reason: strings.TrimSpace(parts[3]),
			line: i + 1,
		}
		if e.file == "" || e.fn == "" || e.substr == "" || e.reason == "" {
			malformed = append(malformed, &allowEntry{line: i + 1,
				reason: "empty field (every waiver carries file, function, substring and a reason)"})
			continue
		}
		entries = append(entries, e)
	}
	return entries, malformed, nil
}

// waiverFor finds the first waiver covering a diagnostic and marks it
// used.
func waiverFor(allows []*allowEntry, d diag) *allowEntry {
	for _, a := range allows {
		if a.file == d.file && a.fn == d.fn && strings.Contains(d.msg, a.substr) {
			a.used = true
			return a
		}
	}
	return nil
}
