package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	raw := strings.Join([]string{
		"# internal/demo",
		"pkg/a.go:10:6: make([]byte, n) escapes to heap",
		"pkg/a.go:10:6: make([]byte, n) escapes to heap", // generic instantiations repeat diagnostics
		"pkg/a.go:3: moved to heap: x",
		"pkg/a.go:7:2: inlining call to helper", // not an escape diagnostic
		"pkg/b.go:bad: escapes to heap",         // unparsable line number
		"not a diagnostic at all",
		"pkg/b.go:1:1: s escapes to heap",
	}, "\n")
	got := parseEscapes(raw)
	want := []diag{
		{file: "pkg/a.go", line: 3, msg: "moved to heap: x"},
		{file: "pkg/a.go", line: 10, msg: "make([]byte, n) escapes to heap"},
		{file: "pkg/b.go", line: 1, msg: "s escapes to heap"},
	}
	if len(got) != len(want) {
		t.Fatalf("parseEscapes = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLoadAllowMissingFile(t *testing.T) {
	entries, malformed, err := loadAllow(filepath.Join(t.TempDir(), "nope"))
	if err != nil || entries != nil || malformed != nil {
		t.Fatalf("missing file: entries=%v malformed=%v err=%v, want all empty", entries, malformed, err)
	}
}

func TestLoadAllowParsing(t *testing.T) {
	path := filepath.Join(t.TempDir(), ".escapeallow")
	content := strings.Join([]string{
		"# comment",
		"",
		"pkg/a.go|Hot|escapes to heap|cold-start staging buffer",
		"pkg/a.go|Hot|no reason here",           // 3 fields
		"pkg/a.go||escapes to heap|empty field", // empty function
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, malformed, err := loadAllow(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].file != "pkg/a.go" || entries[0].fn != "Hot" ||
		entries[0].substr != "escapes to heap" || entries[0].line != 3 {
		t.Errorf("entries = %+v, want one pkg/a.go|Hot waiver at line 3", entries)
	}
	if len(malformed) != 2 {
		t.Fatalf("malformed = %+v, want 2 entries", malformed)
	}
	if malformed[0].line != 4 || !strings.Contains(malformed[0].reason, "3 field(s)") {
		t.Errorf("malformed[0] = %+v, want field-count complaint at line 4", malformed[0])
	}
	if malformed[1].line != 5 || !strings.Contains(malformed[1].reason, "empty field") {
		t.Errorf("malformed[1] = %+v, want empty-field complaint at line 5", malformed[1])
	}
}

func TestWaiverFor(t *testing.T) {
	allows := []*allowEntry{
		{file: "pkg/a.go", fn: "Other", substr: "escapes to heap"},
		{file: "pkg/a.go", fn: "Hot", substr: "make([]byte"},
	}
	d := diag{file: "pkg/a.go", fn: "Hot", msg: "make([]byte, n) escapes to heap"}
	if w := waiverFor(allows, d); w != allows[1] || !w.used {
		t.Errorf("waiverFor = %+v, want the Hot waiver marked used", w)
	}
	if allows[0].used {
		t.Error("non-matching waiver marked used")
	}
	if w := waiverFor(allows, diag{file: "pkg/b.go", fn: "Hot", msg: "x escapes to heap"}); w != nil {
		t.Errorf("waiverFor on unrelated file = %+v, want nil", w)
	}
}

func TestParseHot(t *testing.T) {
	if table, err := parseHot(""); table != nil || err != nil {
		t.Errorf("parseHot(\"\") = %v, %v, want nil table (built-in)", table, err)
	}
	table, err := parseHot("pkg=Hot,Warm;other=Run")
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 2 || len(table["pkg"]) != 2 || table["pkg"][1] != "Warm" || table["other"][0] != "Run" {
		t.Errorf("parseHot = %v, want pkg:[Hot Warm] other:[Run]", table)
	}
	if _, err := parseHot("no-equals-sign"); err == nil {
		t.Error("parseHot accepted an entry without pkg=fn form")
	}
}

// writeModule materializes a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// demoModule is a tiny module whose pkg/pkg.go has one hot function
// (Hot, lines 3-6) and one cold one (Cold, lines 8-11), plus a
// package-scope var (line 13) for the no-enclosing-function path.
func demoModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"pkg/pkg.go": strings.Join([]string{
			"package pkg",
			"",
			"func Hot(n int) []byte {", // line 3
			"\tb := make([]byte, n)",
			"\treturn b",
			"}", // line 6
			"",
			"func Cold(n int) []byte {", // line 8
			"\treturn make([]byte, n)",
			"}", // line 11 (close enough; spans come from the parser)
			"",
			"var Sink = make([]byte, 1)", // package scope
			"",
		}, "\n"),
	})
}

// demoRaw is synthetic -gcflags=-m output for demoModule: one escape in
// Hot, one in Cold (not gated), one at package scope (no function).
const demoRaw = `pkg/pkg.go:4:11: make([]byte, n) escapes to heap
pkg/pkg.go:9:13: make([]byte, n) escapes to heap
pkg/pkg.go:12:16: make([]byte, 1) escapes to heap
`

// gateDemo runs the gate over demoModule with -raw input and the given
// waiver-file content ("" for none).
func gateDemo(t *testing.T, allowContent string) (code int, out, errw string) {
	t.Helper()
	dir := demoModule(t)
	rawPath := filepath.Join(dir, "m.out")
	if err := os.WriteFile(rawPath, []byte(demoRaw), 0o644); err != nil {
		t.Fatal(err)
	}
	if allowContent != "" {
		if err := os.WriteFile(filepath.Join(dir, ".escapeallow"), []byte(allowContent), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	opts := options{dir: dir, raw: rawPath, hot: map[string][]string{"pkg": {"Hot"}}}
	var o, e bytes.Buffer
	c := run(opts, &o, &e)
	return c, o.String(), e.String()
}

func TestRunGatesHotFunctionOnly(t *testing.T) {
	code, out, _ := gateDemo(t, "")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "pkg/pkg.go:4: [escape-gate] Hot: make([]byte, n) escapes to heap") {
		t.Errorf("missing the Hot finding:\n%s", out)
	}
	if strings.Contains(out, "Cold") || strings.Contains(out, "pkg.go:9") || strings.Contains(out, "pkg.go:12") {
		t.Errorf("cold/package-scope escapes must not be gated:\n%s", out)
	}
}

func TestRunWaivedClean(t *testing.T) {
	code, out, errw := gateDemo(t, "# waivers\npkg/pkg.go|Hot|make([]byte, n)|result buffer, allocated by contract\n")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	if !strings.Contains(errw, "clean (1 hot-path escape diagnostic(s)") {
		t.Errorf("stderr = %q, want a clean summary over 1 gated diagnostic", errw)
	}
}

func TestRunFlagsUnusedAndMalformedWaivers(t *testing.T) {
	allow := strings.Join([]string{
		"pkg/pkg.go|Hot|make([]byte, n)|result buffer, allocated by contract",
		"pkg/pkg.go|Gone|make([]byte, n)|stale waiver", // matches nothing
		"only|three|fields",
	}, "\n")
	code, out, _ := gateDemo(t, allow)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, ".escapeallow:2: [escape-gate] unused waiver pkg/pkg.go|Gone|make([]byte, n)") {
		t.Errorf("missing unused-waiver finding:\n%s", out)
	}
	if !strings.Contains(out, ".escapeallow:3: [escape-gate] malformed waiver") {
		t.Errorf("missing malformed-waiver finding:\n%s", out)
	}
}

func TestRunEmitAllow(t *testing.T) {
	dir := demoModule(t)
	rawPath := filepath.Join(dir, "m.out")
	if err := os.WriteFile(rawPath, []byte(demoRaw), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := options{dir: dir, raw: rawPath, emit: true, hot: map[string][]string{"pkg": {"Hot"}}}
	var o, e bytes.Buffer
	if code := run(opts, &o, &e); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, o.String())
	}
	want := "pkg/pkg.go|Hot|make([]byte, n) escapes to heap|TODO: justify this allocation\n"
	if o.String() != want {
		t.Errorf("emit output = %q, want %q", o.String(), want)
	}
}

func TestRunNoModule(t *testing.T) {
	var o, e bytes.Buffer
	if code := run(options{dir: t.TempDir()}, &o, &e); code != 2 {
		t.Fatalf("exit = %d, want 2 outside a module", code)
	}
	if !strings.Contains(e.String(), "not a module root") {
		t.Errorf("stderr = %q, want a module-root error", e.String())
	}
}

func TestRunMissingRawFile(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": "module demo\n\ngo 1.22\n"})
	var o, e bytes.Buffer
	if code := run(options{dir: dir, raw: filepath.Join(dir, "absent")}, &o, &e); code != 2 {
		t.Fatalf("exit = %d, want 2 on unreadable -raw file", code)
	}
}

func TestRunUnparsableDiagnosedFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module demo\n\ngo 1.22\n",
		"pkg/broken.go": "package pkg\nfunc oops( {\n",
	})
	rawPath := filepath.Join(dir, "m.out")
	if err := os.WriteFile(rawPath, []byte("pkg/broken.go:2:1: x escapes to heap\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var o, e bytes.Buffer
	if code := run(options{dir: dir, raw: rawPath}, &o, &e); code != 2 {
		t.Fatalf("exit = %d, want 2 when a diagnosed file cannot be parsed\nstderr: %s", code, e.String())
	}
}

// TestRunRealBuild exercises the go-build path end to end on a tiny
// module whose only function forces a heap escape. -short skips it (it
// shells out to the compiler).
func TestRunRealBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("real go build is slow; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\n\nvar sink []byte\n\nfunc Hot(n int) {\n" +
			"\tb := make([]byte, n)\n\tsink = b\n}\n",
	})
	opts := options{dir: dir, pkgs: []string{"pkg"}, hot: map[string][]string{"pkg": {"Hot"}}}
	var o, e bytes.Buffer
	if code := run(opts, &o, &e); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, o.String(), e.String())
	}
	if !strings.Contains(o.String(), "[escape-gate] Hot:") || !strings.Contains(o.String(), "escapes to heap") {
		t.Errorf("missing the forced escape finding:\n%s", o.String())
	}
}

// TestRunRealBuildFailure pins exit 2 when the gated package does not
// compile.
func TestRunRealBuildFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("real go build is slow; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod":     "module demo\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\nfunc oops( {\n",
	})
	var o, e bytes.Buffer
	if code := run(options{dir: dir, pkgs: []string{"pkg"}}, &o, &e); code != 2 {
		t.Fatalf("exit = %d, want 2 on a build failure\nstderr: %s", code, e.String())
	}
	if !strings.Contains(e.String(), "go build") {
		t.Errorf("stderr = %q, want the failed go build command", e.String())
	}
}

// TestRepoGateIsClean runs the real gate over this repository — the
// same check `make escape-gate` applies. -short skips it.
func TestRepoGateIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide -gcflags=-m build is slow; skipped in -short")
	}
	opts := options{dir: "../..", pkgs: hotPackages}
	var o, e bytes.Buffer
	if code := run(opts, &o, &e); code != 0 {
		t.Fatalf("escape gate exit %d on the repo tree\nstdout:\n%s\nstderr:\n%s", code, o.String(), e.String())
	}
}
