// Command bsrng generates pseudo-random bytes with the bitsliced engines.
//
// Usage:
//
//	bsrng -alg mickey -seed 42 -n 1048576 -workers 8 > random.bin
//	bsrng -alg grain -n 16 -hex
//	bsrng -alg 'chaotic(xorgens)' -n 16 -hex
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	bsrng "repro"
)

func main() {
	algName := flag.String("alg", "mickey", "algorithm: mickey, grain, aes-ctr, trivium, xorgens or chaotic(<name>)")
	seed := flag.Uint64("seed", 1, "generator seed")
	n := flag.Int64("n", 1<<20, "number of bytes to generate")
	workers := flag.Int("workers", 1, "worker engines (>1 uses the parallel stream)")
	lanes := flag.Int("lanes", 0, "engine lane width: 64, 256 or 512 (0 = 64); output is identical at every width")
	useHex := flag.Bool("hex", false, "emit lowercase hex instead of raw bytes")
	flag.Parse()

	if err := run(os.Stdout, *algName, *seed, *n, *workers, *lanes, *useHex); err != nil {
		fmt.Fprintln(os.Stderr, "bsrng:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, algName string, seed uint64, n int64, workers, lanes int, useHex bool) error {
	alg, err := bsrng.ParseAlgorithm(algName)
	if err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("negative byte count")
	}

	var src interface{ Read([]byte) (int, error) }
	if workers > 1 {
		s, err := bsrng.NewStream(alg, seed, bsrng.StreamConfig{Workers: workers, Lanes: lanes})
		if err != nil {
			return err
		}
		defer s.Close()
		src = s
	} else {
		g, err := bsrng.NewWithLanes(alg, seed, lanes)
		if err != nil {
			return err
		}
		src = g
	}

	out := bufio.NewWriterSize(w, 1<<20)
	buf := make([]byte, 64<<10)
	for n > 0 {
		k := int64(len(buf))
		if k > n {
			k = n
		}
		src.Read(buf[:k])
		if useHex {
			if _, err := out.WriteString(hex.EncodeToString(buf[:k])); err != nil {
				return err
			}
		} else if _, err := out.Write(buf[:k]); err != nil {
			return err
		}
		n -= k
	}
	if useHex {
		fmt.Fprintln(out)
	}
	// Flush explicitly: a deferred Flush would drop the write error, so
	// a full disk or closed pipe would report success.
	return out.Flush()
}
