package main

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	bsrng "repro"
)

func TestRunRawMatchesLibrary(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "grain", 5, 1000, 1, 0, false); err != nil {
		t.Fatal(err)
	}
	g, _ := bsrng.New(bsrng.GRAIN, 5)
	want := make([]byte, 1000)
	g.Read(want)
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("CLI output diverges from library output")
	}
}

func TestRunHex(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "mickey", 1, 16, 1, 0, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if len(s) != 33 || s[32] != '\n' { // 32 hex chars + newline
		t.Fatalf("unexpected hex output %q", s)
	}
	if _, err := hex.DecodeString(s[:32]); err != nil {
		t.Fatalf("not hex: %v", err)
	}
}

// -lanes changes the engine datapath width, never the bytes.
func TestRunLaneWidthIndependence(t *testing.T) {
	var narrow, wide bytes.Buffer
	if err := run(&narrow, "mickey", 11, 20000, 1, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&wide, "mickey", 11, 20000, 1, 256, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(narrow.Bytes(), wide.Bytes()) {
		t.Fatal("-lanes 256 output diverges from -lanes 64")
	}
	var out bytes.Buffer
	if err := run(&out, "mickey", 11, 16, 1, 100, false); err == nil {
		t.Error("invalid lane width accepted")
	}
}

func TestRunParallelStreamDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "trivium", 9, 100000, 3, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "trivium", 9, 100000, 3, 0, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("parallel CLI output is not deterministic")
	}
}

// failWriter accepts limit bytes, then errors — a full disk / closed
// pipe stand-in.
type failWriter struct {
	limit int
	n     int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		k := w.limit - w.n
		w.n = w.limit
		return k, errors.New("disk full")
	}
	w.n += len(p)
	return len(p), nil
}

// A write failure surfaced only at flush time must still be reported:
// the old deferred-Flush code dropped it and exited 0.
func TestRunReportsFlushError(t *testing.T) {
	// 1000 bytes fit inside the 1 MiB bufio buffer, so the underlying
	// write — and its error — happen at Flush.
	if err := run(&failWriter{limit: 100}, "grain", 5, 1000, 1, 0, false); err == nil {
		t.Fatal("write error at flush time was swallowed")
	}
	// And an error mid-stream (larger than the buffer) is reported too.
	if err := run(&failWriter{limit: 100}, "grain", 5, 4<<20, 1, 0, false); err == nil {
		t.Fatal("write error mid-stream was swallowed")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "nope", 1, 10, 1, 0, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&out, "mickey", 1, -1, 1, 0, false); err == nil {
		t.Error("negative byte count accepted")
	}
}
