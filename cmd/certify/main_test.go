package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/certify"
	"repro/internal/core"
)

func TestRunShortSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "CERTIFY.json")
	md := filepath.Join(dir, "CERTIFY.md")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-short", "-algs", "trivium", "-seed", "1",
		"-out", out, "-md", md,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep certify.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("CERTIFY.json is not JSON: %v", err)
	}
	if !rep.Pass || len(rep.Cells) != 1 || rep.Cells[0].Algorithm != "trivium" {
		t.Errorf("unexpected report: %+v", rep)
	}
	if rep.Cells[0].Lanes != core.DefaultLanes {
		t.Errorf("smoke cell lanes %d, want %d", rep.Cells[0].Lanes, core.DefaultLanes)
	}
	mdRaw, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mdRaw), "# Served-path certification: PASS") {
		t.Errorf("markdown summary wrong:\n%s", mdRaw)
	}
	if !strings.Contains(stderr.String(), "certify: PASS") {
		t.Errorf("missing PASS line on stderr: %s", stderr.String())
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-short", "-algs", "grain", "-q", "-out", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep certify.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not the JSON report: %v", err)
	}
	if strings.Contains(stderr.String(), "lanes=") {
		t.Error("-q did not suppress progress lines")
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-algs", "nope"},
		{"-lanes", "63"},
		{"-lanes", "abc"},
		{"-definitely-not-a-flag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestRunFailureExitCode(t *testing.T) {
	// A server that serves zeros fails both the cross-check and the
	// battery: the command must exit 1 and still write the report.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		w.Write(make([]byte, n))
	}))
	defer ts.Close()
	dir := t.TempDir()
	out := filepath.Join(dir, "CERTIFY.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-short", "-algs", "trivium", "-url", ts.URL, "-q", "-out", out,
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep certify.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Cells[0].CrossCheckOK {
		t.Errorf("all-zero server certified: %+v", rep.Cells[0])
	}
	if !strings.Contains(stderr.String(), "certify: FAIL") {
		t.Errorf("missing FAIL line: %s", stderr.String())
	}
}

func TestRunUnwritableOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-short", "-algs", "grain", "-q",
		"-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"),
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
