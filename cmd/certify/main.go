// Command certify runs the served-path statistical certification
// harness: it boots a real bsrngd serving stack per lane width (or
// dials an existing one with -url), pulls segments per (algorithm,
// lanes) cell over GET /bytes, cross-checks them byte-for-byte against
// the deterministic library stream, re-runs the continuous health
// checks, and runs the SP 800-22 battery on the served bytes. The
// machine-readable outcome lands in CERTIFY.json; the exit status is 0
// only if every cell passes.
//
// Usage:
//
//	certify                                  # full boot-mode matrix
//	certify -short                           # one smoke cell (PR CI)
//	certify -url http://127.0.0.1:8080 -seed 42
//	certify -algs trivium,xorgens -lanes 64 -md CERTIFY.md
//
// In dial mode the cross-check mirrors each algorithm's stream from
// its origin, so it only passes against a freshly started daemon whose
// streams have not served other clients yet (requests continue the
// stream; a consumed prefix is indistinguishable from corruption).
// Certifying a live production instance needs -no-crosscheck, which
// keeps the transport, health and battery checks.
//
// Exit status: 0 all cells pass, 1 certification failure, 2 usage or
// runtime error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseURL      = fs.String("url", "", "dial an existing bsrngd instead of booting one (e.g. http://127.0.0.1:8080)")
		seed         = fs.Uint64("seed", 1, "deterministic base seed (must match the dialed server's -seed)")
		algs         = fs.String("algs", "", "comma-separated algorithms to certify (default: every served algorithm)")
		lanesSpec    = fs.String("lanes", "", "comma-separated lane widths for boot mode (default: 64,256,512)")
		segments     = fs.Int("segments", 0, "segments pulled per cell (default 64)")
		reqSegments  = fs.Int("req-segments", 0, "segments per GET /bytes request (default 16)")
		streams      = fs.Int("streams", 0, "battery bit streams per cell (default 16)")
		workers      = fs.Int("workers", 0, "stream workers per shard (default 2)")
		staging      = fs.Int("staging", 0, "per-worker staging bytes (default 65536)")
		fast         = fs.Bool("fast", false, "skip the slow linear-complexity test")
		short        = fs.Bool("short", false, "smoke mode: one lane width, 8 segments, 4 streams, -fast")
		noCrossCheck = fs.Bool("no-crosscheck", false, "skip the byte-for-byte library comparison (foreign-seed servers)")
		outPath      = fs.String("out", "CERTIFY.json", "JSON report path (\"-\" = stdout)")
		mdPath       = fs.String("md", "", "also render a markdown summary to this path (\"-\" = stdout)")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		quiet        = fs.Bool("q", false, "suppress per-cell progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := certify.Config{
		BaseURL:            *baseURL,
		Seed:               *seed,
		Segments:           *segments,
		SegmentsPerRequest: *reqSegments,
		Streams:            *streams,
		Workers:            *workers,
		StagingBytes:       *staging,
		SkipExpensive:      *fast,
		SkipCrossCheck:     *noCrossCheck,
		Timeout:            *timeout,
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	if *algs != "" {
		list, err := parseAlgs(*algs)
		if err != nil {
			fmt.Fprintln(stderr, "certify:", err)
			return 2
		}
		cfg.Algorithms = list
	}
	if *lanesSpec != "" {
		list, err := parseLanes(*lanesSpec)
		if err != nil {
			fmt.Fprintln(stderr, "certify:", err)
			return 2
		}
		cfg.LaneWidths = list
	}
	if *short {
		// A PR-sized smoke cell: the full matrix is the nightly job.
		if cfg.Segments == 0 {
			cfg.Segments = 8
		}
		if cfg.Streams == 0 {
			cfg.Streams = 4
		}
		if cfg.LaneWidths == nil {
			cfg.LaneWidths = []int{core.DefaultLanes}
		}
		cfg.SkipExpensive = true
	}

	rep, err := certify.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "certify:", err)
		return 2
	}
	if err := writeReport(rep, *outPath, stdout, (*certify.Report).WriteJSON); err != nil {
		fmt.Fprintln(stderr, "certify:", err)
		return 2
	}
	if *mdPath != "" {
		if err := writeReport(rep, *mdPath, stdout, (*certify.Report).WriteMarkdown); err != nil {
			fmt.Fprintln(stderr, "certify:", err)
			return 2
		}
	}
	if !rep.Pass {
		fmt.Fprintln(stderr, "certify: FAIL — one or more cells failed certification")
		return 1
	}
	fmt.Fprintf(stderr, "certify: PASS — %d cells\n", len(rep.Cells))
	return 0
}

func writeReport(rep *certify.Report, path string, stdout io.Writer, render func(*certify.Report, io.Writer) error) error {
	if path == "-" {
		return render(rep, stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(rep, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseAlgs(s string) ([]core.Algorithm, error) {
	var out []core.Algorithm
	for _, name := range strings.Split(s, ",") {
		alg, err := core.ParseAlgorithm(name)
		if err != nil {
			return nil, err
		}
		out = append(out, alg)
	}
	return out, nil
}

func parseLanes(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad lane width %q", tok)
		}
		if err := core.ValidateLanes(n); err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
