package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadtest"
)

// A boot-mode smoke run exits 0, reports PASS, and writes a LOAD.json
// whose histograms and digest are populated.
func TestRunBootSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-clients", "4", "-requests", "4", "-algs", "mickey",
		"-verify", "-seed", "11", "-out", out, "-q",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "PASS") {
		t.Errorf("stderr %q does not report PASS", stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res loadtest.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("LOAD.json is not valid JSON: %v", err)
	}
	if res.Mode != "boot" || res.Requests < 16 || res.NonOK != 0 {
		t.Errorf("report %+v", res)
	}
	if res.Latency["bytes"].Count == 0 || res.Latency["bytes"].P99Ms < res.Latency["bytes"].P50Ms {
		t.Errorf("bytes latency summary %+v", res.Latency["bytes"])
	}
	if len(res.WindowDigest) != 64 {
		t.Errorf("window digest %q", res.WindowDigest)
	}
}

// A -cluster run boots the nodes behind the router, drives the load
// through it, and lands the per-node distribution and router accounting
// in the report.
func TestRunClusterSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-cluster", "3", "-clients", "4", "-requests", "4", "-algs", "grain",
		"-verify", "-seed", "21", "-out", out, "-q",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cluster — 3 nodes") {
		t.Errorf("stderr %q does not summarize the cluster", stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res loadtest.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("LOAD.json is not valid JSON: %v", err)
	}
	if res.Mode != "cluster" || res.NonOK != 0 {
		t.Errorf("report mode %q, non-OK %d", res.Mode, res.NonOK)
	}
	if res.Cluster == nil || res.Cluster.Nodes != 3 {
		t.Fatalf("cluster report %+v", res.Cluster)
	}
	if len(res.PerNode) != 3 {
		t.Errorf("per-node distribution %v, want 3 nodes", res.PerNode)
	}
}

// Stdout output with -out - keeps the report on one stream.
func TestRunStdoutReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-clients", "2", "-requests", "2", "-algs", "grain",
		"-mix", "1:0:0", "-out", "-", "-q",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res loadtest.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not the JSON report: %v", err)
	}
	if _, ok := res.Latency["lease"]; ok {
		t.Error("lease latency present despite -mix 1:0:0")
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"bad alg", []string{"-algs", "nope"}},
		{"bad mix shape", []string{"-mix", "1:2"}},
		{"bad mix weight", []string{"-mix", "1:x:2"}},
		{"zero mix", []string{"-mix", "0:0:0"}},
		{"chaos in dial mode", []string{"-url", "http://127.0.0.1:1", "-chaos", "1"}},
		{"cluster in dial mode", []string{"-url", "http://127.0.0.1:1", "-cluster", "3"}},
		{"cluster chaos without cluster", []string{"-cluster-chaos", "2"}},
		{"cluster with segment chaos", []string{"-cluster", "3", "-chaos", "1"}},
		{"unwritable out", []string{"-clients", "1", "-requests", "1", "-mix", "1:0:0",
			"-out", filepath.Join(string(os.PathSeparator), "no-such-dir-xyz", "x.json")}},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(append([]string{"-q"}, tc.args...), &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", tc.name, code, stderr.String())
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("3: 2 :0")
	if err != nil || mix != (loadtest.Mix{Bytes: 3, Stream: 2, Lease: 0}) {
		t.Errorf("parseMix = %+v, %v", mix, err)
	}
	if _, err := parseMix("1:-2:3"); err == nil {
		t.Error("negative weight accepted")
	}
}
