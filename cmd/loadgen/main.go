// Command loadgen drives the load-generation and soak-test harness
// against a bsrngd serving stack: N concurrent clients issue a mixed,
// deterministic workload — pooled /bytes (binary and hex), pooled and
// addressed /stream, and lease-issue/stream/resume round trips —
// against a daemon loadgen boots in-process or dials with -url. The
// machine-readable outcome (status counts, throughput, per-shape
// latency histograms, verification and digest accounting) lands in
// LOAD.json.
//
// Usage:
//
//	loadgen                                   # boot-mode smoke run
//	loadgen -clients 1000 -requests 20        # the acceptance load
//	loadgen -url http://127.0.0.1:8080 -seed 42 -verify
//	loadgen -chaos 2 -algs trivium            # soak with fault cycles
//	loadgen -cluster 3 -algs grain -verify    # 3 nodes behind the router
//	loadgen -cluster 3 -cluster-chaos 4       # + injected forward faults
//
// Every client's request sequence is a pure function of
// (-workload-seed, client index), so a run is reproducible end to end:
// two runs of the same flags report the same window digest. -verify
// additionally cross-checks every addressed and leased window
// byte-for-byte against the core library (needs the daemon's seed:
// -seed covers both modes).
//
// Exit status: 0 clean run, 1 the load completed but observed failures
// (unexpected non-2xx, verification mismatches, zero-run bodies, or an
// unmet chaos cycle), 2 usage or runtime error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/loadtest"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseURL  = fs.String("url", "", "dial an existing bsrngd instead of booting one (e.g. http://127.0.0.1:8080)")
		seed     = fs.Uint64("seed", 1, "daemon seed: boots the server with it, and verifies against it in dial mode")
		clients  = fs.Int("clients", 8, "concurrent clients")
		requests = fs.Int("requests", 8, "requests per client")
		mixSpec  = fs.String("mix", "", "bytes:stream:lease workload weights (default 1:1:1)")
		algs     = fs.String("algs", "", "comma-separated algorithms to exercise (default: every served algorithm)")
		bytesN   = fs.Int64("bytes-n", 0, "n per /bytes request (default 4096)")
		streamN  = fs.Int64("stream-n", 0, "n per /stream request (default 8192)")
		leaseSeg = fs.Int("lease-segments", 0, "segments per issued lease (default 4)")
		verify   = fs.Bool("verify", false, "cross-check every addressed and leased window against the library")
		wseed    = fs.Uint64("workload-seed", 1, "deterministic workload seed")
		chaos    = fs.Int("chaos", 0, "drive N quarantine/re-admit fault cycles during the run (boot mode only)")
		chaosSd  = fs.Uint64("chaos-seed", 1, "failpoint trigger seed for -chaos")
		clusterN = fs.Int("cluster", 0, "boot an N-node cluster behind the consistent-hash router and drive the load through it (boot mode only)")
		fchaos   = fs.Int("cluster-chaos", 0, "fire N pulsed forward-failure faults inside the router during a -cluster run")
		fchaosSd = fs.Uint64("cluster-chaos-seed", 1, "failpoint trigger seed for -cluster-chaos")
		shards   = fs.Int("shards", 0, "boot mode: shards per algorithm (default 2)")
		lanes    = fs.Int("lanes", 0, "boot mode: engine lane width (default 256)")
		inflight = fs.Int("max-inflight", 0, "boot mode: admission-control cap (default off)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		outPath  = fs.String("out", "LOAD.json", "JSON report path (\"-\" = stdout)")
		quiet    = fs.Bool("q", false, "suppress progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := loadtest.Config{
		BaseURL:           *baseURL,
		Clients:           *clients,
		RequestsPerClient: *requests,
		BytesN:            *bytesN,
		StreamN:           *streamN,
		LeaseSegments:     *leaseSeg,
		Verify:            *verify,
		VerifySeed:        *seed,
		WorkloadSeed:      *wseed,
		Timeout:           *timeout,
		Server: server.Config{
			Seed:         *seed,
			ShardsPerAlg: *shards,
			Lanes:        *lanes,
			MaxInflight:  *inflight,
		},
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	if *mixSpec != "" {
		mix, err := parseMix(*mixSpec)
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 2
		}
		cfg.Mix = mix
	}
	if *algs != "" {
		list, err := parseAlgs(*algs)
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 2
		}
		cfg.Algorithms = list
		cfg.Server.Algorithms = list
	}
	if *chaos > 0 {
		cfg.Chaos = &loadtest.ChaosConfig{
			Cycles:        *chaos,
			FailpointSeed: *chaosSd,
		}
	}
	if *clusterN > 0 {
		cc := &loadtest.ClusterConfig{Nodes: *clusterN}
		if *fchaos > 0 {
			cc.ForwardChaos = &loadtest.ForwardChaosConfig{
				Pulses:        *fchaos,
				FailpointSeed: *fchaosSd,
			}
		}
		cfg.Cluster = cc
	} else if *fchaos > 0 {
		fmt.Fprintln(stderr, "loadgen: -cluster-chaos requires -cluster")
		return 2
	}

	res, err := loadtest.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	if err := writeResult(res, *outPath, stdout); err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}

	fail := res.NonOK > 0 || res.VerifyMismatches > 0 || res.ZeroRuns > 0
	if fail {
		fmt.Fprintf(stderr, "loadgen: FAIL — %d non-OK, %d mismatches, %d zero runs (statuses %v)\n",
			res.NonOK, res.VerifyMismatches, res.ZeroRuns, res.Statuses)
		return 1
	}
	fmt.Fprintf(stderr, "loadgen: PASS — %d requests (%d shed with 429), %.1f MB/s, digest %s\n",
		res.Requests, res.Rejected429, res.ThroughputMBps, res.WindowDigest[:16])
	if res.Cluster != nil {
		fmt.Fprintf(stderr, "loadgen: cluster — %d nodes, per-node %v, %.0f retries, %.0f failovers\n",
			res.Cluster.Nodes, res.PerNode, res.Cluster.Retries, res.Cluster.Failovers)
	}
	return 0
}

func writeResult(res *loadtest.Result, path string, stdout io.Writer) error {
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func parseMix(s string) (loadtest.Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return loadtest.Mix{}, fmt.Errorf("mix %q: want bytes:stream:lease", s)
	}
	var w [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return loadtest.Mix{}, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
		w[i] = v
	}
	if w[0]+w[1]+w[2] == 0 {
		return loadtest.Mix{}, fmt.Errorf("mix %q: all weights zero", s)
	}
	return loadtest.Mix{Bytes: w[0], Stream: w[1], Lease: w[2]}, nil
}

func parseAlgs(s string) ([]core.Algorithm, error) {
	var out []core.Algorithm
	for _, name := range strings.Split(s, ",") {
		alg, err := core.ParseAlgorithm(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, alg)
	}
	return out, nil
}
