// Command benchcompare diffs two benchcpu reports cell by cell and
// prints per-cell throughput deltas. It is warn-only by design: CI runs
// it against the committed BENCH_cpu.json after every bench smoke so
// reviewers see drift, but a noisy runner never fails the build — the
// exit status is 0 unless an input cannot be read or parsed.
//
// Usage:
//
//	benchcompare -base BENCH_cpu.json -new /tmp/bench_new.json [-warn 0.10]
//
// -base also accepts "-" to read the baseline from stdin, which lets CI
// compare against a committed revision without a checkout:
//
//	git show HEAD:BENCH_cpu.json | benchcompare -base - -new bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// cell mirrors the benchcpu result schema (unknown fields ignored, so
// old reports without allocs_per_mib still parse).
type cell struct {
	Alg          string  `json:"alg"`
	Lanes        int     `json:"lanes"`
	Workers      int     `json:"workers"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
	AllocsPerMiB float64 `json:"allocs_per_mib"`
}

type benchReport struct {
	NumCPU  int    `json:"num_cpu"`
	Results []cell `json:"results"`
}

type key struct {
	alg            string
	lanes, workers int
}

func load(path string) (*benchReport, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var rep benchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	base := flag.String("base", "BENCH_cpu.json", "baseline report path (- for stdin)")
	next := flag.String("new", "", "new report path (- for stdin)")
	warnAt := flag.Float64("warn", 0.10, "warn when a cell slows down by more than this fraction")
	flag.Parse()
	if *next == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	if *base == "-" && *next == "-" {
		fmt.Fprintln(os.Stderr, "benchcompare: only one input may be stdin")
		os.Exit(2)
	}

	b, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	n, err := load(*next)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}

	diff(os.Stdout, b, n, *warnAt)
}

// diff prints the cell-by-cell comparison and returns how many cells
// regressed past the warn threshold.
func diff(w io.Writer, b, n *benchReport, warnAt float64) int {
	baseBy := make(map[key]cell, len(b.Results))
	for _, c := range b.Results {
		baseBy[key{c.Alg, c.Lanes, c.Workers}] = c
	}

	var warned int
	fmt.Fprintf(w, "%-9s %-6s %-8s %12s %12s %8s\n",
		"alg", "lanes", "workers", "base MB/s", "new MB/s", "delta")
	for _, c := range n.Results {
		old, ok := baseBy[key{c.Alg, c.Lanes, c.Workers}]
		if !ok {
			fmt.Fprintf(w, "%-9s %-6d %-8d %12s %12.1f %8s\n",
				c.Alg, c.Lanes, c.Workers, "(new)", c.BytesPerSec/1e6, "")
			continue
		}
		delta := c.BytesPerSec/old.BytesPerSec - 1
		mark := ""
		if delta < -warnAt {
			mark = "  WARN: slower than baseline"
			warned++
		}
		fmt.Fprintf(w, "%-9s %-6d %-8d %12.1f %12.1f %+7.1f%%%s\n",
			c.Alg, c.Lanes, c.Workers, old.BytesPerSec/1e6, c.BytesPerSec/1e6, 100*delta, mark)
	}
	if warned > 0 {
		fmt.Fprintf(w, "benchcompare: %d cell(s) slower than baseline by >%.0f%% "+
			"(warn-only; benchmark runners are noisy)\n", warned, 100*warnAt)
	}
	return warned
}
