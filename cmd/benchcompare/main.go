// Command benchcompare diffs two benchcpu reports cell by cell and
// prints per-cell throughput deltas. By default it is warn-only (the
// exit status is 0 unless an input cannot be read or parsed); with
// -fail-at it becomes a CI gate, exiting 1 when any cell slows down
// past the fail threshold unless that cell is listed in -allow.
//
// Usage:
//
//	benchcompare -base BENCH_cpu.json -new /tmp/bench_new.json [-warn 0.10]
//	benchcompare -base - -new bench.json -fail-at 0.25
//	benchcompare ... -fail-at 0.25 -allow 'mickey/64/1,grain/*/*'
//
// -base also accepts "-" to read the baseline from stdin, which lets CI
// compare against a committed revision without a checkout:
//
//	git show HEAD:BENCH_cpu.json | benchcompare -base - -new bench.json
//
// -allow takes comma-separated alg/lanes/workers patterns ("*" matches
// any field; the single word "all" matches every cell). Use it in the
// same commit that intentionally changes a baseline (e.g. an algorithm
// rewrite) so the gate documents the waiver instead of being disabled.
//
// -strict takes the same pattern syntax and inverts the leniency: a
// matching cell fails as soon as it slows past the -warn threshold (no
// noise allowance up to -fail-at) and cannot be waived by -allow.
// Reserve it for cells whose throughput is a headline claim — an
// accidental regression there should stop CI, not print a warning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// cell mirrors the benchcpu result schema (unknown fields ignored, so
// old reports without allocs_per_mib still parse).
type cell struct {
	Alg          string  `json:"alg"`
	Lanes        int     `json:"lanes"`
	Workers      int     `json:"workers"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
	AllocsPerMiB float64 `json:"allocs_per_mib"`
}

type benchReport struct {
	NumCPU  int    `json:"num_cpu"`
	Results []cell `json:"results"`
}

type key struct {
	alg            string
	lanes, workers int
}

func load(path string) (*benchReport, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var rep benchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// allowPattern is one alg/lanes/workers waiver; empty fields ("*")
// match anything.
type allowPattern struct {
	alg            string
	lanes, workers int // -1 = wildcard
}

func (p allowPattern) matches(c cell) bool {
	return (p.alg == "*" || p.alg == c.Alg) &&
		(p.lanes == -1 || p.lanes == c.Lanes) &&
		(p.workers == -1 || p.workers == c.Workers)
}

// parseAllow parses the -allow list; "all" waives every cell.
func parseAllow(s string) ([]allowPattern, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return []allowPattern{{alg: "*", lanes: -1, workers: -1}}, nil
	}
	var out []allowPattern
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad allow pattern %q (want alg/lanes/workers)", tok)
		}
		p := allowPattern{alg: parts[0], lanes: -1, workers: -1}
		var err error
		if parts[1] != "*" {
			if p.lanes, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("bad lanes in allow pattern %q", tok)
			}
		}
		if parts[2] != "*" {
			if p.workers, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("bad workers in allow pattern %q", tok)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

func allowed(c cell, allow []allowPattern) bool {
	for _, p := range allow {
		if p.matches(c) {
			return true
		}
	}
	return false
}

func main() {
	base := flag.String("base", "BENCH_cpu.json", "baseline report path (- for stdin)")
	next := flag.String("new", "", "new report path (- for stdin)")
	warnAt := flag.Float64("warn", 0.10, "warn when a cell slows down by more than this fraction")
	failAt := flag.Float64("fail-at", 0, "exit 1 when a cell slows down by more than this fraction (0 = warn-only)")
	allowSpec := flag.String("allow", "", "comma-separated alg/lanes/workers patterns exempt from -fail-at (\"all\" waives every cell)")
	strictSpec := flag.String("strict", "", "comma-separated alg/lanes/workers patterns that fail at the -warn threshold and ignore -allow")
	flag.Parse()
	if *next == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	if *base == "-" && *next == "-" {
		fmt.Fprintln(os.Stderr, "benchcompare: only one input may be stdin")
		os.Exit(2)
	}
	allow, err := parseAllow(*allowSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	strict, err := parseAllow(*strictSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}

	b, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	n, err := load(*next)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}

	if _, failed := diff(os.Stdout, b, n, *warnAt, *failAt, allow, strict); failed > 0 {
		os.Exit(1)
	}
}

// diff prints the cell-by-cell comparison and returns how many cells
// regressed past the warn threshold and how many failed the gate.
// failAt 0 disables the general gate, but strict-listed cells still
// fail at warnAt — and -allow never exempts them.
func diff(w io.Writer, b, n *benchReport, warnAt, failAt float64, allow, strict []allowPattern) (warned, failed int) {
	baseBy := make(map[key]cell, len(b.Results))
	for _, c := range b.Results {
		baseBy[key{c.Alg, c.Lanes, c.Workers}] = c
	}

	fmt.Fprintf(w, "%-16s %-6s %-8s %12s %12s %8s\n",
		"alg", "lanes", "workers", "base MB/s", "new MB/s", "delta")
	for _, c := range n.Results {
		old, ok := baseBy[key{c.Alg, c.Lanes, c.Workers}]
		if !ok {
			fmt.Fprintf(w, "%-16s %-6d %-8d %12s %12.1f %8s\n",
				c.Alg, c.Lanes, c.Workers, "(new)", c.BytesPerSec/1e6, "")
			continue
		}
		delta := c.BytesPerSec/old.BytesPerSec - 1
		mark := ""
		switch {
		case delta < -warnAt && allowed(c, strict):
			mark = "  FAIL: regression on strict-gated cell"
			failed++
		case failAt > 0 && delta < -failAt && !allowed(c, allow):
			mark = "  FAIL: regression past gate"
			failed++
		case failAt > 0 && delta < -failAt:
			mark = "  allowed: regression waived by -allow"
		case delta < -warnAt:
			mark = "  WARN: slower than baseline"
			warned++
		}
		fmt.Fprintf(w, "%-16s %-6d %-8d %12.1f %12.1f %+7.1f%%%s\n",
			c.Alg, c.Lanes, c.Workers, old.BytesPerSec/1e6, c.BytesPerSec/1e6, 100*delta, mark)
	}
	if warned > 0 {
		fmt.Fprintf(w, "benchcompare: %d cell(s) slower than baseline by >%.0f%% "+
			"(warning; benchmark runners are noisy)\n", warned, 100*warnAt)
	}
	if failed > 0 {
		fmt.Fprintf(w, "benchcompare: %d cell(s) failed the gate "+
			"(waive intentional baseline changes with -allow alg/lanes/workers; "+
			"strict-gated cells cannot be waived)\n", failed)
	}
	return warned, failed
}
