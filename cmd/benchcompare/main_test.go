package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rep(cells ...cell) *benchReport { return &benchReport{NumCPU: 1, Results: cells} }

func TestDiffWarnsOnRegressionOnly(t *testing.T) {
	base := rep(
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 100e6},
		cell{Alg: "grain", Lanes: 64, Workers: 1, BytesPerSec: 200e6},
	)
	next := rep(
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 80e6},  // -20%: warn
		cell{Alg: "grain", Lanes: 64, Workers: 1, BytesPerSec: 195e6},  // -2.5%: within noise
		cell{Alg: "trivium", Lanes: 64, Workers: 1, BytesPerSec: 50e6}, // no baseline cell
	)
	var out bytes.Buffer
	warned, failed := diff(&out, base, next, 0.10, 0, nil, nil)
	if warned != 1 || failed != 0 {
		t.Fatalf("warned, failed = %d, %d, want 1, 0\n%s", warned, failed, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "WARN: slower than baseline") {
		t.Fatalf("missing warn marker:\n%s", s)
	}
	if !strings.Contains(s, "(new)") {
		t.Fatalf("missing (new) marker for unmatched cell:\n%s", s)
	}
}

func TestDiffGatesOnFailThreshold(t *testing.T) {
	base := rep(
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 100e6},
		cell{Alg: "grain", Lanes: 256, Workers: 1, BytesPerSec: 200e6},
		cell{Alg: "chaotic(grain)", Lanes: 64, Workers: 1, BytesPerSec: 150e6},
	)
	next := rep(
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 60e6},         // -40%: past gate
		cell{Alg: "grain", Lanes: 256, Workers: 1, BytesPerSec: 170e6},        // -15%: warn only
		cell{Alg: "chaotic(grain)", Lanes: 64, Workers: 1, BytesPerSec: 90e6}, // -40%: past gate
	)
	var out bytes.Buffer
	warned, failed := diff(&out, base, next, 0.10, 0.25, nil, nil)
	if failed != 2 || warned != 1 {
		t.Fatalf("warned, failed = %d, %d, want 1, 2\n%s", warned, failed, out.String())
	}
	if !strings.Contains(out.String(), "FAIL: regression past gate") {
		t.Fatalf("missing fail marker:\n%s", out.String())
	}

	// The same regressions pass when waived.
	out.Reset()
	allow, err := parseAllow("mickey/64/1,chaotic(grain)/*/*")
	if err != nil {
		t.Fatal(err)
	}
	if _, failed := diff(&out, base, next, 0.10, 0.25, allow, nil); failed != 0 {
		t.Fatalf("failed = %d with waivers, want 0\n%s", failed, out.String())
	}
	if !strings.Contains(out.String(), "allowed: regression waived") {
		t.Fatalf("missing waiver marker:\n%s", out.String())
	}

	// "all" waives everything.
	allow, _ = parseAllow("all")
	if _, failed := diff(&out, base, next, 0.10, 0.25, allow, nil); failed != 0 {
		t.Fatalf("failed = %d with allow=all, want 0", failed)
	}
}

// Strict-gated cells must fail at the warn threshold even when the
// general gate is off, and -allow must not waive them.
func TestDiffStrictGate(t *testing.T) {
	base := rep(
		cell{Alg: "aes-ctr", Lanes: 64, Workers: 1, BytesPerSec: 100e6},
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 100e6},
	)
	next := rep(
		cell{Alg: "aes-ctr", Lanes: 64, Workers: 1, BytesPerSec: 85e6}, // -15%: inside fail-at, past warn
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 85e6},  // same delta, not strict
	)
	strict, err := parseAllow("aes-ctr/*/*")
	if err != nil {
		t.Fatal(err)
	}

	// With no general gate at all, the strict cell still fails.
	var out bytes.Buffer
	warned, failed := diff(&out, base, next, 0.10, 0, nil, strict)
	if failed != 1 || warned != 1 {
		t.Fatalf("warned, failed = %d, %d, want 1, 1\n%s", warned, failed, out.String())
	}
	if !strings.Contains(out.String(), "FAIL: regression on strict-gated cell") {
		t.Fatalf("missing strict fail marker:\n%s", out.String())
	}

	// -allow all does not exempt the strict cell.
	out.Reset()
	allow, _ := parseAllow("all")
	if _, failed := diff(&out, base, next, 0.10, 0.25, allow, strict); failed != 1 {
		t.Fatalf("failed = %d with allow=all, want 1 (strict ignores -allow)\n%s", failed, out.String())
	}

	// A strict cell inside the warn band passes.
	next.Results[0].BytesPerSec = 95e6 // -5%: within noise
	out.Reset()
	if _, failed := diff(&out, base, next, 0.10, 0.25, nil, strict); failed != 0 {
		t.Fatalf("failed = %d for strict cell within warn band, want 0\n%s", failed, out.String())
	}
}

func TestParseAllow(t *testing.T) {
	if ps, err := parseAllow(""); err != nil || ps != nil {
		t.Errorf("empty allow = %v, %v", ps, err)
	}
	ps, err := parseAllow(" trivium/64/1 , grain/*/2 ")
	if err != nil || len(ps) != 2 {
		t.Fatalf("parseAllow = %v, %v", ps, err)
	}
	if !ps[0].matches(cell{Alg: "trivium", Lanes: 64, Workers: 1}) {
		t.Error("exact pattern does not match")
	}
	if ps[0].matches(cell{Alg: "trivium", Lanes: 256, Workers: 1}) {
		t.Error("exact pattern over-matches")
	}
	if !ps[1].matches(cell{Alg: "grain", Lanes: 512, Workers: 2}) {
		t.Error("wildcard lanes does not match")
	}
	for _, bad := range []string{"trivium", "a/b/c", "x/1/y", "x/1"} {
		if _, err := parseAllow(bad); err == nil {
			t.Errorf("parseAllow(%q) accepted", bad)
		}
	}
}

func TestLoadParsesBenchcpuSchema(t *testing.T) {
	p := filepath.Join(t.TempDir(), "b.json")
	doc := `{"num_cpu":1,"results":[{"alg":"mickey","lanes":64,"workers":1,` +
		`"bytes":1,"seconds":1,"bytes_per_sec":42.0}]}`
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 1 || r.Results[0].BytesPerSec != 42 {
		t.Fatalf("unexpected parse: %+v", r)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load of missing file did not fail")
	}
}
