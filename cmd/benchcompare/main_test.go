package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rep(cells ...cell) *benchReport { return &benchReport{NumCPU: 1, Results: cells} }

func TestDiffWarnsOnRegressionOnly(t *testing.T) {
	base := rep(
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 100e6},
		cell{Alg: "grain", Lanes: 64, Workers: 1, BytesPerSec: 200e6},
	)
	next := rep(
		cell{Alg: "mickey", Lanes: 64, Workers: 1, BytesPerSec: 80e6},  // -20%: warn
		cell{Alg: "grain", Lanes: 64, Workers: 1, BytesPerSec: 195e6},  // -2.5%: within noise
		cell{Alg: "trivium", Lanes: 64, Workers: 1, BytesPerSec: 50e6}, // no baseline cell
	)
	var out bytes.Buffer
	if warned := diff(&out, base, next, 0.10); warned != 1 {
		t.Fatalf("warned = %d, want 1\n%s", warned, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "WARN: slower than baseline") {
		t.Fatalf("missing warn marker:\n%s", s)
	}
	if !strings.Contains(s, "(new)") {
		t.Fatalf("missing (new) marker for unmatched cell:\n%s", s)
	}
}

func TestLoadParsesBenchcpuSchema(t *testing.T) {
	p := filepath.Join(t.TempDir(), "b.json")
	doc := `{"num_cpu":1,"results":[{"alg":"mickey","lanes":64,"workers":1,` +
		`"bytes":1,"seconds":1,"bytes_per_sec":42.0}]}`
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 1 || r.Results[0].BytesPerSec != 42 {
		t.Fatalf("unexpected parse: %+v", r)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load of missing file did not fail")
	}
}
