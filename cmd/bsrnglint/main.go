// Command bsrnglint runs the repo's static-analysis suite (internal/lint)
// over the enclosing module and prints one line per finding:
//
//	file:line: [rule] message
//
// It exits 0 when the tree is clean, 1 on findings, and 2 when the
// module cannot be loaded. Package patterns on the command line (e.g.
// ./...) are accepted for familiarity but the suite always analyzes the
// whole module — every analyzer is a module-wide property.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(".", os.Stdout, os.Stderr))
}

func run(dir string, out, errw io.Writer) int {
	root, modPath, err := lint.FindModule(dir)
	if err != nil {
		fmt.Fprintln(errw, "bsrnglint:", err)
		return 2
	}
	m, err := lint.Load(modPath, map[string]string{modPath: root})
	if err != nil {
		fmt.Fprintln(errw, "bsrnglint:", err)
		return 2
	}
	diags := lint.Run(m, lint.DefaultConfig(modPath), lint.Analyzers)
	for _, d := range diags {
		fmt.Fprintf(out, "%s:%d: %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "bsrnglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath shortens filenames to module-relative form when possible.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return name
}
