// Command bsrnglint runs the repo's static-analysis suite (internal/lint)
// over the enclosing module and prints one line per finding:
//
//	file:line: [rule] message
//
// With -json it instead emits a machine-readable array of findings
// ({"file","line","rule","message"}), for CI problem matchers and other
// tooling. It exits 0 when the tree is clean, 1 on findings, and 2 when
// the module cannot be loaded. Package patterns on the command line
// (e.g. ./...) are accepted for familiarity but the suite always
// analyzes the whole module — every analyzer is a module-wide property.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line lines")
	flag.Parse()
	os.Exit(run(".", *jsonOut, os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(dir string, jsonOut bool, out, errw io.Writer) int {
	root, modPath, err := lint.FindModule(dir)
	if err != nil {
		fmt.Fprintln(errw, "bsrnglint:", err)
		return 2
	}
	m, err := lint.Load(modPath, map[string]string{modPath: root})
	if err != nil {
		fmt.Fprintln(errw, "bsrnglint:", err)
		return 2
	}
	diags := lint.Run(m, lint.DefaultConfig(modPath), lint.Analyzers)
	if jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:    relPath(root, d.Pos.Filename),
				Line:    d.Pos.Line,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errw, "bsrnglint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d: %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "bsrnglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath shortens filenames to module-relative form when possible.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return name
}
