package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanTree runs the driver over this repository and demands a
// clean exit — the same gate CI's lint job applies. Loading the whole
// module through the source importer takes a few seconds, so -short
// skips it.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint load is slow; skipped in -short")
	}
	var out, errw bytes.Buffer
	if code := run(".", false, &out, &errw); code != 0 {
		t.Fatalf("bsrnglint exit %d on the repo tree\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestRunNoModule checks the load-error exit path.
func TestRunNoModule(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(t.TempDir(), false, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2 for a directory outside any module", code)
	}
	if !strings.Contains(errw.String(), "no go.mod") {
		t.Errorf("stderr = %q, want a no-go.mod load error", errw.String())
	}
}

// writeModule materializes a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunJSONFindings pins the -json output shape on a module with one
// deliberate finding (a malformed suppression directive needs no
// analyzer configuration to fire).
func TestRunJSONFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"demo.go": "// Package demo has one malformed lint-ignore directive.\n" +
			"package demo\n\n//bsrng:lint-ignore\nfunc demo() {}\n",
	})
	var out, errw bytes.Buffer
	if code := run(dir, true, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	var findings []finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", findings)
	}
	f := findings[0]
	if f.File != "demo.go" || f.Line != 4 || f.Rule != "lint-ignore" ||
		!strings.Contains(f.Message, "malformed suppression") {
		t.Errorf("finding = %+v, want demo.go:4 lint-ignore malformed suppression", f)
	}
}

// TestRunJSONClean pins that a clean tree yields an empty JSON array
// (not null) and exit 0.
func TestRunJSONClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module demo\n\ngo 1.22\n",
		"demo.go": "// Package demo is clean.\npackage demo\n\nfunc demo() {}\n",
	})
	var out, errw bytes.Buffer
	if code := run(dir, true, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean-tree JSON = %q, want []", got)
	}
}
