package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCleanTree runs the driver over this repository and demands a
// clean exit — the same gate CI's lint job applies. Loading the whole
// module through the source importer takes a few seconds, so -short
// skips it.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint load is slow; skipped in -short")
	}
	var out, errw bytes.Buffer
	if code := run(".", &out, &errw); code != 0 {
		t.Fatalf("bsrnglint exit %d on the repo tree\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestRunNoModule checks the load-error exit path.
func TestRunNoModule(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(t.TempDir(), &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2 for a directory outside any module", code)
	}
	if !strings.Contains(errw.String(), "no go.mod") {
		t.Errorf("stderr = %q, want a no-go.mod load error", errw.String())
	}
}
