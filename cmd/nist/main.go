// Command nist runs the SP 800-22 battery against a generator or a file
// and prints a Table 3-style report (uniformity P-value, proportion,
// verdict per test).
//
// Usage:
//
//	nist -alg mickey -streams 64 -bits 100000        # scaled Table 3
//	nist -alg mickey -streams 1000 -bits 1000000     # the paper's full run
//	nist -file random.bin -streams 10 -bits 1000000  # test a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	bsrng "repro"
	"repro/internal/sp80022"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flag parsing, report generation and
// exit-status mapping (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nist", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algName := fs.String("alg", "mickey", "generator: mickey, grain, aes-ctr, trivium, xorgens or chaotic(<name>)")
	file := fs.String("file", "", "read bits from a file instead of a generator")
	streams := fs.Int("streams", 64, "number of bit streams")
	bits := fs.Int("bits", 100000, "bits per stream")
	seed := fs.Uint64("seed", 1, "base seed (stream i uses seed+i)")
	skipSlow := fs.Bool("fast", false, "skip the slow linear-complexity test")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := report(stdout, *algName, *file, *streams, *bits, *seed, *skipSlow); err != nil {
		fmt.Fprintln(stderr, "nist:", err)
		return 1
	}
	return 0
}

func report(w io.Writer, algName, file string, streams, bits int, seed uint64, skipSlow bool) error {
	if streams < 1 || bits < 128 {
		return fmt.Errorf("need streams ≥ 1 and bits ≥ 128")
	}
	params := sp80022.Params{SkipExpensiveTests: skipSlow}

	streamBits := make([][]uint8, streams)
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		all := sp80022.BitsFromBytes(data)
		if len(all) < streams*bits {
			return fmt.Errorf("file has %d bits, need %d", len(all), streams*bits)
		}
		for i := range streamBits {
			streamBits[i] = all[i*bits : (i+1)*bits]
		}
	} else {
		alg, err := bsrng.ParseAlgorithm(algName)
		if err != nil {
			return err
		}
		byteLen := (bits + 7) / 8
		for i := range streamBits {
			g, err := bsrng.New(alg, seed+uint64(i))
			if err != nil {
				return err
			}
			buf := make([]byte, byteLen)
			g.Read(buf)
			streamBits[i] = sp80022.BitsFromBytes(buf)[:bits]
		}
	}

	// Run streams across all cores.
	results := make([][]sp80022.Result, streams)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i := range streamBits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = sp80022.RunAll(streamBits[i], params)
		}(i)
	}
	wg.Wait()

	source := file
	if source == "" {
		source = algName + " (bitsliced)"
	}
	fmt.Fprintf(w, "NIST SP 800-22 battery: %d streams x %d bits, alpha=%.2f, source=%s\n\n",
		streams, bits, sp80022.Alpha, source)
	fmt.Fprintf(w, "%-24s %-10s %-10s %s\n", "Test", "P-value", "Proportion", "Result")
	for _, s := range sp80022.Summarize(results) {
		fmt.Fprintln(w, s.String())
	}
	lo, hi := sp80022.ProportionBounds(streams, sp80022.Alpha)
	fmt.Fprintf(w, "\nproportion acceptance interval for %d streams: [%.4f, %.4f]\n", streams, lo, hi)
	fmt.Fprintln(w, "uniformity threshold: P ≥ 0.0001 (SP 800-22 §4.2.2)")
	return nil
}
