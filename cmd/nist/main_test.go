package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	bsrng "repro"
)

func TestRunGeneratorReport(t *testing.T) {
	var out bytes.Buffer
	if err := report(&out, "trivium", "", 8, 20000, 1, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"NIST SP 800-22 battery", "Frequency", "Runs", "Proportion"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(s, "LinearComplexity") {
		t.Error("-fast did not skip linear complexity")
	}
	// Good generator output should not fail wholesale.
	if strings.Count(s, "FAIL") > 2 {
		t.Errorf("too many failures in report:\n%s", s)
	}
}

func TestRunFromFile(t *testing.T) {
	// Write generator output to a file and test it via the -file path.
	g, _ := bsrng.New(bsrng.GRAIN, 3)
	data := make([]byte, 4*20000/8)
	g.Read(data)
	path := filepath.Join(t.TempDir(), "bits.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := report(&out, "", path, 4, 20000, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), path) {
		t.Error("report does not name the source file")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := report(&out, "mickey", "", 0, 1000, 1, false); err == nil {
		t.Error("zero streams accepted")
	}
	if err := report(&out, "mickey", "", 1, 10, 1, false); err == nil {
		t.Error("tiny stream accepted")
	}
	if err := report(&out, "nope", "", 1, 1000, 1, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := report(&out, "", "/nonexistent/file", 1, 1000, 1, false); err == nil {
		t.Error("missing file accepted")
	}
	// File shorter than requested bits.
	path := filepath.Join(t.TempDir(), "short.bin")
	os.WriteFile(path, make([]byte, 10), 0o644)
	if err := report(&out, "", path, 1, 1000, 1, false); err == nil {
		t.Error("short file accepted")
	}
}

func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-alg", "grain", "-streams", "2", "-bits", "8192", "-fast"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "NIST SP 800-22 battery") {
		t.Error("report not written to stdout")
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-alg", "nope"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown algorithm: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown algorithm") {
		t.Errorf("error not reported on stderr: %s", stderr.String())
	}

	if code := run([]string{"-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestRunChaoticAlgorithm(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-alg", "chaotic(xorgens)", "-streams", "2", "-bits", "8192", "-fast"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "chaotic(xorgens)") {
		t.Error("report does not name the chaotic source")
	}
}
