package xorgens

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// SlicedVec is the bitsliced xorgens engine over the plane width V: one
// V-plane per state bit, 64·K independent generator instances per
// plane. The r-word ring lives as r×64 planes — plane w·64+n is bit n
// of ring word w — and the word recurrence becomes pure plane XOR
// circuitry: a left word shift by a maps plane n to plane n−a, so
// t ^= t<<a is 64−a in-place plane XORs at a fixed offset, with no
// per-bit extraction anywhere. One step advances every lane by a whole
// 64-bit output word (64 planes), which one TransposeVec turns into 8
// little-endian keystream bytes per lane — 64× fewer clock iterations
// per output byte than the bit-serial cipher engines need.
type SlicedVec[V bitslice.Vec] struct {
	x     []V // r*64 planes: plane w*64+n = bit n of ring word w
	i     int // ring slot of the most recently produced word
	lanes int

	// Reusable scratch, so keystream generation and Reseed allocate
	// nothing in steady state (the engine rekeys at every segment-pass
	// boundary).
	t, v, blk [64]V
	st        []uint64 // lanes × r expanded state words (Reseed)
	vals      []uint64 // one word per lane (Reseed packing)
}

// Sliced is the native 64-lane engine (the uint64 datapath).
type Sliced = SlicedVec[bitslice.V64]

// NewSliced builds a 64-lane (or fewer) engine; keys[L]/ivs[L] belong
// to lane L.
func NewSliced(keys, ivs [][]byte) (*Sliced, error) {
	return NewSlicedVec[bitslice.V64](keys, ivs)
}

// NewSlicedVec builds an engine of up to bitslice.VecLanes[V]() lanes.
func NewSlicedVec[V bitslice.Vec](keys, ivs [][]byte) (*SlicedVec[V], error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.VecLanes[V]() {
		return nil, fmt.Errorf("xorgens: lane count %d out of range [1,%d]", lanes, bitslice.VecLanes[V]())
	}
	g := &SlicedVec[V]{
		x:     make([]V, r*64),
		lanes: lanes,
		st:    make([]uint64, lanes*r),
		vals:  make([]uint64, lanes),
	}
	if err := g.Reseed(keys, ivs); err != nil {
		return nil, err
	}
	return g, nil
}

// Lanes returns the number of active lanes.
func (g *SlicedVec[V]) Lanes() int { return g.lanes }

// Reseed reloads fresh per-lane key/IV material, reusing the engine's
// buffers. Each lane's state is expanded (and warmed up) in the scalar
// domain — the expansion is per-lane sequential work with no lock-step
// structure to exploit — then packed into planes one ring word at a
// time via the 64×64 word transpose. The lane count must match the one
// the engine was built with.
func (g *SlicedVec[V]) Reseed(keys, ivs [][]byte) error {
	if len(keys) != g.lanes {
		return fmt.Errorf("xorgens: %d keys for %d lanes", len(keys), g.lanes)
	}
	if len(ivs) != g.lanes {
		return fmt.Errorf("xorgens: %d keys but %d ivs", len(keys), len(ivs))
	}
	for l := 0; l < g.lanes; l++ {
		if err := checkMaterial(keys[l], ivs[l]); err != nil {
			return fmt.Errorf("xorgens: lane %d: %w", l, err)
		}
	}
	for l := 0; l < g.lanes; l++ {
		expand(keys[l], ivs[l], g.st[l*r:(l+1)*r])
	}
	for w := 0; w < r; w++ {
		for l := 0; l < g.lanes; l++ {
			g.vals[l] = g.st[l*r+w]
		}
		blk := bitslice.PackWordsVec[V](g.vals)
		copy(g.x[w*64:(w+1)*64], blk[:])
	}
	g.i = r - 1
	return nil
}

// clockPlanes advances all lanes one step and leaves the 64 bit planes
// of the new word x_k in out (plane n = bit n of every lane's word).
func (g *SlicedVec[V]) clockPlanes(out *[64]V) {
	i := (g.i + 1) & (r - 1)
	j := (i + (r - s)) & (r - 1)
	tp := g.x[i*64 : i*64+64]
	vp := g.x[j*64 : j*64+64]
	t, v := &g.t, &g.v
	copy(t[:], tp)
	copy(v[:], vp)
	// t ^= t<<a: bit n of the shifted word is bit n−a, so plane n
	// absorbs plane n−a; descending order keeps the source planes
	// pre-shift. Likewise t ^= t>>b ascending.
	for n := 63; n >= a; n-- {
		y := t[n-a]
		for k := 0; k < len(y); k++ {
			t[n][k] ^= y[k]
		}
	}
	for n := 0; n < 64-b; n++ {
		y := t[n+b]
		for k := 0; k < len(y); k++ {
			t[n][k] ^= y[k]
		}
	}
	for n := 63; n >= c; n-- {
		y := v[n-c]
		for k := 0; k < len(y); k++ {
			v[n][k] ^= y[k]
		}
	}
	for n := 0; n < 64-d; n++ {
		y := v[n+d]
		for k := 0; k < len(y); k++ {
			v[n][k] ^= y[k]
		}
	}
	for n := 0; n < 64; n++ {
		y := v[n]
		for k := 0; k < len(y); k++ {
			t[n][k] ^= y[k]
		}
	}
	copy(tp, t[:])
	copy(out[:], t[:])
	g.i = i
}

// KeystreamBlockVec advances one step and transposes, so out[j][k],
// written little-endian, is the next 8 keystream bytes of lane 64·k+j
// (byte-compatible with Ref.Keystream).
func (g *SlicedVec[V]) KeystreamBlockVec(out *[64]V) {
	g.clockPlanes(out)
	bitslice.TransposeVec(out)
}

// Keystream fills one equal-length buffer per lane; lengths must be
// equal multiples of 8.
func (g *SlicedVec[V]) Keystream(bufs [][]byte) error {
	if len(bufs) != g.lanes {
		return fmt.Errorf("xorgens: %d buffers for %d lanes", len(bufs), g.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("xorgens: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("xorgens: buffer length must be a multiple of 8")
	}
	for off := 0; off < n; off += 8 {
		g.KeystreamBlockVec(&g.blk)
		for l := 0; l < g.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], g.blk[l&63][l>>6])
		}
	}
	return nil
}
