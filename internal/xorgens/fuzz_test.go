package xorgens

import (
	"bytes"
	"testing"

	"repro/internal/bitslice"
)

// FuzzSlicedMatchesRef drives the 64-lane sliced engine and the scalar
// reference from identical fuzz-chosen material and demands identical
// keystreams — the differential contract under adversarial inputs.
func FuzzSlicedMatchesRef(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), []byte("fedcba9876543210"), uint8(2), uint8(3))
	f.Add(make([]byte, KeySize), make([]byte, IVSize), uint8(1), uint8(1))
	f.Add(bytes.Repeat([]byte{0xFF}, KeySize), bytes.Repeat([]byte{0xAA}, IVSize), uint8(5), uint8(8))
	f.Fuzz(func(t *testing.T, keySeed, ivSeed []byte, lanesRaw, words uint8) {
		lanes := int(lanesRaw%8) + 1
		n := (int(words%8) + 1) * 8
		keys := make([][]byte, lanes)
		ivs := make([][]byte, lanes)
		for l := 0; l < lanes; l++ {
			keys[l] = make([]byte, KeySize)
			ivs[l] = make([]byte, IVSize)
			for i := range keys[l] {
				keys[l][i] = byte(l) * 0x3B
				if i < len(keySeed) {
					keys[l][i] ^= keySeed[i]
				}
			}
			for i := range ivs[l] {
				ivs[l][i] = byte(l) ^ 0x5C
				if i < len(ivSeed) {
					ivs[l][i] ^= ivSeed[i]
				}
			}
		}
		sl, err := NewSlicedVec[bitslice.V64](keys, ivs)
		if err != nil {
			t.Fatal(err)
		}
		bufs := make([][]byte, lanes)
		for l := range bufs {
			bufs[l] = make([]byte, n)
		}
		if err := sl.Keystream(bufs); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			ref, err := NewRef(keys[l], ivs[l])
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, n)
			ref.Keystream(want)
			if !bytes.Equal(bufs[l], want) {
				t.Fatalf("lane %d/%d diverges from scalar reference", l, lanes)
			}
		}
	})
}
