// Package xorgens implements an xorgens-style F₂-linear generator
// (Brent's xorgens4096 word recurrence; see also Nandapalan & Brent,
// "High-Performance Pseudo-Random Number Generation on GPUs") as the
// repository's fifth engine family. Unlike the eSTREAM stream ciphers,
// the state update is purely word-linear over F₂ — xor-shifts of whole
// 64-bit words — which makes it the natural next family for the paper's
// §4 technique: in bitsliced form every xor-shift is a fixed-offset
// plane XOR, so the whole recurrence is straight-line XOR circuitry
// with no clock-by-clock bit extraction at all.
//
// Recurrence (Brent, xorgens v3 parameters for 64-bit words, r = 64,
// i.e. a 4096-bit state):
//
//	x_k = x_{k-r}(I + L^a)(I + R^b) ⊕ x_{k-s}(I + L^c)(I + R^d)
//	(r, s, a, b, c, d) = (64, 53, 33, 26, 27, 29)
//
// where L/R are left/right word shifts. The engine emits x_k itself as
// the keystream word. Brent's combined Weyl-sequence output tempering
// is deliberately omitted: integer addition carries do not bitslice
// into plane operations, and this repository's seeding already gives
// every segment dense, decorrelated starting state (see expand), which
// is the degenerate-seed weakness the Weyl step defends against. The
// offline known-answer caveat of DESIGN.md §2 applies: the binding
// contract is the scalar reference below, which the differential suite
// holds the bitsliced engine to at every lane width.
//
// Keying: KeySize+IVSize bytes are folded into a 64-bit digest,
// expanded to the 4096-bit state with a splitmix64-style sequence, and
// the recurrence is clocked 2r times with discarded output so
// initialisation regularities cannot reach the keystream (Brent warms
// xorgens up the same way). Output bytes are the keystream words in
// little-endian order.
package xorgens

import (
	"encoding/binary"
	"fmt"
)

// KeySize is the engine key length in bytes.
const KeySize = 32

// IVSize is the engine initialization-vector length in bytes.
const IVSize = 16

// The xorgens4096 parameter set for 64-bit words.
const (
	r = 64 // state words (4096 bits)
	s = 53 // second tap distance
	a = 33 // left shift of the x_{k-r} term
	b = 26 // right shift of the x_{k-r} term
	c = 27 // left shift of the x_{k-s} term
	d = 29 // right shift of the x_{k-s} term
)

// warmupSteps is the number of discarded initialisation steps: two full
// state rotations, a multiple of r so every keyed engine starts at the
// same ring position.
const warmupSteps = 2 * r

// mix64 is the splitmix64 finalizer, used by the key expansion.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// step advances the ring buffer x (len r) by one word: slot i+1 mod r —
// the oldest word x_{k-r} — is replaced by x_k, which is also returned.
// i is the slot of the most recently produced word.
func step(x []uint64, i int) (int, uint64) {
	i = (i + 1) & (r - 1)
	t := x[i] // x_{k-r}
	t ^= t << a
	t ^= t >> b
	v := x[(i+(r-s))&(r-1)] // x_{k-s}
	v ^= v << c
	v ^= v >> d
	t ^= v
	x[i] = t
	return i, t
}

// expand derives the warmed-up r-word state from one (key, iv) pair
// into x (len r). Every key/iv byte influences the digest; the
// splitmix64 expansion makes an all-zero state unreachable in practice,
// and the warmup rotations diffuse any residual structure. The ring
// position after expand is r-1 (the next step fills slot 0).
func expand(key, iv []byte, x []uint64) {
	h := uint64(0x9E3779B97F4A7C15)
	for o := 0; o+8 <= len(key); o += 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(key[o:]))
	}
	for o := 0; o+8 <= len(iv); o += 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(iv[o:]))
	}
	sm := h
	for w := 0; w < r; w++ {
		sm += 0x9E3779B97F4A7C15
		x[w] = mix64(sm)
	}
	i := r - 1
	for n := 0; n < warmupSteps; n++ {
		i, _ = step(x, i)
	}
}

// checkMaterial validates one (key, iv) pair.
func checkMaterial(key, iv []byte) error {
	if len(key) != KeySize {
		return fmt.Errorf("xorgens: key must be %d bytes", KeySize)
	}
	if len(iv) != IVSize {
		return fmt.Errorf("xorgens: iv must be %d bytes", IVSize)
	}
	return nil
}

// Ref is the scalar reference implementation: one generator instance,
// one word per step.
type Ref struct {
	x [r]uint64
	i int
}

// NewRef returns a keyed generator.
func NewRef(key, iv []byte) (*Ref, error) {
	if err := checkMaterial(key, iv); err != nil {
		return nil, err
	}
	g := &Ref{i: r - 1}
	expand(key, iv, g.x[:])
	return g, nil
}

// NextWord emits the next keystream word.
func (g *Ref) NextWord() uint64 {
	var w uint64
	g.i, w = step(g.x[:], g.i)
	return w
}

// Keystream fills dst with keystream bytes — successive words written
// little-endian. len(dst) must be a multiple of 8.
func (g *Ref) Keystream(dst []byte) {
	if len(dst)%8 != 0 {
		panic("xorgens: keystream length must be a multiple of 8")
	}
	for o := 0; o < len(dst); o += 8 {
		binary.LittleEndian.PutUint64(dst[o:o+8], g.NextWord())
	}
}
