package xorgens

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitslice"
)

// Differential lockdown for the wide-lane datapath: at every supported
// plane width, every lane of the bitsliced engine must reproduce its
// scalar reference keystream byte-for-byte, across multiple output
// words, under distinct per-lane key/IV material — and again after a
// Reseed. This is the same contract the four cipher engines carry.
func TestDifferentialAllWidths(t *testing.T) {
	t.Run("w64", func(t *testing.T) { diffWidth[bitslice.V64](t, 64) })
	t.Run("w256", func(t *testing.T) { diffWidth[bitslice.V256](t, 256) })
	t.Run("w512", func(t *testing.T) { diffWidth[bitslice.V512](t, 512) })
	t.Run("w256partial", func(t *testing.T) { diffWidth[bitslice.V256](t, 70) })
	t.Run("w512partial", func(t *testing.T) { diffWidth[bitslice.V512](t, 450) })
}

func diffMaterial(rng *rand.Rand, lanes int) (keys, ivs [][]byte) {
	keys = make([][]byte, lanes)
	ivs = make([][]byte, lanes)
	for l := 0; l < lanes; l++ {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, IVSize)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	return keys, ivs
}

func diffWidth[V bitslice.Vec](t *testing.T, lanes int) {
	rng := rand.New(rand.NewSource(int64(7000 + lanes)))
	keys, ivs := diffMaterial(rng, lanes)
	sl, err := NewSlicedVec[V](keys, ivs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstRefs := func(pass string, keys, ivs [][]byte) {
		const n = 24 // three output words per lane
		bufs := make([][]byte, lanes)
		for l := range bufs {
			bufs[l] = make([]byte, n)
		}
		if err := sl.Keystream(bufs); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			ref, err := NewRef(keys[l], ivs[l])
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, n)
			ref.Keystream(want)
			if !bytes.Equal(bufs[l], want) {
				t.Fatalf("%s: lane %d/%d diverges from scalar reference\n got %x\nwant %x",
					pass, l, lanes, bufs[l], want)
			}
		}
	}
	checkAgainstRefs("initial", keys, ivs)
	keys2, ivs2 := diffMaterial(rng, lanes)
	if err := sl.Reseed(keys2, ivs2); err != nil {
		t.Fatal(err)
	}
	checkAgainstRefs("reseed", keys2, ivs2)
}

// The sliced engine must keep agreeing with the reference across many
// ring rotations (the ring wraps every r words), not just the first
// block — this exercises the circular tap indexing.
func TestDifferentialLongStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	const lanes = 3
	keys, ivs := diffMaterial(rng, lanes)
	sl, err := NewSlicedVec[bitslice.V64](keys, ivs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8 * 4 * r // four full ring rotations per lane
	bufs := make([][]byte, lanes)
	for l := range bufs {
		bufs[l] = make([]byte, n)
	}
	if err := sl.Keystream(bufs); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		ref, _ := NewRef(keys[l], ivs[l])
		want := make([]byte, n)
		ref.Keystream(want)
		if !bytes.Equal(bufs[l], want) {
			t.Fatalf("lane %d diverges over %d ring rotations", l, 4)
		}
	}
}

func TestSlicedRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	keys, ivs := diffMaterial(rng, 2)
	if _, err := NewSlicedVec[bitslice.V64](nil, nil); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := NewSlicedVec[bitslice.V64](diffKeys(rng, 65, KeySize), diffKeys(rng, 65, IVSize)); err == nil {
		t.Error("65 lanes accepted at width 64")
	}
	if _, err := NewSlicedVec[bitslice.V64](keys, ivs[:1]); err == nil {
		t.Error("key/iv count mismatch accepted")
	}
	if _, err := NewSlicedVec[bitslice.V64](diffKeys(rng, 2, KeySize-1), ivs); err == nil {
		t.Error("short keys accepted")
	}
	sl, err := NewSlicedVec[bitslice.V64](keys, ivs)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Lanes() != 2 {
		t.Errorf("Lanes() = %d, want 2", sl.Lanes())
	}
	if err := sl.Reseed(keys[:1], ivs[:1]); err == nil {
		t.Error("Reseed with wrong lane count accepted")
	}
	if err := sl.Keystream(make([][]byte, 1)); err == nil {
		t.Error("Keystream with wrong buffer count accepted")
	}
	bufs := [][]byte{make([]byte, 8), make([]byte, 16)}
	if err := sl.Keystream(bufs); err == nil {
		t.Error("ragged buffers accepted")
	}
	bufs = [][]byte{make([]byte, 7), make([]byte, 7)}
	if err := sl.Keystream(bufs); err == nil {
		t.Error("unaligned buffers accepted")
	}
}

func diffKeys(rng *rand.Rand, lanes, size int) [][]byte {
	out := make([][]byte, lanes)
	for l := range out {
		out[l] = make([]byte, size)
		rng.Read(out[l])
	}
	return out
}
