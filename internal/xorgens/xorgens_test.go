package xorgens

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/health"
)

func testMaterial(fill byte) (key, iv []byte) {
	key = make([]byte, KeySize)
	iv = make([]byte, IVSize)
	for i := range key {
		key[i] = fill + byte(i)
	}
	for i := range iv {
		iv[i] = fill ^ byte(0xA5+i)
	}
	return key, iv
}

func TestRefDeterminism(t *testing.T) {
	key, iv := testMaterial(7)
	g1, err := NewRef(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewRef(key, iv)
	a := make([]byte, 256)
	b := make([]byte, 256)
	g1.Keystream(a)
	g2.Keystream(b)
	if !bytes.Equal(a, b) {
		t.Fatal("same material diverged")
	}
	key2, iv2 := testMaterial(8)
	g3, _ := NewRef(key2, iv2)
	c := make([]byte, 256)
	g3.Keystream(c)
	if bytes.Equal(a, c) {
		t.Fatal("different material produced identical output")
	}
}

// A single flipped key or IV bit must change the keystream (the digest
// folds every material byte).
func TestRefMaterialSensitivity(t *testing.T) {
	key, iv := testMaterial(1)
	base, _ := NewRef(key, iv)
	want := make([]byte, 64)
	base.Keystream(want)
	for _, mutate := range []struct {
		name string
		buf  []byte
		at   int
	}{
		{"key first", key, 0},
		{"key last", key, KeySize - 1},
		{"iv first", iv, 0},
		{"iv last", iv, IVSize - 1},
	} {
		mutate.buf[mutate.at] ^= 0x01
		g, err := NewRef(key, iv)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 64)
		g.Keystream(got)
		mutate.buf[mutate.at] ^= 0x01
		if bytes.Equal(got, want) {
			t.Errorf("%s byte flip did not change the keystream", mutate.name)
		}
	}
}

func TestRefRejectsBadMaterial(t *testing.T) {
	key, iv := testMaterial(3)
	if _, err := NewRef(key[:KeySize-1], iv); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewRef(key, iv[:IVSize-1]); err == nil {
		t.Error("short iv accepted")
	}
}

func TestRefKeystreamAlignment(t *testing.T) {
	key, iv := testMaterial(4)
	g, _ := NewRef(key, iv)
	defer func() {
		if recover() == nil {
			t.Error("unaligned keystream length accepted")
		}
	}()
	g.Keystream(make([]byte, 7))
}

// Golden keystream: pins the scalar reference (and with it, through the
// differential suite, every lane width) to fixed bytes, so an
// accidental recurrence or expansion change cannot land silently.
func TestRefGolden(t *testing.T) {
	key := make([]byte, KeySize)
	iv := make([]byte, IVSize)
	for i := range key {
		key[i] = byte(i)
	}
	for i := range iv {
		iv[i] = byte(0xF0 + i)
	}
	g, err := NewRef(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	g.Keystream(got)
	const want = "d8a918f69b77d29365820414f8f993da22ec76b6e69a214057e99d0eb96767b8"
	if hex.EncodeToString(got) != want {
		t.Fatalf("golden keystream changed:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

// An all-zero key and IV must still produce healthy output: the
// expansion digests material through splitmix64, so there is no weak
// all-zero state (the reason the omitted Weyl tempering is not needed
// here).
func TestZeroMaterialIsHealthy(t *testing.T) {
	g, err := NewRef(make([]byte, KeySize), make([]byte, IVSize))
	if err != nil {
		t.Fatal(err)
	}
	seg := make([]byte, 2048)
	checker := health.NewChecker(health.Config{})
	for i := 0; i < 16; i++ {
		g.Keystream(seg)
		if err := checker.Check(seg); err != nil {
			t.Fatalf("segment %d unhealthy: %v", i, err)
		}
	}
}

// The recurrence must actually cycle the whole ring: 2r consecutive
// words from disjoint ring slots should never repeat.
func TestNoShortCycle(t *testing.T) {
	key, iv := testMaterial(9)
	g, _ := NewRef(key, iv)
	seen := make(map[uint64]int, 2*r)
	for i := 0; i < 2*r; i++ {
		w := g.NextWord()
		if j, dup := seen[w]; dup {
			t.Fatalf("word %d repeats word %d (%#x)", i, j, w)
		}
		seen[w] = i
	}
}
