package device

import (
	"math"
	"strings"
	"testing"
)

func TestDeviceTableMatchesPaper(t *testing.T) {
	if len(Devices) != 6 {
		t.Fatalf("Table 2 has 6 GPUs, got %d", len(Devices))
	}
	v100, ok := DeviceByName("Tesla V100")
	if !ok || v100.SPGflops != 14028 || v100.MemBWGBs != 900 {
		t.Errorf("V100 row wrong: %+v", v100)
	}
	if _, ok := DeviceByName("nope"); ok {
		t.Error("unknown device found")
	}
}

func TestTable1Normalization(t *testing.T) {
	// The paper's own normalized column, e.g. xorgensGP: 527.5/1344.96 =
	// 0.3922.
	for _, w := range PriorWorks {
		if w.Method == "xorgensGP" {
			if math.Abs(w.Normalized()-0.3922) > 1e-4 {
				t.Errorf("xorgensGP normalized %.4f, want 0.3922", w.Normalized())
			}
		}
		if w.Method == "RapidMind" && math.Abs(w.Normalized()-0.0752) > 1e-4 {
			t.Errorf("RapidMind normalized %.4f, want 0.0752", w.Normalized())
		}
	}
}

// Headline anchor: the calibrated model must reproduce the paper's
// numbers within a few percent — 2.72 Tb/s MICKEY on the 2080 Ti,
// 2.90 Tb/s on the V100, and cuRAND ~40% lower on the 2080 Ti.
func TestCalibratedAnchors(t *testing.T) {
	mickey, err := ProfileByName(CalibratedProfiles, "MICKEY 2.0 (bitsliced)")
	if err != nil {
		t.Fatal(err)
	}
	curand, err := ProfileByName(CalibratedProfiles, "cuRAND (MT19937)")
	if err != nil {
		t.Fatal(err)
	}
	ti2080, _ := DeviceByName("GTX 2080 Ti")
	v100, _ := DeviceByName("Tesla V100")

	if got := mickey.Throughput(ti2080); math.Abs(got-2720)/2720 > 0.12 {
		t.Errorf("MICKEY on 2080 Ti: %.0f Gbps, paper 2720", got)
	}
	if got := mickey.Throughput(v100); math.Abs(got-2900)/2900 > 0.12 {
		t.Errorf("MICKEY on V100: %.0f Gbps, paper 2900", got)
	}
	ratio := mickey.Throughput(ti2080) / curand.Throughput(ti2080)
	if ratio < 1.25 || ratio > 1.75 {
		t.Errorf("MICKEY/cuRAND on 2080 Ti = %.2f, paper ≈ 1.4", ratio)
	}
}

// Shape assertions for Figure 10: MICKEY wins on every device, AES is the
// slowest bitsliced kernel, and cuRAND never beats MICKEY.
func TestFig10Shape(t *testing.T) {
	rows := Fig10(CalibratedProfiles)
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Fastest != "MICKEY 2.0 (bitsliced)" {
			t.Errorf("%s: fastest is %s, want MICKEY", r.Device, r.Fastest)
		}
		if r.Gbps["AES-128 CTR (bitsliced)"] >= r.Gbps["Grain v1 (bitsliced)"] {
			t.Errorf("%s: AES should trail Grain", r.Device)
		}
		if r.Gbps["cuRAND (MT19937)"] >= r.Gbps["MICKEY 2.0 (bitsliced)"] {
			t.Errorf("%s: cuRAND should trail MICKEY", r.Device)
		}
	}
}

// Throughput must be monotone in device capability for compute-bound
// kernels.
func TestThroughputMonotonicity(t *testing.T) {
	k := KernelProfile{Name: "x", OpsPerBit: 30, ALUEff: 0.8, MemEff: 0.9}
	gtx1050, _ := DeviceByName("GTX 1050 Ti")
	v100, _ := DeviceByName("Tesla V100")
	if k.Throughput(gtx1050) >= k.Throughput(v100) {
		t.Error("more GFLOPS must not reduce compute-bound throughput")
	}
}

func TestMemoryRoof(t *testing.T) {
	// A near-zero-cost kernel must hit the memory roof, not scale with
	// GFLOPS.
	k := KernelProfile{Name: "x", OpsPerBit: 0.01, ALUEff: 1, MemEff: 0.5}
	d := Spec{Name: "d", SPGflops: 100000, MemBWGBs: 100}
	want := 100.0 * 8 * 0.5 // Gbit/s
	if got := k.Throughput(d); math.Abs(got-want) > 1e-9 {
		t.Errorf("memory roof %.1f, want %.1f", got, want)
	}
}

// §5.4: two devices reach ~1.92×, and efficiency declines at 4 and 8.
func TestMultiDeviceScaling(t *testing.T) {
	s := DefaultScaling
	if sp := s.Speedup(1); sp != 1 {
		t.Errorf("speedup(1) = %v", sp)
	}
	sp2 := s.Speedup(2)
	if math.Abs(sp2-1.92) > 0.02 {
		t.Errorf("speedup(2) = %.3f, paper 1.92", sp2)
	}
	sp4, sp8 := s.Speedup(4), s.Speedup(8)
	if !(sp4 > sp2 && sp8 > sp4) {
		t.Error("aggregate speedup should still grow with devices")
	}
	if !(sp4/4 < sp2/2 && sp8/8 < sp4/4) {
		t.Error("efficiency must decline at 4 and 8 devices (paper §5.4)")
	}
	if s.Speedup(0) != 0 {
		t.Error("speedup(0)")
	}
}

func TestAggregate(t *testing.T) {
	mickey, _ := ProfileByName(CalibratedProfiles, "MICKEY 2.0 (bitsliced)")
	ti1080, _ := DeviceByName("GTX 1080 Ti")
	one := DefaultScaling.Aggregate(mickey, ti1080, 1)
	two := DefaultScaling.Aggregate(mickey, ti1080, 2)
	if math.Abs(two/one-1.92) > 0.02 {
		t.Errorf("2-device aggregate ratio %.3f, want 1.92", two/one)
	}
}

func TestAnalyticProfilesOrdering(t *testing.T) {
	// The analytic (measured-cost) profiles tell the honest CPU story:
	// Grain is the cheapest per bit, and every bitsliced kernel sustains
	// better ALU efficiency than cuRAND-MT.
	grain, _ := ProfileByName(AnalyticProfiles, "Grain v1 (bitsliced)")
	mickey, _ := ProfileByName(AnalyticProfiles, "MICKEY 2.0 (bitsliced)")
	aes, _ := ProfileByName(AnalyticProfiles, "AES-128 CTR (bitsliced)")
	if !(grain.OpsPerBit < aes.OpsPerBit && grain.OpsPerBit < mickey.OpsPerBit) {
		t.Error("Grain must be the cheapest analytic kernel")
	}
	v100, _ := DeviceByName("Tesla V100")
	cur, _ := ProfileByName(AnalyticProfiles, "cuRAND (MT19937)")
	if cur.Throughput(v100) >= grain.Throughput(v100) {
		t.Error("analytic cuRAND should trail bitsliced Grain")
	}
}

func TestProfileByNameError(t *testing.T) {
	if _, err := ProfileByName(CalibratedProfiles, "missing"); err == nil {
		t.Error("missing profile found")
	}
}

func TestFig11IncludesPriorWorksAndSorts(t *testing.T) {
	rows := Fig11(CalibratedProfiles)
	if len(rows) != len(CalibratedProfiles)+len(PriorWorks) {
		t.Fatalf("row count %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Normalized > rows[i-1].Normalized {
			t.Fatal("Fig11 rows not sorted descending")
		}
	}
	prior := 0
	for _, r := range rows {
		if r.Prior {
			prior++
		}
	}
	if prior != len(PriorWorks) {
		t.Errorf("prior rows %d", prior)
	}
}

func TestFormatters(t *testing.T) {
	if !strings.Contains(FormatTable1(), "xorgensGP") {
		t.Error("table1 missing xorgensGP")
	}
	if !strings.Contains(FormatTable2(), "Tesla V100") {
		t.Error("table2 missing V100")
	}
	if !strings.Contains(FormatFig10(CalibratedProfiles), "GTX 2080 Ti") {
		t.Error("fig10 missing 2080 Ti")
	}
	if !strings.Contains(FormatFig11(CalibratedProfiles), "prior work") {
		t.Error("fig11 missing prior works")
	}
	mickey, _ := ProfileByName(CalibratedProfiles, "MICKEY 2.0 (bitsliced)")
	ti1080, _ := DeviceByName("GTX 1080 Ti")
	out := FormatScaling(mickey, ti1080, []int{1, 2, 4, 8})
	if !strings.Contains(out, "1.92") {
		t.Errorf("scaling table missing the 1.92 anchor:\n%s", out)
	}
}
