package device

import "fmt"

// KernelProfile characterizes one PRNG kernel for the roofline projection.
type KernelProfile struct {
	Name string
	// OpsPerBit is the number of full-width word operations the kernel
	// spends per output bit.
	OpsPerBit float64
	// ALUEff is the fraction of the device's peak arithmetic rate the
	// kernel sustains (integer-pipe ratio × occupancy). Bitsliced kernels
	// are register-resident straight-line code and sustain high rates;
	// table- and state-based generators stall on memory.
	ALUEff float64
	// MemEff is the fraction of peak memory bandwidth usable for output
	// writes (coalescing quality; state traffic for stateful generators).
	MemEff float64
}

// Throughput projects the kernel onto a device: the smaller of the
// compute roof (sustained ops/s ÷ ops/bit) and the memory roof (usable
// write bandwidth), in Gbit/s.
func (k KernelProfile) Throughput(d Spec) float64 {
	compute := d.SPGflops * 1e9 * k.ALUEff / k.OpsPerBit // bits/s
	mem := d.MemBWGBs * 1e9 * 8 * k.MemEff               // bits/s
	t := compute
	if mem < t {
		t = mem
	}
	return t / 1e9
}

// Normalized is the Fig. 11 metric: projected Gbps per device GFLOPS.
func (k KernelProfile) Normalized(d Spec) float64 {
	return k.Throughput(d) / d.SPGflops
}

// AnalyticProfiles carry the word-op costs counted from this repository's
// own engines (one op = one 32-bit ALU instruction on the modeled device;
// our 64-bit CPU words count double). They are the honest,
// measurement-driven profiles; see EXPERIMENTS.md for the discrepancy
// discussion against the paper's reported ordering.
var AnalyticProfiles = []KernelProfile{
	// MICKEY 2.0 bitsliced: ~1100 word ops per CLOCK_KG (two 100-plane
	// register updates) → ×2 for 32-bit datapath ÷ 64 bits out.
	{Name: "MICKEY 2.0 (bitsliced)", OpsPerBit: 34, ALUEff: 0.85, MemEff: 0.85},
	// Grain v1 bitsliced: ~46 ops per clock for 64 bits.
	{Name: "Grain v1 (bitsliced)", OpsPerBit: 1.5, ALUEff: 0.85, MemEff: 0.85},
	// AES-128 bitsliced CTR: ~123k ops per 64-lane batch (4096 bits).
	{Name: "AES-128 CTR (bitsliced)", OpsPerBit: 30, ALUEff: 0.85, MemEff: 0.85},
	// cuRAND MT19937: few ops/bit but serial recurrences and a 2.5 KB
	// state per generator throttle both pipes.
	{Name: "cuRAND (MT19937)", OpsPerBit: 1.0, ALUEff: 0.12, MemEff: 0.35},
	// Trivium bitsliced (repo extension): ~14 word ops per 64 output
	// bits — the cheapest kernel of all.
	{Name: "Trivium (bitsliced)", OpsPerBit: 0.45, ALUEff: 0.85, MemEff: 0.85},
}

// CalibratedProfiles anchor the model to the paper's reported numbers so
// that Fig. 10/11 can be regenerated with the published shape:
//
//   - MICKEY 2.0 at 2.90 Tb/s on the V100 and 2.72 Tb/s on the 2080 Ti
//     (§6, abstract) → ~4.8 effective ops/bit,
//   - cuRAND 40% below MICKEY on the 2080 Ti and 1.9× below on the
//     980 Ti (abstract, §1),
//   - Grain slightly below MICKEY and AES well below both, "limited by
//     the complex bitsliced S-box" (§5.2) — levels inferred from Fig. 10.
//
// The cross-device scaling (the part the anchors do not fix) is the
// model's prediction.
var CalibratedProfiles = []KernelProfile{
	{Name: "MICKEY 2.0 (bitsliced)", OpsPerBit: 4.84, ALUEff: 1.0, MemEff: 0.55},
	{Name: "Grain v1 (bitsliced)", OpsPerBit: 5.6, ALUEff: 1.0, MemEff: 0.50},
	{Name: "AES-128 CTR (bitsliced)", OpsPerBit: 14.5, ALUEff: 1.0, MemEff: 0.45},
	{Name: "cuRAND (MT19937)", OpsPerBit: 7.4, ALUEff: 1.0, MemEff: 0.40},
}

// ProfileByName finds a profile in the given set.
func ProfileByName(set []KernelProfile, name string) (KernelProfile, error) {
	for _, p := range set {
		if p.Name == name {
			return p, nil
		}
	}
	return KernelProfile{}, fmt.Errorf("device: no kernel profile %q", name)
}

// Multi-device scaling (paper §5.4) -------------------------------------

// ScalingModel captures the host-side costs of the multi-GPU scheme: the
// input partition/launch overhead per extra device and the output
// concatenation cost that grows with device count.
type ScalingModel struct {
	LaunchOverhead float64 // fractional cost per additional device
	ConcatOverhead float64 // fractional cost growing quadratically
}

// DefaultScaling reproduces the paper's observations: 1.92× on two
// GTX 1080 Ti and declining efficiency at 4–8 devices.
var DefaultScaling = ScalingModel{LaunchOverhead: 0.030, ConcatOverhead: 0.012}

// Speedup returns the aggregate speedup of n identical devices over one.
func (s ScalingModel) Speedup(n int) float64 {
	if n < 1 {
		return 0
	}
	x := float64(n - 1)
	return float64(n) / (1 + s.LaunchOverhead*x + s.ConcatOverhead*x*x)
}

// Aggregate projects a kernel across n identical devices, in Gbit/s.
func (s ScalingModel) Aggregate(k KernelProfile, d Spec, n int) float64 {
	return k.Throughput(d) * s.Speedup(n)
}
