package device

import (
	"fmt"
	"sort"
	"strings"
)

// Fig10Row is one device's projected throughput for the four kernels of
// the paper's Figure 10.
type Fig10Row struct {
	Device  string
	Gbps    map[string]float64 // kernel name → Gbit/s
	Fastest string
}

// Fig10 projects every kernel of the profile set onto every Table 2
// device — the data behind the paper's Figure 10.
func Fig10(profiles []KernelProfile) []Fig10Row {
	rows := make([]Fig10Row, 0, len(Devices))
	for _, d := range Devices {
		row := Fig10Row{Device: d.Name, Gbps: map[string]float64{}}
		best := ""
		bestV := -1.0
		for _, p := range profiles {
			v := p.Throughput(d)
			row.Gbps[p.Name] = v
			if v > bestV {
				bestV, best = v, p.Name
			}
		}
		row.Fastest = best
		rows = append(rows, row)
	}
	return rows
}

// Fig11Row is one entry of the normalized (Gbps/GFLOPS) comparison of the
// paper's Figure 11: our kernels on their best device alongside the prior
// works of Table 1.
type Fig11Row struct {
	Label      string
	Normalized float64
	Prior      bool
}

// Fig11 builds the Figure 11 comparison using the kernels' V100
// projection (the paper's best platform) and the Table 1 prior works.
func Fig11(profiles []KernelProfile) []Fig11Row {
	v100, _ := DeviceByName("Tesla V100")
	rows := make([]Fig11Row, 0, len(profiles)+len(PriorWorks))
	for _, p := range profiles {
		rows = append(rows, Fig11Row{Label: p.Name, Normalized: p.Normalized(v100)})
	}
	for _, w := range PriorWorks {
		rows = append(rows, Fig11Row{
			Label:      fmt.Sprintf("%s %s (%d)", w.Method, w.Ref, w.Year),
			Normalized: w.Normalized(),
			Prior:      true,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Normalized > rows[j].Normalized })
	return rows
}

// FormatTable1 renders the paper's Table 1 with the recomputed
// normalization column.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-5s %-10s %-9s %-10s %-8s %s\n",
		"Ref", "Year", "GPU", "GFLOPS", "Method", "Gbps", "Gbps/GFLOPS")
	for _, w := range PriorWorks {
		fmt.Fprintf(&b, "%-5s %-5d %-10s %-9.1f %-10s %-8.2f %.4f\n",
			w.Ref, w.Year, w.GPU, w.GFLOPS, w.Method, w.Gbps, w.Normalized())
	}
	return b.String()
}

// FormatTable2 renders the paper's Table 2.
func FormatTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-12s %s\n", "GPU", "SP GFLOPS", "DP GFLOPS", "Mem BW GB/s")
	for _, d := range Devices {
		fmt.Fprintf(&b, "%-12s %-12.0f %-12.0f %.0f\n", d.Name, d.SPGflops, d.DPGflops, d.MemBWGBs)
	}
	return b.String()
}

// FormatFig10 renders the Figure 10 projection as a text table.
func FormatFig10(profiles []KernelProfile) string {
	rows := Fig10(profiles)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "GPU")
	for _, p := range profiles {
		fmt.Fprintf(&b, " %24s", p.Name)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Device)
		for _, p := range profiles {
			fmt.Fprintf(&b, " %21.1f Gb", r.Gbps[p.Name])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig11 renders the Figure 11 normalized comparison.
func FormatFig11(profiles []KernelProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-14s %s\n", "Method", "Gbps/GFLOPS", "Source")
	for _, r := range Fig11(profiles) {
		src := "this work"
		if r.Prior {
			src = "prior work"
		}
		fmt.Fprintf(&b, "%-34s %-14.4f %s\n", r.Label, r.Normalized, src)
	}
	return b.String()
}

// FormatScaling renders the §5.4 multi-device projection for a kernel on
// a device.
func FormatScaling(k KernelProfile, d Spec, counts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "multi-GPU scaling of %s on %s\n", k.Name, d.Name)
	fmt.Fprintf(&b, "%-8s %-12s %-10s %s\n", "GPUs", "Gbit/s", "speedup", "efficiency")
	for _, n := range counts {
		sp := DefaultScaling.Speedup(n)
		fmt.Fprintf(&b, "%-8d %-12.1f %-10.2f %.0f%%\n",
			n, DefaultScaling.Aggregate(k, d, n), sp, 100*sp/float64(n))
	}
	return b.String()
}
