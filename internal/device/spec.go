// Package device models the GPU platforms of the paper's evaluation
// (§5.1, Table 2) and projects kernel throughput onto them.
//
// This repository runs on CPUs, so the six CUDA devices are replaced by an
// analytic roofline model (see DESIGN.md §2): a kernel is characterized by
// its word-operation cost per output bit (measured from the real bitsliced
// engines in this repo, or calibrated to the paper's anchors), and a
// device by its arithmetic throughput and memory bandwidth (Table 2). The
// projected throughput is the smaller of the compute and memory roofs.
// The model reproduces the shape of Figures 10 and 11 and the §5.4
// multi-GPU scaling.
package device

// Spec describes one GPU platform (paper Table 2).
type Spec struct {
	Name     string
	SPGflops float64 // single-precision GFLOP/s
	DPGflops float64 // double-precision GFLOP/s
	MemBWGBs float64 // memory bandwidth, GB/s
}

// Devices is the paper's Table 2.
var Devices = []Spec{
	{"GTX 480", 1344, 168, 177},
	{"GTX 980 Ti", 5632, 176, 337},
	{"GTX 1050 Ti", 1981, 62, 112},
	{"GTX 1080 Ti", 10609, 332, 484},
	{"Tesla V100", 14028, 7014, 900},
	{"GTX 2080 Ti", 11750, 367, 616},
}

// DeviceByName returns the named Table 2 entry.
func DeviceByName(name string) (Spec, bool) {
	for _, d := range Devices {
		if d.Name == name {
			return d, true
		}
	}
	return Spec{}, false
}

// PriorWork is one row of the paper's Table 1: previously proposed GPU
// PRNG implementations with their claimed throughput.
type PriorWork struct {
	Ref    string
	Year   int
	GPU    string
	GFLOPS float64
	Method string
	Gbps   float64
}

// PriorWorks is the paper's Table 1.
var PriorWorks = []PriorWork{
	{"[20]", 2008, "8800 GTX", 345.6, "RapidMind", 26},
	{"[33]", 2008, "7800 GTX", 20.6, "CA-PRNG", 0.41},
	{"[21]", 2009, "T10P", 622.1, "ParkMiller", 35},
	{"[12]", 2010, "S1070", 2488.3, "MCNP", 4.98},
	{"[31]", 2011, "GTX 480", 1344.96, "xorgensGP", 527.5},
	{"[10]", 2013, "GTX 480", 1344.96, "GASPRNG", 37.4},
}

// Normalized returns the work's throughput per processing power
// (Gbps/GFLOPS), the paper's Table 1 last column.
func (w PriorWork) Normalized() float64 { return w.Gbps / w.GFLOPS }
