package health

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// randSegment fills a 2048-byte segment from a seeded PRNG — good
// enough to pass every online cutoff (they sit ≥ 16σ out).
func randSegment(seed int64) []byte {
	seg := make([]byte, 2048)
	r := rand.New(rand.NewSource(seed))
	r.Read(seg)
	return seg
}

func TestHealthySegmentsPass(t *testing.T) {
	c := NewChecker(Config{})
	for seed := int64(0); seed < 200; seed++ {
		if err := c.Check(randSegment(seed)); err != nil {
			t.Fatalf("healthy segment (seed %d) failed: %v", seed, err)
		}
	}
	st := c.Stats()
	if st.Segments != 200 || st.Total() != 0 {
		t.Fatalf("stats %+v, want 200 segments, 0 failures", st)
	}
}

func TestDefaultsResolved(t *testing.T) {
	c := NewChecker(Config{})
	cfg := c.Config()
	if cfg.RCTCutoff != DefaultRCTCutoff || cfg.APTWindow != DefaultAPTWindow ||
		cfg.APTCutoff != DefaultAPTCutoff || cfg.MonobitSlack != DefaultMonobitSlack ||
		cfg.LongRunBits != DefaultLongRunBits {
		t.Fatalf("defaults not resolved: %+v", cfg)
	}
	// Explicit values survive.
	c2 := NewChecker(Config{RCTCutoff: 5, APTWindow: 256})
	if c2.Config().RCTCutoff != 5 || c2.Config().APTWindow != 256 || c2.Config().APTCutoff != DefaultAPTCutoff {
		t.Fatalf("explicit config clobbered: %+v", c2.Config())
	}
}

func TestRCTCatchesStuckByteRun(t *testing.T) {
	seg := randSegment(1)
	for i := 100; i < 108; i++ { // run of 8 identical bytes
		seg[i] = 0x5A
	}
	err := NewChecker(Config{}).Check(seg)
	var f *Failure
	if !errors.As(err, &f) || f.Test != RCT {
		t.Fatalf("got %v, want RCT failure", err)
	}
	if f.Observed < f.Limit {
		t.Fatalf("observed %d below limit %d", f.Observed, f.Limit)
	}
	// One byte short of the cutoff must pass RCT.
	seg2 := randSegment(2)
	for i := 100; i < 107; i++ {
		seg2[i] = 0x5A
	}
	// Neighbors must differ so the run is exactly 7.
	seg2[99], seg2[107] = 0x01, 0x02
	if err := NewChecker(Config{}).Check(seg2); err != nil {
		t.Fatalf("run of 7 tripped a test: %v", err)
	}
}

func TestAPTCatchesBiasedWindow(t *testing.T) {
	seg := randSegment(3)
	// Scatter 48 copies of the first window byte through window 0
	// without creating byte runs.
	b := seg[0]
	for k := 0; k < 48; k++ {
		seg[k*2] = b
		if seg[k*2+1] == b {
			seg[k*2+1] = b ^ 0xFF
		}
	}
	err := NewChecker(Config{}).Check(seg)
	var f *Failure
	if !errors.As(err, &f) || f.Test != APT {
		t.Fatalf("got %v, want APT failure", err)
	}
}

func TestMonobitCatchesBias(t *testing.T) {
	seg := randSegment(4)
	// Zero the top quarter: removes ~2048 one-bits, far past the slack,
	// but in 0x00 bytes whose runs would also trip RCT/LongRun — so
	// instead bias bytes to 0x01 (one bit set each, no runs).
	for i := 0; i < 1024; i += 2 {
		seg[i] = 0x01
		if seg[i+1] == 0x01 {
			seg[i+1] = 0x23
		}
	}
	err := NewChecker(Config{}).Check(seg)
	var f *Failure
	if !errors.As(err, &f) {
		t.Fatalf("biased segment passed")
	}
	if f.Test != Monobit && f.Test != APT {
		t.Fatalf("got %v, want monobit (or apt) failure", err)
	}
}

func TestMonobitAlone(t *testing.T) {
	// A segment engineered to be heavily biased with no long byte or bit
	// runs and no repeated window byte: alternate 0x11 0x22 0x44 …
	seg := make([]byte, 2048)
	pats := []byte{0x11, 0x22, 0x44, 0x88, 0x12, 0x24, 0x48, 0x81}
	for i := range seg {
		seg[i] = pats[i%len(pats)]
	}
	err := NewChecker(Config{APTCutoff: 1 << 30, RCTCutoff: 1 << 30}).Check(seg)
	var f *Failure
	if !errors.As(err, &f) || f.Test != Monobit {
		t.Fatalf("got %v, want Monobit failure", err)
	}
}

func TestLongRunCatchesStuckBits(t *testing.T) {
	// 64 one-bits in a row, embedded inside otherwise-healthy bytes and
	// with RCT relaxed so the bit test is what fires.
	seg := randSegment(5)
	for i := 500; i < 508; i++ {
		seg[i] = 0xFF
	}
	err := NewChecker(Config{RCTCutoff: 100, APTCutoff: 1 << 30}).Check(seg)
	var f *Failure
	if !errors.As(err, &f) || f.Test != LongRun {
		t.Fatalf("got %v, want LongRun failure", err)
	}
	if f.Observed < 64 {
		t.Fatalf("observed run %d < 64", f.Observed)
	}
}

func TestZeroSegmentFails(t *testing.T) {
	err := NewChecker(Config{}).Check(make([]byte, 2048))
	if err == nil {
		t.Fatal("all-zero segment passed")
	}
}

func TestEmptySegmentPasses(t *testing.T) {
	if err := NewChecker(Config{}).Check(nil); err != nil {
		t.Fatalf("empty segment failed: %v", err)
	}
}

func TestStatsCountPerTest(t *testing.T) {
	c := NewChecker(Config{})
	c.Check(randSegment(6))     // pass
	c.Check(make([]byte, 2048)) // all-zero: RCT fires first
	seg := make([]byte, 2048)   // monobit-only failure
	pats := []byte{0x11, 0x22, 0x44, 0x88, 0x12, 0x24, 0x48, 0x81}
	for i := range seg {
		seg[i] = pats[i%len(pats)]
	}
	c2 := NewChecker(Config{APTCutoff: 1 << 30, RCTCutoff: 1 << 30})
	c2.Check(seg)
	if st := c.Stats(); st.Segments != 2 || st.Failures[RCT] != 1 || st.Total() != 1 {
		t.Fatalf("checker stats %+v", st)
	}
	if st := c2.Stats(); st.Failures[Monobit] != 1 {
		t.Fatalf("monobit checker stats %+v", st)
	}
}

func TestFailureErrorAndTestString(t *testing.T) {
	f := &Failure{Test: APT, Observed: 50, Limit: 48}
	msg := f.Error()
	for _, want := range []string{"apt", "50", "48"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	names := map[Test]string{RCT: "rct", APT: "apt", Monobit: "monobit", LongRun: "longrun"}
	for tst, want := range names {
		if tst.String() != want {
			t.Errorf("Test(%d).String() = %q, want %q", tst, tst.String(), want)
		}
	}
	if s := Test(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown test string %q", s)
	}
}

func TestCheckerConcurrentUse(t *testing.T) {
	c := NewChecker(Config{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				c.Check(randSegment(int64(g*1000 + i)))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := c.Stats(); st.Segments != 200 {
		t.Fatalf("segments %d, want 200", st.Segments)
	}
}

func BenchmarkCheck(b *testing.B) {
	c := NewChecker(Config{})
	seg := randSegment(7)
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Check(seg); err != nil {
			b.Fatal(err)
		}
	}
}
