// Package health implements continuous online health tests for the
// BSRNG byte stream, in the spirit of SP 800-90B §4.4 (Repetition Count
// Test, Adaptive Proportion Test) and the FIPS 140-2 power-up battery
// (monobit, long-run), evaluated per 2048-byte segment — the canonical
// stream unit of internal/core.
//
// These are NOT the offline SP 800-22 battery (internal/sp80022): an
// online test must run at line rate on every segment of a deployed
// generator and essentially never false-positive, so every cutoff below
// is set where the per-segment failure probability of healthy output is
// astronomically small (< 2^-45) while gross faults — a stuck engine
// lane, a zeroed or constant segment, a wedged LFSR — trip it on the
// very first bad segment. See DESIGN.md §8 for the cutoff derivations.
package health

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Test identifies one of the continuous tests.
type Test uint8

const (
	// RCT is the SP 800-90B Repetition Count Test: a run of identical
	// bytes at least RCTCutoff long fails the segment.
	RCT Test = iota
	// APT is the SP 800-90B Adaptive Proportion Test: within each
	// APTWindow-byte window, the window's first byte occurring at least
	// APTCutoff times fails the segment.
	APT
	// Monobit is the FIPS 140-2-style bias check: the segment's ones
	// count must stay within MonobitSlack of exactly half the bits.
	Monobit
	// LongRun is the FIPS 140-2-style long-run check: a run of identical
	// bits at least LongRunBits long fails the segment.
	LongRun

	numTests
)

// String names the test for error messages and metric labels.
func (t Test) String() string {
	switch t {
	case RCT:
		return "rct"
	case APT:
		return "apt"
	case Monobit:
		return "monobit"
	case LongRun:
		return "longrun"
	}
	return fmt.Sprintf("Test(%d)", uint8(t))
}

// Failure reports which test a segment failed and by how much.
type Failure struct {
	Test     Test
	Observed int // the statistic that tripped (run length, count, |bias|)
	Limit    int // the configured cutoff it violated
}

func (f *Failure) Error() string {
	return fmt.Sprintf("health: segment failed %s: observed %d, limit %d", f.Test, f.Observed, f.Limit)
}

// Config sets the per-test cutoffs; zero values select the documented
// defaults. All defaults assume the 2048-byte core segment; they scale
// conservatively for other segment sizes.
type Config struct {
	// RCTCutoff is the failing run length of identical bytes (default
	// 8: P ≈ 2^-45 per healthy segment).
	RCTCutoff int
	// APTWindow is the APT window size in bytes (default 512).
	APTWindow int
	// APTCutoff is the failing occurrence count of a window's first
	// byte (default 48: the binomial tail P(X ≥ 48 | n=512, p=1/256) is
	// far below 2^-100).
	APTCutoff int
	// MonobitSlack is the allowed |ones − bits/2| (default 1024 — ±16σ
	// for a 16384-bit segment, unreachable by chance, tripped instantly
	// by a zeroed or heavily biased segment).
	MonobitSlack int
	// LongRunBits is the failing run length of identical bits (default
	// 64 — a whole stuck output word; P ≈ 2^-50 per healthy segment).
	LongRunBits int
}

// Default cutoffs; see the Config field docs and DESIGN.md §8.
const (
	DefaultRCTCutoff    = 8
	DefaultAPTWindow    = 512
	DefaultAPTCutoff    = 48
	DefaultMonobitSlack = 1024
	DefaultLongRunBits  = 64
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.RCTCutoff == 0 {
		c.RCTCutoff = DefaultRCTCutoff
	}
	if c.APTWindow == 0 {
		c.APTWindow = DefaultAPTWindow
	}
	if c.APTCutoff == 0 {
		c.APTCutoff = DefaultAPTCutoff
	}
	if c.MonobitSlack == 0 {
		c.MonobitSlack = DefaultMonobitSlack
	}
	if c.LongRunBits == 0 {
		c.LongRunBits = DefaultLongRunBits
	}
	return c
}

// Stats is a snapshot of a Checker's counters.
type Stats struct {
	// Segments counts segments checked.
	Segments uint64
	// Failures counts failed segments by test, indexed by Test.
	Failures [4]uint64
}

// Total sums the per-test failure counts.
func (s Stats) Total() uint64 {
	var t uint64
	for _, n := range s.Failures {
		t += n
	}
	return t
}

// Checker evaluates segments against the configured cutoffs. Check is
// stateless per segment (no state carries across calls), so a Checker
// is safe for concurrent use from many generator workers.
type Checker struct {
	cfg      Config
	segments atomic.Uint64
	failures [numTests]atomic.Uint64
}

// NewChecker builds a checker; zero-value cfg selects the defaults.
func NewChecker(cfg Config) *Checker {
	return &Checker{cfg: cfg.withDefaults()}
}

// Config reports the resolved cutoffs.
func (c *Checker) Config() Config { return c.cfg }

// Stats snapshots the counters; safe to call concurrently with Check.
func (c *Checker) Stats() Stats {
	var s Stats
	s.Segments = c.segments.Load()
	for i := range s.Failures {
		s.Failures[i] = c.failures[i].Load()
	}
	return s
}

// Check evaluates one segment. It returns nil for a healthy segment and
// a *Failure for the first test the segment trips (tests run in the
// order RCT, APT, Monobit, LongRun). One pass over the bytes plus one
// word-wise popcount pass: O(len(seg)) with small constants.
func (c *Checker) Check(seg []byte) error {
	c.segments.Add(1)
	if f := c.check(seg); f != nil {
		c.failures[f.Test].Add(1)
		return f
	}
	return nil
}

func (c *Checker) check(seg []byte) *Failure {
	if len(seg) == 0 {
		return nil
	}
	// RCT + APT share the byte pass.
	run := 1
	prev := seg[0]
	winStart := 0
	winByte := seg[0]
	winCount := 0
	for i, b := range seg {
		if i > 0 {
			if b == prev {
				run++
				if run >= c.cfg.RCTCutoff {
					return &Failure{Test: RCT, Observed: run, Limit: c.cfg.RCTCutoff}
				}
			} else {
				run = 1
				prev = b
			}
		}
		if i-winStart == c.cfg.APTWindow {
			winStart = i
			winByte = b
			winCount = 0
		}
		if b == winByte {
			winCount++
			if winCount >= c.cfg.APTCutoff {
				return &Failure{Test: APT, Observed: winCount, Limit: c.cfg.APTCutoff}
			}
		}
	}

	// Monobit: word-wise popcount.
	ones := 0
	i := 0
	for ; i+8 <= len(seg); i += 8 {
		w := uint64(seg[i]) | uint64(seg[i+1])<<8 | uint64(seg[i+2])<<16 | uint64(seg[i+3])<<24 |
			uint64(seg[i+4])<<32 | uint64(seg[i+5])<<40 | uint64(seg[i+6])<<48 | uint64(seg[i+7])<<56
		ones += bits.OnesCount64(w)
	}
	for ; i < len(seg); i++ {
		ones += bits.OnesCount8(seg[i])
	}
	half := len(seg) * 8 / 2
	bias := ones - half
	if bias < 0 {
		bias = -bias
	}
	if bias > c.cfg.MonobitSlack {
		return &Failure{Test: Monobit, Observed: bias, Limit: c.cfg.MonobitSlack}
	}

	// LongRun: longest run of identical bits. Whole 0x00/0xFF bytes
	// extend runs eight bits at a time; mixed bytes are scanned bitwise
	// (LSB-first, matching the engines' byte packing).
	longest, cur := 0, 0
	curBit := uint8(2) // sentinel: no run yet
	for _, b := range seg {
		switch {
		case b == 0x00 && curBit == 0:
			cur += 8
		case b == 0xFF && curBit == 1:
			cur += 8
		default:
			for k := 0; k < 8; k++ {
				bit := (b >> k) & 1
				if bit == curBit {
					cur++
				} else {
					if cur > longest {
						longest = cur
					}
					curBit = bit
					cur = 1
				}
			}
		}
		if cur >= c.cfg.LongRunBits {
			return &Failure{Test: LongRun, Observed: cur, Limit: c.cfg.LongRunBits}
		}
	}
	if cur > longest {
		longest = cur
	}
	if longest >= c.cfg.LongRunBits {
		return &Failure{Test: LongRun, Observed: longest, Limit: c.cfg.LongRunBits}
	}
	return nil
}
