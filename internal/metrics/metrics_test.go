package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("level", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests",
		"# TYPE reqs_total counter",
		"reqs_total 5",
		"# TYPE level gauge",
		"level 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledCounter(t *testing.T) {
	r := NewRegistry()
	lc := r.NewLabeledCounter("reqs_total", "", "alg", "status")
	lc.With("mickey", "200").Add(3)
	lc.With("grain", "400").Inc()
	lc.With("mickey", "200").Inc() // same child
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, `reqs_total{alg="mickey",status="200"} 4`) {
		t.Errorf("missing mickey row:\n%s", out)
	}
	if !strings.Contains(out, `reqs_total{alg="grain",status="400"} 1`) {
		t.Errorf("missing grain row:\n%s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.NewGaugeFunc("scrape_time", "", func() float64 { return v })
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "scrape_time 1.5") {
		t.Errorf("gauge func not rendered:\n%s", b.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("x", "")
	r.NewCounter("x", "")
}

// Concurrent updates must be race-free (run under -race in CI).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	h := r.NewHistogram("h", "", []float64{1})
	lc := r.NewLabeledCounter("lc", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 3))
				lc.With("a").Inc()
			}
		}(i)
	}
	var b strings.Builder
	r.WriteText(&b) // scrape while updating
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || lc.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d lc=%d", c.Value(), h.Count(), lc.With("a").Value())
	}
}

func TestLabeledGauge(t *testing.T) {
	r := NewRegistry()
	lg := r.NewLabeledGauge("pool_quarantined", "Quarantined shards.", "alg")
	lg.With("mickey").Set(2)
	lg.With("grain").Add(1)
	lg.With("grain").Add(-1)
	// Same labels return the same child.
	if lg.With("mickey") != lg.With("mickey") {
		t.Fatal("With not stable for identical labels")
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE pool_quarantined gauge",
		`pool_quarantined{alg="grain"} 0`,
		`pool_quarantined{alg="mickey"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Label arity mismatch panics like LabeledCounter.
	defer func() {
		if recover() == nil {
			t.Error("label arity mismatch did not panic")
		}
	}()
	lg.With("a", "b")
}
