// Package metrics is a dependency-free instrumentation kit for bsrngd:
// counters, labeled counters, gauges, gauge callbacks and fixed-bucket
// histograms behind a registry with a Prometheus-compatible text
// exposition. It deliberately implements only what the serving layer
// needs — the point is that the repo's tier-1 gate stays stdlib-only.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative ≤-bound buckets, plus
// a sum and total count — enough to derive rates and quantile bounds.
type Histogram struct {
	bounds []float64 // sorted upper bounds, implicit +Inf last
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LabeledCounter is a family of counters keyed by label values
// (a minimal CounterVec).
type LabeledCounter struct {
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

// With returns (creating on first use) the child counter for the given
// label values, which must match the declared label names in count and
// order.
func (lc *LabeledCounter) With(values ...string) *Counter {
	if len(values) != len(lc.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(lc.labels)))
	}
	key := strings.Join(values, "\x00")
	lc.mu.Lock()
	defer lc.mu.Unlock()
	c := lc.kids[key]
	if c == nil {
		c = &Counter{}
		lc.kids[key] = c
	}
	return c
}

// LabeledGauge is a family of gauges keyed by label values
// (a minimal GaugeVec).
type LabeledGauge struct {
	labels []string
	mu     sync.Mutex
	kids   map[string]*Gauge
}

// With returns (creating on first use) the child gauge for the given
// label values, which must match the declared label names in count and
// order.
func (lg *LabeledGauge) With(values ...string) *Gauge {
	if len(values) != len(lg.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(lg.labels)))
	}
	key := strings.Join(values, "\x00")
	lg.mu.Lock()
	defer lg.mu.Unlock()
	g := lg.kids[key]
	if g == nil {
		g = &Gauge{}
		lg.kids[key] = g
	}
	return g
}

// metric is one registered exposition entry.
type metric struct {
	name, help, typ string
	write           func(w io.Writer, name string)
}

// Registry owns a set of metrics and renders them as text.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	seen    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[m.name] {
		panic("metrics: duplicate metric " + m.name)
	}
	r.seen[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	}})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	}})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time
// — used to surface engine counters (core.Stream.Stats) without polling.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	}})
}

// NewHistogram registers a histogram with the given upper bounds
// (sorted ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds not sorted: " + name)
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(metric{name, help, "histogram", func(w io.Writer, n string) {
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
	}})
	return h
}

// NewLabeledCounter registers a counter family with the given label
// names.
func (r *Registry) NewLabeledCounter(name, help string, labels ...string) *LabeledCounter {
	lc := &LabeledCounter{labels: labels, kids: map[string]*Counter{}}
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		lc.mu.Lock()
		keys := make([]string, 0, len(lc.kids))
		for k := range lc.kids {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type row struct {
			key string
			val uint64
		}
		rows := make([]row, len(keys))
		for i, k := range keys {
			rows[i] = row{k, lc.kids[k].Value()}
		}
		lc.mu.Unlock()
		for _, rw := range rows {
			parts := strings.Split(rw.key, "\x00")
			pairs := make([]string, len(parts))
			for i, v := range parts {
				pairs[i] = fmt.Sprintf("%s=%q", lc.labels[i], v)
			}
			fmt.Fprintf(w, "%s{%s} %d\n", n, strings.Join(pairs, ","), rw.val)
		}
	}})
	return lc
}

// NewLabeledGauge registers a gauge family with the given label names.
func (r *Registry) NewLabeledGauge(name, help string, labels ...string) *LabeledGauge {
	lg := &LabeledGauge{labels: labels, kids: map[string]*Gauge{}}
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		lg.mu.Lock()
		keys := make([]string, 0, len(lg.kids))
		for k := range lg.kids {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type row struct {
			key string
			val int64
		}
		rows := make([]row, len(keys))
		for i, k := range keys {
			rows[i] = row{k, lg.kids[k].Value()}
		}
		lg.mu.Unlock()
		for _, rw := range rows {
			parts := strings.Split(rw.key, "\x00")
			pairs := make([]string, len(parts))
			for i, v := range parts {
				pairs[i] = fmt.Sprintf("%s=%q", lg.labels[i], v)
			}
			fmt.Fprintf(w, "%s{%s} %d\n", n, strings.Join(pairs, ","), rw.val)
		}
	}})
	return lg
}

// WriteText renders every registered metric in registration order using
// the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.write(w, m.name)
	}
}

// formatFloat renders floats compactly ("0.005", "1", "2.5e+06").
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
