package bitslice

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz targets for the representation-change kernels: wide-lane
// rewrites are exactly where silent keystream corruption sneaks in, so
// the pack/unpack/transpose round-trip laws are pinned by fuzzing in
// addition to the unit tests. Seed corpora live under testdata/fuzz; CI
// runs each target briefly with -fuzz.

// fuzzBits expands fuzz bytes into n bit values.
func fuzzBits(data []byte, n int) []uint8 {
	bits := make([]uint8, n)
	for i := range bits {
		if len(data) == 0 {
			break
		}
		bits[i] = (data[i%len(data)] >> uint(i&7)) & 1
	}
	return bits
}

// fuzzWords expands fuzz bytes into n uint64 words.
func fuzzWords(data []byte, n int) []uint64 {
	words := make([]uint64, n)
	var b [8]byte
	for i := range words {
		for j := 0; j < 8; j++ {
			if len(data) > 0 {
				b[j] = data[(8*i+j)%len(data)] ^ byte(8*i+j)
			}
		}
		words[i] = binary.LittleEndian.Uint64(b[:])
	}
	return words
}

// FuzzPackBitsRoundTrip checks UnpackBits ∘ PackBits = id and that
// PackBits agrees with the single-bit accessors.
func FuzzPackBitsRoundTrip(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1), uint8(1))
	f.Add([]byte{0xFF, 0x0F, 0xA5}, uint8(64), uint8(40))
	f.Add([]byte("pack bits round trip"), uint8(17), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, lanesRaw, nRaw uint8) {
		lanes := int(lanesRaw)%W + 1
		n := int(nRaw)%96 + 1
		bits := make([][]uint8, lanes)
		for l := range bits {
			bits[l] = fuzzBits(append([]byte{byte(l)}, data...), n)
		}
		planes := PackBits(bits)
		if len(planes) != n {
			t.Fatalf("PackBits returned %d planes, want %d", len(planes), n)
		}
		back := UnpackBits(planes, lanes)
		for l := range bits {
			if !bytes.Equal(bits[l], back[l]) {
				t.Fatalf("lane %d: round trip mismatch", l)
			}
			for i := range bits[l] {
				if LaneBit(planes, i, l) != bits[l][i] {
					t.Fatalf("LaneBit(%d, %d) disagrees with input", i, l)
				}
			}
		}
	})
}

// FuzzPackWordsRoundTrip checks UnpackWords ∘ PackWords = id for every
// lane count, in both the scalar and the Vec form.
func FuzzPackWordsRoundTrip(f *testing.F) {
	f.Add([]byte{0x01}, uint8(64))
	f.Add([]byte("pack words"), uint8(3))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33}, uint8(33))
	f.Fuzz(func(t *testing.T, data []byte, lanesRaw uint8) {
		lanes := int(lanesRaw)%W + 1
		vals := fuzzWords(data, lanes)

		planes := PackWords(vals)
		back := UnpackWords(&planes, lanes)
		for l := range vals {
			if back[l] != vals[l] {
				t.Fatalf("scalar lane %d: %x != %x", l, back[l], vals[l])
			}
		}

		wide := fuzzWords(data, 8*lanes)
		vp := PackWordsVec[V256](wide[:min(len(wide), 256)])
		vb := UnpackWordsVec(&vp, min(len(wide), 256))
		for l := range vb {
			if vb[l] != wide[l] {
				t.Fatalf("vec lane %d: %x != %x", l, vb[l], wide[l])
			}
		}
	})
}

// FuzzTransposeVec checks that TransposeVec is an involution at every
// width and that the V64 instantiation matches Transpose64.
func FuzzTransposeVec(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00})
	f.Add([]byte("transpose involution seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		words := fuzzWords(data, 64*8)
		fuzzTransposeWidth[V64](t, words)
		fuzzTransposeWidth[V256](t, words)
		fuzzTransposeWidth[V512](t, words)

		var a64 [64]uint64
		copy(a64[:], words)
		var av [64]V64
		for i := range av {
			av[i][0] = a64[i]
		}
		Transpose64(&a64)
		TransposeVec(&av)
		for i := range a64 {
			if a64[i] != av[i][0] {
				t.Fatalf("plane %d: TransposeVec[V64] diverges from Transpose64", i)
			}
		}
	})
}

func fuzzTransposeWidth[V Vec](t *testing.T, words []uint64) {
	var a, orig [64]V
	for i := range a {
		for k := 0; k < len(a[i]); k++ {
			a[i][k] = words[(i*len(a[i])+k)%len(words)]
		}
	}
	orig = a
	TransposeVec(&a)
	TransposeVec(&a)
	if a != orig {
		t.Fatalf("TransposeVec not an involution at %d lanes", VecLanes[V]())
	}
}
