package bitslice

import (
	"math/rand"
	"testing"
)

// runWidths runs a generic subtest at every supported vector width.
func runWidths(t *testing.T, name string, f64, f256, f512 func(t *testing.T)) {
	t.Run(name+"/64", f64)
	t.Run(name+"/256", f256)
	t.Run(name+"/512", f512)
}

func testVecWidths[V Vec](t *testing.T) {
	var v V
	if got := VecWords[V](); got != len(v) {
		t.Fatalf("VecWords = %d, want %d", got, len(v))
	}
	if got := VecLanes[V](); got != 64*len(v) {
		t.Fatalf("VecLanes = %d, want %d", got, 64*len(v))
	}
}

func TestVecWidths(t *testing.T) {
	runWidths(t, "widths", testVecWidths[V64], testVecWidths[V256], testVecWidths[V512])
}

func testBroadcastVec[V Vec](t *testing.T) {
	ones := BroadcastVec[V](1)
	zeros := BroadcastVec[V](0)
	for k := 0; k < len(ones); k++ {
		if ones[k] != ^uint64(0) {
			t.Fatalf("BroadcastVec(1) word %d = %x", k, ones[k])
		}
		if zeros[k] != 0 {
			t.Fatalf("BroadcastVec(0) word %d = %x", k, zeros[k])
		}
	}
}

func TestBroadcastVec(t *testing.T) {
	runWidths(t, "broadcast", testBroadcastVec[V64], testBroadcastVec[V256], testBroadcastVec[V512])
}

func testLaneBitsVec[V Vec](t *testing.T) {
	lanes := VecLanes[V]()
	planes := make([]V, 37)
	rng := rand.New(rand.NewSource(int64(lanes)))
	type pt struct{ i, l int }
	set := map[pt]uint8{}
	for n := 0; n < 500; n++ {
		i, l, b := rng.Intn(len(planes)), rng.Intn(lanes), uint8(rng.Intn(2))
		SetLaneBitVec(planes, i, l, b)
		set[pt{i, l}] = b
	}
	for p, b := range set {
		if got := LaneBitVec(planes, p.i, p.l); got != b {
			t.Fatalf("bit (%d, lane %d) = %d, want %d", p.i, p.l, got, b)
		}
	}
	// ExtractLaneVec must agree with LaneBitVec.
	for l := 0; l < lanes; l += 7 {
		bits := ExtractLaneVec(planes, l)
		for i := range bits {
			if bits[i] != LaneBitVec(planes, i, l) {
				t.Fatalf("ExtractLaneVec disagrees at (%d, lane %d)", i, l)
			}
		}
	}
}

func TestLaneBitsVec(t *testing.T) {
	runWidths(t, "lanebits", testLaneBitsVec[V64], testLaneBitsVec[V256], testLaneBitsVec[V512])
}

func testPackBitsVecRoundTrip[V Vec](t *testing.T) {
	lanes := VecLanes[V]()
	rng := rand.New(rand.NewSource(99))
	bits := make([][]uint8, lanes)
	for l := range bits {
		bits[l] = make([]uint8, 53)
		for i := range bits[l] {
			bits[l][i] = uint8(rng.Intn(2))
		}
	}
	planes := PackBitsVec[V](bits)
	back := UnpackBitsVec(planes, lanes)
	for l := range bits {
		for i := range bits[l] {
			if bits[l][i] != back[l][i] {
				t.Fatalf("lane %d bit %d: round trip broke", l, i)
			}
		}
	}
}

func TestPackBitsVecRoundTrip(t *testing.T) {
	runWidths(t, "packbits",
		testPackBitsVecRoundTrip[V64], testPackBitsVecRoundTrip[V256], testPackBitsVecRoundTrip[V512])
}

func testPackWordsVecRoundTrip[V Vec](t *testing.T) {
	lanes := VecLanes[V]()
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, lanes / 2, lanes} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
		}
		planes := PackWordsVec[V](vals)
		back := UnpackWordsVec(&planes, n)
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("n=%d lane %d: %x != %x", n, i, back[i], vals[i])
			}
		}
		// Plane i, lane L must be bit i of vals[L].
		for i := 0; i < 64; i += 13 {
			for l := 0; l < n; l += 19 {
				want := uint8((vals[l] >> uint(i)) & 1)
				if got := uint8((planes[i][l>>6] >> uint(l&63)) & 1); got != want {
					t.Fatalf("plane %d lane %d: bit %d != %d", i, l, got, want)
				}
			}
		}
	}
}

func TestPackWordsVecRoundTrip(t *testing.T) {
	runWidths(t, "packwords",
		testPackWordsVecRoundTrip[V64], testPackWordsVecRoundTrip[V256], testPackWordsVecRoundTrip[V512])
}

func testTransposeVecInvolution[V Vec](t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, orig [64]V
	for i := range a {
		for k := 0; k < len(a[i]); k++ {
			a[i][k] = rng.Uint64()
		}
	}
	orig = a
	TransposeVec(&a)
	// Spot-check the transposition itself: bit j of a[i][k] must be the
	// former bit i of a[j][k].
	for i := 0; i < 64; i += 11 {
		for j := 0; j < 64; j += 13 {
			for k := 0; k < len(a[i]); k++ {
				got := (a[i][k] >> uint(j)) & 1
				want := (orig[j][k] >> uint(i)) & 1
				if got != want {
					t.Fatalf("transpose wrong at (%d,%d) word %d", i, j, k)
				}
			}
		}
	}
	TransposeVec(&a)
	if a != orig {
		t.Fatal("TransposeVec is not an involution")
	}
}

func TestTransposeVecInvolution(t *testing.T) {
	runWidths(t, "transpose",
		testTransposeVecInvolution[V64], testTransposeVecInvolution[V256], testTransposeVecInvolution[V512])
}

// The V64 path must agree exactly with the legacy uint64 helpers.
func TestVecMatchesScalarHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	scalar := PackWords(vals)
	vec := PackWordsVec[V64](vals)
	for i := range scalar {
		if scalar[i] != vec[i][0] {
			t.Fatalf("plane %d: PackWordsVec[V64] diverges from PackWords", i)
		}
	}
	var a64 [64]uint64
	var av [64]V64
	for i := range a64 {
		a64[i] = vals[i]
		av[i][0] = vals[i]
	}
	Transpose64(&a64)
	TransposeVec(&av)
	for i := range a64 {
		if a64[i] != av[i][0] {
			t.Fatalf("plane %d: TransposeVec[V64] diverges from Transpose64", i)
		}
	}
}
