package bitslice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose64Identity(t *testing.T) {
	// Transposing twice must restore the original matrix.
	rng := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
	}
	orig = a
	Transpose64(&a)
	Transpose64(&a)
	if a != orig {
		t.Fatal("double transpose did not restore matrix")
	}
}

func TestTranspose64Definition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
	}
	b = a
	Transpose64(&b)
	for k := 0; k < 64; k++ {
		for j := 0; j < 64; j++ {
			got := (b[k] >> uint(j)) & 1
			want := (a[j] >> uint(k)) & 1
			if got != want {
				t.Fatalf("bit (%d,%d): got %d want %d", k, j, got, want)
			}
		}
	}
}

func TestTranspose64Diagonal(t *testing.T) {
	// The identity matrix is its own transpose.
	var a [64]uint64
	for i := range a {
		a[i] = 1 << uint(i)
	}
	orig := a
	Transpose64(&a)
	if a != orig {
		t.Fatal("identity matrix changed under transposition")
	}
}

func TestTranspose32Definition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b [32]uint32
	for i := range a {
		a[i] = rng.Uint32()
	}
	b = a
	Transpose32(&b)
	for k := 0; k < 32; k++ {
		for j := 0; j < 32; j++ {
			got := (b[k] >> uint(j)) & 1
			want := (a[j] >> uint(k)) & 1
			if got != want {
				t.Fatalf("bit (%d,%d): got %d want %d", k, j, got, want)
			}
		}
	}
}

func TestTranspose32Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var a, orig [32]uint32
	for i := range a {
		a[i] = rng.Uint32()
	}
	orig = a
	Transpose32(&a)
	Transpose32(&a)
	if a != orig {
		t.Fatal("double transpose did not restore matrix")
	}
}

func TestPackUnpackBitsRoundTrip(t *testing.T) {
	f := func(seed int64, lanes8 uint8, n8 uint8) bool {
		lanes := int(lanes8%64) + 1
		n := int(n8%100) + 1
		rng := rand.New(rand.NewSource(seed))
		bits := make([][]uint8, lanes)
		for l := range bits {
			bits[l] = make([]uint8, n)
			for i := range bits[l] {
				bits[l][i] = uint8(rng.Intn(2))
			}
		}
		planes := PackBits(bits)
		back := UnpackBits(planes, lanes)
		for l := range bits {
			for i := range bits[l] {
				if bits[l][i] != back[l][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackBitsPlaneLayout(t *testing.T) {
	// lane 3 has bit pattern 1,0,1; everything else zero.
	bits := make([][]uint8, 5)
	for l := range bits {
		bits[l] = make([]uint8, 3)
	}
	bits[3] = []uint8{1, 0, 1}
	planes := PackBits(bits)
	if planes[0] != 1<<3 || planes[1] != 0 || planes[2] != 1<<3 {
		t.Fatalf("unexpected planes %v", planes)
	}
}

func TestPackBitsPanics(t *testing.T) {
	assertPanics(t, "ragged", func() {
		PackBits([][]uint8{{1, 0}, {1}})
	})
	assertPanics(t, "too many lanes", func() {
		PackBits(make([][]uint8, 65))
	})
	assertPanics(t, "unpack lanes", func() {
		UnpackBits(nil, 65)
	})
}

func TestPackBitsEmpty(t *testing.T) {
	if got := PackBits(nil); got != nil {
		t.Fatalf("PackBits(nil) = %v, want nil", got)
	}
}

func TestSetGetLaneBit(t *testing.T) {
	planes := make([]uint64, 4)
	SetLaneBit(planes, 2, 17, 1)
	if LaneBit(planes, 2, 17) != 1 {
		t.Fatal("bit not set")
	}
	if planes[2] != 1<<17 {
		t.Fatalf("plane 2 = %x", planes[2])
	}
	SetLaneBit(planes, 2, 17, 0)
	if LaneBit(planes, 2, 17) != 0 || planes[2] != 0 {
		t.Fatal("bit not cleared")
	}
}

func TestBroadcast(t *testing.T) {
	if Broadcast(0) != 0 {
		t.Fatal("Broadcast(0)")
	}
	if Broadcast(1) != ^uint64(0) {
		t.Fatal("Broadcast(1)")
	}
	if Broadcast(3) != ^uint64(0) {
		t.Fatal("Broadcast masks to one bit")
	}
}

func TestPackWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	planes := PackWords(vals)
	back := UnpackWords(&planes, 64)
	for i := range vals {
		if vals[i] != back[i] {
			t.Fatalf("lane %d: %x != %x", i, back[i], vals[i])
		}
	}
}

func TestPackWordsLayout(t *testing.T) {
	// lane 5 holds value with bit 9 set: plane 9 must have bit 5 set.
	vals := make([]uint64, 8)
	vals[5] = 1 << 9
	planes := PackWords(vals)
	for i := range planes {
		want := uint64(0)
		if i == 9 {
			want = 1 << 5
		}
		if planes[i] != want {
			t.Fatalf("plane %d = %x, want %x", i, planes[i], want)
		}
	}
}

func TestExtractLane(t *testing.T) {
	planes := []uint64{0, 1 << 7, 1 << 7, 0}
	lane := ExtractLane(planes, 7)
	want := []uint8{0, 1, 1, 0}
	for i := range want {
		if lane[i] != want[i] {
			t.Fatalf("lane bit %d = %d", i, lane[i])
		}
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		bits := BytesToBits(p)
		back := BitsToBytes(bits)
		if len(back) != len(p) {
			return false
		}
		for i := range p {
			if p[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesToBitsOrder(t *testing.T) {
	bits := BytesToBits([]byte{0x01, 0x80})
	// LSB-first: first byte contributes 1,0,0,0,0,0,0,0
	if bits[0] != 1 || bits[7] != 0 || bits[8] != 0 || bits[15] != 1 {
		t.Fatalf("unexpected order %v", bits)
	}
}

func TestBitsToBytesPanics(t *testing.T) {
	assertPanics(t, "length", func() { BitsToBytes(make([]uint8, 7)) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func BenchmarkTranspose64(b *testing.B) {
	var a [64]uint64
	for i := range a {
		a[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.SetBytes(64 * 8)
	for i := 0; i < b.N; i++ {
		Transpose64(&a)
	}
}

func BenchmarkTranspose32(b *testing.B) {
	var a [32]uint32
	for i := range a {
		a[i] = uint32(i) * 0x9e3779b9
	}
	b.SetBytes(32 * 4)
	for i := 0; i < b.N; i++ {
		Transpose32(&a)
	}
}
