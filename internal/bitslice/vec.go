package bitslice

// Wide-lane vector planes. The paper's throughput argument is lane count:
// one machine word carries one bit of W independent cipher instances
// (§3, Fig. 10), so widening the word is the CPU analogue of widening a
// GPU warp. A Vec is that wider word — K native uint64 words glued
// side-by-side into one 64·K-lane plane. K ∈ {1, 4, 8} gives the 64-,
// 256- and 512-lane datapaths; every lane-wise operation (XOR/AND/OR)
// applies independently to each of the K words, so a W-lane engine is
// structurally K lock-stepped 64-lane engines sharing one control flow.
//
// Lane numbering: lane L lives in word L/64 at bit L%64. All Vec
// helpers below follow that convention, and the plain uint64 helpers in
// bitslice.go are exactly the K=1 case.

// V64 is the native single-word plane: 64 lanes.
type V64 [1]uint64

// V256 is the quad-word plane: 256 lanes (the AVX2-width datapath).
type V256 [4]uint64

// V512 is the oct-word plane: 512 lanes (the AVX-512-width datapath).
type V512 [8]uint64

// Vec is the constraint satisfied by the supported plane widths.
type Vec interface {
	V64 | V256 | V512
}

// VecWords returns K, the number of uint64 words in V.
func VecWords[V Vec]() int {
	var v V
	return len(v)
}

// VecLanes returns the lane count of V (64·K).
func VecLanes[V Vec]() int {
	var v V
	return 64 * len(v)
}

// BroadcastVec returns the plane with every lane set to b (0 or 1).
func BroadcastVec[V Vec](b uint8) V {
	var v V
	if b&1 == 1 {
		for k := 0; k < len(v); k++ {
			v[k] = ^uint64(0)
		}
	}
	return v
}

// SetLaneBitVec sets bit i of the given lane in planes to b (0 or 1).
func SetLaneBitVec[V Vec](planes []V, i, lane int, b uint8) {
	mask := uint64(1) << uint(lane&63)
	if b&1 == 1 {
		planes[i][lane>>6] |= mask
	} else {
		planes[i][lane>>6] &^= mask
	}
}

// LaneBitVec reads bit i of the given lane.
func LaneBitVec[V Vec](planes []V, i, lane int) uint8 {
	return uint8((planes[i][lane>>6] >> uint(lane&63)) & 1)
}

// ExtractLaneVec returns the row-major bit vector of a single lane.
func ExtractLaneVec[V Vec](planes []V, lane int) []uint8 {
	bits := make([]uint8, len(planes))
	k, sh := lane>>6, uint(lane&63)
	for i := range planes {
		bits[i] = uint8((planes[i][k] >> sh) & 1)
	}
	return bits
}

// PackBitsVec converts row-major per-lane bit vectors into column-major
// Vec planes: bit L of plane i is bits[L][i]. All lanes must have equal
// length; up to VecLanes[V]() lanes are supported.
func PackBitsVec[V Vec](bits [][]uint8) []V {
	if len(bits) == 0 {
		return nil
	}
	if len(bits) > VecLanes[V]() {
		panic("bitslice: lane count exceeds vector width")
	}
	n := len(bits[0])
	planes := make([]V, n)
	for lane, bv := range bits {
		if len(bv) != n {
			panic("bitslice: ragged lane lengths")
		}
		k, sh := lane>>6, uint(lane&63)
		for i, b := range bv {
			planes[i][k] |= uint64(b&1) << sh
		}
	}
	return planes
}

// UnpackBitsVec is the inverse of PackBitsVec for the given lane count.
func UnpackBitsVec[V Vec](planes []V, lanes int) [][]uint8 {
	if lanes < 0 || lanes > VecLanes[V]() {
		panic("bitslice: lane count out of range")
	}
	out := make([][]uint8, lanes)
	for l := range out {
		out[l] = ExtractLaneVec(planes, l)
	}
	return out
}

// TransposeVec performs K independent in-place 64x64 bit-matrix
// transpositions, one per word column: afterwards, bit j of a[i][k] is
// the former bit i of a[j][k]. With a[t] holding the lane-parallel
// output plane of clock t, the transposed a[j][k] holds 64 consecutive
// keystream bits of lane 64·k+j.
func TransposeVec[V Vec](a *[64]V) {
	var t [64]uint64
	var v V
	for k := 0; k < len(v); k++ {
		for i := 0; i < 64; i++ {
			t[i] = a[i][k]
		}
		Transpose64(&t)
		for i := 0; i < 64; i++ {
			a[i][k] = t[i]
		}
	}
}

// PackWordsVec packs one uint64 value per lane into 64 Vec planes:
// plane i, lane L is bit i of vals[L]. Fewer than VecLanes[V]() lanes
// leaves the remaining lane bits zero.
func PackWordsVec[V Vec](vals []uint64) [64]V {
	if len(vals) > VecLanes[V]() {
		panic("bitslice: lane count exceeds vector width")
	}
	var out [64]V
	var t [64]uint64
	var v V
	for k := 0; k < len(v); k++ {
		lo := 64 * k
		if lo >= len(vals) {
			break
		}
		hi := lo + 64
		if hi > len(vals) {
			hi = len(vals)
		}
		for i := range t {
			t[i] = 0
		}
		copy(t[:], vals[lo:hi])
		Transpose64(&t)
		for i := 0; i < 64; i++ {
			out[i][k] = t[i]
		}
	}
	return out
}

// UnpackWordsVec inverts PackWordsVec: it returns one uint64 per lane
// assembled from the 64 planes.
func UnpackWordsVec[V Vec](planes *[64]V, lanes int) []uint64 {
	if lanes < 0 || lanes > VecLanes[V]() {
		panic("bitslice: lane count out of range")
	}
	out := make([]uint64, lanes)
	UnpackWordsVecInto(out, planes[:], lanes)
	return out
}

// UnpackWordsVecInto is the allocation-free form of UnpackWordsVec: it
// assembles one uint64 per lane from the first 64 planes into dst. dst
// must hold at least lanes words and planes at least 64 planes.
func UnpackWordsVecInto[V Vec](dst []uint64, planes []V, lanes int) {
	if lanes < 0 || lanes > VecLanes[V]() {
		panic("bitslice: lane count out of range")
	}
	if len(dst) < lanes || len(planes) < 64 {
		panic("bitslice: unpack buffers too short")
	}
	var t [64]uint64
	var v V
	for k := 0; k < len(v); k++ {
		lo := 64 * k
		if lo >= lanes {
			break
		}
		for i := 0; i < 64; i++ {
			t[i] = planes[i][k]
		}
		Transpose64(&t)
		hi := lo + 64
		if hi > lanes {
			hi = lanes
		}
		copy(dst[lo:hi], t[:hi-lo])
	}
}
