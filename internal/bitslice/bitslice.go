// Package bitslice implements the column-major ("bitsliced") data
// representation at the heart of BSRNG (paper §4.1).
//
// In the conventional row-major layout, one machine word holds many bits of
// a single cipher instance. In the column-major layout used here, one
// machine word holds the *same* bit of many independent instances: plane i,
// bit L is bit i of lane L's state. A single full-width XOR/AND/OR then
// advances all lanes at once, and the shift-and-mask work of an LFSR
// becomes plain register renaming.
//
// The package provides the representation change itself: bit-matrix
// transposition (the 64x64 and 32x32 kernels), lane packing/unpacking, and
// small helpers shared by every bitsliced engine in this repository.
package bitslice

// W is the native lane count: one uint64 plane carries W independent
// instances.
const W = 64

// W32 is the lane count of the narrow (uint32) datapath, matching the
// paper's single-precision CUDA registers.
const W32 = 32

// Transpose64 performs an in-place 64x64 bit-matrix transposition:
// afterwards, bit j of a[k] is the former bit k of a[j].
//
// With a[t] holding the lane-parallel output word of clock t (bit L =
// lane L), the transposed a[L] holds 64 consecutive keystream bits of
// lane L (bit t = clock t).
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := ((a[k] >> j) ^ a[k+int(j)]) & m
			a[k+int(j)] ^= t
			a[k] ^= t << j
		}
		j >>= 1
		m ^= m << j
	}
}

// Transpose32 performs an in-place 32x32 bit-matrix transposition on
// uint32 words; the narrow-datapath analogue of Transpose64.
func Transpose32(a *[32]uint32) {
	m := uint32(0x0000FFFF)
	for j := uint(16); j != 0; {
		for k := 0; k < 32; k = (k + int(j) + 1) &^ int(j) {
			t := ((a[k] >> j) ^ a[k+int(j)]) & m
			a[k+int(j)] ^= t
			a[k] ^= t << j
		}
		j >>= 1
		m ^= m << j
	}
}

// PackBits converts row-major per-lane bit vectors into column-major
// planes. bits[lane][i] must be 0 or 1; all lanes must have equal length.
// The result has len(bits[0]) planes; bit L of plane i is bits[L][i].
// Up to W lanes are supported.
func PackBits(bits [][]uint8) []uint64 {
	if len(bits) == 0 {
		return nil
	}
	if len(bits) > W {
		panic("bitslice: more than 64 lanes")
	}
	n := len(bits[0])
	planes := make([]uint64, n)
	for lane, bv := range bits {
		if len(bv) != n {
			panic("bitslice: ragged lane lengths")
		}
		for i, b := range bv {
			planes[i] |= uint64(b&1) << uint(lane)
		}
	}
	return planes
}

// UnpackBits is the inverse of PackBits for the given number of lanes.
func UnpackBits(planes []uint64, lanes int) [][]uint8 {
	if lanes < 0 || lanes > W {
		panic("bitslice: lane count out of range")
	}
	out := make([][]uint8, lanes)
	for l := range out {
		out[l] = ExtractLane(planes, l)
	}
	return out
}

// ExtractLane returns the row-major bit vector of a single lane.
func ExtractLane(planes []uint64, lane int) []uint8 {
	bits := make([]uint8, len(planes))
	for i, p := range planes {
		bits[i] = uint8((p >> uint(lane)) & 1)
	}
	return bits
}

// SetLaneBit sets bit i of the given lane in planes to b (0 or 1).
func SetLaneBit(planes []uint64, i, lane int, b uint8) {
	mask := uint64(1) << uint(lane)
	if b&1 == 1 {
		planes[i] |= mask
	} else {
		planes[i] &^= mask
	}
}

// LaneBit reads bit i of the given lane.
func LaneBit(planes []uint64, i, lane int) uint8 {
	return uint8((planes[i] >> uint(lane)) & 1)
}

// Broadcast returns the plane with every lane set to b (0 or 1): the
// bitsliced representation of a constant bit.
func Broadcast(b uint8) uint64 {
	if b&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// PackWords packs one uint64 value per lane into 64 planes: plane i, bit L
// is bit i of vals[L]. Fewer than 64 lanes leaves the remaining lane bits
// zero.
func PackWords(vals []uint64) [64]uint64 {
	if len(vals) > W {
		panic("bitslice: more than 64 lanes")
	}
	var a [64]uint64
	copy(a[:], vals)
	Transpose64(&a)
	return a
}

// UnpackWords inverts PackWords: it returns one uint64 per lane assembled
// from 64 planes.
func UnpackWords(planes *[64]uint64, lanes int) []uint64 {
	if lanes < 0 || lanes > W {
		panic("bitslice: lane count out of range")
	}
	a := *planes
	Transpose64(&a)
	return a[:lanes:lanes]
}

// BytesToBits expands a byte stream into bits, LSB-first within each byte
// (the SP 800-22 and eSTREAM bit ordering used throughout this repo).
func BytesToBits(p []byte) []uint8 {
	bits := make([]uint8, 8*len(p))
	for i, b := range p {
		for j := 0; j < 8; j++ {
			bits[8*i+j] = (b >> uint(j)) & 1
		}
	}
	return bits
}

// BitsToBytes packs bits (LSB-first per byte) into bytes; len(bits) must be
// a multiple of 8.
func BitsToBytes(bits []uint8) []byte {
	if len(bits)%8 != 0 {
		panic("bitslice: bit count not a multiple of 8")
	}
	p := make([]byte, len(bits)/8)
	for i := range p {
		var b byte
		for j := 0; j < 8; j++ {
			b |= (bits[8*i+j] & 1) << uint(j)
		}
		p[i] = b
	}
	return p
}
