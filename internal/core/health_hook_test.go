package core

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/health"
)

// A clean stream under a real checker must deliver its canonical bytes:
// the hook only observes, never perturbs, healthy output.
func TestHealthHookTransparentOnHealthyStream(t *testing.T) {
	checker := health.NewChecker(health.Config{})
	withHook, err := NewStream(MICKEY, 42, StreamConfig{
		Workers: 2, StagingBytes: 2048, Health: checker.Check,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer withHook.Close()
	plain, err := NewStream(MICKEY, 42, StreamConfig{Workers: 2, StagingBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	a := make([]byte, 16*SegmentBytes)
	b := make([]byte, 16*SegmentBytes)
	withHook.Read(a)
	plain.Read(b)
	if !bytes.Equal(a, b) {
		t.Fatal("health hook changed the bytes of a healthy stream")
	}
	st := withHook.Stats()
	if st.HealthFailures != 0 || st.EngineReseeds != 0 || st.HealthUnrecovered != 0 {
		t.Fatalf("healthy stream recorded health events: %+v", st)
	}
	if cs := checker.Stats(); cs.Segments == 0 {
		t.Fatal("checker never ran")
	}
}

// A corrupted segment must be condemned, the engine reseeded, and the
// delivered replacement must pass the checker — and the whole episode
// must be deterministic: two identically-faulted streams emit identical
// bytes.
func TestHealthHookDiscardsAndReseeds(t *testing.T) {
	checker := health.NewChecker(health.Config{})
	// Hook that zeroes the Nth checked segment before checking — a
	// deterministic stand-in for an engine fault.
	corruptingHook := func(nth uint64) func([]byte) error {
		var n atomic.Uint64
		return func(seg []byte) error {
			if n.Add(1) == nth {
				for i := range seg {
					seg[i] = 0
				}
			}
			return checker.Check(seg)
		}
	}

	run := func() ([]byte, StreamStats) {
		s, err := NewStream(GRAIN, 7, StreamConfig{
			Workers: 1, StagingBytes: 2048, Health: corruptingHook(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out := make([]byte, 8*SegmentBytes)
		if _, err := s.Read(out); err != nil {
			t.Fatal(err)
		}
		return out, s.Stats()
	}

	got, st := run()
	if st.HealthFailures != 1 {
		t.Fatalf("HealthFailures = %d, want 1", st.HealthFailures)
	}
	if st.EngineReseeds != 1 {
		t.Fatalf("EngineReseeds = %d, want 1", st.EngineReseeds)
	}
	if st.HealthUnrecovered != 0 {
		t.Fatalf("HealthUnrecovered = %d, want 0", st.HealthUnrecovered)
	}

	// No delivered segment may be the zeroed one.
	zero := make([]byte, SegmentBytes)
	for off := 0; off < len(got); off += SegmentBytes {
		if bytes.Equal(got[off:off+SegmentBytes], zero) {
			t.Fatalf("zeroed segment at offset %d was delivered", off)
		}
	}

	// The first two segments are canonical; segment 3 onward comes from
	// the reseeded (epoch-1) engine and must diverge from the canonical
	// stream.
	ref, err := NewStream(GRAIN, 7, StreamConfig{Workers: 1, StagingBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]byte, 8*SegmentBytes)
	ref.Read(want)
	if !bytes.Equal(got[:2*SegmentBytes], want[:2*SegmentBytes]) {
		t.Fatal("pre-fault segments diverge from the canonical stream")
	}
	if bytes.Equal(got[2*SegmentBytes:3*SegmentBytes], want[2*SegmentBytes:3*SegmentBytes]) {
		t.Fatal("condemned segment slot was not regenerated from fresh material")
	}

	// Reproducibility: the identical fault yields identical bytes.
	got2, _ := run()
	if !bytes.Equal(got, got2) {
		t.Fatal("identically-faulted streams diverged")
	}
}

// The core.segment.corrupt failpoint drives the same loop without a
// corrupting hook: armed on the Nth produced segment, it must trip the
// checker and be healed by a reseed.
func TestFailpointSegmentCorrupt(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out")
	}
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(FailpointSegmentCorrupt, 2)

	checker := health.NewChecker(health.Config{})
	s, err := NewStream(TRIVIUM, 99, StreamConfig{
		Workers: 1, StagingBytes: 2048, Health: checker.Check,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out := make([]byte, 6*SegmentBytes)
	if _, err := s.Read(out); err != nil {
		t.Fatal(err)
	}
	if got := faultinject.Fired(FailpointSegmentCorrupt); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}
	st := s.Stats()
	if st.HealthFailures != 1 || st.EngineReseeds != 1 {
		t.Fatalf("stats %+v, want exactly one failure and one reseed", st)
	}
	zero := make([]byte, SegmentBytes)
	for off := 0; off < len(out); off += SegmentBytes {
		if bytes.Equal(out[off:off+SegmentBytes], zero) {
			t.Fatalf("zeroed segment delivered at offset %d", off)
		}
	}
	if cs := checker.Stats(); cs.Failures[health.RCT]+cs.Failures[health.Monobit]+cs.Failures[health.LongRun] == 0 {
		t.Fatalf("checker did not attribute the corruption: %+v", cs)
	}
}

// A hook that condemns everything must exhaust the reseed budget and
// surface HealthUnrecovered instead of livelocking the workers.
func TestHealthHookUnrecoverableBudget(t *testing.T) {
	reject := errors.New("always bad")
	s, err := NewStream(MICKEY, 5, StreamConfig{
		Workers: 1, StagingBytes: 2048,
		Health: func([]byte) error { return reject },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out := make([]byte, 2*SegmentBytes)
	if _, err := s.Read(out); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.HealthUnrecovered == 0 {
		t.Fatal("unrecoverable hook never surfaced in HealthUnrecovered")
	}
	if st.HealthFailures < st.HealthUnrecovered*(maxHealthReseeds+1) {
		t.Fatalf("stats %+v: expected %d failures per unrecovered segment", st, maxHealthReseeds+1)
	}
}

// Satellite gate: the first 64 segments of every algorithm at every
// supported lane width must pass the default online health tests, so an
// engine regression that degrades output quality fails tier-1 fast.
func TestHealthGateAcrossLaneWidths(t *testing.T) {
	const segments = 64
	for _, alg := range Algorithms {
		for _, lanes := range SupportedLanes {
			checker := health.NewChecker(health.Config{})
			g, err := NewGeneratorLanes(alg, 1234, lanes)
			if err != nil {
				t.Fatalf("%v lanes=%d: %v", alg, lanes, err)
			}
			seg := make([]byte, SegmentBytes)
			for i := 0; i < segments; i++ {
				if _, err := g.Read(seg); err != nil {
					t.Fatalf("%v lanes=%d: %v", alg, lanes, err)
				}
				if err := checker.Check(seg); err != nil {
					t.Errorf("%v lanes=%d segment %d: %v", alg, lanes, i, err)
				}
			}
			if st := checker.Stats(); st.Segments != segments || st.Total() != 0 {
				t.Errorf("%v lanes=%d: checker stats %+v", alg, lanes, st)
			}
		}
	}
}
