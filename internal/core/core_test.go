package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/sp80022"
)

func TestAlgorithmNames(t *testing.T) {
	for _, alg := range Algorithms {
		parsed, err := ParseAlgorithm(alg.String())
		if err != nil || parsed != alg {
			t.Errorf("round trip failed for %v", alg)
		}
	}
	if _, err := ParseAlgorithm("rot13"); err == nil {
		t.Error("bad name accepted")
	}
	if a, err := ParseAlgorithm("aes"); err != nil || a != AESCTR {
		t.Error("aes alias broken")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm String empty")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, alg := range Algorithms {
		a, err := NewGenerator(alg, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGenerator(alg, 42)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]byte, 3000)
		y := make([]byte, 3000)
		a.Read(x)
		b.Read(y)
		if !bytes.Equal(x, y) {
			t.Errorf("%v: same seed diverged", alg)
		}
		c, _ := NewGenerator(alg, 43)
		z := make([]byte, 3000)
		c.Read(z)
		if bytes.Equal(x, z) {
			t.Errorf("%v: different seeds produced identical output", alg)
		}
	}
}

func TestGeneratorChunkingInvariance(t *testing.T) {
	for _, alg := range Algorithms {
		a, _ := NewGenerator(alg, 7)
		b, _ := NewGenerator(alg, 7)
		whole := make([]byte, 2500)
		a.Read(whole)
		pieces := make([]byte, 2500)
		step := 1
		for off := 0; off < len(pieces); {
			n := step
			if off+n > len(pieces) {
				n = len(pieces) - off
			}
			b.Read(pieces[off : off+n])
			off += n
			step = step*3 + 1
		}
		if !bytes.Equal(whole, pieces) {
			t.Errorf("%v: output depends on read chunking", alg)
		}
	}
}

func TestGeneratorUint64AndWords(t *testing.T) {
	a, _ := NewGenerator(MICKEY, 3)
	b, _ := NewGenerator(MICKEY, 3)
	ws := make([]uint64, 10)
	b.Words(ws)
	for i, w := range ws {
		if got := a.Uint64(); got != w {
			t.Fatalf("word %d: %x vs %x", i, got, w)
		}
	}
	if a.Algorithm() != MICKEY {
		t.Error("Algorithm() wrong")
	}
}

// Each worker domain must produce a distinct stream.
func TestSeedDomainSeparation(t *testing.T) {
	for _, alg := range Algorithms {
		e1, err := newEngine(alg, 5, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := newEngine(alg, 5, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, e1.blockBytes())
		b := make([]byte, e2.blockBytes())
		e1.nextBlock(a)
		e2.nextBlock(b)
		if bytes.Equal(a, b) {
			t.Errorf("%v: domains 1 and 2 produced identical blocks", alg)
		}
	}
}

func TestSegmentMaterialDistinct(t *testing.T) {
	keys, ivs := segmentMaterial(1, 0, 0, 0, 64, 10, 10)
	seen := map[string]bool{}
	for l := 0; l < 64; l++ {
		k := string(keys[l]) + "|" + string(ivs[l])
		if seen[k] {
			t.Fatal("duplicate segment material")
		}
		seen[k] = true
	}
	// Different seeds must give different material.
	keys2, _ := segmentMaterial(2, 0, 0, 0, 64, 10, 10)
	if bytes.Equal(keys[0], keys2[0]) {
		t.Error("seed does not influence segment material")
	}
}

// Segment material must depend only on the absolute segment index — the
// property that makes the canonical stream identical at every lane width.
func TestSegmentMaterialIndexedAbsolutely(t *testing.T) {
	wide, wideIVs := segmentMaterial(9, 3, 0, 0, 512, 10, 8)
	for _, l := range []int{0, 1, 63, 64, 255, 256, 511} {
		one, oneIV := segmentMaterial(9, 3, uint64(l), 0, 1, 10, 8)
		if !bytes.Equal(wide[l], one[0]) || !bytes.Equal(wideIVs[l], oneIV[0]) {
			t.Fatalf("segment %d material depends on the batch shape", l)
		}
	}
}

func TestStreamDeterministicAcrossRuns(t *testing.T) {
	cfg := StreamConfig{Workers: 3, StagingBytes: 2048}
	for _, alg := range Algorithms {
		s1, err := NewStream(alg, 11, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, 20000)
		s1.Read(a)
		s1.Close()

		s2, err := NewStream(alg, 11, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 20000)
		s2.Read(b)
		s2.Close()

		if !bytes.Equal(a, b) {
			t.Errorf("%v: stream is not deterministic across runs", alg)
		}
	}
}

func TestStreamMatchesSingleWorkerComposition(t *testing.T) {
	// A 1-worker stream must equal the domain-1 engine's raw output.
	s, err := NewStream(MICKEY, 9, StreamConfig{Workers: 1, StagingBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	s.Read(got)
	s.Close()

	eng, _ := newEngine(MICKEY, 9, 1, 0)
	want := make([]byte, 4096)
	for off := 0; off < len(want); off += eng.blockBytes() {
		eng.nextBlock(want[off : off+eng.blockBytes()])
	}
	if !bytes.Equal(got, want) {
		t.Fatal("1-worker stream diverges from its engine")
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(MICKEY, 1, StreamConfig{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := NewStream(MICKEY, 1, StreamConfig{Workers: 1, StagingBytes: 100}); err == nil {
		t.Error("tiny staging accepted")
	}
	if _, err := NewStream(Algorithm(99), 1, StreamConfig{Workers: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFillDeterministicAndParallel(t *testing.T) {
	a := make([]byte, 100000)
	b := make([]byte, 100000)
	if err := Fill(MICKEY, 21, 4, a); err != nil {
		t.Fatal(err)
	}
	if err := Fill(MICKEY, 21, 4, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Fill is not deterministic")
	}
	c := make([]byte, 100000)
	if err := Fill(MICKEY, 22, 4, c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("Fill ignores the seed")
	}
}

func TestFillEdgeCases(t *testing.T) {
	if err := Fill(MICKEY, 1, 4, nil); err != nil {
		t.Fatal(err)
	}
	// Region smaller than one block, more workers than regions.
	small := make([]byte, 100)
	if err := Fill(GRAIN, 1, 8, small); err != nil {
		t.Fatal(err)
	}
	var zero [100]byte
	if bytes.Equal(small, zero[:]) {
		t.Fatal("Fill left buffer zeroed")
	}
	if err := Fill(Algorithm(99), 1, 1, small); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSource64DrivesMathRand(t *testing.T) {
	src, err := NewSource64(GRAIN, 17)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(src)
	// Basic sanity: values in range, mean near 0.5.
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Errorf("mean %v far from 0.5", mean)
	}
	if src.Int63() < 0 {
		t.Error("Int63 negative")
	}
	src.Seed(1) // no-op, must not panic
}

// The assembled generator output must look random to the core NIST tests
// — the end-to-end version of the paper's Table 3 claim, scaled down.
func TestGeneratorPassesCoreNIST(t *testing.T) {
	for _, alg := range Algorithms {
		g, _ := NewGenerator(alg, 1234)
		buf := make([]byte, 1<<14) // 131072 bits
		g.Read(buf)
		bits := sp80022.BitsFromBytes(buf)
		if p, err := sp80022.Frequency(bits); err != nil || p < sp80022.Alpha {
			t.Errorf("%v frequency: p=%v err=%v", alg, p, err)
		}
		if p, err := sp80022.Runs(bits); err != nil || p < sp80022.Alpha {
			t.Errorf("%v runs: p=%v err=%v", alg, p, err)
		}
		if p, err := sp80022.ApproximateEntropy(bits, 10); err != nil || p < sp80022.Alpha {
			t.Errorf("%v apen: p=%v err=%v", alg, p, err)
		}
	}
}

// The multi-worker stream must be as random as the single engine (worker
// interleaving must not introduce structure). A single stream fails a
// test with probability α, so assert on the pass proportion over many
// seeds instead of one draw.
func TestStreamPassesCoreNIST(t *testing.T) {
	const seeds = 20
	var freqPass, runsPass int
	for seed := uint64(0); seed < seeds; seed++ {
		s, err := NewStream(MICKEY, 90+seed, StreamConfig{Workers: 4, StagingBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<14)
		s.Read(buf)
		s.Close()
		bits := sp80022.BitsFromBytes(buf)
		if p, err := sp80022.Frequency(bits); err == nil && p >= sp80022.Alpha {
			freqPass++
		}
		if p, err := sp80022.Runs(bits); err == nil && p >= sp80022.Alpha {
			runsPass++
		}
	}
	// Binomial(20, 0.99): P(≤17) ≈ 1e-3; anything below is structure.
	if freqPass < 18 {
		t.Errorf("frequency pass rate %d/20", freqPass)
	}
	if runsPass < 18 {
		t.Errorf("runs pass rate %d/20", runsPass)
	}
}

func BenchmarkGeneratorMickey(b *testing.B) { benchGenerator(b, MICKEY) }
func BenchmarkGeneratorGrain(b *testing.B)  { benchGenerator(b, GRAIN) }
func BenchmarkGeneratorAESCTR(b *testing.B) { benchGenerator(b, AESCTR) }

func benchGenerator(b *testing.B, alg Algorithm) {
	g, err := NewGenerator(alg, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Read(buf)
	}
}

func BenchmarkStreamAllCores(b *testing.B) {
	s, err := NewStream(GRAIN, 1, StreamConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 1<<20)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(buf)
	}
}

func BenchmarkFillAllCores(b *testing.B) {
	buf := make([]byte, 1<<20)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := Fill(GRAIN, 1, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
