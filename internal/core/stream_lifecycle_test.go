package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// Hammer a Stream with a reader racing Close (run under -race in CI):
// the reader must unblock with ErrClosed, never deadlock or trip the
// race detector.
func TestStreamConcurrentReadClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		s, err := NewStream(TRIVIUM, uint64(round), StreamConfig{Workers: 4, StagingBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for {
				if _, err := s.Read(buf); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("round %d: unexpected error %v", round, err)
					}
					return
				}
			}
		}()
		// Stagger the close across rounds to vary the interleaving.
		if round%3 == 0 {
			b := make([]byte, 64)
			_, _ = s.Read(b[:0]) // no-op read, just jitter
		}
		s.Close()
		wg.Wait()
		// Close is idempotent and post-Close reads fail fast.
		s.Close()
		if _, err := s.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: post-Close Read returned %v, want ErrClosed", round, err)
		}
	}
}

// Stats must move with traffic and be safe to snapshot concurrently.
func TestStreamStats(t *testing.T) {
	s, err := NewStream(GRAIN, 1, StreamConfig{Workers: 2, StagingBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BytesDelivered != 0 {
		t.Fatalf("fresh stream reports %d bytes delivered", st.BytesDelivered)
	}
	buf := make([]byte, 100000)
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BytesDelivered != 100000 {
		t.Errorf("BytesDelivered = %d, want 100000", st.BytesDelivered)
	}
	// 100000 bytes at one-segment chunks: at least 48 chunks were handed over.
	if st.ChunksProduced < 100000/SegmentBytes {
		t.Errorf("ChunksProduced = %d, want ≥ %d", st.ChunksProduced, 100000/SegmentBytes)
	}
	// Sustained reading recycles staging buffers from the free list.
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	if st = s.Stats(); st.RecycleHits == 0 {
		t.Error("RecycleHits = 0 after 200 KB of traffic")
	}
	s.Close()
	closed := s.Stats() // safe after Close
	if closed.BytesDelivered != 200000 {
		t.Errorf("post-Close BytesDelivered = %d, want 200000", closed.BytesDelivered)
	}
}

// The determinism contract between the two parallel paths: worker w of
// a Stream and worker w of Fill run the identical engine (same seed
// domain w+1), so de-interleaving a Stream read by staging chunk must
// reproduce Fill's contiguous per-worker regions.
func TestFillMatchesStreamWorkerRegions(t *testing.T) {
	const (
		workers  = 3
		staging  = SegmentBytes // one chunk = one engine block
		perChunk = staging
		rounds   = 4 // chunks consumed per worker
		region   = rounds * perChunk
		total    = workers * region
	)
	for _, alg := range Algorithms {
		s, err := NewStream(alg, 77, StreamConfig{Workers: workers, StagingBytes: staging})
		if err != nil {
			t.Fatal(err)
		}
		interleaved := make([]byte, total)
		if _, err := s.Read(interleaved); err != nil {
			t.Fatal(err)
		}
		s.Close()

		// Chunk i of the round-robin stream belongs to worker i % workers.
		regions := make([][]byte, workers)
		for i := 0; i*perChunk < total; i++ {
			w := i % workers
			regions[w] = append(regions[w], interleaved[i*perChunk:(i+1)*perChunk]...)
		}

		filled := make([]byte, total)
		if err := Fill(alg, 77, workers, filled); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			want := filled[w*region : (w+1)*region]
			if !bytes.Equal(regions[w], want) {
				t.Errorf("%v: worker %d region diverges between Stream and Fill", alg, w)
			}
		}
	}
}
