package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// ErrClosed is returned by Stream.Read once Close has been observed.
var ErrClosed = errors.New("core: stream closed")

// Stream is the multi-core BSRNG: W workers, each owning an independent
// 64-lane bitsliced engine, mirror the paper's CUDA thread blocks. Every
// worker accumulates output in a private staging buffer (the shared-memory
// staging of §4.5) and hands full chunks to the consumer, which assembles
// them in a fixed worker-round-robin order — so the stream is
// deterministic for a given (algorithm, seed, workers, staging) tuple
// regardless of scheduling.
type Stream struct {
	alg     Algorithm
	workers int
	staging int
	health  func(seg []byte) error

	chunks []chan []byte // per-worker ordered chunk delivery
	free   chan []byte   // recycled buffers
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	cur  []byte // chunk currently being consumed
	pos  int
	next int // worker whose chunk is consumed next

	chunksProduced atomic.Uint64
	bytesDelivered atomic.Uint64
	recycleHits    atomic.Uint64

	healthFailures    atomic.Uint64
	engineReseeds     atomic.Uint64
	healthUnrecovered atomic.Uint64
}

// StreamStats is a point-in-time snapshot of a Stream's internal
// throughput counters, for engine-level observability (bsrngd exports
// them on /metrics).
type StreamStats struct {
	// ChunksProduced counts staging chunks the workers handed to the
	// consumer side.
	ChunksProduced uint64
	// BytesDelivered counts bytes copied out by Read.
	BytesDelivered uint64
	// RecycleHits counts staging buffers reused from the free list
	// instead of freshly allocated.
	RecycleHits uint64
	// HealthFailures counts segments condemned by the configured health
	// hook (each one was discarded, never delivered as-is).
	HealthFailures uint64
	// EngineReseeds counts engine reseeds triggered by health failures:
	// the offending worker's engine rekeyed itself with fresh material
	// and regenerated the condemned segment's slot.
	EngineReseeds uint64
	// HealthUnrecovered counts segments delivered after exhausting the
	// reseed retry budget with the hook still objecting — it stays zero
	// unless the hook rejects independently regenerated segments, which
	// indicates a broken hook (or cutoffs set into healthy range) rather
	// than a broken engine.
	HealthUnrecovered uint64
}

// Stats returns a snapshot of the stream's counters. It is safe to call
// concurrently with Read and Close.
func (s *Stream) Stats() StreamStats {
	return StreamStats{
		ChunksProduced:    s.chunksProduced.Load(),
		BytesDelivered:    s.bytesDelivered.Load(),
		RecycleHits:       s.recycleHits.Load(),
		HealthFailures:    s.healthFailures.Load(),
		EngineReseeds:     s.engineReseeds.Load(),
		HealthUnrecovered: s.healthUnrecovered.Load(),
	}
}

// StreamConfig tunes the Stream; zero values select defaults
// (runtime.NumCPU() workers, 64 KiB staging chunks, DefaultLanes-wide
// engines).
type StreamConfig struct {
	Workers int
	// StagingBytes is the per-worker chunk size. The paper determines the
	// analogous shared-memory occupancy "by try and error" (§4.5); the
	// BenchmarkStagingAblation bench sweeps it.
	StagingBytes int
	// Lanes is the per-worker engine datapath width; see SupportedLanes.
	// The stream's bytes are identical at every width — Lanes only trades
	// memory and per-pass batch size for instruction-level parallelism.
	Lanes int
	// Health, when non-nil, is a continuous online health test run
	// against every SegmentBytes-sized segment at production time, from
	// the producing worker's goroutine (so it must be safe for
	// concurrent use — health.Checker.Check qualifies). A non-nil error
	// condemns the segment: it is discarded, the worker's engine is
	// reseeded with fresh material, and the slot is regenerated (up to
	// maxHealthReseeds times) before delivery. StreamStats counts the
	// events. A nil hook — the default — leaves the hot path untouched.
	Health func(seg []byte) error
}

// maxHealthReseeds bounds regeneration attempts per condemned segment.
// Independent reseeds draw unrelated key material, so hitting the bound
// means the hook fails healthy output; the stream then delivers the
// last regenerated segment and counts it in HealthUnrecovered instead
// of livelocking the worker.
const maxHealthReseeds = 4

// FailpointSegmentCorrupt is the faultinject site, hit once per
// produced segment (only when a health hook is configured), that
// zeroes the segment when fired — the chaos lever that proves the
// discard/reseed path end to end.
const FailpointSegmentCorrupt = "core.segment.corrupt"

// NewStream starts the worker pool. Close must be called to release the
// workers.
func NewStream(alg Algorithm, seed uint64, cfg StreamConfig) (*Stream, error) {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Workers < 1 || cfg.Workers > 4096 {
		return nil, fmt.Errorf("core: worker count %d out of range", cfg.Workers)
	}
	if cfg.StagingBytes == 0 {
		cfg.StagingBytes = 64 << 10
	}
	if cfg.StagingBytes < 512 {
		return nil, fmt.Errorf("core: staging buffer must be ≥ 512 bytes")
	}
	if err := ValidateLanes(cfg.Lanes); err != nil {
		return nil, err
	}

	s := &Stream{
		alg:     alg,
		workers: cfg.Workers,
		staging: cfg.StagingBytes,
		health:  cfg.Health,
		chunks:  make([]chan []byte, cfg.Workers),
		free:    make(chan []byte, 4*cfg.Workers),
		stop:    make(chan struct{}),
	}
	engines := make([]engine, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		eng, err := newEngine(alg, seed, uint64(w)+1, cfg.Lanes)
		if err != nil {
			return nil, err
		}
		engines[w] = eng
		s.chunks[w] = make(chan []byte, 2)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.run(w, engines[w])
	}
	return s, nil
}

// run is one worker: generate into a staging buffer, deliver, repeat.
// The engine writes segments straight into the staging chunk (nextBlocks
// aims the cipher's lane buffers at it), so in steady state each output
// byte is produced in place and copied at most once more, by the
// consumer.
func (s *Stream) run(w int, eng engine) {
	defer s.wg.Done()
	blk := eng.blockBytes()
	// Round the chunk down to whole engine blocks.
	chunkLen := s.staging / blk * blk
	if chunkLen == 0 {
		chunkLen = blk
	}
	// One check closure per worker, hoisted so the hot loop allocates
	// nothing.
	var check func(seg []byte)
	if s.health != nil {
		check = func(seg []byte) { s.checkSegment(eng, seg) }
	}
	for {
		var buf []byte
		select {
		case buf = <-s.free:
		default:
		}
		if cap(buf) < chunkLen {
			buf = make([]byte, chunkLen)
		} else {
			s.recycleHits.Add(1)
		}
		buf = buf[:chunkLen]
		eng.nextBlocks(buf, check)
		// Counted at generation time, before delivery, so a consumer
		// that has received a chunk always observes it in Stats.
		s.chunksProduced.Add(1)
		select {
		case s.chunks[w] <- buf:
		case <-s.stop:
			return
		}
	}
}

// checkSegment runs the continuous health test on one freshly produced
// segment. A condemned segment is never delivered as produced: the
// engine reseeds with fresh material and regenerates the slot, bounded
// by maxHealthReseeds.
func (s *Stream) checkSegment(eng engine, seg []byte) {
	if faultinject.Hit(FailpointSegmentCorrupt) {
		for i := range seg {
			seg[i] = 0
		}
	}
	for try := 0; ; try++ {
		if err := s.health(seg); err == nil {
			return
		}
		s.healthFailures.Add(1)
		if try == maxHealthReseeds {
			s.healthUnrecovered.Add(1)
			return
		}
		eng.reseed()
		s.engineReseeds.Add(1)
		eng.nextBlock(seg)
	}
}

// Read assembles the deterministic stream. It fails only when the
// Stream is closed: a Read racing (or following) Close returns the
// bytes copied so far and ErrClosed. Read must not be called from more
// than one goroutine at a time, but it is safe against a concurrent
// Close.
func (s *Stream) Read(p []byte) (int, error) {
	select {
	case <-s.stop:
		return 0, ErrClosed
	default:
	}
	n := len(p)
	for len(p) > 0 {
		if s.pos == len(s.cur) {
			if err := s.advance(); err != nil {
				s.bytesDelivered.Add(uint64(n - len(p)))
				return n - len(p), err
			}
		}
		k := copy(p, s.cur[s.pos:])
		s.pos += k
		p = p[k:]
	}
	s.bytesDelivered.Add(uint64(n))
	return n, nil
}

// advance recycles the consumed chunk and receives the next one in the
// fixed worker-round-robin order. It returns ErrClosed once Close has
// been observed.
func (s *Stream) advance() error {
	if s.cur != nil {
		select {
		case s.free <- s.cur:
		default:
		}
		s.cur = nil
	}
	select {
	case s.cur = <-s.chunks[s.next]:
	case <-s.stop:
		return ErrClosed
	}
	s.next = (s.next + 1) % s.workers
	s.pos = 0
	return nil
}

// WriteTo streams to w until w returns an error or the Stream is closed,
// copying each staging chunk exactly once (straight from the chunk the
// engine filled into the writer). The stream is unbounded, so WriteTo
// only returns on error: wrap w so it fails after the wanted byte count
// (bsrngd serves bulk /bytes responses this way), or Close the stream.
// A short write advances the stream by only the bytes actually written —
// the unread remainder is delivered by the next Read/WriteTo/NextChunk —
// and, per the io.Writer contract, reports io.ErrShortWrite if w gave no
// error. WriteTo shares the consumer cursor with Read/NextChunk: one
// consuming goroutine at a time, Close may race.
func (s *Stream) WriteTo(w io.Writer) (int64, error) {
	select {
	case <-s.stop:
		return 0, ErrClosed
	default:
	}
	var n int64
	for {
		if s.pos == len(s.cur) {
			if err := s.advance(); err != nil {
				return n, err
			}
		}
		k, err := w.Write(s.cur[s.pos:])
		if k > 0 {
			s.pos += k
			n += int64(k)
			s.bytesDelivered.Add(uint64(k))
		}
		if err != nil {
			return n, err
		}
		if s.pos != len(s.cur) {
			return n, io.ErrShortWrite
		}
	}
}

// NextChunk hands out the next span of the stream without copying: the
// returned slice is the staging chunk the engine filled (or its unread
// remainder after a partial Read/WriteTo). It stays valid until the next
// consuming call (Read, WriteTo, NextChunk) or Recycle, whichever comes
// first — consume it, then let the stream reuse the buffer. Shares the
// consumer cursor with Read/WriteTo: one consuming goroutine at a time,
// Close may race (NextChunk then returns ErrClosed).
func (s *Stream) NextChunk() ([]byte, error) {
	select {
	case <-s.stop:
		return nil, ErrClosed
	default:
	}
	if s.pos == len(s.cur) {
		if err := s.advance(); err != nil {
			return nil, err
		}
	}
	c := s.cur[s.pos:]
	s.pos = len(s.cur)
	s.bytesDelivered.Add(uint64(len(c)))
	return c, nil
}

// Recycle returns the chunk handed out by NextChunk to the stream's
// free list immediately, instead of waiting for the next consuming call.
// It is a no-op if there is nothing fully consumed to recycle.
func (s *Stream) Recycle() {
	if s.cur != nil && s.pos == len(s.cur) {
		select {
		case s.free <- s.cur:
		default:
		}
		s.cur = nil
		s.pos = 0
	}
}

// Close stops the workers and unblocks any in-flight Read (which then
// returns ErrClosed). Close is idempotent and safe to call while
// another goroutine is reading.
func (s *Stream) Close() {
	s.once.Do(func() {
		close(s.stop)
		// Drain so workers blocked on delivery observe the stop.
		for _, c := range s.chunks {
			select {
			case <-c:
			default:
			}
		}
		s.wg.Wait()
	})
}

// Workers reports the pool size.
func (s *Stream) Workers() int { return s.workers }

// Fill generates len(dst) bytes using all workers in one parallel
// one-shot at the default lane width; see FillLanes.
func Fill(alg Algorithm, seed uint64, workers int, dst []byte) error {
	return FillLanes(alg, seed, workers, DefaultLanes, dst)
}

// FillLanes generates len(dst) bytes using all workers in one parallel
// one-shot: dst is split into contiguous per-worker regions (the
// "coalesced write" layout of §4.5) that are filled concurrently. The
// output is deterministic for a given (algorithm, seed, workers) and
// independent of StagingBytes and of the lane width.
func FillLanes(alg Algorithm, seed uint64, workers, lanes int, dst []byte) error {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if len(dst) == 0 {
		return ValidateLanes(lanes)
	}
	// Regions are whole multiples of the engine block size except the last.
	probe, err := newEngine(alg, seed, 1, lanes)
	if err != nil {
		return err
	}
	blk := probe.blockBytes()
	per := (len(dst)/workers + blk - 1) / blk * blk
	if per == 0 {
		per = blk
	}
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= len(dst) {
			break
		}
		hi := lo + per
		if hi > len(dst) {
			hi = len(dst)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Worker w uses seed domain w+1, the same derivation as the
			// Stream workers; worker 0 reuses the probe engine.
			var eng engine
			var err error
			if w == 0 {
				eng = probe
			} else {
				eng, err = newEngine(alg, seed, uint64(w)+1, lanes)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			// Whole blocks are generated straight into dst; only a
			// trailing partial block passes through a scratch buffer.
			n := hi - lo
			aligned := n / blk * blk
			if aligned > 0 {
				eng.nextBlocks(dst[lo:lo+aligned], nil)
			}
			if aligned < n {
				tail := make([]byte, blk)
				eng.nextBlock(tail)
				copy(dst[lo+aligned:hi], tail)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return firstErr
}
