package core

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

// refStreamBytes reads n bytes of the (alg, seed, workers, staging)
// stream through plain Read — the reference for the other consumers.
func refStreamBytes(t *testing.T, alg Algorithm, seed uint64, workers, staging, n int) []byte {
	t.Helper()
	s, err := NewStream(alg, seed, StreamConfig{Workers: workers, StagingBytes: staging})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// errSink stops accepting writes after n bytes, like the server's
// response budget writer.
type errSink struct {
	buf bytes.Buffer
	n   int
}

var errSinkFull = errors.New("sink full")

func (e *errSink) Write(p []byte) (int, error) {
	if e.buf.Len() >= e.n {
		return 0, errSinkFull
	}
	if rem := e.n - e.buf.Len(); len(p) > rem {
		k, _ := e.buf.Write(p[:rem])
		return k, errSinkFull
	}
	return e.buf.Write(p)
}

func TestStreamWriteToMatchesRead(t *testing.T) {
	const n = 1 << 20
	for _, workers := range []int{1, 3} {
		want := refStreamBytes(t, TRIVIUM, 7, workers, 8192, n)

		s, err := NewStream(TRIVIUM, 7, StreamConfig{Workers: workers, StagingBytes: 8192})
		if err != nil {
			t.Fatal(err)
		}
		sink := &errSink{n: n}
		got, err := s.WriteTo(sink)
		s.Close()
		if !errors.Is(err, errSinkFull) {
			t.Fatalf("workers=%d: WriteTo err = %v, want sink full", workers, err)
		}
		if got != n {
			t.Fatalf("workers=%d: WriteTo wrote %d bytes, want %d", workers, got, n)
		}
		if !bytes.Equal(sink.buf.Bytes(), want) {
			t.Fatalf("workers=%d: WriteTo bytes differ from Read bytes", workers)
		}
	}
}

// TestStreamConsumerInterleaving drives one stream through all three
// consumption APIs in turn — Read, WriteTo (with a mid-chunk cutoff),
// NextChunk — and checks the concatenation is the canonical stream.
func TestStreamConsumerInterleaving(t *testing.T) {
	const n = 1 << 20
	want := refStreamBytes(t, GRAIN, 99, 2, 8192, n)

	s, err := NewStream(GRAIN, 99, StreamConfig{Workers: 2, StagingBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var got bytes.Buffer
	buf := make([]byte, 3000) // deliberately not chunk-aligned
	for round := 0; got.Len() < n; round++ {
		switch round % 3 {
		case 0:
			if _, err := io.ReadFull(s, buf); err != nil {
				t.Fatal(err)
			}
			got.Write(buf)
		case 1:
			// Cut WriteTo off mid-chunk; the remainder must surface in
			// the next consumer call.
			sink := &errSink{n: 5000}
			k, err := s.WriteTo(sink)
			if !errors.Is(err, errSinkFull) {
				t.Fatalf("WriteTo err = %v", err)
			}
			if k != 5000 {
				t.Fatalf("WriteTo wrote %d, want 5000", k)
			}
			got.Write(sink.buf.Bytes())
		case 2:
			c, err := s.NextChunk()
			if err != nil {
				t.Fatal(err)
			}
			got.Write(c)
			s.Recycle()
		}
	}
	if !bytes.Equal(got.Bytes()[:n], want) {
		t.Fatal("interleaved Read/WriteTo/NextChunk bytes differ from canonical stream")
	}
}

// TestNextChunkConcurrentClose hammers the chunk-handoff path against a
// concurrent Close (run under -race in CI).
func TestNextChunkConcurrentClose(t *testing.T) {
	for i := 0; i < 20; i++ {
		s, err := NewStream(MICKEY, uint64(i), StreamConfig{Workers: 2, StagingBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := s.NextChunk()
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("NextChunk err = %v, want ErrClosed", err)
					}
					return
				}
				if len(c) == 0 {
					t.Error("NextChunk returned empty chunk")
					return
				}
				s.Recycle()
			}
		}()
		s.Close()
		wg.Wait()
	}
}

// TestSteadyStateAllocs pins the tentpole property: once warmed, the
// stream datapath — engine passes, rekeys at pass boundaries, chunk
// handoff and consumption — runs without heap allocations.
func TestSteadyStateAllocs(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			s, err := NewStream(alg, 5, StreamConfig{Workers: 1, StagingBytes: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			buf := make([]byte, 64<<10)
			// Warm up: populate the free list and retire the constructor's
			// lazily-allocated first chunks.
			for i := 0; i < 8; i++ {
				if _, err := io.ReadFull(s, buf); err != nil {
					t.Fatal(err)
				}
			}
			// Each round reads a full staging chunk, so sustained reading
			// crosses engine pass boundaries (one rekey per 128 KiB at 64
			// lanes) — the rekey path must be allocation-free too.
			avg := testing.AllocsPerRun(32, func() {
				if _, err := io.ReadFull(s, buf); err != nil {
					t.Fatal(err)
				}
			})
			// The producer goroutine's allocations land in the same global
			// counter; allow a tiny residue for channel scheduling noise.
			if avg > 0.5 {
				t.Fatalf("steady-state Read allocates %.2f objects per 64KiB chunk, want ~0", avg)
			}
		})
	}
}

// TestGeneratorRekeyAllocs pins the single-engine rekey path: reading
// whole passes forever re-derives key/IV material and re-runs every
// cipher key schedule with zero heap allocations.
func TestGeneratorRekeyAllocs(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			g, err := NewGenerator(alg, 5)
			if err != nil {
				t.Fatal(err)
			}
			// One pass = lanes × SegmentBytes; reading it in full forces a
			// rekey per iteration.
			buf := make([]byte, DefaultLanes*SegmentBytes)
			g.Read(buf) // warm up
			avg := testing.AllocsPerRun(8, func() { g.Read(buf) })
			if avg > 0 {
				t.Fatalf("pass-boundary rekey allocates %.2f objects per pass, want 0", avg)
			}
		})
	}
}
