package core

import (
	"bytes"
	"testing"

	"repro/internal/chaotic"
)

func TestParseAlgorithmChaotic(t *testing.T) {
	for _, base := range Algorithms {
		spelled := "chaotic(" + base.String() + ")"
		alg, err := ParseAlgorithm(spelled)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", spelled, err)
		}
		if !alg.IsChaotic() || alg.Base() != base {
			t.Errorf("ParseAlgorithm(%q) = %v (base %v)", spelled, alg, alg.Base())
		}
		if alg.String() != spelled {
			t.Errorf("%v.String() = %q, want %q", alg, alg.String(), spelled)
		}
	}
	if alg, err := ParseAlgorithm("  CHAOTIC(Grain) "); err != nil || alg != Chaotic(GRAIN) {
		t.Errorf("case/space-insensitive parse = %v, %v", alg, err)
	}
	for _, bad := range []string{"chaotic(", "chaotic()", "chaotic(nope)", "chaotic(chaotic(grain))"} {
		if _, err := ParseAlgorithm(bad); err == nil {
			t.Errorf("ParseAlgorithm(%q) accepted", bad)
		}
	}
	if got := Chaotic(Chaotic(TRIVIUM)); got != Chaotic(TRIVIUM) {
		t.Errorf("Chaotic is not idempotent: %v", got)
	}
	if MICKEY.IsChaotic() || MICKEY.Base() != MICKEY {
		t.Error("plain algorithm misreports chaotic state")
	}
}

// The chaotic mode must preserve the canonical-stream property: byte
// streams identical at every lane width, for both the Generator and the
// Stream front doors.
func TestChaoticLaneWidthIndependence(t *testing.T) {
	alg := Chaotic(GRAIN)
	const n = 3*SegmentBytes + 100
	ref := make([]byte, n)
	g, err := NewGeneratorLanes(alg, 11, 64)
	if err != nil {
		t.Fatal(err)
	}
	g.Read(ref)
	for _, lanes := range []int{256, 512} {
		g, err := NewGeneratorLanes(alg, 11, lanes)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, n)
		g.Read(got)
		if !bytes.Equal(got, ref) {
			t.Errorf("lanes=%d diverges from 64-lane stream", lanes)
		}
	}
}

// The composition must actually transform the bytes — and do exactly
// what internal/chaotic.Post specifies: undoing it with the documented
// x_0 schedule must recover the base engine's segment.
func TestChaoticComposition(t *testing.T) {
	const seed = 5
	base := make([]byte, SegmentBytes)
	gb, err := NewGenerator(TRIVIUM, seed)
	if err != nil {
		t.Fatal(err)
	}
	gb.Read(base)

	post := make([]byte, SegmentBytes)
	gc, err := NewGenerator(Chaotic(TRIVIUM), seed)
	if err != nil {
		t.Fatal(err)
	}
	gc.Read(post)
	if bytes.Equal(base, post) {
		t.Fatal("chaotic mode did not change the stream")
	}

	var x0 [1]uint64
	deriveChaoticX0s(x0[:], seed, 0, 0, 0)
	chaotic.Unpost(post, x0[0])
	if !bytes.Equal(base, post) {
		t.Fatal("chaotic stream is not Post(base stream) under the documented x_0 schedule")
	}
}

// Distinct seeds and distinct base engines must give distinct chaotic
// streams, and the x_0 schedule must be domain-separated from the inner
// key material (different tweak constant ⇒ different draw).
func TestChaoticStreamsDecorrelated(t *testing.T) {
	read := func(alg Algorithm, seed uint64) []byte {
		g, err := NewGenerator(alg, seed)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 512)
		g.Read(b)
		return b
	}
	a := read(Chaotic(GRAIN), 1)
	if bytes.Equal(a, read(Chaotic(GRAIN), 2)) {
		t.Error("chaotic streams identical across seeds")
	}
	if bytes.Equal(a, read(Chaotic(MICKEY), 1)) {
		t.Error("chaotic streams identical across base engines")
	}
	var x0 [1]uint64
	deriveChaoticX0s(x0[:], 1, 0, 0, 0)
	sm := splitMix64{s: 1 ^ 0xD1342543DE82EF95*0}
	sm.next()
	if x0[0] == sm.next() {
		t.Error("x_0 schedule collides with inner key material schedule")
	}
}

// XORGENS is a first-class engine: its generator must be deterministic,
// lane-width independent, and distinct from every other engine.
func TestXorgensEngineStream(t *testing.T) {
	ref := make([]byte, 2*SegmentBytes)
	g, err := NewGeneratorLanes(XORGENS, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	g.Read(ref)
	for _, lanes := range []int{256, 512} {
		g, err := NewGeneratorLanes(XORGENS, 3, lanes)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(ref))
		g.Read(got)
		if !bytes.Equal(got, ref) {
			t.Errorf("xorgens lanes=%d diverges from 64-lane stream", lanes)
		}
	}
	for _, other := range []Algorithm{MICKEY, GRAIN, AESCTR, TRIVIUM} {
		o, err := NewGenerator(other, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(ref))
		o.Read(got)
		if bytes.Equal(got, ref) {
			t.Errorf("xorgens stream identical to %v", other)
		}
	}
}
