package core

import "fmt"

// Resumable stream positioning: the canonical byte stream of one
// (seed, domain) pair is the concatenation of SegmentBytes-sized
// segments, and segment j's material depends only on (seed, domain, j)
// — never on lane width or on how much of the stream was produced
// before it. That makes the stream randomly addressable: an engine can
// be keyed directly for any segment index and emit the identical bytes
// a from-the-start reader would have reached, which is what bsrngd's
// /stream endpoint and segment leases lean on to resume a client after
// a disconnect and to let any party re-derive a leased window
// byte-for-byte.

// maxSegmentIndex bounds addressable segment indices so byte-offset
// arithmetic (index * SegmentBytes) can never wrap a uint64.
const maxSegmentIndex = uint64(1) << 52

// seek repositions the engine at the start of the pass whose first slot
// is absolute segment index base, discarding any partially-emitted
// pass. The epoch is preserved (0 on the canonical stream).
func (e *segmented) seek(base uint64) {
	e.base = base
	if err := e.rekey(base, e.epoch); err != nil {
		panic("core: segment rekey failed: " + err.Error())
	}
	e.emit = 0
	e.filled = false
}

// NewSegmentReader returns a Generator positioned at absolute byte
// offset `offset` of the canonical (seed, domain) stream: the first
// byte it reads is byte `offset` of the stream a zero-offset reader
// would produce. domain 0 with lanes DefaultLanes is exactly the
// NewGenerator stream; worker w of a Stream serves domain w+1.
//
// The reader is keyed directly for segment offset/SegmentBytes — no
// bytes before the offset are generated — so positioning cost is one
// rekey plus, for a mid-segment offset, one segment of keystream. The
// returned bytes are identical at every supported lane width.
func NewSegmentReader(alg Algorithm, seed, domain uint64, lanes int, offset uint64) (*Generator, error) {
	if lanes == 0 {
		lanes = DefaultLanes
	}
	seg, skip := offset/SegmentBytes, offset%SegmentBytes
	if seg >= maxSegmentIndex {
		return nil, fmt.Errorf("core: segment index %d out of range (max %d)", seg, maxSegmentIndex)
	}
	eng, err := newEngine(alg, seed, domain, lanes)
	if err != nil {
		return nil, err
	}
	if seg != 0 {
		se, ok := eng.(*segmented)
		if !ok {
			return nil, fmt.Errorf("core: engine for %v does not support positioning", alg)
		}
		se.seek(seg)
	}
	g := &Generator{alg: alg, lanes: lanes, eng: eng}
	g.buf = make([]byte, eng.blockBytes())
	g.pos = len(g.buf)
	if skip != 0 {
		// Generate the offset's segment into the one-block buffer and
		// leave the cursor mid-segment; aligned reads continue in place
		// from the next segment on.
		eng.nextBlock(g.buf)
		g.pos = int(skip)
	}
	return g, nil
}
