// Package core is the BSRNG engine: the public face of this repository's
// reproduction of the paper's bitsliced PRNG system. It wires the
// bitsliced cipher engines (MICKEY 2.0, Grain v1, AES-128-CTR) into
// byte-stream generators, expands a single user seed into decorrelated
// per-lane keys and IVs (the paper's "non-linear expansion of a pre-stored
// random set", §4.4), and scales across cores with the worker-pool Stream
// that mirrors the paper's thread blocks and shared-memory staging (§4.5).
package core

// splitMix64 is the seed-expansion PRF: a full-period 64-bit permutation
// sequence with strong avalanche, used to derive per-lane key/IV material
// from one user seed. (This substitutes the paper's pre-stored random
// set; see DESIGN.md §2.)
type splitMix64 struct{ s uint64 }

func (s *splitMix64) next() uint64 {
	s.s += 0x9E3779B97F4A7C15
	z := s.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fill derives len(dst) pseudo-random bytes from the expander without
// allocating.
func (s *splitMix64) fill(dst []byte) {
	for i := 0; i < len(dst); i += 8 {
		v := s.next()
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(v >> uint(8*j))
		}
	}
}

// segmentMaterial derives key and IV byte strings for the `lanes`
// consecutive stream segments starting at absolute index base: lane l
// receives the material of segment base+l. domain separates independent
// engines (e.g. workers of a Stream) drawing from the same user seed.
//
// Each segment's material depends only on (seed, domain, base+l, epoch)
// — never on the lane count — which is what makes the canonical byte
// stream identical at every datapath width: a 512-lane engine computes
// the same segments as a 64-lane engine, just more of them per pass.
//
// epoch is the reseed generation and is 0 for the canonical stream; a
// continuous health test that condemns a segment bumps the engine's
// epoch so the regenerated segments draw fresh, unrelated material (a
// deterministic engine fault would otherwise reproduce the same bad
// bytes forever).
func segmentMaterial(seed, domain, base, epoch uint64, lanes, keyLen, ivLen int) (keys, ivs [][]byte) {
	m := newLaneMaterial(lanes, keyLen, ivLen)
	m.derive(seed, domain, base, epoch)
	return m.keys, m.ivs
}

// laneMaterial is the reusable key/IV scratch of one engine: a single
// flat backing array resliced into per-lane key and IV strings, so the
// lock-step rekey at every segment-pass boundary derives fresh material
// with zero allocations. Engines copy the material into their own state
// during Reseed and never retain the slices, which is what makes the
// reuse across rekeys safe.
type laneMaterial struct {
	keys, ivs     [][]byte
	keyLen, ivLen int
}

func newLaneMaterial(lanes, keyLen, ivLen int) *laneMaterial {
	m := &laneMaterial{
		keys:   make([][]byte, lanes),
		ivs:    make([][]byte, lanes),
		keyLen: keyLen,
		ivLen:  ivLen,
	}
	backing := make([]byte, lanes*(keyLen+ivLen))
	for l := 0; l < lanes; l++ {
		o := l * (keyLen + ivLen)
		m.keys[l] = backing[o : o+keyLen]
		m.ivs[l] = backing[o+keyLen : o+keyLen+ivLen]
	}
	return m
}

// chaoticSeedTweak domain-separates the chaotic-mode x_0 schedule from
// the inner engine's key/IV material: the same (seed, domain, segment,
// epoch) tuple must never feed both, or the post-processing orbit would
// be correlated with the keystream it perturbs.
const chaoticSeedTweak = 0x6A09E667F3BCC908 // frac(sqrt(2)), SHA-512 IV word

// deriveChaoticX0s fills x0s with the chaotic-mode initial words of
// segments base..base+len(x0s)-1. Like segmentMaterial, the value of
// lane l depends only on (seed, domain, base+l, epoch) — never the lane
// count — so chaotic modes keep the canonical-stream property.
func deriveChaoticX0s(x0s []uint64, seed, domain, base, epoch uint64) {
	for l := range x0s {
		sm := splitMix64{s: seed ^ chaoticSeedTweak ^ 0xA5A5A5A55A5A5A5A*domain ^ 0xD1342543DE82EF95*(base+uint64(l)) ^ 0x8CB92BA72F3D8DD7*epoch}
		sm.next()
		x0s[l] = sm.next()
	}
}

// derive overwrites the scratch with the material of segments
// base..base+lanes-1 — the same bytes segmentMaterial returns for the
// same arguments.
func (m *laneMaterial) derive(seed, domain, base, epoch uint64) {
	for l := range m.keys {
		sm := splitMix64{s: seed ^ 0xA5A5A5A55A5A5A5A*domain ^ 0xD1342543DE82EF95*(base+uint64(l)) ^ 0x8CB92BA72F3D8DD7*epoch}
		// One warm-up draw decorrelates small seed/domain/segment tuples.
		sm.next()
		sm.fill(m.keys[l])
		sm.fill(m.ivs[l])
	}
}
