package core

// Source64 adapts a Generator to math/rand's Source64 contract, so the
// BSRNG engines can drive any stdlib consumer (rand.New(src).Float64()
// etc.).
type Source64 struct{ g *Generator }

// NewSource64 builds the adapter.
func NewSource64(alg Algorithm, seed uint64) (*Source64, error) {
	g, err := NewGenerator(alg, seed)
	if err != nil {
		return nil, err
	}
	return &Source64{g: g}, nil
}

// Uint64 returns the next 64 generator bits.
func (s *Source64) Uint64() uint64 { return s.g.Uint64() }

// Int63 returns a non-negative 63-bit value.
func (s *Source64) Int63() int64 { return int64(s.g.Uint64() >> 1) }

// Seed is a no-op: the underlying cipher engines are seeded at
// construction (stream-cipher key schedules cannot be cheaply re-run).
// Build a new Source64 to reseed.
func (s *Source64) Seed(int64) {}
