package core

import (
	"testing"

	"repro/internal/bitslice"
	"repro/internal/grain"
	"repro/internal/mickey"
	"repro/internal/sp80022"
	"repro/internal/trivium"
)

// Paper §4.3: "the shift-registers should be carefully initialized to
// eliminate any statistical correlation between the LFSR state machines."
// Verify that the seed expansion actually decorrelates lanes: adjacent
// and distant lane keystreams of every bitsliced engine must show no
// cross-correlation, and each lane must be autocorrelation-clean.
func TestLaneDecorrelation(t *testing.T) {
	const lanes = 16
	const bytesPerLane = 8192
	laneStreams := func(alg Algorithm) [][]uint8 {
		t.Helper()
		keys, ivs := segmentMaterial(4242, 0, 0, 0, lanes, 10, 10)
		bufs := make([][]byte, lanes)
		for l := range bufs {
			bufs[l] = make([]byte, bytesPerLane)
		}
		switch alg {
		case MICKEY:
			m, err := mickey.NewSliced(keys, ivs, 80)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Keystream(bufs); err != nil {
				t.Fatal(err)
			}
		case GRAIN:
			for l := range ivs {
				ivs[l] = ivs[l][:grain.IVSize]
			}
			g, err := grain.NewSliced(keys, ivs)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Keystream(bufs); err != nil {
				t.Fatal(err)
			}
		case TRIVIUM:
			tv, err := trivium.NewSliced(keys, ivs)
			if err != nil {
				t.Fatal(err)
			}
			if err := tv.Keystream(bufs); err != nil {
				t.Fatal(err)
			}
		}
		out := make([][]uint8, lanes)
		for l := range bufs {
			out[l] = bitslice.BytesToBits(bufs[l])
		}
		return out
	}

	for _, alg := range []Algorithm{MICKEY, GRAIN, TRIVIUM} {
		streams := laneStreams(alg)
		pairs := [][2]int{{0, 1}, {0, 15}, {7, 8}, {3, 11}}
		for _, pr := range pairs {
			p, err := sp80022.CrossCorrelation(streams[pr[0]], streams[pr[1]])
			if err != nil {
				t.Fatal(err)
			}
			if p < 1e-4 {
				t.Errorf("%v: lanes %d and %d correlated (p=%g)", alg, pr[0], pr[1], p)
			}
		}
		for _, d := range []int{1, 64} {
			p, err := sp80022.Autocorrelation(streams[0], d)
			if err != nil {
				t.Fatal(err)
			}
			if p < 1e-4 {
				t.Errorf("%v: lane 0 autocorrelated at lag %d (p=%g)", alg, d, p)
			}
		}
	}
}
