package core

import (
	"bytes"
	"sync"
	"testing"
)

// The canonical stream is defined in segments keyed by absolute index, so
// the emitted bytes must be bit-identical at every datapath width — lane
// count is a throughput knob, not a stream parameter.
func TestGeneratorWidthIndependence(t *testing.T) {
	for _, alg := range Algorithms {
		base, err := NewGeneratorLanes(alg, 77, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Long enough to cross several rekey boundaries at 64 lanes.
		want := make([]byte, 3*64*SegmentBytes+777)
		base.Read(want)
		for _, lanes := range []int{256, 512} {
			g, err := NewGeneratorLanes(alg, 77, lanes)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			g.Read(got)
			if !bytes.Equal(got, want) {
				t.Errorf("%v: %d-lane stream diverges from 64-lane stream", alg, lanes)
			}
			if g.Lanes() != lanes {
				t.Errorf("%v: Lanes() = %d, want %d", alg, g.Lanes(), lanes)
			}
		}
	}
}

func TestStreamWidthIndependence(t *testing.T) {
	read := func(lanes int) []byte {
		s, err := NewStream(GRAIN, 13, StreamConfig{Workers: 2, StagingBytes: 4096, Lanes: lanes})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		buf := make([]byte, 200000)
		if _, err := s.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	want := read(64)
	for _, lanes := range []int{0, 256, 512} {
		if got := read(lanes); !bytes.Equal(got, want) {
			t.Errorf("stream bytes at %d lanes diverge from 64 lanes", lanes)
		}
	}
}

func TestFillWidthIndependence(t *testing.T) {
	want := make([]byte, 100000)
	if err := FillLanes(TRIVIUM, 5, 4, 64, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := FillLanes(TRIVIUM, 5, 4, 512, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Fill bytes depend on the lane width")
	}
}

func TestLanesValidation(t *testing.T) {
	cases := []struct {
		lanes int
		ok    bool
	}{
		{0, true}, {64, true}, {256, true}, {512, true},
		{-1, false}, {1, false}, {32, false}, {65, false},
		{128, false}, {257, false}, {1024, false},
	}
	for _, tc := range cases {
		if err := ValidateLanes(tc.lanes); (err == nil) != tc.ok {
			t.Errorf("ValidateLanes(%d): err=%v, want ok=%v", tc.lanes, err, tc.ok)
		}
		_, err := NewStream(MICKEY, 1, StreamConfig{Workers: 1, Lanes: tc.lanes})
		if (err == nil) != tc.ok {
			t.Errorf("NewStream lanes=%d: err=%v, want ok=%v", tc.lanes, err, tc.ok)
		}
		_, err = NewGeneratorLanes(MICKEY, 1, tc.lanes)
		if (err == nil) != tc.ok {
			t.Errorf("NewGeneratorLanes(%d): err=%v, want ok=%v", tc.lanes, err, tc.ok)
		}
		err = FillLanes(MICKEY, 1, 1, tc.lanes, make([]byte, 64))
		if (err == nil) != tc.ok {
			t.Errorf("FillLanes lanes=%d: err=%v, want ok=%v", tc.lanes, err, tc.ok)
		}
	}
}

// A wide-lane stream under concurrent Read/Close/Stats pressure (run with
// -race in CI): reads from multiple goroutines are serialized by the
// callers here — the contract is one reader at a time — but Stats and
// Close race freely against the reader.
func TestWideLaneStreamConcurrency(t *testing.T) {
	s, err := NewStream(TRIVIUM, 3, StreamConfig{Workers: 4, StagingBytes: 8192, Lanes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex // serializes Read, per the Stream contract
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 32768)
			for i := 0; i < 8; i++ {
				mu.Lock()
				_, err := s.Read(buf)
				mu.Unlock()
				if err != nil {
					return
				}
				s.Stats()
			}
		}()
	}
	wg.Wait()
	s.Close()
	if got := s.Stats().BytesDelivered; got != 4*8*32768 {
		t.Errorf("BytesDelivered = %d, want %d", got, 4*8*32768)
	}
}
