package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// A SegmentReader at byte offset K must continue the canonical
// (seed, domain) stream exactly where a from-the-start reader left off,
// at every lane width and for offsets landing on and inside segment
// boundaries.
func TestSegmentReaderMatchesGenerator(t *testing.T) {
	const seed = 99
	offsets := []uint64{
		0, 1, SegmentBytes - 1, SegmentBytes, SegmentBytes + 1,
		3*SegmentBytes + 1000, 64 * SegmentBytes, 65*SegmentBytes + 7,
	}
	for _, alg := range []Algorithm{MICKEY, TRIVIUM, XORGENS, Chaotic(GRAIN)} {
		ref, err := NewGenerator(alg, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: one long prefix covering the largest offset + window.
		const window = 3 * SegmentBytes
		prefix := make([]byte, int(offsets[len(offsets)-1])+window)
		if _, err := io.ReadFull(ref, prefix); err != nil {
			t.Fatal(err)
		}
		for _, lanes := range SupportedLanes {
			for _, off := range offsets {
				r, err := NewSegmentReader(alg, seed, 0, lanes, off)
				if err != nil {
					t.Fatalf("%v lanes=%d off=%d: %v", alg, lanes, off, err)
				}
				got := make([]byte, window)
				if _, err := io.ReadFull(r, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, prefix[off:int(off)+window]) {
					t.Fatalf("%v lanes=%d: bytes at offset %d diverge from the canonical stream", alg, lanes, off)
				}
			}
		}
	}
}

// Domain d of the segment address space is worker d-1's share of a
// Stream: a 1-worker Stream is exactly domain 1, so a SegmentReader on
// domain 1 must reproduce (and be able to resume) the Stream's bytes.
func TestSegmentReaderMatchesStreamWorkerDomain(t *testing.T) {
	const seed = 7
	st, err := NewStream(GRAIN, seed, StreamConfig{Workers: 1, StagingBytes: SegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	prefix := make([]byte, 5*SegmentBytes)
	if _, err := io.ReadFull(st, prefix); err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{0, SegmentBytes + 123, 2 * SegmentBytes} {
		r, err := NewSegmentReader(GRAIN, seed, 1, 0, off)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 2*SegmentBytes)
		if _, err := io.ReadFull(r, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, prefix[off:int(off)+len(got)]) {
			t.Fatalf("domain-1 reader at offset %d diverges from the 1-worker stream", off)
		}
	}
}

// Positioning far into the stream must be self-consistent without
// generating the prefix: a reader at offset K and a reader at K-delta
// (after discarding delta bytes) agree, and every lane width lands on
// the same bytes.
func TestSegmentReaderFarSeekConsistency(t *testing.T) {
	const seed = 1234
	const far = uint64(1<<20)*SegmentBytes + 777 // ~2 GiB in, mid-segment
	want := make([]byte, SegmentBytes)
	r64, err := NewSegmentReader(TRIVIUM, seed, 3, 64, far)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(r64, want); err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{256, 512} {
		r, err := NewSegmentReader(TRIVIUM, seed, 3, lanes, far)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, SegmentBytes)
		if _, err := io.ReadFull(r, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lanes=%d far seek diverges from lanes=64", lanes)
		}
	}
	const delta = 300
	rb, err := NewSegmentReader(TRIVIUM, seed, 3, 64, far-delta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.CopyN(io.Discard, rb, delta); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SegmentBytes)
	if _, err := io.ReadFull(rb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reader seeked short and skipped forward diverges from direct seek")
	}
}

func TestSegmentReaderOffsetOutOfRange(t *testing.T) {
	if _, err := NewSegmentReader(MICKEY, 1, 0, 0, ^uint64(0)); err == nil {
		t.Fatal("astronomical offset accepted")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := NewSegmentReader(MICKEY, 1, 0, 63, 0); err == nil {
		t.Fatal("invalid lane width accepted")
	}
}

// The steady-state aligned read path of a positioned reader is the
// zero-copy engine path: whole segments land straight in the caller's
// buffer with no per-read allocation.
func TestSegmentReaderAlignedReadAllocs(t *testing.T) {
	r, err := NewSegmentReader(GRAIN, 5, 0, 0, SegmentBytes*10+64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*SegmentBytes)
	r.Read(buf) // absorb the mid-segment head
	if avg := testing.AllocsPerRun(50, func() { r.Read(buf) }); avg > 0.5 {
		t.Fatalf("aligned SegmentReader.Read allocates %.1f per call, want ~0", avg)
	}
}
