package core

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/aes"
	"repro/internal/bitslice"
	"repro/internal/chaotic"
	"repro/internal/grain"
	"repro/internal/mickey"
	"repro/internal/trivium"
	"repro/internal/xorgens"
)

// Algorithm selects the underlying bitsliced CSPRNG.
type Algorithm int

const (
	// MICKEY is the bitsliced MICKEY 2.0 engine — the paper's headline
	// generator.
	MICKEY Algorithm = iota
	// GRAIN is the bitsliced Grain v1 engine.
	GRAIN
	// AESCTR is the bitsliced AES-128 counter-mode engine.
	AESCTR
	// TRIVIUM is the bitsliced Trivium engine — an extension beyond the
	// paper's three ciphers (the remaining eSTREAM hardware-profile
	// winner), and the fastest engine in this repository.
	TRIVIUM
	// XORGENS is the bitsliced xorgens-style F₂-linear engine (Brent's
	// xorgens4096 recurrence) — a fifth family whose state update is pure
	// word-XOR circuitry, following Nandapalan & Brent's line of work.
	XORGENS
)

// chaoticFlag marks an Algorithm as a chaotic-iterations post-processed
// mode of its base engine (Bahi et al.; see internal/chaotic). The flag
// lives well above the base-engine range so base values stay dense for
// iteration and the composed value still round-trips through int.
const chaoticFlag Algorithm = 1 << 8

// Chaotic returns the chaotic-iterations post-processed mode of base.
// Composing an already-chaotic algorithm is idempotent.
func Chaotic(base Algorithm) Algorithm { return base.Base() | chaoticFlag }

// IsChaotic reports whether a is a chaotic post-processed mode.
func (a Algorithm) IsChaotic() bool { return a&chaoticFlag != 0 }

// Base returns the underlying engine of a chaotic mode (a itself for
// plain algorithms).
func (a Algorithm) Base() Algorithm { return a &^ chaoticFlag }

// String returns the algorithm's display name; chaotic modes render as
// "chaotic(<base>)", the spelling ParseAlgorithm accepts back.
func (a Algorithm) String() string {
	if a.IsChaotic() {
		return "chaotic(" + a.Base().String() + ")"
	}
	switch a {
	case MICKEY:
		return "mickey"
	case GRAIN:
		return "grain"
	case AESCTR:
		return "aes-ctr"
	case TRIVIUM:
		return "trivium"
	case XORGENS:
		return "xorgens"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// AlgorithmNames lists the accepted ParseAlgorithm spellings (canonical
// names first), for error messages and usage strings. "chaotic(<name>)"
// wraps any base engine in the chaotic-iterations post-processing mode.
var AlgorithmNames = []string{"mickey", "grain", "aes-ctr", "trivium", "xorgens", "aes", "chaotic(<name>)"}

// ParseAlgorithm maps a name (case-insensitive, surrounding whitespace
// ignored) to an Algorithm. "chaotic(<name>)" selects the
// chaotic-iterations post-processed mode of the named base engine.
func ParseAlgorithm(s string) (Algorithm, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	if inner, ok := strings.CutPrefix(name, "chaotic("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			return 0, fmt.Errorf("core: malformed algorithm %q (want chaotic(<name>))", s)
		}
		base, err := ParseAlgorithm(inner)
		if err != nil {
			return 0, err
		}
		if base.IsChaotic() {
			return 0, fmt.Errorf("core: algorithm %q nests chaotic modes", s)
		}
		return Chaotic(base), nil
	}
	switch name {
	case "mickey":
		return MICKEY, nil
	case "grain":
		return GRAIN, nil
	case "aes-ctr", "aes":
		return AESCTR, nil
	case "trivium":
		return TRIVIUM, nil
	case "xorgens":
		return XORGENS, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want one of %s)", s, strings.Join(AlgorithmNames, ", "))
}

// Algorithms lists all base engines.
var Algorithms = []Algorithm{MICKEY, GRAIN, AESCTR, TRIVIUM, XORGENS}

// ServedAlgorithms is the default serving, benchmark and certification
// matrix: every base engine plus one chaotic post-processed mode
// (exercising the composition end-to-end without doubling the grid).
var ServedAlgorithms = []Algorithm{MICKEY, GRAIN, AESCTR, TRIVIUM, XORGENS, Chaotic(GRAIN)}

// SegmentBytes is the unit of the canonical BSRNG byte stream: the stream
// of one (seed, domain) pair is the concatenation of fixed-size segments,
// and segment j is keystream from a cipher instance keyed by
// PRF(seed, domain, j) (see segmentMaterial). A W-lane engine computes W
// consecutive segments in one lock-step pass — lane width changes how many
// segments are produced per pass, never their bytes, so every datapath
// width emits the identical stream.
const SegmentBytes = 2048

// DefaultLanes is the lane width used when a caller does not choose one:
// the native 64-lane uint64 datapath.
const DefaultLanes = 64

// SupportedLanes lists the valid engine lane widths: 64 (uint64 planes),
// 256 (quad-word planes) and 512 (oct-word planes).
var SupportedLanes = []int{64, 256, 512}

// ValidateLanes rejects lane counts outside SupportedLanes (0 selects
// DefaultLanes and is accepted).
func ValidateLanes(lanes int) error {
	if lanes == 0 {
		return nil
	}
	for _, n := range SupportedLanes {
		if lanes == n {
			return nil
		}
	}
	return fmt.Errorf("core: unsupported lane count %d (want one of %v)", lanes, SupportedLanes)
}

// engine is one bitsliced generator producing the canonical segment
// stream of a (seed, domain) pair.
type engine interface {
	// blockBytes is the output of one nextBlock call.
	blockBytes() int
	// nextBlock writes exactly blockBytes() bytes.
	nextBlock(dst []byte)
	// nextBlocks writes len(dst) bytes — a multiple of blockBytes() —
	// letting the engine place whole lock-step passes directly into dst
	// (the zero-copy fast path). check, when non-nil, runs on every
	// block right after it lands in dst; it may call reseed and
	// nextBlock reentrantly to condemn and regenerate that block.
	nextBlocks(dst []byte, check func(seg []byte))
	// reseed condemns the block most recently emitted by nextBlock: the
	// engine rekeys itself with fresh material (a bumped reseed epoch)
	// and the next nextBlock call regenerates that block's slot. Used
	// by the continuous health tests to discard a failed segment.
	reseed()
}

// segmented drives a wide-lane cipher through the segment stream: one
// lock-step pass fills `lanes` segment buffers (lane l = segment base+l),
// nextBlock hands them out in order, and an exhausted pass rekeys the
// cipher for the next `lanes` segment indices via the rekey hook.
//
// The pass destination is chosen per fill: nextBlocks aims as many lane
// buffers as fit directly at the caller's destination (the cipher then
// writes those segments exactly once, into their final resting place)
// and parks only the overhang lanes in the engine's private buffers for
// later copy-out. The private buffers also carry every health-reseed
// regeneration — see reseed.
type segmented struct {
	lanes  int
	priv   [][]byte // lanes × SegmentBytes private buffers, one backing array
	cur    [][]byte // current pass destination per lane: priv[l] or a dst subslice
	emit   int      // next segment slot to hand out
	filled bool     // cur[emit..lanes-1] hold generated segments
	base   uint64   // absolute segment index of the current pass's slot 0
	epoch  uint64   // reseed generation; 0 = canonical stream
	rekey  func(base, epoch uint64) error
	fill   func(bufs [][]byte) error
}

func newSegmented(lanes int, rekey func(base, epoch uint64) error, fill func([][]byte) error) *segmented {
	e := &segmented{lanes: lanes, rekey: rekey, fill: fill}
	backing := make([]byte, lanes*SegmentBytes)
	e.priv = make([][]byte, lanes)
	e.cur = make([][]byte, lanes)
	for l := range e.priv {
		e.priv[l] = backing[l*SegmentBytes : (l+1)*SegmentBytes]
	}
	// The engine arrives keyed for pass 0 (base 0, epoch 0); the pass is
	// generated lazily on the first emit so it can land directly in the
	// first caller's destination.
	return e
}

// fillPass generates the current pass. Lanes whose segment slots land
// inside dst are aimed straight at it — the cipher writes them in place
// — and the rest go to the private buffers. dst must be segment-aligned
// and is nil on the nextBlock (copy-out) path. Only called with emit==0:
// a pass is always generated from its first slot.
func (e *segmented) fillPass(dst []byte) {
	direct := len(dst) / SegmentBytes
	if direct > e.lanes {
		direct = e.lanes
	}
	for l := 0; l < direct; l++ {
		e.cur[l] = dst[l*SegmentBytes : (l+1)*SegmentBytes]
	}
	copy(e.cur[direct:], e.priv[direct:])
	if err := e.fill(e.cur); err != nil {
		panic("core: segment fill failed: " + err.Error())
	}
	e.filled = true
}

// advancePass rekeys the cipher for the next `lanes` segment indices.
func (e *segmented) advancePass() {
	e.base += uint64(e.lanes)
	if err := e.rekey(e.base, e.epoch); err != nil {
		panic("core: segment rekey failed: " + err.Error())
	}
	e.emit = 0
	e.filled = false
}

func (e *segmented) blockBytes() int { return SegmentBytes }

func (e *segmented) nextBlock(dst []byte) {
	if e.emit == e.lanes {
		e.advancePass()
	}
	if !e.filled {
		e.fillPass(nil)
	}
	if src := e.cur[e.emit]; &src[0] != &dst[0] {
		copy(dst, src)
	}
	e.emit++
}

func (e *segmented) nextBlocks(dst []byte, check func(seg []byte)) {
	if len(dst)%SegmentBytes != 0 {
		panic("core: nextBlocks destination not segment-aligned")
	}
	for len(dst) > 0 {
		if e.emit == e.lanes {
			e.advancePass()
		}
		if !e.filled {
			e.fillPass(dst)
		}
		for e.emit < e.lanes && len(dst) > 0 {
			seg := dst[:SegmentBytes]
			// cur[emit] either aliases seg (direct fill) or holds a
			// parked segment in the private buffers; re-read it every
			// iteration because check may reseed mid-pass.
			if src := e.cur[e.emit]; &src[0] != &seg[0] {
				copy(seg, src)
			}
			e.emit++
			dst = dst[SegmentBytes:]
			if check != nil {
				check(seg)
			}
		}
	}
}

// reseed discards the current lock-step pass under a bumped epoch and
// re-aims at the last emitted segment slot, so the condemned segment
// (and every later one from this engine) is regenerated from fresh,
// unrelated key/IV material. The canonical epoch-0 stream is untouched
// for engines whose segments never fail a health check.
//
// The regeneration always lands in the private buffers, never in a
// caller's destination: earlier slots of a directly-filled pass have
// already been delivered (possibly into the same destination buffer)
// and must keep their bytes, so the refreshed pass is parked privately
// and copied out slot by slot from the condemned one on.
func (e *segmented) reseed() {
	e.epoch++
	if e.emit > 0 {
		e.emit--
	}
	copy(e.cur, e.priv)
	if err := e.rekey(e.base, e.epoch); err != nil {
		panic("core: segment rekey failed: " + err.Error())
	}
	if err := e.fill(e.cur); err != nil {
		panic("core: segment fill failed: " + err.Error())
	}
	e.filled = true
}

// newEngine builds a fully-seeded engine for one (seed, domain) pair at
// the given lane width (0 = DefaultLanes). The emitted byte stream is
// identical at every supported width.
func newEngine(alg Algorithm, seed, domain uint64, lanes int) (engine, error) {
	if lanes == 0 {
		lanes = DefaultLanes
	}
	switch lanes {
	case 64:
		return newEngineWidth[bitslice.V64](alg, seed, domain, lanes)
	case 256:
		return newEngineWidth[bitslice.V256](alg, seed, domain, lanes)
	case 512:
		return newEngineWidth[bitslice.V512](alg, seed, domain, lanes)
	}
	return nil, fmt.Errorf("core: unsupported lane count %d (want one of %v)", lanes, SupportedLanes)
}

func newEngineWidth[V bitslice.Vec](alg Algorithm, seed, domain uint64, lanes int) (engine, error) {
	rekey, fill, err := newCipherWidth[V](alg.Base(), seed, domain, lanes)
	if err != nil {
		return nil, err
	}
	if alg.IsChaotic() {
		rekey, fill = chaoticWrap(seed, domain, lanes, rekey, fill)
	}
	return newSegmented(lanes, rekey, fill), nil
}

// chaoticWrap layers the chaotic-iterations post-processing mode over a
// cipher's rekey/fill pair: after every lock-step fill, each lane's
// segment is passed through chaotic.Post with a per-(segment, epoch)
// initial word x_0 drawn from the seed schedule under its own domain
// tweak (so the orbit start is decorrelated from the inner key
// material). x_0 depends on the absolute segment index base+l, never on
// the lane count, preserving the canonical-stream property.
func chaoticWrap(seed, domain uint64, lanes int, rekey func(base, epoch uint64) error, fill func([][]byte) error) (func(base, epoch uint64) error, func([][]byte) error) {
	x0s := make([]uint64, lanes)
	deriveChaoticX0s(x0s, seed, domain, 0, 0)
	wrappedRekey := func(base, epoch uint64) error {
		deriveChaoticX0s(x0s, seed, domain, base, epoch)
		return rekey(base, epoch)
	}
	wrappedFill := func(bufs [][]byte) error {
		if err := fill(bufs); err != nil {
			return err
		}
		for l, b := range bufs {
			chaotic.Post(b, x0s[l])
		}
		return nil
	}
	return wrappedRekey, wrappedFill
}

// newCipherWidth builds the keyed cipher for one base engine and returns
// its segment-pass (rekey, fill) hooks.
func newCipherWidth[V bitslice.Vec](alg Algorithm, seed, domain uint64, lanes int) (func(base, epoch uint64) error, func([][]byte) error, error) {
	// Each engine owns one laneMaterial scratch: every rekey at a segment
	// pass boundary rederives key/IV material in place, so the steady
	// state allocates nothing. The cipher Reseed implementations copy the
	// material into their own state and never retain the slices.
	switch alg {
	case MICKEY:
		mat := newLaneMaterial(lanes, mickey.KeySize, 10)
		mat.derive(seed, domain, 0, 0)
		m, err := mickey.NewSlicedVec[V](mat.keys, mat.ivs, mickey.MaxIVBits)
		if err != nil {
			return nil, nil, err
		}
		return func(base, epoch uint64) error {
			mat.derive(seed, domain, base, epoch)
			return m.Reseed(mat.keys, mat.ivs, mickey.MaxIVBits)
		}, m.Keystream, nil
	case GRAIN:
		mat := newLaneMaterial(lanes, grain.KeySize, grain.IVSize)
		mat.derive(seed, domain, 0, 0)
		g, err := grain.NewSlicedVec[V](mat.keys, mat.ivs)
		if err != nil {
			return nil, nil, err
		}
		return func(base, epoch uint64) error {
			mat.derive(seed, domain, base, epoch)
			return g.Reseed(mat.keys, mat.ivs)
		}, g.Keystream, nil
	case AESCTR:
		mat := newLaneMaterial(lanes, 16, 8)
		mat.derive(seed, domain, 0, 0)
		g, err := aes.NewSlicedCTRVec[V](mat.keys, mat.ivs)
		if err != nil {
			return nil, nil, err
		}
		return func(base, epoch uint64) error {
			mat.derive(seed, domain, base, epoch)
			return g.Reseed(mat.keys, mat.ivs)
		}, g.Keystream, nil
	case TRIVIUM:
		mat := newLaneMaterial(lanes, trivium.KeySize, trivium.IVSize)
		mat.derive(seed, domain, 0, 0)
		t, err := trivium.NewSlicedVec[V](mat.keys, mat.ivs)
		if err != nil {
			return nil, nil, err
		}
		return func(base, epoch uint64) error {
			mat.derive(seed, domain, base, epoch)
			return t.Reseed(mat.keys, mat.ivs)
		}, t.Keystream, nil
	case XORGENS:
		mat := newLaneMaterial(lanes, xorgens.KeySize, xorgens.IVSize)
		mat.derive(seed, domain, 0, 0)
		x, err := xorgens.NewSlicedVec[V](mat.keys, mat.ivs)
		if err != nil {
			return nil, nil, err
		}
		return func(base, epoch uint64) error {
			mat.derive(seed, domain, base, epoch)
			return x.Reseed(mat.keys, mat.ivs)
		}, x.Keystream, nil
	}
	return nil, nil, fmt.Errorf("core: unknown algorithm %v", alg)
}

// Generator is a deterministic single-engine BSRNG byte stream: one
// wide-lane bitsliced engine behind an io.Reader. The byte stream depends
// only on (algorithm, seed), not on the lane width.
type Generator struct {
	alg   Algorithm
	lanes int
	eng   engine
	buf   []byte
	pos   int // unread offset into buf; len(buf) when empty
}

// NewGenerator builds a seeded generator at the default lane width.
func NewGenerator(alg Algorithm, seed uint64) (*Generator, error) {
	return NewGeneratorLanes(alg, seed, DefaultLanes)
}

// NewGeneratorLanes builds a seeded generator at an explicit lane width
// (0 = DefaultLanes; see SupportedLanes).
func NewGeneratorLanes(alg Algorithm, seed uint64, lanes int) (*Generator, error) {
	if lanes == 0 {
		lanes = DefaultLanes
	}
	eng, err := newEngine(alg, seed, 0, lanes)
	if err != nil {
		return nil, err
	}
	g := &Generator{alg: alg, lanes: lanes, eng: eng}
	g.buf = make([]byte, eng.blockBytes())
	g.pos = len(g.buf)
	return g, nil
}

// Algorithm reports which engine backs the generator.
func (g *Generator) Algorithm() Algorithm { return g.alg }

// Lanes reports the generator's datapath width.
func (g *Generator) Lanes() int { return g.lanes }

// Read fills p with pseudo-random bytes; it never fails. Whole segments
// are generated directly into p — only a sub-segment head or tail passes
// through the generator's one-block buffer.
func (g *Generator) Read(p []byte) (int, error) {
	n := len(p)
	if g.pos < len(g.buf) {
		k := copy(p, g.buf[g.pos:])
		g.pos += k
		p = p[k:]
	}
	if aligned := len(p) - len(p)%len(g.buf); aligned > 0 {
		g.eng.nextBlocks(p[:aligned], nil)
		p = p[aligned:]
	}
	if len(p) > 0 {
		g.eng.nextBlock(g.buf)
		g.pos = copy(p, g.buf)
	}
	return n, nil
}

// Uint64 returns the next 8 output bytes as a little-endian word.
func (g *Generator) Uint64() uint64 {
	var b [8]byte
	g.Read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Words fills dst with raw output words — the cheapest bulk path.
func (g *Generator) Words(dst []uint64) {
	var b [8]byte
	for i := range dst {
		g.Read(b[:])
		dst[i] = binary.LittleEndian.Uint64(b[:])
	}
}
