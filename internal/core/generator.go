package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/aes"
	"repro/internal/grain"
	"repro/internal/mickey"
	"repro/internal/trivium"
)

// Algorithm selects the underlying bitsliced CSPRNG.
type Algorithm int

const (
	// MICKEY is the bitsliced MICKEY 2.0 engine — the paper's headline
	// generator.
	MICKEY Algorithm = iota
	// GRAIN is the bitsliced Grain v1 engine.
	GRAIN
	// AESCTR is the bitsliced AES-128 counter-mode engine.
	AESCTR
	// TRIVIUM is the bitsliced Trivium engine — an extension beyond the
	// paper's three ciphers (the remaining eSTREAM hardware-profile
	// winner), and the fastest engine in this repository.
	TRIVIUM
)

// String returns the algorithm's display name.
func (a Algorithm) String() string {
	switch a {
	case MICKEY:
		return "mickey"
	case GRAIN:
		return "grain"
	case AESCTR:
		return "aes-ctr"
	case TRIVIUM:
		return "trivium"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "mickey":
		return MICKEY, nil
	case "grain":
		return GRAIN, nil
	case "aes-ctr", "aes":
		return AESCTR, nil
	case "trivium":
		return TRIVIUM, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want mickey, grain, aes-ctr or trivium)", s)
}

// Algorithms lists all supported algorithms.
var Algorithms = []Algorithm{MICKEY, GRAIN, AESCTR, TRIVIUM}

// engine is one 64-lane bitsliced generator producing fixed-size blocks.
type engine interface {
	// blockBytes is the output of one nextBlock call.
	blockBytes() int
	// nextBlock writes exactly blockBytes() bytes.
	nextBlock(dst []byte)
}

type mickeyEngine struct{ m *mickey.Sliced }

func (e *mickeyEngine) blockBytes() int { return 512 }

func (e *mickeyEngine) nextBlock(dst []byte) {
	// 64 clocks × 64 lanes, written in device (raw word) order.
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], e.m.ClockWord())
	}
}

type grainEngine struct{ g *grain.Sliced }

func (e *grainEngine) blockBytes() int { return 512 }

func (e *grainEngine) nextBlock(dst []byte) {
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], e.g.ClockWord())
	}
}

type aesEngine struct{ g *aes.SlicedCTR }

func (e *aesEngine) blockBytes() int { return aes.BatchSize }

func (e *aesEngine) nextBlock(dst []byte) { e.g.NextBatch(dst) }

type triviumEngine struct{ t *trivium.Sliced }

func (e *triviumEngine) blockBytes() int { return 512 }

func (e *triviumEngine) nextBlock(dst []byte) {
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], e.t.ClockWord())
	}
}

// newEngine builds a fully-seeded 64-lane engine for one (seed, domain)
// pair.
func newEngine(alg Algorithm, seed, domain uint64) (engine, error) {
	const lanes = 64
	switch alg {
	case MICKEY:
		keys, ivs := laneMaterial(seed, domain, lanes, mickey.KeySize, 10)
		m, err := mickey.NewSliced(keys, ivs, mickey.MaxIVBits)
		if err != nil {
			return nil, err
		}
		return &mickeyEngine{m: m}, nil
	case GRAIN:
		keys, ivs := laneMaterial(seed, domain, lanes, grain.KeySize, grain.IVSize)
		g, err := grain.NewSliced(keys, ivs)
		if err != nil {
			return nil, err
		}
		return &grainEngine{g: g}, nil
	case AESCTR:
		keys, nonces := laneMaterial(seed, domain, lanes, 16, 8)
		g, err := aes.NewSlicedCTR(keys, nonces)
		if err != nil {
			return nil, err
		}
		return &aesEngine{g: g}, nil
	case TRIVIUM:
		keys, ivs := laneMaterial(seed, domain, lanes, trivium.KeySize, trivium.IVSize)
		t, err := trivium.NewSliced(keys, ivs)
		if err != nil {
			return nil, err
		}
		return &triviumEngine{t: t}, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", alg)
}

// Generator is a deterministic single-engine BSRNG byte stream: one
// 64-lane bitsliced engine behind an io.Reader.
type Generator struct {
	alg Algorithm
	eng engine
	buf []byte
	pos int // unread offset into buf; len(buf) when empty
}

// NewGenerator builds a seeded generator.
func NewGenerator(alg Algorithm, seed uint64) (*Generator, error) {
	eng, err := newEngine(alg, seed, 0)
	if err != nil {
		return nil, err
	}
	g := &Generator{alg: alg, eng: eng}
	g.buf = make([]byte, eng.blockBytes())
	g.pos = len(g.buf)
	return g, nil
}

// Algorithm reports which engine backs the generator.
func (g *Generator) Algorithm() Algorithm { return g.alg }

// Read fills p with pseudo-random bytes; it never fails.
func (g *Generator) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if g.pos == len(g.buf) {
			g.eng.nextBlock(g.buf)
			g.pos = 0
		}
		k := copy(p, g.buf[g.pos:])
		g.pos += k
		p = p[k:]
	}
	return n, nil
}

// Uint64 returns the next 8 output bytes as a little-endian word.
func (g *Generator) Uint64() uint64 {
	var b [8]byte
	g.Read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Words fills dst with raw output words — the cheapest bulk path.
func (g *Generator) Words(dst []uint64) {
	var b [8]byte
	for i := range dst {
		g.Read(b[:])
		dst[i] = binary.LittleEndian.Uint64(b[:])
	}
}
