package mickey

import (
	"math/bits"
	"math/rand"
	"testing"
)

// The irregular clocking must actually be irregular: over a window of
// clocks, both control bits take both values, and in the bitsliced engine
// different lanes take different control values in the same clock — the
// very case the paper's branch-free masking exists for.
func TestIrregularClockingIsExercised(t *testing.T) {
	key := make([]byte, KeySize)
	iv := []byte{1, 2, 3, 4}
	ref, err := NewRef(key, iv, 32)
	if err != nil {
		t.Fatal(err)
	}
	var sawR, sawS [2]bool
	for i := 0; i < 200; i++ {
		ctrlR := ref.S[34] ^ ref.R[67]
		ctrlS := ref.S[67] ^ ref.R[33]
		sawR[ctrlR] = true
		sawS[ctrlS] = true
		ref.ClockKG(false, 0)
	}
	if !sawR[0] || !sawR[1] {
		t.Error("control bit R never toggled over 200 clocks")
	}
	if !sawS[0] || !sawS[1] {
		t.Error("control bit S never toggled over 200 clocks")
	}
}

func TestLanesDivergeUnderIrregularClocking(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	keys := make([][]byte, 64)
	ivs := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	sl, err := NewSliced(keys, ivs, 80)
	if err != nil {
		t.Fatal(err)
	}
	// The per-lane control words must be mixed (neither all-0 nor all-1)
	// most of the time: that is the irregular clocking the paper folds
	// into masks.
	mixed := 0
	const clocks = 100
	for i := 0; i < clocks; i++ {
		ctrlR := sl.s[34][0] ^ sl.r[67][0]
		if c := bits.OnesCount64(ctrlR); c > 4 && c < 60 {
			mixed++
		}
		sl.ClockWord()
	}
	if mixed < clocks/2 {
		t.Errorf("control word mixed in only %d of %d clocks", mixed, clocks)
	}
}
