package mickey

// Packed is the conventional fast software MICKEY 2.0: each 100-bit
// register lives in 4 uint32 words and every clock performs the bit-level
// shift-and-mask work the paper's §4.3 identifies as the naive
// implementation's bottleneck. One Packed value is one cipher instance —
// the "one LFSR per thread" configuration of Fig. 7.
type Packed struct {
	r, s [4]uint32
}

// NewPacked returns a keyed instance equivalent to NewRef.
func NewPacked(key []byte, iv []byte, ivBits int) (*Packed, error) {
	if err := checkKeyIV(key, iv, ivBits); err != nil {
		return nil, err
	}
	m := &Packed{}
	for i := 0; i < ivBits; i++ {
		m.clockKG(true, uint32(ivBit(iv, i)))
	}
	for i := 0; i < 8*KeySize; i++ {
		m.clockKG(true, uint32(ivBit(key, i)))
	}
	for i := 0; i < regBits; i++ {
		m.clockKG(true, 0)
	}
	return m, nil
}

// bit reads bit i of a packed register.
func bit(w *[4]uint32, i int) uint32 {
	return (w[i>>5] >> uint(i&31)) & 1
}

// shl1 shifts a packed 100-bit register left by one (towards higher
// indices): the register move r_i -> r_{i+1}.
func shl1(w *[4]uint32) [4]uint32 {
	var o [4]uint32
	o[0] = w[0] << 1
	o[1] = w[1]<<1 | w[0]>>31
	o[2] = w[2]<<1 | w[1]>>31
	o[3] = (w[3]<<1 | w[2]>>31) & 0xF
	return o
}

// shr1 shifts right by one: s_{i+1} appears at position i.
func shr1(w *[4]uint32) [4]uint32 {
	var o [4]uint32
	o[0] = w[0]>>1 | w[1]<<31
	o[1] = w[1]>>1 | w[2]<<31
	o[2] = w[2]>>1 | w[3]<<31
	o[3] = w[3] >> 1
	return o
}

func (m *Packed) clockKG(mixing bool, inputBit uint32) {
	controlR := bit(&m.s, 34) ^ bit(&m.r, 67)
	controlS := bit(&m.s, 67) ^ bit(&m.r, 33)
	inputR := inputBit
	if mixing {
		inputR ^= bit(&m.s, 50)
	}

	// CLOCK_R
	fbR := bit(&m.r, 99) ^ inputR
	nr := shl1(&m.r)
	if fbR == 1 {
		for k := 0; k < 4; k++ {
			nr[k] ^= rMask[k]
		}
	}
	if controlR == 1 {
		for k := 0; k < 4; k++ {
			nr[k] ^= m.r[k]
		}
	}

	// CLOCK_S
	fbS := bit(&m.s, 99) ^ inputBit
	prev := shl1(&m.s) // s_{i-1} at position i; bit 99 = s_98, bit 0 = 0
	next := shr1(&m.s) // s_{i+1} at position i
	var t [4]uint32
	for k := 0; k < 4; k++ {
		t[k] = (m.s[k] ^ comp0[k]) & (next[k] ^ comp1[k])
	}
	// The COMP product only applies to bits 1..98.
	t[0] &= 0xFFFFFFFE
	t[3] &= 0x7
	ns := [4]uint32{prev[0] ^ t[0], prev[1] ^ t[1], prev[2] ^ t[2], prev[3] ^ t[3]}
	if fbS == 1 {
		fb := &sMask0
		if controlS == 1 {
			fb = &sMask1
		}
		for k := 0; k < 4; k++ {
			ns[k] ^= fb[k]
		}
	}

	m.r, m.s = nr, ns
}

// KeystreamBit emits the next keystream bit.
func (m *Packed) KeystreamBit() uint8 {
	z := uint8(bit(&m.r, 0) ^ bit(&m.s, 0))
	m.clockKG(false, 0)
	return z
}

// Keystream fills dst with keystream bytes, bits packed MSB-first.
func (m *Packed) Keystream(dst []byte) {
	for i := range dst {
		var b byte
		for j := 7; j >= 0; j-- {
			b |= m.KeystreamBit() << uint(j)
		}
		dst[i] = b
	}
}
