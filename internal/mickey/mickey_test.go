package mickey

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The packed mask tables and the spec tap list must describe the same
// register R.
func TestRMaskMatchesTapList(t *testing.T) {
	var want [4]uint32
	for _, tap := range rtaps {
		want[tap>>5] |= 1 << uint(tap&31)
	}
	if want != rMask {
		t.Fatalf("packed R mask %x does not reconstruct RTAPS %x", rMask, want)
	}
}

func TestMaskTablesWellFormed(t *testing.T) {
	// All masks describe 100-bit registers: no bits above 99.
	for name, m := range map[string][4]uint32{
		"rMask": rMask, "comp0": comp0, "comp1": comp1,
		"sMask0": sMask0, "sMask1": sMask1,
	} {
		if m[3]&^0xF != 0 {
			t.Errorf("%s has bits above position 99", name)
		}
	}
	// COMP tables are only defined for i = 1..98.
	if maskBit(&comp0, 0) != 0 || maskBit(&comp0, 99) != 0 {
		t.Error("comp0 has bits outside 1..98")
	}
	if maskBit(&comp1, 0) != 0 || maskBit(&comp1, 99) != 0 {
		t.Error("comp1 has bits outside 1..98")
	}
}

func testKey(seed int64) ([]byte, []byte) {
	rng := rand.New(rand.NewSource(seed))
	key := make([]byte, KeySize)
	iv := make([]byte, 10)
	rng.Read(key)
	rng.Read(iv)
	return key, iv
}

// The packed implementation must agree with the specification reference
// for arbitrary keys and IV lengths.
func TestPackedMatchesRef(t *testing.T) {
	f := func(seed int64, ivLen8 uint8) bool {
		key, iv := testKey(seed)
		ivBits := int(ivLen8) % (MaxIVBits + 1)
		ref, err := NewRef(key, iv, ivBits)
		if err != nil {
			return false
		}
		pk, err := NewPacked(key, iv, ivBits)
		if err != nil {
			return false
		}
		a := make([]byte, 32)
		b := make([]byte, 32)
		ref.Keystream(a)
		pk.Keystream(b)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The bitsliced engine must agree with 64 independent reference instances
// holding 64 distinct keys and IVs.
func TestSlicedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const lanes = 64
	keys := make([][]byte, lanes)
	ivs := make([][]byte, lanes)
	for l := 0; l < lanes; l++ {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	sl, err := NewSliced(keys, ivs, 80)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, lanes)
	for l := range bufs {
		bufs[l] = make([]byte, 40)
	}
	if err := sl.Keystream(bufs); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		ref, err := NewRef(keys[l], ivs[l], 80)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 40)
		ref.Keystream(want)
		if !bytes.Equal(bufs[l], want) {
			t.Fatalf("lane %d keystream mismatch\n got %x\nwant %x", l, bufs[l], want)
		}
	}
}

func TestSlicedPartialLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const lanes = 7
	keys := make([][]byte, lanes)
	ivs := make([][]byte, lanes)
	for l := 0; l < lanes; l++ {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 4)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	sl, err := NewSliced(keys, ivs, 32)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, lanes)
	for l := range bufs {
		bufs[l] = make([]byte, 16)
	}
	if err := sl.Keystream(bufs); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		ref, _ := NewRef(keys[l], ivs[l], 32)
		want := make([]byte, 16)
		ref.Keystream(want)
		if !bytes.Equal(bufs[l], want) {
			t.Fatalf("lane %d mismatch", l)
		}
	}
}

// Distinct IVs under one key must give distinct keystreams (the spec's
// key/IV separation property, and the engine's lane-decorrelation basis).
func TestDistinctIVsDistinctStreams(t *testing.T) {
	key, _ := testKey(77)
	a, err := NewRef(key, []byte{0, 0, 0, 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRef(key, []byte{0, 0, 0, 2}, 32)
	if err != nil {
		t.Fatal(err)
	}
	ka := make([]byte, 64)
	kb := make([]byte, 64)
	a.Keystream(ka)
	b.Keystream(kb)
	if bytes.Equal(ka, kb) {
		t.Fatal("different IVs produced identical keystreams")
	}
}

// Determinism: the same key/IV must reproduce the same stream (paper §5.4
// relies on this for multi-GPU reconstruction).
func TestDeterministicReproduction(t *testing.T) {
	key, iv := testKey(123)
	a, _ := NewRef(key, iv, 80)
	b, _ := NewRef(key, iv, 80)
	ka := make([]byte, 128)
	kb := make([]byte, 128)
	a.Keystream(ka)
	b.Keystream(kb)
	if !bytes.Equal(ka, kb) {
		t.Fatal("same key/IV did not reproduce the stream")
	}
}

func TestZeroLengthIV(t *testing.T) {
	key, _ := testKey(9)
	ref, err := NewRef(key, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := NewPacked(key, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]byte, 16)
	b := make([]byte, 16)
	ref.Keystream(a)
	pk.Keystream(b)
	if !bytes.Equal(a, b) {
		t.Fatal("zero-IV keystreams differ")
	}
}

func TestConstructorValidation(t *testing.T) {
	key, iv := testKey(1)
	if _, err := NewRef(key[:9], iv, 0); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewRef(key, iv, 81); err == nil {
		t.Error("iv > 80 bits accepted")
	}
	if _, err := NewRef(key, iv[:1], 32); err == nil {
		t.Error("iv byte slice shorter than ivBits accepted")
	}
	if _, err := NewPacked(key[:1], iv, 0); err == nil {
		t.Error("packed: short key accepted")
	}
	if _, err := NewSliced(nil, nil, 0); err == nil {
		t.Error("sliced: zero lanes accepted")
	}
	if _, err := NewSliced([][]byte{key}, [][]byte{iv, iv}, 0); err == nil {
		t.Error("sliced: key/iv count mismatch accepted")
	}
	keys := make([][]byte, 65)
	ivs := make([][]byte, 65)
	for i := range keys {
		keys[i], ivs[i] = key, iv
	}
	if _, err := NewSliced(keys, ivs, 0); err == nil {
		t.Error("sliced: 65 lanes accepted")
	}
}

func TestKeystreamBufferValidation(t *testing.T) {
	key, iv := testKey(2)
	sl, err := NewSliced([][]byte{key, key}, [][]byte{iv, iv}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Keystream(make([][]byte, 1)); err == nil {
		t.Error("wrong buffer count accepted")
	}
	if err := sl.Keystream([][]byte{make([]byte, 8), make([]byte, 16)}); err == nil {
		t.Error("ragged buffers accepted")
	}
	if err := sl.Keystream([][]byte{make([]byte, 7), make([]byte, 7)}); err == nil {
		t.Error("non multiple-of-8 length accepted")
	}
}

// The keystream must be balanced to first order — a cheap smoke test that
// the feedback tables are not degenerate.
func TestKeystreamBalance(t *testing.T) {
	key, iv := testKey(1001)
	ref, _ := NewRef(key, iv, 80)
	const n = 1 << 15
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(ref.KeystreamBit())
	}
	// Binomial(n, 1/2): allow ±5 sigma.
	mean, sigma := float64(n)/2, 90.5
	if d := float64(ones) - mean; d > 5*sigma || d < -5*sigma {
		t.Fatalf("keystream bias: %d ones out of %d", ones, n)
	}
}

func TestKeystreamWordsMatchesClockWord(t *testing.T) {
	key, iv := testKey(3)
	keys := [][]byte{key}
	ivs := [][]byte{iv}
	a, _ := NewSliced(keys, ivs, 80)
	b, _ := NewSliced(keys, ivs, 80)
	dst := make([]uint64, 50)
	a.KeystreamWords(dst)
	for i, w := range dst {
		if got := b.ClockWord(); got != w {
			t.Fatalf("word %d: %x vs %x", i, w, got)
		}
	}
}

func BenchmarkRefKeystream(b *testing.B) {
	key, iv := testKey(10)
	m, _ := NewRef(key, iv, 80)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Keystream(buf)
	}
}

func BenchmarkPackedKeystream(b *testing.B) {
	key, iv := testKey(10)
	m, _ := NewPacked(key, iv, 80)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Keystream(buf)
	}
}

func BenchmarkSlicedKeystream64Lanes(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	keys := make([][]byte, 64)
	ivs := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	m, _ := NewSliced(keys, ivs, 80)
	dst := make([]uint64, 512) // 512*64 bits = 4096 bytes
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.KeystreamWords(dst)
	}
}

func BenchmarkSlicedKeystreamPerLane(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	keys := make([][]byte, 64)
	ivs := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	m, _ := NewSliced(keys, ivs, 80)
	bufs := make([][]byte, 64)
	for l := range bufs {
		bufs[l] = make([]byte, 64)
	}
	b.SetBytes(64 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Keystream(bufs)
	}
}
