package mickey

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitslice"
)

// Differential lockdown for the wide-lane datapath: at every supported
// plane width, every lane of the bitsliced engine must reproduce its
// scalar reference keystream byte-for-byte, for multiple 64-clock blocks,
// under distinct per-lane key/IV material — and again after a Reseed.
func TestDifferentialAllWidths(t *testing.T) {
	t.Run("w64", func(t *testing.T) { diffWidth[bitslice.V64](t, 64) })
	t.Run("w256", func(t *testing.T) { diffWidth[bitslice.V256](t, 256) })
	t.Run("w512", func(t *testing.T) { diffWidth[bitslice.V512](t, 512) })
	// Partial lane counts must behave identically (lanes that straddle a
	// word boundary are the easy thing to get wrong).
	t.Run("w256partial", func(t *testing.T) { diffWidth[bitslice.V256](t, 70) })
	t.Run("w512partial", func(t *testing.T) { diffWidth[bitslice.V512](t, 450) })
}

func diffMaterial(rng *rand.Rand, lanes int) (keys, ivs [][]byte) {
	keys = make([][]byte, lanes)
	ivs = make([][]byte, lanes)
	for l := 0; l < lanes; l++ {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	return keys, ivs
}

func diffWidth[V bitslice.Vec](t *testing.T, lanes int) {
	rng := rand.New(rand.NewSource(int64(4000 + lanes)))
	keys, ivs := diffMaterial(rng, lanes)
	sl, err := NewSlicedVec[V](keys, ivs, MaxIVBits)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstRefs := func(pass string, keys, ivs [][]byte) {
		const n = 24 // three 64-clock blocks per lane
		bufs := make([][]byte, lanes)
		for l := range bufs {
			bufs[l] = make([]byte, n)
		}
		if err := sl.Keystream(bufs); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			ref, err := NewRef(keys[l], ivs[l], MaxIVBits)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, n)
			ref.Keystream(want)
			if !bytes.Equal(bufs[l], want) {
				t.Fatalf("%s: lane %d/%d diverges from scalar reference\n got %x\nwant %x",
					pass, l, lanes, bufs[l], want)
			}
		}
	}
	checkAgainstRefs("initial", keys, ivs)
	keys2, ivs2 := diffMaterial(rng, lanes)
	if err := sl.Reseed(keys2, ivs2, MaxIVBits); err != nil {
		t.Fatal(err)
	}
	checkAgainstRefs("reseed", keys2, ivs2)
}
