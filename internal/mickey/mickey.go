// Package mickey implements the MICKEY 2.0 stream cipher (Babbage & Dodd,
// eSTREAM Profile 2) in three forms:
//
//   - Ref: a specification-clarity implementation (one byte per state bit)
//     that transcribes CLOCK_R / CLOCK_S / CLOCK_KG directly.
//   - Packed: the conventional fast software form, 100-bit registers packed
//     into 4 uint32 words with shift-and-mask clocking — the paper's
//     "naive" row-major implementation (one instance per thread).
//   - Sliced: the bitsliced 64-lane engine of paper §4.4/Fig. 9 — 200
//     word-planes, one per state bit, with the irregular clocking folded
//     into branch-free per-lane masks.
//
// Cipher constants: the R tap set RTAPS is transcribed from the
// specification and cross-checked against the packed masks of the eSTREAM
// reference implementation (they reconstruct each other exactly; see
// tables_test.go). The S-register COMP0/COMP1/FB0/FB1 tables are
// transcribed as the packed reference masks. Official known-answer vectors
// are not available offline; conformance is established structurally
// (reference ↔ packed ↔ bitsliced cross-validation) as recorded in
// DESIGN.md §2.
package mickey

// KeySize is the MICKEY 2.0 key length in bytes (80 bits).
const KeySize = 10

// MaxIVBits is the maximum initialization-vector length in bits.
const MaxIVBits = 80

// regBits is the length of each of the R and S registers.
const regBits = 100

// rtaps lists the feedback tap positions of register R (spec §3.1).
var rtaps = [...]int{
	0, 1, 3, 4, 5, 6, 9, 12, 13, 16, 19, 20, 21, 22, 25, 28,
	37, 38, 41, 42, 45, 46, 50, 52, 54, 56, 58, 60, 61, 63,
	64, 65, 66, 67, 71, 72, 79, 80, 81, 82, 87, 88, 89, 90,
	91, 92, 94, 95, 96, 97,
}

// Packed little-endian masks (bit i of the register lives in word i/32,
// bit i%32), as used by the eSTREAM reference code.
var (
	rMask  = [4]uint32{0x1279327B, 0xB5546660, 0xDF87818F, 0x00000003}
	comp0  = [4]uint32{0x6AA97A30, 0x7942A809, 0x057EBFEA, 0x00000006}
	comp1  = [4]uint32{0xDD629E9A, 0xE3A21D63, 0x91C23DD7, 0x00000001}
	sMask0 = [4]uint32{0x9FFA7FAF, 0xAF4A9381, 0x9CEC5802, 0x00000001}
	sMask1 = [4]uint32{0x4C8CB877, 0x4911B063, 0x40FBC52B, 0x00000008}
)

// maskBit reads bit i of a packed 100-bit mask.
func maskBit(m *[4]uint32, i int) uint8 {
	return uint8((m[i>>5] >> uint(i&31)) & 1)
}

// Ref is the specification-transparency implementation: every state bit is
// its own byte and the clocking routines follow the spec text line by
// line. It is the oracle for the two fast implementations.
type Ref struct {
	R, S [regBits]uint8
}

// NewRef returns a keyed MICKEY 2.0 instance. key must be KeySize bytes;
// iv may be 0 to MaxIVBits bits long (ivBits counts bits; the bits are
// taken MSB-first from ivBytes).
func NewRef(key []byte, iv []byte, ivBits int) (*Ref, error) {
	if err := checkKeyIV(key, iv, ivBits); err != nil {
		return nil, err
	}
	m := &Ref{}
	for i := 0; i < ivBits; i++ {
		m.ClockKG(true, ivBit(iv, i))
	}
	for i := 0; i < 8*KeySize; i++ {
		m.ClockKG(true, ivBit(key, i))
	}
	for i := 0; i < regBits; i++ {
		m.ClockKG(true, 0)
	}
	return m, nil
}

// ivBit extracts bit i of a byte string, MSB-first within each byte (the
// eSTREAM loading convention: bit 0 is the most significant bit of byte 0).
func ivBit(p []byte, i int) uint8 {
	return (p[i>>3] >> uint(7-i&7)) & 1
}

// clockR implements CLOCK_R from the specification.
func (m *Ref) clockR(inputBitR, controlBitR uint8) {
	feedback := m.R[99] ^ inputBitR
	var next [regBits]uint8
	for i := 1; i < regBits; i++ {
		next[i] = m.R[i-1]
	}
	next[0] = 0
	for _, t := range rtaps {
		next[t] ^= feedback
	}
	if controlBitR == 1 {
		for i := 0; i < regBits; i++ {
			next[i] ^= m.R[i]
		}
	}
	m.R = next
}

// clockS implements CLOCK_S from the specification.
func (m *Ref) clockS(inputBitS, controlBitS uint8) {
	feedback := m.S[99] ^ inputBitS
	var hat [regBits]uint8
	for i := 1; i < 99; i++ {
		hat[i] = m.S[i-1] ^ ((m.S[i] ^ maskBit(&comp0, i)) & (m.S[i+1] ^ maskBit(&comp1, i)))
	}
	hat[0] = 0
	hat[99] = m.S[98]
	fbMask := &sMask0
	if controlBitS == 1 {
		fbMask = &sMask1
	}
	for i := 0; i < regBits; i++ {
		m.S[i] = hat[i] ^ (maskBit(fbMask, i) & feedback)
	}
}

// ClockKG implements CLOCK_KG: one step of the whole keystream generator.
func (m *Ref) ClockKG(mixing bool, inputBit uint8) {
	controlBitR := m.S[34] ^ m.R[67]
	controlBitS := m.S[67] ^ m.R[33]
	inputBitR := inputBit
	if mixing {
		inputBitR ^= m.S[50]
	}
	inputBitS := inputBit
	m.clockR(inputBitR, controlBitR)
	m.clockS(inputBitS, controlBitS)
}

// KeystreamBit emits the next keystream bit (z = r0 ^ s0, generated before
// the register clock, per the spec).
func (m *Ref) KeystreamBit() uint8 {
	z := m.R[0] ^ m.S[0]
	m.ClockKG(false, 0)
	return z
}

// Keystream fills dst with keystream bytes, bits packed MSB-first.
func (m *Ref) Keystream(dst []byte) {
	for i := range dst {
		var b byte
		for j := 7; j >= 0; j-- {
			b |= m.KeystreamBit() << uint(j)
		}
		dst[i] = b
	}
}

func checkKeyIV(key, iv []byte, ivBits int) error {
	if len(key) != KeySize {
		return errKeySize
	}
	if ivBits < 0 || ivBits > MaxIVBits {
		return errIVSize
	}
	if len(iv)*8 < ivBits {
		return errIVShort
	}
	return nil
}

type mickeyError string

func (e mickeyError) Error() string { return string(e) }

const (
	errKeySize mickeyError = "mickey: key must be exactly 10 bytes"
	errIVSize  mickeyError = "mickey: iv length must be 0..80 bits"
	errIVShort mickeyError = "mickey: iv byte slice shorter than ivBits"
)
