package mickey

import (
	"math/rand"
	"testing"
)

// The compiled circuit and the hand-written bitsliced engine must
// implement the identical CLOCK_KG transition.
func TestCircuitMatchesHandEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	keys := make([][]byte, 64)
	ivs := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}
	sl, err := NewSliced(keys, ivs, 80)
	if err != nil {
		t.Fatal(err)
	}
	prog := BuildClockCircuit(false)
	if prog.Inputs() != 201 || prog.Outputs() != 201 {
		t.Fatalf("circuit shape %d/%d", prog.Inputs(), prog.Outputs())
	}

	in := make([]uint64, 201)
	out := make([]uint64, 201)
	scratch := make([]uint64, prog.ScratchLen())
	for step := 0; step < 50; step++ {
		for i := 0; i < 100; i++ {
			in[i] = sl.r[i][0]
			in[100+i] = sl.s[i][0]
		}
		in[200] = 0 // keystream mode input
		prog.Run(in, out, scratch)

		z := sl.ClockWord()
		if out[200] != z {
			t.Fatalf("step %d: circuit z %x, hand z %x", step, out[200], z)
		}
		for i := 0; i < 100; i++ {
			if out[i] != sl.r[i][0] {
				t.Fatalf("step %d: r[%d] differs", step, i)
			}
			if out[100+i] != sl.s[i][0] {
				t.Fatalf("step %d: s[%d] differs", step, i)
			}
		}
	}
}

// The mixing-mode circuit must match the reference initialization clock.
func TestMixingCircuitMatchesRef(t *testing.T) {
	prog := BuildClockCircuit(true)
	ref := &Ref{}
	rng := rand.New(rand.NewSource(77))
	for i := range ref.R {
		ref.R[i] = uint8(rng.Intn(2))
		ref.S[i] = uint8(rng.Intn(2))
	}
	// Mirror the reference state into lane 0 of the circuit inputs.
	in := make([]uint64, 201)
	out := make([]uint64, 201)
	for step := 0; step < 30; step++ {
		for i := 0; i < 100; i++ {
			in[i] = uint64(ref.R[i])
			in[100+i] = uint64(ref.S[i])
		}
		inputBit := uint8(rng.Intn(2))
		in[200] = uint64(inputBit)
		prog.Run(in, out, nil)
		ref.ClockKG(true, inputBit)
		for i := 0; i < 100; i++ {
			if uint8(out[i]&1) != ref.R[i] || uint8(out[100+i]&1) != ref.S[i] {
				t.Fatalf("step %d: mixing transition differs at bit %d", step, i)
			}
		}
	}
}

func TestCircuitGateBudget(t *testing.T) {
	// The paper's §4.4 emphasizes that the generated MICKEY step is pure
	// bit logic; assert the circuit stays in a sane gate envelope so
	// regressions in the generator are caught.
	prog := BuildClockCircuit(false)
	if prog.ScratchLen() > 1500 {
		t.Errorf("clock circuit uses %d registers — generator regression?", prog.ScratchLen())
	}
}

// Ablation: the hand-written engine vs the compiled circuit (what the
// paper's manual optimization buys over raw generated code).
func BenchmarkCircuitVsHand(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	keys := make([][]byte, 64)
	ivs := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, KeySize)
		ivs[l] = make([]byte, 10)
		rng.Read(keys[l])
		rng.Read(ivs[l])
	}

	b.Run("hand", func(b *testing.B) {
		sl, _ := NewSliced(keys, ivs, 80)
		b.SetBytes(8) // 64 bits per clock
		for i := 0; i < b.N; i++ {
			sl.ClockWord()
		}
	})
	b.Run("circuit", func(b *testing.B) {
		sl, _ := NewSliced(keys, ivs, 80)
		prog := BuildClockCircuit(false)
		in := make([]uint64, 201)
		out := make([]uint64, 201)
		scratch := make([]uint64, prog.ScratchLen())
		for i := 0; i < 100; i++ {
			in[i] = sl.r[i][0]
			in[100+i] = sl.s[i][0]
		}
		b.SetBytes(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prog.Run(in, out, scratch)
			copy(in[0:100], out[0:100])
			copy(in[100:200], out[100:200])
		}
	})
}
