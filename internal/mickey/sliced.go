package mickey

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// Sliced is the bitsliced MICKEY 2.0 engine of paper §4.4 (Fig. 9): the
// two 100-bit registers become 200 uint64 planes (plane i, bit L = state
// bit i of lane L), so one ClockWord advances 64 independent cipher
// instances and emits 64 keystream bits.
//
// Everything data-dependent in the spec becomes branch-free here:
//
//   - the per-lane control bits (irregular clocking) turn into full-width
//     AND masks,
//   - the COMP0/COMP1/FB0/FB1 constants broadcast to all-zero/all-one
//     words at construction time,
//   - the register shift is realized by ping-pong buffer swapping — the
//     paper's "register reference swapping" — rather than bit shifts.
type Sliced struct {
	r, s   []uint64 // current planes, length 100 each
	nr, ns []uint64 // scratch planes (swapped in after every clock)
	lanes  int

	// broadcast constants, one word per state bit; the per-index selector
	// words turn every data-dependent choice in the spec into straight-line
	// AND/XOR so the clock loop is branch-free.
	c0, c1 [regBits]uint64
	tapB   [regBits]uint64 // ^0 where i ∈ RTAPS
	// S feedback selectors by (FB0, FB1): exactly one of the three is ^0
	// when any feedback applies at index i.
	selZero [regBits]uint64 // FB0=1, FB1=0: term = fbS & ^ctrlS
	selOne  [regBits]uint64 // FB0=0, FB1=1: term = fbS & ctrlS
	selBoth [regBits]uint64 // FB0=1, FB1=1: term = fbS
}

// NewSliced builds a 64-lane (or fewer) engine. keys[L] is lane L's
// 10-byte key; ivs[L] its IV (ivBits bits, MSB-first). All lanes are
// initialized in lock-step, exactly mirroring the reference schedule.
func NewSliced(keys [][]byte, ivs [][]byte, ivBits int) (*Sliced, error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.W {
		return nil, fmt.Errorf("mickey: lane count %d out of range [1,64]", lanes)
	}
	if len(ivs) != lanes {
		return nil, fmt.Errorf("mickey: %d keys but %d ivs", lanes, len(ivs))
	}
	for l := 0; l < lanes; l++ {
		if err := checkKeyIV(keys[l], ivs[l], ivBits); err != nil {
			return nil, fmt.Errorf("lane %d: %w", l, err)
		}
	}

	m := &Sliced{
		r: make([]uint64, regBits), s: make([]uint64, regBits),
		nr: make([]uint64, regBits), ns: make([]uint64, regBits),
		lanes: lanes,
	}
	for i := 0; i < regBits; i++ {
		m.c0[i] = bitslice.Broadcast(maskBit(&comp0, i))
		m.c1[i] = bitslice.Broadcast(maskBit(&comp1, i))
		f0, f1 := maskBit(&sMask0, i), maskBit(&sMask1, i)
		m.selZero[i] = bitslice.Broadcast(f0 &^ f1)
		m.selOne[i] = bitslice.Broadcast(f1 &^ f0)
		m.selBoth[i] = bitslice.Broadcast(f0 & f1)
	}
	for _, t := range rtaps {
		m.tapB[t] = ^uint64(0)
	}

	// Load IV, key, preclock — the same schedule as the reference, with
	// the input bit gathered across lanes into one word per step.
	gather := func(src [][]byte, i int) uint64 {
		var w uint64
		for l := 0; l < lanes; l++ {
			w |= uint64(ivBit(src[l], i)) << uint(l)
		}
		return w
	}
	for i := 0; i < ivBits; i++ {
		m.clockKG(true, gather(ivs, i))
	}
	for i := 0; i < 8*KeySize; i++ {
		m.clockKG(true, gather(keys, i))
	}
	for i := 0; i < regBits; i++ {
		m.clockKG(true, 0)
	}
	return m, nil
}

// clockKG advances all lanes one generator step. input carries one input
// bit per lane.
func (m *Sliced) clockKG(mixing bool, input uint64) {
	r, s, nr, ns := m.r, m.s, m.nr, m.ns

	ctrlR := s[34] ^ r[67]
	ctrlS := s[67] ^ r[33]
	inputR := input
	if mixing {
		inputR ^= s[50]
	}

	// CLOCK_R: nr[i] = r[i-1] ^ (i∈RTAPS ? fbR : 0) ^ (r[i] & ctrlR)
	fbR := r[99] ^ inputR
	nr[0] = (fbR & m.tapB[0]) ^ (r[0] & ctrlR)
	for i := 1; i < regBits; i++ {
		nr[i] = r[i-1] ^ (r[i] & ctrlR) ^ (fbR & m.tapB[i])
	}

	// CLOCK_S
	fbS := s[99] ^ input
	fb0 := fbS &^ ctrlS // applied where FB0=1, FB1=0
	fb1 := fbS & ctrlS  // applied where FB0=0, FB1=1
	ns[0] = fb0&m.selZero[0] ^ fb1&m.selOne[0] ^ fbS&m.selBoth[0]
	for i := 1; i < 99; i++ {
		ns[i] = s[i-1] ^ ((s[i] ^ m.c0[i]) & (s[i+1] ^ m.c1[i])) ^
			fb0&m.selZero[i] ^ fb1&m.selOne[i] ^ fbS&m.selBoth[i]
	}
	ns[99] = s[98] ^ fb0&m.selZero[99] ^ fb1&m.selOne[99] ^ fbS&m.selBoth[99]

	m.r, m.nr = nr, r
	m.s, m.ns = ns, s
}

// ClockWord emits one keystream word (bit L = lane L's next keystream
// bit) and advances the generator.
func (m *Sliced) ClockWord() uint64 {
	z := m.r[0] ^ m.s[0]
	m.clockKG(false, 0)
	return z
}

// Lanes returns the number of active lanes.
func (m *Sliced) Lanes() int { return m.lanes }

// KeystreamBlock runs 64 clocks and transposes the result so that out[L],
// written little-endian, is 8 keystream bytes of lane L with the cipher's
// MSB-first bit packing (byte-compatible with Ref.Keystream /
// Packed.Keystream).
func (m *Sliced) KeystreamBlock(out *[64]uint64) {
	// Placing clock t at index (t&^7)|(7-t&7) makes the post-transpose
	// little-endian byte image MSB-first per byte.
	for t := 0; t < 64; t++ {
		out[(t&^7)|(7-t&7)] = m.ClockWord()
	}
	bitslice.Transpose64(out)
}

// Keystream fills one equal-length buffer per lane with that lane's
// keystream bytes. len(bufs) must equal Lanes() and every buffer length
// must be the same multiple of 8.
func (m *Sliced) Keystream(bufs [][]byte) error {
	if len(bufs) != m.lanes {
		return fmt.Errorf("mickey: %d buffers for %d lanes", len(bufs), m.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("mickey: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("mickey: buffer length must be a multiple of 8")
	}
	var blk [64]uint64
	for off := 0; off < n; off += 8 {
		m.KeystreamBlock(&blk)
		for l := 0; l < m.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], blk[l])
		}
	}
	return nil
}

// KeystreamWords fills dst with raw device-order keystream words (one
// ClockWord per element, no transposition) — the cheapest bulk path when
// the consumer only needs uniform random bits.
func (m *Sliced) KeystreamWords(dst []uint64) {
	for i := range dst {
		dst[i] = m.ClockWord()
	}
}
