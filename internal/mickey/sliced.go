package mickey

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// SlicedVec is the bitsliced MICKEY 2.0 engine of paper §4.4 (Fig. 9),
// generalized over the plane width V: the two 100-bit registers become 200
// V-planes (plane i, lane L = state bit i of lane L), so one ClockVec
// advances 64·K independent cipher instances and emits as many keystream
// bits. V64 planes give the native 64-lane engine; V256/V512 widen the
// datapath to 256/512 lanes — the CPU analogue of widening a GPU warp.
//
// Everything data-dependent in the spec becomes branch-free here:
//
//   - the per-lane control bits (irregular clocking) turn into full-width
//     AND masks,
//   - the COMP0/COMP1/FB0/FB1 constants broadcast to all-zero/all-one
//     planes at construction time,
//   - the register shift is realized by ping-pong buffer swapping — the
//     paper's "register reference swapping" — rather than bit shifts.
//
// Every lane-wise operation applies independently to each of V's K words,
// so the wide engine is K lock-stepped 64-lane engines sharing one control
// flow — one instruction stream, K× the lanes.
type SlicedVec[V bitslice.Vec] struct {
	// Fixed-size register arrays (not slices): every clockKG index is
	// provably in range, so the hot loop runs without bounds checks.
	r, s   *[regBits]V // current planes
	nr, ns *[regBits]V // scratch planes (swapped in after every clock)
	lanes  int

	// broadcast constants, one plane per state bit; the per-index selector
	// planes turn every data-dependent choice in the spec into straight-line
	// AND/XOR so the clock loop is branch-free.
	c0, c1 [regBits]V
	tapB   [regBits]V // all-ones where i ∈ RTAPS
	// S feedback selectors, folded to two planes per index so the clock
	// loop computes the feedback term as fbS & (selX ^ selD & ctrlS):
	// selX is the (FB0,FB1)-selector mask when the control bit is 0 and
	// selX^selD the mask when it is 1.
	selX [regBits]V // FB0=1 (applies at ctrlS=0), plus FB1=FB0=1 (always)
	selD [regBits]V // flips the mask where exactly one of FB0/FB1 is set
}

// Sliced is the native 64-lane engine (the uint64 datapath).
type Sliced = SlicedVec[bitslice.V64]

// NewSliced builds a 64-lane (or fewer) engine. keys[L] is lane L's
// 10-byte key; ivs[L] its IV (ivBits bits, MSB-first). All lanes are
// initialized in lock-step, exactly mirroring the reference schedule.
func NewSliced(keys [][]byte, ivs [][]byte, ivBits int) (*Sliced, error) {
	return NewSlicedVec[bitslice.V64](keys, ivs, ivBits)
}

// NewSlicedVec builds an engine of up to bitslice.VecLanes[V]() lanes.
func NewSlicedVec[V bitslice.Vec](keys [][]byte, ivs [][]byte, ivBits int) (*SlicedVec[V], error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.VecLanes[V]() {
		return nil, fmt.Errorf("mickey: lane count %d out of range [1,%d]", lanes, bitslice.VecLanes[V]())
	}
	m := &SlicedVec[V]{
		r: new([regBits]V), s: new([regBits]V),
		nr: new([regBits]V), ns: new([regBits]V),
		lanes: lanes,
	}
	for i := 0; i < regBits; i++ {
		m.c0[i] = bitslice.BroadcastVec[V](maskBit(&comp0, i))
		m.c1[i] = bitslice.BroadcastVec[V](maskBit(&comp1, i))
		f0, f1 := maskBit(&sMask0, i), maskBit(&sMask1, i)
		// Masks at ctrlS=0 (FB0 or both set) and ctrlS=1 (FB1 or both);
		// selD is their XOR, so mask(ctrlS) = selX ^ selD&ctrlS.
		m.selX[i] = bitslice.BroadcastVec[V](f0)
		m.selD[i] = bitslice.BroadcastVec[V](f0 ^ f1)
	}
	allOnes := bitslice.BroadcastVec[V](1)
	for _, t := range rtaps {
		m.tapB[t] = allOnes
	}
	if err := m.Reseed(keys, ivs, ivBits); err != nil {
		return nil, err
	}
	return m, nil
}

// Reseed re-runs the load schedule with fresh per-lane key/IV material,
// reusing the engine's buffers. The lane count must match the one the
// engine was built with.
func (m *SlicedVec[V]) Reseed(keys [][]byte, ivs [][]byte, ivBits int) error {
	if len(keys) != m.lanes {
		return fmt.Errorf("mickey: %d keys for %d lanes", len(keys), m.lanes)
	}
	if len(ivs) != m.lanes {
		return fmt.Errorf("mickey: %d keys but %d ivs", len(keys), len(ivs))
	}
	for l := 0; l < m.lanes; l++ {
		if err := checkKeyIV(keys[l], ivs[l], ivBits); err != nil {
			return fmt.Errorf("lane %d: %w", l, err)
		}
	}
	var zero V
	for i := 0; i < regBits; i++ {
		m.r[i] = zero
		m.s[i] = zero
	}

	// Load IV, key, preclock — the same schedule as the reference, with
	// the input bit gathered across lanes into one plane per step.
	gather := func(src [][]byte, i int) V {
		var w V
		for l := 0; l < m.lanes; l++ {
			w[l>>6] |= uint64(ivBit(src[l], i)) << uint(l&63)
		}
		return w
	}
	var zeroIn V
	for i := 0; i < ivBits; i++ {
		m.clockKG(true, gather(ivs, i))
	}
	for i := 0; i < 8*KeySize; i++ {
		m.clockKG(true, gather(keys, i))
	}
	for i := 0; i < regBits; i++ {
		m.clockKG(true, zeroIn)
	}
	return nil
}

// clockKG advances all lanes one generator step. input carries one input
// bit per lane.
func (m *SlicedVec[V]) clockKG(mixing bool, input V) {
	r, s, nr, ns := m.r, m.s, m.nr, m.ns

	var ctrlR, ctrlS, fbR, fbS V
	for k := 0; k < len(input); k++ {
		ctrlR[k] = s[34][k] ^ r[67][k]
		ctrlS[k] = s[67][k] ^ r[33][k]
		inR := input[k]
		if mixing {
			inR ^= s[50][k]
		}
		// CLOCK_R feedback: fbR = r[99] ^ inputR; CLOCK_S: fbS = s[99] ^ input.
		fbR[k] = r[99][k] ^ inR
		fbS[k] = s[99][k] ^ input[k]
	}

	// CLOCK_R: nr[i] = r[i-1] ^ (i∈RTAPS ? fbR : 0) ^ (r[i] & ctrlR)
	// S feedback term at index i: fbS & (selX[i] ^ selD[i] & ctrlS).
	for k := 0; k < len(input); k++ {
		nr[0][k] = (fbR[k] & m.tapB[0][k]) ^ (r[0][k] & ctrlR[k])
		ns[0][k] = fbS[k] & (m.selX[0][k] ^ m.selD[0][k]&ctrlS[k])
		ns[99][k] = s[98][k] ^ fbS[k]&(m.selX[99][k]^m.selD[99][k]&ctrlS[k])
	}
	for i := 1; i < regBits; i++ {
		for k := 0; k < len(input); k++ {
			nr[i][k] = r[i-1][k] ^ (r[i][k] & ctrlR[k]) ^ (fbR[k] & m.tapB[i][k])
		}
	}

	// CLOCK_S
	for i := 1; i < 99; i++ {
		for k := 0; k < len(input); k++ {
			ns[i][k] = s[i-1][k] ^ ((s[i][k] ^ m.c0[i][k]) & (s[i+1][k] ^ m.c1[i][k])) ^
				fbS[k]&(m.selX[i][k]^m.selD[i][k]&ctrlS[k])
		}
	}

	m.r, m.nr = nr, r
	m.s, m.ns = ns, s
}

// ClockVec emits one keystream plane (lane L = lane L's next keystream
// bit) and advances the generator.
func (m *SlicedVec[V]) ClockVec() V {
	var z, zero V
	for k := 0; k < len(z); k++ {
		z[k] = m.r[0][k] ^ m.s[0][k]
	}
	m.clockKG(false, zero)
	return z
}

// ClockWord emits the keystream word of lanes 0..63 (bit L = lane L's
// next keystream bit) and advances all lanes. For the 64-lane engine this
// is the whole keystream plane.
func (m *SlicedVec[V]) ClockWord() uint64 {
	z := m.ClockVec()
	return z[0]
}

// Lanes returns the number of active lanes.
func (m *SlicedVec[V]) Lanes() int { return m.lanes }

// KeystreamBlockVec runs 64 clocks and transposes the result so that
// out[j][k], written little-endian, is 8 keystream bytes of lane 64·k+j
// with the cipher's MSB-first bit packing (byte-compatible with
// Ref.Keystream / Packed.Keystream).
func (m *SlicedVec[V]) KeystreamBlockVec(out *[64]V) {
	// Placing clock t at index (t&^7)|(7-t&7) makes the post-transpose
	// little-endian byte image MSB-first per byte.
	for t := 0; t < 64; t++ {
		out[(t&^7)|(7-t&7)] = m.ClockVec()
	}
	bitslice.TransposeVec(out)
}

// KeystreamBlock is KeystreamBlockVec restricted to lanes 0..63: out[L],
// written little-endian, is 8 keystream bytes of lane L.
func (m *SlicedVec[V]) KeystreamBlock(out *[64]uint64) {
	var blk [64]V
	m.KeystreamBlockVec(&blk)
	for i := range out {
		out[i] = blk[i][0]
	}
}

// Keystream fills one equal-length buffer per lane with that lane's
// keystream bytes. len(bufs) must equal Lanes() and every buffer length
// must be the same multiple of 8.
func (m *SlicedVec[V]) Keystream(bufs [][]byte) error {
	if len(bufs) != m.lanes {
		return fmt.Errorf("mickey: %d buffers for %d lanes", len(bufs), m.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("mickey: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("mickey: buffer length must be a multiple of 8")
	}
	var blk [64]V
	for off := 0; off < n; off += 8 {
		m.KeystreamBlockVec(&blk)
		for l := 0; l < m.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], blk[l&63][l>>6])
		}
	}
	return nil
}

// KeystreamWords fills dst with raw device-order keystream words of lanes
// 0..63 (one ClockVec per element, no transposition) — the cheapest bulk
// path when the consumer only needs uniform random bits.
func (m *SlicedVec[V]) KeystreamWords(dst []uint64) {
	for i := range dst {
		dst[i] = m.ClockWord()
	}
}
