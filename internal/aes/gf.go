// Package aes implements AES-128/192/256 (FIPS-197) from scratch: a
// conventional scalar implementation (the paper's row-major baseline) and
// a bitsliced 64-lane AES-128-CTR engine (paper §2.3.2/Fig. 3 uses
// AES-CTR as the block-cipher CPRNG; §4 bitslices it).
//
// All byte-level tables (S-box, squaring matrix, affine transform) are
// generated at init from first-principles GF(2^8) arithmetic rather than
// transcribed, and the scalar cipher is validated against both the
// FIPS-197 known-answer vector and crypto/aes in the tests.
package aes

// mulGF multiplies two elements of GF(2^8) modulo the AES polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11B).
func mulGF(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// invGF computes the multiplicative inverse in GF(2^8) by Fermat's little
// theorem (x^254); invGF(0) = 0 as in the AES S-box definition.
func invGF(x byte) byte {
	// x^254 = x^2 · x^4 · x^8 · x^16 · x^32 · x^64 · x^128
	var r byte = 1
	sq := x
	for i := 0; i < 7; i++ {
		sq = mulGF(sq, sq) // x^2, x^4, ..., x^128
		r = mulGF(r, sq)
	}
	return r
}

// affine applies the AES S-box affine transformation
// b ⊕ rot1(b) ⊕ rot2(b) ⊕ rot3(b) ⊕ rot4(b) ⊕ 0x63.
func affine(b byte) byte {
	rot := func(x byte, n uint) byte { return x<<n | x>>(8-n) }
	return b ^ rot(b, 1) ^ rot(b, 2) ^ rot(b, 3) ^ rot(b, 4) ^ 0x63
}

var (
	sbox [256]byte
	// rcon holds the key-schedule round constants.
	rcon [15]byte
)

func init() {
	for i := 0; i < 256; i++ {
		sbox[i] = affine(invGF(byte(i)))
	}
	c := byte(1)
	for i := range rcon {
		rcon[i] = c
		c = mulGF(c, 2)
	}
}
