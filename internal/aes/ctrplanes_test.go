package aes

import (
	"encoding/binary"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/bitslice"
)

// ctrMaterial builds a W-lane generator with deterministic key/nonce
// material for the counter-plane tests.
func ctrMaterial[V bitslice.Vec](t *testing.T, seed int64) *SlicedCTRVec[V] {
	t.Helper()
	lanes := bitslice.VecLanes[V]()
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, lanes)
	nonces := make([][]byte, lanes)
	for l := range keys {
		keys[l] = make([]byte, 16)
		nonces[l] = make([]byte, 8)
		rng.Read(keys[l])
		rng.Read(nonces[l])
	}
	g, err := NewSlicedCTRVec[V](keys, nonces)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// setCtrPlanes loads one explicit counter value per lane into the
// generator's counter planes, mirroring the big-endian block encoding
// the packing path used to produce per batch.
func setCtrPlanes[V bitslice.Vec](g *SlicedCTRVec[V], vals []uint64) {
	words := make([]uint64, len(vals))
	for l, v := range vals {
		// Block bytes 8..15 hold the counter big-endian; the plane
		// layout reads them as a little-endian word.
		words[l] = bits.ReverseBytes64(v)
	}
	g.ctrPl = bitslice.PackWordsVec[V](words)
}

// ctrPlaneValues reads every lane's counter value back out of the
// counter planes.
func ctrPlaneValues[V bitslice.Vec](g *SlicedCTRVec[V]) []uint64 {
	lanes := g.aes.lanes
	out := make([]uint64, lanes)
	bitslice.UnpackWordsVecInto(out, g.ctrPl[:], lanes)
	for l := range out {
		out[l] = bits.ReverseBytes64(out[l])
	}
	return out
}

// The in-plane ripple-carry increment must agree with scalar big-endian
// uint64 counter arithmetic at every lane width, across carry chains of
// every length: byte boundaries, 32-bit word boundaries, and the full
// 2^64 wraparound.
func TestCounterIncrementPlanes(t *testing.T) {
	t.Run("w64", func(t *testing.T) { ctrIncrementWidth[bitslice.V64](t) })
	t.Run("w256", func(t *testing.T) { ctrIncrementWidth[bitslice.V256](t) })
	t.Run("w512", func(t *testing.T) { ctrIncrementWidth[bitslice.V512](t) })
}

func ctrIncrementWidth[V bitslice.Vec](t *testing.T) {
	g := ctrMaterial[V](t, 61)
	lanes := g.Lanes()
	starts := []uint64{
		0, 1, 0xFE, 0xFF, // carry into the second byte
		0xFFFE, 0x1FFFE, // carry across two and three bytes
		0xFFFF_FFFE, 0xFFFF_FFFF, // carry past the 32-bit word boundary
		0x0000_FFFF_FFFF_FFFE,      // six-byte chain
		^uint64(0) - 1, ^uint64(0), // full wraparound to zero
		0x0123_4567_89AB_CDEF,     // arbitrary interior value
		0x8000_0000_0000_0000 - 1, // carry into the top bit
	}
	const steps = 5
	for _, start := range starts {
		// All lanes share the stride the core stream uses (identical
		// counters), offset by lane so differing carry chains coexist.
		want := make([]uint64, lanes)
		for l := range want {
			want[l] = start + uint64(l&3)
		}
		setCtrPlanes(g, want)
		for step := 0; step < steps; step++ {
			g.incCounterPlanes()
			for l := range want {
				want[l]++
			}
			got := ctrPlaneValues(g)
			for l := range want {
				if got[l] != want[l] {
					t.Fatalf("start %#x step %d lane %d: planes hold %#x, scalar counter %#x",
						start, step, l, got[l], want[l])
				}
			}
		}
	}
}

// The counter planes must encode exactly the big-endian block bytes the
// scalar CTR reference feeds its cipher: plane 8i+j of the high half is
// bit j of block byte 8+i.
func TestCounterPlaneLayout(t *testing.T) {
	g := ctrMaterial[bitslice.V64](t, 62)
	lanes := g.Lanes()
	vals := make([]uint64, lanes)
	rng := rand.New(rand.NewSource(63))
	for l := range vals {
		vals[l] = rng.Uint64()
	}
	setCtrPlanes(g, vals)
	g.incCounterPlanes()
	for l := 0; l < lanes; l++ {
		var blk [8]byte
		binary.BigEndian.PutUint64(blk[:], vals[l]+1)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				got := bitslice.LaneBitVec(g.ctrPl[:], 8*i+j, l)
				want := uint8(blk[i]>>uint(j)) & 1
				if got != want {
					t.Fatalf("lane %d block byte %d bit %d: plane %d, big-endian %d", l, 8+i, j, got, want)
				}
			}
		}
	}
}

// Reseed must re-derive the plane state from scalars: counters return
// to zero and the nonce planes match the new nonce material, so the
// post-Reseed stream restarts exactly like a fresh generator.
func TestCounterReseedResetsPlanes(t *testing.T) {
	t.Run("w64", func(t *testing.T) { ctrReseedWidth[bitslice.V64](t) })
	t.Run("w256", func(t *testing.T) { ctrReseedWidth[bitslice.V256](t) })
	t.Run("w512", func(t *testing.T) { ctrReseedWidth[bitslice.V512](t) })
}

func ctrReseedWidth[V bitslice.Vec](t *testing.T) {
	g := ctrMaterial[V](t, 64)
	lanes := g.Lanes()
	dst := make([]byte, lanes*BlockSize)
	for i := 0; i < 7; i++ {
		g.NextBatch(dst)
	}
	for _, v := range ctrPlaneValues(g) {
		if v != 7 {
			t.Fatalf("counter planes hold %d after 7 batches", v)
		}
	}
	rng := rand.New(rand.NewSource(65))
	keys := make([][]byte, lanes)
	nonces := make([][]byte, lanes)
	nonceWords := make([]uint64, lanes)
	for l := range keys {
		keys[l] = make([]byte, 16)
		nonces[l] = make([]byte, 8)
		rng.Read(keys[l])
		rng.Read(nonces[l])
		nonceWords[l] = binary.LittleEndian.Uint64(nonces[l])
	}
	if err := g.Reseed(keys, nonces); err != nil {
		t.Fatal(err)
	}
	for l, v := range ctrPlaneValues(g) {
		if v != 0 {
			t.Fatalf("lane %d counter %d after Reseed, want 0", l, v)
		}
	}
	gotNonces := make([]uint64, lanes)
	bitslice.UnpackWordsVecInto(gotNonces, g.noncePl[:], lanes)
	for l := range gotNonces {
		if gotNonces[l] != nonceWords[l] {
			t.Fatalf("lane %d nonce planes %#x, material %#x", l, gotNonces[l], nonceWords[l])
		}
	}
	// And the post-Reseed stream is the fresh scalar stream.
	g.NextBatch(dst)
	for l := 0; l < lanes; l++ {
		ref, err := NewCTR(keys[l], nonces[l])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, BlockSize)
		ref.Read(want)
		if got := dst[BlockSize*l : BlockSize*(l+1)]; string(got) != string(want) {
			t.Fatalf("lane %d post-Reseed stream diverges", l)
		}
	}
}
