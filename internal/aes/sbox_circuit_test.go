package aes

import (
	"math/rand"
	"testing"

	"repro/internal/bitslice"
)

// packBytesPlanesVec packs one byte per lane into 8 bit planes (plane k
// = bit k of the lane byte).
func packBytesPlanesVec[V bitslice.Vec](vals []byte) [8]V {
	var p [8]V
	for l, v := range vals {
		for k := 0; k < 8; k++ {
			bitslice.SetLaneBitVec(p[:], k, l, uint8(v>>uint(k))&1)
		}
	}
	return p
}

// unpackBytePlaneVec reads one lane's byte back out of 8 bit planes.
func unpackBytePlaneVec[V bitslice.Vec](p *[8]V, lane int) byte {
	var v byte
	for k := 0; k < 8; k++ {
		v |= byte(bitslice.LaneBitVec(p[:], k, lane)) << uint(k)
	}
	return v
}

// bpSboxPlanes applies the Boyar–Peralta circuit to an 8-plane byte
// group, word column by word column (test-only wrapper around bpSbox).
func bpSboxPlanes[V bitslice.Vec](p *[8]V) {
	for k := 0; k < len(p[0]); k++ {
		p[0][k], p[1][k], p[2][k], p[3][k], p[4][k], p[5][k], p[6][k], p[7][k] = bpSbox(
			p[0][k], p[1][k], p[2][k], p[3][k], p[4][k], p[5][k], p[6][k], p[7][k])
	}
}

// The Boyar–Peralta circuit must reproduce the generated scalar sbox
// table on every one of the 256 inputs, at every lane width, with every
// lane substituted independently.
func TestSboxCircuitExhaustive(t *testing.T) {
	t.Run("w64", func(t *testing.T) { sboxExhaustive[bitslice.V64](t) })
	t.Run("w256", func(t *testing.T) { sboxExhaustive[bitslice.V256](t) })
	t.Run("w512", func(t *testing.T) { sboxExhaustive[bitslice.V512](t) })
}

func sboxExhaustive[V bitslice.Vec](t *testing.T) {
	lanes := bitslice.VecLanes[V]()
	// Cover all 256 inputs: lane l of batch b carries byte (64b+l) mod
	// 256, so narrow widths sweep the table across batches and wide
	// widths substitute every value in several lanes at once.
	for base := 0; base < 256; base += lanes {
		vals := make([]byte, lanes)
		for l := range vals {
			vals[l] = byte((base + l) % 256)
		}
		p := packBytesPlanesVec[V](vals)
		bpSboxPlanes(&p)
		for l := 0; l < lanes; l++ {
			if got := unpackBytePlaneVec(&p, l); got != sbox[vals[l]] {
				t.Fatalf("lane %d: circuit(%#02x) = %#02x, want %#02x", l, vals[l], got, sbox[vals[l]])
			}
		}
	}
}

// stateBytes is one random 16-byte block per lane, plus its plane form.
func randomState[V bitslice.Vec](rng *rand.Rand) ([][16]byte, [128]V) {
	lanes := bitslice.VecLanes[V]()
	blocks := make([][16]byte, lanes)
	for l := range blocks {
		rng.Read(blocks[l][:])
	}
	return blocks, PackBlocksVec[V](blocks)
}

// subShiftP must equal scalar SubBytes followed by scalar ShiftRows:
// byte b of the output is sbox[input byte shiftSrc[b]] in every lane.
func TestSubShiftRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	blocks, st := randomState[bitslice.V256](rng)
	var dst [128]bitslice.V256
	subShiftP(&dst, &st)
	out := UnpackBlocksVec(&dst, len(blocks))
	for l, blk := range blocks {
		var want [16]byte
		copy(want[:], blk[:])
		subBytes(&want)
		shiftRows(&want)
		if out[l] != want {
			t.Fatalf("lane %d: subShiftP %x, scalar SB+SR %x", l, out[l], want)
		}
	}
}

// subShiftXorP folds a round key XOR into the S-box load: byte b of the
// output is sbox[input ^ rk at shiftSrc[b]].
func TestSubShiftXorWhitening(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	blocks, st := randomState[bitslice.V64](rng)
	rkBlocks, rk := randomState[bitslice.V64](rng)
	var dst [128]bitslice.V64
	subShiftXorP(&dst, &st, &rk)
	out := UnpackBlocksVec(&dst, len(blocks))
	for l, blk := range blocks {
		var want [16]byte
		for i := range want {
			want[i] = blk[i] ^ rkBlocks[l][i]
		}
		subBytes(&want)
		shiftRows(&want)
		if out[l] != want {
			t.Fatalf("lane %d: subShiftXorP %x, scalar ARK+SB+SR %x", l, out[l], want)
		}
	}
}

// mixColumnsARKP must equal scalar MixColumns followed by AddRoundKey.
func TestMixColumnsARK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	blocks, st := randomState[bitslice.V512](rng)
	rkBlocks, rk := randomState[bitslice.V512](rng)
	var dst [128]bitslice.V512
	mixColumnsARKP(&dst, &st, &rk)
	out := UnpackBlocksVec(&dst, len(blocks))
	for l, blk := range blocks {
		var want [16]byte
		copy(want[:], blk[:])
		mixColumns(&want)
		addRoundKey(&want, &rkBlocks[l])
		if out[l] != want {
			t.Fatalf("lane %d: mixColumnsARKP %x, scalar MC+ARK %x", l, out[l], want)
		}
	}
}
