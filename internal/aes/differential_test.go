package aes

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitslice"
)

// Differential lockdown for the wide-lane datapath: at every supported
// plane width, every lane of the bitsliced CTR generator must reproduce
// its scalar CTR stream byte-for-byte, for multiple batches, under
// distinct per-lane key/nonce material — and again after a Reseed.
func TestDifferentialAllWidths(t *testing.T) {
	t.Run("w64", func(t *testing.T) { diffWidth[bitslice.V64](t, 64) })
	t.Run("w256", func(t *testing.T) { diffWidth[bitslice.V256](t, 256) })
	t.Run("w512", func(t *testing.T) { diffWidth[bitslice.V512](t, 512) })
	t.Run("w256partial", func(t *testing.T) { diffWidth[bitslice.V256](t, 70) })
	t.Run("w512partial", func(t *testing.T) { diffWidth[bitslice.V512](t, 450) })
}

func diffMaterial(rng *rand.Rand, lanes int) (keys, nonces [][]byte) {
	keys = make([][]byte, lanes)
	nonces = make([][]byte, lanes)
	for l := 0; l < lanes; l++ {
		keys[l] = make([]byte, 16)
		nonces[l] = make([]byte, 8)
		rng.Read(keys[l])
		rng.Read(nonces[l])
	}
	return keys, nonces
}

func diffWidth[V bitslice.Vec](t *testing.T, lanes int) {
	rng := rand.New(rand.NewSource(int64(7000 + lanes)))
	keys, nonces := diffMaterial(rng, lanes)
	g, err := NewSlicedCTRVec[V](keys, nonces)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstRefs := func(pass string, keys, nonces [][]byte) {
		const batches = 3
		batch := lanes * BlockSize
		got := make([]byte, batches*batch)
		for i := 0; i < batches; i++ {
			g.NextBatch(got[i*batch:])
		}
		for l := 0; l < lanes; l++ {
			ref, err := NewCTR(keys[l], nonces[l])
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, batches*BlockSize)
			ref.Read(want)
			for i := 0; i < batches; i++ {
				gotBlk := got[i*batch+BlockSize*l : i*batch+BlockSize*l+BlockSize]
				if !bytes.Equal(gotBlk, want[BlockSize*i:BlockSize*(i+1)]) {
					t.Fatalf("%s: lane %d/%d batch %d diverges from scalar CTR\n got %x\nwant %x",
						pass, l, lanes, i, gotBlk, want[BlockSize*i:BlockSize*(i+1)])
				}
			}
		}
	}
	checkAgainstRefs("initial", keys, nonces)
	keys2, nonces2 := diffMaterial(rng, lanes)
	if err := g.Reseed(keys2, nonces2); err != nil {
		t.Fatal(err)
	}
	checkAgainstRefs("reseed", keys2, nonces2)
}
