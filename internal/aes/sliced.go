package aes

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/bitslice"
)

// Sliced is the bitsliced 64-lane AES-128: the 128-bit state becomes 128
// uint64 planes (plane 8b+k = bit k of state byte b across lanes), so one
// EncryptBlocks call performs 64 independent block encryptions, each lane
// under its own key.
type Sliced struct {
	rk    [][128]uint64 // 11 plane-form round keys
	lanes int
}

// NewSliced expands one 16-byte AES-128 key per lane (1..64 lanes).
func NewSliced(keys [][]byte) (*Sliced, error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.W {
		return nil, fmt.Errorf("aes: lane count %d out of range [1,64]", lanes)
	}
	s := &Sliced{rk: make([][128]uint64, 11), lanes: lanes}
	los := make([][]uint64, 11) // per round: per-lane low words
	his := make([][]uint64, 11)
	for r := range los {
		los[r] = make([]uint64, lanes)
		his[r] = make([]uint64, lanes)
	}
	for l, key := range keys {
		if len(key) != 16 {
			return nil, fmt.Errorf("aes: lane %d key must be 16 bytes", l)
		}
		c, err := NewCipher(key)
		if err != nil {
			return nil, err
		}
		for r := 0; r <= 10; r++ {
			los[r][l] = binary.LittleEndian.Uint64(c.rk[r][0:8])
			his[r][l] = binary.LittleEndian.Uint64(c.rk[r][8:16])
		}
	}
	for r := 0; r <= 10; r++ {
		lo := bitslice.PackWords(los[r])
		hi := bitslice.PackWords(his[r])
		copy(s.rk[r][0:64], lo[:])
		copy(s.rk[r][64:128], hi[:])
	}
	return s, nil
}

// Lanes returns the number of active lanes.
func (s *Sliced) Lanes() int { return s.lanes }

// EncryptBlocks encrypts the 64 lane blocks held in plane form in st.
func (s *Sliced) EncryptBlocks(st *[128]uint64) {
	addRoundKeyP(st, &s.rk[0])
	for r := 1; r < 10; r++ {
		subBytesP(st)
		shiftRowsP(st)
		mixColumnsP(st)
		addRoundKeyP(st, &s.rk[r])
	}
	subBytesP(st)
	shiftRowsP(st)
	addRoundKeyP(st, &s.rk[10])
}

func addRoundKeyP(st, rk *[128]uint64) {
	for i := range st {
		st[i] ^= rk[i]
	}
}

func subBytesP(st *[128]uint64) {
	for b := 0; b < 16; b++ {
		sboxP(st[8*b : 8*b+8])
	}
}

// shiftRowsP permutes whole byte groups: the byte at state index r+4c
// moves in from index r+4((c+r) mod 4).
func shiftRowsP(st *[128]uint64) {
	var tmp [128]uint64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			dst := r + 4*c
			src := r + 4*((c+r)%4)
			copy(tmp[8*dst:8*dst+8], st[8*src:8*src+8])
		}
	}
	*st = tmp
}

func mixColumnsP(st *[128]uint64) {
	var a [4][8]uint64
	var xa [4][8]uint64
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			copy(a[r][:], st[8*(4*c+r):8*(4*c+r)+8])
			xtimeP(xa[r][:], a[r][:])
		}
		for r := 0; r < 4; r++ {
			// out_r = {02}a_r ⊕ {03}a_{r+1} ⊕ a_{r+2} ⊕ a_{r+3}
			o := st[8*(4*c+r) : 8*(4*c+r)+8]
			r1, r2, r3 := (r+1)&3, (r+2)&3, (r+3)&3
			for k := 0; k < 8; k++ {
				o[k] = xa[r][k] ^ xa[r1][k] ^ a[r1][k] ^ a[r2][k] ^ a[r3][k]
			}
		}
	}
}

// PackBlocks converts 1..64 16-byte blocks (one per lane) into plane form.
func PackBlocks(blocks [][16]byte) [128]uint64 {
	if len(blocks) > bitslice.W {
		panic("aes: more than 64 blocks")
	}
	los := make([]uint64, len(blocks))
	his := make([]uint64, len(blocks))
	for l := range blocks {
		los[l] = binary.LittleEndian.Uint64(blocks[l][0:8])
		his[l] = binary.LittleEndian.Uint64(blocks[l][8:16])
	}
	var st [128]uint64
	lo := bitslice.PackWords(los)
	hi := bitslice.PackWords(his)
	copy(st[0:64], lo[:])
	copy(st[64:128], hi[:])
	return st
}

// UnpackBlocks converts plane form back to per-lane blocks.
func UnpackBlocks(st *[128]uint64, lanes int) [][16]byte {
	var lo, hi [64]uint64
	copy(lo[:], st[0:64])
	copy(hi[:], st[64:128])
	loW := bitslice.UnpackWords(&lo, lanes)
	hiW := bitslice.UnpackWords(&hi, lanes)
	out := make([][16]byte, lanes)
	for l := 0; l < lanes; l++ {
		binary.LittleEndian.PutUint64(out[l][0:8], loW[l])
		binary.LittleEndian.PutUint64(out[l][8:16], hiW[l])
	}
	return out
}

// SlicedCTR is the bitsliced AES-128-CTR generator of paper Fig. 3: every
// lane runs its own nonce‖counter stream under its own key, and one batch
// encrypts 64 blocks (1024 bytes) at once.
type SlicedCTR struct {
	aes    *Sliced
	nonces []uint64 // per-lane nonce, little-endian image of the 8 nonce bytes
	ctrs   []uint64 // per-lane counter value (encoded big-endian in the block)
}

// BatchSize is the output of one SlicedCTR batch: 64 lanes × 16 bytes.
const BatchSize = 64 * BlockSize

// NewSlicedCTR builds the generator; keys[L] and nonces[L] (8 bytes each)
// belong to lane L. Lane counters start at zero.
func NewSlicedCTR(keys [][]byte, nonces [][]byte) (*SlicedCTR, error) {
	a, err := NewSliced(keys)
	if err != nil {
		return nil, err
	}
	if len(nonces) != a.lanes {
		return nil, fmt.Errorf("aes: %d nonces for %d lanes", len(nonces), a.lanes)
	}
	g := &SlicedCTR{aes: a, nonces: make([]uint64, a.lanes), ctrs: make([]uint64, a.lanes)}
	for l, n := range nonces {
		if len(n) != 8 {
			return nil, fmt.Errorf("aes: lane %d nonce must be 8 bytes", l)
		}
		g.nonces[l] = binary.LittleEndian.Uint64(n)
	}
	return g, nil
}

// Lanes returns the number of active lanes.
func (g *SlicedCTR) Lanes() int { return g.aes.lanes }

// NextBatch writes lanes×16 bytes into dst (lane L's block at offset
// 16·L, identical bytes to lane L's scalar CTR stream) and advances every
// lane counter. len(dst) must be at least Lanes()×16.
func (g *SlicedCTR) NextBatch(dst []byte) {
	lanes := g.aes.lanes
	if len(dst) < lanes*BlockSize {
		panic("aes: batch buffer too small")
	}
	los := make([]uint64, lanes)
	his := make([]uint64, lanes)
	for l := 0; l < lanes; l++ {
		los[l] = g.nonces[l]
		// Block bytes 8..15 hold the counter big-endian; the plane packing
		// reads them little-endian, hence the byte reversal.
		his[l] = bits.ReverseBytes64(g.ctrs[l])
		g.ctrs[l]++
	}
	var st [128]uint64
	lo := bitslice.PackWords(los)
	hi := bitslice.PackWords(his)
	copy(st[0:64], lo[:])
	copy(st[64:128], hi[:])
	g.aes.EncryptBlocks(&st)
	var loO, hiO [64]uint64
	copy(loO[:], st[0:64])
	copy(hiO[:], st[64:128])
	outLo := bitslice.UnpackWords(&loO, lanes)
	outHi := bitslice.UnpackWords(&hiO, lanes)
	for l := 0; l < lanes; l++ {
		binary.LittleEndian.PutUint64(dst[16*l:], outLo[l])
		binary.LittleEndian.PutUint64(dst[16*l+8:], outHi[l])
	}
}
