package aes

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/bitslice"
)

// SlicedVec is the bitsliced AES-128 over the plane width V: the 128-bit
// state becomes 128 V-planes (plane 8b+k = bit k of state byte b across
// the lanes), so one EncryptBlocks call performs 64·K independent block
// encryptions, each lane under its own key. Every plane operation applies
// independently to each of V's K words, so the wide engine is K
// lock-stepped 64-lane engines under one control flow.
type SlicedVec[V bitslice.Vec] struct {
	rk    [][128]V // 11 plane-form round keys
	lanes int

	// Per-round per-lane round-key words, reused across Reseed calls so
	// the segment-rekey hot path never allocates.
	klo, khi [][]uint64
}

// Sliced is the native 64-lane engine (the uint64 datapath).
type Sliced = SlicedVec[bitslice.V64]

// NewSliced expands one 16-byte AES-128 key per lane (1..64 lanes).
func NewSliced(keys [][]byte) (*Sliced, error) {
	return NewSlicedVec[bitslice.V64](keys)
}

// NewSlicedVec expands one 16-byte AES-128 key per lane, for up to
// bitslice.VecLanes[V]() lanes.
func NewSlicedVec[V bitslice.Vec](keys [][]byte) (*SlicedVec[V], error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.VecLanes[V]() {
		return nil, fmt.Errorf("aes: lane count %d out of range [1,%d]", lanes, bitslice.VecLanes[V]())
	}
	s := &SlicedVec[V]{
		rk:    make([][128]V, 11),
		lanes: lanes,
		klo:   make([][]uint64, 11),
		khi:   make([][]uint64, 11),
	}
	for r := 0; r <= 10; r++ {
		s.klo[r] = make([]uint64, lanes)
		s.khi[r] = make([]uint64, lanes)
	}
	if err := s.Reseed(keys); err != nil {
		return nil, err
	}
	return s, nil
}

// Reseed replaces every lane's key, re-running the key schedule in place.
// The lane count must match the one the engine was built with. Reseed is
// allocation-free: the key material lands in scratch owned by the engine.
func (s *SlicedVec[V]) Reseed(keys [][]byte) error {
	if len(keys) != s.lanes {
		return fmt.Errorf("aes: %d keys for %d lanes", len(keys), s.lanes)
	}
	var rk [11][16]byte
	for l, key := range keys {
		if len(key) != 16 {
			return fmt.Errorf("aes: lane %d key must be 16 bytes", l)
		}
		expandKey128(key, &rk)
		for r := 0; r <= 10; r++ {
			s.klo[r][l] = binary.LittleEndian.Uint64(rk[r][0:8])
			s.khi[r][l] = binary.LittleEndian.Uint64(rk[r][8:16])
		}
	}
	for r := 0; r <= 10; r++ {
		lo := bitslice.PackWordsVec[V](s.klo[r])
		hi := bitslice.PackWordsVec[V](s.khi[r])
		copy(s.rk[r][0:64], lo[:])
		copy(s.rk[r][64:128], hi[:])
	}
	return nil
}

// Lanes returns the number of active lanes.
func (s *SlicedVec[V]) Lanes() int { return s.lanes }

// EncryptBlocks encrypts the lane blocks held in plane form in st.
func (s *SlicedVec[V]) EncryptBlocks(st *[128]V) {
	addRoundKeyP(st, &s.rk[0])
	for r := 1; r < 10; r++ {
		subBytesP(st)
		shiftRowsP(st)
		mixColumnsP(st)
		addRoundKeyP(st, &s.rk[r])
	}
	subBytesP(st)
	shiftRowsP(st)
	addRoundKeyP(st, &s.rk[10])
}

func addRoundKeyP[V bitslice.Vec](st, rk *[128]V) {
	for i := range st {
		for k := 0; k < len(st[i]); k++ {
			st[i][k] ^= rk[i][k]
		}
	}
}

func subBytesP[V bitslice.Vec](st *[128]V) {
	for b := 0; b < 16; b++ {
		sboxP(st[8*b : 8*b+8])
	}
}

// shiftRowsP permutes whole byte groups: the byte at state index r+4c
// moves in from index r+4((c+r) mod 4).
func shiftRowsP[V bitslice.Vec](st *[128]V) {
	var tmp [128]V
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			dst := r + 4*c
			src := r + 4*((c+r)%4)
			copy(tmp[8*dst:8*dst+8], st[8*src:8*src+8])
		}
	}
	*st = tmp
}

func mixColumnsP[V bitslice.Vec](st *[128]V) {
	var a [4][8]V
	var xa [4][8]V
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			copy(a[r][:], st[8*(4*c+r):8*(4*c+r)+8])
			xtimeP(xa[r][:], a[r][:])
		}
		for r := 0; r < 4; r++ {
			// out_r = {02}a_r ⊕ {03}a_{r+1} ⊕ a_{r+2} ⊕ a_{r+3}
			o := st[8*(4*c+r) : 8*(4*c+r)+8]
			r1, r2, r3 := (r+1)&3, (r+2)&3, (r+3)&3
			for j := 0; j < 8; j++ {
				for k := 0; k < len(o[j]); k++ {
					o[j][k] = xa[r][j][k] ^ xa[r1][j][k] ^ a[r1][j][k] ^ a[r2][j][k] ^ a[r3][j][k]
				}
			}
		}
	}
}

// PackBlocksVec converts per-lane 16-byte blocks into plane form.
func PackBlocksVec[V bitslice.Vec](blocks [][16]byte) [128]V {
	if len(blocks) > bitslice.VecLanes[V]() {
		panic("aes: more blocks than lanes")
	}
	los := make([]uint64, len(blocks))
	his := make([]uint64, len(blocks))
	for l := range blocks {
		los[l] = binary.LittleEndian.Uint64(blocks[l][0:8])
		his[l] = binary.LittleEndian.Uint64(blocks[l][8:16])
	}
	var st [128]V
	lo := bitslice.PackWordsVec[V](los)
	hi := bitslice.PackWordsVec[V](his)
	copy(st[0:64], lo[:])
	copy(st[64:128], hi[:])
	return st
}

// PackBlocks converts 1..64 16-byte blocks (one per lane) into plane form.
func PackBlocks(blocks [][16]byte) [128]bitslice.V64 {
	return PackBlocksVec[bitslice.V64](blocks)
}

// UnpackBlocksVec converts plane form back to per-lane blocks.
func UnpackBlocksVec[V bitslice.Vec](st *[128]V, lanes int) [][16]byte {
	var lo, hi [64]V
	copy(lo[:], st[0:64])
	copy(hi[:], st[64:128])
	loW := bitslice.UnpackWordsVec(&lo, lanes)
	hiW := bitslice.UnpackWordsVec(&hi, lanes)
	out := make([][16]byte, lanes)
	for l := 0; l < lanes; l++ {
		binary.LittleEndian.PutUint64(out[l][0:8], loW[l])
		binary.LittleEndian.PutUint64(out[l][8:16], hiW[l])
	}
	return out
}

// UnpackBlocks converts 64-lane plane form back to per-lane blocks.
func UnpackBlocks(st *[128]bitslice.V64, lanes int) [][16]byte {
	return UnpackBlocksVec(st, lanes)
}

// SlicedCTRVec is the bitsliced AES-128-CTR generator of paper Fig. 3 over
// the plane width V: every lane runs its own nonce‖counter stream under
// its own key, and one batch encrypts one block per lane at once.
type SlicedCTRVec[V bitslice.Vec] struct {
	aes    *SlicedVec[V]
	nonces []uint64 // per-lane nonce, little-endian image of the 8 nonce bytes
	ctrs   []uint64 // per-lane counter value (encoded big-endian in the block)

	// Per-batch scratch words, owned by the generator so the per-block
	// hot path (NextBatch/Keystream) never allocates.
	los, his []uint64
}

// SlicedCTR is the native 64-lane CTR generator.
type SlicedCTR = SlicedCTRVec[bitslice.V64]

// BatchSize is the output of one 64-lane SlicedCTR batch: 64 lanes × 16
// bytes. Wider engines emit Lanes()×BlockSize bytes per batch.
const BatchSize = 64 * BlockSize

// NewSlicedCTR builds the 64-lane generator; keys[L] and nonces[L]
// (8 bytes each) belong to lane L. Lane counters start at zero.
func NewSlicedCTR(keys [][]byte, nonces [][]byte) (*SlicedCTR, error) {
	return NewSlicedCTRVec[bitslice.V64](keys, nonces)
}

// NewSlicedCTRVec builds a generator of up to bitslice.VecLanes[V]() lanes.
func NewSlicedCTRVec[V bitslice.Vec](keys [][]byte, nonces [][]byte) (*SlicedCTRVec[V], error) {
	a, err := NewSlicedVec[V](keys)
	if err != nil {
		return nil, err
	}
	g := &SlicedCTRVec[V]{
		aes:    a,
		nonces: make([]uint64, a.lanes),
		ctrs:   make([]uint64, a.lanes),
		los:    make([]uint64, a.lanes),
		his:    make([]uint64, a.lanes),
	}
	if err := g.loadNonces(nonces); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *SlicedCTRVec[V]) loadNonces(nonces [][]byte) error {
	if len(nonces) != g.aes.lanes {
		return fmt.Errorf("aes: %d nonces for %d lanes", len(nonces), g.aes.lanes)
	}
	for l, n := range nonces {
		if len(n) != 8 {
			return fmt.Errorf("aes: lane %d nonce must be 8 bytes", l)
		}
		g.nonces[l] = binary.LittleEndian.Uint64(n)
	}
	return nil
}

// Reseed rekeys every lane, replaces its nonce, and resets its counter to
// zero. The lane count must match the one the generator was built with.
func (g *SlicedCTRVec[V]) Reseed(keys [][]byte, nonces [][]byte) error {
	if err := g.aes.Reseed(keys); err != nil {
		return err
	}
	if err := g.loadNonces(nonces); err != nil {
		return err
	}
	for l := range g.ctrs {
		g.ctrs[l] = 0
	}
	return nil
}

// Lanes returns the number of active lanes.
func (g *SlicedCTRVec[V]) Lanes() int { return g.aes.lanes }

// nextBlockPlanes encrypts one nonce‖counter block per lane, leaving the
// lane output words in g.los/g.his, and advances every lane counter.
func (g *SlicedCTRVec[V]) nextBlockPlanes() {
	lanes := g.aes.lanes
	for l := 0; l < lanes; l++ {
		g.los[l] = g.nonces[l]
		// Block bytes 8..15 hold the counter big-endian; the plane packing
		// reads them little-endian, hence the byte reversal.
		g.his[l] = bits.ReverseBytes64(g.ctrs[l])
		g.ctrs[l]++
	}
	var st [128]V
	lo := bitslice.PackWordsVec[V](g.los)
	hi := bitslice.PackWordsVec[V](g.his)
	copy(st[0:64], lo[:])
	copy(st[64:128], hi[:])
	g.aes.EncryptBlocks(&st)
	bitslice.UnpackWordsVecInto(g.los, st[0:64], lanes)
	bitslice.UnpackWordsVecInto(g.his, st[64:128], lanes)
}

// NextBatch writes lanes×16 bytes into dst (lane L's block at offset
// 16·L, identical bytes to lane L's scalar CTR stream) and advances every
// lane counter. len(dst) must be at least Lanes()×16.
func (g *SlicedCTRVec[V]) NextBatch(dst []byte) {
	lanes := g.aes.lanes
	if len(dst) < lanes*BlockSize {
		panic("aes: batch buffer too small")
	}
	g.nextBlockPlanes()
	for l := 0; l < lanes; l++ {
		binary.LittleEndian.PutUint64(dst[16*l:], g.los[l])
		binary.LittleEndian.PutUint64(dst[16*l+8:], g.his[l])
	}
}

// Keystream fills one equal-length buffer per lane with that lane's CTR
// keystream — the same bytes NextBatch would deliver, written straight
// into the per-lane destinations with no intermediate batch buffer.
// len(bufs) must equal Lanes() and every buffer length must be the same
// multiple of BlockSize. The fill is allocation-free.
func (g *SlicedCTRVec[V]) Keystream(bufs [][]byte) error {
	if len(bufs) != g.aes.lanes {
		return fmt.Errorf("aes: %d buffers for %d lanes", len(bufs), g.aes.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("aes: ragged keystream buffers")
		}
	}
	if n%BlockSize != 0 {
		return fmt.Errorf("aes: buffer length must be a multiple of %d", BlockSize)
	}
	for off := 0; off < n; off += BlockSize {
		g.nextBlockPlanes()
		for l, b := range bufs {
			binary.LittleEndian.PutUint64(b[off:off+8], g.los[l])
			binary.LittleEndian.PutUint64(b[off+8:off+16], g.his[l])
		}
	}
	return nil
}
