package aes

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// SlicedVec is the bitsliced AES-128 over the plane width V: the 128-bit
// state becomes 128 V-planes (plane 8b+k = bit k of state byte b across
// the lanes), so one EncryptBlocks call performs 64·K independent block
// encryptions, each lane under its own key. Every plane operation applies
// independently to each of V's K words, so the wide engine is K
// lock-stepped 64-lane engines under one control flow.
type SlicedVec[V bitslice.Vec] struct {
	rk    [][128]V // 11 plane-form round keys
	lanes int

	// sb is the double-buffer for the fused SubBytes+ShiftRows pass:
	// each round writes S-box output planes into sb at their
	// post-ShiftRows positions, then MixColumns+AddRoundKey writes back
	// into the caller's state. Owning it here keeps EncryptBlocks
	// allocation-free; it also means one engine must not encrypt from
	// two goroutines at once (already the contract of every bitsliced
	// engine in this repository).
	sb [128]V

	// Per-round per-lane round-key words, reused across Reseed calls so
	// the segment-rekey hot path never allocates.
	klo, khi [][]uint64
}

// Sliced is the native 64-lane engine (the uint64 datapath).
type Sliced = SlicedVec[bitslice.V64]

// NewSliced expands one 16-byte AES-128 key per lane (1..64 lanes).
func NewSliced(keys [][]byte) (*Sliced, error) {
	return NewSlicedVec[bitslice.V64](keys)
}

// NewSlicedVec expands one 16-byte AES-128 key per lane, for up to
// bitslice.VecLanes[V]() lanes.
func NewSlicedVec[V bitslice.Vec](keys [][]byte) (*SlicedVec[V], error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.VecLanes[V]() {
		return nil, fmt.Errorf("aes: lane count %d out of range [1,%d]", lanes, bitslice.VecLanes[V]())
	}
	s := &SlicedVec[V]{
		rk:    make([][128]V, 11),
		lanes: lanes,
		klo:   make([][]uint64, 11),
		khi:   make([][]uint64, 11),
	}
	for r := 0; r <= 10; r++ {
		s.klo[r] = make([]uint64, lanes)
		s.khi[r] = make([]uint64, lanes)
	}
	if err := s.Reseed(keys); err != nil {
		return nil, err
	}
	return s, nil
}

// Reseed replaces every lane's key, re-running the key schedule in place.
// The lane count must match the one the engine was built with. Reseed is
// allocation-free: the key material lands in scratch owned by the engine.
func (s *SlicedVec[V]) Reseed(keys [][]byte) error {
	if len(keys) != s.lanes {
		return fmt.Errorf("aes: %d keys for %d lanes", len(keys), s.lanes)
	}
	var rk [11][16]byte
	for l, key := range keys {
		if len(key) != 16 {
			return fmt.Errorf("aes: lane %d key must be 16 bytes", l)
		}
		expandKey128(key, &rk)
		for r := 0; r <= 10; r++ {
			s.klo[r][l] = binary.LittleEndian.Uint64(rk[r][0:8])
			s.khi[r][l] = binary.LittleEndian.Uint64(rk[r][8:16])
		}
	}
	for r := 0; r <= 10; r++ {
		lo := bitslice.PackWordsVec[V](s.klo[r])
		hi := bitslice.PackWordsVec[V](s.khi[r])
		copy(s.rk[r][0:64], lo[:])
		copy(s.rk[r][64:128], hi[:])
	}
	return nil
}

// Lanes returns the number of active lanes.
func (s *SlicedVec[V]) Lanes() int { return s.lanes }

// EncryptBlocks encrypts the lane blocks held in plane form in st. The
// round loop is two fused passes per round — SubBytes+ShiftRows (S-box
// planes written at their post-rotation byte positions, so ShiftRows is
// pure index renaming) ping-ponging into the engine's scratch, then
// MixColumns+AddRoundKey back into st — with the round-0 whitening
// folded into the first S-box load and the final AddRoundKey fused with
// the copy-back. No pass over the 128 planes ever runs alone.
func (s *SlicedVec[V]) EncryptBlocks(st *[128]V) {
	sb := &s.sb
	subShiftXorP(sb, st, &s.rk[0])
	mixColumnsARKP(st, sb, &s.rk[1])
	for r := 2; r < 10; r++ {
		subShiftP(sb, st)
		mixColumnsARKP(st, sb, &s.rk[r])
	}
	subShiftP(sb, st)
	addRoundKeyFromP(st, sb, &s.rk[10])
}

// PackBlocksVec converts per-lane 16-byte blocks into plane form.
func PackBlocksVec[V bitslice.Vec](blocks [][16]byte) [128]V {
	if len(blocks) > bitslice.VecLanes[V]() {
		panic("aes: more blocks than lanes")
	}
	los := make([]uint64, len(blocks))
	his := make([]uint64, len(blocks))
	for l := range blocks {
		los[l] = binary.LittleEndian.Uint64(blocks[l][0:8])
		his[l] = binary.LittleEndian.Uint64(blocks[l][8:16])
	}
	var st [128]V
	lo := bitslice.PackWordsVec[V](los)
	hi := bitslice.PackWordsVec[V](his)
	copy(st[0:64], lo[:])
	copy(st[64:128], hi[:])
	return st
}

// PackBlocks converts 1..64 16-byte blocks (one per lane) into plane form.
func PackBlocks(blocks [][16]byte) [128]bitslice.V64 {
	return PackBlocksVec[bitslice.V64](blocks)
}

// UnpackBlocksVec converts plane form back to per-lane blocks.
func UnpackBlocksVec[V bitslice.Vec](st *[128]V, lanes int) [][16]byte {
	var lo, hi [64]V
	copy(lo[:], st[0:64])
	copy(hi[:], st[64:128])
	loW := bitslice.UnpackWordsVec(&lo, lanes)
	hiW := bitslice.UnpackWordsVec(&hi, lanes)
	out := make([][16]byte, lanes)
	for l := 0; l < lanes; l++ {
		binary.LittleEndian.PutUint64(out[l][0:8], loW[l])
		binary.LittleEndian.PutUint64(out[l][8:16], hiW[l])
	}
	return out
}

// UnpackBlocks converts 64-lane plane form back to per-lane blocks.
func UnpackBlocks(st *[128]bitslice.V64, lanes int) [][16]byte {
	return UnpackBlocksVec(st, lanes)
}

// SlicedCTRVec is the bitsliced AES-128-CTR generator of paper Fig. 3 over
// the plane width V: every lane runs its own nonce‖counter stream under
// its own key, and one batch encrypts one block per lane at once.
//
// The CTR input block lives permanently in plane form: noncePl holds the
// (constant) nonce planes and ctrPl the live counter planes, so a batch
// never transposes scalar words into planes — it copies the cached
// planes into the state and advances the counter with a bitsliced
// ripple-carry add (incCounterPlanes). Planes are re-derived from scalar
// material only on Reseed.
type SlicedCTRVec[V bitslice.Vec] struct {
	aes     *SlicedVec[V]
	noncePl [64]V // planes of block bytes 0..7: the per-lane nonces
	ctrPl   [64]V // planes of block bytes 8..15: the big-endian counters
	st      [128]V

	// Per-batch scratch words, owned by the generator so the per-block
	// hot path (NextBatch/Keystream) never allocates. nonces doubles as
	// the Reseed-time packing scratch.
	nonces   []uint64
	los, his []uint64
}

// SlicedCTR is the native 64-lane CTR generator.
type SlicedCTR = SlicedCTRVec[bitslice.V64]

// BatchSize is the output of one 64-lane SlicedCTR batch: 64 lanes × 16
// bytes. Wider engines emit Lanes()×BlockSize bytes per batch.
const BatchSize = 64 * BlockSize

// NewSlicedCTR builds the 64-lane generator; keys[L] and nonces[L]
// (8 bytes each) belong to lane L. Lane counters start at zero.
func NewSlicedCTR(keys [][]byte, nonces [][]byte) (*SlicedCTR, error) {
	return NewSlicedCTRVec[bitslice.V64](keys, nonces)
}

// NewSlicedCTRVec builds a generator of up to bitslice.VecLanes[V]() lanes.
func NewSlicedCTRVec[V bitslice.Vec](keys [][]byte, nonces [][]byte) (*SlicedCTRVec[V], error) {
	a, err := NewSlicedVec[V](keys)
	if err != nil {
		return nil, err
	}
	g := &SlicedCTRVec[V]{
		aes:    a,
		nonces: make([]uint64, a.lanes),
		los:    make([]uint64, a.lanes),
		his:    make([]uint64, a.lanes),
	}
	if err := g.loadNonces(nonces); err != nil {
		return nil, err
	}
	return g, nil
}

// loadNonces validates the per-lane nonces and caches them as bit
// planes: one word transpose here replaces one per batch.
func (g *SlicedCTRVec[V]) loadNonces(nonces [][]byte) error {
	if len(nonces) != g.aes.lanes {
		return fmt.Errorf("aes: %d nonces for %d lanes", len(nonces), g.aes.lanes)
	}
	for l, n := range nonces {
		if len(n) != 8 {
			return fmt.Errorf("aes: lane %d nonce must be 8 bytes", l)
		}
		g.nonces[l] = binary.LittleEndian.Uint64(n)
	}
	g.noncePl = bitslice.PackWordsVec[V](g.nonces)
	return nil
}

// Reseed rekeys every lane, replaces its nonce, and resets its counter to
// zero. The lane count must match the one the generator was built with.
func (g *SlicedCTRVec[V]) Reseed(keys [][]byte, nonces [][]byte) error {
	if err := g.aes.Reseed(keys); err != nil {
		return err
	}
	if err := g.loadNonces(nonces); err != nil {
		return err
	}
	clear(g.ctrPl[:])
	return nil
}

// Lanes returns the number of active lanes.
func (g *SlicedCTRVec[V]) Lanes() int { return g.aes.lanes }

// ctrPlane maps counter bit p (0 = least significant) to its index in
// ctrPl: block byte 8+i holds big-endian counter byte 7-i, and plane
// 8i+j of the high half is bit j of block byte 8+i.
func ctrPlane(p int) int { return 56 - 8*(p>>3) + (p & 7) }

// incCounterPlanes adds one to every lane's counter directly in plane
// form: a bitsliced ripple-carry add from the counter's least
// significant plane upward, stopping as soon as no lane carries. The
// core stream resets counters to zero each segment pass, so every
// lane's counter is small and the live carry chain is a handful of
// planes; a full 64-plane ripple happens only at the 2^64 wraparound,
// where every counter returns to zero exactly like the scalar uint64
// counter it mirrors.
func (g *SlicedCTRVec[V]) incCounterPlanes() {
	carry := bitslice.BroadcastVec[V](1)
	for p := 0; p < 64; p++ {
		idx := ctrPlane(p)
		old := g.ctrPl[idx]
		var live uint64
		for k := 0; k < len(old); k++ {
			g.ctrPl[idx][k] = old[k] ^ carry[k]
			carry[k] &= old[k]
			live |= carry[k]
		}
		if live == 0 {
			return
		}
	}
}

// nextBlockPlanes encrypts one nonce‖counter block per lane, leaving the
// lane output words in g.los/g.his, and advances every lane counter. The
// input block is assembled by plane copy alone — the nonce planes are
// cached and the counter already lives in plane form — so the only
// transposes per batch are the two output unpacks.
func (g *SlicedCTRVec[V]) nextBlockPlanes() {
	lanes := g.aes.lanes
	st := &g.st
	copy(st[0:64], g.noncePl[:])
	copy(st[64:128], g.ctrPl[:])
	g.incCounterPlanes()
	g.aes.EncryptBlocks(st)
	bitslice.UnpackWordsVecInto(g.los, st[0:64], lanes)
	bitslice.UnpackWordsVecInto(g.his, st[64:128], lanes)
}

// NextBatch writes lanes×16 bytes into dst (lane L's block at offset
// 16·L, identical bytes to lane L's scalar CTR stream) and advances every
// lane counter. len(dst) must be at least Lanes()×16.
func (g *SlicedCTRVec[V]) NextBatch(dst []byte) {
	lanes := g.aes.lanes
	if len(dst) < lanes*BlockSize {
		panic("aes: batch buffer too small")
	}
	g.nextBlockPlanes()
	for l := 0; l < lanes; l++ {
		binary.LittleEndian.PutUint64(dst[16*l:], g.los[l])
		binary.LittleEndian.PutUint64(dst[16*l+8:], g.his[l])
	}
}

// Keystream fills one equal-length buffer per lane with that lane's CTR
// keystream — the same bytes NextBatch would deliver, written straight
// into the per-lane destinations with no intermediate batch buffer.
// len(bufs) must equal Lanes() and every buffer length must be the same
// multiple of BlockSize. The fill is allocation-free.
func (g *SlicedCTRVec[V]) Keystream(bufs [][]byte) error {
	if len(bufs) != g.aes.lanes {
		return fmt.Errorf("aes: %d buffers for %d lanes", len(bufs), g.aes.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("aes: ragged keystream buffers")
		}
	}
	if n%BlockSize != 0 {
		return fmt.Errorf("aes: buffer length must be a multiple of %d", BlockSize)
	}
	for off := 0; off < n; off += BlockSize {
		g.nextBlockPlanes()
		for l, b := range bufs {
			binary.LittleEndian.PutUint64(b[off:off+8], g.los[l])
			binary.LittleEndian.PutUint64(b[off+8:off+16], g.his[l])
		}
	}
	return nil
}
