package aes

// Bit-plane GF(2^8) arithmetic for the bitsliced S-box. A byte position is
// eight uint64 planes (plane k = bit k of that byte across 64 lanes); all
// functions below are straight-line word operations, so one call performs
// 64 field operations at once.
//
// The S-box is computed structurally — Fermat inversion x^254 (four plane
// multiplications plus free squarings) followed by the affine map — rather
// than from a transcribed gate list; the scalar sbox table generated in
// gf.go is the test oracle. This is the "complex bitsliced S-box" the
// paper points to when explaining why AES trails the stream ciphers.

// gfMulP multiplies two plane bytes: dst = a·b in GF(2^8). dst must not
// alias a or b.
func gfMulP(dst, a, b []uint64) {
	var c [15]uint64
	for i := 0; i < 8; i++ {
		ai := a[i]
		if true { // keep loop shape simple; the compiler unrolls well
			c[i] ^= ai & b[0]
			c[i+1] ^= ai & b[1]
			c[i+2] ^= ai & b[2]
			c[i+3] ^= ai & b[3]
			c[i+4] ^= ai & b[4]
			c[i+5] ^= ai & b[5]
			c[i+6] ^= ai & b[6]
			c[i+7] ^= ai & b[7]
		}
	}
	// Reduce modulo x^8 + x^4 + x^3 + x + 1: x^k ≡ x^(k-4) + x^(k-5) +
	// x^(k-7) + x^(k-8) for k ≥ 8, processed high to low so overflow terms
	// cascade correctly.
	for k := 14; k >= 8; k-- {
		t := c[k]
		c[k-4] ^= t
		c[k-5] ^= t
		c[k-7] ^= t
		c[k-8] ^= t
	}
	copy(dst[:8], c[:8])
}

// gfSquareP squares a plane byte using the squaring bit-matrix generated
// in gf.go (squaring is linear over GF(2), so it costs only XORs).
func gfSquareP(dst, a []uint64) {
	var out [8]uint64
	for i := 0; i < 8; i++ {
		m := sqMat[i]
		for j := 0; j < 8; j++ {
			if m&(1<<uint(j)) != 0 {
				out[j] ^= a[i]
			}
		}
	}
	copy(dst[:8], out[:])
}

// gfInvP computes the field inverse x^254 (with 0 ↦ 0, matching the S-box
// convention) via the addition chain
// x^3 = x^2·x, x^15 = (x^3)^4·x^3, x^252 = (x^15)^16·(x^3)^4, x^254 = x^252·x^2.
func gfInvP(dst, x []uint64) {
	var x2, x3, x12, x15, x240, x252 [8]uint64
	gfSquareP(x2[:], x)
	gfMulP(x3[:], x2[:], x)
	gfSquareP(x12[:], x3[:])
	gfSquareP(x12[:], x12[:]) // x^12
	gfMulP(x15[:], x12[:], x3[:])
	gfSquareP(x240[:], x15[:])
	gfSquareP(x240[:], x240[:])
	gfSquareP(x240[:], x240[:])
	gfSquareP(x240[:], x240[:]) // x^240
	gfMulP(x252[:], x240[:], x12[:])
	gfMulP(dst, x252[:], x2[:]) // x^254
}

// sboxP applies the AES S-box to one plane byte in place.
func sboxP(st []uint64) {
	var inv [8]uint64
	gfInvP(inv[:], st)
	// Affine: out = b ⊕ rotl1(b) ⊕ rotl2(b) ⊕ rotl3(b) ⊕ rotl4(b) ⊕ 0x63,
	// where bit j of rotl_n(b) is bit (j-n) mod 8 of b.
	const c = byte(0x63)
	for j := 0; j < 8; j++ {
		v := inv[j] ^ inv[(j+7)&7] ^ inv[(j+6)&7] ^ inv[(j+5)&7] ^ inv[(j+4)&7]
		if c&(1<<uint(j)) != 0 {
			v = ^v
		}
		st[j] = v
	}
}

// xtimeP multiplies a plane byte by x (the MixColumns {02} multiple):
// out[j] = a[j-1] ⊕ (a[7] where the AES polynomial 0x1B has bit j).
func xtimeP(dst, a []uint64) {
	hi := a[7]
	dst[7] = a[6]
	dst[6] = a[5]
	dst[5] = a[4]
	dst[4] = a[3] ^ hi
	dst[3] = a[2] ^ hi
	dst[2] = a[1]
	dst[1] = a[0] ^ hi
	dst[0] = hi
}
