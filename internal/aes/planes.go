package aes

import "repro/internal/bitslice"

// Bitsliced AES round circuits. A byte position is eight V-planes (plane
// k = bit k of that byte across the lanes); all functions below are
// straight-line word operations, so one call performs 64·K byte
// operations at once (K = words per plane).
//
// The S-box is the fixed Boyar–Peralta forward circuit (their depth-16
// construction: 128 gates — 34 AND, 94 XOR/XNOR — shared GF(2^4)
// inversion in the middle, linear top and bottom layers), transcribed as
// straight-line word logic in bpSbox and verified exhaustively against
// the generated scalar sbox table in the tests. It replaces the earlier
// structural Fermat-inversion S-box (four plane multiplications at 64+
// gates each plus squarings and the affine map, ~500 gate-ops per byte):
// the circuit is ~4× fewer gates and, being shallow, schedules well on a
// superscalar core. ShiftRows never runs as a pass of its own: the
// subShift* functions write each byte's S-box output planes directly at
// the byte's post-ShiftRows position (pure index renaming, zero gates),
// and MixColumns reads the renamed planes contiguously.

// shiftSrc[d] is the state byte index that ShiftRows moves into position
// d: with d = r + 4c, the source is r + 4((c+r) mod 4).
var shiftSrc = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

// bpSbox is the Boyar–Peralta S-box circuit on one word column: bit i of
// ui is bit i of the input byte of one lane (u0 = least significant
// plane word), and the returned s0..s7 are the planes of sbox[input].
// All 64 lanes of the word are substituted at once.
func bpSbox(u0, u1, u2, u3, u4, u5, u6, u7 uint64) (s0, s1, s2, s3, s4, s5, s6, s7 uint64) {
	// The circuit's published names: U0 is the MOST significant input
	// bit and S0 the most significant output bit, so the plane words
	// enter in reverse order.
	x0, x1, x2, x3, x4, x5, x6, x7 := u7, u6, u5, u4, u3, u2, u1, u0

	// Top linear layer: 27 XORs expanding the 8 inputs into the shared
	// signals the nonlinear middle consumes.
	t1 := x0 ^ x3
	t2 := x0 ^ x5
	t3 := x0 ^ x6
	t4 := x3 ^ x5
	t5 := x4 ^ x6
	t6 := t1 ^ t5
	t7 := x1 ^ x2
	t8 := x7 ^ t6
	t9 := x7 ^ t7
	t10 := t6 ^ t7
	t11 := x1 ^ x5
	t12 := x2 ^ x5
	t13 := t3 ^ t4
	t14 := t6 ^ t11
	t15 := t5 ^ t11
	t16 := t5 ^ t12
	t17 := t9 ^ t16
	t18 := x3 ^ x7
	t19 := t7 ^ t18
	t20 := t1 ^ t19
	t21 := x6 ^ x7
	t22 := t7 ^ t21
	t23 := t2 ^ t22
	t24 := t2 ^ t10
	t25 := t20 ^ t17
	t26 := t3 ^ t16
	t27 := t1 ^ t12

	// Shared nonlinear middle: the tower-field GF(2^4) inversion, 63
	// gates (34 AND, 29 XOR).
	m1 := t13 & t6
	m2 := t23 & t8
	m3 := t14 ^ m1
	m4 := t19 & x7
	m5 := m4 ^ m1
	m6 := t3 & t16
	m7 := t22 & t9
	m8 := t26 ^ m6
	m9 := t20 & t17
	m10 := m9 ^ m6
	m11 := t1 & t15
	m12 := t4 & t27
	m13 := m12 ^ m11
	m14 := t2 & t10
	m15 := m14 ^ m11
	m16 := m3 ^ m2
	m17 := m5 ^ t24
	m18 := m8 ^ m7
	m19 := m10 ^ m15
	m20 := m16 ^ m13
	m21 := m17 ^ m15
	m22 := m18 ^ m13
	m23 := m19 ^ t25
	m24 := m22 ^ m23
	m25 := m22 & m20
	m26 := m21 ^ m25
	m27 := m20 ^ m21
	m28 := m23 ^ m25
	m29 := m28 & m27
	m30 := m26 & m24
	m31 := m20 & m23
	m32 := m27 & m31
	m33 := m27 ^ m25
	m34 := m21 & m22
	m35 := m24 & m34
	m36 := m24 ^ m25
	m37 := m21 ^ m29
	m38 := m32 ^ m33
	m39 := m23 ^ m30
	m40 := m35 ^ m36
	m41 := m38 ^ m40
	m42 := m37 ^ m39
	m43 := m37 ^ m38
	m44 := m39 ^ m40
	m45 := m42 ^ m41
	m46 := m44 & t6
	m47 := m40 & t8
	m48 := m39 & x7
	m49 := m43 & t16
	m50 := m38 & t9
	m51 := m37 & t17
	m52 := m42 & t15
	m53 := m45 & t27
	m54 := m41 & t10
	m55 := m44 & t13
	m56 := m40 & t23
	m57 := m39 & t19
	m58 := m43 & t3
	m59 := m38 & t22
	m60 := m37 & t20
	m61 := m42 & t1
	m62 := m45 & t4
	m63 := m41 & t2

	// Bottom linear layer: 30 XORs plus the 8 output gates (4 XOR,
	// 4 XNOR — the XNORs realize the 0x63 affine constant).
	l0 := m61 ^ m62
	l1 := m50 ^ m56
	l2 := m46 ^ m48
	l3 := m47 ^ m55
	l4 := m54 ^ m58
	l5 := m49 ^ m61
	l6 := m62 ^ l5
	l7 := m46 ^ l3
	l8 := m51 ^ m59
	l9 := m52 ^ m53
	l10 := m53 ^ l4
	l11 := m60 ^ l2
	l12 := m48 ^ m51
	l13 := m50 ^ l0
	l14 := m52 ^ m61
	l15 := m55 ^ l1
	l16 := m56 ^ l0
	l17 := m57 ^ l1
	l18 := m58 ^ l8
	l19 := m63 ^ l4
	l20 := l0 ^ l1
	l21 := l1 ^ l7
	l22 := l3 ^ l12
	l23 := l18 ^ l2
	l24 := l15 ^ l9
	l25 := l6 ^ l10
	l26 := l7 ^ l9
	l27 := l8 ^ l10
	l28 := l11 ^ l14
	l29 := l11 ^ l17

	s7 = l6 ^ l24
	s6 = ^(l16 ^ l26)
	s5 = ^(l19 ^ l28)
	s4 = l6 ^ l21
	s3 = l20 ^ l22
	s2 = l25 ^ l29
	s1 = ^(l13 ^ l27)
	s0 = ^(l6 ^ l23)
	return
}

// subShiftP fuses SubBytes and ShiftRows into one pass: the S-box output
// planes of source byte shiftSrc[b] land at byte position b of dst, so
// the row rotation costs nothing but the write index. dst must not alias
// src.
func subShiftP[V bitslice.Vec](dst, src *[128]V) {
	for b := 0; b < 16; b++ {
		s := 8 * shiftSrc[b]
		sp := (*[8]V)(src[s : s+8])
		dp := (*[8]V)(dst[8*b : 8*b+8])
		for k := 0; k < len(sp[0]); k++ {
			dp[0][k], dp[1][k], dp[2][k], dp[3][k], dp[4][k], dp[5][k], dp[6][k], dp[7][k] = bpSbox(
				sp[0][k], sp[1][k], sp[2][k], sp[3][k],
				sp[4][k], sp[5][k], sp[6][k], sp[7][k])
		}
	}
}

// subShiftXorP is subShiftP with the round-0 AddRoundKey folded into the
// S-box input load: dst[b] = sbox(src[shiftSrc[b]] ^ rk[shiftSrc[b]]),
// saving the separate 128-plane whitening sweep at the top of the
// cipher. dst must not alias src.
func subShiftXorP[V bitslice.Vec](dst, src, rk *[128]V) {
	for b := 0; b < 16; b++ {
		s := 8 * shiftSrc[b]
		sp := (*[8]V)(src[s : s+8])
		kp := (*[8]V)(rk[s : s+8])
		dp := (*[8]V)(dst[8*b : 8*b+8])
		for k := 0; k < len(sp[0]); k++ {
			dp[0][k], dp[1][k], dp[2][k], dp[3][k], dp[4][k], dp[5][k], dp[6][k], dp[7][k] = bpSbox(
				sp[0][k]^kp[0][k], sp[1][k]^kp[1][k], sp[2][k]^kp[2][k], sp[3][k]^kp[3][k],
				sp[4][k]^kp[4][k], sp[5][k]^kp[5][k], sp[6][k]^kp[6][k], sp[7][k]^kp[7][k])
		}
	}
}

// mixColumnsARKP fuses MixColumns and AddRoundKey into one pass over the
// (already ShiftRows-renamed) src planes: dst = MC(src) ^ rk. Each
// column's four bytes are 32 contiguous planes, and the column is
// computed in the xtime-sharing form
//
//	out_r = a_r ⊕ t ⊕ xtime(a_r ⊕ a_{r+1}),  t = a_0⊕a_1⊕a_2⊕a_3
//
// so every {02}-multiple is taken of an already-needed XOR and the
// column sum t is computed once and reused by all four rows. dst must
// not alias src.
func mixColumnsARKP[V bitslice.Vec](dst, src, rk *[128]V) {
	for c := 0; c < 4; c++ {
		base := 32 * c
		srows := [4]*[8]V{
			(*[8]V)(src[base : base+8]), (*[8]V)(src[base+8 : base+16]),
			(*[8]V)(src[base+16 : base+24]), (*[8]V)(src[base+24 : base+32]),
		}
		drows := [4]*[8]V{
			(*[8]V)(dst[base : base+8]), (*[8]V)(dst[base+8 : base+16]),
			(*[8]V)(dst[base+16 : base+24]), (*[8]V)(dst[base+24 : base+32]),
		}
		krows := [4]*[8]V{
			(*[8]V)(rk[base : base+8]), (*[8]V)(rk[base+8 : base+16]),
			(*[8]V)(rk[base+16 : base+24]), (*[8]V)(rk[base+24 : base+32]),
		}
		s0, s1, s2, s3 := srows[0], srows[1], srows[2], srows[3]
		for w := 0; w < len(s0[0]); w++ {
			var t [8]uint64
			for j := 0; j < 8; j++ {
				t[j] = s0[j][w] ^ s1[j][w] ^ s2[j][w] ^ s3[j][w]
			}
			for r := 0; r < 4; r++ {
				a, n, d, k := srows[r], srows[(r+1)&3], drows[r], krows[r]
				u0 := a[0][w] ^ n[0][w]
				u1 := a[1][w] ^ n[1][w]
				u2 := a[2][w] ^ n[2][w]
				u3 := a[3][w] ^ n[3][w]
				u4 := a[4][w] ^ n[4][w]
				u5 := a[5][w] ^ n[5][w]
				u6 := a[6][w] ^ n[6][w]
				u7 := a[7][w] ^ n[7][w]
				// xtime(u) plane map: bit j takes u_{j-1}, with u7 folded
				// into bits 0,1,3,4 (the AES polynomial 0x1B).
				d[0][w] = a[0][w] ^ t[0] ^ u7 ^ k[0][w]
				d[1][w] = a[1][w] ^ t[1] ^ u0 ^ u7 ^ k[1][w]
				d[2][w] = a[2][w] ^ t[2] ^ u1 ^ k[2][w]
				d[3][w] = a[3][w] ^ t[3] ^ u2 ^ u7 ^ k[3][w]
				d[4][w] = a[4][w] ^ t[4] ^ u3 ^ u7 ^ k[4][w]
				d[5][w] = a[5][w] ^ t[5] ^ u4 ^ k[5][w]
				d[6][w] = a[6][w] ^ t[6] ^ u5 ^ k[6][w]
				d[7][w] = a[7][w] ^ t[7] ^ u6 ^ k[7][w]
			}
		}
	}
}

// addRoundKeyFromP writes dst = src ^ rk over all 128 planes — the final
// round's AddRoundKey fused with the copy-back from the S-box scratch.
func addRoundKeyFromP[V bitslice.Vec](dst, src, rk *[128]V) {
	for i := range dst {
		for k := 0; k < len(dst[i]); k++ {
			dst[i][k] = src[i][k] ^ rk[i][k]
		}
	}
}
