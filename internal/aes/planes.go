package aes

import "repro/internal/bitslice"

// Bit-plane GF(2^8) arithmetic for the bitsliced S-box. A byte position is
// eight V-planes (plane k = bit k of that byte across the lanes); all
// functions below are straight-line word operations, so one call performs
// 64·K field operations at once (K = words per plane).
//
// The S-box is computed structurally — Fermat inversion x^254 (four plane
// multiplications plus free squarings) followed by the affine map — rather
// than from a transcribed gate list; the scalar sbox table generated in
// gf.go is the test oracle. This is the "complex bitsliced S-box" the
// paper points to when explaining why AES trails the stream ciphers.

// gfMulP multiplies two plane bytes: dst = a·b in GF(2^8). dst must not
// alias a or b.
func gfMulP[V bitslice.Vec](dst, a, b []V) {
	var c [15]V
	for i := 0; i < 8; i++ {
		ai := a[i]
		for k := 0; k < len(ai); k++ {
			c[i][k] ^= ai[k] & b[0][k]
			c[i+1][k] ^= ai[k] & b[1][k]
			c[i+2][k] ^= ai[k] & b[2][k]
			c[i+3][k] ^= ai[k] & b[3][k]
			c[i+4][k] ^= ai[k] & b[4][k]
			c[i+5][k] ^= ai[k] & b[5][k]
			c[i+6][k] ^= ai[k] & b[6][k]
			c[i+7][k] ^= ai[k] & b[7][k]
		}
	}
	// Reduce modulo x^8 + x^4 + x^3 + x + 1: x^k ≡ x^(k-4) + x^(k-5) +
	// x^(k-7) + x^(k-8) for k ≥ 8, processed high to low so overflow terms
	// cascade correctly.
	for j := 14; j >= 8; j-- {
		t := c[j]
		for k := 0; k < len(t); k++ {
			c[j-4][k] ^= t[k]
			c[j-5][k] ^= t[k]
			c[j-7][k] ^= t[k]
			c[j-8][k] ^= t[k]
		}
	}
	copy(dst[:8], c[:8])
}

// gfSquareP squares a plane byte using the squaring bit-matrix generated
// in gf.go (squaring is linear over GF(2), so it costs only XORs).
func gfSquareP[V bitslice.Vec](dst, a []V) {
	var out [8]V
	for i := 0; i < 8; i++ {
		m := sqMat[i]
		for j := 0; j < 8; j++ {
			if m&(1<<uint(j)) != 0 {
				for k := 0; k < len(out[j]); k++ {
					out[j][k] ^= a[i][k]
				}
			}
		}
	}
	copy(dst[:8], out[:])
}

// gfInvP computes the field inverse x^254 (with 0 ↦ 0, matching the S-box
// convention) via the addition chain
// x^3 = x^2·x, x^15 = (x^3)^4·x^3, x^252 = (x^15)^16·(x^3)^4, x^254 = x^252·x^2.
func gfInvP[V bitslice.Vec](dst, x []V) {
	var x2, x3, x12, x15, x240, x252 [8]V
	gfSquareP(x2[:], x)
	gfMulP(x3[:], x2[:], x)
	gfSquareP(x12[:], x3[:])
	gfSquareP(x12[:], x12[:]) // x^12
	gfMulP(x15[:], x12[:], x3[:])
	gfSquareP(x240[:], x15[:])
	gfSquareP(x240[:], x240[:])
	gfSquareP(x240[:], x240[:])
	gfSquareP(x240[:], x240[:]) // x^240
	gfMulP(x252[:], x240[:], x12[:])
	gfMulP(dst, x252[:], x2[:]) // x^254
}

// sboxP applies the AES S-box to one plane byte in place.
func sboxP[V bitslice.Vec](st []V) {
	var inv [8]V
	gfInvP(inv[:], st)
	// Affine: out = b ⊕ rotl1(b) ⊕ rotl2(b) ⊕ rotl3(b) ⊕ rotl4(b) ⊕ 0x63,
	// where bit j of rotl_n(b) is bit (j-n) mod 8 of b.
	const c = byte(0x63)
	for j := 0; j < 8; j++ {
		var v V
		for k := 0; k < len(v); k++ {
			v[k] = inv[j][k] ^ inv[(j+7)&7][k] ^ inv[(j+6)&7][k] ^ inv[(j+5)&7][k] ^ inv[(j+4)&7][k]
			if c&(1<<uint(j)) != 0 {
				v[k] = ^v[k]
			}
		}
		st[j] = v
	}
}

// xtimeP multiplies a plane byte by x (the MixColumns {02} multiple):
// out[j] = a[j-1] ⊕ (a[7] where the AES polynomial 0x1B has bit j).
func xtimeP[V bitslice.Vec](dst, a []V) {
	hi := a[7]
	for k := 0; k < len(hi); k++ {
		dst[7][k] = a[6][k]
		dst[6][k] = a[5][k]
		dst[5][k] = a[4][k]
		dst[4][k] = a[3][k] ^ hi[k]
		dst[3][k] = a[2][k] ^ hi[k]
		dst[2][k] = a[1][k]
		dst[1][k] = a[0][k] ^ hi[k]
		dst[0][k] = hi[k]
	}
}
