package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitslice"
)

// FIPS-197 Appendix C known-answer vectors.
func TestFIPS197Vectors(t *testing.T) {
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	cases := []struct{ key, ct string }{
		{"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, tc := range cases {
		key, _ := hex.DecodeString(tc.key)
		want, _ := hex.DecodeString(tc.ct)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("key %s: got %x want %x", tc.key, got, want)
		}
	}
}

func TestMatchesStdlibAllKeySizes(t *testing.T) {
	f := func(seed int64, size8 uint8) bool {
		sizes := []int{16, 24, 32}
		size := sizes[int(size8)%3]
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, size)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		ours, err := NewCipher(key)
		if err != nil {
			return false
		}
		std, err := stdaes.NewCipher(key)
		if err != nil {
			return false
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		ours.Encrypt(a, pt)
		std.Encrypt(b, pt)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCipherRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 15, 17, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestSboxGeneration(t *testing.T) {
	// Spot values from FIPS-197 Figure 7.
	want := map[byte]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0xc9: 0xdd}
	for in, out := range want {
		if sbox[in] != out {
			t.Errorf("sbox[%#x] = %#x, want %#x", in, sbox[in], out)
		}
	}
	// S-box must be a permutation.
	var seen [256]bool
	for _, v := range sbox {
		if seen[v] {
			t.Fatal("sbox is not a permutation")
		}
		seen[v] = true
	}
}

func TestGFInverse(t *testing.T) {
	for x := 1; x < 256; x++ {
		if mulGF(byte(x), invGF(byte(x))) != 1 {
			t.Fatalf("invGF(%#x) wrong", x)
		}
	}
	if invGF(0) != 0 {
		t.Fatal("invGF(0) must be 0")
	}
}

// The bitsliced cipher must agree with 64 scalar encryptions under 64
// distinct keys.
func TestSlicedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	keys := make([][]byte, 64)
	blocks := make([][16]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, 16)
		rng.Read(keys[l])
		rng.Read(blocks[l][:])
	}
	sl, err := NewSliced(keys)
	if err != nil {
		t.Fatal(err)
	}
	st := PackBlocks(blocks)
	sl.EncryptBlocks(&st)
	out := UnpackBlocks(&st, 64)
	for l := 0; l < 64; l++ {
		c, _ := NewCipher(keys[l])
		want := make([]byte, 16)
		c.Encrypt(want, blocks[l][:])
		if !bytes.Equal(out[l][:], want) {
			t.Fatalf("lane %d: sliced %x scalar %x", l, out[l], want)
		}
	}
}

func TestSlicedPartialLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	keys := make([][]byte, 3)
	blocks := make([][16]byte, 3)
	for l := range keys {
		keys[l] = make([]byte, 16)
		rng.Read(keys[l])
		rng.Read(blocks[l][:])
	}
	sl, err := NewSliced(keys)
	if err != nil {
		t.Fatal(err)
	}
	st := PackBlocks(blocks)
	sl.EncryptBlocks(&st)
	out := UnpackBlocks(&st, 3)
	for l := 0; l < 3; l++ {
		c, _ := NewCipher(keys[l])
		want := make([]byte, 16)
		c.Encrypt(want, blocks[l][:])
		if !bytes.Equal(out[l][:], want) {
			t.Fatalf("lane %d mismatch", l)
		}
	}
}

func TestSlicedValidation(t *testing.T) {
	if _, err := NewSliced(nil); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := NewSliced(make([][]byte, 65)); err == nil {
		t.Error("65 lanes accepted")
	}
	if _, err := NewSliced([][]byte{make([]byte, 15)}); err == nil {
		t.Error("bad key size accepted")
	}
}

// Scalar CTR: Read must be chunking-invariant and match block-by-block
// encryption of nonce‖counter.
func TestCTRMatchesManualBlocks(t *testing.T) {
	key := make([]byte, 16)
	nonce := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range key {
		key[i] = byte(i)
	}
	g, err := NewCTR(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 48)
	g.Read(got)
	c, _ := NewCipher(key)
	want := make([]byte, 48)
	for blk := 0; blk < 3; blk++ {
		in := make([]byte, 16)
		copy(in, nonce)
		in[15] = byte(blk)
		c.Encrypt(want[16*blk:], in)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ctr stream mismatch\n got %x\nwant %x", got, want)
	}
}

func TestCTRChunkingInvariance(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 8)
	a, _ := NewCTR(key, nonce)
	b, _ := NewCTR(key, nonce)
	whole := make([]byte, 100)
	a.Read(whole)
	pieces := make([]byte, 100)
	step := 1
	for off := 0; off < 100; {
		n := step
		if off+n > 100 {
			n = 100 - off
		}
		b.Read(pieces[off : off+n])
		off += n
		step = step*2 + 1
	}
	if !bytes.Equal(whole, pieces) {
		t.Fatal("CTR output depends on read chunking")
	}
}

func TestCTRValidation(t *testing.T) {
	if _, err := NewCTR(make([]byte, 15), make([]byte, 8)); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := NewCTR(make([]byte, 16), make([]byte, 7)); err == nil {
		t.Error("bad nonce accepted")
	}
}

// The bitsliced CTR generator must reproduce 64 scalar CTR streams.
func TestSlicedCTRMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	keys := make([][]byte, 64)
	nonces := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, 16)
		nonces[l] = make([]byte, 8)
		rng.Read(keys[l])
		rng.Read(nonces[l])
	}
	g, err := NewSlicedCTR(keys, nonces)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 3
	got := make([]byte, batches*BatchSize)
	for i := 0; i < batches; i++ {
		g.NextBatch(got[i*BatchSize:])
	}
	for l := 0; l < 64; l++ {
		ref, _ := NewCTR(keys[l], nonces[l])
		want := make([]byte, batches*16)
		ref.Read(want)
		for i := 0; i < batches; i++ {
			gotBlk := got[i*BatchSize+16*l : i*BatchSize+16*l+16]
			if !bytes.Equal(gotBlk, want[16*i:16*i+16]) {
				t.Fatalf("lane %d batch %d mismatch", l, i)
			}
		}
	}
}

func TestSlicedCTRValidation(t *testing.T) {
	keys := [][]byte{make([]byte, 16)}
	if _, err := NewSlicedCTR(keys, nil); err == nil {
		t.Error("nonce count mismatch accepted")
	}
	if _, err := NewSlicedCTR(keys, [][]byte{make([]byte, 7)}); err == nil {
		t.Error("bad nonce accepted")
	}
}

func TestPackUnpackBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	blocks := make([][16]byte, 64)
	for l := range blocks {
		rng.Read(blocks[l][:])
	}
	st := PackBlocks(blocks)
	back := UnpackBlocks(&st, 64)
	for l := range blocks {
		if blocks[l] != back[l] {
			t.Fatalf("lane %d round trip failed", l)
		}
	}
}

func BenchmarkScalarEncrypt(b *testing.B) {
	key := make([]byte, 16)
	c, _ := NewCipher(key)
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkSlicedEncrypt64Lanes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, 16)
		rng.Read(keys[l])
	}
	sl, _ := NewSliced(keys)
	var st [128]bitslice.V64
	b.SetBytes(64 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl.EncryptBlocks(&st)
	}
}

func BenchmarkSlicedCTR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 64)
	nonces := make([][]byte, 64)
	for l := range keys {
		keys[l] = make([]byte, 16)
		nonces[l] = make([]byte, 8)
		rng.Read(keys[l])
		rng.Read(nonces[l])
	}
	g, _ := NewSlicedCTR(keys, nonces)
	dst := make([]byte, BatchSize)
	b.SetBytes(BatchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NextBatch(dst)
	}
}
