package aes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// Cipher is the conventional scalar AES implementation — the row-major
// baseline of the paper's comparison. It supports 128/192/256-bit keys.
type Cipher struct {
	rounds int
	rk     [][16]byte // one 16-byte round key per AddRoundKey
}

// NewCipher builds an AES cipher for a 16, 24 or 32 byte key.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// expandKey implements the FIPS-197 key schedule.
func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	nw := 4 * (c.rounds + 1)
	w := make([]uint32, nw)
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < nw; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk-1])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.rk = make([][16]byte, c.rounds+1)
	for r := range c.rk {
		for j := 0; j < 4; j++ {
			binary.BigEndian.PutUint32(c.rk[r][4*j:], w[4*r+j])
		}
	}
}

// expandKey128 writes the 11 AES-128 round keys of key into rk without
// allocating — the rekey hot path of the bitsliced engines runs the key
// schedule once per lane per segment pass, so this must stay off the
// heap. The output is byte-identical to NewCipher(key).rk.
func expandKey128(key []byte, rk *[11][16]byte) {
	var w [44]uint32
	for i := 0; i < 4; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ uint32(rcon[i/4-1])<<24
		}
		w[i] = w[i-4] ^ t
	}
	for r := range rk {
		for j := 0; j < 4; j++ {
			binary.BigEndian.PutUint32(rk[r][4*j:], w[4*r+j])
		}
	}
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xFF])<<16 |
		uint32(sbox[w>>8&0xFF])<<8 | uint32(sbox[w&0xFF])
}

// Rounds returns the number of cipher rounds (10/12/14).
func (c *Cipher) Rounds() int { return c.rounds }

// Encrypt encrypts one 16-byte block (dst and src may overlap).
//
// The state is kept in the flat FIPS-197 input order: state[r + 4c] is
// the byte in row r, column c.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: block too short")
	}
	var st [16]byte
	copy(st[:], src[:16])
	addRoundKey(&st, &c.rk[0])
	for r := 1; r < c.rounds; r++ {
		subBytes(&st)
		shiftRows(&st)
		mixColumns(&st)
		addRoundKey(&st, &c.rk[r])
	}
	subBytes(&st)
	shiftRows(&st)
	addRoundKey(&st, &c.rk[c.rounds])
	copy(dst[:16], st[:])
}

func addRoundKey(st, rk *[16]byte) {
	for i := range st {
		st[i] ^= rk[i]
	}
}

func subBytes(st *[16]byte) {
	for i := range st {
		st[i] = sbox[st[i]]
	}
}

// shiftRows rotates row r left by r positions; row r occupies state
// indices r, r+4, r+8, r+12.
func shiftRows(st *[16]byte) {
	st[1], st[5], st[9], st[13] = st[5], st[9], st[13], st[1]
	st[2], st[6], st[10], st[14] = st[10], st[14], st[2], st[6]
	st[3], st[7], st[11], st[15] = st[15], st[3], st[7], st[11]
}

// xtime is the {02} multiple: one shift plus a conditional reduction.
func xtime(a byte) byte {
	return a<<1 ^ byte(int8(a)>>7)&0x1B
}

// mixColumns multiplies each column by the fixed MDS matrix.
func mixColumns(st *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := st[4*c], st[4*c+1], st[4*c+2], st[4*c+3]
		st[4*c] = xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3
		st[4*c+1] = a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3
		st[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3
		st[4*c+3] = xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3)
	}
}

// CTR is the scalar AES-CTR pseudo-random generator of paper Fig. 3: the
// input block is nonce (8 bytes) || counter (8 bytes, big-endian), and
// each encryption yields 16 bytes of output.
type CTR struct {
	c       *Cipher
	nonce   [8]byte
	counter uint64
	buf     [16]byte
	used    int
}

// NewCTR builds the generator from a key and an 8-byte nonce.
func NewCTR(key []byte, nonce []byte) (*CTR, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	if len(nonce) != 8 {
		return nil, fmt.Errorf("aes: nonce must be 8 bytes")
	}
	g := &CTR{c: c, used: 16}
	copy(g.nonce[:], nonce)
	return g, nil
}

// Read fills p with pseudo-random bytes; it never fails.
func (g *CTR) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if g.used == 16 {
			var in [16]byte
			copy(in[:8], g.nonce[:])
			binary.BigEndian.PutUint64(in[8:], g.counter)
			g.counter++
			g.c.Encrypt(g.buf[:], in[:])
			g.used = 0
		}
		k := copy(p, g.buf[g.used:])
		g.used += k
		p = p[k:]
	}
	return n, nil
}
