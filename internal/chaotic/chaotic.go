// Package chaotic implements a chaotic-iterations post-processing mode
// in the style of Bahi, Couchot and Guyeux's CIPRNG family: a generator
// is hardened by iterating a Boolean map whose perturbation input is the
// inner generator's output. In the XOR-form CIPRNG the map is the
// negation of every strategy-selected bit at once, which collapses to
//
//	x_{n+1} = x_n ⊕ w_{n+1},   output x_{n+1}
//
// over 64-bit words, where w is the inner keystream. The composition is
// a bijection of the inner word sequence for any fixed x_0 (each output
// word is the running XOR prefix of the inputs plus a constant), so it
// preserves the uniformity of a good inner generator while breaking the
// word-local structure of a flawed one: any bias that flips sign across
// consecutive words partially cancels in the prefix sums, and the
// chaotic orbit property of the underlying Boolean map (Devaney chaos,
// per Bahi et al.) guarantees sensitivity to the initial word x_0.
//
// The repository applies the mode per 2048-byte segment with a
// per-(lane, segment) x_0 derived from the seed schedule, so segments
// stay independently addressable and the canonical-stream property —
// identical bytes at every lane width — is untouched.
package chaotic

import "encoding/binary"

// Post applies XOR-form chaotic-iterations post-processing to seg in
// place: interpreting seg as little-endian 64-bit words, each word is
// replaced by the running XOR of x0 and all inner words up to and
// including it. len(seg) must be a multiple of 8 (core segments are).
func Post(seg []byte, x0 uint64) {
	x := x0
	for o := 0; o+8 <= len(seg); o += 8 {
		x ^= binary.LittleEndian.Uint64(seg[o:])
		binary.LittleEndian.PutUint64(seg[o:], x)
	}
}

// Unpost inverts Post for the same x0, recovering the inner keystream:
// each inner word is the XOR of two consecutive output words (the first
// with x0). It exists so tests can prove the mode is a bijection.
func Unpost(seg []byte, x0 uint64) {
	prev := x0
	for o := 0; o+8 <= len(seg); o += 8 {
		cur := binary.LittleEndian.Uint64(seg[o:])
		binary.LittleEndian.PutUint64(seg[o:], cur^prev)
		prev = cur
	}
}
