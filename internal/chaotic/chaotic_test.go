package chaotic

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/health"
)

func TestPostUnpostRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 8, 64, 2048} {
		seg := make([]byte, n)
		rng.Read(seg)
		orig := append([]byte(nil), seg...)
		x0 := rng.Uint64()
		Post(seg, x0)
		if n > 0 && bytes.Equal(seg, orig) {
			t.Errorf("n=%d: Post was a no-op", n)
		}
		Unpost(seg, x0)
		if !bytes.Equal(seg, orig) {
			t.Errorf("n=%d: Unpost(Post(seg)) != seg", n)
		}
	}
}

// Each output word must be the XOR prefix of x0 and the inner words —
// the collapsed XOR-form CIPRNG recurrence.
func TestPostIsPrefixXOR(t *testing.T) {
	words := []uint64{3, 0xFFFFFFFFFFFFFFFF, 0, 0x123456789ABCDEF0}
	seg := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(seg[8*i:], w)
	}
	const x0 = 0xA5A5A5A5A5A5A5A5
	Post(seg, x0)
	x := uint64(x0)
	for i, w := range words {
		x ^= w
		if got := binary.LittleEndian.Uint64(seg[8*i:]); got != x {
			t.Fatalf("word %d = %#x, want prefix %#x", i, got, x)
		}
	}
}

// Different x0 values must produce different orbits from the same inner
// stream (sensitivity to the initial condition).
func TestPostX0Sensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]byte, 256)
	rng.Read(a)
	b := append([]byte(nil), a...)
	Post(a, 1)
	Post(b, 2)
	if bytes.Equal(a, b) {
		t.Fatal("different x0 produced identical output")
	}
}

// Post over healthy input must stay healthy: the mode is a bijection of
// the word sequence, not a compressor.
func TestPostPreservesHealth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checker := health.NewChecker(health.Config{})
	seg := make([]byte, 2048)
	for i := 0; i < 16; i++ {
		rng.Read(seg)
		Post(seg, rng.Uint64())
		if err := checker.Check(seg); err != nil {
			t.Fatalf("segment %d unhealthy after Post: %v", i, err)
		}
	}
}

// A pathologically structured inner stream (constant words) must come
// out less structured: the prefix XOR turns a constant run into an
// alternating pattern, never a constant run of the same word.
func TestPostBreaksConstantRuns(t *testing.T) {
	seg := make([]byte, 64)
	for o := 0; o < len(seg); o += 8 {
		binary.LittleEndian.PutUint64(seg[o:], 0xDEADBEEFDEADBEEF)
	}
	Post(seg, 0x0123456789ABCDEF)
	w0 := binary.LittleEndian.Uint64(seg[0:])
	w1 := binary.LittleEndian.Uint64(seg[8:])
	if w0 == w1 {
		t.Fatal("constant input run survived Post unchanged")
	}
}
