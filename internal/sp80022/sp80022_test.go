package sp80022

import (
	"math"
	"testing"

	"repro/internal/curand"
)

func bitsFromString(s string) []uint8 {
	out := make([]uint8, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			out = append(out, 0)
		case '1':
			out = append(out, 1)
		}
	}
	return out
}

// piBits returns the leading bits of the binary expansion of π
// (11.0010010000111111... — the SP 800-22 example stream), built from the
// well-known hexadecimal expansion 3.243F6A8885A308D3...
func piBits(n int) []uint8 {
	const hexFrac = "243F6A8885A308D313198A2E03707344A4093822299F31D0082EFA98EC4E6C89"
	bits := []uint8{1, 1}
	for _, c := range hexFrac {
		var v int
		switch {
		case c >= '0' && c <= '9':
			v = int(c - '0')
		default:
			v = int(c-'A') + 10
		}
		for j := 3; j >= 0; j-- {
			bits = append(bits, uint8((v>>uint(j))&1))
		}
		if len(bits) >= n {
			break
		}
	}
	return bits[:n]
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.6f, want %.6f", name, got, want)
	}
}

// SP 800-22 rev 1a worked example §2.1.8: first 100 bits of π,
// P-value = 0.109599.
func TestFrequencyPiExample(t *testing.T) {
	p, err := Frequency(piBits(100))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "frequency(π,100)", p, 0.109599, 1e-5)
}

// §2.2.8: same stream, M = 10, P-value = 0.706438.
func TestBlockFrequencyPiExample(t *testing.T) {
	p, err := BlockFrequency(piBits(100), 10)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "blockfreq(π,100,M=10)", p, 0.706438, 1e-5)
}

// §2.3.8: same stream, P-value = 0.500798.
func TestRunsPiExample(t *testing.T) {
	p, err := Runs(piBits(100))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "runs(π,100)", p, 0.500798, 1e-5)
}

// §2.2.4 small example: ε = 0110011010, M = 3 → P-value = 0.801252.
func TestBlockFrequencySmallExample(t *testing.T) {
	bits := bitsFromString("0110011010")
	N := 3
	chi2 := 0.0
	for i := 0; i < N; i++ {
		pi := float64(onesCount(bits[i*3:(i+1)*3])) / 3
		chi2 += (pi - 0.5) * (pi - 0.5)
	}
	chi2 *= 4 * 3
	approx(t, "igamc(1.5, chi2/2)", igamc(1.5, chi2/2), 0.801252, 1e-5)
}

// §2.11.4 small example: ε = 0011011101, m = 3 → P1 = 0.808792,
// P2 = 0.670320.
func TestSerialSmallExample(t *testing.T) {
	p1, p2, err := Serial(bitsFromString("0011011101"), 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "serial p1", p1, 0.808792, 1e-5)
	approx(t, "serial p2", p2, 0.670320, 1e-5)
}

// §2.12.4 small example: ε = 0100110101, m = 3 → P-value = 0.261961.
func TestApproxEntropySmallExample(t *testing.T) {
	p, err := ApproximateEntropy(bitsFromString("0100110101"), 3)
	if err == nil {
		approx(t, "apen", p, 0.261961, 1e-4)
		return
	}
	// The stream is below our length floor; evaluate the formula directly.
	t.Skip("stream below suite length floor")
}

func TestIgamcSanity(t *testing.T) {
	// igamc(1, x) = e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		approx(t, "igamc(1,x)", igamc(1, x), math.Exp(-x), 1e-12)
	}
	// igamc(0.5, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.2, 1, 3} {
		approx(t, "igamc(0.5,x)", igamc(0.5, x), math.Erfc(math.Sqrt(x)), 1e-12)
	}
	// Complementarity.
	for _, a := range []float64{0.5, 2, 7.5} {
		for _, x := range []float64{0.3, 2, 9} {
			approx(t, "igam+igamc", igam(a, x)+igamc(a, x), 1, 1e-12)
		}
	}
	if igamc(2, 0) != 1 || igamc(0, 3) != 1 {
		t.Error("igamc boundary values wrong")
	}
}

func TestNormCDF(t *testing.T) {
	approx(t, "Φ(0)", normCDF(0), 0.5, 1e-15)
	approx(t, "Φ(1.96)", normCDF(1.96), 0.9750021, 1e-6)
	approx(t, "Φ(-1.96)", normCDF(-1.96), 0.0249979, 1e-6)
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	// Compare Bluestein (n = 12, non-power-of-two) with the O(n²) DFT.
	x := []float64{1, -1, 1, 1, -1, 1, -1, -1, 1, 1, 1, -1}
	X := dft(x)
	n := len(x)
	for k := 0; k < n; k++ {
		var re, im float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			re += x[j] * math.Cos(ang)
			im += x[j] * math.Sin(ang)
		}
		if math.Abs(re-real(X[k])) > 1e-9 || math.Abs(im-imag(X[k])) > 1e-9 {
			t.Fatalf("bin %d: (%g,%g) vs naive (%g,%g)", k, real(X[k]), imag(X[k]), re, im)
		}
	}
}

func TestFFTPow2MatchesNaive(t *testing.T) {
	x := []float64{3, 1, -2, 5, 0, -1, 2, 2}
	X := dft(x)
	for k := 0; k < 8; k++ {
		var re, im float64
		for j := 0; j < 8; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / 8
			re += x[j] * math.Cos(ang)
			im += x[j] * math.Sin(ang)
		}
		if math.Abs(re-real(X[k])) > 1e-9 || math.Abs(im-imag(X[k])) > 1e-9 {
			t.Fatalf("bin %d mismatch", k)
		}
	}
}

func TestRankProbabilities(t *testing.T) {
	approx(t, "P(rank=32)", rankProb(32, 32, 32), 0.2888, 1e-3)
	approx(t, "P(rank=31)", rankProb(32, 32, 31), 0.5776, 1e-3)
	p30 := 1 - rankProb(32, 32, 32) - rankProb(32, 32, 31)
	approx(t, "P(rank≤30)", p30, 0.1336, 1e-3)
}

func TestBinaryRank(t *testing.T) {
	var id [32]uint32
	for i := range id {
		id[i] = 1 << uint(i)
	}
	if binaryRank(&id) != 32 {
		t.Error("identity rank != 32")
	}
	var zero [32]uint32
	if binaryRank(&zero) != 0 {
		t.Error("zero rank != 0")
	}
	// Two identical rows: rank 31 at most.
	dup := id
	dup[5] = dup[7]
	if binaryRank(&dup) != 31 {
		t.Errorf("duplicate-row rank = %d, want 31", binaryRank(&dup))
	}
}

func TestBerlekampMasseyOnLFSRSequence(t *testing.T) {
	// A maximal LFSR of degree n has linear complexity exactly n.
	// x^7 + x + 1: s[t+7] = s[t+1] + s[t].
	seq := make([]uint8, 300)
	state := []uint8{1, 0, 0, 1, 0, 1, 1}
	for i := range seq {
		seq[i] = state[0]
		fb := state[1] ^ state[0]
		copy(state, state[1:])
		state[6] = fb
	}
	if L := berlekampMassey(seq); L != 7 {
		t.Errorf("linear complexity of degree-7 LFSR sequence = %d, want 7", L)
	}
}

func TestBerlekampMasseyEdges(t *testing.T) {
	if L := berlekampMassey(make([]uint8, 50)); L != 0 {
		t.Errorf("all-zeros complexity = %d, want 0", L)
	}
	one := make([]uint8, 50)
	one[49] = 1
	if L := berlekampMassey(one); L != 50 {
		t.Errorf("0...01 complexity = %d, want 50", L)
	}
	// Random data: L ≈ n/2.
	g := curand.NewMT19937(9)
	rnd := make([]uint8, 400)
	for i := range rnd {
		rnd[i] = uint8(g.Uint32() & 1)
	}
	L := berlekampMassey(rnd)
	if L < 190 || L > 210 {
		t.Errorf("random complexity = %d, want ≈ 200", L)
	}
}

func TestAperiodicTemplateCount(t *testing.T) {
	// Known counts of aperiodic templates: m=2 → 2, m=3 → 4, m=4 → 6,
	// m=9 → 148 (the standard NIST template set size).
	for _, tc := range []struct{ m, want int }{{2, 2}, {3, 4}, {4, 6}, {9, 148}} {
		if got := len(aperiodicTemplates(tc.m)); got != tc.want {
			t.Errorf("m=%d: %d templates, want %d", tc.m, got, tc.want)
		}
	}
	for _, tpl := range aperiodicTemplates(5) {
		if !isAperiodic(tpl) {
			t.Fatal("generator emitted periodic template")
		}
	}
}

func randomBits(n int, seed uint32) []uint8 {
	g := curand.NewMT19937(seed)
	bits := make([]uint8, n)
	for i := 0; i < n; i += 32 {
		w := g.Uint32()
		for j := 0; j < 32 && i+j < n; j++ {
			bits[i+j] = uint8((w >> uint(j)) & 1)
		}
	}
	return bits
}

// Every test must pass on good generator output and reject degenerate
// input.
func TestBatteryAcceptsGoodRejectsBad(t *testing.T) {
	good := randomBits(1<<17, 7) // 131072 bits
	zeros := make([]uint8, 1<<17)
	alternating := make([]uint8, 1<<17)
	for i := range alternating {
		alternating[i] = uint8(i & 1)
	}

	check := func(name string, p float64, err error, wantPass bool) {
		t.Helper()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		if wantPass && p < Alpha {
			t.Errorf("%s rejected good data: p=%g", name, p)
		}
		if !wantPass && p >= Alpha {
			t.Errorf("%s accepted degenerate data: p=%g", name, p)
		}
	}

	p, err := Frequency(good)
	check("frequency/good", p, err, true)
	p, err = Frequency(zeros)
	check("frequency/zeros", p, err, false)

	p, err = BlockFrequency(good, 128)
	check("blockfreq/good", p, err, true)
	p, err = BlockFrequency(zeros, 128)
	check("blockfreq/zeros", p, err, false)

	p, err = Runs(good)
	check("runs/good", p, err, true)
	p, err = Runs(alternating)
	check("runs/alternating", p, err, false)

	f, bwd, err := CumulativeSums(good)
	check("cusum-f/good", f, err, true)
	check("cusum-b/good", bwd, err, true)
	f, _, err = CumulativeSums(zeros)
	check("cusum/zeros", f, err, false)

	p, err = LongestRun(good)
	check("longestrun/good", p, err, true)
	p, err = LongestRun(alternating)
	check("longestrun/alternating", p, err, false)

	p, err = Rank(good)
	check("rank/good", p, err, true)
	p, err = Rank(zeros)
	check("rank/zeros", p, err, false)

	p, err = DFT(good)
	check("dft/good", p, err, true)
	p, err = DFT(alternating)
	check("dft/alternating", p, err, false)

	p, err = OverlappingTemplate(good)
	check("overlapping/good", p, err, true)
	ones := make([]uint8, 1<<17)
	for i := range ones {
		ones[i] = 1
	}
	p, err = OverlappingTemplate(ones)
	check("overlapping/ones", p, err, false)

	p, err = ApproximateEntropy(good, 10)
	check("apen/good", p, err, true)
	p, err = ApproximateEntropy(alternating, 10)
	check("apen/alternating", p, err, false)

	p1, p2, err := Serial(good, 16)
	check("serial1/good", p1, err, true)
	check("serial2/good", p2, err, true)
	p1, _, err = Serial(alternating, 16)
	check("serial/alternating", p1, err, false)

	p, err = LinearComplexity(good, 500)
	check("lincomplex/good", p, err, true)

	trs, err := NonOverlappingTemplate(good, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 148 {
		t.Fatalf("expected 148 template results, got %d", len(trs))
	}
	fails := 0
	for _, tr := range trs {
		if tr.P < Alpha {
			fails++
		}
	}
	if fails > 8 { // 148 trials at α=0.01: >8 failures is wildly unlikely
		t.Errorf("nonoverlapping: %d of 148 templates rejected good data", fails)
	}
}

func TestUniversalOnGoodData(t *testing.T) {
	bits := randomBits(500000, 3)
	p, err := Universal(bits)
	if err != nil {
		t.Fatal(err)
	}
	if p < Alpha {
		t.Errorf("universal rejected good data: p=%g", p)
	}
	if _, err := Universal(randomBits(1000, 3)); err == nil {
		t.Error("universal accepted short stream")
	}
}

func TestRandomExcursionsOnGoodData(t *testing.T) {
	bits := randomBits(1<<20, 11)
	ers, err := RandomExcursions(bits)
	if err != nil {
		t.Skipf("not enough cycles in this stream: %v", err)
	}
	if len(ers) != 8 {
		t.Fatalf("want 8 states, got %d", len(ers))
	}
	for _, er := range ers {
		if er.P < 0.0001 {
			t.Errorf("state %d: p=%g", er.State, er.P)
		}
	}
	vrs, err := RandomExcursionsVariant(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(vrs) != 18 {
		t.Fatalf("want 18 states, got %d", len(vrs))
	}
}

func TestRandomExcursionsNotApplicable(t *testing.T) {
	ones := make([]uint8, 10000)
	for i := range ones {
		ones[i] = 1
	}
	if _, err := RandomExcursions(ones); err == nil {
		t.Error("monotone walk accepted (J=1)")
	}
	if _, err := RandomExcursionsVariant(ones); err == nil {
		t.Error("variant: monotone walk accepted")
	}
}

func TestShortStreamErrors(t *testing.T) {
	short := make([]uint8, 50)
	if _, err := Frequency(short); err == nil {
		t.Error("frequency accepted 50 bits")
	}
	if _, err := Runs(short); err == nil {
		t.Error("runs accepted 50 bits")
	}
	if _, _, err := CumulativeSums(short); err == nil {
		t.Error("cusum accepted 50 bits")
	}
	if _, err := LongestRun(short); err == nil {
		t.Error("longestrun accepted 50 bits")
	}
	if _, err := Rank(short); err == nil {
		t.Error("rank accepted 50 bits")
	}
}

func TestSummarizeAndVerdict(t *testing.T) {
	// 100 streams of 2^14 bits from distinct Philox keys.
	var perStream [][]Result
	for s := 0; s < 100; s++ {
		g := curand.NewPhilox4x32(uint64(s))
		bits := make([]uint8, 1<<14)
		for i := 0; i < len(bits); i += 32 {
			w := g.Uint32()
			for j := 0; j < 32; j++ {
				bits[i+j] = uint8((w >> uint(j)) & 1)
			}
		}
		p, err := Frequency(bits)
		r, err2 := Runs(bits)
		perStream = append(perStream, []Result{
			{Name: "Frequency", PValues: []float64{p}, Err: err},
			{Name: "Runs", PValues: []float64{r}, Err: err2},
		})
	}
	sums := Summarize(perStream)
	if len(sums) != 2 {
		t.Fatalf("want 2 summaries, got %d", len(sums))
	}
	for _, s := range sums {
		if s.Streams != 100 {
			t.Errorf("%s: %d streams", s.Name, s.Streams)
		}
		if !s.Verdict() {
			t.Errorf("%s failed on good data: proportion %.3f uniformity %.4f",
				s.Name, s.Proportion, s.Uniformity)
		}
		if s.String() == "" {
			t.Error("empty summary row")
		}
	}
}

func TestProportionBounds(t *testing.T) {
	lo, hi := ProportionBounds(1000, 0.01)
	approx(t, "lo", lo, 0.9805607, 1e-4)
	approx(t, "hi", hi, 0.9994393, 1e-4)
	lo, hi = ProportionBounds(0, 0.01)
	if lo != 0 || hi != 1 {
		t.Error("zero-stream bounds")
	}
}

func TestUniformityPValue(t *testing.T) {
	// Perfectly uniform bins → chi2 = 0 → P = 1.
	ps := make([]float64, 1000)
	for i := range ps {
		ps[i] = (float64(i%10) + 0.5) / 10
	}
	if p := UniformityPValue(ps); p < 0.999 {
		t.Errorf("uniform p-values scored %g", p)
	}
	// All mass in one bin → tiny P.
	for i := range ps {
		ps[i] = 0.55
	}
	if p := UniformityPValue(ps); p > 1e-10 {
		t.Errorf("degenerate p-values scored %g", p)
	}
	if UniformityPValue(nil) != 0 {
		t.Error("empty set should score 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
}

func TestRunAllOnGoodStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full battery is slow")
	}
	bits := randomBits(1<<20, 77)
	results := RunAll(bits, Params{})
	if len(results) != len(TestNames) {
		t.Fatalf("want %d results, got %d", len(TestNames), len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			// Only the excursions tests may be not-applicable.
			if r.Name != "RandomExcursions" && r.Name != "RandomExcursionsVariant" {
				t.Errorf("%s: %v", r.Name, r.Err)
			}
			continue
		}
		for _, p := range r.PValues {
			if p < 0 || p > 1 {
				t.Errorf("%s: p-value %g out of range", r.Name, p)
			}
		}
	}
}

func BenchmarkFrequency1Mbit(b *testing.B) {
	bits := randomBits(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Frequency(bits)
	}
}

func BenchmarkDFT1Mbit(b *testing.B) {
	bits := randomBits(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFT(bits)
	}
}

func BenchmarkBerlekampMassey500(b *testing.B) {
	bits := randomBits(500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		berlekampMassey(bits)
	}
}
