package sp80022

// berlekampMassey returns the linear complexity L of a bit sequence: the
// length of the shortest LFSR that generates it (SP 800-22 §3.10's core
// routine, and the converse of this repository's lfsr package — a
// sequence from an n-bit LFSR must come back as L ≤ n).
func berlekampMassey(s []uint8) int {
	n := len(s)
	c := make([]uint8, n+1)
	b := make([]uint8, n+1)
	t := make([]uint8, n+1)
	c[0], b[0] = 1, 1
	L, m := 0, -1
	for i := 0; i < n; i++ {
		// Discrepancy d = s[i] + Σ_{j=1..L} c[j]·s[i-j].
		d := s[i]
		for j := 1; j <= L; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			copy(t, c)
			shift := i - m
			for j := 0; j+shift <= n; j++ {
				c[j+shift] ^= b[j]
			}
			if 2*L <= i {
				L = i + 1 - L
				m = i
				copy(b, t)
			}
		}
	}
	return L
}
