package sp80022

// BitsFromBytes expands a byte buffer into the suite's one-bit-per-element
// representation, LSB-first within each byte.
func BitsFromBytes(p []byte) []uint8 {
	bits := make([]uint8, 8*len(p))
	for i, b := range p {
		for j := 0; j < 8; j++ {
			bits[8*i+j] = (b >> uint(j)) & 1
		}
	}
	return bits
}

// BitsFromWords expands uint64 words into bits, LSB-first within each
// word — the natural adapter for the bitsliced engines' raw keystream
// words.
func BitsFromWords(ws []uint64) []uint8 {
	bits := make([]uint8, 64*len(ws))
	for i, w := range ws {
		for j := 0; j < 64; j++ {
			bits[64*i+j] = uint8((w >> uint(j)) & 1)
		}
	}
	return bits
}

// onesCount counts the set bits of a stream.
func onesCount(bits []uint8) int {
	c := 0
	for _, b := range bits {
		c += int(b)
	}
	return c
}
