package sp80022

import "math"

// Autocorrelation implements the serial autocorrelation criterion the
// paper's abstract cites alongside NIST ("statistical randomness and
// bit-wise correlation criteria"): for a lag d, the statistic counts
// agreements between the stream and its d-shifted self,
//
//	A(d) = Σ_{i<n-d} ε_i ⊕ ε_{i+d},
//
// which under H0 is Binomial(n−d, 1/2); the p-value is the two-sided
// normal tail of the standardized count.
func Autocorrelation(bits []uint8, d int) (float64, error) {
	n := len(bits)
	if d < 1 || n-d < 100 {
		return 0, errShort
	}
	a := 0
	for i := 0; i+d < n; i++ {
		a += int(bits[i] ^ bits[i+d])
	}
	m := n - d
	z := (float64(a) - float64(m)/2) / math.Sqrt(float64(m)/4)
	return math.Erfc(math.Abs(z) / math.Sqrt2), nil
}

// CrossCorrelation measures the agreement between two equal-length bit
// streams — the inter-lane decorrelation check motivated by the paper's
// §4.3 warning that parallel LFSR lanes "should be carefully initialized
// to eliminate any statistical correlation". The p-value is the
// two-sided tail of the standardized Hamming-agreement count.
func CrossCorrelation(a, b []uint8) (float64, error) {
	if len(a) != len(b) {
		return 0, errShort
	}
	n := len(a)
	if n < 100 {
		return 0, errShort
	}
	agree := 0
	for i := range a {
		agree += int(1 ^ a[i] ^ b[i])
	}
	z := (float64(agree) - float64(n)/2) / math.Sqrt(float64(n)/4)
	return math.Erfc(math.Abs(z) / math.Sqrt2), nil
}
