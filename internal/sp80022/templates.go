package sp80022

// aperiodicTemplates enumerates all aperiodic bit templates of length m:
// templates B with no self-overlap, i.e. no shift 0 < j < m for which
// B[0:m-j] == B[j:m]. These are the template set of the non-overlapping
// template matching test (148 templates for the standard m = 9).
func aperiodicTemplates(m int) [][]uint8 {
	if m <= 0 || m > 16 {
		panic("sp80022: template length out of range [1,16]")
	}
	var out [][]uint8
	for v := 0; v < 1<<uint(m); v++ {
		b := make([]uint8, m)
		for i := 0; i < m; i++ {
			b[i] = uint8((v >> uint(m-1-i)) & 1)
		}
		if isAperiodic(b) {
			out = append(out, b)
		}
	}
	return out
}

func isAperiodic(b []uint8) bool {
	m := len(b)
	for j := 1; j < m; j++ {
		match := true
		for i := 0; i+j < m; i++ {
			if b[i] != b[i+j] {
				match = false
				break
			}
		}
		if match {
			return false
		}
	}
	return true
}
