package sp80022

import (
	"fmt"
	"math"
	"sort"
)

// Result is one test's outcome on one bit stream. Tests that emit several
// p-values (cusum, serial, templates, excursions) contribute them all.
type Result struct {
	Name    string
	PValues []float64
	Err     error // set when the test was not applicable to this stream
}

// Params configures the suite run; zero values select the SP 800-22
// defaults used by the paper.
type Params struct {
	BlockFrequencyM    int // §2.2 block size (default 128)
	NonOverlappingM    int // §2.7 template length (default 9)
	ApproxEntropyM     int // §2.12 block length (default 10)
	SerialM            int // §2.11 block length (default 16)
	LinearComplexityM  int // §2.10 block length (default 500)
	SkipExpensiveTests bool
}

func (p *Params) defaults() {
	if p.BlockFrequencyM == 0 {
		p.BlockFrequencyM = 128
	}
	if p.NonOverlappingM == 0 {
		p.NonOverlappingM = 9
	}
	if p.ApproxEntropyM == 0 {
		p.ApproxEntropyM = 10
	}
	if p.SerialM == 0 {
		p.SerialM = 16
	}
	if p.LinearComplexityM == 0 {
		p.LinearComplexityM = 500
	}
}

// TestNames lists the suite's tests in Table 3 order, followed by the
// three extensions.
var TestNames = []string{
	"Frequency", "BlockFrequency", "CumulativeSums", "Runs", "LongestRun",
	"Rank", "FFT", "NonOverlappingTemplate", "OverlappingTemplate",
	"ApproximateEntropy", "Serial", "LinearComplexity",
	"Universal", "RandomExcursions", "RandomExcursionsVariant",
}

// RunAll executes the full battery on one bit stream.
func RunAll(bits []uint8, params Params) []Result {
	params.defaults()
	var out []Result
	add := func(name string, ps []float64, err error) {
		out = append(out, Result{Name: name, PValues: ps, Err: err})
	}
	one := func(name string, p float64, err error) {
		if err != nil {
			add(name, nil, err)
			return
		}
		add(name, []float64{p}, nil)
	}

	p, err := Frequency(bits)
	one("Frequency", p, err)
	p, err = BlockFrequency(bits, params.BlockFrequencyM)
	one("BlockFrequency", p, err)
	f, b, err := CumulativeSums(bits)
	if err != nil {
		add("CumulativeSums", nil, err)
	} else {
		add("CumulativeSums", []float64{f, b}, nil)
	}
	p, err = Runs(bits)
	one("Runs", p, err)
	p, err = LongestRun(bits)
	one("LongestRun", p, err)
	p, err = Rank(bits)
	one("Rank", p, err)
	p, err = DFT(bits)
	one("FFT", p, err)
	if trs, err := NonOverlappingTemplate(bits, params.NonOverlappingM); err != nil {
		add("NonOverlappingTemplate", nil, err)
	} else {
		ps := make([]float64, len(trs))
		for i, tr := range trs {
			ps[i] = tr.P
		}
		add("NonOverlappingTemplate", ps, nil)
	}
	p, err = OverlappingTemplate(bits)
	one("OverlappingTemplate", p, err)
	p, err = ApproximateEntropy(bits, params.ApproxEntropyM)
	one("ApproximateEntropy", p, err)
	p1, p2, err := Serial(bits, params.SerialM)
	if err != nil {
		add("Serial", nil, err)
	} else {
		add("Serial", []float64{p1, p2}, nil)
	}
	if !params.SkipExpensiveTests {
		p, err = LinearComplexity(bits, params.LinearComplexityM)
		one("LinearComplexity", p, err)
	}
	p, err = Universal(bits)
	one("Universal", p, err)
	if ers, err := RandomExcursions(bits); err != nil {
		add("RandomExcursions", nil, err)
	} else {
		ps := make([]float64, len(ers))
		for i, er := range ers {
			ps[i] = er.P
		}
		add("RandomExcursions", ps, nil)
	}
	if ers, err := RandomExcursionsVariant(bits); err != nil {
		add("RandomExcursionsVariant", nil, err)
	} else {
		ps := make([]float64, len(ers))
		for i, er := range ers {
			ps[i] = er.P
		}
		add("RandomExcursionsVariant", ps, nil)
	}
	return out
}

// Summary aggregates one test's p-values across many streams the way the
// paper's Table 3 reports them: the proportion of p-values ≥ α, and the
// uniformity P-value (a chi-square over ten equal p-value bins, §4.2.2).
type Summary struct {
	Name       string
	Streams    int     // number of contributing p-values
	Proportion float64 // share passing at α
	Uniformity float64 // P-value of the uniformity chi-square
}

// Summarize collapses per-stream results into per-test summaries.
func Summarize(perStream [][]Result) []Summary {
	byName := map[string][]float64{}
	var order []string
	for _, results := range perStream {
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			if _, seen := byName[r.Name]; !seen {
				order = append(order, r.Name)
			}
			byName[r.Name] = append(byName[r.Name], r.PValues...)
		}
	}
	out := make([]Summary, 0, len(order))
	for _, name := range order {
		ps := byName[name]
		out = append(out, Summary{
			Name:       name,
			Streams:    len(ps),
			Proportion: Proportion(ps, Alpha),
			Uniformity: UniformityPValue(ps),
		})
	}
	return out
}

// Proportion returns the share of p-values at or above alpha.
func Proportion(ps []float64, alpha float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	pass := 0
	for _, p := range ps {
		if p >= alpha {
			pass++
		}
	}
	return float64(pass) / float64(len(ps))
}

// ProportionBounds returns the acceptance interval for the proportion
// statistic at the given sample size (p̂ ± 3·sqrt(p̂(1−p̂)/s), §4.2.1).
func ProportionBounds(streams int, alpha float64) (lo, hi float64) {
	if streams == 0 {
		return 0, 1
	}
	phat := 1 - alpha
	d := 3 * math.Sqrt(phat*alpha/float64(streams))
	return phat - d, phat + d
}

// UniformityPValue computes the P-value of the chi-square uniformity test
// over ten p-value bins (§4.2.2); SP 800-22 deems the distribution uniform
// when it is ≥ 0.0001.
func UniformityPValue(ps []float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	var bins [10]int
	for _, p := range ps {
		i := int(p * 10)
		if i > 9 {
			i = 9
		}
		if i < 0 {
			i = 0
		}
		bins[i]++
	}
	e := float64(len(ps)) / 10
	chi2 := 0.0
	for _, c := range bins {
		chi2 += sq(float64(c)-e) / e
	}
	return igamc(9.0/2, chi2/2)
}

// Verdict reports whether a summary passes both SP 800-22 acceptance
// criteria.
func (s Summary) Verdict() bool {
	lo, _ := ProportionBounds(s.Streams, Alpha)
	return s.Proportion >= lo && s.Uniformity >= 0.0001
}

// String renders the summary as one Table 3 row.
func (s Summary) String() string {
	status := "Success"
	if !s.Verdict() {
		status = "FAIL"
	}
	return fmt.Sprintf("%-24s %-10.6f %-10.4f %s", s.Name, s.Uniformity, s.Proportion, status)
}

// Median is a helper for reporting: the median of a p-value set.
func Median(ps []float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	c := append([]float64(nil), ps...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}
