package sp80022

import (
	"math"
	"testing"

	"repro/internal/curand"
)

// The theoretical class-probability tables used by the chi-square tests
// must each sum to 1 (typos in transcribed constants are the classic
// failure mode of sts ports).
func TestClassProbabilitiesSumToOne(t *testing.T) {
	sum := 0.0
	for _, p := range overlappingPi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("overlapping-template probabilities sum to %v", sum)
	}
	sum = 0
	for _, p := range linearComplexityPi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("linear-complexity probabilities sum to %v", sum)
	}
	for _, x := range []int{-4, -3, -2, -1, 1, 2, 3, 4} {
		sum = 0
		for k := 0; k <= 5; k++ {
			sum += excursionPi(k, x)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("excursion probabilities for x=%d sum to %v", x, sum)
		}
	}
	// Longest-run tables.
	for _, pi := range [][]float64{
		{0.21484375, 0.3671875, 0.23046875, 0.1875},
		{0.1174035788, 0.242955959, 0.249363483, 0.17517706, 0.102701071, 0.112398847},
		{0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727},
	} {
		sum = 0
		for _, p := range pi {
			sum += p
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("longest-run table sums to %v", sum)
		}
	}
	// Rank probabilities over all possible ranks.
	sum = 0
	for r := 0; r <= 32; r++ {
		sum += rankProb(32, 32, r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank probabilities sum to %v", sum)
	}
}

func TestBitsFromWords(t *testing.T) {
	bits := BitsFromWords([]uint64{1, 1 << 63})
	if len(bits) != 128 {
		t.Fatalf("length %d", len(bits))
	}
	if bits[0] != 1 || bits[1] != 0 || bits[63] != 0 || bits[64+63] != 1 {
		t.Fatal("word bit order wrong")
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	p.defaults()
	if p.BlockFrequencyM != 128 || p.NonOverlappingM != 9 ||
		p.ApproxEntropyM != 10 || p.SerialM != 16 || p.LinearComplexityM != 500 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	// Non-zero values survive.
	q := Params{SerialM: 12}
	q.defaults()
	if q.SerialM != 12 {
		t.Error("explicit parameter overwritten")
	}
}

func TestRunAllSkipExpensive(t *testing.T) {
	bits := randomBits(1<<17, 5)
	results := RunAll(bits, Params{SkipExpensiveTests: true})
	for _, r := range results {
		if r.Name == "LinearComplexity" {
			t.Fatal("linear complexity ran despite SkipExpensiveTests")
		}
	}
	if len(results) != len(TestNames)-1 {
		t.Errorf("got %d results, want %d", len(results), len(TestNames)-1)
	}
}

// Under H0 the p-values of a single test over many independent streams
// must be roughly uniform — the self-check SP 800-22 §4 prescribes.
func TestPValueUniformityUnderH0(t *testing.T) {
	const streams = 200
	ps := make([]float64, 0, streams)
	for s := 0; s < streams; s++ {
		g := curand.NewPhilox4x32(uint64(s) + 1)
		bits := make([]uint8, 1<<13)
		for i := 0; i < len(bits); i += 32 {
			w := g.Uint32()
			for j := 0; j < 32; j++ {
				bits[i+j] = uint8((w >> uint(j)) & 1)
			}
		}
		p, err := Frequency(bits)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if u := UniformityPValue(ps); u < 1e-4 {
		t.Errorf("frequency p-values not uniform under H0: u=%g", u)
	}
	if prop := Proportion(ps, Alpha); prop < 0.95 {
		t.Errorf("proportion %v too low under H0", prop)
	}
}

// The non-overlapping count logic must match a naive scan oracle.
func TestNonOverlappingCountOracle(t *testing.T) {
	seg := []uint8{1, 0, 1, 1, 0, 1, 1, 0, 1, 1, 0, 1}
	tpl := []uint8{1, 0, 1}
	// Naive non-overlapping scan.
	want := 0
	for i := 0; i+3 <= len(seg); {
		if seg[i] == tpl[0] && seg[i+1] == tpl[1] && seg[i+2] == tpl[2] {
			want++
			i += 3
		} else {
			i++
		}
	}
	got := 0
	for i := 0; i+3 <= len(seg); {
		if matchAt(seg, tpl, i) {
			got++
			i += 3
		} else {
			i++
		}
	}
	if got != want || got != 4 {
		t.Fatalf("count %d, oracle %d, expected 4", got, want)
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := NonOverlappingTemplate(make([]uint8, 10), 9); err == nil {
		t.Error("short stream accepted")
	}
	if _, err := OverlappingTemplate(make([]uint8, 100)); err == nil {
		t.Error("short stream accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m=0 templates")
		}
	}()
	aperiodicTemplates(0)
}

func TestSummarizeSkipsErrored(t *testing.T) {
	perStream := [][]Result{
		{{Name: "A", PValues: []float64{0.5}}},
		{{Name: "A", Err: errShort}},
	}
	sums := Summarize(perStream)
	if len(sums) != 1 || sums[0].Streams != 1 {
		t.Fatalf("unexpected summary %+v", sums)
	}
}

func TestCumulativeSumsDirections(t *testing.T) {
	// A stream with a drift early on must score differently forward vs
	// backward.
	// 30 ones, then 90 zeros, then balanced alternation: the forward walk
	// peaks at |S| = 60 while the backward walk peaks at |S| = 90.
	bits := make([]uint8, 2000)
	for i := range bits {
		switch {
		case i < 30:
			bits[i] = 1
		case i < 120:
			bits[i] = 0
		default:
			bits[i] = uint8(i & 1)
		}
	}
	f, b, err := CumulativeSums(bits)
	if err != nil {
		t.Fatal(err)
	}
	if f == b {
		t.Error("forward and backward cusum identical on asymmetric stream")
	}
}

func TestDFTPow2AndNonPow2Lengths(t *testing.T) {
	// Both paths must work; 2^14 exercises the radix-2 kernel, 10^4 the
	// Bluestein path.
	for _, n := range []int{1 << 14, 10000} {
		p, err := DFT(randomBits(n, 9))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p < Alpha {
			t.Errorf("n=%d: good data rejected p=%g", n, p)
		}
	}
}

func TestLinearComplexityDegenerate(t *testing.T) {
	// Period-2 data has linear complexity 2 per block: wildly un-random.
	bits := make([]uint8, 100000)
	for i := range bits {
		bits[i] = uint8(i & 1)
	}
	p, err := LinearComplexity(bits, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p >= Alpha {
		t.Errorf("alternating stream passed linear complexity: p=%g", p)
	}
}

func TestUniversalDegenerate(t *testing.T) {
	bits := make([]uint8, 500000)
	for i := range bits {
		bits[i] = uint8(i & 1)
	}
	p, err := Universal(bits)
	if err != nil {
		t.Fatal(err)
	}
	if p >= Alpha {
		t.Errorf("alternating stream passed universal: p=%g", p)
	}
}
