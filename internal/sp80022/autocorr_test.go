package sp80022

import "testing"

func TestAutocorrelationGoodData(t *testing.T) {
	bits := randomBits(1<<16, 21)
	for _, d := range []int{1, 2, 8, 64, 1000} {
		p, err := Autocorrelation(bits, d)
		if err != nil {
			t.Fatal(err)
		}
		if p < 1e-4 {
			t.Errorf("lag %d: good data rejected p=%g", d, p)
		}
	}
}

func TestAutocorrelationDetectsPeriodicity(t *testing.T) {
	// Period-8 data has perfect autocorrelation at lag 8.
	bits := make([]uint8, 1<<14)
	pattern := []uint8{1, 0, 1, 1, 0, 0, 1, 0}
	for i := range bits {
		bits[i] = pattern[i%8]
	}
	p, err := Autocorrelation(bits, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Errorf("period-8 stream passed lag-8 autocorrelation: p=%g", p)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(make([]uint8, 150), 0); err == nil {
		t.Error("lag 0 accepted")
	}
	if _, err := Autocorrelation(make([]uint8, 150), 100); err == nil {
		t.Error("lag leaving < 100 bits accepted")
	}
}

func TestCrossCorrelation(t *testing.T) {
	a := randomBits(1<<14, 31)
	b := randomBits(1<<14, 32)
	p, err := CrossCorrelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("independent streams flagged: p=%g", p)
	}
	// A stream against itself is maximally correlated.
	p, err = CrossCorrelation(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Errorf("identical streams passed: p=%g", p)
	}
	if _, err := CrossCorrelation(a, a[:100]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CrossCorrelation(a[:50], a[:50]); err == nil {
		t.Error("short streams accepted")
	}
}
