// Package sp80022 implements the NIST SP 800-22 rev. 1a statistical test
// suite for random and pseudorandom number generators — the battery the
// paper's Table 3 applies to the bitsliced MICKEY output (1000 streams of
// 10^6 bits, significance α = 0.01).
//
// All fifteen tests of the publication are provided (Table 3 reports
// twelve of them; Universal and the two Random-Excursions tests are the
// extensions). Each test returns one or more p-values; Summary aggregates
// per-stream p-values into the proportion-passing and uniformity P-value
// columns the paper reports.
//
// Bit streams are represented as []uint8 with one bit per element.
package sp80022

import (
	"errors"
	"math"
)

// Alpha is the suite's significance level (SP 800-22 and the paper use
// 0.01).
const Alpha = 0.01

var errShort = errors.New("sp80022: bit stream too short for this test")

// igamc computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a,x)/Γ(a), following the Cephes implementation used by the
// NIST sts reference code.
func igamc(a, x float64) float64 {
	if x <= 0 || a <= 0 {
		return 1.0
	}
	if x < 1.0 || x < a {
		return 1.0 - igam(a, x)
	}
	lg, _ := math.Lgamma(a)
	ax := a*math.Log(x) - x - lg
	if ax < -709.0 {
		return 0.0
	}
	eax := math.Exp(ax)

	// Continued fraction (modified Lentz).
	const big = 4.503599627370496e15
	const biginv = 2.22044604925031308085e-16
	y := 1.0 - a
	z := x + y + 1.0
	c := 0.0
	pkm2 := 1.0
	qkm2 := x
	pkm1 := x + 1.0
	qkm1 := z * x
	ans := pkm1 / qkm1
	for {
		c += 1.0
		y += 1.0
		z += 2.0
		yc := y * c
		pk := pkm1*z - pkm2*yc
		qk := qkm1*z - qkm2*yc
		var t float64
		if qk != 0 {
			r := pk / qk
			t = math.Abs((ans - r) / r)
			ans = r
		} else {
			t = 1.0
		}
		pkm2, pkm1 = pkm1, pk
		qkm2, qkm1 = qkm1, qk
		if math.Abs(pk) > big {
			pkm2 *= biginv
			pkm1 *= biginv
			qkm2 *= biginv
			qkm1 *= biginv
		}
		if t <= 1.11022302462515654042e-16 {
			break
		}
	}
	return ans * eax
}

// igam computes the regularized lower incomplete gamma function P(a, x).
func igam(a, x float64) float64 {
	if x <= 0 || a <= 0 {
		return 0.0
	}
	if x > 1.0 && x > a {
		return 1.0 - igamc(a, x)
	}
	lg, _ := math.Lgamma(a)
	ax := a*math.Log(x) - x - lg
	if ax < -709.0 {
		return 0.0
	}
	eax := math.Exp(ax)

	// Power series.
	r := a
	c := 1.0
	ans := 1.0
	for {
		r += 1.0
		c *= x / r
		ans += c
		if c/ans <= 1.11022302462515654042e-16 {
			break
		}
	}
	return ans * eax / a
}

// normCDF is the standard normal cumulative distribution function Φ(x).
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
