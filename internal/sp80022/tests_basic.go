package sp80022

import (
	"fmt"
	"math"
)

// Frequency is the monobit test (SP 800-22 §2.1): the proportion of ones
// must be consistent with 1/2.
func Frequency(bits []uint8) (float64, error) {
	n := len(bits)
	if n < 100 {
		return 0, errShort
	}
	s := 0
	for _, b := range bits {
		s += 2*int(b) - 1
	}
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(n))
	return math.Erfc(sObs / math.Sqrt2), nil
}

// BlockFrequency is the frequency-within-a-block test (§2.2) with block
// size M.
func BlockFrequency(bits []uint8, M int) (float64, error) {
	n := len(bits)
	if M < 2 || n < M {
		return 0, errShort
	}
	N := n / M
	chi2 := 0.0
	for i := 0; i < N; i++ {
		pi := float64(onesCount(bits[i*M:(i+1)*M])) / float64(M)
		d := pi - 0.5
		chi2 += d * d
	}
	chi2 *= 4 * float64(M)
	return igamc(float64(N)/2, chi2/2), nil
}

// Runs is the runs test (§2.3): the number of uninterrupted runs of
// identical bits must match expectation.
func Runs(bits []uint8) (float64, error) {
	n := len(bits)
	if n < 100 {
		return 0, errShort
	}
	pi := float64(onesCount(bits)) / float64(n)
	// Prerequisite frequency check; failing it pins the p-value to 0.
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		return 0, nil
	}
	v := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			v++
		}
	}
	num := math.Abs(float64(v) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	return math.Erfc(num / den), nil
}

// CumulativeSums is the cusum test (§2.13); it returns the forward and
// backward p-values (the paper's Table 3 reports the pair's aggregate).
func CumulativeSums(bits []uint8) (forward, backward float64, err error) {
	n := len(bits)
	if n < 100 {
		return 0, 0, errShort
	}
	cusum := func(reverse bool) float64 {
		s, z := 0, 0
		for i := 0; i < n; i++ {
			b := bits[i]
			if reverse {
				b = bits[n-1-i]
			}
			s += 2*int(b) - 1
			if a := abs(s); a > z {
				z = a
			}
		}
		zf := float64(z)
		nf := float64(n)
		sqn := math.Sqrt(nf)
		lo1 := int(math.Floor((-nf/zf + 1) / 4))
		hi := int(math.Floor((nf/zf - 1) / 4))
		sum1 := 0.0
		for k := lo1; k <= hi; k++ {
			sum1 += normCDF((4*float64(k)+1)*zf/sqn) - normCDF((4*float64(k)-1)*zf/sqn)
		}
		lo2 := int(math.Floor((-nf/zf - 3) / 4))
		sum2 := 0.0
		for k := lo2; k <= hi; k++ {
			sum2 += normCDF((4*float64(k)+3)*zf/sqn) - normCDF((4*float64(k)+1)*zf/sqn)
		}
		return 1 - sum1 + sum2
	}
	return cusum(false), cusum(true), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// longestRunParams describes one row of the §2.4 parameter table.
type longestRunParams struct {
	m   int       // block length
	k   int       // number of chi-square classes minus one
	vlo int       // run length mapped to class 0
	pi  []float64 // class probabilities
}

// LongestRun is the longest-run-of-ones-in-a-block test (§2.4). The block
// size and class probabilities follow the spec's n-dependent table.
func LongestRun(bits []uint8) (float64, error) {
	n := len(bits)
	var p longestRunParams
	switch {
	case n < 128:
		return 0, errShort
	case n < 6272:
		p = longestRunParams{m: 8, k: 3, vlo: 1,
			pi: []float64{0.21484375, 0.3671875, 0.23046875, 0.1875}}
	case n < 750000:
		p = longestRunParams{m: 128, k: 5, vlo: 4,
			pi: []float64{0.1174035788, 0.242955959, 0.249363483, 0.17517706, 0.102701071, 0.112398847}}
	default:
		p = longestRunParams{m: 10000, k: 6, vlo: 10,
			pi: []float64{0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727}}
	}
	N := n / p.m
	v := make([]int, p.k+1)
	for i := 0; i < N; i++ {
		blk := bits[i*p.m : (i+1)*p.m]
		longest, run := 0, 0
		for _, b := range blk {
			if b == 1 {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
		cls := longest - p.vlo
		if cls < 0 {
			cls = 0
		}
		if cls > p.k {
			cls = p.k
		}
		v[cls]++
	}
	chi2 := 0.0
	for i := 0; i <= p.k; i++ {
		e := float64(N) * p.pi[i]
		d := float64(v[i]) - e
		chi2 += d * d / e
	}
	return igamc(float64(p.k)/2, chi2/2), nil
}

// Rank is the binary matrix rank test (§2.5) over 32x32 matrices.
func Rank(bits []uint8) (float64, error) {
	n := len(bits)
	N := n / (32 * 32)
	if N < 38 { // the spec's minimum for valid chi-square approximation
		return 0, fmt.Errorf("sp80022: rank test needs ≥ %d bits, have %d", 38*1024, n)
	}
	p32 := rankProb(32, 32, 32)
	p31 := rankProb(32, 32, 31)
	p30 := 1 - p32 - p31
	var f32, f31, f30 int
	for i := 0; i < N; i++ {
		var rows [32]uint32
		base := i * 1024
		for r := 0; r < 32; r++ {
			var w uint32
			for c := 0; c < 32; c++ {
				w |= uint32(bits[base+32*r+c]) << uint(c)
			}
			rows[r] = w
		}
		switch binaryRank(&rows) {
		case 32:
			f32++
		case 31:
			f31++
		default:
			f30++
		}
	}
	Nf := float64(N)
	chi2 := sq(float64(f32)-p32*Nf)/(p32*Nf) +
		sq(float64(f31)-p31*Nf)/(p31*Nf) +
		sq(float64(f30)-p30*Nf)/(p30*Nf)
	return math.Exp(-chi2 / 2), nil
}

func sq(x float64) float64 { return x * x }

// DFT is the discrete Fourier transform (spectral) test (§2.6).
func DFT(bits []uint8) (float64, error) {
	n := len(bits)
	if n < 1000 {
		return 0, errShort
	}
	x := make([]float64, n)
	for i, b := range bits {
		x[i] = float64(2*int(b) - 1)
	}
	X := dft(x)
	threshold := math.Sqrt(math.Log(1/0.05) * float64(n))
	n0 := 0.95 * float64(n) / 2
	n1 := 0
	for k := 0; k < n/2; k++ {
		re, im := real(X[k]), imag(X[k])
		if math.Sqrt(re*re+im*im) < threshold {
			n1++
		}
	}
	d := (float64(n1) - n0) / math.Sqrt(float64(n)*0.95*0.05/4)
	return math.Erfc(math.Abs(d) / math.Sqrt2), nil
}
