package sp80022

import (
	"fmt"
	"math"
)

// ApproximateEntropy is the approximate entropy test (§2.12) with block
// length m: it compares the frequency of overlapping m- and (m+1)-bit
// patterns.
func ApproximateEntropy(bits []uint8, m int) (float64, error) {
	n := len(bits)
	if n < 8 || m < 1 || m+1 > len(bits) {
		return 0, errShort
	}
	phi := func(mm int) float64 {
		counts := make([]int, 1<<uint(mm))
		mask := 1<<uint(mm) - 1
		// Circular extension: every of the n start positions contributes.
		v := 0
		for i := 0; i < mm-1; i++ {
			v = v<<1 | int(bits[i])
		}
		for i := 0; i < n; i++ {
			v = (v<<1 | int(bits[(i+mm-1)%n])) & mask
			counts[v]++
		}
		s := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				s += p * math.Log(p)
			}
		}
		return s
	}
	apen := phi(m) - phi(m+1)
	chi2 := 2 * float64(n) * (math.Ln2 - apen)
	return igamc(math.Pow(2, float64(m-1)), chi2/2), nil
}

// Serial is the serial test (§2.11) with block length m; it returns the
// two p-values (∇ψ² and ∇²ψ²).
func Serial(bits []uint8, m int) (p1, p2 float64, err error) {
	n := len(bits)
	if n < 8 || m < 3 || m >= n {
		return 0, 0, errShort
	}
	psi2 := func(mm int) float64 {
		if mm == 0 {
			return 0
		}
		counts := make([]int, 1<<uint(mm))
		mask := 1<<uint(mm) - 1
		v := 0
		for i := 0; i < mm-1; i++ {
			v = v<<1 | int(bits[i])
		}
		for i := 0; i < n; i++ {
			v = (v<<1 | int(bits[(i+mm-1)%n])) & mask
			counts[v]++
		}
		s := 0.0
		for _, c := range counts {
			s += float64(c) * float64(c)
		}
		return s*math.Pow(2, float64(mm))/float64(n) - float64(n)
	}
	pm, pm1, pm2 := psi2(m), psi2(m-1), psi2(m-2)
	d1 := pm - pm1
	d2 := pm - 2*pm1 + pm2
	p1 = igamc(math.Pow(2, float64(m-2)), d1/2)
	p2 = igamc(math.Pow(2, float64(m-3)), d2/2)
	return p1, p2, nil
}

// linearComplexityPi are the §2.10 class probabilities for K = 6.
var linearComplexityPi = []float64{0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833}

// LinearComplexity is the linear complexity test (§2.10) with block
// length M (the spec recommends 500 ≤ M ≤ 5000).
func LinearComplexity(bits []uint8, M int) (float64, error) {
	n := len(bits)
	if M < 4 {
		return 0, errShort
	}
	N := n / M
	if N < 1 {
		return 0, errShort
	}
	const K = 6
	sign := 1.0
	if M%2 == 1 {
		sign = -1.0
	}
	mu := float64(M)/2 + (9+(-sign))/36 - (float64(M)/3+2.0/9)/math.Pow(2, float64(M))
	v := make([]int, K+1)
	for i := 0; i < N; i++ {
		L := berlekampMassey(bits[i*M : (i+1)*M])
		// T = (-1)^M (L - μ) + 2/9.
		T := sign*(float64(L)-mu) + 2.0/9
		cls := 0
		switch {
		case T <= -2.5:
			cls = 0
		case T <= -1.5:
			cls = 1
		case T <= -0.5:
			cls = 2
		case T <= 0.5:
			cls = 3
		case T <= 1.5:
			cls = 4
		case T <= 2.5:
			cls = 5
		default:
			cls = 6
		}
		v[cls]++
	}
	chi2 := 0.0
	for i := 0; i <= K; i++ {
		e := float64(N) * linearComplexityPi[i]
		chi2 += sq(float64(v[i])-e) / e
	}
	return igamc(K/2.0, chi2/2), nil
}

// ExcursionResult pairs one walk state with its p-value.
type ExcursionResult struct {
	State int
	P     float64
}

// RandomExcursions is the random excursions test (§2.14): the number of
// visits to states x ∈ {±1..±4} per zero-crossing cycle of the cumulative
// walk. The spec requires at least 500 cycles; fewer is reported as an
// error (test not applicable).
func RandomExcursions(bits []uint8) ([]ExcursionResult, error) {
	n := len(bits)
	if n < 1000 {
		return nil, errShort
	}
	// Build the cycles of the walk S.
	type cycleCounts [9]int // visit counts for states -4..-1, (0 unused), 1..4 mapped below
	var cycles []cycleCounts
	var cur cycleCounts
	s := 0
	for i := 0; i < n; i++ {
		s += 2*int(bits[i]) - 1
		if s == 0 {
			cycles = append(cycles, cur)
			cur = cycleCounts{}
		} else if s >= -4 && s <= 4 {
			cur[stateIndex(s)]++
		}
	}
	// The final partial cycle (ending with the walk forced back to zero)
	// counts as a cycle, per the spec.
	cycles = append(cycles, cur)
	J := len(cycles)
	if J < 500 {
		return nil, fmt.Errorf("sp80022: random excursions requires ≥ 500 cycles, have %d", J)
	}
	states := []int{-4, -3, -2, -1, 1, 2, 3, 4}
	out := make([]ExcursionResult, 0, len(states))
	for _, x := range states {
		// ν_k = number of cycles visiting state x exactly k times (k ≥ 5
		// collapsed).
		var v [6]int
		idx := stateIndex(x)
		for _, c := range cycles {
			k := c[idx]
			if k > 5 {
				k = 5
			}
			v[k]++
		}
		chi2 := 0.0
		for k := 0; k <= 5; k++ {
			pk := excursionPi(k, x)
			e := float64(J) * pk
			chi2 += sq(float64(v[k])-e) / e
		}
		out = append(out, ExcursionResult{State: x, P: igamc(5.0/2, chi2/2)})
	}
	return out, nil
}

func stateIndex(x int) int {
	if x < 0 {
		return x + 4 // -4..-1 → 0..3
	}
	return x + 4 // 1..4 → 5..8
}

// excursionPi is the closed-form π_k(x) of §3.14.
func excursionPi(k, x int) float64 {
	ax := math.Abs(float64(x))
	switch {
	case k == 0:
		return 1 - 1/(2*ax)
	case k < 5:
		return 1 / (4 * ax * ax) * math.Pow(1-1/(2*ax), float64(k-1))
	default:
		return 1 / (2 * ax) * math.Pow(1-1/(2*ax), 4)
	}
}

// RandomExcursionsVariant is the §2.15 variant: total visits ξ(x) to the
// eighteen states x ∈ {±1..±9} across the whole walk.
func RandomExcursionsVariant(bits []uint8) ([]ExcursionResult, error) {
	n := len(bits)
	if n < 1000 {
		return nil, errShort
	}
	visits := map[int]int{}
	s := 0
	J := 0
	for i := 0; i < n; i++ {
		s += 2*int(bits[i]) - 1
		if s == 0 {
			J++
		} else if s >= -9 && s <= 9 {
			visits[s]++
		}
	}
	J++ // final partial cycle
	if J < 500 {
		return nil, fmt.Errorf("sp80022: random excursions variant requires ≥ 500 cycles, have %d", J)
	}
	out := make([]ExcursionResult, 0, 18)
	for x := -9; x <= 9; x++ {
		if x == 0 {
			continue
		}
		xi := float64(visits[x])
		den := math.Sqrt(2 * float64(J) * (4*math.Abs(float64(x)) - 2))
		out = append(out, ExcursionResult{State: x, P: math.Erfc(math.Abs(xi-float64(J)) / den)})
	}
	return out, nil
}
