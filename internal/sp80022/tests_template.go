package sp80022

import (
	"fmt"
	"math"
)

// TemplateResult pairs one template with its p-value.
type TemplateResult struct {
	Template []uint8
	P        float64
}

// NonOverlappingTemplate is the non-overlapping template matching test
// (§2.7): for every aperiodic template of length m, occurrence counts in
// N = 8 blocks are compared to the theoretical mean. It returns one
// p-value per template (148 for the standard m = 9).
func NonOverlappingTemplate(bits []uint8, m int) ([]TemplateResult, error) {
	n := len(bits)
	const N = 8
	M := n / N
	if m < 2 || M < 2*m {
		return nil, errShort
	}
	mu := float64(M-m+1) / math.Pow(2, float64(m))
	sigma2 := float64(M) * (1/math.Pow(2, float64(m)) - float64(2*m-1)/math.Pow(2, float64(2*m)))
	if mu <= 0 || sigma2 <= 0 {
		return nil, errShort
	}
	templates := aperiodicTemplates(m)
	out := make([]TemplateResult, 0, len(templates))
	for _, tpl := range templates {
		chi2 := 0.0
		for blk := 0; blk < N; blk++ {
			seg := bits[blk*M : (blk+1)*M]
			w := 0
			for i := 0; i+m <= M; {
				if matchAt(seg, tpl, i) {
					w++
					i += m // non-overlapping: skip the whole template
				} else {
					i++
				}
			}
			chi2 += sq(float64(w)-mu) / sigma2
		}
		out = append(out, TemplateResult{Template: tpl, P: igamc(N/2.0, chi2/2)})
	}
	return out, nil
}

func matchAt(seg, tpl []uint8, at int) bool {
	for j, t := range tpl {
		if seg[at+j] != t {
			return false
		}
	}
	return true
}

// overlapping-template parameters for the standard configuration m = 9,
// M = 1032, K = 5 — the class probabilities tabulated in the sts
// reference code (§2.8).
var overlappingPi = []float64{0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865}

// OverlappingTemplate is the overlapping template matching test (§2.8)
// with the all-ones template of length m = 9 and block length M = 1032.
func OverlappingTemplate(bits []uint8) (float64, error) {
	const (
		m = 9
		M = 1032
		K = 5
	)
	n := len(bits)
	N := n / M
	if N < 1 {
		return 0, errShort
	}
	v := make([]int, K+1)
	for blk := 0; blk < N; blk++ {
		seg := bits[blk*M : (blk+1)*M]
		count := 0
		for i := 0; i+m <= M; i++ {
			all := true
			for j := 0; j < m; j++ {
				if seg[i+j] != 1 {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		if count > K {
			count = K
		}
		v[count]++
	}
	chi2 := 0.0
	for i := 0; i <= K; i++ {
		e := float64(N) * overlappingPi[i]
		chi2 += sq(float64(v[i])-e) / e
	}
	return igamc(K/2.0, chi2/2), nil
}

// universalParams holds the §2.9 expected-value/variance table rows
// indexed by L.
var universalExpected = map[int][2]float64{
	6:  {5.2177052, 2.954},
	7:  {6.1962507, 3.125},
	8:  {7.1836656, 3.238},
	9:  {8.1764248, 3.311},
	10: {9.1723243, 3.356},
	11: {10.170032, 3.384},
	12: {11.168765, 3.401},
	13: {12.168070, 3.410},
	14: {13.167693, 3.416},
	15: {14.167488, 3.419},
	16: {15.167379, 3.421},
}

// Universal is Maurer's universal statistical test (§2.9). The block
// length L is chosen from the spec's n-dependent table; n must be at
// least 387,840 bits.
func Universal(bits []uint8) (float64, error) {
	n := len(bits)
	L := 0
	switch {
	case n >= 1059061760:
		L = 16
	case n >= 496435200:
		L = 15
	case n >= 231669760:
		L = 14
	case n >= 107560960:
		L = 13
	case n >= 49643520:
		L = 12
	case n >= 22753280:
		L = 11
	case n >= 10342400:
		L = 10
	case n >= 4654080:
		L = 9
	case n >= 2068480:
		L = 8
	case n >= 904960:
		L = 7
	case n >= 387840:
		L = 6
	default:
		return 0, fmt.Errorf("sp80022: universal test needs ≥ 387840 bits, have %d", n)
	}
	Q := 10 * (1 << uint(L))
	K := n/L - Q
	if K <= 0 {
		return 0, errShort
	}
	table := make([]int, 1<<uint(L))
	block := func(i int) int {
		v := 0
		for j := 0; j < L; j++ {
			v = v<<1 | int(bits[i*L+j])
		}
		return v
	}
	for i := 0; i < Q; i++ {
		table[block(i)] = i + 1
	}
	sum := 0.0
	for i := Q; i < Q+K; i++ {
		b := block(i)
		sum += math.Log2(float64(i+1) - float64(table[b]))
		table[b] = i + 1
	}
	fn := sum / float64(K)
	row, ok := universalExpected[L]
	if !ok {
		return 0, errShort
	}
	ev, variance := row[0], row[1]
	c := 0.7 - 0.8/float64(L) + (4+32/float64(L))*math.Pow(float64(K), -3/float64(L))/15
	sigma := c * math.Sqrt(variance/float64(K))
	return math.Erfc(math.Abs(fn-ev) / (math.Sqrt2 * sigma)), nil
}
