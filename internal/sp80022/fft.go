package sp80022

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// fftPow2 computes an in-place iterative radix-2 decimation-in-time FFT.
// len(a) must be a power of two. inverse applies the conjugate transform
// without the 1/n scaling (the caller scales).
func fftPow2(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("sp80022: fftPow2 length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += size {
			w := complex(1, 0)
			half := size / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// dft computes the forward discrete Fourier transform of arbitrary-length
// real input using Bluestein's chirp-z algorithm over the radix-2 kernel,
// so the spectral test runs on the exact stream length (SP 800-22 does
// not require a power-of-two n).
func dft(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		a := make([]complex128, n)
		for i, v := range x {
			a[i] = complex(v, 0)
		}
		fftPow2(a, false)
		return a
	}

	// Bluestein: X_k = b*_k · IFFT(FFT(a) · FFT(b)), with
	// a_j = x_j·w_j, b_j = conj(w_j), w_j = exp(-iπ j²/n).
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	w := make([]complex128, n)
	for j := 0; j < n; j++ {
		// j² mod 2n avoids precision loss for large j.
		jj := (int64(j) * int64(j)) % int64(2*n)
		ang := -math.Pi * float64(jj) / float64(n)
		w[j] = cmplx.Exp(complex(0, ang))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		a[j] = complex(x[j], 0) * w[j]
		b[j] = cmplx.Conj(w[j])
	}
	for j := 1; j < n; j++ {
		b[m-j] = b[j] // b is symmetric around 0
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for j := range a {
		a[j] *= b[j]
	}
	fftPow2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = w[k] * a[k] * scale
	}
	return out
}
