package sp80022

import "math"

// binaryRank computes the rank over GF(2) of a 32x32 bit matrix; rows[i]
// bit j is the element at row i, column j.
func binaryRank(rows *[32]uint32) int {
	m := *rows
	rank := 0
	for col := 0; col < 32 && rank < 32; col++ {
		pivot := -1
		for r := rank; r < 32; r++ {
			if m[r]&(1<<uint(col)) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		for r := 0; r < 32; r++ {
			if r != rank && m[r]&(1<<uint(col)) != 0 {
				m[r] ^= m[rank]
			}
		}
		rank++
	}
	return rank
}

// rankProb returns the probability that a random MxQ binary matrix has the
// given rank r (SP 800-22 §3.5).
func rankProb(m, q, r int) float64 {
	exp := float64(r*(m+q-r) - m*q)
	p := math.Pow(2, exp)
	for i := 0; i < r; i++ {
		num := (1 - math.Pow(2, float64(i-m))) * (1 - math.Pow(2, float64(i-q)))
		den := 1 - math.Pow(2, float64(i-r))
		p *= num / den
	}
	return p
}
