package lfsr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFibonacciMaximalPeriodSmallDegrees(t *testing.T) {
	for _, n := range []uint{3, 4, 5, 6, 7, 8, 9, 10, 11, 15, 16, 17, 18, 20} {
		exps, ok := Primitive(n)
		if !ok {
			t.Fatalf("no primitive polynomial for degree %d", n)
		}
		l, err := NewFibonacci(n, exps, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(1)<<n - 1
		var period uint64
		for {
			l.Clock()
			period++
			if l.State() == 1 {
				break
			}
			if period > want {
				t.Fatalf("degree %d: period exceeds 2^n-1", n)
			}
		}
		if period != want {
			t.Errorf("degree %d: period %d, want %d", n, period, want)
		}
	}
}

func TestGaloisMaximalPeriodSmallDegrees(t *testing.T) {
	for _, n := range []uint{3, 4, 5, 6, 7, 8, 9, 10, 11, 15, 16} {
		exps, _ := Primitive(n)
		l, err := NewGalois(n, exps, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(1)<<n - 1
		var period uint64
		for {
			l.Clock()
			period++
			if l.State() == 1 {
				break
			}
			if period > want {
				t.Fatalf("degree %d: period exceeds 2^n-1", n)
			}
		}
		if period != want {
			t.Errorf("degree %d: period %d, want %d", n, period, want)
		}
	}
}

// Both configurations must produce sequences satisfying the defining
// linear recurrence z[t+n] = XOR_{e in E} z[t+e].
func TestOutputSatisfiesRecurrence(t *testing.T) {
	for _, n := range []uint{8, 16, 20, 32, 48, 64} {
		exps, ok := Primitive(n)
		if !ok {
			t.Fatalf("no primitive polynomial for degree %d", n)
		}
		fib, err := NewFibonacci(n, exps, 0x12345678ABCDEF1)
		if err != nil {
			t.Fatal(err)
		}
		gal, err := NewGalois(n, exps, 0x12345678ABCDEF1)
		if err != nil {
			t.Fatal(err)
		}
		for name, clock := range map[string]func() uint8{
			"fibonacci": fib.Clock,
			"galois":    gal.Clock,
		} {
			z := make([]uint8, 3*int(n)+100)
			for i := range z {
				z[i] = clock()
			}
			for i := 0; i+int(n) < len(z); i++ {
				var want uint8
				for _, e := range exps {
					want ^= z[i+int(e)]
				}
				if z[i+int(n)] != want {
					t.Fatalf("%s degree %d: recurrence violated at t=%d", name, n, i)
				}
			}
		}
	}
}

func TestFibonacciRejectsBadInput(t *testing.T) {
	if _, err := NewFibonacci(20, []uint{3, 0}, 0); err == nil {
		t.Error("zero state accepted")
	}
	if _, err := NewFibonacci(0, []uint{0}, 1); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewFibonacci(65, []uint{0}, 1); err == nil {
		t.Error("degree 65 accepted")
	}
	if _, err := NewFibonacci(8, []uint{9, 0}, 1); err == nil {
		t.Error("exponent >= n accepted")
	}
	if _, err := NewFibonacci(8, []uint{4, 3}, 1); err == nil {
		t.Error("polynomial without x^0 accepted")
	}
}

func TestPrimitiveTableWellFormed(t *testing.T) {
	for n, exps := range primitiveTable {
		if _, err := tapMask(n, exps); err != nil {
			t.Errorf("degree %d: %v", n, err)
		}
		has0 := false
		for _, e := range exps {
			if e == 0 {
				has0 = true
			}
		}
		if !has0 {
			t.Errorf("degree %d: table entry lacks x^0", n)
		}
	}
	if _, ok := Primitive(12345); ok {
		t.Error("Primitive returned entry for absent degree")
	}
}

// The bitsliced engine must agree bit-for-bit with 64 independent naive
// registers (Fig. 8 vs Fig. 7).
func TestSlicedMatchesFarm(t *testing.T) {
	degrees := []uint{8, 16, 20, 32, 48, 64}
	for _, n := range degrees {
		exps, _ := Primitive(n)
		rng := rand.New(rand.NewSource(int64(n)))
		states := make([]uint64, 64)
		for i := range states {
			for states[i] == 0 {
				states[i] = rng.Uint64()
				if n < 64 {
					states[i] &= (1 << n) - 1
				}
			}
		}
		sl, err := NewSliced(n, exps, states, Rename)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := NewFarm(n, exps, states)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 500; step++ {
			a, b := sl.Clock(), fm.Clock()
			if a != b {
				t.Fatalf("degree %d: divergence at clock %d: %x vs %x", n, step, a, b)
			}
		}
	}
}

func TestSlicedStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		n := uint(20)
		exps, _ := Primitive(n)
		rng := rand.New(rand.NewSource(seed))
		states := make([]uint64, 64)
		for i := range states {
			for states[i] == 0 {
				states[i] = rng.Uint64() & ((1 << n) - 1)
			}
		}
		a, err := NewSliced(n, exps, states, Rename)
		if err != nil {
			return false
		}
		b, err := NewSliced(n, exps, states, Copy)
		if err != nil {
			return false
		}
		for step := 0; step < 300; step++ {
			if a.Clock() != b.Clock() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSlicedLaneState(t *testing.T) {
	n := uint(32)
	exps, _ := Primitive(n)
	states := []uint64{0xDEADBEEF, 0x12345678, 0x0BADF00D}
	for _, strat := range []ShiftStrategy{Rename, Copy} {
		sl, err := NewSliced(n, exps, states, strat)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*Fibonacci, len(states))
		for i, st := range states {
			refs[i], _ = NewFibonacci(n, exps, st)
		}
		for step := 0; step < 100; step++ {
			for lane, r := range refs {
				if sl.LaneState(lane) != r.State() {
					t.Fatalf("strategy %v lane %d state mismatch at clock %d", strat, lane, step)
				}
			}
			sl.Clock()
			for _, r := range refs {
				r.Clock()
			}
		}
	}
}

func TestFillPerLane(t *testing.T) {
	n := uint(48)
	exps, _ := Primitive(n)
	rng := rand.New(rand.NewSource(99))
	states := make([]uint64, 64)
	for i := range states {
		states[i] = rng.Uint64()&((1<<n)-1) | 1
	}
	sl, _ := NewSliced(n, exps, states, Rename)
	dst := make([]uint64, 128) // two blocks
	sl.FillPerLane(dst)
	// Lane L's bits: block 0 word L (clocks 0..63), block 1 word L (64..127).
	for lane := 0; lane < 64; lane++ {
		ref, _ := NewFibonacci(n, exps, states[lane])
		for tt := 0; tt < 128; tt++ {
			blk, bit := tt/64, uint(tt%64)
			got := uint8((dst[blk*64+lane] >> bit) & 1)
			if got != ref.Clock() {
				t.Fatalf("lane %d clock %d mismatch", lane, tt)
			}
		}
	}
}

func TestFillPerLanePanicsOnBadLength(t *testing.T) {
	exps, _ := Primitive(20)
	sl, _ := NewSliced(20, exps, []uint64{1}, Rename)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sl.FillPerLane(make([]uint64, 63))
}

func TestFillRaw(t *testing.T) {
	exps, _ := Primitive(20)
	sl, _ := NewSliced(20, exps, []uint64{1, 2, 3}, Rename)
	sl2, _ := NewSliced(20, exps, []uint64{1, 2, 3}, Rename)
	dst := make([]uint64, 100)
	sl.FillRaw(dst)
	for i := range dst {
		if dst[i] != sl2.Clock() {
			t.Fatalf("word %d differs", i)
		}
	}
}

func TestNewSlicedRejectsBadInput(t *testing.T) {
	exps, _ := Primitive(20)
	if _, err := NewSliced(20, exps, nil, Rename); err == nil {
		t.Error("empty lane set accepted")
	}
	if _, err := NewSliced(20, exps, make([]uint64, 65), Rename); err == nil {
		t.Error("65 lanes accepted")
	}
	if _, err := NewSliced(20, exps, []uint64{0}, Rename); err == nil {
		t.Error("zero lane state accepted")
	}
}

func TestFarmRejectsBadInput(t *testing.T) {
	exps, _ := Primitive(20)
	if _, err := NewFarm(20, exps, nil); err == nil {
		t.Error("empty farm accepted")
	}
	if _, err := NewFarm(20, exps, []uint64{0}); err == nil {
		t.Error("zero state accepted")
	}
}

// Benchmarks: the paper's Fig. 7 (naive farm) vs Fig. 8 (bitsliced) LFSR.

func benchStates(n uint) []uint64 {
	rng := rand.New(rand.NewSource(7))
	states := make([]uint64, 64)
	for i := range states {
		states[i] = rng.Uint64() | 1
		if n < 64 {
			states[i] &= (1 << n) - 1
			states[i] |= 1
		}
	}
	return states
}

func BenchmarkNaiveFarm64Lanes(b *testing.B) {
	exps, _ := Primitive(64)
	fm, _ := NewFarm(64, exps, benchStates(64))
	dst := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.FillRaw(dst)
	}
}

func BenchmarkSlicedRename64Lanes(b *testing.B) {
	exps, _ := Primitive(64)
	sl, _ := NewSliced(64, exps, benchStates(64), Rename)
	dst := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl.FillRaw(dst)
	}
}

func BenchmarkSlicedCopy64Lanes(b *testing.B) {
	exps, _ := Primitive(64)
	sl, _ := NewSliced(64, exps, benchStates(64), Copy)
	dst := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl.FillRaw(dst)
	}
}

func BenchmarkSlicedPerLane(b *testing.B) {
	exps, _ := Primitive(64)
	sl, _ := NewSliced(64, exps, benchStates(64), Rename)
	dst := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl.FillPerLane(dst)
	}
}
