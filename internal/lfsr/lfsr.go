// Package lfsr implements linear feedback shift registers in both the
// conventional row-major form (paper Fig. 1 and Fig. 7: one register image
// per instance, shift-and-mask per clock) and the bitsliced column-major
// form (paper Fig. 8: one plane per state bit, W instances per plane,
// shifts replaced by register renaming).
//
// Throughout the package an LFSR of degree n is described by its feedback
// exponent set E: the recurrence is
//
//	s[t+n] = XOR over e in E of s[t+e]
//
// which corresponds to the characteristic polynomial
// p(x) = x^n + Σ_{e∈E} x^e over GF(2). For a maximal-length (period 2^n-1)
// register, p must be primitive; see Primitive for a table of known
// primitive polynomials.
package lfsr

import "fmt"

// Fibonacci is a conventional (naive) Fibonacci-configuration LFSR of
// degree n ≤ 64. State bit 0 is the output end; each Clock shifts the
// register right by one and inserts the feedback bit at position n-1,
// exactly the shift-and-mask pattern the paper's Fig. 1 describes.
type Fibonacci struct {
	n     uint
	mask  uint64 // feedback tap mask (bits at exponents E)
	state uint64
}

// NewFibonacci builds a Fibonacci LFSR with the given degree and feedback
// exponents. The initial state must be non-zero (the all-zero state is the
// fixed point of any linear register).
func NewFibonacci(n uint, exps []uint, state uint64) (*Fibonacci, error) {
	mask, err := tapMask(n, exps)
	if err != nil {
		return nil, err
	}
	if n < 64 {
		state &= (1 << n) - 1
	}
	if state == 0 {
		return nil, fmt.Errorf("lfsr: zero initial state")
	}
	return &Fibonacci{n: n, mask: mask, state: state}, nil
}

// Clock advances the register one step and returns the output bit.
func (l *Fibonacci) Clock() uint8 {
	out := uint8(l.state & 1)
	fb := parity(l.state & l.mask)
	l.state = (l.state >> 1) | fb<<(l.n-1)
	return out
}

// State returns the current register image (bit i = state bit i).
func (l *Fibonacci) State() uint64 { return l.state }

// Degree returns n.
func (l *Fibonacci) Degree() uint { return l.n }

// Galois is the Galois (one's-complement) configuration of the same
// recurrence: the feedback bit is XORed into the taps as the register
// shifts. It generates the same maximal sequence (with a phase/state
// mapping difference) and costs one shift, one mask and one conditional
// XOR per clock.
type Galois struct {
	n     uint
	mask  uint64 // Galois tap mask
	state uint64
}

// NewGalois builds a Galois LFSR from the same exponent description used
// by NewFibonacci. The Galois mask is derived from the reciprocal tap
// positions so that the produced sequence satisfies the same recurrence.
func NewGalois(n uint, exps []uint, state uint64) (*Galois, error) {
	fib, err := tapMask(n, exps)
	if err != nil {
		return nil, err
	}
	// In the Galois form (shift right, output at bit 0, mask XORed in when
	// the output bit is 1), the produced sequence satisfies
	// z[t+n] = Σ g[n-1-i]·z[t+i], so tap exponent e maps to mask bit n-1-e.
	var gal uint64
	for e := uint(0); e < n; e++ {
		if fib&(1<<e) != 0 {
			gal |= 1 << (n - 1 - e)
		}
	}
	if n < 64 {
		state &= (1 << n) - 1
	}
	if state == 0 {
		return nil, fmt.Errorf("lfsr: zero initial state")
	}
	return &Galois{n: n, mask: gal, state: state}, nil
}

// Clock advances the register one step and returns the output bit.
func (l *Galois) Clock() uint8 {
	out := l.state & 1
	l.state >>= 1
	if out == 1 {
		l.state ^= l.mask
	}
	return uint8(out)
}

// State returns the current register image.
func (l *Galois) State() uint64 { return l.state }

func tapMask(n uint, exps []uint) (uint64, error) {
	if n == 0 || n > 64 {
		return 0, fmt.Errorf("lfsr: degree %d out of range [1,64]", n)
	}
	var mask uint64
	for _, e := range exps {
		if e >= n {
			return 0, fmt.Errorf("lfsr: exponent %d >= degree %d", e, n)
		}
		mask |= 1 << e
	}
	if mask&1 == 0 {
		return 0, fmt.Errorf("lfsr: feedback polynomial must include x^0")
	}
	return mask, nil
}

func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// Primitive returns the feedback exponent set of a known primitive
// polynomial of the given degree, for degrees present in the built-in
// table. The table entries are classic maximal-length polynomials
// (period 2^n - 1); small degrees are verified exhaustively in the tests.
func Primitive(n uint) ([]uint, bool) {
	e, ok := primitiveTable[n]
	return e, ok
}

// primitiveTable maps degree n to the exponents E of a primitive
// p(x) = x^n + Σ x^e (E always contains 0).
var primitiveTable = map[uint][]uint{
	3:  {1, 0},
	4:  {1, 0},
	5:  {2, 0},
	6:  {1, 0},
	7:  {1, 0},
	8:  {4, 3, 2, 0},
	9:  {4, 0},
	10: {3, 0},
	11: {2, 0},
	15: {1, 0},
	16: {15, 13, 4, 0},
	17: {3, 0},
	18: {7, 0},
	20: {3, 0},
	23: {5, 0},
	24: {7, 2, 1, 0},
	25: {3, 0},
	28: {3, 0},
	31: {3, 0},
	32: {22, 2, 1, 0},
	33: {13, 0},
	39: {4, 0},
	41: {3, 0},
	47: {5, 0},
	48: {28, 27, 1, 0},
	52: {3, 0},
	57: {7, 0},
	60: {1, 0},
	63: {1, 0},
	64: {63, 61, 60, 0},
}
