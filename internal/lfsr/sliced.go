package lfsr

import (
	"fmt"

	"repro/internal/bitslice"
)

// ShiftStrategy selects how the bitsliced engine realizes the register
// shift. The paper (§4.3) replaces bit-level shifts with "register
// reference swapping"; Rename is that strategy. Copy is the strawman that
// physically moves every plane each clock, kept for the ablation bench.
type ShiftStrategy int

const (
	// Rename advances a ring head index; no plane moves.
	Rename ShiftStrategy = iota
	// Copy physically shifts all planes down by one each clock.
	Copy
)

// Sliced is the bitsliced W-lane LFSR of paper Fig. 8: plane i carries
// state bit i of all 64 lanes, one Clock produces 64 output bits (one per
// lane), and the k tap XORs are full-width word operations.
type Sliced struct {
	n        int
	taps     []int // feedback exponents, ascending
	planes   []uint64
	scratch  []uint64
	head     int
	strategy ShiftStrategy
}

// NewSliced builds a bitsliced LFSR of degree n with feedback exponents
// exps. states gives the initial register image per lane (bit i of
// states[L] is state bit i of lane L); it must contain 1..64 non-zero
// entries.
func NewSliced(n uint, exps []uint, states []uint64, strategy ShiftStrategy) (*Sliced, error) {
	if _, err := tapMask(n, exps); err != nil {
		return nil, err
	}
	if len(states) == 0 || len(states) > bitslice.W {
		return nil, fmt.Errorf("lfsr: lane count %d out of range [1,64]", len(states))
	}
	for i, s := range states {
		if n < 64 {
			s &= (1 << n) - 1
		}
		if s == 0 {
			return nil, fmt.Errorf("lfsr: lane %d has zero initial state", i)
		}
	}
	taps := make([]int, 0, len(exps))
	for _, e := range exps {
		taps = append(taps, int(e))
	}
	s := &Sliced{
		n:        int(n),
		taps:     taps,
		planes:   make([]uint64, n),
		scratch:  make([]uint64, n),
		strategy: strategy,
	}
	for lane, st := range states {
		for i := 0; i < int(n); i++ {
			bitslice.SetLaneBit(s.planes, i, lane, uint8((st>>uint(i))&1))
		}
	}
	return s, nil
}

// Clock advances all lanes one step and returns the 64 output bits
// (bit L = output of lane L).
func (s *Sliced) Clock() uint64 {
	if s.strategy == Copy {
		return s.clockCopy()
	}
	return s.clockRename()
}

func (s *Sliced) clockRename() uint64 {
	out := s.planes[s.head]
	var fb uint64
	for _, e := range s.taps {
		fb ^= s.planes[s.idx(e)]
	}
	s.head = s.idx(1)
	// The plane that held state bit 0 becomes the new bit n-1.
	s.planes[s.idx(s.n-1)] = fb
	return out
}

func (s *Sliced) idx(i int) int {
	j := s.head + i
	if j >= s.n {
		j -= s.n
	}
	return j
}

func (s *Sliced) clockCopy() uint64 {
	out := s.planes[0]
	var fb uint64
	for _, e := range s.taps {
		fb ^= s.planes[e]
	}
	copy(s.scratch, s.planes[1:])
	s.scratch[s.n-1] = fb
	s.planes, s.scratch = s.scratch, s.planes
	return out
}

// LaneState reconstructs the row-major register image of one lane.
func (s *Sliced) LaneState(lane int) uint64 {
	var st uint64
	for i := 0; i < s.n; i++ {
		var b uint8
		if s.strategy == Copy {
			b = bitslice.LaneBit(s.planes, i, lane)
		} else {
			b = bitslice.LaneBit(s.planes, s.idx(i), lane)
		}
		st |= uint64(b) << uint(i)
	}
	return st
}

// Degree returns n.
func (s *Sliced) Degree() int { return s.n }

// Bulk generation ------------------------------------------------------

// FillRaw fills dst with keystream words in device order: word t holds the
// 64 lane outputs of clock t (no transposition; the cheapest layout, used
// when the consumer only needs uniform bits, not per-lane streams).
func (s *Sliced) FillRaw(dst []uint64) {
	for i := range dst {
		dst[i] = s.Clock()
	}
}

// FillPerLane generates 64 clocks per block and transposes, so that dst is
// a sequence of 64-word blocks in which word L is 64 consecutive output
// bits of lane L (bit t = clock t). len(dst) must be a multiple of 64.
func (s *Sliced) FillPerLane(dst []uint64) {
	if len(dst)%64 != 0 {
		panic("lfsr: FillPerLane length must be a multiple of 64")
	}
	var blk [64]uint64
	for off := 0; off < len(dst); off += 64 {
		for t := 0; t < 64; t++ {
			blk[t] = s.Clock()
		}
		bitslice.Transpose64(&blk)
		copy(dst[off:off+64], blk[:])
	}
}

// Farm is the paper's Fig. 7 configuration: 64 independent conventional
// LFSRs, one per "thread", each clocked bit-by-bit. It exists as the naive
// baseline for the bitsliced comparison benches.
type Farm struct {
	regs []*Fibonacci
}

// NewFarm builds 64 (or fewer) independent Fibonacci LFSRs.
func NewFarm(n uint, exps []uint, states []uint64) (*Farm, error) {
	if len(states) == 0 || len(states) > bitslice.W {
		return nil, fmt.Errorf("lfsr: lane count %d out of range [1,64]", len(states))
	}
	f := &Farm{regs: make([]*Fibonacci, len(states))}
	for i, st := range states {
		r, err := NewFibonacci(n, exps, st)
		if err != nil {
			return nil, err
		}
		f.regs[i] = r
	}
	return f, nil
}

// Clock advances every register one step and gathers the 64 output bits
// into one word (bit L = output of register L) — the same contract as
// Sliced.Clock, at naive cost.
func (f *Farm) Clock() uint64 {
	var out uint64
	for i, r := range f.regs {
		out |= uint64(r.Clock()) << uint(i)
	}
	return out
}

// FillRaw fills dst with one gathered word per clock.
func (f *Farm) FillRaw(dst []uint64) {
	for i := range dst {
		dst[i] = f.Clock()
	}
}
