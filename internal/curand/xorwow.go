package curand

// XORWOW is Marsaglia's xorwow generator ("Xorshift RNGs", 2003): a
// five-word xorshift sequence summed with a Weyl counter. It is cuRAND's
// default pseudo-random generator type.
type XORWOW struct {
	x, y, z, w, v uint32
	d             uint32
}

// weyl is the Weyl-sequence increment from Marsaglia's paper.
const weyl = 362437

// NewXORWOW seeds the generator; a SplitMix-style scrambler expands the
// single word into the five state words so that nearby seeds give
// uncorrelated states (the role cuRAND's curand_init plays).
func NewXORWOW(seed uint64) *XORWOW {
	g := &XORWOW{}
	s := seed
	next := func() uint32 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return uint32(z ^ (z >> 31))
	}
	g.x, g.y, g.z, g.w, g.v = next(), next(), next(), next(), next()
	if g.x|g.y|g.z|g.w|g.v == 0 {
		g.x = 1 // the all-zero xorshift state is absorbing
	}
	g.d = next()
	return g
}

// Uint32 returns the next output word.
func (g *XORWOW) Uint32() uint32 {
	t := g.x ^ (g.x >> 2)
	g.x, g.y, g.z, g.w = g.y, g.z, g.w, g.v
	g.v = (g.v ^ (g.v << 4)) ^ (t ^ (t << 1))
	g.d += weyl
	return g.d + g.v
}
