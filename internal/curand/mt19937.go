package curand

// MT19937 is the 32-bit Mersenne Twister (Matsumoto & Nishimura 1998),
// the generator the paper uses as "the default cuRAND method for RNG".
type MT19937 struct {
	mt  [624]uint32
	idx int
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908B0DF
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7FFFFFFF
)

// NewMT19937 seeds the generator with the reference init_genrand routine.
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed re-initializes the state from a 32-bit seed.
func (m *MT19937) Seed(seed uint32) {
	m.mt[0] = seed
	for i := 1; i < mtN; i++ {
		m.mt[i] = 1812433253*(m.mt[i-1]^(m.mt[i-1]>>30)) + uint32(i)
	}
	m.idx = mtN
}

// generate refills the state block (the "twist").
func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.mt[i] & mtUpperMask) | (m.mt[(i+1)%mtN] & mtLowerMask)
		next := m.mt[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 == 1 {
			next ^= mtMatrixA
		}
		m.mt[i] = next
	}
	m.idx = 0
}

// Uint32 returns the next tempered output word.
func (m *MT19937) Uint32() uint32 {
	if m.idx >= mtN {
		m.generate()
	}
	y := m.mt[m.idx]
	m.idx++
	y ^= y >> 11
	y ^= (y << 7) & 0x9D2C5680
	y ^= (y << 15) & 0xEFC60000
	y ^= y >> 18
	return y
}

// MT19937_64 is the 64-bit Mersenne Twister variant.
type MT19937_64 struct {
	mt  [312]uint64
	idx int
}

const (
	mt64N         = 312
	mt64M         = 156
	mt64MatrixA   = 0xB5026F5AA96619E9
	mt64UpperMask = 0xFFFFFFFF80000000
	mt64LowerMask = 0x000000007FFFFFFF
)

// NewMT19937_64 seeds the generator with the reference init_genrand64.
func NewMT19937_64(seed uint64) *MT19937_64 {
	m := &MT19937_64{}
	m.Seed(seed)
	return m
}

// Seed re-initializes the state from a 64-bit seed.
func (m *MT19937_64) Seed(seed uint64) {
	m.mt[0] = seed
	for i := 1; i < mt64N; i++ {
		m.mt[i] = 6364136223846793005*(m.mt[i-1]^(m.mt[i-1]>>62)) + uint64(i)
	}
	m.idx = mt64N
}

func (m *MT19937_64) generate() {
	for i := 0; i < mt64N; i++ {
		y := (m.mt[i] & mt64UpperMask) | (m.mt[(i+1)%mt64N] & mt64LowerMask)
		next := m.mt[(i+mt64M)%mt64N] ^ (y >> 1)
		if y&1 == 1 {
			next ^= mt64MatrixA
		}
		m.mt[i] = next
	}
	m.idx = 0
}

// Uint64 returns the next tempered output word.
func (m *MT19937_64) Uint64() uint64 {
	if m.idx >= mt64N {
		m.generate()
	}
	y := m.mt[m.idx]
	m.idx++
	y ^= (y >> 29) & 0x5555555555555555
	y ^= (y << 17) & 0x71D67FFFEDA60000
	y ^= (y << 37) & 0xFFF7EEE000000000
	y ^= y >> 43
	return y
}

// Uint32 truncates Uint64, satisfying Source32.
func (m *MT19937_64) Uint32() uint32 { return uint32(m.Uint64()) }
