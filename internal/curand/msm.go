package curand

// MSM is von Neumann's Middle Square Method — the historical PRNG the
// paper's §2.1 opens with ("one of the first PRNG methods that use a
// random seed ... the Middle Square Method"). It is included as the
// didactic baseline: it degenerates quickly (short cycles, absorbing
// zero), which the tests demonstrate and which motivates everything that
// came after it.
type MSM struct {
	state uint64 // 8-digit decimal state
}

// NewMSM seeds the generator with an 8-digit decimal seed.
func NewMSM(seed uint32) *MSM {
	return &MSM{state: uint64(seed) % 100000000}
}

// Next squares the 8-digit state and extracts the middle 8 digits.
func (m *MSM) Next() uint32 {
	sq := m.state * m.state // 16 decimal digits
	m.state = sq / 10000 % 100000000
	return uint32(m.state)
}

// MSWS is Widynski's "Middle Square Weyl Sequence" repair of MSM: the
// square is perturbed by a Weyl sequence, which removes the short cycles.
// Included as the modern counterpoint to MSM.
type MSWS struct {
	x, w, s uint64
}

// NewMSWS seeds the generator. Widynski's construction needs a Weyl
// constant that is odd with an irregular bit pattern (small constants
// like 1 stall the square for millions of steps), so the seed is passed
// through a SplitMix-style scrambler first.
func NewMSWS(seed uint64) *MSWS {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return &MSWS{s: z | 1}
}

// Uint32 returns the next output word.
func (m *MSWS) Uint32() uint32 {
	m.x *= m.x
	m.w += m.s
	m.x += m.w
	m.x = m.x>>32 | m.x<<32
	return uint32(m.x)
}
