package curand

import "fmt"

// MRG32k3a is L'Ecuyer's combined multiple recursive generator (1999),
// another member of the cuRAND family. Two order-3 linear recurrences
// modulo near-2^32 primes are combined; the period is ≈ 2^191.
type MRG32k3a struct {
	s1 [3]int64 // state of the first component, in [0, m1)
	s2 [3]int64 // state of the second component, in [0, m2)
}

// The generator's published constants.
const (
	mrgM1   = 4294967087 // 2^32 - 209
	mrgM2   = 4294944443 // 2^32 - 22853
	mrgA12  = 1403580
	mrgA13n = 810728 // used negatively: -a13 s[n-3]
	mrgA21  = 527612
	mrgA23n = 1370589
)

// NewMRG32k3a seeds the generator. All six state values must lie in the
// valid ranges and not be all zero per component; the canonical default
// seed is 12345 for all six.
func NewMRG32k3a(seed [6]uint32) (*MRG32k3a, error) {
	g := &MRG32k3a{}
	z1, z2 := true, true
	for i := 0; i < 3; i++ {
		if uint64(seed[i]) >= mrgM1 {
			return nil, fmt.Errorf("mrg32k3a: seed[%d] must be < %d", i, int64(mrgM1))
		}
		if uint64(seed[i+3]) >= mrgM2 {
			return nil, fmt.Errorf("mrg32k3a: seed[%d] must be < %d", i+3, int64(mrgM2))
		}
		g.s1[i] = int64(seed[i])
		g.s2[i] = int64(seed[i+3])
		z1 = z1 && seed[i] == 0
		z2 = z2 && seed[i+3] == 0
	}
	if z1 || z2 {
		return nil, fmt.Errorf("mrg32k3a: per-component seeds must not be all zero")
	}
	return g, nil
}

// NewMRG32k3aDefault returns the generator with the canonical 12345 seeds.
func NewMRG32k3aDefault() *MRG32k3a {
	g, err := NewMRG32k3a([6]uint32{12345, 12345, 12345, 12345, 12345, 12345})
	if err != nil {
		panic(err) // unreachable: the default seed is valid
	}
	return g
}

// next advances both recurrences and returns the combined value in
// [0, m1).
func (g *MRG32k3a) next() int64 {
	// Component 1: p1 = (a12·s1[1] − a13n·s1[0]) mod m1.
	p1 := (mrgA12*g.s1[1] - mrgA13n*g.s1[0]) % mrgM1
	if p1 < 0 {
		p1 += mrgM1
	}
	g.s1[0], g.s1[1], g.s1[2] = g.s1[1], g.s1[2], p1

	// Component 2: p2 = (a21·s2[2] − a23n·s2[0]) mod m2.
	p2 := (mrgA21*g.s2[2] - mrgA23n*g.s2[0]) % mrgM2
	if p2 < 0 {
		p2 += mrgM2
	}
	g.s2[0], g.s2[1], g.s2[2] = g.s2[1], g.s2[2], p2

	z := (p1 - p2) % mrgM1
	if z < 0 {
		z += mrgM1
	}
	return z
}

// Uint32 returns the low 32 bits of the next combined value. (The raw
// value is uniform on [0, m1); the discarded range is ~209/2^32 — the same
// convention cuRAND's curand() uses for this generator.)
func (g *MRG32k3a) Uint32() uint32 { return uint32(g.next()) }

// Float64 returns the canonical uniform double in (0, 1]:
// (z+1) / (m1+1).
func (g *MRG32k3a) Float64() float64 {
	return float64(g.next()+1) * (1.0 / (mrgM1 + 1))
}
