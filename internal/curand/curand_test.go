package curand

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Reference first outputs of MT19937 with the canonical seed 5489
// (mt19937ar.c, init_genrand(5489)).
func TestMT19937KnownAnswer(t *testing.T) {
	m := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

// Reference first output of MT19937-64 with seed 5489
// (mt19937-64.c, init_genrand64(5489)).
func TestMT19937_64KnownAnswer(t *testing.T) {
	m := NewMT19937_64(5489)
	if got := m.Uint64(); got != 14514284786278117030 {
		t.Fatalf("first output = %d, want 14514284786278117030", got)
	}
}

func TestMT19937SeedDeterminism(t *testing.T) {
	a := NewMT19937(42)
	b := NewMT19937(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewMT19937(43)
	same := 0
	b.Seed(43)
	for i := 0; i < 1000; i++ {
		if b.Uint32() == c.Uint32() {
			same++
		}
	}
	if same != 1000 {
		t.Fatal("Seed() did not reproduce NewMT19937")
	}
}

func TestMT19937DistinctSeedsDiverge(t *testing.T) {
	a := NewMT19937(1)
	b := NewMT19937(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("seeds 1 and 2 collide on %d of 1000 outputs", same)
	}
}

func TestXORWOWNonDegenerate(t *testing.T) {
	g := NewXORWOW(0)
	seen := map[uint32]bool{}
	for i := 0; i < 4096; i++ {
		seen[g.Uint32()] = true
	}
	if len(seen) < 4090 {
		t.Fatalf("only %d distinct values in 4096 outputs", len(seen))
	}
}

func TestXORWOWSeedsDiffer(t *testing.T) {
	a, b := NewXORWOW(7), NewXORWOW(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("adjacent seeds collide on %d of 1000 outputs", same)
	}
}

// The int64 MRG implementation must agree with exact big-integer
// arithmetic (no overflow anywhere in the recurrences).
func TestMRG32k3aMatchesBigInt(t *testing.T) {
	g := NewMRG32k3aDefault()
	m1 := big.NewInt(mrgM1)
	m2 := big.NewInt(mrgM2)
	s1 := []*big.Int{big.NewInt(12345), big.NewInt(12345), big.NewInt(12345)}
	s2 := []*big.Int{big.NewInt(12345), big.NewInt(12345), big.NewInt(12345)}
	for i := 0; i < 2000; i++ {
		p1 := new(big.Int).Mul(big.NewInt(mrgA12), s1[1])
		p1.Sub(p1, new(big.Int).Mul(big.NewInt(mrgA13n), s1[0]))
		p1.Mod(p1, m1)
		s1[0], s1[1], s1[2] = s1[1], s1[2], p1

		p2 := new(big.Int).Mul(big.NewInt(mrgA21), s2[2])
		p2.Sub(p2, new(big.Int).Mul(big.NewInt(mrgA23n), s2[0]))
		p2.Mod(p2, m2)
		s2[0], s2[1], s2[2] = s2[1], s2[2], p2

		z := new(big.Int).Sub(p1, p2)
		z.Mod(z, m1)
		if got := g.next(); got != z.Int64() {
			t.Fatalf("step %d: int64 %d, bigint %d", i, got, z.Int64())
		}
	}
}

func TestMRG32k3aFloatRange(t *testing.T) {
	g := NewMRG32k3aDefault()
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f <= 0 || f > 1 {
			t.Fatalf("Float64 out of (0,1]: %v", f)
		}
	}
}

func TestMRG32k3aSeedValidation(t *testing.T) {
	if _, err := NewMRG32k3a([6]uint32{0, 0, 0, 1, 1, 1}); err == nil {
		t.Error("all-zero component 1 accepted")
	}
	if _, err := NewMRG32k3a([6]uint32{1, 1, 1, 0, 0, 0}); err == nil {
		t.Error("all-zero component 2 accepted")
	}
	if _, err := NewMRG32k3a([6]uint32{4294967087, 1, 1, 1, 1, 1}); err == nil {
		t.Error("seed >= m1 accepted")
	}
	if _, err := NewMRG32k3a([6]uint32{1, 1, 1, 4294944443, 1, 1}); err == nil {
		t.Error("seed >= m2 accepted")
	}
}

// Random123 known-answer: philox4x32-10, counter 0, key 0.
func TestPhiloxKnownAnswer(t *testing.T) {
	got := Block([4]uint32{0, 0, 0, 0}, [2]uint32{0, 0})
	want := [4]uint32{0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8}
	if got != want {
		t.Fatalf("philox(0,0) = %x, want %x", got, want)
	}
}

func TestPhiloxCounterBased(t *testing.T) {
	// Skipping ahead must land exactly on the sequential stream.
	a := NewPhilox4x32(99)
	b := NewPhilox4x32(99)
	for i := 0; i < 4*10; i++ {
		a.Uint32()
	}
	b.Skip(10)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("skip-ahead diverged at output %d", i)
		}
	}
}

func TestPhiloxSkipCarry(t *testing.T) {
	p := NewPhilox4x32(0)
	p.ctr = [4]uint32{0xFFFFFFFF, 0xFFFFFFFF, 0, 0}
	p.Skip(1)
	if p.ctr != [4]uint32{0, 0, 1, 0} {
		t.Fatalf("carry failed: %x", p.ctr)
	}
}

func TestPhiloxKeysSeparateStreams(t *testing.T) {
	a := Block([4]uint32{1, 2, 3, 4}, [2]uint32{1, 0})
	b := Block([4]uint32{1, 2, 3, 4}, [2]uint32{2, 0})
	if a == b {
		t.Fatal("different keys produced identical blocks")
	}
}

func TestReaderChunking(t *testing.T) {
	f := func(seed uint32, sizes []uint8) bool {
		a := &Reader{Src: NewMT19937(seed)}
		b := &Reader{Src: NewMT19937(seed)}
		total := 0
		for _, s := range sizes {
			total += int(s) % 9
		}
		if total == 0 {
			return true
		}
		whole := make([]byte, total)
		a.Read(whole)
		pieces := make([]byte, 0, total)
		for _, s := range sizes {
			n := int(s) % 9
			buf := make([]byte, n)
			b.Read(buf)
			pieces = append(pieces, buf...)
		}
		for i := range whole {
			if whole[i] != pieces[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// First-order balance of every generator's bit stream.
func TestGeneratorBitBalance(t *testing.T) {
	gens := map[string]Source32{
		"mt19937":    NewMT19937(7),
		"mt19937_64": NewMT19937_64(7),
		"xorwow":     NewXORWOW(7),
		"mrg32k3a":   NewMRG32k3aDefault(),
		"philox":     NewPhilox4x32(7),
	}
	for name, g := range gens {
		ones := 0
		const n = 1 << 14 // words → 2^19 bits
		for i := 0; i < n; i++ {
			v := g.Uint32()
			for ; v != 0; v &= v - 1 {
				ones++
			}
		}
		bits := n * 32
		mean := float64(bits) / 2
		sigma := 362.0 // sqrt(bits)/2
		if d := float64(ones) - mean; d > 6*sigma || d < -6*sigma {
			t.Errorf("%s: bit bias %d ones of %d bits", name, ones, bits)
		}
	}
}

func benchFill(b *testing.B, src Source32) {
	dst := make([]uint32, 1024)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fill32(src, dst)
	}
}

func BenchmarkMT19937(b *testing.B)    { benchFill(b, NewMT19937(1)) }
func BenchmarkMT19937_64(b *testing.B) { benchFill(b, NewMT19937_64(1)) }
func BenchmarkXORWOW(b *testing.B)     { benchFill(b, NewXORWOW(1)) }
func BenchmarkMRG32k3a(b *testing.B)   { benchFill(b, NewMRG32k3aDefault()) }
func BenchmarkPhilox(b *testing.B)     { benchFill(b, NewPhilox4x32(1)) }
