package curand

import "math/bits"

// Philox4x32 is the counter-based Philox4x32-10 generator (Salmon,
// Moraes, Dror, Shaw — "Parallel random numbers: as easy as 1, 2, 3",
// SC'11), the remaining member of the cuRAND family. Being counter-based
// it is trivially parallel: any 128-bit counter value can be generated
// independently, which is why it is a natural GPU generator and a useful
// contrast to the paper's stateful stream ciphers.
type Philox4x32 struct {
	key  [2]uint32
	ctr  [4]uint32
	out  [4]uint32
	used int
}

// Philox multiplication and Weyl constants.
const (
	philoxM0 = 0xD2511F53
	philoxM1 = 0xCD9E8D57
	philoxW0 = 0x9E3779B9
	philoxW1 = 0xBB67AE85
)

// NewPhilox4x32 builds the generator from a 64-bit key; the counter
// starts at zero.
func NewPhilox4x32(key uint64) *Philox4x32 {
	return &Philox4x32{key: [2]uint32{uint32(key), uint32(key >> 32)}, used: 4}
}

// Block computes the 10-round Philox block function for an explicit
// counter and key — the pure, stateless core.
func Block(ctr [4]uint32, key [2]uint32) [4]uint32 {
	k0, k1 := key[0], key[1]
	x := ctr
	for r := 0; r < 10; r++ {
		hi0, lo0 := bits.Mul32(philoxM0, x[0])
		hi1, lo1 := bits.Mul32(philoxM1, x[2])
		x = [4]uint32{hi1 ^ x[1] ^ k0, lo1, hi0 ^ x[3] ^ k1, lo0}
		k0 += philoxW0
		k1 += philoxW1
	}
	return x
}

// Skip advances the counter by n blocks without generating output — the
// O(1) stream-splitting operation counter-based generators offer.
func (p *Philox4x32) Skip(n uint64) {
	lo := uint64(p.ctr[0]) | uint64(p.ctr[1])<<32
	nlo := lo + n
	p.ctr[0], p.ctr[1] = uint32(nlo), uint32(nlo>>32)
	if nlo < lo { // carry into the high half
		hi := (uint64(p.ctr[2]) | uint64(p.ctr[3])<<32) + 1
		p.ctr[2], p.ctr[3] = uint32(hi), uint32(hi>>32)
	}
	p.used = 4
}

// Uint32 returns the next output word.
func (p *Philox4x32) Uint32() uint32 {
	if p.used == 4 {
		p.out = Block(p.ctr, p.key)
		p.Skip(1)
		p.used = 0
	}
	v := p.out[p.used]
	p.used++
	return v
}
