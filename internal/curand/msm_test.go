package curand

import "testing"

// The Middle Square Method must degenerate — that is the §2.1 lesson it
// is here to teach.
func TestMSMDegenerates(t *testing.T) {
	m := NewMSM(12345678)
	seen := map[uint32]int{}
	for i := 0; i < 100000; i++ {
		v := m.Next()
		if first, ok := seen[v]; ok {
			cycle := i - first
			if cycle > 100000 {
				t.Fatalf("unexpectedly long MSM cycle %d", cycle)
			}
			return // entered a cycle, as expected
		}
		seen[v] = i
	}
	t.Fatal("MSM did not cycle within 100k steps — not the historical MSM")
}

func TestMSMZeroAbsorbing(t *testing.T) {
	m := NewMSM(0)
	for i := 0; i < 10; i++ {
		if m.Next() != 0 {
			t.Fatal("zero state must be absorbing")
		}
	}
}

// The Weyl-sequence repair must NOT degenerate.
func TestMSWSNonDegenerate(t *testing.T) {
	g := NewMSWS(0xB5AD4ECEDA1CE2A9)
	seen := map[uint32]bool{}
	for i := 0; i < 1<<16; i++ {
		seen[g.Uint32()] = true
	}
	if len(seen) < 1<<16-64 {
		t.Fatalf("only %d distinct values in 65536 outputs", len(seen))
	}
}

func TestMSWSBalance(t *testing.T) {
	g := NewMSWS(1) // scrambler must harden even trivial seeds
	ones := 0
	const words = 1 << 14
	for i := 0; i < words; i++ {
		v := g.Uint32()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	mean := float64(words*32) / 2
	sigma := 362.0
	if d := float64(ones) - mean; d > 6*sigma || d < -6*sigma {
		t.Fatalf("MSWS bit bias: %d ones", ones)
	}
}
