// Package curand implements, from scratch, the pseudo-random generator
// family offered by NVIDIA's cuRAND library — the paper's baseline (§5.2
// evaluates against cuRAND's default Mersenne-Twister generator):
//
//	MT19937     Matsumoto & Nishimura's 32-bit Mersenne Twister
//	MT19937_64  the 64-bit variant
//	XORWOW      Marsaglia's xorwow (cuRAND's default XORWOW generator)
//	MRG32k3a    L'Ecuyer's combined multiple recursive generator
//	Philox4x32  Salmon et al.'s counter-based Philox4x32-10
//
// Each generator exposes its natural word output plus a common Source32
// interface and byte-stream adapters used by the benchmark harness.
package curand

import "encoding/binary"

// Source32 is the common face of the 32-bit generators.
type Source32 interface {
	// Uint32 returns the next 32 pseudo-random bits.
	Uint32() uint32
}

// Reader adapts a Source32 to io.Reader for byte-oriented consumers.
type Reader struct {
	Src Source32
	buf [4]byte
	n   int // unread bytes remaining in buf
}

// Read fills p with pseudo-random bytes; it never fails.
func (r *Reader) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if r.n == 0 {
			binary.LittleEndian.PutUint32(r.buf[:], r.Src.Uint32())
			r.n = 4
		}
		k := copy(p, r.buf[4-r.n:])
		r.n -= k
		p = p[k:]
	}
	return n, nil
}

// Fill32 writes one word per element of dst — the bulk-generation path
// used by the throughput benches.
func Fill32(src Source32, dst []uint32) {
	for i := range dst {
		dst[i] = src.Uint32()
	}
}
