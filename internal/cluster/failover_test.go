package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// throttledTransport caps how fast the router reads node response
// bodies, so a multi-megabyte stream is reliably still in flight when a
// test kills the serving node (an unthrottled loopback drains the whole
// window into socket buffers in milliseconds).
type throttledTransport struct{ base http.RoundTripper }

func (t throttledTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(r)
	if err == nil {
		resp.Body = &throttledBody{rc: resp.Body}
	}
	return resp, err
}

type throttledBody struct{ rc io.ReadCloser }

func (b *throttledBody) Read(p []byte) (int, error) {
	if len(p) > 2048 {
		p = p[:2048]
	}
	time.Sleep(200 * time.Microsecond)
	return b.rc.Read(p)
}

func (b *throttledBody) Close() error { return b.rc.Close() }

// readUntilDead drains a response body into buf until EOF or the
// connection dies, returning whatever arrived. A truncated chunked body
// surfaces as an error — that's the expected shape of a mid-stream node
// kill, not a test failure.
func readUntilDead(resp *http.Response) []byte {
	defer resp.Body.Close()
	var got []byte
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			return got
		}
	}
}

// The failover proof: a client streaming a lease through the router
// loses the owning node mid-stream, resumes the same lease at the byte
// it stopped at, and a replica serves the exact continuation — the
// reassembled window is byte-for-byte the library stream. Determinism
// is what makes the replica interchangeable; this test is the receipt.
func TestLeaseFailoverExactContinuation(t *testing.T) {
	const seed = 4242
	https, nodes := bootNodes(t, 3, nodeCfg(seed))
	rt, rts := bootRouter(t, nodes, func(c *RouterConfig) {
		c.Transport = throttledTransport{base: http.DefaultTransport}
	})

	// A 4 MiB window behind the throttled transport: ~400ms of transfer,
	// so the kill below is guaranteed to land mid-stream.
	doc := createLease(t, rts.URL, 2048)
	want := libWindow(t, core.GRAIN, seed, doc.Domain, doc.StartSegment*core.SegmentBytes, int(doc.Bytes))

	ring := rt.Ring()
	owner := ring.Owner(ring.Key(doc.Algorithm, doc.Domain, doc.StartSegment))
	ownerIdx := -1
	for i, n := range nodes {
		if n.Name == owner.Name {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s not among booted nodes", owner.Name)
	}

	// Stream the lease through the router and kill the owner after the
	// first bytes arrive at the client.
	resp, err := http.Get(rts.URL + doc.StreamPath)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease stream status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Bsrng-Cluster-Node"); got != owner.Name {
		t.Fatalf("lease stream served by %s, ring owner is %s", got, owner.Name)
	}
	head := make([]byte, 8192)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatal(err)
	}
	https[ownerIdx].CloseClientConnections()
	https[ownerIdx].Close()
	part1 := append(head, readUntilDead(resp)...)

	if len(part1) >= int(doc.Bytes) {
		t.Fatalf("received the whole %d-byte window before the kill took effect", doc.Bytes)
	}
	if !bytes.Equal(part1, want[:len(part1)]) {
		t.Fatalf("pre-kill bytes diverge from library stream (%d received)", len(part1))
	}

	// Resume exactly where the stream died. The ring still names the
	// dead owner first; the router must fail over to a replica.
	status, part2, hdr := get(t, fmt.Sprintf("%s%s&off=%d", rts.URL, doc.StreamPath, len(part1)))
	if status != http.StatusOK {
		t.Fatalf("resume status %d", status)
	}
	if got := hdr.Get("X-Bsrng-Cluster-Node"); got == owner.Name || got == "" {
		t.Fatalf("resume served by %q, want a replica of dead owner %s", got, owner.Name)
	}
	whole := append(part1, part2...)
	if len(whole) != int(doc.Bytes) {
		t.Fatalf("reassembled %d bytes, lease window is %d", len(whole), doc.Bytes)
	}
	if !bytes.Equal(whole, want) {
		t.Fatal("resumed continuation diverges from library stream — failover changed the bytes")
	}

	if got := routerMetric(t, rts.URL, "bsrngd_cluster_failovers_total"); got < 1 {
		t.Errorf("failovers_total %v after a failover, want >= 1", got)
	}
	if got := routerMetric(t, rts.URL, fmt.Sprintf("bsrngd_cluster_forward_failures_total{node=%q}", owner.Name)); got < 1 {
		t.Errorf("forward_failures_total %v for dead owner, want >= 1", got)
	}
}

// An injected forward fault (failpoint cluster.forward.fail.stream) is
// retried transparently: the client sees 200 and the exact bytes, the
// router counts the retry, and the faulted node is NOT marked down —
// the fault fired in the router, not on the node.
func TestForwardFaultRetries(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out (bsrng_nofaultinject)")
	}
	const seed = 17
	_, nodes := bootNodes(t, 3, nodeCfg(seed))
	rt, rts := bootRouter(t, nodes, nil)

	faultinject.Arm("cluster.forward.fail.stream", 1)
	defer faultinject.Disarm("cluster.forward.fail.stream")

	const n = 4096
	want := libWindow(t, core.GRAIN, seed, 2, 3*core.SegmentBytes, n)
	status, body, _ := get(t, fmt.Sprintf("%s/stream?alg=grain&domain=2&segment=3&n=%d", rts.URL, n))
	if status != http.StatusOK {
		t.Fatalf("status %d through injected fault, want 200", status)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("bytes after injected-fault retry diverge from library stream")
	}
	if got := faultinject.Fired("cluster.forward.fail.stream"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}
	if got := routerMetric(t, rts.URL, "bsrngd_cluster_retries_total"); got < 1 {
		t.Errorf("retries_total %v, want >= 1", got)
	}
	// Injected faults must not poison health state.
	for _, nd := range nodes {
		if rt.nodeState(nd.Name).down.Load() {
			t.Errorf("node %s marked down by an injected fault", nd.Name)
		}
	}
}

// With every node dead the router exhausts its candidates and answers
// 502, counting the exhaustion.
func TestAllNodesDownExhausts(t *testing.T) {
	https, nodes := bootNodes(t, 2, nodeCfg(1))
	for _, ts := range https {
		ts.CloseClientConnections()
		ts.Close()
	}
	_, rts := bootRouter(t, nodes, func(c *RouterConfig) {
		c.RetryBackoff = time.Millisecond
		c.RetryBudget = time.Second
	})

	status, body, _ := get(t, rts.URL+"/bytes?alg=grain&n=64")
	if status != http.StatusBadGateway {
		t.Fatalf("status %d with all nodes down, want 502", status)
	}
	if !bytes.Contains(body, []byte("no node could serve")) {
		t.Errorf("502 body %q", body)
	}
	if got := routerMetric(t, rts.URL, "bsrngd_cluster_exhausted_total"); got != 1 {
		t.Errorf("exhausted_total %v, want 1", got)
	}
	if got := routerMetric(t, rts.URL, `bsrngd_cluster_requests_total{endpoint="bytes",status="502"}`); got != 1 {
		t.Errorf("requests_total 502 sample %v, want 1", got)
	}
}

// A node answering a retryable status fails over without the client
// noticing: node-side 503 (drain) → next candidate serves 200.
func TestRetryableStatusFailsOver(t *testing.T) {
	const seed = 23
	https, nodes := bootNodes(t, 2, nodeCfg(seed))
	_, rts := bootRouter(t, nodes, nil)

	// Find the owner of one addressed window and drain it so it answers
	// 503 to data requests while staying reachable.
	ring, err := NewRing(RingConfig{VirtualNodes: 32, SegmentWindow: 1024, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	owner := ring.Owner(ring.Key("grain", 4, 9))
	for i, n := range nodes {
		if n.Name == owner.Name {
			// Replace the owner with a server that only says 503.
			https[i].Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "draining", http.StatusServiceUnavailable)
			})
		}
	}

	const n = 2048
	want := libWindow(t, core.GRAIN, seed, 4, 9*core.SegmentBytes, n)
	status, body, hdr := get(t, fmt.Sprintf("%s/stream?alg=grain&domain=4&segment=9&n=%d", rts.URL, n))
	if status != http.StatusOK {
		t.Fatalf("status %d through draining owner, want 200", status)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("failover bytes diverge from library stream")
	}
	if got := hdr.Get("X-Bsrng-Cluster-Node"); got == owner.Name {
		t.Errorf("served by draining owner %s", got)
	}
	if got := routerMetric(t, rts.URL, "bsrngd_cluster_failovers_total"); got < 1 {
		t.Errorf("failovers_total %v, want >= 1", got)
	}
}
