package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/server"
)

// Router is bsrngd's cluster tier (bsrngd -router -ring ring.json): an
// HTTP front end that forwards /bytes, /stream, POST /lease and
// GET /lease/{id} to the ring owner of the request's address, with
// health-aware failover through the ring's successor order. Addressed
// and leased requests are byte-identical on every node sharing the
// seed, so any replica is a sound fallback; pooled requests (no
// deterministic address) are spread round-robin across healthy nodes.
//
// Failure handling: a forward attempt that dies on transport error or a
// retryable status (502/503/504) moves to the next candidate after
// RetryBackoff, bounded by MaxAttempts and the RetryBudget — but only
// until the first response byte has been forwarded; an interrupted
// stream is the client's to resume (lease tokens + off= make that
// exact, see DESIGN.md §13). A background prober polls every node's
// /healthz so dead nodes are demoted to last-resort candidates between
// failures. Everything is counted in the bsrngd_cluster_* metric
// family.
//
// The ring is swappable at runtime (SIGHUP → ReloadFromFile): requests
// in flight keep the ring they started with, and the reload's probe-key
// movement estimate is exported so operators see the rebalance cost.
type Router struct {
	cfg  RouterConfig
	ring atomic.Pointer[Ring]
	reg  *metrics.Registry
	mux  *http.ServeMux

	transport http.RoundTripper
	rr        atomic.Uint64 // pooled-spread rotation cursor

	mu    sync.Mutex // guards states map mutation (reload adds nodes)
	state map[string]*nodeState

	// baseCtx is the root of every router-originated request (health
	// probes); baseCancel aborts them all on Close, so a probe stuck in
	// a slow dial cannot delay shutdown by its full timeout.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	stop     chan struct{}
	stopOnce sync.Once
	probes   sync.WaitGroup

	forwarded   *metrics.LabeledCounter
	requests    *metrics.LabeledCounter
	failures    *metrics.LabeledCounter
	retries     *metrics.Counter
	failovers   *metrics.Counter
	exhausted   *metrics.Counter
	proxiedB    *metrics.Counter
	nodeUp      *metrics.LabeledGauge
	ringNodes   *metrics.Gauge
	ringReloads *metrics.Counter
	movedKeys   *metrics.Counter
	ringShare   *metrics.LabeledGauge
}

// nodeState is the router's health view of one node.
type nodeState struct {
	down atomic.Bool // optimistic: nodes start up
}

// RouterConfig tunes the router; zero values select the documented
// defaults.
type RouterConfig struct {
	// Ring is the initial membership (required).
	Ring *Ring
	// RingPath, when set, is the config file ReloadFromFile re-reads
	// (cmd/bsrngd wires SIGHUP to it).
	RingPath string
	// MaxAttempts caps forward attempts per request (default: one per
	// ring node).
	MaxAttempts int
	// RetryBackoff is the delay between forward attempts (default 25ms).
	RetryBackoff time.Duration
	// RetryBudget bounds the total time spent failing over one request
	// before giving up with 502 (default 10s).
	RetryBudget time.Duration
	// ProbeInterval is the node health poll period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeTimeout time.Duration
	// Transport overrides the outbound HTTP transport (tests).
	Transport http.RoundTripper
}

// probeSampleKeys sizes the deterministic key sample behind the
// rebalance and ring-share accounting.
const probeSampleKeys = 2048

// errForwardFault is the injected forward failure
// (failpoint cluster.forward.fail.<endpoint>).
var errForwardFault = errors.New("cluster: injected forward fault")

// NewRouter validates the config and builds the router (call Start to
// begin health probing, Close to stop it).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("cluster: router needs a ring")
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = len(cfg.Ring.Nodes())
	}
	if cfg.MaxAttempts < 1 {
		return nil, fmt.Errorf("cluster: max attempts %d out of range", cfg.MaxAttempts)
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 10 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = time.Second
	}
	rt := &Router{
		cfg:       cfg,
		reg:       metrics.NewRegistry(),
		mux:       http.NewServeMux(),
		state:     make(map[string]*nodeState),
		stop:      make(chan struct{}),
		transport: cfg.Transport,
	}
	rt.baseCtx, rt.baseCancel = context.WithCancel(context.Background())
	if rt.transport == nil {
		rt.transport = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConns:          256,
			MaxIdleConnsPerHost:   64,
			IdleConnTimeout:       30 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
		}
	}

	rt.forwarded = rt.reg.NewLabeledCounter("bsrngd_cluster_forwarded_total",
		"Requests forwarded to a node, by node and endpoint.", "node", "endpoint")
	rt.requests = rt.reg.NewLabeledCounter("bsrngd_cluster_requests_total",
		"Routed requests by endpoint and HTTP status returned to the client.",
		"endpoint", "status")
	rt.failures = rt.reg.NewLabeledCounter("bsrngd_cluster_forward_failures_total",
		"Forward attempts that failed (transport error, retryable status, injected fault), by node.",
		"node")
	rt.retries = rt.reg.NewCounter("bsrngd_cluster_retries_total",
		"Forward attempts beyond the first for one request.")
	rt.failovers = rt.reg.NewCounter("bsrngd_cluster_failovers_total",
		"Requests served by a node other than the ring owner.")
	rt.exhausted = rt.reg.NewCounter("bsrngd_cluster_exhausted_total",
		"Requests that ran out of candidates or retry budget (502 to the client).")
	rt.proxiedB = rt.reg.NewCounter("bsrngd_cluster_proxied_bytes_total",
		"Response body bytes relayed from nodes to clients.")
	rt.nodeUp = rt.reg.NewLabeledGauge("bsrngd_cluster_node_up",
		"1 while the node's last /healthz probe (or forward) succeeded, else 0.", "node")
	rt.ringNodes = rt.reg.NewGauge("bsrngd_cluster_ring_nodes",
		"Nodes in the active ring.")
	rt.ringReloads = rt.reg.NewCounter("bsrngd_cluster_ring_reloads_total",
		"Ring reloads applied (SIGHUP or SetRing).")
	rt.movedKeys = rt.reg.NewCounter("bsrngd_cluster_rebalance_keys_moved_total",
		"Probe keys (of a 2048-key deterministic sample per reload) whose owner changed.")
	rt.ringShare = rt.reg.NewLabeledGauge("bsrngd_cluster_ring_share_permille",
		"Per-node ownership share of the probe-key sample, in permille.", "node")

	rt.installRing(cfg.Ring)
	rt.ring.Store(cfg.Ring)

	rt.mux.HandleFunc("GET /bytes", rt.proxy("bytes"))
	rt.mux.HandleFunc("GET /stream", rt.proxy("stream"))
	rt.mux.HandleFunc("POST /lease", rt.proxy("lease"))
	rt.mux.HandleFunc("GET /lease/{id}", rt.proxy("lease"))
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Ring returns the active ring.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// Start launches the background node prober.
func (rt *Router) Start() {
	rt.probes.Add(1)
	go rt.probeLoop()
}

// Close stops the prober, cancelling any probe already in flight.
// Idempotent.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		rt.baseCancel()
	})
	rt.probes.Wait()
}

// SetRing swaps the membership: in-flight requests keep the ring they
// started with, new requests route on the new one. The probe-key
// movement count and per-node shares are re-exported so the rebalance
// cost is visible on /metrics.
func (rt *Router) SetRing(nr *Ring) {
	old := rt.ring.Load()
	rt.installRing(nr)
	rt.ring.Store(nr)
	rt.ringReloads.Inc()
	rt.movedKeys.Add(uint64(MovedKeys(old, nr, probeSampleKeys)))
}

// ReloadFromFile re-reads RingPath and applies the ring (the SIGHUP
// handler of bsrngd -router).
func (rt *Router) ReloadFromFile() error {
	if rt.cfg.RingPath == "" {
		return fmt.Errorf("cluster: router has no ring path to reload from")
	}
	nr, err := LoadRing(rt.cfg.RingPath)
	if err != nil {
		return err
	}
	rt.SetRing(nr)
	return nil
}

// installRing registers state + gauges for the ring's nodes.
func (rt *Router) installRing(r *Ring) {
	rt.mu.Lock()
	for _, n := range r.Nodes() {
		if rt.state[n.Name] == nil {
			rt.state[n.Name] = &nodeState{}
		}
	}
	rt.mu.Unlock()
	rt.ringNodes.Set(int64(len(r.Nodes())))
	shares := r.shares(probeSampleKeys)
	for name, cnt := range shares {
		rt.ringShare.With(name).Set(int64(cnt * 1000 / probeSampleKeys))
	}
	for _, n := range r.Nodes() {
		rt.setUpGauge(n.Name)
	}
}

// nodeState returns (creating if needed) the health record for a node.
func (rt *Router) nodeState(name string) *nodeState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := rt.state[name]
	if st == nil {
		st = &nodeState{}
		rt.state[name] = st
	}
	return st
}

func (rt *Router) setUpGauge(name string) {
	v := int64(1)
	if rt.nodeState(name).down.Load() {
		v = 0
	}
	rt.nodeUp.With(name).Set(v)
}

// markDown demotes a node after a failed forward or probe.
func (rt *Router) markDown(name string) {
	rt.nodeState(name).down.Store(true)
	rt.nodeUp.With(name).Set(0)
}

// markUp restores a node after a successful forward or probe.
func (rt *Router) markUp(name string) {
	rt.nodeState(name).down.Store(false)
	rt.nodeUp.With(name).Set(1)
}

// probeLoop polls every ring node's /healthz on ProbeInterval until
// Close.
func (rt *Router) probeLoop() {
	defer rt.probes.Done()
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.probeAll()
		}
	}
}

// probeAll checks each node once. Status 200 means serving; anything
// else (degraded, draining, unreachable) demotes the node to a
// last-resort candidate until it recovers.
func (rt *Router) probeAll() {
	for _, n := range rt.ring.Load().Nodes() {
		ctx, cancel := context.WithTimeout(rt.baseCtx, rt.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", http.NoBody)
		if err != nil {
			cancel()
			rt.markDown(n.Name)
			continue
		}
		resp, err := rt.transport.RoundTrip(req)
		if err != nil {
			cancel()
			rt.markDown(n.Name)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		if resp.StatusCode == http.StatusOK {
			rt.markUp(n.Name)
		} else {
			rt.markDown(n.Name)
		}
	}
}

// routeKey extracts the ownership key of a request; nil means the
// request names no deterministic address (pooled /bytes or /stream) and
// is spread instead of ring-routed. Unparseable addressing params also
// return nil — the serving node produces the canonical 400.
func (rt *Router) routeKey(r *http.Request, ring *Ring) *Key {
	q := r.URL.Query()
	algName := q.Get("alg")
	if algName == "" {
		algName = "mickey"
	}

	if r.Method == http.MethodPost && r.URL.Path == "/lease" {
		// Lease allocation anchors on a per-algorithm key so one node's
		// counter serializes all allocations for that algorithm — no two
		// nodes ever hand out overlapping lease domains (DESIGN.md §13).
		k := ring.Key(algName, 0, 0)
		return &k
	}
	if id := r.PathValue("id"); id != "" { // GET /lease/{id}
		l, err := server.DecodeLeaseToken(id)
		if err != nil {
			return nil
		}
		k := ring.Key(l.Alg.String(), l.Domain, l.StartSegment)
		return &k
	}
	if r.URL.Path != "/stream" {
		return nil // pooled /bytes
	}

	off, err := strconv.ParseUint(q.Get("off"), 10, 64)
	if err != nil {
		off = 0
	}
	if tok := q.Get("lease"); tok != "" {
		l, err := server.DecodeLeaseToken(tok)
		if err != nil {
			return nil
		}
		abs := l.StartSegment*core.SegmentBytes + off
		k := ring.Key(l.Alg.String(), l.Domain, abs/core.SegmentBytes)
		return &k
	}
	if !(q.Has("segment") || q.Has("domain") || q.Has("off") || q.Has("lanes")) {
		return nil // pooled /stream
	}
	domain, err := strconv.ParseUint(q.Get("domain"), 10, 64)
	if err != nil {
		domain = 0
	}
	seg, err := strconv.ParseUint(q.Get("segment"), 10, 64)
	if err != nil {
		seg = 0
	}
	abs := seg*core.SegmentBytes + off
	k := ring.Key(algName, domain, abs/core.SegmentBytes)
	return &k
}

// candidates orders the nodes to try: the ring walk from the key (owner
// first) for addressed requests, a round-robin rotation for pooled
// ones — in both cases with down nodes demoted to the tail as last
// resorts (any node may have recovered since its last probe).
func (rt *Router) candidates(ring *Ring, key *Key) []Node {
	var order []Node
	if key != nil {
		order = ring.Candidates(*key)
	} else {
		nodes := ring.Nodes()
		start := int(rt.rr.Add(1)-1) % len(nodes)
		order = make([]Node, 0, len(nodes))
		for i := 0; i < len(nodes); i++ {
			order = append(order, nodes[(start+i)%len(nodes)])
		}
	}
	up := make([]Node, 0, len(order))
	down := make([]Node, 0)
	for _, n := range order {
		if rt.nodeState(n.Name).down.Load() {
			down = append(down, n)
		} else {
			up = append(up, n)
		}
	}
	return append(up, down...)
}

// retryableStatus reports whether a node response should trigger
// failover instead of being relayed: the node-side "can't serve right
// now" statuses (drain, fully quarantined pool, gateway trouble).
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// proxy builds the forwarding handler for one endpoint family.
func (rt *Router) proxy(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ring := rt.ring.Load()
		key := rt.routeKey(r, ring)
		cands := rt.candidates(ring, key)
		owner := cands[0].Name
		if key != nil {
			owner = ring.Owner(*key).Name
		}
		attempts := rt.cfg.MaxAttempts
		if attempts > len(cands) {
			attempts = len(cands)
		}
		deadline := time.Now().Add(rt.cfg.RetryBudget)

		var lastErr error
		for i := 0; i < attempts; i++ {
			if i > 0 {
				rt.retries.Inc()
				select {
				case <-r.Context().Done():
					rt.requests.With(endpoint, "499").Inc()
					return
				case <-time.After(rt.cfg.RetryBackoff):
				}
				if time.Now().After(deadline) {
					break
				}
			}
			node := cands[i]
			resp, err := rt.attempt(node, endpoint, r)
			if err != nil {
				rt.failures.With(node.Name).Inc()
				if !errors.Is(err, errForwardFault) {
					rt.markDown(node.Name)
				}
				lastErr = fmt.Errorf("node %s: %w", node.Name, err)
				continue
			}
			if retryableStatus(resp.StatusCode) && i+1 < attempts && time.Now().Before(deadline) {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rt.failures.With(node.Name).Inc()
				lastErr = fmt.Errorf("node %s: status %d", node.Name, resp.StatusCode)
				continue
			}
			rt.markUp(node.Name)
			if node.Name != owner {
				rt.failovers.Inc()
			}
			rt.forwarded.With(node.Name, endpoint).Inc()
			rt.requests.With(endpoint, strconv.Itoa(resp.StatusCode)).Inc()
			rt.relay(w, r, resp, node)
			return
		}
		rt.exhausted.Inc()
		rt.requests.With(endpoint, strconv.Itoa(http.StatusBadGateway)).Inc()
		msg := "cluster: no node could serve the request"
		if lastErr != nil {
			msg += ": " + lastErr.Error()
		}
		http.Error(w, msg, http.StatusBadGateway)
	}
}

// attempt forwards the request to one node. None of the routed
// endpoints carries a request body (POST /lease is query-only), so
// attempts are trivially replayable.
func (rt *Router) attempt(node Node, endpoint string, r *http.Request) (*http.Response, error) {
	if faultinject.Hit("cluster.forward.fail." + endpoint) {
		return nil, errForwardFault
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		node.URL+r.URL.RequestURI(), http.NoBody)
	if err != nil {
		return nil, err
	}
	return rt.transport.RoundTrip(req)
}

// relay copies the node response to the client, flushing per read so
// /stream chunks keep their as-generated delivery through the router.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, resp *http.Response, node Node) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("X-Bsrng-Cluster-Node", node.Name)
	w.WriteHeader(resp.StatusCode)
	var flush func()
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away; the node sees the cancel via ctx
			}
			rt.proxiedB.Add(uint64(n))
			if flush != nil {
				flush()
			}
		}
		if err != nil {
			return // io.EOF, node died mid-body, or client ctx canceled
		}
	}
}

// routerHealthz is the router's /healthz document.
type routerHealthz struct {
	// Status is "ok" (all nodes up), "degraded" (some down, still
	// serving) or "down" (no node up; responds 503).
	Status string              `json:"status"`
	Nodes  []routerHealthzNode `json:"nodes"`
	Ring   routerHealthzRing   `json:"ring"`
}

type routerHealthzNode struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Up   bool   `json:"up"`
}

type routerHealthzRing struct {
	Nodes         int    `json:"nodes"`
	VirtualNodes  int    `json:"virtual_nodes"`
	SegmentWindow uint64 `json:"segment_window"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ring := rt.ring.Load()
	nodes := ring.Nodes()
	doc := routerHealthz{
		Status: "ok",
		Nodes:  make([]routerHealthzNode, 0, len(nodes)),
		Ring: routerHealthzRing{
			Nodes:         len(nodes),
			VirtualNodes:  ring.VirtualNodes(),
			SegmentWindow: ring.SegmentWindow(),
		},
	}
	up := 0
	for _, n := range nodes {
		ok := !rt.nodeState(n.Name).down.Load()
		if ok {
			up++
		}
		doc.Nodes = append(doc.Nodes, routerHealthzNode{Name: n.Name, URL: n.URL, Up: ok})
	}
	switch {
	case up == 0:
		doc.Status = "down"
	case up < len(nodes):
		doc.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if doc.Status == "down" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WriteText(w)
}
