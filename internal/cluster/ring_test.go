package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testRing builds an n-node ring with the given vnode count.
func testRing(t *testing.T, n, vnodes int, window uint64) *Ring {
	t.Helper()
	cfg := RingConfig{VirtualNodes: vnodes, SegmentWindow: window}
	for i := 0; i < n; i++ {
		cfg.Nodes = append(cfg.Nodes, Node{
			Name: fmt.Sprintf("n%d", i),
			URL:  fmt.Sprintf("http://127.0.0.1:%d", 8000+i),
		})
	}
	r, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sampleKeys draws a deterministic spread of ownership keys.
func sampleKeys(n int) []Key {
	keys := make([]Key, n)
	algs := [...]string{"mickey", "grain", "trivium", "aes-ctr"}
	x := uint64(7)
	for i := range keys {
		x = splitmix(x)
		keys[i] = Key{Alg: algs[i%len(algs)], Domain: x % 512, Window: splitmix(x) % (1 << 24)}
	}
	return keys
}

func TestRingOwnerDeterministic(t *testing.T) {
	a := testRing(t, 5, 64, 1024)
	b := testRing(t, 5, 64, 1024)
	for _, k := range sampleKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("identical rings disagree on owner of %+v", k)
		}
	}
}

func TestRingKeyWindowing(t *testing.T) {
	r := testRing(t, 3, 16, 1024)
	// Every segment inside one window maps to the same key; adjacent
	// windows differ.
	k0 := r.Key("grain", 9, 0)
	if got := r.Key("grain", 9, 1023); got != k0 {
		t.Errorf("segments 0 and 1023 split windows: %+v vs %+v", k0, got)
	}
	if got := r.Key("grain", 9, 1024); got.Window != 1 {
		t.Errorf("segment 1024 in window %d, want 1", got.Window)
	}
}

// The consistent-hashing contract: removing a node moves only the keys
// it owned; every key owned by a surviving node keeps its owner.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	const nodes, keys = 8, 20000
	full := testRing(t, nodes, 128, 1024)
	smaller := testRing(t, nodes-1, 128, 1024) // drops n7

	moved := 0
	for _, k := range sampleKeys(keys) {
		was, is := full.Owner(k), smaller.Owner(k)
		if was.Name == "n7" {
			moved++
			continue // had to move: its owner left
		}
		if was != is {
			t.Fatalf("key %+v moved from surviving node %s to %s", k, was.Name, is.Name)
		}
	}
	// The removed node's share ≈ 1/nodes of the keys; allow generous
	// slack for hash variance at 128 vnodes.
	lo, hi := keys/nodes/2, keys/nodes*2
	if moved < lo || moved > hi {
		t.Errorf("removal moved %d of %d keys, want within [%d, %d]", moved, keys, lo, hi)
	}
}

// Adding a node moves keys only TO the new node, ≈1/(n+1) of them.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	const nodes, keys = 8, 20000
	before := testRing(t, nodes, 128, 1024)
	after := testRing(t, nodes+1, 128, 1024) // adds n8

	moved := 0
	for _, k := range sampleKeys(keys) {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		if is.Name != "n8" {
			t.Fatalf("key %+v moved to old node %s (was %s) — not minimal", k, is.Name, was.Name)
		}
		moved++
	}
	lo, hi := keys/(nodes+1)/2, keys/(nodes+1)*2
	if moved < lo || moved > hi {
		t.Errorf("addition moved %d of %d keys, want within [%d, %d]", moved, keys, lo, hi)
	}
}

// Virtual nodes keep per-node shares near uniform.
func TestRingBalance(t *testing.T) {
	const nodes, keys = 6, 30000
	r := testRing(t, nodes, 128, 1024)
	counts := map[string]int{}
	for _, k := range sampleKeys(keys) {
		counts[r.Owner(k).Name]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), nodes, counts)
	}
	mean := keys / nodes
	for name, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("node %s owns %d keys (mean %d) — ring badly skewed: %v", name, c, mean, counts)
		}
	}
}

func TestRingCandidatesCompleteAndOwnerFirst(t *testing.T) {
	r := testRing(t, 5, 64, 1024)
	for _, k := range sampleKeys(500) {
		cands := r.Candidates(k)
		if len(cands) != 5 {
			t.Fatalf("got %d candidates, want 5", len(cands))
		}
		if cands[0] != r.Owner(k) {
			t.Fatalf("candidates[0] = %s, owner = %s", cands[0].Name, r.Owner(k).Name)
		}
		seen := map[string]bool{}
		for _, n := range cands {
			if seen[n.Name] {
				t.Fatalf("duplicate candidate %s", n.Name)
			}
			seen[n.Name] = true
		}
	}
}

func TestMovedKeysEstimate(t *testing.T) {
	a := testRing(t, 4, 64, 1024)
	if got := MovedKeys(a, a, 1000); got != 0 {
		t.Errorf("identical rings report %d moved keys", got)
	}
	b := testRing(t, 5, 64, 1024)
	moved := MovedKeys(a, b, 1000)
	if moved == 0 || moved > 1000/3 {
		t.Errorf("adding 1 of 5 nodes moved %d/1000 probe keys", moved)
	}
}

func TestRingSharesCoverAllNodes(t *testing.T) {
	r := testRing(t, 4, 64, 1024)
	shares := r.shares(1000)
	total := 0
	for i := 0; i < 4; i++ {
		c, ok := shares[fmt.Sprintf("n%d", i)]
		if !ok {
			t.Fatalf("node n%d missing from shares %v", i, shares)
		}
		total += c
	}
	if total != 1000 {
		t.Errorf("shares sum %d, want 1000", total)
	}
}

func TestNewRingValidation(t *testing.T) {
	good := []Node{{Name: "a", URL: "http://h:1"}, {Name: "b", URL: "http://h:2"}}
	cases := []struct {
		name string
		cfg  RingConfig
	}{
		{"no nodes", RingConfig{}},
		{"empty name", RingConfig{Nodes: []Node{{URL: "http://h:1"}}}},
		{"dup name", RingConfig{Nodes: []Node{good[0], {Name: "a", URL: "http://h:3"}}}},
		{"bad url", RingConfig{Nodes: []Node{{Name: "a", URL: "not a url"}}}},
		{"no scheme", RingConfig{Nodes: []Node{{Name: "a", URL: "127.0.0.1:8080"}}}},
		{"negative vnodes", RingConfig{VirtualNodes: -1, Nodes: good}},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	r, err := NewRing(RingConfig{Nodes: good})
	if err != nil {
		t.Fatal(err)
	}
	if r.SegmentWindow() != DefaultSegmentWindow || r.VirtualNodes() != DefaultVirtualNodes {
		t.Errorf("defaults not applied: window %d vnodes %d", r.SegmentWindow(), r.VirtualNodes())
	}
}

func TestParseAndLoadRing(t *testing.T) {
	doc := `{"virtual_nodes": 8, "segment_window": 64,
		"nodes": [{"name": "a", "url": "http://127.0.0.1:1"},
		          {"name": "b", "url": "http://127.0.0.1:2"}]}`
	r, err := ParseRing([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes()) != 2 || r.SegmentWindow() != 64 || r.VirtualNodes() != 8 {
		t.Errorf("parsed ring: %d nodes, window %d, vnodes %d", len(r.Nodes()), r.SegmentWindow(), r.VirtualNodes())
	}

	if _, err := ParseRing([]byte(`{"nodes": [], "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseRing([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}

	path := filepath.Join(t.TempDir(), "ring.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRing(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRing(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
