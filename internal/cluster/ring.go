// Package cluster is the multi-node tier of the bsrngd serving stack: a
// consistent-hash ring partitioning the deterministic segment address
// space across N bsrngd nodes, and a router that proxies /bytes,
// /stream and the lease endpoints to the owning node with health-aware
// failover to any replica.
//
// The partition key is (algorithm, domain, segment window): every byte
// bsrngd serves on an addressed path is a pure function of
// (alg, seed, domain, segment), so ownership is purely a load-placement
// decision — any node sharing the seed produces byte-identical output
// for any window, which is what makes failover sound (DESIGN.md §13).
// Segment indices are grouped into windows of SegmentWindow segments so
// one lease or one long addressed read stays on one node.
//
// Membership is a static ring config (ring.json) with minimal-movement
// rebalance semantics: adding or removing a node remaps only the keys
// whose ring arc the change touches (≈1/N of the space), never keys
// between two surviving nodes.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
)

const (
	// DefaultVirtualNodes is the per-node virtual point count; more
	// points smooth the ownership shares at the cost of a larger ring.
	DefaultVirtualNodes = 64
	// DefaultSegmentWindow is how many consecutive segments share one
	// owner (1024 segments = 2 MiB of stream per ownership window).
	DefaultSegmentWindow = 1024
)

// Node is one bsrngd member of the ring.
type Node struct {
	// Name identifies the node in metrics and healthz output; it is also
	// the ring-point salt, so renaming a node remaps its share.
	Name string `json:"name"`
	// URL is the node's base URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// RingConfig is the JSON shape of a ring file (bsrngd -router -ring).
type RingConfig struct {
	// VirtualNodes per member (default DefaultVirtualNodes).
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	// SegmentWindow is the ownership granularity in segments (default
	// DefaultSegmentWindow).
	SegmentWindow uint64 `json:"segment_window,omitempty"`
	Nodes         []Node `json:"nodes"`
}

// Key names one ownership unit of the served address space.
type Key struct {
	Alg    string
	Domain uint64
	// Window is the segment window index (segment / SegmentWindow).
	Window uint64
}

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// Ring is an immutable consistent-hash ring; the router swaps whole
// rings on reload instead of mutating one in place.
type Ring struct {
	nodes  []Node
	window uint64
	vnodes int
	points []ringPoint // sorted by hash
}

// NewRing validates the config and builds the ring.
func NewRing(cfg RingConfig) (*Ring, error) {
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	if cfg.VirtualNodes < 1 {
		return nil, fmt.Errorf("cluster: virtual_nodes %d out of range", cfg.VirtualNodes)
	}
	if cfg.SegmentWindow == 0 {
		cfg.SegmentWindow = DefaultSegmentWindow
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring has no nodes")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node with empty name")
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: node %q has invalid url %q", n.Name, n.URL)
		}
	}
	r := &Ring{
		nodes:  append([]Node(nil), cfg.Nodes...),
		window: cfg.SegmentWindow,
		vnodes: cfg.VirtualNodes,
		points: make([]ringPoint, 0, len(cfg.Nodes)*cfg.VirtualNodes),
	}
	for i, n := range r.nodes {
		for v := 0; v < cfg.VirtualNodes; v++ {
			h := fnv64(fmt.Sprintf("vnode|%s|%d", n.Name, v))
			r.points = append(r.points, ringPoint{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// ParseRing decodes a ring config document and builds the ring.
func ParseRing(data []byte) (*Ring, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var cfg RingConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("cluster: ring config: %w", err)
	}
	return NewRing(cfg)
}

// LoadRing reads and parses a ring config file.
func LoadRing(path string) (*Ring, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return ParseRing(data)
}

// Nodes returns the ring members in config order.
func (r *Ring) Nodes() []Node { return append([]Node(nil), r.nodes...) }

// SegmentWindow is the ownership granularity in segments.
func (r *Ring) SegmentWindow() uint64 { return r.window }

// VirtualNodes is the per-node virtual point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Key maps an absolute segment index to its ownership key.
func (r *Ring) Key(alg string, domain, segment uint64) Key {
	return Key{Alg: alg, Domain: domain, Window: segment / r.window}
}

// Owner returns the node owning the key: the first virtual point at or
// clockwise of the key's hash.
func (r *Ring) Owner(k Key) Node {
	return r.nodes[r.points[r.search(k)].node]
}

// Candidates returns every node ordered by the ring walk from the key's
// hash: the owner first, then each distinct successor. Determinism makes
// every entry a byte-identical fallback for addressed traffic, so this
// is the router's failover order.
func (r *Ring) Candidates(k Key) []Node {
	out := make([]Node, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for i, start := 0, r.search(k); i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// search locates the first ring point at or clockwise of the key hash.
func (r *Ring) search(k Key) int {
	h := keyHash(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// probeKeys is the deterministic sample MovedKeys and ownership-share
// accounting draw from: a spread of (alg, domain, window) triples.
func probeKeys(n int) []Key {
	keys := make([]Key, n)
	algs := [...]string{"mickey", "grain", "aes-ctr", "trivium", "xorgens", "chaotic(grain)"}
	x := uint64(0x9E3779B97F4A7C15)
	for i := range keys {
		x = splitmix(x)
		keys[i] = Key{
			Alg:    algs[int(x%uint64(len(algs)))],
			Domain: splitmix(x) % 1024,
			Window: splitmix(x^0xD1B54A32D192ED03) % (1 << 20),
		}
	}
	return keys
}

// MovedKeys reports how many of n deterministic probe keys change owner
// between two rings — the rebalance cost estimate the router exposes on
// reload. For a minimal-movement ring this stays near n/len(nodes) when
// one node is added or removed.
func MovedKeys(old, new *Ring, n int) int {
	moved := 0
	for _, k := range probeKeys(n) {
		if old.Owner(k).Name != new.Owner(k).Name {
			moved++
		}
	}
	return moved
}

// shares reports how many of n probe keys each node owns, keyed by node
// name — the ring-skew view (per-node gauges on /metrics).
func (r *Ring) shares(n int) map[string]int {
	out := make(map[string]int, len(r.nodes))
	for _, nd := range r.nodes {
		out[nd.Name] = 0
	}
	for _, k := range probeKeys(n) {
		out[r.Owner(k).Name]++
	}
	return out
}

// keyHash positions an ownership key on the circle.
func keyHash(k Key) uint64 {
	return fnv64(fmt.Sprintf("key|%s|%d|%d", k.Alg, k.Domain, k.Window))
}

// fnv64 is FNV-1a, the repo's standard name hash (matches
// internal/faultinject's trigger derivation).
func fnv64(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

// splitmix is the repo's standard mixing permutation, used here to
// spread the probe-key sample.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
