package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// nodeCfg is the cheap single-algorithm node configuration the cluster
// tests boot: 1 shard × 1 worker keeps each in-process node light, and
// shard 0 of every node serves exactly the canonical library stream.
func nodeCfg(seed uint64) server.Config {
	return server.Config{
		Seed:            seed,
		Algorithms:      []core.Algorithm{core.GRAIN},
		ShardsPerAlg:    1,
		WorkersPerShard: 1,
		StagingBytes:    2048,
	}
}

// bootNodes starts n in-process bsrngd nodes sharing cfg (and its seed)
// and returns their HTTP servers plus ring membership entries.
func bootNodes(t *testing.T, n int, cfg server.Config) ([]*httptest.Server, []Node) {
	t.Helper()
	https := make([]*httptest.Server, n)
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Shutdown(context.Background())
		})
		https[i] = ts
		nodes[i] = Node{Name: fmt.Sprintf("n%d", i), URL: ts.URL}
	}
	return https, nodes
}

// bootRouter builds a router over the nodes and serves it. The prober
// is not started — tests drive probeAll directly where they need it.
func bootRouter(t *testing.T, nodes []Node, mod func(*RouterConfig)) (*Router, *httptest.Server) {
	t.Helper()
	ring, err := NewRing(RingConfig{VirtualNodes: 32, SegmentWindow: 1024, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{Ring: ring, RetryBackoff: time.Millisecond}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// metricValue extracts one sample from a /metrics exposition.
func metricValue(t *testing.T, body []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	return 0
}

func routerMetric(t *testing.T, routerURL, name string) float64 {
	t.Helper()
	_, body, _ := get(t, routerURL+"/metrics")
	return metricValue(t, body, name)
}

// libWindow reads n bytes of the canonical (alg, seed, domain) stream
// from absolute byte offset off.
func libWindow(t *testing.T, alg core.Algorithm, seed, domain, off uint64, n int) []byte {
	t.Helper()
	src, err := core.NewSegmentReader(alg, seed, domain, 0, off)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	if _, err := io.ReadFull(src, want); err != nil {
		t.Fatal(err)
	}
	return want
}

// The tentpole differential: a routed addressed /stream window is
// byte-identical to the library stream AND to the same request served
// directly by every node — at every lane width, including a mid-segment
// start. Determinism is what makes the router's failover sound, so this
// is the contract everything else leans on.
func TestRoutedAddressedStreamDifferential(t *testing.T) {
	const seed = 42
	https, nodes := bootNodes(t, 3, nodeCfg(seed))
	_, rts := bootRouter(t, nodes, nil)

	const (
		domain = 5
		seg    = 7
		off    = 1337 // mid-segment
		n      = 6000
	)
	abs := uint64(seg)*core.SegmentBytes + off
	want := libWindow(t, core.GRAIN, seed, domain, abs, n)

	for _, lanes := range core.SupportedLanes {
		q := fmt.Sprintf("/stream?alg=grain&domain=%d&segment=%d&off=%d&lanes=%d&n=%d",
			domain, seg, off, lanes, n)
		status, body, hdr := get(t, rts.URL+q)
		if status != http.StatusOK {
			t.Fatalf("lanes %d: routed status %d", lanes, status)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("lanes %d: routed bytes diverge from library stream", lanes)
		}
		if hdr.Get("X-Bsrng-Cluster-Node") == "" {
			t.Errorf("lanes %d: no cluster node header", lanes)
		}
		// Every node — owner or not — serves the identical window.
		for i, ts := range https {
			st, direct, _ := get(t, ts.URL+q)
			if st != http.StatusOK {
				t.Fatalf("lanes %d node %d: direct status %d", lanes, i, st)
			}
			if !bytes.Equal(direct, want) {
				t.Fatalf("lanes %d node %d: direct bytes diverge", lanes, i)
			}
		}
	}
}

// Routed pooled /bytes serves exactly the canonical stream prefix: the
// router picks a fresh node, and every fresh node's first pooled
// request is the library stream from byte 0.
func TestRoutedBytesMatchesDirectAndLibrary(t *testing.T) {
	const seed = 99
	https, nodes := bootNodes(t, 3, nodeCfg(seed))
	_, rts := bootRouter(t, nodes, nil)

	status, routed, hdr := get(t, rts.URL+"/bytes?alg=grain&n=4096")
	if status != http.StatusOK {
		t.Fatalf("routed status %d", status)
	}
	servedBy := hdr.Get("X-Bsrng-Cluster-Node")

	ref, err := core.NewStream(core.GRAIN, seed, core.StreamConfig{Workers: 1, StagingBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]byte, 4096)
	if _, err := ref.Read(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(routed, want) {
		t.Fatal("routed /bytes diverges from library stream prefix")
	}

	// A direct first request against a node the router did NOT use is
	// the same prefix — any replica serves the same canonical stream.
	for i, ts := range https {
		if nodes[i].Name == servedBy {
			continue
		}
		st, direct, _ := get(t, ts.URL+"/bytes?alg=grain&n=4096")
		if st != http.StatusOK {
			t.Fatalf("direct status %d", st)
		}
		if !bytes.Equal(direct, want) {
			t.Fatal("direct node /bytes diverges from routed bytes")
		}
		break
	}
}

// leaseDoc mirrors the POST /lease JSON.
type leaseDoc struct {
	ID           string `json:"id"`
	Algorithm    string `json:"alg"`
	Domain       uint64 `json:"domain"`
	StartSegment uint64 `json:"start_segment"`
	Segments     uint64 `json:"segments"`
	Bytes        uint64 `json:"bytes"`
	StreamPath   string `json:"stream_path"`
}

func createLease(t *testing.T, base string, segments int) leaseDoc {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/lease?alg=grain&segments=%d", base, segments), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("lease status %d err %v", resp.StatusCode, err)
	}
	var doc leaseDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// Lease issue, resolve, stream and mid-window resume all work through
// the router, and the reassembled window is the library stream — at
// every lane width.
func TestLeaseRoundTripThroughRouter(t *testing.T) {
	const seed = 7
	_, nodes := bootNodes(t, 3, nodeCfg(seed))
	_, rts := bootRouter(t, nodes, nil)

	doc := createLease(t, rts.URL, 4)
	if doc.Bytes != 4*core.SegmentBytes {
		t.Fatalf("lease window %d bytes", doc.Bytes)
	}

	// GET /lease/{id} resolves the token through the router.
	status, raw, _ := get(t, rts.URL+"/lease/"+doc.ID)
	if status != http.StatusOK {
		t.Fatalf("lease resolve status %d", status)
	}
	var resolved leaseDoc
	if err := json.Unmarshal(raw, &resolved); err != nil {
		t.Fatal(err)
	}
	if resolved.Domain != doc.Domain || resolved.Segments != doc.Segments {
		t.Fatalf("resolved lease %+v differs from issued %+v", resolved, doc)
	}

	want := libWindow(t, core.GRAIN, seed, doc.Domain, doc.StartSegment*core.SegmentBytes, int(doc.Bytes))
	half := doc.Bytes / 2
	for _, lanes := range core.SupportedLanes {
		st1, part1, _ := get(t, fmt.Sprintf("%s%s&n=%d&lanes=%d", rts.URL, doc.StreamPath, half, lanes))
		st2, part2, _ := get(t, fmt.Sprintf("%s%s&off=%d&lanes=%d", rts.URL, doc.StreamPath, half, lanes))
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("lanes %d: stream statuses %d, %d", lanes, st1, st2)
		}
		got := append(append([]byte(nil), part1...), part2...)
		if !bytes.Equal(got, want) {
			t.Fatalf("lanes %d: lease window reassembled through router diverges from library", lanes)
		}
	}
}

// Pooled traffic spreads round-robin over healthy nodes.
func TestPooledSpreadAcrossNodes(t *testing.T) {
	_, nodes := bootNodes(t, 3, nodeCfg(1))
	_, rts := bootRouter(t, nodes, nil)

	for i := 0; i < 9; i++ {
		if status, _, _ := get(t, rts.URL+"/bytes?alg=grain&n=64"); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	_, body, _ := get(t, rts.URL+"/metrics")
	for _, n := range nodes {
		sample := fmt.Sprintf(`bsrngd_cluster_forwarded_total{node=%q,endpoint="bytes"}`, n.Name)
		if got := metricValue(t, body, sample); got != 3 {
			t.Errorf("node %s forwarded %v pooled requests, want 3", n.Name, got)
		}
	}
}

// The router's own health document tracks node probes.
func TestRouterHealthz(t *testing.T) {
	https, nodes := bootNodes(t, 3, nodeCfg(1))
	rt, rts := bootRouter(t, nodes, nil)

	rt.probeAll()
	status, body, _ := get(t, rts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var doc struct {
		Status string `json:"status"`
		Nodes  []struct {
			Name string `json:"name"`
			Up   bool   `json:"up"`
		} `json:"nodes"`
		Ring struct {
			Nodes int `json:"nodes"`
		} `json:"ring"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Ring.Nodes != 3 {
		t.Fatalf("healthz %s with %d ring nodes", doc.Status, doc.Ring.Nodes)
	}

	// Kill one node: the next probe demotes it and healthz degrades.
	https[1].CloseClientConnections()
	https[1].Close()
	rt.probeAll()
	status, body, _ = get(t, rts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("degraded healthz status %d (router can still serve)", status)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "degraded" {
		t.Fatalf("healthz status %q after node kill, want degraded", doc.Status)
	}
	for _, n := range doc.Nodes {
		if n.Name == "n1" && n.Up {
			t.Error("killed node still reported up after probe")
		}
	}
	if got := routerMetric(t, rts.URL, `bsrngd_cluster_node_up{node="n1"}`); got != 0 {
		t.Errorf("node_up gauge %v for killed node", got)
	}

	// Kill the rest: the router itself goes down (503).
	https[0].CloseClientConnections()
	https[0].Close()
	https[2].CloseClientConnections()
	https[2].Close()
	rt.probeAll()
	status, body, _ = get(t, rts.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-down healthz status %d, want 503", status)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "down" {
		t.Fatalf("healthz status %q, want down", doc.Status)
	}
}

// Ring reload: SetRing swaps membership minimally and the rebalance
// cost shows up on /metrics; ReloadFromFile applies an edited ring file
// (the SIGHUP path) and rejects a broken one without losing the ring.
func TestRingReload(t *testing.T) {
	_, nodes := bootNodes(t, 3, nodeCfg(1))

	path := filepath.Join(t.TempDir(), "ring.json")
	writeRing := func(ns []Node) {
		t.Helper()
		raw, err := json.Marshal(RingConfig{VirtualNodes: 32, SegmentWindow: 1024, Nodes: ns})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRing(nodes[:2])

	rt, rts := bootRouter(t, nodes[:2], func(c *RouterConfig) { c.RingPath = path })
	if got := routerMetric(t, rts.URL, "bsrngd_cluster_ring_nodes"); got != 2 {
		t.Fatalf("ring_nodes %v, want 2", got)
	}

	writeRing(nodes)
	if err := rt.ReloadFromFile(); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Ring().Nodes()); got != 3 {
		t.Fatalf("ring has %d nodes after reload, want 3", got)
	}
	if got := routerMetric(t, rts.URL, "bsrngd_cluster_ring_reloads_total"); got != 1 {
		t.Errorf("ring_reloads_total %v, want 1", got)
	}
	if got := routerMetric(t, rts.URL, "bsrngd_cluster_rebalance_keys_moved_total"); got == 0 {
		t.Error("no probe keys moved on a 2→3 node reload")
	}
	// The new node takes routed traffic: pooled spread now covers n2.
	for i := 0; i < 6; i++ {
		if status, _, _ := get(t, rts.URL+"/bytes?alg=grain&n=64"); status != http.StatusOK {
			t.Fatalf("post-reload request %d failed", i)
		}
	}
	_, body, _ := get(t, rts.URL+"/metrics")
	if got := metricValue(t, body, `bsrngd_cluster_forwarded_total{node="n2",endpoint="bytes"}`); got == 0 {
		t.Error("reloaded-in node n2 received no traffic")
	}

	// A broken file must not clobber the working ring.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := rt.ReloadFromFile(); err == nil {
		t.Fatal("broken ring file accepted")
	}
	if got := len(rt.Ring().Nodes()); got != 3 {
		t.Fatalf("ring lost nodes after failed reload: %d", got)
	}

	// A router without a ring path cannot reload.
	rt2, _ := bootRouter(t, nodes[:2], nil)
	if err := rt2.ReloadFromFile(); err == nil {
		t.Error("ReloadFromFile without RingPath accepted")
	}
}

// Invalid requests still produce the serving node's canonical errors
// through the router (the router never masks a 4xx).
func TestRouterRelaysNodeErrors(t *testing.T) {
	_, nodes := bootNodes(t, 2, nodeCfg(1))
	_, rts := bootRouter(t, nodes, nil)

	status, body, _ := get(t, rts.URL+"/bytes?alg=rot13&n=64")
	if status != http.StatusBadRequest {
		t.Fatalf("bad alg status %d, want 400", status)
	}
	if !strings.Contains(string(body), "algorithm") {
		t.Errorf("bad alg body %q", body)
	}
	if status, _, _ := get(t, rts.URL+"/stream?lease=!!!"); status != http.StatusBadRequest {
		t.Errorf("bad lease token status %d, want 400", status)
	}
}

// blockingTransport parks every probe until its request context is
// cancelled, so the test below can prove Close aborts in-flight probes.
type blockingTransport struct{ entered chan struct{} }

func (bt *blockingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	select {
	case bt.entered <- struct{}{}:
	default:
	}
	<-r.Context().Done()
	return nil, r.Context().Err()
}

// TestCloseCancelsInflightProbe is the regression test for the probe
// context fix (flagged by the context-propagation analyzer): probes
// used to root their context in context.Background(), so a probe stuck
// in a slow dial could delay Close by the full ProbeTimeout. Probes now
// derive from the router's base context, which Close cancels.
func TestCloseCancelsInflightProbe(t *testing.T) {
	_, nodes := bootNodes(t, 1, nodeCfg(1))
	bt := &blockingTransport{entered: make(chan struct{}, 1)}
	rt, _ := bootRouter(t, nodes, func(cfg *RouterConfig) {
		cfg.ProbeInterval = time.Millisecond
		cfg.ProbeTimeout = time.Minute // only cancellation can unblock
		cfg.Transport = bt
	})
	rt.Start()
	select {
	case <-bt.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("prober never issued a probe")
	}
	done := make(chan struct{})
	go func() {
		rt.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the in-flight probe (stuck behind ProbeTimeout)")
	}
}
