package certify

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sp80022"
)

// TestResult is one SP 800-22 test's Table 3 row for one cell.
type TestResult struct {
	Name       string  `json:"name"`
	Streams    int     `json:"streams"` // contributing p-values
	Uniformity float64 `json:"uniformity"`
	Proportion float64 `json:"proportion"`
	// Retried marks a §4.2 second-opinion result: the first sample was
	// marginal and this row is from a fresh sample of the same stream.
	Retried bool `json:"retried,omitempty"`
	Pass    bool `json:"pass"`
}

// Cell is one (algorithm, lane-width) entry of the certification
// matrix. Lanes 0 marks a dial-mode cell whose server-side width is not
// locally known.
type Cell struct {
	Algorithm      string       `json:"algorithm"`
	Lanes          int          `json:"lanes,omitempty"`
	Segments       int          `json:"segments"`
	Bytes          int          `json:"bytes"`
	CrossChecked   bool         `json:"cross_checked"`
	CrossCheckOK   bool         `json:"cross_check_ok"`
	HealthFailures int          `json:"health_failures"`
	Retried        bool         `json:"retried,omitempty"`
	Tests          []TestResult `json:"tests,omitempty"`
	Skipped        []string     `json:"skipped,omitempty"`
	Error          string       `json:"error,omitempty"`
	Pass           bool         `json:"pass"`
}

// Report is the machine-readable certification outcome (CERTIFY.json).
type Report struct {
	Mode          string  `json:"mode"` // "boot" or "dial"
	Seed          uint64  `json:"seed"`
	Segments      int     `json:"segments"`
	Streams       int     `json:"streams"`
	BitsPerStream int     `json:"bits_per_stream"`
	Alpha         float64 `json:"alpha"`
	Cells         []Cell  `json:"cells"`
	Pass          bool    `json:"pass"`
}

func (r *Report) add(c Cell) {
	r.Alpha = sp80022.Alpha
	r.Cells = append(r.Cells, c)
	if !c.Pass {
		r.Pass = false
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the report for humans: the pass/fail matrix,
// then a per-cell Table 3 with any skipped tests and errors.
func (r *Report) WriteMarkdown(w io.Writer) error {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "# Served-path certification: %s\n\n", status)
	fmt.Fprintf(w, "mode %s, seed %d, %d segments/cell, %d streams × %d bits, α=%.2f\n\n",
		r.Mode, r.Seed, r.Segments, r.Streams, r.BitsPerStream, r.Alpha)

	// Matrix: one row per algorithm, one column per lane width.
	lanes := []int{}
	seenLanes := map[int]bool{}
	algs := []string{}
	seenAlgs := map[string]bool{}
	byKey := map[string]Cell{}
	for _, c := range r.Cells {
		if !seenLanes[c.Lanes] {
			seenLanes[c.Lanes] = true
			lanes = append(lanes, c.Lanes)
		}
		if !seenAlgs[c.Algorithm] {
			seenAlgs[c.Algorithm] = true
			algs = append(algs, c.Algorithm)
		}
		byKey[cellKey(c.Algorithm, c.Lanes)] = c
	}
	fmt.Fprint(w, "| algorithm |")
	for _, l := range lanes {
		fmt.Fprintf(w, " %s |", laneLabel(l))
	}
	fmt.Fprint(w, "\n|---|")
	for range lanes {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, a := range algs {
		fmt.Fprintf(w, "| %s |", a)
		for _, l := range lanes {
			c, ok := byKey[cellKey(a, l)]
			switch {
			case !ok:
				fmt.Fprint(w, " — |")
			case c.Pass:
				fmt.Fprint(w, " ✅ |")
			default:
				fmt.Fprint(w, " ❌ |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	for _, c := range r.Cells {
		fmt.Fprintf(w, "## %s · %s\n\n", c.Algorithm, laneLabel(c.Lanes))
		if c.Error != "" {
			fmt.Fprintf(w, "**error:** %s\n\n", c.Error)
			continue
		}
		cross := "skipped"
		if c.CrossChecked {
			cross = "FAIL"
			if c.CrossCheckOK {
				cross = "ok"
			}
		}
		fmt.Fprintf(w, "%d bytes served; library cross-check %s; %d health failures\n\n",
			c.Bytes, cross, c.HealthFailures)
		fmt.Fprintln(w, "| test | uniformity | proportion | result |")
		fmt.Fprintln(w, "|---|---|---|---|")
		for _, tr := range c.Tests {
			verdict := "FAIL"
			if tr.Pass {
				verdict = "Success"
			}
			if tr.Retried {
				verdict += " (re-tested)"
			}
			fmt.Fprintf(w, "| %s | %.6f | %.4f | %s |\n", tr.Name, tr.Uniformity, tr.Proportion, verdict)
		}
		if len(c.Skipped) > 0 {
			fmt.Fprintf(w, "\nskipped (not applicable at %d bits/stream): ", r.BitsPerStream)
			for i, name := range c.Skipped {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, name)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func cellKey(alg string, lanes int) string { return fmt.Sprintf("%s/%d", alg, lanes) }

func laneLabel(lanes int) string {
	if lanes == 0 {
		return "server"
	}
	return fmt.Sprintf("%d lanes", lanes)
}
