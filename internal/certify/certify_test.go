package certify

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// The real thing, scaled down: boot an actual serving stack, pull
// segments over TCP, cross-check and run the battery. One algorithm and
// one lane width keep the test inside CI budgets; the full matrix is
// the nightly certify workflow's job.
func TestBootCertifySmoke(t *testing.T) {
	var logged bytes.Buffer
	rep, err := Run(Config{
		Seed:          1,
		Algorithms:    []core.Algorithm{core.TRIVIUM},
		LaneWidths:    []int{64},
		Segments:      8,
		Streams:       4,
		SkipExpensive: true,
		Logf: func(format string, args ...any) {
			logged.WriteString(strings.TrimSpace(format) + "\n")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "boot" || len(rep.Cells) != 1 {
		t.Fatalf("mode %q, %d cells", rep.Mode, len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.Error != "" {
		t.Fatalf("cell error: %s", c.Error)
	}
	if !c.CrossChecked || !c.CrossCheckOK {
		t.Error("served bytes were not cross-checked against the library stream")
	}
	if c.HealthFailures != 0 {
		t.Errorf("%d health failures on served bytes", c.HealthFailures)
	}
	if len(c.Tests) == 0 {
		t.Error("no battery results")
	}
	if c.Bytes != 8*core.SegmentBytes {
		t.Errorf("pulled %d bytes, want %d", c.Bytes, 8*core.SegmentBytes)
	}
	if !c.Pass || !rep.Pass {
		t.Errorf("smoke cell failed: %+v", c)
	}
	if logged.Len() == 0 {
		t.Error("Logf never called")
	}
}

// The new families must certify through the same served path.
func TestBootCertifyNewFamilies(t *testing.T) {
	rep, err := Run(Config{
		Seed:          2,
		Algorithms:    []core.Algorithm{core.XORGENS, core.Chaotic(core.GRAIN)},
		LaneWidths:    []int{64},
		Segments:      8,
		Streams:       4,
		SkipExpensive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		for _, c := range rep.Cells {
			t.Errorf("cell %s: pass=%v error=%q crosscheck=%v", c.Algorithm, c.Pass, c.Error, c.CrossCheckOK)
		}
	}
}

// fakeServer mimics bsrngd's /bytes surface with injectable corruption.
func fakeServer(t *testing.T, corrupt func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	t.Helper()
	streams := map[string]*core.Stream{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if corrupt != nil && corrupt(w, r) {
			return
		}
		algName := r.URL.Query().Get("alg")
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		alg, err := core.ParseAlgorithm(algName)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, ok := streams[algName]
		if !ok {
			st, err = core.NewStream(alg, 1, core.StreamConfig{Workers: 2, StagingBytes: 64 << 10})
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			streams[algName] = st
		}
		buf := make([]byte, n)
		st.Read(buf)
		w.Header().Set("X-Bsrng-Algorithm", alg.String())
		w.Header().Set("Content-Length", strconv.Itoa(n))
		w.Write(buf)
	}))
	t.Cleanup(func() {
		ts.Close()
		for _, st := range streams {
			st.Close()
		}
	})
	return ts
}

func dialConfig(url string) Config {
	return Config{
		BaseURL:       url,
		Seed:          1,
		Algorithms:    []core.Algorithm{core.TRIVIUM},
		Segments:      8,
		Streams:       4,
		SkipExpensive: true,
	}
}

func TestDialModeAgainstFaithfulServer(t *testing.T) {
	ts := fakeServer(t, nil)
	rep, err := Run(dialConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "dial" {
		t.Errorf("mode %q", rep.Mode)
	}
	c := rep.Cells[0]
	if !rep.Pass || !c.CrossCheckOK || c.Lanes != 0 {
		t.Errorf("dial cell: %+v", c)
	}
}

func TestDialModeDetectsCorruptBytes(t *testing.T) {
	first := true
	ts := fakeServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		// Serve faithfully but flip one byte of the first response.
		if !first {
			return false
		}
		first = false
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		st, err := core.NewStream(core.TRIVIUM, 1, core.StreamConfig{Workers: 2, StagingBytes: 64 << 10})
		if err != nil {
			t.Error(err)
			return true
		}
		defer st.Close()
		buf := make([]byte, n)
		st.Read(buf)
		buf[17] ^= 0x40
		w.Write(buf)
		return true
	})
	rep, err := Run(dialConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if rep.Pass || c.Pass || !c.CrossChecked || c.CrossCheckOK {
		t.Errorf("corrupted stream not detected: %+v", c)
	}
}

func TestDialModeMalformedResponses(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(w http.ResponseWriter, r *http.Request) bool
		wantErr string
	}{
		{"http error", func(w http.ResponseWriter, r *http.Request) bool {
			http.Error(w, "pool quarantined", http.StatusServiceUnavailable)
			return true
		}, "status 503"},
		{"undeclared short body", func(w http.ResponseWriter, r *http.Request) bool {
			w.Write([]byte("abc"))
			return true
		}, "Content-Length 3"},
		{"truncated body", func(w http.ResponseWriter, r *http.Request) bool {
			// Declare the full length but deliver a prefix: the client
			// sees the connection die mid-body.
			w.Header().Set("Content-Length", r.URL.Query().Get("n"))
			w.Write([]byte("abc"))
			return true
		}, "reading /bytes body"},
		{"wrong algorithm echo", func(w http.ResponseWriter, r *http.Request) bool {
			n, _ := strconv.Atoi(r.URL.Query().Get("n"))
			w.Header().Set("X-Bsrng-Algorithm", "grain")
			w.Write(make([]byte, n))
			return true
		}, `echoed algorithm "grain"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := fakeServer(t, tc.corrupt)
			rep, err := Run(dialConfig(ts.URL))
			if err != nil {
				t.Fatal(err)
			}
			c := rep.Cells[0]
			if rep.Pass || c.Pass {
				t.Errorf("malformed server passed: %+v", c)
			}
			if !strings.Contains(c.Error, tc.wantErr) {
				t.Errorf("cell error %q, want substring %q", c.Error, tc.wantErr)
			}
		})
	}
}

func TestSkipCrossCheck(t *testing.T) {
	// A server with a different seed fails the cross-check unless it is
	// explicitly skipped (dialing an instance whose seed is unknown).
	ts := fakeServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		st, err := core.NewStream(core.TRIVIUM, 999, core.StreamConfig{Workers: 1, StagingBytes: 64 << 10})
		if err != nil {
			t.Error(err)
			return true
		}
		defer st.Close()
		buf := make([]byte, n)
		st.Read(buf)
		w.Write(buf)
		return true
	})
	cfg := dialConfig(ts.URL)
	cfg.SkipCrossCheck = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.CrossChecked {
		t.Error("cross-check ran despite SkipCrossCheck")
	}
	if !rep.Pass {
		t.Errorf("statistically sound foreign stream failed: %+v", c)
	}
}

// biasedBody writes n deterministic bytes whose low bit is always set
// (~56% ones): statistically broken in a way that survives re-sampling,
// so the §4.2 retry must run and still fail.
func biasedBody(w http.ResponseWriter, n int, state *uint64) {
	w.Header().Set("X-Bsrng-Algorithm", core.TRIVIUM.String())
	w.Header().Set("Content-Length", strconv.Itoa(n))
	buf := make([]byte, n)
	for i := range buf {
		*state = *state*6364136223846793005 + 1442695040888963407
		buf[i] = byte(*state>>33) | 0x01
	}
	w.Write(buf)
}

func TestRetryBatteryConfirmsSystematicBias(t *testing.T) {
	var state uint64 = 7
	ts := fakeServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		biasedBody(w, n, &state)
		return true
	})
	cfg := dialConfig(ts.URL)
	cfg.SkipCrossCheck = true // bytes are "trusted", so retry is allowed
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Error != "" {
		t.Fatalf("unexpected cell error: %s", c.Error)
	}
	if !c.Retried {
		t.Error("biased stream did not trigger a §4.2 re-test")
	}
	if c.Pass || rep.Pass {
		t.Errorf("systematically biased stream passed: %+v", c)
	}
	confirmed := false
	for _, tr := range c.Tests {
		if tr.Retried && !tr.Pass {
			confirmed = true
		}
		if tr.Retried && tr.Pass {
			t.Errorf("retried test %s passed on identically biased re-sample", tr.Name)
		}
	}
	if !confirmed {
		t.Error("no test failed both rounds despite persistent bias")
	}
}

func TestRetryBatteryPullFailure(t *testing.T) {
	// First pull serves biased bytes; the re-test pull gets a 503, which
	// must surface as a cell error, not a pass.
	var state uint64 = 7
	requests := 0
	ts := fakeServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		requests++
		if requests > 1 {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return true
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		biasedBody(w, n, &state)
		return true
	})
	cfg := dialConfig(ts.URL)
	cfg.SkipCrossCheck = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Pass || !strings.Contains(c.Error, "re-test pull") {
		t.Errorf("cell = pass=%v error=%q, want re-test pull failure", c.Pass, c.Error)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Algorithms: []core.Algorithm{}}); err == nil {
		t.Error("empty algorithm list accepted")
	}
	if _, err := Run(Config{Segments: 1, Streams: 200}); err == nil {
		t.Error("sub-128-bit streams accepted")
	}
	if _, err := Run(Config{LaneWidths: []int{7}}); err == nil {
		t.Error("bogus lane width accepted")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		Mode: "boot", Seed: 1, Segments: 8, Streams: 4, BitsPerStream: 32768,
		Alpha: 0.01, Pass: false,
		Cells: []Cell{
			{Algorithm: "trivium", Lanes: 64, Segments: 8, Bytes: 16384,
				CrossChecked: true, CrossCheckOK: true, Pass: true,
				Tests:   []TestResult{{Name: "Frequency", Streams: 4, Uniformity: 0.5, Proportion: 1, Pass: true}},
				Skipped: []string{"Universal"}},
			{Algorithm: "trivium", Lanes: 256, Segments: 8,
				Error: "GET /bytes: status 503"},
			{Algorithm: "xorgens", Lanes: 64, Segments: 8, Bytes: 16384,
				CrossChecked: true, CrossCheckOK: false,
				Tests: []TestResult{{Name: "Frequency", Streams: 4, Uniformity: 0.0, Proportion: 0.2}}},
		},
	}
	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{
		"# Served-path certification: FAIL",
		"| trivium | ✅ | ❌ |",
		"| xorgens | ❌ | — |",
		"GET /bytes: status 503",
		"| Frequency | 0.500000 | 1.0000 | Success |",
		"skipped (not applicable at 32768 bits/stream): Universal",
		"library cross-check FAIL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("CERTIFY.json does not round-trip: %v", err)
	}
	if len(back.Cells) != 3 || back.Cells[0].Tests[0].Name != "Frequency" {
		t.Errorf("round-tripped report lost data: %+v", back)
	}
}
