// Package certify is the served-path statistical certification harness:
// it proves that the bytes bsrngd actually serves — through the sharded
// pools, the zero-copy staging datapath and the live health-reseed
// machinery — are (a) byte-identical to the deterministic library
// stream and (b) statistically sound under the full SP 800-22 battery
// plus the continuous health checks, for every (algorithm, lane-width)
// cell of the serving matrix.
//
// Two modes share one code path: boot mode constructs a real
// internal/server instance per lane width and talks to it over a real
// TCP loopback listener (nothing is stubbed — the HTTP handler, content
// negotiation and shard checkout all run exactly as in production);
// dial mode (Config.BaseURL) points the same puller at an
// already-running bsrngd, producing one cell per algorithm.
//
// The output is a machine-readable Report (CERTIFY.json) carrying
// per-test uniformity/proportion statistics and a per-cell verdict; the
// nightly certify workflow archives it, and cmd/certify exits non-zero
// unless every cell passes.
package certify

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/server"
	"repro/internal/sp80022"
)

// Config tunes a certification run; zero values select the documented
// defaults.
type Config struct {
	// BaseURL, when non-empty, dials an existing bsrngd (e.g.
	// "http://127.0.0.1:8080") instead of booting servers. Dial mode
	// produces one cell per algorithm (the remote lane width is the
	// server's business — the bytes are identical at every width).
	BaseURL string
	// Seed is the deterministic base seed; it must match the served
	// instance's -seed in dial mode for the cross-check to hold.
	Seed uint64
	// Algorithms is the cell rows (default core.ServedAlgorithms).
	Algorithms []core.Algorithm
	// LaneWidths is the cell columns in boot mode (default
	// core.SupportedLanes). Ignored in dial mode.
	LaneWidths []int
	// Segments is the number of core.SegmentBytes segments pulled per
	// cell (default 64: 128 KiB, 2^20 bits).
	Segments int
	// SegmentsPerRequest bounds one GET /bytes (default 16), so a cell
	// exercises several request/checkout cycles, not one big read.
	SegmentsPerRequest int
	// Streams is the number of battery bit streams per cell (default 16).
	Streams int
	// Workers is the per-shard stream worker count (default 2). The
	// library mirror uses the same value — the served byte sequence
	// depends on it.
	Workers int
	// StagingBytes is the per-worker chunk size (default 64 KiB); same
	// remark as Workers.
	StagingBytes int
	// SkipExpensive skips the slow linear-complexity test.
	SkipExpensive bool
	// SkipCrossCheck disables the byte-for-byte library comparison —
	// for dial mode against a server whose seed or worker layout is
	// unknown. The battery and health checks still run.
	SkipCrossCheck bool
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Logf, when non-nil, receives one progress line per cell.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Algorithms == nil {
		c.Algorithms = core.ServedAlgorithms
	}
	if c.LaneWidths == nil {
		c.LaneWidths = core.SupportedLanes
	}
	if c.Segments == 0 {
		c.Segments = 64
	}
	if c.SegmentsPerRequest == 0 {
		c.SegmentsPerRequest = 16
	}
	if c.Streams == 0 {
		c.Streams = 16
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.StagingBytes == 0 {
		c.StagingBytes = 64 << 10
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Run executes the certification matrix and returns the report. A
// non-nil error means the run itself could not proceed (bad config,
// server boot failure); per-cell failures are recorded in the report,
// not returned.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("certify: no algorithms configured")
	}
	if cfg.Segments < 1 || cfg.Streams < 1 || cfg.SegmentsPerRequest < 1 {
		return nil, fmt.Errorf("certify: segments, streams and segments-per-request must be ≥ 1")
	}
	bitsPerStream := cfg.Segments * core.SegmentBytes * 8 / cfg.Streams
	if bitsPerStream < 128 {
		return nil, fmt.Errorf("certify: %d segments over %d streams is %d bits per stream, need ≥ 128",
			cfg.Segments, cfg.Streams, bitsPerStream)
	}
	rep := &Report{
		Seed:          cfg.Seed,
		Segments:      cfg.Segments,
		Streams:       cfg.Streams,
		BitsPerStream: bitsPerStream,
		Pass:          true,
	}
	if cfg.BaseURL != "" {
		rep.Mode = "dial"
		for _, alg := range cfg.Algorithms {
			cell := certifyCell(&cfg, cfg.BaseURL, alg, 0)
			rep.add(cell)
		}
		return rep, nil
	}
	rep.Mode = "boot"
	for _, lanes := range cfg.LaneWidths {
		if err := core.ValidateLanes(lanes); err != nil {
			return nil, fmt.Errorf("certify: %w", err)
		}
		baseURL, shutdown, err := bootServer(&cfg, lanes)
		if err != nil {
			return nil, fmt.Errorf("certify: booting %d-lane server: %w", lanes, err)
		}
		for _, alg := range cfg.Algorithms {
			cell := certifyCell(&cfg, baseURL, alg, lanes)
			rep.add(cell)
		}
		shutdown()
	}
	return rep, nil
}

// bootServer stands up a real bsrngd serving stack on a loopback TCP
// listener: ShardsPerAlg is pinned to 1 so shard 0 serves exactly the
// canonical core.NewStream byte sequence the cross-check mirrors.
func bootServer(cfg *Config, lanes int) (baseURL string, shutdown func(), err error) {
	srv, err := server.New(server.Config{
		Seed:            cfg.Seed,
		Algorithms:      cfg.Algorithms,
		ShardsPerAlg:    1,
		WorkersPerShard: cfg.Workers,
		StagingBytes:    cfg.StagingBytes,
		Lanes:           lanes,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Shutdown(context.Background())
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// certifyCell pulls one cell's served bytes and runs every check.
// lanes 0 marks a dial-mode cell of unknown server-side width.
//
// The battery follows SP 800-22 §4.2's guidance for marginal results:
// a proportion or uniformity failure on the first sample is re-examined
// on a second, independent sample — the next cfg.Segments segments of
// the same served stream — and only a test that fails both rounds fails
// the cell. The cross-check and health checks are never retried: a
// byte-level mismatch is deterministic evidence, not sampling noise.
func certifyCell(cfg *Config, baseURL string, alg core.Algorithm, lanes int) Cell {
	cell := Cell{Algorithm: alg.String(), Lanes: lanes, Segments: cfg.Segments}
	cfg.logf("certify: %s lanes=%d: pulling %d segments", alg, lanes, cfg.Segments)
	served, err := pullSegments(cfg, baseURL, alg)
	if err != nil {
		cell.Error = err.Error()
		return cell
	}
	cell.Bytes = len(served)

	if !cfg.SkipCrossCheck {
		cell.CrossChecked = true
		cell.CrossCheckOK, err = crossCheck(cfg, alg, served)
		if err != nil {
			cell.Error = err.Error()
			return cell
		}
	}

	// Re-run the continuous health tests offline on the served bytes: the
	// server ran them at production time; a healthy engine must also pass
	// them on the delivered copy.
	checker := health.NewChecker(health.Config{})
	for off := 0; off+core.SegmentBytes <= len(served); off += core.SegmentBytes {
		if err := checker.Check(served[off : off+core.SegmentBytes]); err != nil {
			cell.HealthFailures++
		}
	}

	cell.Tests, cell.Skipped = runBattery(cfg, served)
	if !allPass(cell.Tests) && (!cell.CrossChecked || cell.CrossCheckOK) {
		cfg.logf("certify: %s lanes=%d: marginal battery result, re-testing on a fresh sample", alg, lanes)
		if retried, err := retryBattery(cfg, baseURL, alg, cell.Tests); err != nil {
			cell.Error = err.Error()
			return cell
		} else {
			cell.Tests = retried
			cell.Retried = true
		}
	}
	cell.Pass = cell.Error == "" &&
		(!cell.CrossChecked || cell.CrossCheckOK) &&
		cell.HealthFailures == 0 &&
		allPass(cell.Tests)
	cfg.logf("certify: %s lanes=%d: pass=%v (%d tests, %d skipped, %d health failures)",
		alg, lanes, cell.Pass, len(cell.Tests), len(cell.Skipped), cell.HealthFailures)
	return cell
}

// retryBattery pulls the next cfg.Segments segments of the same served
// stream and re-runs the battery, replacing each first-round failure
// with its second-opinion result (marked Retried). First-round passes
// stand — the retry exists to distinguish sampling noise from systematic
// bias on the tests that flagged, exactly as §4.2 prescribes.
func retryBattery(cfg *Config, baseURL string, alg core.Algorithm, first []TestResult) ([]TestResult, error) {
	served, err := pullSegments(cfg, baseURL, alg)
	if err != nil {
		return nil, fmt.Errorf("re-test pull: %w", err)
	}
	second, _ := runBattery(cfg, served)
	byName := make(map[string]TestResult, len(second))
	for _, tr := range second {
		byName[tr.Name] = tr
	}
	out := make([]TestResult, len(first))
	for i, tr := range first {
		out[i] = tr
		if !tr.Pass {
			if again, ok := byName[tr.Name]; ok {
				again.Retried = true
				out[i] = again
			}
		}
	}
	return out, nil
}

func allPass(tests []TestResult) bool {
	if len(tests) == 0 {
		return false
	}
	for _, tr := range tests {
		if !tr.Pass {
			return false
		}
	}
	return true
}

// pullSegments fetches the cell's bytes over GET /bytes in
// SegmentsPerRequest-sized requests, validating transport invariants
// (status, declared and actual length, algorithm echo header) on every
// response. Sequential requests against a one-shard pool continue the
// same stream, so the concatenation is a prefix of the canonical
// stream.
func pullSegments(cfg *Config, baseURL string, alg core.Algorithm) ([]byte, error) {
	client := &http.Client{Timeout: cfg.Timeout}
	out := make([]byte, 0, cfg.Segments*core.SegmentBytes)
	for got := 0; got < cfg.Segments; {
		segs := cfg.SegmentsPerRequest
		if rest := cfg.Segments - got; segs > rest {
			segs = rest
		}
		n := segs * core.SegmentBytes
		u := fmt.Sprintf("%s/bytes?alg=%s&n=%d", baseURL, url.QueryEscape(alg.String()), n)
		resp, err := client.Get(u)
		if err != nil {
			return nil, fmt.Errorf("GET /bytes: %w", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("reading /bytes body: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET /bytes: status %d: %s", resp.StatusCode, truncate(body))
		}
		if echo := resp.Header.Get("X-Bsrng-Algorithm"); echo != "" && echo != alg.String() {
			return nil, fmt.Errorf("server echoed algorithm %q, want %q", echo, alg)
		}
		if cl := resp.ContentLength; cl >= 0 && cl != int64(n) {
			return nil, fmt.Errorf("Content-Length %d, want %d", cl, n)
		}
		if len(body) != n {
			return nil, fmt.Errorf("short /bytes body: %d bytes, want %d", len(body), n)
		}
		out = append(out, body...)
		got += segs
	}
	return out, nil
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// crossCheck reproduces the served prefix with the deterministic
// library stream — same seed, worker layout and staging geometry as the
// booted shard — and compares byte-for-byte. The mirror runs at the
// default lane width: served bytes are lane-width independent, so one
// mirror certifies every lane cell.
func crossCheck(cfg *Config, alg core.Algorithm, served []byte) (bool, error) {
	checker := health.NewChecker(health.Config{})
	mirror, err := core.NewStream(alg, cfg.Seed, core.StreamConfig{
		Workers:      cfg.Workers,
		StagingBytes: cfg.StagingBytes,
		Health:       checker.Check,
	})
	if err != nil {
		return false, fmt.Errorf("library mirror: %w", err)
	}
	defer mirror.Close()
	want := make([]byte, len(served))
	if _, err := io.ReadFull(mirror, want); err != nil {
		return false, fmt.Errorf("library mirror read: %w", err)
	}
	for i := range served {
		if served[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}

// runBattery splits the served bytes into cfg.Streams bit streams and
// runs the SP 800-22 battery across all cores, summarizing the way the
// paper's Table 3 does. Tests inapplicable to every stream (too few
// bits, too few excursion cycles) are reported as skipped, not failed.
func runBattery(cfg *Config, served []byte) ([]TestResult, []string) {
	bits := sp80022.BitsFromBytes(served)
	per := len(bits) / cfg.Streams
	params := sp80022.Params{SkipExpensiveTests: cfg.SkipExpensive}
	results := make([][]sp80022.Result, cfg.Streams)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i := 0; i < cfg.Streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = sp80022.RunAll(bits[i*per:(i+1)*per], params)
		}(i)
	}
	wg.Wait()

	var tests []TestResult
	ran := map[string]bool{}
	for _, s := range sp80022.Summarize(results) {
		ran[s.Name] = true
		tests = append(tests, TestResult{
			Name:       s.Name,
			Streams:    s.Streams,
			Uniformity: s.Uniformity,
			Proportion: s.Proportion,
			Pass:       s.Verdict(),
		})
	}
	var skipped []string
	for _, res := range results[:1] {
		for _, r := range res {
			if !ran[r.Name] {
				skipped = append(skipped, r.Name)
			}
		}
	}
	return tests, skipped
}
