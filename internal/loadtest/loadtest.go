// Package loadtest is the load-generation and soak-test harness for the
// bsrngd serving stack: it drives N concurrent clients with a mixed,
// deterministic workload — pooled /bytes (binary and hex), pooled and
// addressed /stream, and lease-issue/stream/resume round trips — against
// a daemon it boots in-process or dials over HTTP, and reports status
// counts, throughput and per-shape latency histograms in a
// machine-readable Result (cmd/loadgen serializes it as LOAD.json).
//
// Every client's behavior is a pure function of (WorkloadSeed, client
// index), so two runs of the same Config pull the same set of addressed
// and leased windows. Those windows are verified byte-for-byte against
// the core library (Verify), scanned for zero runs that would betray a
// condemned segment leaking to a client, and folded into an
// order-insensitive digest so whole runs can be compared across
// processes and daemon restarts.
//
// The harness composes with internal/faultinject (Chaos): while clients
// hammer the daemon, seeded failpoints condemn segments on one
// algorithm until its pool fully quarantines, then heal so probation
// re-admits the shards — repeated for a configured number of cycles,
// with every phase transition observed through /healthz and /metrics.
package loadtest

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// Mix weights the request shapes of the workload. Zero values fall back
// to an even three-way mix.
type Mix struct {
	// Bytes is the weight of pooled /bytes requests (every fourth one
	// asks for hex).
	Bytes int `json:"bytes"`
	// Stream is the weight of /stream requests (alternating pooled and
	// addressed mode).
	Stream int `json:"stream"`
	// Lease is the weight of lease round trips: POST /lease, stream the
	// first half of the window, resume the rest from off=.
	Lease int `json:"lease"`
}

func (m Mix) total() int { return m.Bytes + m.Stream + m.Lease }

// ChaosConfig arms seeded segment-corruption failpoints while the load
// runs. Boot mode only: failpoints are process-local.
type ChaosConfig struct {
	// FailpointSeed makes the trigger hits reproducible; cycle i derives
	// its trigger from FailpointSeed+i.
	FailpointSeed uint64
	// Window is the hit window the trigger is drawn from (default 32).
	Window uint64
	// Cycles is how many quarantine → probation → re-admit cycles to
	// drive to completion (default 1).
	Cycles int
	// PhaseTimeout bounds each phase transition wait (default 30s).
	PhaseTimeout time.Duration
}

// Config tunes one load run; zero values select the documented defaults.
type Config struct {
	// BaseURL dials an already-running daemon (e.g. "http://host:8080").
	// Empty boots a server in-process on a loopback listener.
	BaseURL string
	// Server configures the booted daemon (BaseURL == ""). Its Seed
	// doubles as the verification seed.
	Server server.Config
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// RequestsPerClient is how many requests each client issues
	// (default 8).
	RequestsPerClient int
	// Mix weights the request shapes.
	Mix Mix
	// Algorithms to exercise; nil derives them from Server.Algorithms,
	// falling back to all served engines.
	Algorithms []core.Algorithm
	// BytesN is n per /bytes request (default 4096).
	BytesN int64
	// StreamN is n per /stream request (default 8192).
	StreamN int64
	// LeaseSegments is the window of each issued lease (default 4).
	LeaseSegments int
	// Verify re-derives every addressed and leased window through
	// core.NewSegmentReader and compares byte-for-byte. Requires the
	// daemon's seed: Server.Seed in boot mode, VerifySeed in dial mode.
	Verify bool
	// VerifySeed is the daemon's seed for dial-mode verification.
	VerifySeed uint64
	// WorkloadSeed makes every client's request sequence deterministic
	// (default 1).
	WorkloadSeed uint64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Tolerate503 excludes 503s from the non-OK count — expected while a
	// chaos cycle holds a pool fully quarantined. Chaos implies it.
	Tolerate503 bool
	// Chaos, when non-nil, drives fault-injection cycles during the run.
	Chaos *ChaosConfig
	// Cluster, when non-nil, boots an N-node cluster behind an
	// in-process consistent-hash router (internal/cluster) and drives
	// the whole workload through the router. Boot mode only, and
	// mutually exclusive with Chaos (whose driver polls a single node's
	// pool healthz).
	Cluster *ClusterConfig
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

// Result is the machine-readable outcome of one run (LOAD.json).
type Result struct {
	Mode     string `json:"mode"` // "boot" or "dial"
	Clients  int    `json:"clients"`
	Requests int64  `json:"requests"`
	// Statuses counts responses by HTTP status; transport failures count
	// under "error".
	Statuses map[string]int64 `json:"statuses"`
	// NonOK counts non-2xx responses excluding intended sheds: 429
	// always, 503 when Tolerate503.
	NonOK int64 `json:"non_ok"`
	// Rejected429 counts admission-control sheds.
	Rejected429 int64 `json:"rejected_429"`
	// Unavailable503 counts 503s (drain or fully quarantined pool).
	Unavailable503 int64   `json:"unavailable_503"`
	BytesRead      int64   `json:"bytes_read"`
	Seconds        float64 `json:"seconds"`
	ThroughputMBps float64 `json:"throughput_mbps"`
	// Latency holds one histogram summary per request shape
	// ("bytes", "stream", "lease").
	Latency map[string]LatencySummary `json:"latency"`
	// VerifiedWindows / VerifyMismatches account the byte-for-byte
	// library cross-check of addressed and leased windows.
	VerifiedWindows  int64 `json:"verified_windows"`
	VerifyMismatches int64 `json:"verify_mismatches"`
	// ZeroRuns counts bodies containing ≥64 consecutive zero bytes — a
	// condemned segment leaking to a client.
	ZeroRuns int64 `json:"zero_runs"`
	// WindowDigest is an order-insensitive digest (XOR of per-window
	// SHA-256) over every addressed and leased window pulled. With a
	// fixed Config and a single algorithm it is identical across runs,
	// restarts and lane widths.
	WindowDigest string       `json:"window_digest"`
	Chaos        *ChaosReport `json:"chaos,omitempty"`
	// PerNode is the router's forwarded-request distribution by node
	// (from bsrngd_cluster_forwarded_total) — cluster mode, or dial mode
	// against a router.
	PerNode map[string]int64 `json:"per_node,omitempty"`
	// Cluster accounts the router tier of a cluster run.
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

// ChaosReport accounts the fault-injection cycles of a chaos run.
type ChaosReport struct {
	Algorithm string `json:"alg"`
	Cycles    int    `json:"cycles"`
	// Quarantines/Readmits are the bsrngd_health_* counter deltas over
	// the run.
	Quarantines float64 `json:"quarantines"`
	Readmits    float64 `json:"readmits"`
}

// leaseDoc mirrors the JSON of POST /lease.
type leaseDoc struct {
	ID           string `json:"id"`
	Algorithm    string `json:"alg"`
	Domain       uint64 `json:"domain"`
	StartSegment uint64 `json:"start_segment"`
	Segments     uint64 `json:"segments"`
	Bytes        uint64 `json:"bytes"`
	StreamPath   string `json:"stream_path"`
}

// runner is the shared state of one Run.
type runner struct {
	cfg    Config
	base   string
	client *http.Client
	algs   []core.Algorithm
	seed   uint64 // verification seed

	requests atomic.Int64
	bytes    atomic.Int64
	nonOK    atomic.Int64
	rej429   atomic.Int64
	un503    atomic.Int64
	verified atomic.Int64
	mismatch atomic.Int64
	zeroRuns atomic.Int64

	statusMu sync.Mutex
	statuses map[string]int64

	histMu sync.Mutex
	hists  map[string]*latHist

	digestMu sync.Mutex
	digest   [sha256.Size]byte
}

// Run executes the configured load and returns its Result.
func Run(cfg Config) (*Result, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 8
	}
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("loadtest: clients %d out of range", cfg.Clients)
	}
	if cfg.RequestsPerClient == 0 {
		cfg.RequestsPerClient = 8
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = Mix{Bytes: 1, Stream: 1, Lease: 1}
	}
	if cfg.Mix.Bytes < 0 || cfg.Mix.Stream < 0 || cfg.Mix.Lease < 0 {
		return nil, fmt.Errorf("loadtest: negative mix weight %+v", cfg.Mix)
	}
	if cfg.BytesN == 0 {
		cfg.BytesN = 4096
	}
	if cfg.StreamN == 0 {
		cfg.StreamN = 8192
	}
	if cfg.LeaseSegments == 0 {
		cfg.LeaseSegments = 4
	}
	if cfg.WorkloadSeed == 0 {
		cfg.WorkloadSeed = 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Chaos != nil {
		cfg.Tolerate503 = true
		if cfg.Chaos.Window == 0 {
			cfg.Chaos.Window = 32
		}
		if cfg.Chaos.Cycles == 0 {
			cfg.Chaos.Cycles = 1
		}
		if cfg.Chaos.PhaseTimeout == 0 {
			cfg.Chaos.PhaseTimeout = 30 * time.Second
		}
	}
	if cfg.Cluster != nil {
		if cfg.Chaos != nil {
			return nil, fmt.Errorf("loadtest: segment chaos drives a single node's pool healthz; use Cluster.ForwardChaos against a cluster")
		}
		if cfg.Cluster.Nodes == 0 {
			cfg.Cluster.Nodes = 3
		}
		if cfg.Cluster.Nodes < 1 {
			return nil, fmt.Errorf("loadtest: cluster nodes %d out of range", cfg.Cluster.Nodes)
		}
		if fc := cfg.Cluster.ForwardChaos; fc != nil {
			if fc.Window == 0 {
				fc.Window = 8
			}
			if fc.Pulses == 0 {
				fc.Pulses = 4
			}
			if fc.PulseTimeout == 0 {
				fc.PulseTimeout = 30 * time.Second
			}
		}
	}

	r := &runner{
		cfg:      cfg,
		seed:     cfg.VerifySeed,
		statuses: make(map[string]int64),
		hists:    make(map[string]*latHist),
	}

	mode := "dial"
	if cfg.BaseURL == "" && cfg.Cluster != nil {
		mode = "cluster"
		shutdown, err := r.bootCluster()
		if err != nil {
			return nil, err
		}
		defer shutdown()
	} else if cfg.BaseURL == "" {
		mode = "boot"
		srv, err := server.New(cfg.Server)
		if err != nil {
			return nil, fmt.Errorf("loadtest: booting server: %w", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown(context.Background())
			return nil, fmt.Errorf("loadtest: %w", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
			defer cancel()
			hs.Shutdown(ctx)
			srv.Shutdown(ctx)
		}()
		r.base = "http://" + ln.Addr().String()
		r.seed = cfg.Server.Seed
	} else {
		if cfg.Chaos != nil {
			return nil, fmt.Errorf("loadtest: chaos requires boot mode (failpoints are process-local)")
		}
		if cfg.Cluster != nil {
			return nil, fmt.Errorf("loadtest: cluster topology requires boot mode (use BaseURL to dial an external router)")
		}
		r.base = cfg.BaseURL
	}

	r.algs = cfg.Algorithms
	if r.algs == nil {
		r.algs = cfg.Server.Algorithms
	}
	if r.algs == nil {
		r.algs = core.ServedAlgorithms
	}
	r.client = &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients + 8,
			MaxIdleConnsPerHost: cfg.Clients + 8,
			IdleConnTimeout:     30 * time.Second,
		},
	}
	defer r.client.CloseIdleConnections()

	cfg.Logf("loadtest: %s %s: %d clients × %d requests, mix %+v",
		mode, r.base, cfg.Clients, cfg.RequestsPerClient, cfg.Mix)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r.clientLoop(c)
		}(c)
	}
	var chaosRep *ChaosReport
	var chaosErr error
	if cfg.Chaos != nil {
		chaosRep, chaosErr = r.runChaos()
	}
	var fcPulses int
	var fcErr error
	if cfg.Cluster != nil && cfg.Cluster.ForwardChaos != nil {
		fcPulses, fcErr = r.runForwardChaos()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if chaosErr != nil {
		return nil, chaosErr
	}
	if fcErr != nil {
		return nil, fcErr
	}

	res := &Result{
		Mode:             mode,
		Clients:          cfg.Clients,
		Requests:         r.requests.Load(),
		Statuses:         r.statuses,
		NonOK:            r.nonOK.Load(),
		Rejected429:      r.rej429.Load(),
		Unavailable503:   r.un503.Load(),
		BytesRead:        r.bytes.Load(),
		Seconds:          elapsed.Seconds(),
		VerifiedWindows:  r.verified.Load(),
		VerifyMismatches: r.mismatch.Load(),
		ZeroRuns:         r.zeroRuns.Load(),
		WindowDigest:     fmt.Sprintf("%x", r.digest),
		Latency:          make(map[string]LatencySummary, len(r.hists)),
		Chaos:            chaosRep,
	}
	if res.Seconds > 0 {
		res.ThroughputMBps = float64(res.BytesRead) / (1 << 20) / res.Seconds
	}
	for shape, h := range r.hists {
		res.Latency[shape] = h.summary()
	}
	if cfg.Cluster != nil {
		res.Cluster = r.clusterReport(fcPulses)
	}
	// The per-node distribution materializes whenever the dialed base is
	// a router (always in cluster mode); against a plain node it is nil.
	res.PerNode = r.perNode()
	cfg.Logf("loadtest: %d requests, %d non-OK, %.1f MB/s, digest %s",
		res.Requests, res.NonOK, res.ThroughputMBps, res.WindowDigest[:16])
	return res, nil
}

// clientLoop runs one deterministic client: its shape and parameter
// choices depend only on (WorkloadSeed, index), never on timing.
func (r *runner) clientLoop(idx int) {
	rng := splitmixState(r.cfg.WorkloadSeed + uint64(idx)*0x9E3779B97F4A7C15)
	total := r.cfg.Mix.total()
	for i := 0; i < r.cfg.RequestsPerClient; i++ {
		pick := int(rng.next() % uint64(total))
		alg := r.algs[rng.next()%uint64(len(r.algs))]
		switch {
		case pick < r.cfg.Mix.Bytes:
			r.doBytes(&rng, alg)
		case pick < r.cfg.Mix.Bytes+r.cfg.Mix.Stream:
			r.doStream(&rng, alg)
		default:
			r.doLease(alg)
		}
	}
}

// record accounts one finished request.
func (r *runner) record(shape string, status int, d time.Duration, n int64) {
	r.requests.Add(1)
	r.bytes.Add(n)
	key := "error"
	if status > 0 {
		key = fmt.Sprintf("%d", status)
	}
	r.statusMu.Lock()
	r.statuses[key]++
	r.statusMu.Unlock()
	switch {
	case status == http.StatusTooManyRequests:
		r.rej429.Add(1)
	case status == http.StatusServiceUnavailable:
		r.un503.Add(1)
		if !r.cfg.Tolerate503 {
			r.nonOK.Add(1)
		}
	case status < 200 || status > 299:
		r.nonOK.Add(1)
	}
	r.hist(shape).observe(d)
}

func (r *runner) hist(shape string) *latHist {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	h, ok := r.hists[shape]
	if !ok {
		h = &latHist{}
		r.hists[shape] = h
	}
	return h
}

// fetch GETs url and returns (status, body); status 0 marks a transport
// failure. The body is scanned for zero runs unless skipScan (hex).
func (r *runner) fetch(shape, url string, skipScan bool) (int, []byte) {
	t0 := time.Now()
	resp, err := r.client.Get(url)
	if err != nil {
		r.record(shape, 0, time.Since(t0), 0)
		return 0, nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	status := resp.StatusCode
	if err != nil {
		status = 0
	}
	r.record(shape, status, time.Since(t0), int64(len(body)))
	if status == http.StatusOK && !skipScan && hasZeroRun(body) {
		r.zeroRuns.Add(1)
	}
	return status, body
}

// doBytes pulls the pooled /bytes path; every fourth request uses hex.
func (r *runner) doBytes(rng *splitmixRNG, alg core.Algorithm) {
	url := fmt.Sprintf("%s/bytes?alg=%s&n=%d", r.base, alg, r.cfg.BytesN)
	hex := rng.next()%4 == 0
	if hex {
		url += "&hex=1"
	}
	r.fetch("bytes", url, hex)
}

// doStream alternates pooled and addressed /stream. Addressed windows
// are deterministic: verified against the library and folded into the
// run digest.
func (r *runner) doStream(rng *splitmixRNG, alg core.Algorithm) {
	if rng.next()%2 == 0 {
		r.fetch("stream", fmt.Sprintf("%s/stream?alg=%s&n=%d", r.base, alg, r.cfg.StreamN), false)
		return
	}
	domain := rng.next() % 16
	seg := rng.next() % 256
	off := rng.next() % core.SegmentBytes
	url := fmt.Sprintf("%s/stream?alg=%s&domain=%d&segment=%d&off=%d&n=%d",
		r.base, alg, domain, seg, off, r.cfg.StreamN)
	status, body := r.fetch("stream", url, false)
	if status == http.StatusOK {
		r.checkWindow(alg, domain, seg*core.SegmentBytes+off, body)
	}
}

// doLease issues a lease, streams the first half of its window, then
// resumes the rest from off= — the disconnect/resume shape — and checks
// the reassembled window.
func (r *runner) doLease(alg core.Algorithm) {
	t0 := time.Now()
	url := fmt.Sprintf("%s/lease?alg=%s&segments=%d", r.base, alg, r.cfg.LeaseSegments)
	resp, err := r.client.Post(url, "", nil)
	if err != nil {
		r.record("lease", 0, time.Since(t0), 0)
		return
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	status := resp.StatusCode
	if err != nil {
		status = 0
	}
	r.record("lease", status, time.Since(t0), 0)
	if status != http.StatusCreated {
		return
	}
	var doc leaseDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		r.mismatch.Add(1)
		return
	}

	half := doc.Bytes / 2
	st1, part1 := r.fetch("lease", fmt.Sprintf("%s%s&n=%d", r.base, doc.StreamPath, half), false)
	st2, part2 := r.fetch("lease", fmt.Sprintf("%s%s&off=%d", r.base, doc.StreamPath, half), false)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		return
	}
	window := append(part1, part2...)
	if uint64(len(window)) != doc.Bytes {
		r.mismatch.Add(1)
		return
	}
	algParsed, err := core.ParseAlgorithm(doc.Algorithm)
	if err != nil {
		r.mismatch.Add(1)
		return
	}
	r.checkWindow(algParsed, doc.Domain, doc.StartSegment*core.SegmentBytes, window)
}

// checkWindow verifies one deterministic window against the library
// (when Verify) and folds it into the order-insensitive run digest.
func (r *runner) checkWindow(alg core.Algorithm, domain, offset uint64, body []byte) {
	if r.cfg.Verify {
		src, err := core.NewSegmentReader(alg, r.seed, domain, 0, offset)
		if err != nil {
			r.mismatch.Add(1)
			return
		}
		want := make([]byte, len(body))
		if _, err := io.ReadFull(src, want); err != nil {
			r.mismatch.Add(1)
			return
		}
		r.verified.Add(1)
		if !bytes.Equal(body, want) {
			r.mismatch.Add(1)
			r.cfg.Logf("loadtest: VERIFY MISMATCH %s domain=%d offset=%d n=%d",
				alg, domain, offset, len(body))
			return
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d|%d|", alg, domain, offset, len(body))
	h.Write(body)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	r.digestMu.Lock()
	for i := range r.digest {
		r.digest[i] ^= sum[i]
	}
	r.digestMu.Unlock()
}

// hasZeroRun reports ≥64 consecutive zero bytes — astronomically
// improbable (2^-512) in healthy output, the signature of a condemned
// zero-filled segment reaching a client.
func hasZeroRun(b []byte) bool {
	run := 0
	for _, c := range b {
		if c != 0 {
			run = 0
			continue
		}
		if run++; run >= 64 {
			return true
		}
	}
	return false
}

// splitmixRNG is the deterministic per-client generator: the same
// full-period permutation internal/core uses for seed expansion.
type splitmixRNG struct{ x uint64 }

func splitmixState(seed uint64) splitmixRNG { return splitmixRNG{x: seed} }

func (r *splitmixRNG) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
