package loadtest

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/server"
)

// ClusterConfig boots an N-node bsrngd cluster behind an in-process
// consistent-hash router and drives the whole workload through the
// router. Every node runs the same Server config (and seed), so routed
// and failed-over windows verify against the library exactly like
// single-node ones — the cluster soak proves the router tier preserves
// the determinism contract end to end. Boot mode only.
type ClusterConfig struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// VirtualNodes per ring node (default cluster.DefaultVirtualNodes).
	VirtualNodes int
	// SegmentWindow is the ownership granularity in segments
	// (default cluster.DefaultSegmentWindow).
	SegmentWindow uint64
	// ForwardChaos, when non-nil, pulses router forward-failure
	// failpoints while the load runs.
	ForwardChaos *ForwardChaosConfig
}

// ForwardChaosConfig pulses the cluster.forward.fail.stream failpoint
// during a cluster run: each pulse kills exactly one forward attempt,
// which the router must absorb with a retry — the client still sees 200
// and the exact bytes, so a chaos run's window digest matches a calm
// run's. Only the stream endpoint is faulted: lease allocation anchors
// on the per-algorithm ring owner, and failing it over would not change
// any bytes but would be pointless noise in the allocation path.
type ForwardChaosConfig struct {
	// FailpointSeed makes the trigger hits reproducible; pulse i derives
	// its trigger from FailpointSeed+i.
	FailpointSeed uint64
	// Window is the hit window the trigger is drawn from (default 8).
	Window uint64
	// Pulses is how many single-shot forward faults to fire (default 4).
	Pulses int
	// PulseTimeout bounds the wait for each pulse to fire (default 30s).
	PulseTimeout time.Duration
}

// ClusterReport accounts one cluster run from the router's
// bsrngd_cluster_* metrics.
type ClusterReport struct {
	Nodes int `json:"nodes"`
	// Retries/Failovers/ForwardFailures are the router counter values at
	// the end of the run.
	Retries         float64 `json:"retries"`
	Failovers       float64 `json:"failovers"`
	ForwardFailures float64 `json:"forward_failures"`
	// ForwardPulses is how many injected forward faults fired.
	ForwardPulses int `json:"forward_pulses,omitempty"`
}

// forwardFailpoint is the failpoint the cluster chaos driver pulses.
const forwardFailpoint = "cluster.forward.fail.stream"

// bootCluster starts Nodes in-process daemons sharing cfg.Server, a
// ring over them, and the router the run will dial; it returns the
// shutdown hook. The router's prober runs so node health is tracked
// exactly as in production.
func (r *runner) bootCluster() (func(), error) {
	cc := r.cfg.Cluster
	var shutdowns []func(ctx context.Context)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
		defer cancel()
		for i := len(shutdowns) - 1; i >= 0; i-- {
			shutdowns[i](ctx)
		}
	}

	nodes := make([]cluster.Node, cc.Nodes)
	for i := 0; i < cc.Nodes; i++ {
		srv, err := server.New(r.cfg.Server)
		if err != nil {
			shutdown()
			return nil, fmt.Errorf("loadtest: booting cluster node %d: %w", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown(context.Background())
			shutdown()
			return nil, fmt.Errorf("loadtest: %w", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		shutdowns = append(shutdowns, func(ctx context.Context) {
			hs.Shutdown(ctx)
			srv.Shutdown(ctx)
		})
		nodes[i] = cluster.Node{Name: fmt.Sprintf("n%d", i), URL: "http://" + ln.Addr().String()}
	}

	ring, err := cluster.NewRing(cluster.RingConfig{
		VirtualNodes:  cc.VirtualNodes,
		SegmentWindow: cc.SegmentWindow,
		Nodes:         nodes,
	})
	if err != nil {
		shutdown()
		return nil, fmt.Errorf("loadtest: %w", err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Ring: ring})
	if err != nil {
		shutdown()
		return nil, fmt.Errorf("loadtest: %w", err)
	}
	rt.Start()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		shutdown()
		return nil, fmt.Errorf("loadtest: %w", err)
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go rhs.Serve(rln)
	shutdowns = append(shutdowns, func(ctx context.Context) {
		rhs.Shutdown(ctx)
		rt.Close()
	})

	r.base = "http://" + rln.Addr().String()
	r.seed = r.cfg.Server.Seed
	return shutdown, nil
}

// runForwardChaos pulses the forward failpoint: single-shot arm, wait
// for the fire (keeping stream traffic flowing so a hit happens even if
// the clients finish early), re-arm for the next pulse. Every fired
// fault forces the router through its retry path under live load.
func (r *runner) runForwardChaos() (int, error) {
	if !faultinject.Available() {
		return 0, fmt.Errorf("loadtest: forward chaos requested but faultinject is compiled out")
	}
	fc := r.cfg.Cluster.ForwardChaos
	defer faultinject.Disarm(forwardFailpoint)

	for p := 0; p < fc.Pulses; p++ {
		nth := faultinject.ArmSeeded(forwardFailpoint, fc.FailpointSeed+uint64(p), fc.Window)
		r.cfg.Logf("loadtest: forward chaos pulse %d: %s armed at hit %d", p, forwardFailpoint, nth)
		// Re-arming reset the point's counters: this pulse has fired once
		// Fired ticks to 1.
		deadline := time.Now().Add(fc.PulseTimeout)
		for faultinject.Fired(forwardFailpoint) == 0 {
			if time.Now().After(deadline) {
				return p, fmt.Errorf("loadtest: forward chaos pulse %d never fired", p)
			}
			r.primeStream()
			time.Sleep(2 * time.Millisecond)
		}
	}
	return fc.Pulses, nil
}

// primeStream issues one small addressed stream request outside the
// recorded workload, so an armed forward fault always has traffic to
// strike even after the deterministic clients drain. The window it
// pulls is NOT folded into the digest — chaos priming must not change
// the run's reported window multiset.
func (r *runner) primeStream() {
	resp, err := r.client.Get(fmt.Sprintf("%s/stream?alg=%s&domain=1&segment=1&n=2048", r.base, r.algs[0]))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// clusterReport reads the router's own accounting off its /metrics.
func (r *runner) clusterReport(pulses int) *ClusterReport {
	return &ClusterReport{
		Nodes:           r.cfg.Cluster.Nodes,
		Retries:         r.metricSample("bsrngd_cluster_retries_total"),
		Failovers:       r.metricSample("bsrngd_cluster_failovers_total"),
		ForwardFailures: r.metricFamilySum("bsrngd_cluster_forward_failures_total"),
		ForwardPulses:   pulses,
	}
}

// perNode builds the per-node forwarded-request distribution from the
// router's bsrngd_cluster_forwarded_total{node,endpoint} samples. Works
// against any router — the booted one or a dialed one; nil when the
// base URL is a plain node (no cluster metrics exposed).
func (r *runner) perNode() map[string]int64 {
	body := r.metricsBody()
	if body == "" {
		return nil
	}
	const fam = "bsrngd_cluster_forwarded_total{"
	var dist map[string]int64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, fam) {
			continue
		}
		node, v, ok := parseNodeSample(line[len(fam)-1:])
		if !ok {
			continue
		}
		if dist == nil {
			dist = make(map[string]int64)
		}
		dist[node] += v
	}
	return dist
}

// parseNodeSample extracts (node label, value) from a labeled sample
// like `{node="n0",endpoint="bytes"} 12`.
func parseNodeSample(s string) (string, int64, bool) {
	const key = `node="`
	i := strings.Index(s, key)
	if i < 0 {
		return "", 0, false
	}
	rest := s[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", 0, false
	}
	node := rest[:j]
	sp := strings.LastIndexByte(s, ' ')
	if sp < 0 {
		return "", 0, false
	}
	var v int64
	if _, err := fmt.Sscanf(s[sp+1:], "%d", &v); err != nil {
		return "", 0, false
	}
	return node, v, true
}

// metricFamilySum sums every sample of a labeled metric family.
func (r *runner) metricFamilySum(name string) float64 {
	body := r.metricsBody()
	var sum float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

// metricsBody fetches the full /metrics exposition ("" on failure).
func (r *runner) metricsBody() string {
	resp, err := r.client.Get(r.base + "/metrics")
	if err != nil {
		return ""
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return ""
	}
	return string(body)
}
