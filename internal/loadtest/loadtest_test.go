package loadtest

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// smallServer is the booted-daemon config every cell here shares: tiny
// pools, fast health cadence, and an untuned admission path.
func smallServer(seed uint64, algs ...core.Algorithm) server.Config {
	return server.Config{
		Seed:         seed,
		Algorithms:   algs,
		ShardsPerAlg: 2, WorkersPerShard: 1, StagingBytes: core.SegmentBytes,
		RequestTimeout:  time.Second,
		QuarantineAfter: 2, ProbationSegments: 2,
		ProbationInterval: 100 * time.Millisecond,
	}
}

// The boot-mode cell: a mixed deterministic workload against an
// in-process daemon completes with zero unintended failures, verifies
// every deterministic window against the library, and produces the same
// order-insensitive digest when run twice.
func TestRunBootDeterministic(t *testing.T) {
	cfg := Config{
		Server:            smallServer(41, core.MICKEY),
		Clients:           6,
		RequestsPerClient: 6,
		Verify:            true,
		Logf:              t.Logf,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "boot" {
		t.Errorf("mode %q, want boot", res.Mode)
	}
	if want := int64(cfg.Clients * cfg.RequestsPerClient); res.Requests < want {
		t.Errorf("requests %d, want ≥ %d (lease shapes add sub-requests)", res.Requests, want)
	}
	if res.NonOK != 0 {
		t.Errorf("non-OK responses %d (statuses %v)", res.NonOK, res.Statuses)
	}
	if res.Statuses["200"] == 0 {
		t.Errorf("no 200s recorded: %v", res.Statuses)
	}
	if res.VerifiedWindows == 0 {
		t.Error("workload verified no windows — the addressed/lease shapes never ran")
	}
	if res.VerifyMismatches != 0 || res.ZeroRuns != 0 {
		t.Errorf("mismatches %d, zero runs %d", res.VerifyMismatches, res.ZeroRuns)
	}
	if res.BytesRead == 0 || res.ThroughputMBps <= 0 || res.Seconds <= 0 {
		t.Errorf("throughput accounting: %d bytes in %.3fs = %.3f MB/s",
			res.BytesRead, res.Seconds, res.ThroughputMBps)
	}
	for _, shape := range []string{"bytes", "stream", "lease"} {
		ls, ok := res.Latency[shape]
		if !ok || ls.Count == 0 {
			t.Errorf("no latency summary for shape %q", shape)
			continue
		}
		if ls.P50Ms <= 0 || ls.P99Ms < ls.P50Ms || ls.MaxMs < ls.P99Ms {
			t.Errorf("%s latency not monotone: %+v", shape, ls)
		}
	}

	// Same Config, fresh daemon: the window multiset — and therefore the
	// digest — is identical.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WindowDigest != res.WindowDigest {
		t.Errorf("digest not reproducible: %s vs %s", res.WindowDigest, res2.WindowDigest)
	}
	if res2.VerifiedWindows != res.VerifiedWindows {
		t.Errorf("verified window count drifted: %d vs %d", res.VerifiedWindows, res2.VerifiedWindows)
	}
}

// Dial mode drives an externally-booted daemon; with a lease-free mix
// the digest is reproducible even against one long-lived process, and
// VerifySeed stands in for the server seed.
func TestRunDialMode(t *testing.T) {
	srv, err := server.New(smallServer(91, core.GRAIN))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	})

	cfg := Config{
		BaseURL:           "http://" + ln.Addr().String(),
		Clients:           4,
		RequestsPerClient: 5,
		Mix:               Mix{Bytes: 1, Stream: 2}, // no leases: domains stay fixed
		Algorithms:        []core.Algorithm{core.GRAIN},
		Verify:            true,
		VerifySeed:        91,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "dial" {
		t.Errorf("mode %q, want dial", res.Mode)
	}
	if res.NonOK != 0 || res.VerifyMismatches != 0 {
		t.Fatalf("dial run: non-OK %d, mismatches %d (statuses %v)",
			res.NonOK, res.VerifyMismatches, res.Statuses)
	}
	if res.Requests != int64(cfg.Clients*cfg.RequestsPerClient) {
		t.Errorf("requests %d, want %d", res.Requests, cfg.Clients*cfg.RequestsPerClient)
	}
	if _, ok := res.Latency["lease"]; ok {
		t.Error("lease latency recorded despite a lease-free mix")
	}

	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WindowDigest != res.WindowDigest {
		t.Errorf("dial digest not reproducible: %s vs %s", res.WindowDigest, res2.WindowDigest)
	}
}

// A wrong verification seed must be loudly visible, not silently folded
// into the digest.
func TestRunVerifyCatchesWrongSeed(t *testing.T) {
	res, err := Run(Config{
		Server:            smallServer(7, core.MICKEY),
		Clients:           2,
		RequestsPerClient: 6,
		Mix:               Mix{Stream: 1},
		Verify:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyMismatches != 0 {
		t.Fatalf("control run mismatched %d windows", res.VerifyMismatches)
	}

	// Same daemon seed, poisoned verification seed via dial-mode plumbing.
	srv, err := server.New(smallServer(7, core.MICKEY))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	})
	res, err = Run(Config{
		BaseURL:           "http://" + ln.Addr().String(),
		Clients:           2,
		RequestsPerClient: 6,
		Mix:               Mix{Stream: 1},
		Algorithms:        []core.Algorithm{core.MICKEY},
		Verify:            true,
		VerifySeed:        8, // wrong on purpose
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyMismatches == 0 {
		t.Error("verification with the wrong seed reported zero mismatches")
	}
}

func TestRunConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative clients", Config{Clients: -1}, "clients"},
		{"negative mix", Config{Server: smallServer(1, core.MICKEY),
			Mix: Mix{Bytes: -1, Stream: 2}}, "mix"},
		{"boot failure", Config{Server: server.Config{ShardsPerAlg: -4}}, "booting server"},
		{"chaos in dial mode", Config{BaseURL: "http://127.0.0.1:1",
			Chaos: &ChaosConfig{}}, "boot mode"},
	} {
		_, err := Run(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// Transport failures land in the "error" status bucket and the non-OK
// count instead of crashing the run.
func TestRunUnreachableDaemon(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	res, err := Run(Config{
		BaseURL:           "http://" + addr,
		Clients:           2,
		RequestsPerClient: 2,
		Timeout:           2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NonOK == 0 || res.Statuses["error"] == 0 {
		t.Errorf("unreachable daemon produced no transport errors: %+v", res.Statuses)
	}
}

func TestHasZeroRun(t *testing.T) {
	long := make([]byte, 200)
	for i := range long {
		long[i] = byte(i%250) + 1
	}
	broken := append(append([]byte{}, long[:50]...), make([]byte, 64)...)
	split := append(append(append([]byte{}, make([]byte, 63)...), 1), make([]byte, 63)...)
	for _, tc := range []struct {
		name string
		b    []byte
		want bool
	}{
		{"empty", nil, false},
		{"healthy", long, false},
		{"63 zeros", make([]byte, 63), false},
		{"64 zeros", make([]byte, 64), true},
		{"embedded run", broken, true},
		{"interrupted run", split, false},
	} {
		if got := hasZeroRun(tc.b); got != tc.want {
			t.Errorf("%s: hasZeroRun = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h latHist
	if s := h.summary(); s != (LatencySummary{}) {
		t.Errorf("empty histogram summary %+v", s)
	}
	for i := 0; i < 100; i++ {
		h.observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(100 * time.Millisecond)
	}
	h.observe(0) // sub-microsecond lands in bucket 0
	s := h.summary()
	if s.Count != 111 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50Ms < 1 || s.P50Ms > 1.25 {
		t.Errorf("p50 %.3fms outside the 1ms bucket bound", s.P50Ms)
	}
	if s.P99Ms != 100 {
		t.Errorf("p99 %.3fms, want capped at max 100ms", s.P99Ms)
	}
	if s.MaxMs != 100 {
		t.Errorf("max %.3fms", s.MaxMs)
	}
	if s.MeanMs < 9 || s.MeanMs > 11 {
		t.Errorf("mean %.3fms, want ≈9.9ms", s.MeanMs)
	}
	if s.P90Ms < s.P50Ms || s.P99Ms < s.P90Ms {
		t.Errorf("quantiles not monotone: %+v", s)
	}

	// An extreme observation clamps into the last bucket.
	var wide latHist
	wide.observe(time.Hour)
	if ws := wide.summary(); ws.P99Ms != ws.MaxMs {
		t.Errorf("overflow bucket quantile %.1f != max %.1f", ws.P99Ms, ws.MaxMs)
	}
}
