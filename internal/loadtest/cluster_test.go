package loadtest

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// The cluster acceptance cell: the same deterministic workload driven
// through a 3-node cluster behind the router completes with zero
// unintended failures, verifies every window against the library, lands
// traffic on every node — and produces the exact window digest a
// single-node run of the same Config produces. The router tier is
// invisible in the bytes.
func TestRunClusterMatchesSingleNode(t *testing.T) {
	cfg := Config{
		Server:            smallServer(61, core.GRAIN),
		Cluster:           &ClusterConfig{Nodes: 3},
		Clients:           6,
		RequestsPerClient: 6,
		Verify:            true,
		Logf:              t.Logf,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "cluster" {
		t.Errorf("mode %q, want cluster", res.Mode)
	}
	if res.NonOK != 0 {
		t.Errorf("non-OK responses %d (statuses %v)", res.NonOK, res.Statuses)
	}
	if res.VerifiedWindows == 0 || res.VerifyMismatches != 0 || res.ZeroRuns != 0 {
		t.Errorf("verified %d, mismatches %d, zero runs %d",
			res.VerifiedWindows, res.VerifyMismatches, res.ZeroRuns)
	}
	if res.Cluster == nil || res.Cluster.Nodes != 3 {
		t.Fatalf("cluster report %+v", res.Cluster)
	}
	if len(res.PerNode) != 3 {
		t.Fatalf("per-node distribution %v, want all 3 nodes hit", res.PerNode)
	}
	var forwarded int64
	for node, n := range res.PerNode {
		if n <= 0 {
			t.Errorf("node %s forwarded %d requests", node, n)
		}
		forwarded += n
	}
	if forwarded < res.Requests {
		t.Errorf("router forwarded %d requests, clients issued %d", forwarded, res.Requests)
	}

	// The same Config against a single node: identical digest, identical
	// verified-window count. (Single-algorithm workload — multi-algorithm
	// lease-domain allocation order differs across topologies.)
	single := cfg
	single.Cluster = nil
	sres, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if sres.WindowDigest != res.WindowDigest {
		t.Errorf("cluster digest %s != single-node digest %s — the router changed bytes",
			res.WindowDigest, sres.WindowDigest)
	}
	if sres.VerifiedWindows != res.VerifiedWindows {
		t.Errorf("verified windows drifted: cluster %d, single %d",
			res.VerifiedWindows, sres.VerifiedWindows)
	}
	if sres.PerNode != nil {
		t.Errorf("single-node run reports a per-node distribution: %v", sres.PerNode)
	}
}

// Forward chaos: pulsed injected forward failures force the router
// through retry/failover under live load, the clients never see them,
// and a double run — and a calm run — report the identical digest.
func TestRunClusterForwardChaosDigestIdentical(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out (bsrng_nofaultinject)")
	}
	cfg := Config{
		Server:            smallServer(71, core.GRAIN),
		Cluster:           &ClusterConfig{Nodes: 3, ForwardChaos: &ForwardChaosConfig{FailpointSeed: 5, Pulses: 2}},
		Clients:           4,
		RequestsPerClient: 6,
		Verify:            true,
		Logf:              t.Logf,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonOK != 0 || res.VerifyMismatches != 0 {
		t.Errorf("chaos run: %d non-OK, %d mismatches (statuses %v)",
			res.NonOK, res.VerifyMismatches, res.Statuses)
	}
	if res.Cluster == nil {
		t.Fatal("no cluster report")
	}
	if res.Cluster.ForwardPulses != 2 {
		t.Errorf("forward pulses %d, want 2", res.Cluster.ForwardPulses)
	}
	if res.Cluster.Retries < 2 || res.Cluster.ForwardFailures < 2 {
		t.Errorf("router absorbed %v retries / %v forward failures, want >= 2 each",
			res.Cluster.Retries, res.Cluster.ForwardFailures)
	}

	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WindowDigest != res.WindowDigest {
		t.Errorf("chaos double run digest drifted: %s vs %s", res.WindowDigest, res2.WindowDigest)
	}

	calm := cfg
	calm.Cluster = &ClusterConfig{Nodes: 3}
	cres, err := Run(calm)
	if err != nil {
		t.Fatal(err)
	}
	if cres.WindowDigest != res.WindowDigest {
		t.Errorf("chaos digest %s != calm digest %s — injected faults changed bytes",
			res.WindowDigest, cres.WindowDigest)
	}
}

func TestRunClusterConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"dial mode", Config{BaseURL: "http://127.0.0.1:1", Cluster: &ClusterConfig{}}, "boot mode"},
		{"with segment chaos", Config{Chaos: &ChaosConfig{}, Cluster: &ClusterConfig{}}, "ForwardChaos"},
		{"negative nodes", Config{Cluster: &ClusterConfig{Nodes: -2}}, "out of range"},
	}
	for _, tc := range cases {
		_, err := Run(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestParseNodeSample(t *testing.T) {
	node, v, ok := parseNodeSample(`{node="n1",endpoint="bytes"} 12`)
	if !ok || node != "n1" || v != 12 {
		t.Errorf("parsed (%q, %d, %v)", node, v, ok)
	}
	if _, _, ok := parseNodeSample(`{endpoint="bytes"} 12`); ok {
		t.Error("sample without node label parsed")
	}
	if _, _, ok := parseNodeSample(`{node="n1"}`); ok {
		t.Error("sample without value parsed")
	}
}
