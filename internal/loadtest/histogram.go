package loadtest

import (
	"math"
	"sync"
	"time"
)

// latBuckets spans [1µs, ~16s) at four buckets per octave: worst-case
// quantile error ~19%, fixed footprint, no allocation on the hot path.
const latBuckets = 160

// latHist is a concurrency-safe log-bucketed latency histogram.
type latHist struct {
	mu      sync.Mutex
	buckets [latBuckets]int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

func (h *latHist) observe(d time.Duration) {
	idx := 0
	if us := float64(d) / float64(time.Microsecond); us >= 1 {
		idx = int(math.Log2(us) * 4)
		if idx >= latBuckets {
			idx = latBuckets - 1
		}
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// quantileLocked returns the q-quantile in milliseconds as the upper
// bound of the bucket holding the q-ranked observation.
func (h *latHist) quantileLocked(q float64) float64 {
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			us := math.Exp2(float64(i+1) / 4)
			if ms := us / 1000; ms < float64(h.max)/float64(time.Millisecond) {
				return ms
			}
			return float64(h.max) / float64(time.Millisecond)
		}
	}
	return float64(h.max) / float64(time.Millisecond)
}

// LatencySummary is the machine-readable digest of one request shape's
// latency distribution, in milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (h *latHist) summary() LatencySummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:  h.count,
		MeanMs: float64(h.sum) / float64(h.count) / float64(time.Millisecond),
		P50Ms:  h.quantileLocked(0.50),
		P90Ms:  h.quantileLocked(0.90),
		P99Ms:  h.quantileLocked(0.99),
		MaxMs:  float64(h.max) / float64(time.Millisecond),
	}
}
