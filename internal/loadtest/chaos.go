package loadtest

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// healthzDoc mirrors the /healthz JSON the chaos driver polls.
type healthzDoc struct {
	Status string `json:"status"`
	Pools  map[string]struct {
		Shards      int `json:"shards"`
		Quarantined int `json:"quarantined"`
	} `json:"pools"`
}

// runChaos drives the configured number of quarantine → probation →
// re-admit cycles against the first algorithm while the client load
// runs: pulse a seeded corruption failpoint until every shard is
// condemned, watch /healthz degrade, heal the fault, watch the pool
// recover. Returns the cycle accounting from the health metrics.
//
// The pulse shape matters: each arming is a single shot, re-armed only
// after it fires. One armed hit condemns exactly one segment
// generation; the immediate regeneration retries run unarmed and pass,
// so the stream never exhausts its reseed budget and no corrupt bytes
// are ever delivered — while every condemnation still strikes the
// owning shard at checkout, accruing toward quarantine. (A sustained
// range-armed fault would instead corrupt the retries too, and after
// maxHealthReseeds the stream ships the condemned segment rather than
// livelock.)
func (r *runner) runChaos() (*ChaosReport, error) {
	if !faultinject.Available() {
		return nil, fmt.Errorf("loadtest: chaos requested but faultinject is compiled out")
	}
	cc := r.cfg.Chaos
	alg := r.algs[0]
	fp := "server.segment.corrupt." + alg.String()
	defer faultinject.Disarm(fp)

	qBefore := r.metricSample(`bsrngd_health_quarantines_total{alg="` + alg.String() + `"}`)
	rBefore := r.metricSample(`bsrngd_health_readmits_total{alg="` + alg.String() + `"}`)

	for cyc := 0; cyc < cc.Cycles; cyc++ {
		// The seeded draw places the cycle's first condemned check.
		nth := faultinject.ArmSeeded(fp, cc.FailpointSeed+uint64(cyc), cc.Window)
		r.cfg.Logf("loadtest: chaos cycle %d: %s armed at hit %d", cyc, fp, nth)

		drive := func() {
			if faultinject.Fired(fp) > 0 {
				faultinject.Arm(fp, 1) // pulse again: next generation condemns
			}
			r.prime()
		}
		err := r.waitHealthz(cc.PhaseTimeout, drive, func(hz healthzDoc) bool {
			ph := hz.Pools[alg.String()]
			return ph.Shards > 0 && ph.Quarantined == ph.Shards
		})
		if err != nil {
			return nil, fmt.Errorf("loadtest: chaos cycle %d: pool never fully quarantined: %w", cyc, err)
		}
		r.cfg.Logf("loadtest: chaos cycle %d: %s fully quarantined, healing", cyc, alg)

		faultinject.Disarm(fp)
		err = r.waitHealthz(cc.PhaseTimeout, nil, func(hz healthzDoc) bool {
			return hz.Status == "ok" && hz.Pools[alg.String()].Quarantined == 0
		})
		if err != nil {
			return nil, fmt.Errorf("loadtest: chaos cycle %d: pool never recovered: %w", cyc, err)
		}
		r.cfg.Logf("loadtest: chaos cycle %d: %s re-admitted", cyc, alg)
	}

	return &ChaosReport{
		Algorithm:   alg.String(),
		Cycles:      cc.Cycles,
		Quarantines: r.metricSample(`bsrngd_health_quarantines_total{alg="`+alg.String()+`"}`) - qBefore,
		Readmits:    r.metricSample(`bsrngd_health_readmits_total{alg="`+alg.String()+`"}`) - rBefore,
	}, nil
}

// prime issues one small pooled request on the chaos algorithm:
// quarantine decisions happen at shard checkout, so without traffic a
// condemned pool never trips.
func (r *runner) prime() {
	resp, err := r.client.Get(fmt.Sprintf("%s/bytes?alg=%s&n=%d",
		r.base, r.algs[0], r.cfg.BytesN))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// waitHealthz polls /healthz until ok returns true, running drive (when
// non-nil) each iteration to keep the fault pulsed and the pool under
// checkout pressure.
func (r *runner) waitHealthz(timeout time.Duration, drive func(), ok func(healthzDoc) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if drive != nil {
			drive()
		}
		resp, err := r.client.Get(r.base + "/healthz")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			var hz healthzDoc
			if rerr == nil && json.Unmarshal(body, &hz) == nil && ok(hz) {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricSample fetches one sample (0 when absent or unreachable) from
// the daemon's /metrics exposition.
func (r *runner) metricSample(name string) float64 {
	resp, err := r.client.Get(r.base + "/metrics")
	if err != nil {
		return 0
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
