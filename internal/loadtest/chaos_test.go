package loadtest

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// The chaos soak cell (run in the CI race job): concurrent clients
// hammer a booted daemon while seeded failpoints condemn segments on
// the served algorithm. Every quarantine → probation → re-admit cycle
// must complete, no corrupt bytes may reach a client, and a second run
// of the identical Config must pull a byte-identical window multiset.
func TestChaosSoak(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out (bsrng_nofaultinject)")
	}
	t.Cleanup(faultinject.Reset)

	// One algorithm: lease domains then map to the same engine in every
	// run, keeping the window digest comparable across runs.
	cfg := Config{
		Server:            smallServer(53, core.TRIVIUM),
		Clients:           6,
		RequestsPerClient: 8,
		Verify:            true,
		Chaos: &ChaosConfig{
			FailpointSeed: 11,
			Window:        8,
			Cycles:        2,
			PhaseTimeout:  20 * time.Second,
		},
		Logf: t.Logf,
	}
	run := func() *Result {
		t.Helper()
		faultinject.Reset()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run()
	if res.Chaos == nil {
		t.Fatal("chaos run returned no chaos report")
	}
	if res.Chaos.Cycles != cfg.Chaos.Cycles || res.Chaos.Algorithm != "trivium" {
		t.Errorf("chaos report %+v", res.Chaos)
	}
	// Every cycle quarantines and re-admits the full pool at least once
	// (while a pulse is armed a re-admitted shard may cycle again, so the
	// counters are a floor, not an exact count), and every quarantined
	// shard was re-admitted by the end of the run.
	wantEvents := float64(smallServer(53, core.TRIVIUM).ShardsPerAlg * cfg.Chaos.Cycles)
	if res.Chaos.Quarantines < wantEvents {
		t.Errorf("quarantines %.0f, want ≥ %.0f", res.Chaos.Quarantines, wantEvents)
	}
	if res.Chaos.Readmits != res.Chaos.Quarantines {
		t.Errorf("readmits %.0f != quarantines %.0f — shards left quarantined",
			res.Chaos.Readmits, res.Chaos.Quarantines)
	}
	// No corrupt bytes observed, by two independent detectors.
	if res.VerifyMismatches != 0 {
		t.Errorf("%d verify mismatches during chaos", res.VerifyMismatches)
	}
	if res.ZeroRuns != 0 {
		t.Errorf("%d zero runs — a condemned segment leaked to a client", res.ZeroRuns)
	}
	if res.VerifiedWindows == 0 {
		t.Error("chaos run verified no windows")
	}
	// 503s while the pool is fully quarantined are the intended shed
	// path; anything else is a failure.
	if res.NonOK != 0 {
		t.Errorf("non-OK %d (statuses %v)", res.NonOK, res.Statuses)
	}

	res2 := run()
	if res2.WindowDigest != res.WindowDigest {
		t.Errorf("chaos runs diverge: digest %s vs %s", res.WindowDigest, res2.WindowDigest)
	}
}
