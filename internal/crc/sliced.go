package crc

import (
	"fmt"

	"repro/internal/bitslice"
)

// Sliced8 is the bitsliced CRC-8 of paper Fig. 6: eight uint64 planes hold
// the registers of 64 independent CRC streams (plane i, bit L = register
// bit i of stream L). One ClockBit consumes one input bit from each of the
// 64 streams and advances all of them with a handful of full-width word
// operations; the per-instance shift-and-mask of Fig. 5 disappears into
// register renaming.
type Sliced8 struct {
	poly   uint8
	planes [8]uint64
	head   int
}

// NewSliced8 builds the 64-lane engine; init gives each lane's initial
// register value (lanes beyond len(inits) start at zero).
func NewSliced8(poly uint8, inits []uint64) (*Sliced8, error) {
	if len(inits) > bitslice.W {
		return nil, fmt.Errorf("crc: more than 64 lanes")
	}
	s := &Sliced8{poly: poly}
	for lane, iv := range inits {
		for i := 0; i < 8; i++ {
			bitslice.SetLaneBit(s.planes[:], i, lane, uint8((iv>>uint(i))&1))
		}
	}
	return s, nil
}

// ClockBit consumes one input bit per lane (bit L of in = next input bit
// of stream L) and advances all 64 registers.
func (s *Sliced8) ClockBit(in uint64) {
	fb := s.planes[s.head] ^ in
	// Shift: rename the ring head; the vacated top plane becomes zero and
	// then receives fb at every polynomial tap position.
	old := s.head
	s.head = s.idx(1)
	s.planes[old] = 0 // this plane is now register bit 7
	for i := 0; i < 8; i++ {
		if s.poly&(1<<uint(i)) != 0 {
			s.planes[s.idx(i)] ^= fb
		}
	}
}

func (s *Sliced8) idx(i int) int { return (s.head + i) & 7 }

// Write feeds 64 parallel byte streams: streams[L] is the input of lane L,
// consumed LSB-first within each byte. All streams must have equal length.
func (s *Sliced8) Write(streams [][]byte) error {
	if len(streams) == 0 {
		return nil
	}
	if len(streams) > bitslice.W {
		return fmt.Errorf("crc: more than 64 streams")
	}
	n := len(streams[0])
	for _, st := range streams {
		if len(st) != n {
			return fmt.Errorf("crc: ragged stream lengths")
		}
	}
	for byteIdx := 0; byteIdx < n; byteIdx++ {
		for j := uint(0); j < 8; j++ {
			var in uint64
			for lane, st := range streams {
				in |= uint64((st[byteIdx]>>j)&1) << uint(lane)
			}
			s.ClockBit(in)
		}
	}
	return nil
}

// Lane returns the current CRC register of one lane.
func (s *Sliced8) Lane(lane int) uint8 {
	var v uint8
	for i := 0; i < 8; i++ {
		v |= bitslice.LaneBit(s.planes[:], s.idx(i), lane) << uint(i)
	}
	return v
}

// Sliced32 is the 32-bit scale-up of Sliced8: 32 planes, 64 lanes.
type Sliced32 struct {
	poly   uint32
	planes [32]uint64
	head   int
}

// NewSliced32 builds the 64-lane CRC-32 engine with every lane initialized
// to init (0xFFFFFFFF for CRC-32/IEEE).
func NewSliced32(poly uint32, init uint32) *Sliced32 {
	s := &Sliced32{poly: poly}
	for i := 0; i < 32; i++ {
		if init&(1<<uint(i)) != 0 {
			s.planes[i] = ^uint64(0)
		}
	}
	return s
}

// ClockBit consumes one input bit per lane and advances all 64 registers.
func (s *Sliced32) ClockBit(in uint64) {
	fb := s.planes[s.head] ^ in
	old := s.head
	s.head = s.idx(1)
	s.planes[old] = 0
	for i := 0; i < 32; i++ {
		if s.poly&(1<<uint(i)) != 0 {
			s.planes[s.idx(i)] ^= fb
		}
	}
}

func (s *Sliced32) idx(i int) int { return (s.head + i) & 31 }

// Lane returns the current CRC register of one lane.
func (s *Sliced32) Lane(lane int) uint32 {
	var v uint32
	for i := 0; i < 32; i++ {
		v |= uint32(bitslice.LaneBit(s.planes[:], s.idx(i), lane)) << uint(i)
	}
	return v
}

// WriteWords feeds pre-sliced input: each element of in is one clock's
// worth of lane bits (bit L = next input bit of stream L). This is the
// zero-overhead path used when the producer is itself bitsliced.
func (s *Sliced32) WriteWords(in []uint64) {
	for _, w := range in {
		s.ClockBit(w)
	}
}
