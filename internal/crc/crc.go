// Package crc implements cyclic redundancy checks in three forms, mirroring
// the worked example of paper §4.2: the naive bit-serial shift register
// (Fig. 5), the conventional table-driven software implementation (used
// here as the oracle), and the bitsliced engine that runs 64 independent
// CRC streams in parallel with no shift-and-mask work (Fig. 6).
//
// The registers operate LSB-first on reflected polynomials, the standard
// layout for serial CRCs (CRC-8/MAXIM and CRC-32/IEEE are provided).
package crc

// Poly8Maxim is the reflected form of x^8+x^5+x^4+1 (CRC-8/MAXIM, the
// Dallas/Maxim 1-Wire CRC — the 8-bit register with taps at bits 0, 3 and
// 4 drawn in the paper's Fig. 5).
const Poly8Maxim = uint8(0x8C)

// Poly32IEEE is the reflected form of the CRC-32 polynomial used by
// Ethernet, gzip, PNG (Koopman's "32-bit cyclic redundancy codes for
// internet applications" is the paper's reference [19]).
const Poly32IEEE = uint32(0xEDB88320)

// BitSerial8 is the naive CRC-8 register of Fig. 5: one instance, clocked
// one input bit at a time with an explicit shift and conditional mask.
type BitSerial8 struct {
	poly uint8
	crc  uint8
}

// NewBitSerial8 returns a bit-serial CRC-8 over the given reflected
// polynomial, initialized to init.
func NewBitSerial8(poly, init uint8) *BitSerial8 {
	return &BitSerial8{poly: poly, crc: init}
}

// ClockBit feeds one input bit (LSB-first stream order).
func (c *BitSerial8) ClockBit(b uint8) {
	fb := (c.crc ^ b) & 1
	c.crc >>= 1
	if fb == 1 {
		c.crc ^= c.poly
	}
}

// Write feeds whole bytes, LSB-first within each byte.
func (c *BitSerial8) Write(p []byte) (int, error) {
	for _, by := range p {
		for j := uint(0); j < 8; j++ {
			c.ClockBit((by >> j) & 1)
		}
	}
	return len(p), nil
}

// Sum8 returns the current CRC value.
func (c *BitSerial8) Sum8() uint8 { return c.crc }

// Reset restores the register to the given init value.
func (c *BitSerial8) Reset(init uint8) { c.crc = init }

// Table8 is the conventional byte-at-a-time table-driven CRC-8; it is the
// correctness oracle for the other two forms.
type Table8 struct {
	table [256]uint8
	crc   uint8
}

// NewTable8 builds the 256-entry table for the given reflected polynomial.
func NewTable8(poly, init uint8) *Table8 {
	t := &Table8{crc: init}
	for i := 0; i < 256; i++ {
		c := uint8(i)
		for j := 0; j < 8; j++ {
			if c&1 == 1 {
				c = (c >> 1) ^ poly
			} else {
				c >>= 1
			}
		}
		t.table[i] = c
	}
	return t
}

// Write updates the CRC with p.
func (t *Table8) Write(p []byte) (int, error) {
	c := t.crc
	for _, b := range p {
		c = t.table[c^b]
	}
	t.crc = c
	return len(p), nil
}

// Sum8 returns the current CRC value.
func (t *Table8) Sum8() uint8 { return t.crc }

// Reset restores the register to the given init value.
func (t *Table8) Reset(init uint8) { t.crc = init }

// Checksum8 is a convenience one-shot CRC-8/MAXIM (init 0).
func Checksum8(p []byte) uint8 {
	t := NewTable8(Poly8Maxim, 0)
	t.Write(p)
	return t.Sum8()
}

// BitSerial32 is the bit-serial CRC-32 register (Fig. 5 scaled to 32 bits).
type BitSerial32 struct {
	poly uint32
	crc  uint32
}

// NewBitSerial32 returns a bit-serial CRC-32 over the given reflected
// polynomial, initialized to init (0xFFFFFFFF for CRC-32/IEEE).
func NewBitSerial32(poly, init uint32) *BitSerial32 {
	return &BitSerial32{poly: poly, crc: init}
}

// ClockBit feeds one input bit (LSB-first stream order).
func (c *BitSerial32) ClockBit(b uint8) {
	fb := (c.crc ^ uint32(b)) & 1
	c.crc >>= 1
	if fb == 1 {
		c.crc ^= c.poly
	}
}

// Write feeds whole bytes, LSB-first within each byte.
func (c *BitSerial32) Write(p []byte) (int, error) {
	for _, by := range p {
		for j := uint(0); j < 8; j++ {
			c.ClockBit((by >> j) & 1)
		}
	}
	return len(p), nil
}

// Sum32 returns the current register value (callers apply the final XOR,
// 0xFFFFFFFF for CRC-32/IEEE).
func (c *BitSerial32) Sum32() uint32 { return c.crc }

// ChecksumIEEE is a one-shot CRC-32/IEEE (init and final XOR 0xFFFFFFFF),
// bit-serially computed; it matches hash/crc32.ChecksumIEEE.
func ChecksumIEEE(p []byte) uint32 {
	c := NewBitSerial32(Poly32IEEE, 0xFFFFFFFF)
	c.Write(p)
	return c.Sum32() ^ 0xFFFFFFFF
}
