package crc

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

// CRC-8/MAXIM catalog check value: crc("123456789") = 0xA1.
func TestChecksum8KnownAnswer(t *testing.T) {
	if got := Checksum8([]byte("123456789")); got != 0xA1 {
		t.Fatalf("CRC-8/MAXIM check = %#x, want 0xa1", got)
	}
}

func TestBitSerial8MatchesTable8(t *testing.T) {
	f := func(p []byte) bool {
		bs := NewBitSerial8(Poly8Maxim, 0)
		tb := NewTable8(Poly8Maxim, 0)
		bs.Write(p)
		tb.Write(p)
		return bs.Sum8() == tb.Sum8()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitSerial8Reset(t *testing.T) {
	bs := NewBitSerial8(Poly8Maxim, 0)
	bs.Write([]byte("hello"))
	bs.Reset(0)
	if bs.Sum8() != 0 {
		t.Fatal("reset failed")
	}
	tb := NewTable8(Poly8Maxim, 0)
	tb.Write([]byte("x"))
	tb.Reset(0)
	if tb.Sum8() != 0 {
		t.Fatal("table reset failed")
	}
}

func TestChecksumIEEEMatchesStdlib(t *testing.T) {
	f := func(p []byte) bool {
		return ChecksumIEEE(p) == crc32.ChecksumIEEE(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumIEEEKnownAnswer(t *testing.T) {
	if got := ChecksumIEEE([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("CRC-32/IEEE check = %#x, want 0xcbf43926", got)
	}
}

// The bitsliced engine must match 64 independent table-driven CRCs over 64
// distinct input streams (Fig. 6 vs Fig. 5).
func TestSliced8MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const streamLen = 73
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, streamLen)
		rng.Read(streams[l])
	}
	inits := make([]uint64, 64)
	for i := range inits {
		inits[i] = uint64(rng.Intn(256))
	}
	s, err := NewSliced8(Poly8Maxim, inits)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(streams); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 64; lane++ {
		tb := NewTable8(Poly8Maxim, uint8(inits[lane]))
		tb.Write(streams[lane])
		if got := s.Lane(lane); got != tb.Sum8() {
			t.Fatalf("lane %d: sliced %#x, oracle %#x", lane, got, tb.Sum8())
		}
	}
}

func TestSliced8InitialLaneValues(t *testing.T) {
	inits := []uint64{0xAB, 0x00, 0xFF}
	s, err := NewSliced8(Poly8Maxim, inits)
	if err != nil {
		t.Fatal(err)
	}
	for lane, want := range inits {
		if got := s.Lane(lane); got != uint8(want) {
			t.Fatalf("lane %d init = %#x, want %#x", lane, got, want)
		}
	}
}

func TestSliced8RejectsBadInput(t *testing.T) {
	if _, err := NewSliced8(Poly8Maxim, make([]uint64, 65)); err == nil {
		t.Error("65 lanes accepted")
	}
	s, _ := NewSliced8(Poly8Maxim, nil)
	if err := s.Write(make([][]byte, 65)); err == nil {
		t.Error("65 streams accepted")
	}
	if err := s.Write([][]byte{{1, 2}, {1}}); err == nil {
		t.Error("ragged streams accepted")
	}
	if err := s.Write(nil); err != nil {
		t.Errorf("empty write: %v", err)
	}
}

func TestSliced32MatchesStdlibPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const streamLen = 41
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, streamLen)
		rng.Read(streams[l])
	}
	s := NewSliced32(Poly32IEEE, 0xFFFFFFFF)
	for byteIdx := 0; byteIdx < streamLen; byteIdx++ {
		for j := uint(0); j < 8; j++ {
			var in uint64
			for lane, st := range streams {
				in |= uint64((st[byteIdx]>>j)&1) << uint(lane)
			}
			s.ClockBit(in)
		}
	}
	for lane := 0; lane < 64; lane++ {
		want := crc32.ChecksumIEEE(streams[lane])
		if got := s.Lane(lane) ^ 0xFFFFFFFF; got != want {
			t.Fatalf("lane %d: sliced %#x, stdlib %#x", lane, got, want)
		}
	}
}

func TestSliced32WriteWords(t *testing.T) {
	// All 64 lanes fed the same stream must all equal the scalar CRC.
	data := []byte("the quick brown fox jumps over the lazy dog")
	s := NewSliced32(Poly32IEEE, 0xFFFFFFFF)
	words := make([]uint64, 0, len(data)*8)
	for _, by := range data {
		for j := uint(0); j < 8; j++ {
			bit := uint64((by >> j) & 1)
			w := uint64(0)
			if bit == 1 {
				w = ^uint64(0)
			}
			words = append(words, w)
		}
	}
	s.WriteWords(words)
	want := crc32.ChecksumIEEE(data)
	for lane := 0; lane < 64; lane++ {
		if got := s.Lane(lane) ^ 0xFFFFFFFF; got != want {
			t.Fatalf("lane %d: %#x want %#x", lane, got, want)
		}
	}
}

func BenchmarkNaiveBitSerial8x64Streams(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, 1024)
		rng.Read(streams[l])
	}
	b.SetBytes(64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := range streams {
			bs := NewBitSerial8(Poly8Maxim, 0)
			bs.Write(streams[l])
		}
	}
}

func BenchmarkSliced8x64Streams(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, 1024)
		rng.Read(streams[l])
	}
	b.SetBytes(64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewSliced8(Poly8Maxim, nil)
		s.Write(streams)
	}
}

func BenchmarkTable8x64Streams(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	streams := make([][]byte, 64)
	for l := range streams {
		streams[l] = make([]byte, 1024)
		rng.Read(streams[l])
	}
	tb := NewTable8(Poly8Maxim, 0)
	b.SetBytes(64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := range streams {
			tb.Reset(0)
			tb.Write(streams[l])
		}
	}
}
