package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding, rendered by the driver as
// "file:line: [rule] message".
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic without its position — the part a
// suppression or a golden `// want` assertion matches against.
func (d Diagnostic) String() string {
	return fmt.Sprintf("[%s] %s", d.Rule, d.Message)
}

// Config aims the analyzers at concrete packages; DefaultConfig returns
// the repo's production values, and the golden tests point the same
// analyzers at fixture packages instead.
type Config struct {
	// DatapathPackages are the import paths whose output must be
	// bit-for-bit deterministic: the determinism analyzer bans
	// wall-clock reads, math/rand, environment lookups and
	// map-iteration-order-dependent code there.
	DatapathPackages []string
	// GoroutinePackages are the import paths where every spawned
	// goroutine must select on a ctx/done/stop channel.
	GoroutinePackages []string
	// FaultinjectPath is the failpoint registry package; call sites
	// naming failpoints are validated against <pkg>.<site>.<effect>.
	// The registry's own unit tests are exempt (they exercise the
	// mechanism, not named production sites).
	FaultinjectPath string
	// MetricsPath is the instrumentation package whose Registry
	// constructors the metric-name analyzer inspects.
	MetricsPath string
	// MetricNamePattern is the shape every registered metric name must
	// match.
	MetricNamePattern *regexp.Regexp
	// ZeroCopyPackages are the import paths participating in the
	// zero-copy chunk handoff: slices obtained from a NextChunk call
	// and io.Writer Write parameters must not be retained past the
	// call (stored to a field, a global, a channel, or captured by a
	// goroutine).
	ZeroCopyPackages []string
	// ImmutableTypes are fully qualified type names ("pkgpath.Type")
	// whose fields and backing slices/maps may only be written inside
	// the file that declares the type (the constructor file).
	ImmutableTypes []string
	// ContextPackages are the import paths where request paths must
	// thread the caller's context.Context: context.Background() and
	// context.TODO() are banned outside constructors and main/init.
	ContextPackages []string
	// HandlerPackages are the import paths whose HTTP handlers are held
	// to the response-writing discipline (one WriteHeader per path, no
	// body after a failure status, errors through the error-body
	// convention).
	HandlerPackages []string
	// RetryPackages are the import paths where an unbounded loop must
	// not perform network I/O: retries are bounded by the retry budget
	// or the ring-walk candidate list, and long-lived loops gate each
	// iteration on a select.
	RetryPackages []string
}

// DefaultConfig returns the production configuration for the module at
// the given module path.
func DefaultConfig(module string) *Config {
	datapath := []string{"core", "bitslice", "lfsr", "crc", "mickey", "grain", "trivium", "aes", "xorgens", "chaotic", "health"}
	cfg := &Config{
		GoroutinePackages: []string{module + "/internal/server", module + "/internal/cluster"},
		FaultinjectPath:   module + "/internal/faultinject",
		MetricsPath:       module + "/internal/metrics",
		MetricNamePattern: regexp.MustCompile(`^bsrngd_[a-z0-9_]+$`),
		ZeroCopyPackages:  []string{module + "/internal/core", module + "/internal/server", module + "/internal/cluster"},
		ImmutableTypes:    []string{module + "/internal/cluster.Ring"},
		ContextPackages:   []string{module + "/internal/server", module + "/internal/cluster"},
		HandlerPackages:   []string{module + "/internal/server", module + "/internal/cluster"},
		RetryPackages:     []string{module + "/internal/cluster"},
	}
	for _, p := range datapath {
		cfg.DatapathPackages = append(cfg.DatapathPackages, module+"/internal/"+p)
	}
	return cfg
}

// Analyzer is one named rule set run over the whole module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, cfg *Config, report func(pos token.Pos, format string, args ...any))
}

// Analyzers is the full suite, in the order the driver runs it.
var Analyzers = []*Analyzer{
	Determinism,
	FailpointName,
	MetricName,
	AtomicMix,
	GoroutineHygiene,
	ErrorConventions,
	ChunkAliasing,
	RingImmutability,
	ContextPropagation,
	HandlerHygiene,
	BoundedRetry,
}

// IgnoreDirective is the comment prefix that suppresses a diagnostic on
// the same line or the line directly below:
//
//	//bsrng:lint-ignore <rule> <reason>
//
// The reason is mandatory; a malformed or unused directive is itself a
// diagnostic (rule "lint-ignore").
const IgnoreDirective = "//bsrng:lint-ignore"

// Run executes the analyzers over the module and returns the surviving
// diagnostics, sorted by position. Suppression directives are applied
// (and audited) here.
func Run(m *Module, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		rule := a.Name
		a.Run(m, cfg, func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Rule:    rule,
				Pos:     m.Fset.Position(pos),
				Message: fmt.Sprintf(format, args...),
			})
		})
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = applySuppressions(m, diags, known)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	// Identical findings from overlapping passes collapse.
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// directive is one parsed //bsrng:lint-ignore comment.
type directive struct {
	rule   string
	reason string
	pos    token.Position
	used   bool
	bad    string // non-empty when malformed
}

// applySuppressions drops diagnostics covered by a well-formed
// directive on the same or previous line, and reports malformed or
// unused directives.
func applySuppressions(m *Module, diags []Diagnostic, known map[string]bool) []Diagnostic {
	var dirs []*directive
	for _, pkg := range m.Packages {
		for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, IgnoreDirective) {
						continue
					}
					d := &directive{pos: m.Fset.Position(c.Pos())}
					rest := strings.TrimPrefix(c.Text, IgnoreDirective)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						d.bad = "missing rule and reason"
					case !known[fields[0]]:
						d.bad = fmt.Sprintf("unknown rule %q", fields[0])
					case len(fields) < 2:
						d.rule = fields[0]
						d.bad = "missing reason (a justification is mandatory)"
					default:
						d.rule = fields[0]
						d.reason = strings.Join(fields[1:], " ")
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	covered := func(diag Diagnostic) *directive {
		for _, d := range dirs {
			if d.bad != "" || d.rule != diag.Rule || d.pos.Filename != diag.Pos.Filename {
				continue
			}
			if diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.pos.Line+1 {
				return d
			}
		}
		return nil
	}
	var out []Diagnostic
	for _, diag := range diags {
		if d := covered(diag); d != nil {
			d.used = true
			continue
		}
		out = append(out, diag)
	}
	for _, d := range dirs {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{Rule: "lint-ignore", Pos: d.pos,
				Message: "malformed suppression: " + d.bad})
		case !d.used:
			out = append(out, Diagnostic{Rule: "lint-ignore", Pos: d.pos,
				Message: fmt.Sprintf("unused suppression for rule %q (nothing to suppress here)", d.rule)})
		}
	}
	return out
}

// --- shared analyzer helpers ---

// matchesAny reports whether the import path is in the list.
func matchesAny(list []string, importPath string) bool {
	for _, p := range list {
		if p == importPath {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the package-level function
// or method it invokes, or nil (built-ins, function values, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// literalPrefix extracts the leading compile-time string of an
// expression: a string literal is exact; literal + <expr> yields the
// literal as a prefix (exact=false). Anything else fails.
func literalPrefix(e ast.Expr) (s string, exact bool, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		s, ok = stringLit(x)
		return s, true, ok
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false, false
		}
		left, lexact, lok := literalPrefix(x.X)
		if !lok {
			return "", false, false
		}
		if lexact {
			// literal + something: if the right side is also fully
			// literal the whole expression is exact.
			if right, rexact, rok := literalPrefix(x.Y); rok && rexact {
				return left + right, true, true
			}
			return left, false, true
		}
		return left, false, true
	}
	return "", false, false
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}
