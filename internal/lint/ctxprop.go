package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ContextPropagation keeps request paths in the serving and cluster
// layers cancellable end to end: a function that receives a
// context.Context (or an *http.Request carrying one) must derive every
// child context from it, so `context.Background()` and `context.TODO()`
// are banned there outright. Elsewhere in the configured packages the
// only legitimate fresh roots are constructors (New*), main and init —
// a Background() anywhere else detaches that code path from Shutdown
// and from per-request deadlines, which is how the router's probe
// requests ended up unkillable. Every other way of dropping a context
// (passing Background to a ctx-accepting callee instead of the caller's
// ctx) necessarily calls one of the two constructors and is caught at
// that call.
var ContextPropagation = &Analyzer{
	Name: "context-propagation",
	Doc:  "request paths thread the caller's context; Background/TODO only in constructors",
	Run:  runContextPropagation,
}

func runContextPropagation(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		if !matchesAny(cfg.ContextPackages, pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				hasCtx := receivesContext(pkg, fd)
				exempt := !hasCtx && isFreshRootScope(fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg.Info, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
						return true
					}
					if fn.Name() != "Background" && fn.Name() != "TODO" {
						return true
					}
					switch {
					case hasCtx:
						report(call.Pos(), "context.%s() inside a function that already receives a context — derive from the caller's context so cancellation propagates", fn.Name())
					case !exempt:
						report(call.Pos(), "context.%s() in a request path — thread a caller-provided context (fresh roots belong in constructors, main or init)", fn.Name())
					}
					return true
				})
			}
		}
	}
}

// receivesContext reports whether the function is handed a context:
// a context.Context parameter, or an *http.Request (whose Context()
// is the request context).
func receivesContext(pkg *Package, fd *ast.FuncDecl) bool {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isNamedType(params.At(i).Type(), "context", "Context") ||
			isNamedType(params.At(i).Type(), "net/http", "Request") {
			return true
		}
	}
	return false
}

// isFreshRootScope reports the functions allowed to create root
// contexts: constructors, main and init.
func isFreshRootScope(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		name == "main" || name == "init"
}

// isNamedType reports whether t (after deref) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
