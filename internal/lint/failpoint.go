package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FailpointName enforces the failpoint registry conventions of
// DESIGN.md §8: every name a faultinject call site carries follows
// <pkg>.<site>.<effect> (optionally suffixed with scope labels such as
// the algorithm name), the <pkg> component equals the package of the
// Hit site that defines the failpoint, and every failpoint armed or
// queried — from tests or from orchestration code such as a chaos
// driver — is actually hit somewhere in non-test code (otherwise the
// scenario is vacuous — it passes while exercising nothing). The
// package-match rule binds only definition (Hit) sites: arming a
// failpoint from another package is the normal chaos-orchestration
// shape, and the liveness check already pins the name to a real site.
//
// Names are resolved through one level of dataflow: direct string
// literals, typed constants, and consts/vars/struct fields whose
// initializers carry a literal or a literal prefix ("server.checkout.fail."
// + alg). Unresolvable names (built at runtime from non-literal parts)
// are skipped, not guessed at. The registry's own package is exempt —
// its unit tests exercise the mechanism with scheme-free names.
var FailpointName = &Analyzer{
	Name: "failpoint-name",
	Doc:  "faultinject names follow <pkg>.<site>.<effect> and are armed against live sites",
	Run:  runFailpointName,
}

// failpointFuncs maps registry function names to whether their first
// argument names a failpoint.
var failpointFuncs = map[string]bool{
	"Hit": true, "Arm": true, "ArmRange": true, "ArmSeeded": true,
	"Disarm": true, "Hits": true, "Fired": true,
}

var failpointComponentRE = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)

// fpName is one resolved failpoint name or name prefix.
type fpName struct {
	s     string
	exact bool // false when s is only the compile-time prefix
	pos   token.Pos
}

// overlaps reports whether two (possibly prefix) names can refer to the
// same failpoint.
func (a fpName) overlaps(b fpName) bool {
	if a.exact && b.exact {
		return a.s == b.s
	}
	return strings.HasPrefix(a.s, b.s) || strings.HasPrefix(b.s, a.s)
}

func runFailpointName(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	var hits []fpName // names hit in non-test code, module-wide
	var refs []fpName // names armed or queried anywhere (tests + orchestration)
	validated := map[token.Pos]bool{}

	// validate checks the naming scheme; defines additionally binds the
	// <pkg> component to the enclosing package (Hit sites only — arming
	// another package's failpoint is legitimate chaos orchestration).
	validate := func(n fpName, enclosingPkg string, defines bool) {
		if validated[n.pos] {
			return
		}
		validated[n.pos] = true
		name := strings.TrimSuffix(n.s, ".")
		comps := strings.Split(name, ".")
		if n.exact && len(comps) < 3 {
			report(n.pos, "failpoint name %q does not follow <pkg>.<site>.<effect> (DESIGN.md §8)", n.s)
			return
		}
		for _, c := range comps {
			if !failpointComponentRE.MatchString(c) {
				report(n.pos, "failpoint name %q has malformed component %q (want lowercase [a-z0-9_-], DESIGN.md §8)", n.s, c)
				return
			}
		}
		if defines && comps[0] != enclosingPkg {
			report(n.pos, "failpoint name %q claims package %q but lives in package %q — the <pkg> component must match the enclosing package", n.s, comps[0], enclosingPkg)
		}
	}

	for _, pkg := range m.Packages {
		if pkg.ImportPath == cfg.FaultinjectPath {
			continue
		}
		inits := collectStringInits(pkg)

		// resolve maps a call argument to its compile-time name/prefix.
		resolve := func(arg ast.Expr) (fpName, bool) {
			if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				return fpName{s: constant.StringVal(tv.Value), exact: true, pos: arg.Pos()}, true
			}
			if s, exact, ok := literalPrefix(arg); ok {
				return fpName{s: s, exact: exact, pos: arg.Pos()}, true
			}
			if obj := exprObject(pkg.Info, arg); obj != nil {
				if init, ok := inits[obj]; ok {
					return init, true
				}
			}
			return fpName{}, false
		}

		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != cfg.FaultinjectPath ||
					!failpointFuncs[fn.Name()] || len(call.Args) == 0 {
					return true
				}
				name, ok := resolve(call.Args[0])
				if !ok {
					return true
				}
				defines := fn.Name() == "Hit"
				validate(name, pkg.Name, defines)
				if defines {
					hits = append(hits, name)
				} else {
					refs = append(refs, name)
				}
				return true
			})
		}

		// Test files: syntactic scan (no type information).
		for _, f := range pkg.TestFiles {
			local, imported := importLocalName(f, cfg.FaultinjectPath)
			if !imported {
				continue
			}
			enclosing := strings.TrimSuffix(f.Name.Name, "_test")
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || id.Name != local || !failpointFuncs[sel.Sel.Name] || len(call.Args) == 0 {
					return true
				}
				name, ok := resolveTestArg(m, pkg, f, call.Args[0])
				if !ok {
					return true
				}
				validate(name, enclosing, false)
				refs = append(refs, name)
				return true
			})
		}
	}

	// Dead failpoints: armed or queried somewhere, hit nowhere in
	// non-test code.
	reported := map[string]bool{}
	for _, ref := range refs {
		live := false
		for _, h := range hits {
			if ref.overlaps(h) {
				live = true
				break
			}
		}
		if !live && !reported[ref.s] {
			reported[ref.s] = true
			report(ref.pos, "failpoint %q is armed or queried but no non-test code hits it — the scenario is vacuous (dead failpoint)", ref.s)
		}
	}
}

// exprObject resolves an identifier or field selector to its object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// collectStringInits maps every object in the package (const, var,
// struct field) to the string literal or literal prefix its
// initializers assign — the one level of dataflow failpoint resolution
// needs for patterns like
//
//	p := &pool{fpCheckout: "server.checkout.fail." + alg}
func collectStringInits(pkg *Package) map[types.Object]fpName {
	inits := map[types.Object]fpName{}
	record := func(obj types.Object, rhs ast.Expr) {
		if obj == nil {
			return
		}
		if s, exact, ok := literalPrefix(rhs); ok {
			if _, dup := inits[obj]; !dup {
				inits[obj] = fpName{s: s, exact: exact, pos: rhs.Pos()}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						record(pkg.Info.Defs[name], x.Values[i])
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						obj := pkg.Info.Defs[id]
						if obj == nil {
							obj = pkg.Info.Uses[id]
						}
						record(obj, x.Rhs[i])
					} else if obj := exprObject(pkg.Info, lhs); obj != nil {
						record(obj, x.Rhs[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						record(pkg.Info.Uses[key], kv.Value)
					}
				}
			}
			return true
		})
	}
	return inits
}

// resolveTestArg resolves a failpoint name in an untyped test file:
// literals and literal prefixes directly; identifiers via same-file
// assignments, then via package-scope constants of the package under
// test; pkg.Const selectors via the loaded module.
func resolveTestArg(m *Module, pkg *Package, f *ast.File, arg ast.Expr) (fpName, bool) {
	if s, exact, ok := literalPrefix(arg); ok {
		return fpName{s: s, exact: exact, pos: arg.Pos()}, true
	}
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if n, ok := fileAssignedString(f, x.Name); ok {
			return n, true
		}
		if c, ok := scopeConstString(pkg.Types, x.Name); ok {
			return fpName{s: c, exact: true, pos: x.Pos()}, true
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			for _, imp := range f.Imports {
				path, _ := stringLit(imp.Path)
				if localNameOf(imp, path) != base.Name {
					continue
				}
				if dep := m.Lookup(path); dep != nil {
					if c, ok := scopeConstString(dep.Types, x.Sel.Name); ok {
						return fpName{s: c, exact: true, pos: x.Pos()}, true
					}
				}
			}
		}
	}
	return fpName{}, false
}

// fileAssignedString finds `name := <literal...>` in the file.
func fileAssignedString(f *ast.File, name string) (fpName, bool) {
	var out fpName
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != name || i >= len(as.Rhs) {
				continue
			}
			if s, exact, ok := literalPrefix(as.Rhs[i]); ok {
				out = fpName{s: s, exact: exact, pos: as.Rhs[i].Pos()}
				found = true
				return false
			}
		}
		return true
	})
	return out, found
}

// scopeConstString looks a string constant up in a package scope.
func scopeConstString(tpkg *types.Package, name string) (string, bool) {
	if tpkg == nil {
		return "", false
	}
	c, ok := tpkg.Scope().Lookup(name).(*types.Const)
	if !ok || c.Val() == nil || c.Val().Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(c.Val()), true
}

// importLocalName reports the name a file refers to an imported package
// by ("" and false when the file does not import it).
func importLocalName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, ok := stringLit(imp.Path)
		if !ok || p != path {
			continue
		}
		return localNameOf(imp, p), true
	}
	return "", false
}

// localNameOf is the identifier an import is used under.
func localNameOf(imp *ast.ImportSpec, path string) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
