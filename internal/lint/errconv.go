package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// ErrorConventions keeps the module's error plumbing wrap-transparent:
// Err* sentinels are matched with errors.Is (identity comparison breaks
// the moment anyone wraps), and fmt.Errorf formats error values with %w
// so callers can keep unwrapping. Non-test code is checked with type
// information; test files get a syntactic pass for the same == / !=
// pattern against Err*-named identifiers.
var ErrorConventions = &Analyzer{
	Name: "error-conventions",
	Doc:  "Err* sentinels are compared with errors.Is and wrapped via %w",
	Run:  runErrorConventions,
}

var sentinelNameRE = regexp.MustCompile(`^Err[A-Z0-9]`)

func runErrorConventions(m *Module, _ *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					checkTypedComparison(pkg, x, report)
				case *ast.CallExpr:
					checkErrorfWrap(pkg, x, report)
				}
				return true
			})
		}
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				name, ok := sentinelName(be.X)
				if !ok {
					name, ok = sentinelName(be.Y)
				}
				if ok && !isNilIdent(be.X) && !isNilIdent(be.Y) {
					report(be.Pos(), "sentinel %s compared with %s — use errors.Is, which survives wrapping", name, be.Op)
				}
				return true
			})
		}
	}
}

// checkTypedComparison flags == / != where one operand is an
// error-typed Err* sentinel and the other is not nil.
func checkTypedComparison(pkg *Package, be *ast.BinaryExpr, report func(token.Pos, string, ...any)) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	isSentinel := func(e ast.Expr) (string, bool) {
		obj := exprObject(pkg.Info, e)
		if obj == nil || !sentinelNameRE.MatchString(obj.Name()) {
			return "", false
		}
		if !implementsError(obj.Type()) {
			return "", false
		}
		return obj.Name(), true
	}
	exprIsNil := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.IsNil()
	}
	name, ok := isSentinel(be.X)
	if !ok {
		name, ok = isSentinel(be.Y)
	}
	if ok && !exprIsNil(be.X) && !exprIsNil(be.Y) {
		report(be.Pos(), "sentinel %s compared with %s — use errors.Is, which survives wrapping", name, be.Op)
	}
}

// checkErrorfWrap flags fmt.Errorf calls whose error-typed arguments are
// formatted with a non-%w verb: the chain breaks and errors.Is against
// the cause stops working.
func checkErrorfWrap(pkg *Package, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := stringLit(call.Args[0])
	if !ok {
		return
	}
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed arguments etc.: too clever to check, bail
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb == 'w' || verb == '*' {
			continue
		}
		tv, ok := pkg.Info.Types[args[i]]
		if ok && implementsError(tv.Type) && !tv.IsNil() {
			report(args[i].Pos(), "error value formatted with %%%c — use %%w so the cause stays unwrappable with errors.Is", verb)
		}
	}
}

// parseVerbs returns one byte per argument fmt.Errorf will consume, in
// order: the verb character, or '*' for a width/precision consumed by
// a star. Returns ok=false for indexed arguments (%[n]d).
func parseVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision — a '*' in either consumes an arg.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0.", c) >= 0 || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// sentinelName matches an identifier or selector whose final name looks
// like an exported sentinel (ErrFoo) — the syntactic stand-in for the
// typed check in test files.
func sentinelName(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if sentinelNameRE.MatchString(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if sentinelNameRE.MatchString(x.Sel.Name) {
			return x.Sel.Name, true
		}
	}
	return "", false
}

// isNilIdent reports a bare nil literal, syntactically.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
