package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture module is loaded once per test binary: the handler and
// retry fixtures pull net/http through the source importer, which is
// too slow to repeat per test. Analyzers never mutate the module.
var (
	fixtureOnce sync.Once
	fixtureMod  *Module
	fixtureErr  error
)

// loadFixture loads the fixture module under testdata with the real
// repo registered as a second root, so fixture packages can import the
// production faultinject and metrics registries.
func loadFixture(t *testing.T) (*Module, *Config) {
	t.Helper()
	fixtureOnce.Do(func() {
		repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureMod, fixtureErr = Load("fixture", map[string]string{
			"fixture": filepath.Join("testdata", "src", "fixture"),
			"repro":   repoRoot,
		})
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	m := fixtureMod
	cfg := DefaultConfig("repro")
	cfg.DatapathPackages = []string{"fixture/determ"}
	cfg.GoroutinePackages = []string{"fixture/gohyg"}
	cfg.ZeroCopyPackages = []string{"fixture/chunkalias"}
	cfg.ImmutableTypes = []string{"fixture/ringimm.Ring"}
	cfg.ContextPackages = []string{"fixture/ctxprop"}
	cfg.HandlerPackages = []string{"fixture/handlerhyg"}
	cfg.RetryPackages = []string{"fixture/retry"}
	return m, cfg
}

// want is one assertion parsed from a `// want "re"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantLineRE = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

// collectWants scans every fixture source file for want comments. A
// want comment sharing its line with code asserts about that line; a
// want comment alone on its line asserts about the line below (needed
// for directive-related findings, where the directive comment itself
// runs to end of line).
func collectWants(t *testing.T, m *Module) []*want {
	t.Helper()
	var wants []*want
	seen := map[string]bool{}
	for _, pkg := range m.Packages {
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		for _, f := range files {
			name := m.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				mm := wantLineRE.FindStringSubmatchIndex(line)
				if mm == nil {
					continue
				}
				target := i + 1 // 1-based line of this comment
				if strings.TrimSpace(line[:mm[0]]) == "" {
					target++ // standalone want comment: asserts about the next line
				}
				for _, pat := range splitWantPatterns(line[mm[2]:mm[3]]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
					}
					wants = append(wants, &want{file: name, line: target, re: re})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns splits `"re1" "re2"` and backquoted patterns.
func splitWantPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			if u, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, u)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}

// TestGoldenFixtures runs the full analyzer suite over the fixture
// module and matches every diagnostic against the `// want` assertions
// embedded in the fixture sources — both directions: no unexpected
// findings, no unmet expectations.
func TestGoldenFixtures(t *testing.T) {
	m, cfg := loadFixture(t)
	diags := Run(m, cfg, Analyzers)
	wants := collectWants(t, m)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.String()) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d: %s", relToWD(d.Pos.Filename), d.Pos.Line, d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", relToWD(w.file), w.line, w.re)
		}
	}
}

func relToWD(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if r, err := filepath.Rel(wd, name); err == nil {
		return r
	}
	return name
}

// TestEachAnalyzerFires pins that every analyzer in the suite produces
// at least one finding on the fixture module — a new analyzer merged
// without fixture coverage fails here, not silently.
func TestEachAnalyzerFires(t *testing.T) {
	m, cfg := loadFixture(t)
	for _, a := range Analyzers {
		diags := Run(m, cfg, []*Analyzer{a})
		fired := false
		for _, d := range diags {
			if d.Rule == a.Name {
				fired = true
				break
			}
		}
		if !fired {
			t.Errorf("analyzer %s produced no findings on the fixture module", a.Name)
		}
	}
}

// TestSuppressionIsAudited pins the directive failure modes: three
// malformed variants (no rule, unknown rule, no reason) plus one unused
// directive, all surfaced as lint-ignore findings.
func TestSuppressionIsAudited(t *testing.T) {
	m, cfg := loadFixture(t)
	diags := Run(m, cfg, Analyzers)
	counts := map[string]int{}
	for _, d := range diags {
		if d.Rule == "lint-ignore" {
			counts[d.Message]++
		}
	}
	if len(counts) != 4 {
		t.Errorf("want 4 distinct lint-ignore findings (3 malformed + 1 unused), got %d: %v", len(counts), counts)
	}
}

func TestLoadBrokenModule(t *testing.T) {
	_, err := Load("broken", map[string]string{"broken": filepath.Join("testdata", "src", "broken")})
	if err == nil {
		t.Fatal("loading a package with type errors succeeded")
	}
	if !strings.Contains(err.Error(), "type-checking") || !strings.Contains(err.Error(), "undefinedIdentifier") {
		t.Errorf("error %q does not name the type-check failure", err)
	}
}

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "repro" {
		t.Errorf("module path = %q, want repro", path)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("returned root %s has no go.mod: %v", root, err)
	}
	if _, _, err := FindModule(t.TempDir()); err == nil {
		t.Error("FindModule outside any module succeeded")
	}
}

// TestRepoIsClean runs the production configuration over this
// repository — the same gate as `make lint`. Loading the whole module
// through the source importer takes a few seconds, so -short skips it
// (the race and nofaultinject CI jobs run -short; the coverage job runs
// the full suite).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint load is slow; skipped in -short")
	}
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(path, map[string]string{path: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Packages) < 10 {
		t.Errorf("loaded only %d packages — the module walk looks broken", len(m.Packages))
	}
	for _, d := range Run(m, DefaultConfig(path), Analyzers) {
		t.Errorf("%s:%d: %s", d.Pos.Filename, d.Pos.Line, d)
	}
}
