package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the datapath's bit-for-bit reproducibility
// contract: the packages that produce the canonical BSRNG byte stream
// must not read wall clocks, environment variables or math/rand, and
// must not iterate maps (Go randomizes the order, so any output
// influenced by it diverges between runs). internal/server and test
// files are exempt — only the configured datapath packages are checked.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "datapath packages must stay bit-for-bit deterministic",
	Run:  runDeterminism,
}

// bannedDatapathCalls maps package path -> function names whose results
// depend on ambient state.
var bannedDatapathCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment lookup",
		"LookupEnv": "environment lookup",
		"Environ":   "environment lookup",
	},
}

// bannedDatapathImports are packages whose every use is nondeterministic
// by design.
var bannedDatapathImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runDeterminism(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		if !matchesAny(cfg.DatapathPackages, pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				if path, ok := stringLit(imp.Path); ok && bannedDatapathImports[path] {
					report(imp.Pos(), "import of %s in datapath package %s: its output is nondeterministic, which breaks the bit-for-bit stream contract", path, pkg.Name)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					fn := calleeFunc(pkg.Info, x)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					if effects, ok := bannedDatapathCalls[fn.Pkg().Path()]; ok {
						if what, ok := effects[fn.Name()]; ok {
							report(x.Pos(), "%s %s.%s in datapath package %s: the canonical stream must not depend on ambient state", what, fn.Pkg().Name(), fn.Name(), pkg.Name)
						}
					}
				case *ast.RangeStmt:
					if tv, ok := pkg.Info.Types[x.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							report(x.Pos(), "map iteration in datapath package %s: Go randomizes the order, so any output derived from it is nondeterministic", pkg.Name)
						}
					}
				}
				return true
			})
		}
	}
}
