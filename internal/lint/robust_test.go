package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestLoadSyntaxError pins the loader-failure path the new analyzers
// sit behind: a module that does not even parse reports the parse
// error instead of panicking or half-loading. The fixture is committed
// as bad.go.src (an unparseable .go would trip the repo's gofmt gate)
// and materialized as Go source here.
func TestLoadSyntaxError(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "badsyntax", "bad.go.src"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load("badsyntax", map[string]string{"badsyntax": dir})
	if err == nil {
		t.Fatal("loading a package with a syntax error succeeded")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error %q does not name the unparseable file", err)
	}
}

// TestMissingConfigTargets pins that the target-anchored analyzers
// tolerate configuration naming packages or types that are not in the
// loaded module: they must go quiet, not panic — the production
// DefaultConfig is applied verbatim to fixture trees and to forks that
// renamed packages.
func TestMissingConfigTargets(t *testing.T) {
	m, _ := loadFixture(t)
	cfg := &Config{
		MetricNamePattern: regexp.MustCompile(`^x$`),
		ZeroCopyPackages:  []string{"nosuch/pkg"},
		ImmutableTypes:    []string{"nosuch/pkg.Ring", "fixture/ringimm.NoSuchType", "malformed-no-dot"},
		ContextPackages:   []string{"nosuch/pkg"},
		HandlerPackages:   []string{"nosuch/pkg"},
		RetryPackages:     []string{"nosuch/pkg"},
	}
	for _, a := range []*Analyzer{ChunkAliasing, RingImmutability, ContextPropagation, HandlerHygiene, BoundedRetry} {
		for _, d := range Run(m, cfg, []*Analyzer{a}) {
			if d.Rule == a.Name {
				t.Errorf("%s fired with config targets missing from the module: %s", a.Name, d)
			}
		}
	}
}
