package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// HandlerHygiene enforces the response-writing discipline on every
// HTTP handler and response-writing helper in the configured packages
// (DESIGN.md §7): the status line is written at most once per path,
// nothing is written after a failure status helper (the error body is
// the last thing a failing handler sends, followed by return), and raw
// failure statuses carry a body produced by the error convention — the
// http.Error text body or the JSON error document (an Encode call in
// the same function, the /healthz convention).
//
// Paths are approximated by statement lists: two status writes in one
// list with no return/branch between them is a double header no matter
// what the conditions around them say; writes in sibling branches are
// distinct paths and legal.
var HandlerHygiene = &Analyzer{
	Name: "handler-hygiene",
	Doc:  "one WriteHeader per path, no writes after a failure status, errors use the error-body convention",
	Run:  runHandlerHygiene,
}

// rwFacts classifies a response-writing helper: does it (transitively)
// write a status, and is that status a failure (http.Error or a
// constant >= 400)?
type rwFacts struct {
	status  bool
	failure bool
}

func runHandlerHygiene(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		if !matchesAny(cfg.HandlerPackages, pkg.ImportPath) {
			continue
		}
		decls := map[*types.Func]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						decls[fn] = fd
					}
				}
			}
		}
		facts := statusWriterFacts(pkg, decls)
		for fn, fd := range decls {
			if hasResponseWriterParam(fn.Type().(*types.Signature)) {
				checkResponseFunc(pkg, fd.Body, facts, report)
			}
		}
		// Handlers built as closures (the router's proxy handler) are
		// response-writing functions too.
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if tv, ok := pkg.Info.Types[lit]; ok {
					if sig, ok := tv.Type.(*types.Signature); ok && hasResponseWriterParam(sig) {
						checkResponseFunc(pkg, lit.Body, facts, report)
					}
				}
				return true
			})
		}
	}
}

// statusWriterFacts computes, to a fixpoint, which package functions
// with an http.ResponseWriter parameter write a response status
// (directly or through same-package helpers), and which of those write
// a failure status.
func statusWriterFacts(pkg *Package, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]*rwFacts {
	facts := map[*types.Func]*rwFacts{}
	for fn := range decls {
		if hasResponseWriterParam(fn.Type().(*types.Signature)) {
			facts[fn] = &rwFacts{}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, f := range facts {
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				merge := func(status, failure bool) {
					if status && !f.status {
						f.status, changed = true, true
					}
					if failure && !f.failure {
						f.failure, changed = true, true
					}
				}
				callee := calleeFunc(pkg.Info, call)
				switch {
				case isWriteHeaderCall(pkg.Info, call):
					code := constStatusArg(pkg.Info, call.Args)
					merge(true, code >= 400)
				case callee != nil && callee.FullName() == "net/http.Error":
					merge(true, true)
				case callee != nil:
					if h, ok := facts[callee]; ok {
						merge(h.status, h.failure)
					}
				}
				return true
			})
		}
	}
	return facts
}

// statusStmt is one top-of-list statement that writes a response status.
type statusStmt struct {
	pos     token.Pos
	name    string
	failure bool // http.Error or a failure helper: must be final + return
	raw     bool // a direct WriteHeader call
	code    int  // constant status, -1 unknown
}

// checkResponseFunc applies the three per-path rules to one function
// body. Nested function literals are separate response paths and are
// checked on their own (when they take a ResponseWriter).
func checkResponseFunc(pkg *Package, body *ast.BlockStmt, facts map[*types.Func]*rwFacts, report func(token.Pos, string, ...any)) {
	hasEncode := containsEncodeCall(pkg, body)
	var walkList func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkList = func(stmts []ast.Stmt) {
		var prev *statusStmt
		for _, s := range stmts {
			switch s.(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				prev = nil
				continue
			}
			if st := classifyStatusStmt(pkg, s, facts); st != nil {
				if prev != nil {
					report(st.pos, "%s writes a second response status on this path — WriteHeader must be reached at most once", st.name)
				}
				if st.raw && st.code >= 400 && !hasEncode {
					report(st.pos, "raw WriteHeader(%d) without an error body — use http.Error or the JSON error-document convention", st.code)
				}
				prev = st
				continue
			}
			if prev != nil && prev.failure {
				report(s.Pos(), "handler keeps writing after %s set a failure status — send the error body and return", prev.name)
				prev.failure = false // one report per failure site
			}
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				walkList(x.List)
				return false
			case *ast.CaseClause:
				walkList(x.Body)
				return false
			case *ast.CommClause:
				walkList(x.Body)
				return false
			}
			return true
		})
	}
	walkList(body.List)
}

// classifyStatusStmt recognizes a statement that writes the response
// status: a WriteHeader call, http.Error, or a same-package helper the
// facts map knows writes a status.
func classifyStatusStmt(pkg *Package, s ast.Stmt, facts map[*types.Func]*rwFacts) *statusStmt {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if isWriteHeaderCall(pkg.Info, call) {
		return &statusStmt{pos: call.Pos(), name: "WriteHeader", raw: true,
			code: constStatusArg(pkg.Info, call.Args)}
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if fn.FullName() == "net/http.Error" {
		return &statusStmt{pos: call.Pos(), name: "http.Error", failure: true,
			code: constStatusArg(pkg.Info, call.Args)}
	}
	if f, ok := facts[fn]; ok && f.status {
		return &statusStmt{pos: call.Pos(), name: fn.Name(), failure: f.failure, code: -1}
	}
	return nil
}

// isWriteHeaderCall matches a method call named WriteHeader with one
// argument — the http.ResponseWriter status write (wrapped response
// writers keep the name, so the match is nominal on purpose).
func isWriteHeaderCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Type().(*types.Signature).Recv() != nil
}

// constStatusArg extracts the first constant int argument that looks
// like an HTTP status code; -1 when none is constant.
func constStatusArg(info *types.Info, args []ast.Expr) int {
	for _, a := range args {
		if tv, ok := info.Types[a]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, ok := constant.Int64Val(tv.Value); ok && v >= 100 && v <= 599 {
				return int(v)
			}
		}
	}
	return -1
}

// containsEncodeCall reports whether the body calls a method named
// Encode — the JSON error-document convention (enc.Encode(doc) after a
// WriteHeader, as /healthz does).
func containsEncodeCall(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Encode" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasResponseWriterParam reports whether the signature takes an
// http.ResponseWriter.
func hasResponseWriterParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isNamedType(params.At(i).Type(), "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}
