package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// MetricName pins the observability contract: every metric registered
// through internal/metrics carries a stable, literal `bsrngd_*` name
// that is unique across the module, and labeled metrics declare their
// label sets as constant literals. Dashboards and the verify harness
// grep these names; a drifting or duplicated name silently blanks a
// panel instead of failing a build — unless this analyzer fails it
// first.
var MetricName = &Analyzer{
	Name: "metric-name",
	Doc:  "registered metric names match ^bsrngd_[a-z0-9_]+$, are unique, and label sets are literals",
	Run:  runMetricName,
}

// metricCtors maps Registry constructor names to whether they take a
// variadic label set after (name, help).
var metricCtors = map[string]bool{
	"NewCounter":        false,
	"NewGauge":          false,
	"NewGaugeFunc":      false,
	"NewHistogram":      false,
	"NewLabeledCounter": true,
	"NewLabeledGauge":   true,
}

func runMetricName(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	type site struct {
		name string
		pos  token.Pos
		pkg  string
	}
	var sites []site

	for _, pkg := range m.Packages {
		if pkg.ImportPath == cfg.MetricsPath {
			continue // the registry's own tests register throwaway names
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != cfg.MetricsPath {
					return true
				}
				labeled, ok := metricCtors[fn.Name()]
				if !ok || len(call.Args) == 0 {
					return true
				}
				name, lit := stringLit(call.Args[0])
				if !lit {
					report(call.Args[0].Pos(), "metric name passed to %s is not a string literal — names must be grep-able constants", fn.Name())
					return true
				}
				if !cfg.MetricNamePattern.MatchString(name) {
					report(call.Args[0].Pos(), "metric name %q does not match %s", name, cfg.MetricNamePattern)
				}
				sites = append(sites, site{name: name, pos: call.Args[0].Pos(), pkg: pkg.ImportPath})
				if labeled {
					for _, arg := range call.Args[2:] {
						if _, ok := stringLit(arg); !ok {
							report(arg.Pos(), "label of metric %q is not a string literal — label sets must be constant", name)
						}
					}
				}
				return true
			})
		}
	}

	// Duplicate detection across the whole module.
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].name != sites[j].name {
			return sites[i].name < sites[j].name
		}
		return m.Fset.Position(sites[i].pos).Offset < m.Fset.Position(sites[j].pos).Offset
	})
	for i := 1; i < len(sites); i++ {
		if sites[i].name == sites[i-1].name {
			first := m.Fset.Position(sites[i-1].pos)
			report(sites[i].pos, "metric name %q is already registered at %s:%d — names must be unique across the module", sites[i].name, first.Filename, first.Line)
		}
	}
}
