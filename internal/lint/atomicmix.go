package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// AtomicMix catches the race class the -race job only finds when a test
// happens to interleave the two sides: a struct field passed to
// sync/atomic (atomic.AddUint64(&s.n, 1)) that is also read or written
// plainly somewhere else. Mixed access is a data race even when every
// individual operation looks innocent, and it defeats the memory-order
// guarantees the atomic side was added for.
//
// Composite-literal keys are deliberately exempt: initializing the field
// before any goroutine can observe it is the standard construction
// pattern. Typed atomics (atomic.Uint64 et al.) cannot mix by
// construction and are the preferred fix.
var AtomicMix = &Analyzer{
	Name: "atomic-mix",
	Doc:  "a field accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

var atomicFuncRE = regexp.MustCompile(`^(Add|Load|Store|Swap|CompareAndSwap)`)

func runAtomicMix(m *Module, _ *Config, report func(token.Pos, string, ...any)) {
	// Pass 1: every field that reaches sync/atomic as &x.f, and the
	// selector nodes that do so (those are the sanctioned accesses).
	atomicFields := map[*types.Var]token.Position{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncRE.MatchString(fn.Name()) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fv := fieldOf(pkg.Info, sel); fv != nil {
						if _, seen := atomicFields[fv]; !seen {
							atomicFields[fv] = m.Fset.Position(sel.Pos())
						}
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other selector touching one of those fields is a
	// plain access.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fv := fieldOf(pkg.Info, sel)
				if fv == nil {
					return true
				}
				if atomicPos, ok := atomicFields[fv]; ok {
					report(sel.Pos(), "field %s is accessed via sync/atomic (e.g. %s:%d) but plainly here — mixed access is a data race; use a typed atomic",
						fv.Name(), atomicPos.Filename, atomicPos.Line)
				}
				return true
			})
		}
	}
}

// fieldOf resolves a selector to the struct field it denotes, nil for
// methods, package members and non-field selections.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
