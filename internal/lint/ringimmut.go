package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// RingImmutability pins the cluster routing invariant (DESIGN.md §13):
// a consistent-hash Ring is immutable after construction — reload swaps
// a whole new Ring via an atomic pointer, it never edits one in place.
// The analyzer takes a list of qualified type names and reports every
// write to such a type's fields — or through them into backing slices
// and maps — outside the file that declares the type (the constructor
// file). One level of local aliasing is followed: a local bound to a
// field of the type is treated as a window into the same backing store.
var RingImmutability = &Analyzer{
	Name: "ring-immutability",
	Doc:  "configured types are never mutated outside their declaring file",
	Run:  runRingImmutability,
}

// immutTarget is one resolved ImmutableTypes entry.
type immutTarget struct {
	obj  *types.TypeName
	file string // declaring (constructor) file, exempt from the rule
}

func runRingImmutability(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	// Resolve the configured qualified names to type objects and their
	// declaring files. Unresolvable entries are skipped: the config may
	// name a package outside the loaded module (e.g. the production
	// default while linting a fixture tree).
	var targets []*immutTarget
	for _, qual := range cfg.ImmutableTypes {
		dot := strings.LastIndex(qual, ".")
		if dot < 0 {
			continue
		}
		pkgPath, typeName := qual[:dot], qual[dot+1:]
		for _, p := range m.Packages {
			if p.ImportPath != pkgPath {
				continue
			}
			if tn, ok := p.Types.Scope().Lookup(typeName).(*types.TypeName); ok {
				targets = append(targets, &immutTarget{obj: tn, file: m.Fset.Position(tn.Pos()).Filename})
			}
			break
		}
	}
	if len(targets) == 0 {
		return
	}
	isTarget := func(t types.Type) *immutTarget {
		named, ok := derefType(t).(*types.Named)
		if !ok {
			return nil
		}
		for _, tgt := range targets {
			if named.Obj() == tgt.obj {
				return tgt
			}
		}
		return nil
	}

	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			fname := m.Fset.Position(f.Pos()).Filename
			// One level of alias tracking per file: locals bound to a
			// field selection of a target type alias its backing store.
			aliases := map[*types.Var]*immutTarget{}
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if v := localVar(pkg.Info, id); v != nil {
						if tgt := fieldOfTarget(pkg, as.Rhs[i], isTarget); tgt != nil {
							aliases[v] = tgt
						}
					}
				}
				return true
			})
			check := func(lhs ast.Expr, pos token.Pos) {
				tgt, via := mutationTarget(pkg, lhs, isTarget, aliases)
				if tgt == nil || fname == tgt.file {
					return
				}
				name := tgt.obj.Name()
				if via != "" {
					report(pos, "%s is immutable after construction — this writes its backing store through local alias %q outside %s", name, via, filepath.Base(tgt.file))
				} else {
					report(pos, "%s is immutable after construction — build a replacement %s instead of writing to it outside %s", name, name, filepath.Base(tgt.file))
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						check(lhs, x.Pos())
					}
				case *ast.IncDecStmt:
					check(x.X, x.Pos())
				}
				return true
			})
		}
	}
}

// mutationTarget resolves an assignment target to the immutable type it
// mutates, walking down index/star/paren/selector chains. Rebinding a
// plain alias variable itself is not a mutation; writing through it
// (an element or field of it) is, reported with via naming the alias.
func mutationTarget(pkg *Package, lhs ast.Expr, isTarget func(types.Type) *immutTarget, aliases map[*types.Var]*immutTarget) (tgt *immutTarget, via string) {
	indirected := false // true once we step through an index/field/deref
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if tgt := isTarget(sel.Recv()); tgt != nil {
					return tgt, ""
				}
			}
			indirected = true
			lhs = x.X
		case *ast.IndexExpr:
			indirected = true
			lhs = x.X
		case *ast.StarExpr:
			indirected = true
			lhs = x.X
		case *ast.Ident:
			if !indirected {
				return nil, "" // plain rebinding of a local
			}
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
				if tgt := aliases[v]; tgt != nil {
					return tgt, x.Name
				}
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// fieldOfTarget reports whether the expression is rooted at a field
// selection of a target type (possibly sliced or indexed), returning
// the target it aliases.
func fieldOfTarget(pkg *Package, e ast.Expr, isTarget func(types.Type) *immutTarget) *immutTarget {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if tgt := isTarget(sel.Recv()); tgt != nil {
					return tgt
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// derefType unwraps pointers.
func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
