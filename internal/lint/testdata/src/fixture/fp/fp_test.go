package fp

import (
	"testing"

	"repro/internal/faultinject"
)

func TestCorrupt(t *testing.T) {
	faultinject.Arm(fpCorrupt, 1)
	defer faultinject.Reset()
	Work()
}

func TestScoped(t *testing.T) {
	fpName := "fp.checkout.fail." + "mickey"
	faultinject.Arm(fpName, 1)
	defer faultinject.Reset()
	newWorker("mickey").Run()
}

func TestDead(t *testing.T) {
	faultinject.Arm("fp.orphan.effect", 1) // want `dead failpoint`
	defer faultinject.Reset()
	Work()
}
