// Package fp seeds failpoint-name violations against the real
// faultinject registry.
package fp

import "repro/internal/faultinject"

const fpCorrupt = "fp.segment.corrupt"

type worker struct {
	fpCheckout string
}

func newWorker(alg string) *worker {
	return &worker{fpCheckout: "fp.checkout.fail." + alg}
}

func Work() {
	if faultinject.Hit(fpCorrupt) {
		return
	}
	if faultinject.Hit("fp.short") { // want `does not follow <pkg>.<site>.<effect>`
		return
	}
	if faultinject.Hit("other.site.effect") { // want `claims package "other" but lives in package "fp"`
		return
	}
	if faultinject.Hit("fp.Bad_Case.effect") { // want `malformed component "Bad_Case"`
		return
	}
}

func (w *worker) Run() bool {
	return faultinject.Hit(w.fpCheckout)
}
