// Package atomicmix seeds a mixed atomic/plain field access.
package atomicmix

import "sync/atomic"

type Counter struct {
	n    uint64
	safe uint64
}

// New initializes via a composite literal — the sanctioned construction
// pattern, exempt from the rule.
func New() *Counter {
	return &Counter{n: 0, safe: 0}
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.safe, 1)
}

func (c *Counter) Peek() uint64 {
	return c.n // want `field n is accessed via sync/atomic .* but plainly here`
}

func (c *Counter) Load() uint64 {
	return atomic.LoadUint64(&c.safe)
}
