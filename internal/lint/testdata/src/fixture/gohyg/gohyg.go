// Package gohyg seeds goroutine-hygiene violations; the golden test
// configures it as a goroutine-checked package.
package gohyg

import "time"

type Worker struct {
	stop chan struct{}
	work chan int
}

func (w *Worker) Start() {
	go w.loop()
	go func() { // want `goroutine body never receives from a channel`
		for {
			time.Sleep(time.Millisecond)
		}
	}()
	go leak() // want `goroutine runs leak, which never receives from a channel`
}

func (w *Worker) Drain() {
	go w.consume()
}

func Nap() {
	go time.Sleep(time.Millisecond) // want `outside this package`
}

func (w *Worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		case v := <-w.work:
			_ = v
		}
	}
}

func (w *Worker) consume() {
	for range w.work {
	}
}

func leak() {}
