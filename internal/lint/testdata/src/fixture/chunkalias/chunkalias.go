// Package chunkalias exercises the chunk-aliasing analyzer: slices
// obtained from NextChunk and Write(p) arguments are live only for the
// handoff and must not be retained.
package chunkalias

type stream struct{}

func (s *stream) NextChunk() ([]byte, error) { return nil, nil }
func (s *stream) Recycle(c []byte)           {}

type holder struct {
	held  []byte
	slots [4][]byte
}

var global []byte
var sink = make(chan []byte, 1)

func retains(s *stream, h *holder) {
	c, err := s.NextChunk()
	if err != nil {
		return
	}
	h.held = c     // want `\[chunk-aliasing\] a NextChunk slice is stored to field held`
	h.slots[0] = c // want `\[chunk-aliasing\] a NextChunk slice is stored to field slots`
	global = c     // want `\[chunk-aliasing\] a NextChunk slice is stored to package-level variable global`
	sink <- c      // want `\[chunk-aliasing\] a NextChunk slice is sent on a channel`
	go leak(c)     // want `\[chunk-aliasing\] a NextChunk slice is captured by a goroutine`
	s.Recycle(c)
}

func leak(c []byte) { _ = c }

func retainsViaAlias(s *stream) {
	c, _ := s.NextChunk()
	d := c[8:]
	global = d // want `\[chunk-aliasing\] a NextChunk slice is stored to package-level variable global`
	s.Recycle(c)
}

// clean uses the chunk strictly within the handoff window: reslicing,
// copying out, and passing it onward are all fine.
func clean(s *stream, h *holder) {
	c, err := s.NextChunk()
	if err != nil {
		return
	}
	c = c[1:]
	consume(c)
	h.held = append([]byte(nil), c...)
	s.Recycle(c)
}

func consume(c []byte) {}

type badWriter struct {
	last []byte
}

func (w *badWriter) Write(p []byte) (int, error) {
	w.last = p // want `\[chunk-aliasing\] the Write argument p is stored to field last`
	return len(p), nil
}

type goodWriter struct {
	n int
}

func (w *goodWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
