// Package retry exercises the bounded-retry analyzer: condition-less
// loops must not initiate network I/O unless each iteration is gated
// by a select.
package retry

import (
	"net"
	"net/http"
)

// forever hammers a peer with no bound at all.
func forever(c *http.Client) {
	for { // want `\[bounded-retry\] unbounded for loop initiates network I/O`
		c.Get("http://peer/bytes")
	}
}

// viaHelper hides the request in a same-package helper — still found.
func viaHelper(c *http.Client) {
	for { // want `\[bounded-retry\] unbounded for loop initiates network I/O`
		fetch(c)
	}
}

func fetch(c *http.Client) {
	c.Get("http://peer/bytes")
}

// redial loops on Dial with no budget.
func redial() {
	for { // want `\[bounded-retry\] unbounded for loop initiates network I/O`
		net.Dial("tcp", "peer:9")
	}
}

// budgeted is the sanctioned retry shape: the loop condition is the
// retry budget / candidate walk.
func budgeted(c *http.Client, attempts int) {
	for i := 0; i < attempts; i++ {
		c.Get("http://peer/bytes")
	}
}

// probeLoop is the sanctioned long-lived shape: every iteration gates
// on a select over the stop channel.
func probeLoop(c *http.Client, stop, tick chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-tick:
			c.Get("http://peer/bytes")
		}
	}
}

// relayLoop reads from an open stream — not a network initiator, so a
// condition-less copy loop is fine.
func relayLoop(conn net.Conn, buf []byte) {
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}
