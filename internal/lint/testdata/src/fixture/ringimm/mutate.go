package ringimm

// rebalance mutates a Ring in place outside the constructor file —
// every write here is a finding.
func rebalance(r *Ring) {
	r.window = 128      // want `\[ring-immutability\] Ring is immutable after construction`
	r.window++          // want `\[ring-immutability\] Ring is immutable after construction`
	r.nodes[0] = Node{} // want `\[ring-immutability\] Ring is immutable after construction`
	r.points["x"] = 1   // want `\[ring-immutability\] Ring is immutable after construction`
}

// aliasWrite mutates the backing array through a local alias of a Ring
// field — still a write to the Ring's backing store.
func aliasWrite(r *Ring) {
	pts := r.nodes
	pts[1] = Node{Name: "y"} // want `\[ring-immutability\] Ring is immutable after construction — this writes its backing store through local alias "pts"`
}

// replace builds a new Ring instead of editing one — the sanctioned
// mutate-by-replace pattern, no findings.
func replace(r *Ring) *Ring {
	nodes := r.Nodes()
	nodes = append(nodes, Node{Name: "z"})
	return New(nodes)
}
