// Package ringimm exercises the ring-immutability analyzer: the Ring
// type may only be written inside this file (its declaring/constructor
// file); every other file must build a replacement instead.
package ringimm

type Node struct {
	Name string
}

type Ring struct {
	nodes  []Node
	points map[string]int
	window uint64
}

// New is the constructor: writes in the declaring file are legal.
func New(nodes []Node) *Ring {
	r := &Ring{points: map[string]int{}}
	r.nodes = append(r.nodes, nodes...)
	r.window = 64
	for i, n := range nodes {
		r.points[n.Name] = i
	}
	return r
}

// Nodes returns a defensive copy, the only sanctioned way out.
func (r *Ring) Nodes() []Node {
	out := make([]Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}
