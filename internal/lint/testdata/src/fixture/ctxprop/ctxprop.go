// Package ctxprop exercises the context-propagation analyzer: request
// paths must thread the caller's context; fresh context roots belong in
// constructors, main and init only.
package ctxprop

import (
	"context"
	"time"
)

type prober struct {
	base context.Context
}

// NewProber is a constructor: rooting a fresh context here is the
// sanctioned pattern (cancelled by Close, not leaked per call).
func NewProber() *prober {
	return &prober{base: context.Background()}
}

// probeAll mirrors the router bug this rule caught: a background
// helper rooting its own context instead of deriving from the one its
// owner carries — unkillable by Shutdown.
func (p *prober) probeAll(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout) // want `\[context-propagation\] context.Background\(\) in a request path`
	defer cancel()
	_ = ctx
}

// probeOne does it right: derive from the owner's base context.
func (p *prober) probeOne(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(p.base, timeout)
	defer cancel()
	_ = ctx
}

// forward receives a context and drops it on the floor — the stricter
// message fires because the caller's context was right there.
func forward(ctx context.Context) {
	use(context.TODO()) // want `\[context-propagation\] context.TODO\(\) inside a function that already receives a context`
	use(ctx)
}

func use(ctx context.Context) { _ = ctx }
