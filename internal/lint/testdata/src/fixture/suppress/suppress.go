// Package suppress exercises the //bsrng:lint-ignore directive: a used
// suppression (silent), plus the malformed and unused variants, which
// are findings in their own right.
package suppress

import (
	"errors"
	"fmt"
)

var ErrQuiet = errors.New("quiet")

// Quiet's finding is suppressed with a reason — no diagnostic escapes.
func Quiet(err error) error {
	//bsrng:lint-ignore error-conventions fixture: the cause is intentionally opaque here
	return fmt.Errorf("opaque: %v", err)
}

// want `malformed suppression: missing rule and reason`
//bsrng:lint-ignore

// want `malformed suppression: unknown rule "nosuchrule"`
//bsrng:lint-ignore nosuchrule some reason

// want `malformed suppression: missing reason`
//bsrng:lint-ignore error-conventions

//bsrng:lint-ignore error-conventions nothing on this line needs it // want `unused suppression for rule "error-conventions"`
