// Package determ seeds deliberate determinism violations; the golden
// test configures it as a datapath package.
package determ

import (
	"math/rand" // want `import of math/rand in datapath package determ`
	"os"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock read time.Now in datapath package determ`
}

func Env() string {
	return os.Getenv("HOME") // want `environment lookup os.Getenv in datapath package determ`
}

func Roll() int { return rand.Intn(6) }

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration in datapath package determ`
		total += v
	}
	return total
}

func Allowed() time.Duration {
	//bsrng:lint-ignore determinism fixture: demonstrates a reasoned suppression on the line below
	d := time.Since(time.Time{})
	return d
}
