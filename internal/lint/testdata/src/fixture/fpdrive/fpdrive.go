// Package fpdrive is chaos-orchestration fixture: non-test code that
// arms another package's failpoints. The <pkg> component names the Hit
// site's package, not this one, so no package-match finding fires —
// but arming a name nothing hits is still a dead failpoint.
package fpdrive

import "repro/internal/faultinject"

func Drive(alg string) {
	fp := "fp.checkout.fail." + alg
	faultinject.Arm(fp, 3)
	defer faultinject.Disarm(fp)
	faultinject.ArmSeeded("fp.segment.corrupt", 7, 16)
	faultinject.ArmRange("fpdrive.orphan.effect", 1, 4) // want `dead failpoint`
}
