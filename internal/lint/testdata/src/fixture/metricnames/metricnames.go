// Package metricnames seeds metric-name violations against the real
// metrics registry.
package metricnames

import "repro/internal/metrics"

func Register(reg *metrics.Registry, dynamic string) {
	reg.NewCounter("bsrngd_good_total", "a well-named counter")
	reg.NewCounter("bad_name_total", "missing prefix")                            // want `metric name "bad_name_total" does not match`
	reg.NewGauge("bsrngd_good_total", "duplicate of the counter above")           // want `metric name "bsrngd_good_total" is already registered`
	reg.NewCounter(dynamic, "runtime-built name")                                 // want `not a string literal`
	reg.NewLabeledCounter("bsrngd_labeled_total", "labels", "alg", dynamic)       // want `label of metric "bsrngd_labeled_total" is not a string literal`
	reg.NewLabeledGauge("bsrngd_gauge_per_alg", "constant labels", "alg", "mode") // clean
}
