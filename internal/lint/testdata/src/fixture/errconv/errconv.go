// Package errconv seeds error-convention violations.
package errconv

import (
	"errors"
	"fmt"
)

var ErrBadSeed = errors.New("bad seed")

func Check(err error) bool {
	return err == ErrBadSeed // want `sentinel ErrBadSeed compared with ==`
}

func CheckNil(err error) bool {
	return ErrBadSeed != nil && err == nil
}

func Wrap(err error) error {
	return fmt.Errorf("wrapped: %v", err) // want `error value formatted with %v`
}

func WrapOK(err error) error {
	return fmt.Errorf("shard %d: %w", 3, err)
}

func WrapStarred(width int, err error) error {
	return fmt.Errorf("pad %*d cause %s", width, 7, err) // want `error value formatted with %s`
}

func Good(err error) bool {
	return errors.Is(err, ErrBadSeed)
}
