package errconv

import "testing"

func TestSentinel(t *testing.T) {
	err := Wrap(ErrBadSeed)
	if err == ErrBadSeed { // want `sentinel ErrBadSeed compared with ==`
		t.Fatal("identity match survived wrapping")
	}
}
