// Package handlerhyg exercises the handler-hygiene analyzer: one
// status write per path, nothing after a failure status, and failure
// statuses carry an error body.
package handlerhyg

import (
	"encoding/json"
	"net/http"
)

// doubleHeader writes the status twice on the same path.
func doubleHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusOK) // want `\[handler-hygiene\] WriteHeader writes a second response status on this path`
}

// writesAfterFailure keeps going after http.Error.
func writesAfterFailure(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad request", http.StatusBadRequest)
	w.Write([]byte("trailing body")) // want `\[handler-hygiene\] handler keeps writing after http.Error set a failure status`
}

// rawFailure writes a bare failure status with no error body at all.
func rawFailure(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusInternalServerError) // want `\[handler-hygiene\] raw WriteHeader\(500\) without an error body`
}

// fail is a failure helper: it transitively writes a failure status.
func fail(w http.ResponseWriter, msg string) {
	http.Error(w, msg, http.StatusBadRequest)
}

// viaHelper keeps writing after the failure helper.
func viaHelper(w http.ResponseWriter, r *http.Request) {
	fail(w, "nope")
	w.Write([]byte("trailing body")) // want `\[handler-hygiene\] handler keeps writing after fail set a failure status`
}

// clean shows the sanctioned shapes: fail-and-return on the error
// path, one status write on the success path.
func clean(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/bad" {
		fail(w, "bad path")
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok"))
}

// jsonDoc is the /healthz convention: a raw failure status is fine
// when the function encodes a JSON error document as the body.
func jsonDoc(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]string{"status": "degraded"})
}

// closureHandler pins that handlers built as closures are checked too.
func closureHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
		w.WriteHeader(http.StatusNoContent) // want `\[handler-hygiene\] WriteHeader writes a second response status on this path`
	}
}
