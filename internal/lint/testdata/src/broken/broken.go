// Package broken fails to type-check; the loader tests assert the
// error is surfaced rather than swallowed.
package broken

func Boom() int {
	return undefinedIdentifier
}
