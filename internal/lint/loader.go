// Package lint is bsrnglint's engine: a stdlib-only static-analysis
// suite (go/ast + go/parser + go/types with the source importer — no
// x/tools) that loads every package in the module and enforces the
// repo's load-bearing invariants. DESIGN.md §9 specifies each rule;
// cmd/bsrnglint is the driver.
//
// The engine deliberately re-implements the sliver of go/packages it
// needs: the repo's tier-1 gate is stdlib-only, and the loader doubles
// as the fixture harness for the golden tests (any directory tree can
// be loaded as a module, so deliberate violations live under testdata
// where the go tool never sees them).
package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Module is the unit bsrnglint analyzes: every package under one module
// root, parsed and type-checked, plus the packages' test files parsed
// syntactically (analyzers that look at tests do not need type
// information).
type Module struct {
	Fset *token.FileSet
	// Path is the module path, e.g. "repro".
	Path string
	// Dir is the module root directory.
	Dir string
	// Packages holds every package found under Dir, sorted by import
	// path.
	Packages []*Package

	loader *loader
}

// Package is one loaded package: type-checked non-test syntax plus
// parsed (untyped) test files.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	// Files are the build-tag-filtered non-test files, type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files (internal and
	// external), parsed with comments but not type-checked.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Lookup finds a loaded (or loadable) package by import path; nil if
// the path is outside every registered root or fails to load.
func (m *Module) Lookup(path string) *Package {
	p, err := m.loader.load(path)
	if err != nil {
		return nil
	}
	return p
}

// loader resolves imports across a set of module roots, type-checking
// module packages from source and delegating the standard library to
// go/importer's source importer.
type loader struct {
	fset  *token.FileSet
	roots map[string]string // module path -> directory
	std   types.Importer
	pkgs  map[string]*Package
	stack []string // active loads, for import-cycle reporting
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.rootFor(path); ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// rootFor maps an import path to the registered module root owning it.
func (l *loader) rootFor(path string) (dir string, ok bool) {
	for mod, root := range l.roots {
		if path == mod {
			return root, true
		}
		if strings.HasPrefix(path, mod+"/") {
			return filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(path, mod+"/"))), true
		}
	}
	return "", false
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s: %s", path, strings.Join(l.stack, " -> "))
		}
		return p, nil
	}
	dir, ok := l.rootFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside every registered module root", path)
	}
	l.pkgs[path] = nil // cycle marker
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(bp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...))
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}

	p := &Package{
		ImportPath: path,
		Name:       bp.Name,
		Dir:        dir,
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Load walks the module rooted at roots[mainPath], loading and
// type-checking every package found there. Additional roots let a
// loaded tree (e.g. a test fixture module) import packages of another
// on-disk module by path.
func Load(mainPath string, roots map[string]string) (*Module, error) {
	if _, ok := roots[mainPath]; !ok {
		return nil, fmt.Errorf("lint: no root registered for module %s", mainPath)
	}
	abs := make(map[string]string, len(roots))
	for mod, d := range roots {
		a, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		abs[mod] = a
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:  fset,
		roots: abs,
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  map[string]*Package{},
	}
	m := &Module{Fset: fset, Path: mainPath, Dir: abs[mainPath], loader: l}

	paths, err := packageDirs(abs[mainPath], mainPath)
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		m.Packages = append(m.Packages, pkg)
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].ImportPath < m.Packages[j].ImportPath })
	return m, nil
}

// isNoGo reports the "directory has no buildable Go files" load error,
// which the walk treats as "not a package" rather than a failure.
func isNoGo(err error) bool {
	var ng *build.NoGoError
	return errors.As(err, &ng)
}

// packageDirs enumerates candidate package import paths under root,
// skipping testdata, vendor and hidden/underscore directories.
func packageDirs(root, modPath string) ([]string, error) {
	var out []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				ip := modPath
				if rel != "." {
					ip = modPath + "/" + filepath.ToSlash(rel)
				}
				out = append(out, ip)
				break
			}
		}
		return nil
	})
	return out, err
}

var modLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// FindModule locates the enclosing module of dir by walking up to the
// nearest go.mod and returns its root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mm := modLineRE.FindSubmatch(data)
			if mm == nil {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
			}
			return d, string(mm[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
