package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedRetry bans unbounded network retry loops in the cluster layer
// (DESIGN.md §13): forwarding retries walk the ring's candidate list
// under the per-request retry budget, so every loop that initiates
// network I/O must either carry a loop condition (the budget / the
// candidate list) or gate each iteration on a select (the prober's
// stop-channel pattern). A condition-less for{} that dials or sends
// requests retries forever on a dead peer — exactly the stampede the
// retry budget exists to prevent. Network calls are found transitively
// through same-package callees, so hiding the http.Do in a helper does
// not hide the loop.
var BoundedRetry = &Analyzer{
	Name: "bounded-retry",
	Doc:  "loops doing network I/O are bounded by a condition or gated by a select",
	Run:  runBoundedRetry,
}

func runBoundedRetry(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		if !matchesAny(cfg.RetryPackages, pkg.ImportPath) {
			continue
		}
		decls := map[*types.Func]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						decls[fn] = fd
					}
				}
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond != nil {
					return true
				}
				if containsSelect(loop.Body) {
					return true
				}
				visited := map[*types.Func]bool{}
				if call := firstNetCall(pkg, loop.Body, decls, visited); call != nil {
					report(loop.Pos(), "unbounded for loop initiates network I/O (%s) — bound it by the retry budget or the ring-walk candidate list, or gate each iteration on a select", call.FullName())
				}
				return true
			})
		}
	}
}

// containsSelect reports a select statement in the loop body itself
// (not inside nested function literals) — the stop-channel pattern that
// makes a condition-less loop cancellable and paced.
func containsSelect(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
			return false
		}
		return !found
	})
	return found
}

// firstNetCall finds a network-initiating call in the body, following
// same-package callees transitively.
func firstNetCall(pkg *Package, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool) *types.Func {
	var hit *types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || visited[fn] {
			return true
		}
		visited[fn] = true
		if isNetInitiator(fn) {
			hit = fn
			return false
		}
		if fd, ok := decls[fn]; ok {
			if h := firstNetCall(pkg, fd.Body, decls, visited); h != nil {
				hit = h
				return false
			}
		}
		return true
	})
	return hit
}

// netInitiators are the stdlib entry points that open a connection or
// send a request. Reads on an already-open body/conn deliberately do
// not count: a streaming relay loop is not a retry.
var netInitiators = map[string]bool{
	"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
	"Dial": true, "DialContext": true, "DialTimeout": true, "RoundTrip": true,
}

// isNetInitiator reports whether fn is a net/http or net call that
// initiates network I/O.
func isNetInitiator(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "net/http" && pkg.Path() != "net") {
		return false
	}
	return netInitiators[fn.Name()]
}
