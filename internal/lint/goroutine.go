package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene demands that every goroutine spawned in the
// configured packages (the serving layer) can be told to stop: its body
// — or a same-package function it calls — must receive from a channel
// (select on ctx.Done()/a stop channel, a direct <-ch, or a
// range-over-channel loop). A goroutine with no receive anywhere can
// outlive Shutdown, which is exactly the leak class the server's
// drain/rehab machinery exists to prevent.
var GoroutineHygiene = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "every go statement in the serving layer selects on a ctx/done/stop channel",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		if !matchesAny(cfg.GoroutinePackages, pkg.ImportPath) {
			continue
		}
		// Map the package's functions to their bodies so `go p.rehab(sh)`
		// can be followed into rehab.
		decls := map[*types.Func]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				visited := map[*types.Func]bool{}
				switch fun := ast.Unparen(gs.Call.Fun).(type) {
				case *ast.FuncLit:
					if !bodyReceives(pkg, fun.Body, decls, visited) {
						report(gs.Pos(), "goroutine body never receives from a channel — it cannot be told to stop and can outlive Shutdown")
					}
				default:
					fn := calleeFunc(pkg.Info, gs.Call)
					if fn == nil {
						report(gs.Pos(), "goroutine target cannot be resolved statically — spawn a same-package function or an inline func so stop behavior is checkable")
						return true
					}
					fd, ok := decls[fn]
					if !ok {
						report(gs.Pos(), "goroutine runs %s, which is outside this package — stop behavior cannot be verified", fn.FullName())
						return true
					}
					if !bodyReceives(pkg, fd.Body, decls, visited) {
						report(gs.Pos(), "goroutine runs %s, which never receives from a channel — it cannot be told to stop and can outlive Shutdown", fn.Name())
					}
				}
				return true
			})
		}
	}
}

// bodyReceives reports whether the body contains a channel receive —
// directly, or through a same-package call (followed transitively).
// Nested go statements are not descended into: a receive in a child
// goroutine does not make the parent stoppable.
func bodyReceives(pkg *Package, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, x)
			if fn == nil || visited[fn] {
				return true
			}
			if fd, ok := decls[fn]; ok {
				visited[fn] = true
				if bodyReceives(pkg, fd.Body, decls, visited) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
