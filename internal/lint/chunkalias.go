package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChunkAliasing guards the zero-copy chunk handoff (DESIGN.md §10): a
// slice obtained from a NextChunk call is live only until the matching
// Recycle, and the p argument of an io.Writer Write is live only until
// Write returns — the WriteTo path hands both a staging chunk that the
// stream will overwrite in place. Retaining such a slice (storing it to
// a field, a package-level variable, an element of either, a channel,
// or capturing it in a goroutine) aliases memory whose contents are
// about to change under the holder.
//
// The check is flow-insensitive and intra-procedural: local aliases
// (`d := c`, `c = c[1:]`) are followed within the function, but a chunk
// escaping through an opaque call is the callee's problem (its own
// Write method is checked by the same rule).
var ChunkAliasing = &Analyzer{
	Name: "chunk-aliasing",
	Doc:  "NextChunk slices and Write(p) arguments must not outlive the handoff",
	Run:  runChunkAliasing,
}

func runChunkAliasing(m *Module, cfg *Config, report func(token.Pos, string, ...any)) {
	for _, pkg := range m.Packages {
		if !matchesAny(cfg.ZeroCopyPackages, pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkChunkLocals(pkg, fd, report)
				checkWriteRetention(pkg, fd, report)
			}
		}
	}
}

// checkChunkLocals flags retention of locals bound (directly or through
// local aliases) to the result of a NextChunk call.
func checkChunkLocals(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	tainted := map[*types.Var]bool{}
	// Seed: locals assigned from a call to a method named NextChunk
	// that yields a []byte. Then propagate through plain local
	// assignments until the set is stable (flow-insensitive fixpoint).
	for {
		grew := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromChunk := false
			if len(as.Rhs) == 1 {
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isNextChunkCall(pkg.Info, call) {
					fromChunk = true
				}
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := localVar(pkg.Info, id)
				if v == nil || tainted[v] || !isByteSlice(v.Type()) {
					continue
				}
				// A NextChunk assignment taints the slice result;
				// other assignments taint when the RHS aliases an
				// already-tainted local (reslicing — not copies).
				taint := fromChunk
				if !taint && len(as.Rhs) == len(as.Lhs) {
					taint = aliasesTainted(pkg.Info, as.Rhs[i], tainted)
				}
				if taint {
					tainted[v] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	if len(tainted) == 0 {
		return
	}
	reportRetention(pkg, fd.Body, tainted, "a NextChunk slice", report)
}

// checkWriteRetention enforces the io.Writer no-retention contract on
// every method of the form Write(p []byte) (int, error): the zero-copy
// WriteTo path hands such writers a live staging chunk.
func checkWriteRetention(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	if fd.Recv == nil || fd.Name.Name != "Write" {
		return
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 || !isByteSlice(sig.Params().At(0).Type()) {
		return
	}
	tainted := map[*types.Var]bool{sig.Params().At(0): true}
	reportRetention(pkg, fd.Body, tainted, "the Write argument p", report)
}

// reportRetention walks a function body and reports every statement
// that stores a tainted slice somewhere that outlives the handoff.
func reportRetention(pkg *Package, body *ast.BlockStmt, tainted map[*types.Var]bool, what string, report func(token.Pos, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if !isRetentionSink(pkg.Info, lhs) {
					continue
				}
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				if aliasesTainted(pkg.Info, rhs, tainted) {
					report(x.Pos(), "%s is stored to %s and outlives the chunk handoff — copy the bytes instead", what, sinkKind(pkg.Info, lhs))
				}
			}
		case *ast.SendStmt:
			if aliasesTainted(pkg.Info, x.Value, tainted) {
				report(x.Pos(), "%s is sent on a channel and outlives the chunk handoff — copy the bytes instead", what)
			}
		case *ast.GoStmt:
			if usesTainted(pkg.Info, x.Call, tainted) {
				report(x.Pos(), "%s is captured by a goroutine that may outlive the chunk handoff — copy the bytes instead", what)
			}
			return false
		}
		return true
	})
}

// isRetentionSink reports whether an assignment target outlives the
// enclosing call: a struct field, a package-level variable, or an
// element of either (indexing cannot widen a local's lifetime, but the
// walk cannot see whose backing store the element belongs to, so any
// non-local base counts).
func isRetentionSink(info *types.Info, lhs ast.Expr) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return true
			}
			// Package-qualified global (pkg.Var = ...).
			v, _ := info.Uses[x.Sel].(*types.Var)
			return v != nil && isGlobalVar(v)
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v != nil && isGlobalVar(v)
		default:
			return false
		}
	}
}

// sinkKind names the retention sink for the diagnostic message.
func sinkKind(info *types.Info, lhs ast.Expr) string {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return "field " + x.Sel.Name
			}
			return "package-level variable " + x.Sel.Name
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.Ident:
			return "package-level variable " + x.Name
		default:
			return "a longer-lived location"
		}
	}
}

// aliasesTainted reports whether the expression's value may share a
// tainted slice's backing array: the variable itself, a reslice of it,
// or a composite literal embedding it. Function results are fresh
// values (retention inside the callee is checked at the callee), with
// one exception — append's result may share its first argument's
// backing array (the appended elements are bytes, copied by value).
func aliasesTainted(info *types.Info, e ast.Expr, tainted map[*types.Var]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v != nil && tainted[v]
	case *ast.SliceExpr:
		return aliasesTainted(info, x.X, tainted)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
				return aliasesTainted(info, x.Args[0], tainted)
			}
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if aliasesTainted(info, elt, tainted) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return aliasesTainted(info, x.X, tainted)
	}
	return false
}

// usesTainted reports whether the expression mentions a tainted local.
func usesTainted(info *types.Info, e ast.Expr, tainted map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && tainted[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// isNextChunkCall reports a call to any method named NextChunk whose
// first result is a []byte.
func isNextChunkCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "NextChunk" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isByteSlice(sig.Results().At(0).Type())
}

// localVar resolves an identifier to the local variable it defines or
// uses; nil for globals, fields and non-variables.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || isGlobalVar(v) {
		return nil
	}
	return v
}

// isGlobalVar reports a package-level variable.
func isGlobalVar(v *types.Var) bool {
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
