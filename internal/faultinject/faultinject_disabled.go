//go:build bsrng_nofaultinject

// Build-tag stub: with -tags bsrng_nofaultinject every failpoint
// function compiles to a no-op constant, so hardened production builds
// carry no registry, no atomics and no way to arm a fault.
package faultinject

// Available reports whether the failpoint registry is compiled in.
func Available() bool { return false }

// Hit always reports false in the disabled build.
func Hit(string) bool { return false }

// Arm is a no-op in the disabled build.
func Arm(string, uint64) {}

// ArmRange is a no-op in the disabled build.
func ArmRange(string, uint64, uint64) {}

// ArmSeeded is a no-op in the disabled build; it still returns the
// trigger it would have armed so callers can log consistently.
func ArmSeeded(string, uint64, uint64) uint64 { return 0 }

// Disarm is a no-op in the disabled build.
func Disarm(string) {}

// Reset is a no-op in the disabled build.
func Reset() {}

// Hits always reports zero in the disabled build.
func Hits(string) uint64 { return 0 }

// Fired always reports zero in the disabled build.
func Fired(string) uint64 { return 0 }
