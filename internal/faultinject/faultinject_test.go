package faultinject

import (
	"sync"
	"testing"
)

func TestUnarmedHitIsFalse(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	for i := 0; i < 100; i++ {
		if Hit("test.never.armed") {
			t.Fatal("unarmed failpoint fired")
		}
	}
	if Hits("test.never.armed") != 0 || Fired("test.never.armed") != 0 {
		t.Fatal("unarmed failpoint has counters")
	}
}

func TestArmFiresOnExactNthHit(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	Arm("test.nth", 3)
	var fires []int
	for i := 1; i <= 6; i++ {
		if Hit("test.nth") {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("fired at hits %v, want [3]", fires)
	}
	if Hits("test.nth") != 6 || Fired("test.nth") != 1 {
		t.Fatalf("hits=%d fired=%d, want 6/1", Hits("test.nth"), Fired("test.nth"))
	}
}

func TestArmRangeFiresOnEveryHitInRange(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	ArmRange("test.range", 2, 4)
	want := map[int]bool{2: true, 3: true, 4: true}
	for i := 1; i <= 6; i++ {
		if got := Hit("test.range"); got != want[i] {
			t.Errorf("hit %d: fired=%v, want %v", i, got, want[i])
		}
	}
	if Fired("test.range") != 3 {
		t.Fatalf("fired=%d, want 3", Fired("test.range"))
	}
}

func TestRearmResetsCounters(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	Arm("test.rearm", 1)
	Hit("test.rearm")
	Arm("test.rearm", 2)
	if Hits("test.rearm") != 0 || Fired("test.rearm") != 0 {
		t.Fatal("re-arm did not reset counters")
	}
	if Hit("test.rearm") {
		t.Fatal("fired on hit 1 after re-arm to nth=2")
	}
	if !Hit("test.rearm") {
		t.Fatal("did not fire on hit 2 after re-arm")
	}
}

func TestDisarmAndReset(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	Arm("test.a", 1)
	Arm("test.b", 1)
	Disarm("test.a")
	if Hit("test.a") {
		t.Fatal("disarmed failpoint fired")
	}
	if !Hit("test.b") {
		t.Fatal("still-armed failpoint did not fire")
	}
	Reset()
	if Hit("test.b") {
		t.Fatal("failpoint fired after Reset")
	}
	// Disarming an unknown name must not panic or unbalance the gate.
	Disarm("test.unknown")
	if Hit("test.anything") {
		t.Fatal("phantom fire after disarming unknown name")
	}
}

func TestArmSeededIsDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	const seed, window = 0xC0FFEE, 100
	a := ArmSeeded("test.seeded", seed, window)
	b := ArmSeeded("test.seeded", seed, window)
	if a != b {
		t.Fatalf("same (seed,name,window) armed different triggers: %d vs %d", a, b)
	}
	if a < 1 || a > window {
		t.Fatalf("trigger %d outside [1,%d]", a, window)
	}
	// Different names under the same seed should almost surely differ.
	c := ArmSeeded("test.seeded.other", seed, 1<<32)
	d := ArmSeeded("test.seeded", seed, 1<<32)
	if c == d {
		t.Fatal("distinct names derived identical triggers over a 2^32 window")
	}
	// The armed point actually fires on the derived hit.
	nth := ArmSeeded("test.seeded.fire", seed, 5)
	for i := uint64(1); i <= 5; i++ {
		if got := Hit("test.seeded.fire"); got != (i == nth) {
			t.Fatalf("hit %d: fired=%v, want %v (nth=%d)", i, got, i == nth, nth)
		}
	}
}

func TestInvalidRangePanics(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	for _, tc := range []struct{ from, to uint64 }{{0, 1}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ArmRange(%d,%d) did not panic", tc.from, tc.to)
				}
			}()
			ArmRange("test.bad", tc.from, tc.to)
		}()
	}
}

// Concurrent hits against one armed point must be race-free and fire
// exactly once for a single-hit trigger.
func TestConcurrentHits(t *testing.T) {
	t.Cleanup(Reset)
	if !Available() {
		t.Skip("faultinject compiled out")
	}
	Arm("test.concurrent", 500)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				if Hit("test.concurrent") {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("fired %d times across 1000 concurrent hits, want exactly 1", fired)
	}
}
