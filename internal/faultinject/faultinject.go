//go:build !bsrng_nofaultinject

// Package faultinject is a deterministic failpoint registry for chaos
// testing: named code sites call Hit, and a test arms a site to fire on
// an exact hit number (or hit range), so every failure path is driven by
// the test — not by luck. Trigger points can be derived from a seed
// (ArmSeeded), making a whole chaos scenario reproducible from one
// integer.
//
// Cost model: when nothing is armed, Hit is a single atomic load and a
// predicted branch — zero allocations, no locks — so call sites can stay
// compiled into production binaries. Builds that must not carry the
// registry at all can compile it out with the bsrng_nofaultinject build
// tag, which replaces every function with a no-op (see
// faultinject_disabled.go).
//
// Naming scheme: failpoints are named <package>.<site>.<effect>, e.g.
// core.segment.corrupt, server.checkout.fail, server.probation.fail
// (optionally suffixed with a scoping label such as the algorithm name:
// server.segment.corrupt.mickey). DESIGN.md §8 lists the registered
// sites.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// point is one armed failpoint: fire when from <= hit counter <= to
// (1-based, inclusive).
type point struct {
	from, to uint64
	hits     atomic.Uint64
	fired    atomic.Uint64
}

var (
	// armedCount gates the Hit fast path: zero means no failpoint is
	// armed anywhere and Hit returns immediately.
	armedCount atomic.Int64
	points     sync.Map // name -> *point
	mu         sync.Mutex
)

// Available reports whether the failpoint registry is compiled in.
func Available() bool { return true }

// Hit records one pass through the named site and reports whether an
// armed trigger fired. Unarmed sites (the production case) cost one
// atomic load.
func Hit(name string) bool {
	if armedCount.Load() == 0 {
		return false
	}
	v, ok := points.Load(name)
	if !ok {
		return false
	}
	p := v.(*point)
	n := p.hits.Add(1)
	if n >= p.from && n <= p.to {
		p.fired.Add(1)
		return true
	}
	return false
}

// Arm sets the named failpoint to fire on exactly the nth Hit (1-based).
// Re-arming an existing point resets its hit counter.
func Arm(name string, nth uint64) { ArmRange(name, nth, nth) }

// ArmRange sets the named failpoint to fire on every Hit numbered
// from..to inclusive (1-based). Re-arming resets the hit counter.
func ArmRange(name string, from, to uint64) {
	if from == 0 || to < from {
		panic("faultinject: invalid hit range")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, loaded := points.Load(name); !loaded {
		armedCount.Add(1)
	}
	points.Store(name, &point{from: from, to: to})
}

// ArmSeeded derives the trigger hit deterministically from (seed, name):
// a splitmix64 draw over the name's FNV hash mapped into [1, window],
// then arms the point on that hit and returns it. The same (seed, name,
// window) always arms the same trigger, which is what makes a chaos run
// reproducible from its failpoint seed alone.
func ArmSeeded(name string, seed, window uint64) uint64 {
	if window == 0 {
		window = 1
	}
	nth := 1 + splitmix(seed^fnv64(name))%window
	Arm(name, nth)
	return nth
}

// Disarm removes the named failpoint (no-op if not armed).
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, loaded := points.LoadAndDelete(name); loaded {
		armedCount.Add(-1)
	}
}

// Reset disarms every failpoint and zeroes all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points.Range(func(k, _ any) bool {
		points.Delete(k)
		armedCount.Add(-1)
		return true
	})
}

// Hits reports how many times the named site has been passed since it
// was (re-)armed; zero for unarmed sites.
func Hits(name string) uint64 {
	if v, ok := points.Load(name); ok {
		return v.(*point).hits.Load()
	}
	return 0
}

// Fired reports how many times the named failpoint has triggered since
// it was (re-)armed; zero for unarmed sites.
func Fired(name string) uint64 {
	if v, ok := points.Load(name); ok {
		return v.(*point).fired.Load()
	}
	return 0
}

// splitmix is the same full-period mixing permutation internal/core uses
// for seed expansion, reused here so trigger derivation is well spread
// even for adjacent seeds.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over the failpoint name.
func fnv64(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}
