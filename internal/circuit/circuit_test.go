package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// A compiled full adder must match integer addition bit-for-bit on all 64
// lanes.
func TestFullAdderCircuit(t *testing.T) {
	b := NewBuilder()
	const width = 16
	var x, y [width]Gate
	for i := 0; i < width; i++ {
		x[i] = b.Input()
	}
	for i := 0; i < width; i++ {
		y[i] = b.Input()
	}
	carry := b.Const(0)
	outs := make([]Gate, width)
	for i := 0; i < width; i++ {
		s := b.Xor(b.Xor(x[i], y[i]), carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(carry, b.Xor(x[i], y[i])))
		outs[i] = s
	}
	p := b.Compile(outs)

	rng := rand.New(rand.NewSource(4))
	av := make([]uint16, 64)
	bv := make([]uint16, 64)
	for l := range av {
		av[l] = uint16(rng.Uint32())
		bv[l] = uint16(rng.Uint32())
	}
	in := make([]uint64, 2*width)
	for i := 0; i < width; i++ {
		for l := 0; l < 64; l++ {
			in[i] |= uint64((av[l]>>uint(i))&1) << uint(l)
			in[width+i] |= uint64((bv[l]>>uint(i))&1) << uint(l)
		}
	}
	out := make([]uint64, width)
	p.Run(in, out, nil)
	for l := 0; l < 64; l++ {
		want := av[l] + bv[l]
		var got uint16
		for i := 0; i < width; i++ {
			got |= uint16((out[i]>>uint(l))&1) << uint(i)
		}
		if got != want {
			t.Fatalf("lane %d: %d + %d = %d, circuit %d", l, av[l], bv[l], want, got)
		}
	}
}

func TestGatesAndMux(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	sel := b.Input()
	outs := []Gate{
		b.Xor(x, y), b.And(x, y), b.Or(x, y), b.Not(x),
		b.Mux(sel, x, y), b.Const(1), b.Const(0),
	}
	p := b.Compile(outs)
	in := []uint64{0b1100, 0b1010, 0b1111}
	out := make([]uint64, len(outs))
	p.Run(in, out, nil)
	if out[0]&0xF != 0b0110 || out[1]&0xF != 0b1000 || out[2]&0xF != 0b1110 {
		t.Fatalf("xor/and/or wrong: %b %b %b", out[0]&0xF, out[1]&0xF, out[2]&0xF)
	}
	if out[3]&0xF != 0b0011 {
		t.Fatalf("not wrong: %b", out[3]&0xF)
	}
	if out[4]&0xF != 0b1100 { // sel all ones selects x
		t.Fatalf("mux wrong: %b", out[4]&0xF)
	}
	if out[5] != ^uint64(0) || out[6] != 0 {
		t.Fatal("const wrong")
	}
}

func TestXorMany(t *testing.T) {
	b := NewBuilder()
	g := []Gate{b.Input(), b.Input(), b.Input()}
	p := b.Compile([]Gate{b.XorMany(g...)})
	out := make([]uint64, 1)
	p.Run([]uint64{1, 3, 5}, out, nil)
	if out[0] != 1^3^5 {
		t.Fatalf("xormany: %d", out[0])
	}
}

func TestDeadCodeElimination(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	_ = b.And(x, y) // dead
	live := b.Xor(x, y)
	p := b.Compile([]Gate{live})
	// 2 inputs + 1 xor = 3 registers; the dead AND must be gone.
	if p.ScratchLen() != 3 {
		t.Errorf("expected 3 registers after DCE, got %d", p.ScratchLen())
	}
	out := make([]uint64, 1)
	p.Run([]uint64{6, 3}, out, nil)
	if out[0] != 5 {
		t.Fatalf("xor after DCE: %d", out[0])
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	b.Compile([]Gate{b.Xor(b.And(x, y), b.Or(x, y))})
	gates, nonlinear := b.Stats()
	if gates != 3 || nonlinear != 2 {
		t.Errorf("stats = (%d,%d), want (3,2)", gates, nonlinear)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	b := NewBuilder()
	x := b.Input()
	assertPanics("bad gate", func() { b.Xor(x, Gate(99)) })
	assertPanics("empty xormany", func() { b.XorMany() })
	p := b.Compile([]Gate{x})
	assertPanics("wrong inputs", func() { p.Run(nil, make([]uint64, 1), nil) })
	assertPanics("wrong outputs", func() { p.Run(make([]uint64, 1), nil, nil) })
	assertPanics("compile bad output", func() { b.Compile([]Gate{Gate(-1)}) })
}

// Property: compiled XOR-tree equals direct reduction for random shapes.
func TestRandomXorTrees(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%20) + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		ins := make([]Gate, n)
		for i := range ins {
			ins[i] = b.Input()
		}
		p := b.Compile([]Gate{b.XorMany(ins...)})
		in := make([]uint64, n)
		var want uint64
		for i := range in {
			in[i] = rng.Uint64()
			want ^= in[i]
		}
		out := make([]uint64, 1)
		p.Run(in, out, make([]uint64, p.ScratchLen()))
		return out[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
