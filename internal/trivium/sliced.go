package trivium

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// window is the number of clocks between buffer rebases (the same
// append-and-rebase scheme as the bitsliced Grain engine).
const window = 64

// register lengths of the three shift registers.
const (
	lenA = 93
	lenB = 84
	lenC = 111
)

// Sliced is the bitsliced 64-lane Trivium engine: one uint64 plane per
// state bit. Each plane buffer is an age-ordered append log — plane
// buf[pos-j] holds the register's bit s_j — so the per-clock rotation is
// a single append and the paper's shift elimination applies unchanged.
type Sliced struct {
	a, b, c []uint64
	pos     int
	lanes   int
}

// NewSliced builds a 64-lane (or fewer) engine; keys[L]/ivs[L] belong to
// lane L.
func NewSliced(keys, ivs [][]byte) (*Sliced, error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.W {
		return nil, fmt.Errorf("trivium: lane count %d out of range [1,64]", lanes)
	}
	if len(ivs) != lanes {
		return nil, fmt.Errorf("trivium: %d keys but %d ivs", lanes, len(ivs))
	}
	t := &Sliced{
		a:     make([]uint64, lenA+window),
		b:     make([]uint64, lenB+window),
		c:     make([]uint64, lenC+window),
		lanes: lanes,
	}
	for l := 0; l < lanes; l++ {
		if len(keys[l]) != KeySize {
			return nil, fmt.Errorf("trivium: lane %d key must be %d bytes", l, KeySize)
		}
		if len(ivs[l]) != IVSize {
			return nil, fmt.Errorf("trivium: lane %d iv must be %d bytes", l, IVSize)
		}
		// buf[len-j] = s_j: key bit i is s_{i+1} of register A, IV bit i
		// is s_{i+1} of register B (i.e. spec bit s_{94+i}).
		for i := 0; i < 80; i++ {
			bitslice.SetLaneBit(t.a, lenA-1-i, l, bitOf(keys[l], i))
			bitslice.SetLaneBit(t.b, lenB-1-i, l, bitOf(ivs[l], i))
		}
		// s286..s288 = 1 → register C bits s_109, s_110, s_111.
		bitslice.SetLaneBit(t.c, lenC-109, l, 1)
		bitslice.SetLaneBit(t.c, lenC-110, l, 1)
		bitslice.SetLaneBit(t.c, lenC-111, l, 1)
	}
	t.pos = 0
	for i := 0; i < initClocks; i++ {
		t.ClockWord()
	}
	return t, nil
}

// Lanes returns the number of active lanes.
func (t *Sliced) Lanes() int { return t.lanes }

// ClockWord advances all lanes one step and returns the keystream word
// (bit L = lane L's output bit).
func (t *Sliced) ClockWord() uint64 {
	// s_j of register A lives at a[pos+lenA-j]; likewise for B and C.
	p := t.pos
	a, b, c := t.a, t.b, t.c
	t1 := a[p+lenA-66] ^ a[p+lenA-93]
	t2 := b[p+lenB-69] ^ b[p+lenB-84]  // spec s162=s_{B69}, s177=s_{B84}
	t3 := c[p+lenC-66] ^ c[p+lenC-111] // spec s243=s_{C66}, s288=s_{C111}
	z := t1 ^ t2 ^ t3
	n1 := t1 ^ a[p+lenA-91]&a[p+lenA-92] ^ b[p+lenB-78] // s171 = s_{B78}
	n2 := t2 ^ b[p+lenB-82]&b[p+lenB-83] ^ c[p+lenC-87] // s264 = s_{C87}
	n3 := t3 ^ c[p+lenC-109]&c[p+lenC-110] ^ a[p+lenA-69]
	a[p+lenA] = n3
	b[p+lenB] = n1
	c[p+lenC] = n2
	t.pos++
	if t.pos == window {
		copy(a[:lenA], a[window:])
		copy(b[:lenB], b[window:])
		copy(c[:lenC], c[window:])
		t.pos = 0
	}
	return z
}

// KeystreamBlock runs 64 clocks and transposes so that out[L], written
// little-endian, is 8 keystream bytes of lane L, MSB-first per byte
// (byte-compatible with Ref.Keystream).
func (t *Sliced) KeystreamBlock(out *[64]uint64) {
	for i := 0; i < 64; i++ {
		out[(i&^7)|(7-i&7)] = t.ClockWord()
	}
	bitslice.Transpose64(out)
}

// Keystream fills one equal-length buffer per lane; lengths must be equal
// multiples of 8.
func (t *Sliced) Keystream(bufs [][]byte) error {
	if len(bufs) != t.lanes {
		return fmt.Errorf("trivium: %d buffers for %d lanes", len(bufs), t.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("trivium: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("trivium: buffer length must be a multiple of 8")
	}
	var blk [64]uint64
	for off := 0; off < n; off += 8 {
		t.KeystreamBlock(&blk)
		for l := 0; l < t.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], blk[l])
		}
	}
	return nil
}

// KeystreamWords fills dst with raw device-order keystream words.
func (t *Sliced) KeystreamWords(dst []uint64) {
	for i := range dst {
		dst[i] = t.ClockWord()
	}
}
