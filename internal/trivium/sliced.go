package trivium

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// window is the number of clocks between buffer rebases (the same
// append-and-rebase scheme as the bitsliced Grain engine).
const window = 64

// register lengths of the three shift registers.
const (
	lenA = 93
	lenB = 84
	lenC = 111
)

// SlicedVec is the bitsliced Trivium engine over the plane width V: one
// V-plane per state bit, 64·K independent cipher instances per plane.
// Each plane buffer is an age-ordered append log — plane buf[pos-j] holds
// the register's bit s_j — so the per-clock rotation is a single append
// and the paper's shift elimination applies unchanged. Every lane-wise
// operation applies independently to each of V's K words, so the wide
// engine is K lock-stepped 64-lane engines under one control flow.
type SlicedVec[V bitslice.Vec] struct {
	a, b, c []V
	pos     int
	lanes   int
}

// Sliced is the native 64-lane engine (the uint64 datapath).
type Sliced = SlicedVec[bitslice.V64]

// NewSliced builds a 64-lane (or fewer) engine; keys[L]/ivs[L] belong to
// lane L.
func NewSliced(keys, ivs [][]byte) (*Sliced, error) {
	return NewSlicedVec[bitslice.V64](keys, ivs)
}

// NewSlicedVec builds an engine of up to bitslice.VecLanes[V]() lanes.
func NewSlicedVec[V bitslice.Vec](keys, ivs [][]byte) (*SlicedVec[V], error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.VecLanes[V]() {
		return nil, fmt.Errorf("trivium: lane count %d out of range [1,%d]", lanes, bitslice.VecLanes[V]())
	}
	t := &SlicedVec[V]{
		a:     make([]V, lenA+window),
		b:     make([]V, lenB+window),
		c:     make([]V, lenC+window),
		lanes: lanes,
	}
	if err := t.Reseed(keys, ivs); err != nil {
		return nil, err
	}
	return t, nil
}

// Reseed reloads fresh per-lane key/IV material and re-runs the spec's
// initialization clocks, reusing the engine's buffers. The lane count
// must match the one the engine was built with.
func (t *SlicedVec[V]) Reseed(keys, ivs [][]byte) error {
	if len(keys) != t.lanes {
		return fmt.Errorf("trivium: %d keys for %d lanes", len(keys), t.lanes)
	}
	if len(ivs) != t.lanes {
		return fmt.Errorf("trivium: %d keys but %d ivs", len(keys), len(ivs))
	}
	for l := 0; l < t.lanes; l++ {
		if len(keys[l]) != KeySize {
			return fmt.Errorf("trivium: lane %d key must be %d bytes", l, KeySize)
		}
		if len(ivs[l]) != IVSize {
			return fmt.Errorf("trivium: lane %d iv must be %d bytes", l, IVSize)
		}
	}
	var zero V
	for i := range t.a {
		t.a[i] = zero
	}
	for i := range t.b {
		t.b[i] = zero
	}
	for i := range t.c {
		t.c[i] = zero
	}
	for l := 0; l < t.lanes; l++ {
		// buf[len-j] = s_j: key bit i is s_{i+1} of register A, IV bit i
		// is s_{i+1} of register B (i.e. spec bit s_{94+i}).
		for i := 0; i < 80; i++ {
			bitslice.SetLaneBitVec(t.a, lenA-1-i, l, bitOf(keys[l], i))
			bitslice.SetLaneBitVec(t.b, lenB-1-i, l, bitOf(ivs[l], i))
		}
		// s286..s288 = 1 → register C bits s_109, s_110, s_111.
		bitslice.SetLaneBitVec(t.c, lenC-109, l, 1)
		bitslice.SetLaneBitVec(t.c, lenC-110, l, 1)
		bitslice.SetLaneBitVec(t.c, lenC-111, l, 1)
	}
	t.pos = 0
	for i := 0; i < initClocks; i++ {
		t.ClockVec()
	}
	return nil
}

// Lanes returns the number of active lanes.
func (t *SlicedVec[V]) Lanes() int { return t.lanes }

// ClockVec advances all lanes one step and returns the keystream plane
// (lane L = lane L's output bit).
func (t *SlicedVec[V]) ClockVec() V {
	// s_j of register A lives at a[pos+lenA-j]; likewise for B and C.
	p := t.pos
	a, b, c := t.a, t.b, t.c
	var z, n1, n2, n3 V
	if len(z) == 1 {
		// Single-word width: index the planes directly — everything
		// folds into two-operand ALU ops and the scheduler keeps all
		// taps in flight. (len(z) is a per-instantiation constant, so
		// the other arm compiles away.)
		for k := 0; k < len(z); k++ {
			t1 := a[p+lenA-66][k] ^ a[p+lenA-93][k]
			t2 := b[p+lenB-69][k] ^ b[p+lenB-84][k]  // spec s162=s_{B69}, s177=s_{B84}
			t3 := c[p+lenC-66][k] ^ c[p+lenC-111][k] // spec s243=s_{C66}, s288=s_{C111}
			z[k] = t1 ^ t2 ^ t3
			n1[k] = t1 ^ a[p+lenA-91][k]&a[p+lenA-92][k] ^ b[p+lenB-78][k] // s171 = s_{B78}
			n2[k] = t2 ^ b[p+lenB-82][k]&b[p+lenB-83][k] ^ c[p+lenC-87][k] // s264 = s_{C87}
			n3[k] = t3 ^ c[p+lenC-109][k]&c[p+lenC-110][k] ^ a[p+lenA-69][k]
		}
	} else {
		// Wide widths: hoist the fourteen tap planes out of the word
		// loop — each is loop-invariant, and re-indexing the slices
		// costs a bounds check per tap per word.
		ax1, ax2 := a[p+lenA-66], a[p+lenA-93]
		bx1, bx2 := b[p+lenB-69], b[p+lenB-84]
		cx1, cx2 := c[p+lenC-66], c[p+lenC-111]
		an1, an2, nb := a[p+lenA-91], a[p+lenA-92], b[p+lenB-78]
		bn1, bn2, nc := b[p+lenB-82], b[p+lenB-83], c[p+lenC-87]
		cn1, cn2, na := c[p+lenC-109], c[p+lenC-110], a[p+lenA-69]
		for k := 0; k < len(z); k++ {
			t1 := ax1[k] ^ ax2[k]
			t2 := bx1[k] ^ bx2[k]
			t3 := cx1[k] ^ cx2[k]
			z[k] = t1 ^ t2 ^ t3
			n1[k] = t1 ^ an1[k]&an2[k] ^ nb[k]
			n2[k] = t2 ^ bn1[k]&bn2[k] ^ nc[k]
			n3[k] = t3 ^ cn1[k]&cn2[k] ^ na[k]
		}
	}
	a[p+lenA] = n3
	b[p+lenB] = n1
	c[p+lenC] = n2
	t.pos++
	if t.pos == window {
		copy(a[:lenA], a[window:])
		copy(b[:lenB], b[window:])
		copy(c[:lenC], c[window:])
		t.pos = 0
	}
	return z
}

// ClockWord advances all lanes one step and returns the keystream word of
// lanes 0..63; for the 64-lane engine this is the whole keystream plane.
func (t *SlicedVec[V]) ClockWord() uint64 {
	z := t.ClockVec()
	return z[0]
}

// KeystreamBlockVec runs 64 clocks and transposes so that out[j][k],
// written little-endian, is 8 keystream bytes of lane 64·k+j, MSB-first
// per byte (byte-compatible with Ref.Keystream).
func (t *SlicedVec[V]) KeystreamBlockVec(out *[64]V) {
	for i := 0; i < 64; i++ {
		out[(i&^7)|(7-i&7)] = t.ClockVec()
	}
	bitslice.TransposeVec(out)
}

// KeystreamBlock is KeystreamBlockVec restricted to lanes 0..63.
func (t *SlicedVec[V]) KeystreamBlock(out *[64]uint64) {
	var blk [64]V
	t.KeystreamBlockVec(&blk)
	for i := range out {
		out[i] = blk[i][0]
	}
}

// Keystream fills one equal-length buffer per lane; lengths must be equal
// multiples of 8.
func (t *SlicedVec[V]) Keystream(bufs [][]byte) error {
	if len(bufs) != t.lanes {
		return fmt.Errorf("trivium: %d buffers for %d lanes", len(bufs), t.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("trivium: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("trivium: buffer length must be a multiple of 8")
	}
	var blk [64]V
	for off := 0; off < n; off += 8 {
		t.KeystreamBlockVec(&blk)
		for l := 0; l < t.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], blk[l&63][l>>6])
		}
	}
	return nil
}

// KeystreamWords fills dst with raw device-order keystream words of lanes
// 0..63.
func (t *SlicedVec[V]) KeystreamWords(dst []uint64) {
	for i := range dst {
		dst[i] = t.ClockWord()
	}
}
