package trivium

import (
	"bytes"
	"math/rand"
	"testing"
)

func randKeyIV(rng *rand.Rand) ([]byte, []byte) {
	key := make([]byte, KeySize)
	iv := make([]byte, IVSize)
	rng.Read(key)
	rng.Read(iv)
	return key, iv
}

func TestRefValidation(t *testing.T) {
	if _, err := NewRef(make([]byte, 9), make([]byte, 10)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewRef(make([]byte, 10), make([]byte, 9)); err == nil {
		t.Error("short iv accepted")
	}
}

func TestSlicedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const lanes = 64
	keys := make([][]byte, lanes)
	ivs := make([][]byte, lanes)
	for l := 0; l < lanes; l++ {
		keys[l], ivs[l] = randKeyIV(rng)
	}
	sl, err := NewSliced(keys, ivs)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, lanes)
	for l := range bufs {
		bufs[l] = make([]byte, 56)
	}
	if err := sl.Keystream(bufs); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		ref, err := NewRef(keys[l], ivs[l])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 56)
		ref.Keystream(want)
		if !bytes.Equal(bufs[l], want) {
			t.Fatalf("lane %d keystream mismatch\n got %x\nwant %x", l, bufs[l], want)
		}
	}
}

func TestSlicedPartialLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	keys := make([][]byte, 3)
	ivs := make([][]byte, 3)
	for l := range keys {
		keys[l], ivs[l] = randKeyIV(rng)
	}
	sl, err := NewSliced(keys, ivs)
	if err != nil {
		t.Fatal(err)
	}
	bufs := [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16)}
	if err := sl.Keystream(bufs); err != nil {
		t.Fatal(err)
	}
	for l := range keys {
		ref, _ := NewRef(keys[l], ivs[l])
		want := make([]byte, 16)
		ref.Keystream(want)
		if !bytes.Equal(bufs[l], want) {
			t.Fatalf("lane %d mismatch", l)
		}
	}
}

func TestWindowRebaseSeamless(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	keys := make([][]byte, 2)
	ivs := make([][]byte, 2)
	for l := range keys {
		keys[l], ivs[l] = randKeyIV(rng)
	}
	a, _ := NewSliced(keys, ivs)
	b, _ := NewSliced(keys, ivs)
	dst := make([]uint64, 1000)
	a.KeystreamWords(dst)
	for i, w := range dst {
		if got := b.ClockWord(); got != w {
			t.Fatalf("word %d differs across rebases", i)
		}
	}
}

func TestSlicedValidation(t *testing.T) {
	if _, err := NewSliced(nil, nil); err == nil {
		t.Error("zero lanes accepted")
	}
	keys := make([][]byte, 65)
	ivs := make([][]byte, 65)
	for i := range keys {
		keys[i] = make([]byte, KeySize)
		ivs[i] = make([]byte, IVSize)
	}
	if _, err := NewSliced(keys, ivs); err == nil {
		t.Error("65 lanes accepted")
	}
	if _, err := NewSliced(keys[:2], ivs[:1]); err == nil {
		t.Error("count mismatch accepted")
	}
	if _, err := NewSliced([][]byte{make([]byte, 9)}, ivs[:1]); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewSliced(keys[:1], [][]byte{make([]byte, 9)}); err == nil {
		t.Error("short iv accepted")
	}
	sl, _ := NewSliced(keys[:2], ivs[:2])
	if err := sl.Keystream(make([][]byte, 1)); err == nil {
		t.Error("wrong buffer count accepted")
	}
	if err := sl.Keystream([][]byte{make([]byte, 8), make([]byte, 16)}); err == nil {
		t.Error("ragged buffers accepted")
	}
	if err := sl.Keystream([][]byte{make([]byte, 9), make([]byte, 9)}); err == nil {
		t.Error("non multiple-of-8 accepted")
	}
}

func TestDistinctIVsDistinctStreams(t *testing.T) {
	key := make([]byte, KeySize)
	iv1 := make([]byte, IVSize)
	iv2 := make([]byte, IVSize)
	iv2[9] = 1
	a, _ := NewRef(key, iv1)
	b, _ := NewRef(key, iv2)
	ka := make([]byte, 64)
	kb := make([]byte, 64)
	a.Keystream(ka)
	b.Keystream(kb)
	if bytes.Equal(ka, kb) {
		t.Fatal("different IVs produced identical keystreams")
	}
}

func TestDeterministicReproduction(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	key, iv := randKeyIV(rng)
	a, _ := NewRef(key, iv)
	b, _ := NewRef(key, iv)
	ka := make([]byte, 128)
	kb := make([]byte, 128)
	a.Keystream(ka)
	b.Keystream(kb)
	if !bytes.Equal(ka, kb) {
		t.Fatal("same key/IV diverged")
	}
}

func TestKeystreamBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	key, iv := randKeyIV(rng)
	g, _ := NewRef(key, iv)
	const n = 1 << 15
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(g.KeystreamBit())
	}
	mean, sigma := float64(n)/2, 90.5
	if d := float64(ones) - mean; d > 5*sigma || d < -5*sigma {
		t.Fatalf("keystream bias: %d ones of %d", ones, n)
	}
}

// The state after initialization must never be all-zero (the degenerate
// fixed point); the three seeded ones in register C guarantee it.
func TestZeroKeyZeroIVNotDegenerate(t *testing.T) {
	g, _ := NewRef(make([]byte, KeySize), make([]byte, IVSize))
	buf := make([]byte, 64)
	g.Keystream(buf)
	var zero [64]byte
	if bytes.Equal(buf, zero[:]) {
		t.Fatal("zero key/IV produced the all-zero keystream")
	}
}

func BenchmarkRefKeystream(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	key, iv := randKeyIV(rng)
	g, _ := NewRef(key, iv)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Keystream(buf)
	}
}

func BenchmarkSlicedKeystream64Lanes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 64)
	ivs := make([][]byte, 64)
	for l := range keys {
		keys[l], ivs[l] = randKeyIV(rng)
	}
	g, _ := NewSliced(keys, ivs)
	dst := make([]uint64, 512)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KeystreamWords(dst)
	}
}
