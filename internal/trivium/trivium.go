// Package trivium implements the Trivium stream cipher (De Cannière &
// Preneel, eSTREAM Profile 2) — an extension beyond the paper's three
// ciphers, added because it is the remaining eSTREAM hardware-profile
// winner and the best possible fit for the paper's §4 technique: a pure
// 288-bit shift-register cipher whose update is eleven XORs and three
// ANDs, all of which bitslice into full-width word operations.
//
// Specification (www.ecrypt.eu.org/stream): three shift registers of 93,
// 84 and 111 bits; with 1-based state bits s1..s288,
//
//	t1 = s66 ⊕ s93,  t2 = s162 ⊕ s177,  t3 = s243 ⊕ s288
//	z  = t1 ⊕ t2 ⊕ t3
//	t1' = t1 ⊕ s91·s92 ⊕ s171
//	t2' = t2 ⊕ s175·s176 ⊕ s264
//	t3' = t3 ⊕ s286·s287 ⊕ s69
//	(s1..s93)    ← (t3', s1..s92)
//	(s94..s177)  ← (t1', s94..s176)
//	(s178..s288) ← (t2', s178..s287)
//
// Loading: 80-bit key into s1..s80, 80-bit IV into s94..s173,
// s286..s288 = 1, everything else 0; 4·288 initialization clocks discard
// output. Key/IV bits are taken MSB-first within bytes, the same
// convention as this repo's other cipher modules; the offline
// known-answer caveat of DESIGN.md §2 applies.
package trivium

import "fmt"

// KeySize is the Trivium key length in bytes (80 bits).
const KeySize = 10

// IVSize is the Trivium initialization-vector length in bytes (80 bits).
const IVSize = 10

// stateBits is the total register length.
const stateBits = 288

// initClocks is the number of discarded initialization clocks (4 full
// state rotations).
const initClocks = 4 * stateBits

// Ref is the one-byte-per-bit reference implementation; s[i] holds the
// spec's 1-based bit s_{i+1}.
type Ref struct {
	s [stateBits]uint8
}

// NewRef returns a keyed Trivium instance.
func NewRef(key, iv []byte) (*Ref, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("trivium: key must be %d bytes", KeySize)
	}
	if len(iv) != IVSize {
		return nil, fmt.Errorf("trivium: iv must be %d bytes", IVSize)
	}
	t := &Ref{}
	for i := 0; i < 80; i++ {
		t.s[i] = bitOf(key, i)
		t.s[93+i] = bitOf(iv, i)
	}
	t.s[285], t.s[286], t.s[287] = 1, 1, 1
	for i := 0; i < initClocks; i++ {
		t.clock()
	}
	return t, nil
}

func bitOf(p []byte, i int) uint8 {
	return (p[i>>3] >> uint(7-i&7)) & 1
}

// clock advances the state one step and returns the output bit.
func (t *Ref) clock() uint8 {
	s := &t.s
	t1 := s[65] ^ s[92]
	t2 := s[161] ^ s[176]
	t3 := s[242] ^ s[287]
	z := t1 ^ t2 ^ t3
	n1 := t1 ^ s[90]&s[91] ^ s[170]
	n2 := t2 ^ s[174]&s[175] ^ s[263]
	n3 := t3 ^ s[285]&s[286] ^ s[68]
	copy(s[1:93], s[0:92])
	copy(s[94:177], s[93:176])
	copy(s[178:288], s[177:287])
	s[0], s[93], s[177] = n3, n1, n2
	return z
}

// KeystreamBit emits the next keystream bit.
func (t *Ref) KeystreamBit() uint8 { return t.clock() }

// Keystream fills dst with keystream bytes, bits packed MSB-first.
func (t *Ref) Keystream(dst []byte) {
	for i := range dst {
		var b byte
		for j := 7; j >= 0; j-- {
			b |= t.clock() << uint(j)
		}
		dst[i] = b
	}
}
