package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// newHTTPTestServer serves an already-built Server (e.g. one carrying a
// test hook) and ties its lifetime to the test.
func newHTTPTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return ts
}

// waitMetric polls /metrics until the named sample reaches want.
func waitMetric(t *testing.T, url, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body, _ := get(t, url+"/metrics")
		got := metricValue(t, body, name)
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s stuck at %v, want %v", name, got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The streaming tentpole's core contract: /stream rides the same
// zero-copy shard path as /bytes — chunked, flushed, deterministic, and
// the shard's stream cursor advances by exactly the bytes served so the
// next request continues the canonical stream.
func TestStreamPooledDeterministicAndContinues(t *testing.T) {
	const seed = 42
	cfg := Config{
		Seed:         seed,
		Algorithms:   []core.Algorithm{core.MICKEY},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 2048,
	}
	_, ts := newTestServer(t, cfg)

	resp, err := http.Get(ts.URL + "/stream?alg=mickey&n=6144")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
		t.Errorf("transfer encoding %v, want chunked", resp.TransferEncoding)
	}
	if got := resp.Header.Get("X-Bsrng-Mode"); got != "pooled" {
		t.Errorf("mode header %q, want pooled", got)
	}
	if got := resp.Header.Get("X-Bsrng-Algorithm"); got != "mickey" {
		t.Errorf("algorithm header %q", got)
	}
	if len(body) != 6144 {
		t.Fatalf("got %d bytes, want 6144", len(body))
	}

	ref, err := core.NewStream(core.MICKEY, seed, core.StreamConfig{Workers: 1, StagingBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]byte, 8192)
	if _, err := io.ReadFull(ref, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want[:6144]) {
		t.Fatal("/stream bytes diverge from the library stream prefix")
	}

	// The shard's cursor advanced by exactly 6144: /bytes continues there.
	status, next, _ := get(t, ts.URL+"/bytes?alg=mickey&n=2048")
	if status != http.StatusOK {
		t.Fatalf("follow-up /bytes status %d", status)
	}
	if !bytes.Equal(next, want[6144:8192]) {
		t.Fatal("/bytes after /stream does not continue the stream")
	}

	_, mbody, _ := get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, "bsrngd_stream_bytes_total"); got != 6144 {
		t.Errorf("stream_bytes_total = %v, want 6144", got)
	}
	if got := metricValue(t, mbody, "bsrngd_stream_chunks_flushed_total"); got < 3 {
		t.Errorf("chunks_flushed_total = %v, want ≥ 3 (2048-byte staging chunks)", got)
	}
	if got := metricValue(t, mbody,
		`bsrngd_stream_requests_total{alg="mickey",mode="pooled",status="200"}`); got != 1 {
		t.Errorf("stream_requests_total pooled 200 = %v, want 1", got)
	}
	if got := metricValue(t, mbody, "bsrngd_stream_open"); got != 0 {
		t.Errorf("stream_open gauge = %v after completion, want 0", got)
	}
}

// Addressed /stream serves a named window of the deterministic address
// space: byte-identical to core.NewSegmentReader, identical at every
// lane width, and repeatable because no shard state is consumed.
func TestStreamAddressedWindow(t *testing.T) {
	const seed = 5
	cfg := Config{
		Seed:         seed,
		Algorithms:   []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 2048,
		MaxRequestBytes: 65536,
	}
	_, ts := newTestServer(t, cfg)

	const (
		domain = 2
		off    = uint64(3*core.SegmentBytes + 100)
		n      = 5000
	)
	url := fmt.Sprintf("%s/stream?alg=grain&domain=%d&segment=3&off=100&n=%d", ts.URL, domain, n)
	status, body, hdr := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := hdr.Get("X-Bsrng-Mode"); got != "addressed" {
		t.Errorf("mode header %q, want addressed", got)
	}
	if got := hdr.Get("X-Bsrng-Offset"); got != strconv.FormatUint(off, 10) {
		t.Errorf("offset header %q, want %d", got, off)
	}

	src, err := core.NewSegmentReader(core.GRAIN, seed, domain, 0, off)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	if _, err := io.ReadFull(src, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("addressed window diverges from core.NewSegmentReader")
	}

	for _, lanes := range core.SupportedLanes {
		status, again, _ := get(t, fmt.Sprintf("%s&lanes=%d", url, lanes))
		if status != http.StatusOK || !bytes.Equal(again, want) {
			t.Fatalf("lanes=%d window (status %d) diverges from the lanes-default window", lanes, status)
		}
	}

	// n defaults to the per-request cap on addressed streams.
	status, full, _ := get(t, ts.URL+"/stream?alg=grain&segment=0")
	if status != http.StatusOK || len(full) != 65536 {
		t.Fatalf("default-n addressed stream: status %d, %d bytes, want cap 65536", status, len(full))
	}
}

// Satellite regression: a client that disconnects mid-/stream must not
// leak its shard token or leave the pool degraded — bsrngd_shards_busy
// returns to 0 and the next request is served normally. (Run with -race.)
func TestStreamClientDisconnectReleasesShard(t *testing.T) {
	cfg := Config{
		Seed:         11,
		Algorithms:   []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 2048,
	}
	_, ts := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/stream?alg=grain&n=8388608", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 4096)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	waitMetric(t, ts.URL, "bsrngd_shards_busy", 1)
	waitMetric(t, ts.URL, "bsrngd_stream_open", 1)

	cancel() // client walks away mid-stream
	resp.Body.Close()

	waitMetric(t, ts.URL, "bsrngd_shards_busy", 0)
	waitMetric(t, ts.URL, "bsrngd_stream_open", 0)

	// The shard token came back: the single shard serves the next request.
	if status, _, _ := get(t, ts.URL+"/bytes?alg=grain&n=64"); status != http.StatusOK {
		t.Fatalf("request after disconnect: status %d, want 200", status)
	}
	_, mbody, _ := get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, "bsrngd_stream_disconnects_total"); got < 1 {
		t.Errorf("stream_disconnects_total = %v, want ≥ 1", got)
	}
}

// Graceful drain ends an in-flight /stream at the next chunk boundary:
// Shutdown completes without waiting for the stream's full byte budget,
// and the client sees a clean (short) end of body.
func TestStreamEndsAtChunkBoundaryOnDrain(t *testing.T) {
	cfg := Config{
		Seed:         13,
		Algorithms:   []core.Algorithm{core.MICKEY},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 2048,
	}
	s, ts := newTestServer(t, cfg)

	resp, err := http.Get(ts.URL + "/stream?alg=mickey&n=16777216")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	head := make([]byte, 2048)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Keep consuming: the stream ends at the first chunk started after
	// draining flipped.
	total, _ := io.Copy(io.Discard, resp.Body)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain did not complete while a stream was open: %v", err)
	}
	if got := int64(len(head)) + total; got >= 16777216 {
		t.Fatalf("stream served its full %d-byte budget despite drain", got)
	}
}

// Satellite fix, table-driven: the per-request byte cap and MaxInflight
// admission control apply uniformly to /bytes (binary and hex) and every
// /stream mode — 413 over the cap, 429 + Retry-After over the in-flight
// budget.
func TestByteCapsAndAdmissionAcrossEndpoints(t *testing.T) {
	s, err := New(Config{
		Seed:         3,
		Algorithms:   []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024,
		MaxRequestBytes: 4096,
		MaxInflight:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var freeze atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookServing = func() {
		if !freeze.Load() {
			return
		}
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}
	ts := newHTTPTestServer(t, s)

	leaseID := lease{Alg: core.GRAIN, Domain: leaseDomainBase + 9, Segments: 4}.id()
	paths := []struct {
		name string
		path string // without n
	}{
		{"bytes binary", "/bytes?alg=grain"},
		{"bytes hex", "/bytes?alg=grain&hex=1"},
		{"stream pooled", "/stream?alg=grain"},
		{"stream addressed", "/stream?alg=grain&segment=0"},
		{"stream lease", "/stream?lease=" + leaseID},
	}

	for _, tc := range paths {
		t.Run(tc.name+"/over cap", func(t *testing.T) {
			status, _, _ := get(t, ts.URL+tc.path+"&n=4097")
			if status != http.StatusRequestEntityTooLarge {
				t.Fatalf("n over cap: status %d, want 413", status)
			}
		})
		t.Run(tc.name+"/at cap", func(t *testing.T) {
			status, body, _ := get(t, ts.URL+tc.path+"&n=4096")
			if status != http.StatusOK {
				t.Fatalf("n at cap: status %d, want 200", status)
			}
			wantLen := 4096
			if tc.name == "bytes hex" {
				wantLen = 2*4096 + 1 // hex + trailing newline
			}
			if len(body) != wantLen {
				t.Fatalf("n at cap: %d body bytes, want %d", len(body), wantLen)
			}
		})
	}

	// One frozen request holds the whole in-flight budget; every serving
	// path sheds with 429 + Retry-After.
	_, mbody, _ := get(t, ts.URL+"/metrics")
	rejectedBefore := metricValue(t, mbody, "bsrngd_admission_rejected_total")
	freeze.Store(true)
	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/bytes?alg=grain&n=64")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered

	for _, tc := range paths {
		t.Run(tc.name+"/admission", func(t *testing.T) {
			status, _, hdr := get(t, ts.URL+tc.path+"&n=64")
			if status != http.StatusTooManyRequests {
				t.Fatalf("over-budget request: status %d, want 429", status)
			}
			if hdr.Get("Retry-After") != "1" {
				t.Errorf("Retry-After = %q, want %q", hdr.Get("Retry-After"), "1")
			}
		})
	}

	close(release)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("frozen in-budget request: status %d, want 200", st)
	}
	_, mbody, _ = get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, "bsrngd_admission_rejected_total") - rejectedBefore; got != float64(len(paths)) {
		t.Errorf("admission_rejected_total grew by %v, want %d", got, len(paths))
	}
	if got := metricValue(t, mbody,
		`bsrngd_stream_requests_total{alg="grain",mode="pooled",status="429"}`); got != 1 {
		t.Errorf("pooled stream 429 count = %v, want 1", got)
	}
}

// Malformed /stream requests fail closed with specific statuses.
func TestStreamParamValidation(t *testing.T) {
	cfg := Config{
		Seed:         7,
		Algorithms:   []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024,
		MaxRequestBytes: 8192,
	}
	_, ts := newTestServer(t, cfg)
	lease2 := lease{Alg: core.GRAIN, Domain: leaseDomainBase + 1, Segments: 2}.id()

	cases := []struct {
		name string
		path string
		want int
	}{
		{"hex rejected", "/stream?alg=grain&hex=1", http.StatusBadRequest},
		{"zero n", "/stream?alg=grain&n=0", http.StatusBadRequest},
		{"negative n", "/stream?alg=grain&n=-5", http.StatusBadRequest},
		{"unknown alg", "/stream?alg=nope", http.StatusBadRequest},
		{"alg not served", "/stream?alg=mickey", http.StatusBadRequest},
		{"bad lanes", "/stream?alg=grain&segment=0&lanes=65", http.StatusBadRequest},
		{"non-numeric segment", "/stream?alg=grain&segment=abc", http.StatusBadRequest},
		{"segment too big", "/stream?alg=grain&segment=1099511627776", http.StatusBadRequest},
		{"non-numeric domain", "/stream?alg=grain&domain=x", http.StatusBadRequest},
		{"off too big", "/stream?alg=grain&segment=0&off=4503599627370496", http.StatusBadRequest},
		{"garbage lease token", "/stream?lease=%40%40%40", http.StatusBadRequest},
		{"lease alg contradiction", "/stream?lease=" + lease2 + "&alg=mickey", http.StatusBadRequest},
		{"lease off past window", "/stream?lease=" + lease2 + "&off=4096", http.StatusRequestedRangeNotSatisfiable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := get(t, ts.URL+tc.path)
			if status != tc.want {
				t.Fatalf("status %d, want %d (body: %s)", status, tc.want, body)
			}
		})
	}
}

// Acceptance: the steady-state /stream binary path allocates ~0 per
// chunk — the SegmentReader's aligned path fills the pooled chunk buffer
// in place and the chunk writer adds only atomic bookkeeping.
func TestStreamChunkSteadyStateAllocs(t *testing.T) {
	s, err := New(Config{
		Seed:         8,
		Algorithms:   []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	src, err := core.NewSegmentReader(core.GRAIN, 8, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, respBufBytes)
	cw := &chunkWriter{s: s, w: io.Discard, ctx: context.Background()}
	if _, err := streamCopy(cw, src, buf, int64(len(buf))); err != nil {
		t.Fatal(err)
	}
	// Each run serves one full 64 KiB chunk of the stream.
	if avg := testing.AllocsPerRun(20, func() {
		streamCopy(cw, src, buf, int64(len(buf)))
	}); avg > 0.5 {
		t.Fatalf("steady-state stream chunk allocates %.1f per chunk, want ~0", avg)
	}
}
