package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// newCheckoutPool builds a small health-off pool for checkout-path tests
// (no strike bookkeeping, so handback is a pure token return).
func newCheckoutPool(t *testing.T, shards int) *pool {
	t.Helper()
	p, err := newPool(poolConfig{
		alg: core.MICKEY, seed: 11, shards: shards, workers: 1, staging: 1024,
		healthOff: true, quarantineAfter: 3, probationSegments: 1,
		probationInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.close)
	return p
}

// Regression: a blocked checkout must wait for ANY shard, not for the
// round-robin cursor's shard. The original slow path parked on one
// specific shard's semaphore; with that shard held indefinitely and the
// other shard released, the waiter starved forever even though capacity
// was free. This test holds the cursor's shard and releases only the
// other one.
func TestCheckoutWaitsForAnyShard(t *testing.T) {
	p := newCheckoutPool(t, 2)
	ctx := context.Background()

	a, err := p.checkout(ctx) // cursor 0 -> shard 0
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.checkout(ctx) // cursor 1 -> shard 1
	if err != nil {
		t.Fatal(err)
	}

	// The waiter's cursor lands back on shard 0 (held by a for the whole
	// test) — under the old behavior it would camp there and time out.
	got := make(chan *shard, 1)
	errc := make(chan error, 1)
	go func() {
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		sh, err := p.checkout(wctx)
		if err != nil {
			errc <- err
			return
		}
		got <- sh
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block

	p.handback(b) // free ONLY the non-cursor shard; a stays held
	select {
	case sh := <-got:
		if sh != b {
			t.Fatalf("waiter got shard %d, want the released shard %d", sh.id, b.id)
		}
		p.handback(sh)
	case err := <-errc:
		t.Fatalf("blocked checkout failed: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("checkout starved behind a busy shard while another was idle")
	}
	p.handback(a)
}

// A storm of checkouts with tiny or already-expired deadlines, racing
// against release/reacquire churn, must neither leak nor duplicate a
// shard token. Runs under -race in CI.
func TestCheckoutCancellationStorm(t *testing.T) {
	p := newCheckoutPool(t, 2)
	ctx := context.Background()

	held := make([]*shard, 2)
	for i := range held {
		sh, err := p.checkout(ctx)
		if err != nil {
			t.Fatal(err)
		}
		held[i] = sh
	}

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, time.Duration(i%5)*time.Millisecond)
			defer cancel()
			sh, err := p.checkout(cctx)
			if err == nil {
				// Raced a release and legitimately won a token; return it.
				p.handback(sh)
				return
			}
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Errorf("storm checkout: unexpected error %v", err)
			}
		}(i)
	}

	// Churn tokens through the pool while the storm cancels around us.
	for i := 0; i < 50; i++ {
		p.handback(held[i%2])
		sh, err := p.checkout(ctx)
		if err != nil {
			t.Fatal(err)
		}
		held[i%2] = sh
	}
	wg.Wait()
	for _, sh := range held {
		p.handback(sh)
	}

	// No token leaked: the full shard set must be immediately acquirable.
	nctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var again []*shard
	for i := 0; i < 2; i++ {
		sh, err := p.checkout(nctx)
		if err != nil {
			t.Fatalf("shard token leaked during the storm: %v", err)
		}
		again = append(again, sh)
	}
	if again[0] == again[1] {
		t.Fatal("the same shard was handed out twice")
	}
	for _, sh := range again {
		p.handback(sh)
	}
}

// The full quarantine lifecycle at the pool layer, driven
// deterministically by the per-pool corruption failpoint: repeated
// striking checkouts eject the shard, checkout then blocks (the token
// is withheld), probation keeps failing while the fault is armed, and
// disarming lets rehabilitation reseed and re-admit a clean shard.
func TestPoolQuarantineLifecycle(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out")
	}
	t.Cleanup(faultinject.Reset)

	var quarantines, reseeds, readmits atomic.Int64
	p, err := newPool(poolConfig{
		alg: core.TRIVIUM, seed: 9, shards: 1, workers: 1, staging: 2048,
		quarantineAfter: 2, probationSegments: 2, probationInterval: time.Millisecond,
		onQuarantine: func() { quarantines.Add(1) },
		onReseed:     func() { reseeds.Add(1) },
		onReadmit:    func() { readmits.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.close)

	faultinject.ArmRange(p.fpCorrupt, 1, 1<<40) // corrupt every produced segment
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	buf := make([]byte, core.SegmentBytes)
	var seen uint64
	for quarantines.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard never quarantined under sustained corruption")
		}
		sh, err := p.checkout(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// Hold the shard and read from it (reads drive production) until
		// its stream has tripped NEW failures, so this checkout counts as
		// a strike at handback.
		for sh.stream.Load().Stats().HealthFailures <= seen {
			if time.Now().After(deadline) {
				t.Fatal("corrupted stream never recorded a health failure")
			}
			if _, err := sh.stream.Load().Read(buf); err != nil {
				t.Fatal(err)
			}
		}
		seen = sh.stream.Load().Stats().HealthFailures
		p.handback(sh)
	}
	if got := quarantines.Load(); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}
	if got := p.quarantinedCount.Load(); got != 1 {
		t.Fatalf("quarantinedCount = %d, want 1", got)
	}
	if !p.fullyQuarantined() {
		t.Fatal("single-shard pool not reported fully quarantined")
	}

	// The token is withheld: checkout must time out, and probation cannot
	// pass while every probation segment is corrupted too.
	sctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	if _, err := p.checkout(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("checkout of a fully quarantined pool: %v, want deadline exceeded", err)
	}
	cancel()
	if got := readmits.Load(); got != 0 {
		t.Fatalf("shard re-admitted while corruption still armed (%d readmits)", got)
	}

	// Heal the fault; rehabilitation must reseed and re-admit.
	faultinject.Disarm(p.fpCorrupt)
	rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	sh, err := p.checkout(rctx)
	if err != nil {
		t.Fatalf("pool never recovered after the fault healed: %v", err)
	}
	if readmits.Load() != 1 || reseeds.Load() < 1 {
		t.Fatalf("readmits=%d reseeds=%d, want 1 readmit and ≥1 reseed",
			readmits.Load(), reseeds.Load())
	}
	if p.quarantinedCount.Load() != 0 || p.fullyQuarantined() {
		t.Fatal("pool still reports quarantine after re-admission")
	}
	if st := sh.stream.Load().Stats(); st.HealthFailures != 0 || st.HealthUnrecovered != 0 {
		t.Fatalf("rehabilitated shard carries old failures: %+v", st)
	}
	p.handback(sh)
}
