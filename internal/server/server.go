// Package server is bsrngd's serving layer: an HTTP front end over a
// sharded pool of deterministic core.Stream worker pools — the paper's
// bitsliced engines operated as a bulk entropy service. Each algorithm
// gets its own shard set; requests check a shard out (round-robin),
// stream bytes from it, and return it. Everything is instrumented
// through internal/metrics and exposed on /metrics.
//
// Every shard stream runs the continuous online health tests of
// internal/health against each produced segment. A shard whose stream
// trips repeated failures is quarantined: ejected from rotation,
// reseeded in the background, re-admitted only after a clean probation
// pass. /healthz degrades to 503 while any algorithm's pool is fully
// quarantined, and optional admission control (MaxInflight) sheds load
// with 429 + Retry-After while the pool is shrunk.
//
// Endpoints:
//
//	GET /bytes?alg=mickey&n=1024[&hex=1]  — n pseudo-random bytes
//	GET /stream?alg=&n=                   — chunked streaming delivery,
//	                                        flushed per chunk; addressed
//	                                        mode via segment=/domain=/
//	                                        off=/lanes=, resumable lease
//	                                        mode via lease=&off=
//	POST /lease?alg=&segments=            — issue a segment lease (a
//	                                        stateless token over the
//	                                        deterministic address space)
//	GET /lease/{id}                       — resolve a lease token
//	GET /healthz                          — per-algorithm pool state as
//	                                        JSON; 200 ok / 503 degraded
//	                                        or draining
//	GET /metrics                          — text exposition
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
)

// Config tunes the service; zero values select the documented defaults.
type Config struct {
	// Seed is the deterministic base seed. Shard 0 of every algorithm
	// serves exactly the byte stream of core.NewStream(alg, Seed, ...).
	Seed uint64
	// Algorithms to serve; nil means all four engines.
	Algorithms []core.Algorithm
	// ShardsPerAlg is the number of independent streams per algorithm
	// (default 2). More shards = more concurrent /bytes requests per
	// algorithm before checkout blocks.
	ShardsPerAlg int
	// WorkersPerShard is the core.Stream worker count per shard
	// (default: NumCPU spread evenly over all shards, min 1).
	WorkersPerShard int
	// StagingBytes is the per-worker chunk size (default 64 KiB).
	StagingBytes int
	// Lanes is the engine datapath width for every shard stream (default
	// core.DefaultLanes; see core.SupportedLanes). The served bytes are
	// identical at every width.
	Lanes int
	// MaxRequestBytes caps n on /bytes (default 16 MiB).
	MaxRequestBytes int64
	// RequestTimeout bounds shard checkout + generation (default 30s).
	RequestTimeout time.Duration
	// MaxInflight caps concurrent requests across /bytes and /stream;
	// excess requests get 429 with a Retry-After header instead of
	// queueing on checkout. A long-lived /stream holds one slot for its
	// whole duration. 0 disables admission control.
	MaxInflight int
	// MaxLeaseSegments caps the window of one segment lease (default
	// 65536 segments = 128 MiB; also the default window when POST /lease
	// names no size).
	MaxLeaseSegments int
	// DisableHealth turns off the continuous online health tests (and
	// with them shard quarantine). They are ON by default: healthy
	// engines never trip the cutoffs, so the served bytes are unchanged.
	DisableHealth bool
	// Health overrides the per-test cutoffs (zero fields = defaults;
	// see health.Config).
	Health health.Config
	// QuarantineAfter is the number of consecutive checkouts observing
	// new health failures before a shard is quarantined (default 3).
	QuarantineAfter int
	// ProbationSegments is the number of clean segments a reseeded
	// shard must produce before re-admission (default 4).
	ProbationSegments int
	// ProbationInterval is the delay between failed probation attempts
	// (default 1s).
	ProbationInterval time.Duration
}

// Server owns the shard pools, the metrics registry and the HTTP mux.
type Server struct {
	cfg   Config
	pools map[core.Algorithm]*pool
	reg   *metrics.Registry
	mux   *http.ServeMux

	mu       sync.RWMutex // guards draining against inflight.Add
	draining bool
	inflight sync.WaitGroup

	bytesServed   *metrics.Counter
	requests      *metrics.LabeledCounter
	checkoutLat   *metrics.Histogram
	streamsActive *metrics.Gauge
	shardsBusy    *metrics.Gauge

	streamRequests    *metrics.LabeledCounter
	streamBytes       *metrics.Counter
	streamChunks      *metrics.Counter
	streamOpen        *metrics.Gauge
	streamDisconnects *metrics.Counter
	leaseRequests     *metrics.LabeledCounter
	leasesIssued      *metrics.Counter
	leaseStreams      *metrics.Counter
	leaseCounter      atomic.Uint64

	inflightNow       atomic.Int64
	healthFailures    *metrics.LabeledCounter
	healthQuarantines *metrics.LabeledCounter
	healthReseeds     *metrics.LabeledCounter
	healthReadmits    *metrics.LabeledCounter
	healthQuarantined *metrics.LabeledGauge
	admissionRejected *metrics.Counter

	// respBufs recycles the per-request staging buffer of the hex
	// response path (the binary path streams shard chunks zero-copy via
	// WriteTo and needs no buffer). Get returns nil on a cold pool.
	respBufs      sync.Pool
	respBufReused *metrics.Counter

	// testHookServing, when set, runs while a /bytes request holds its
	// shard — it lets tests freeze a request in flight.
	testHookServing func()
}

// New builds the pools and registers the metric set.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithms == nil {
		cfg.Algorithms = core.ServedAlgorithms
	}
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("server: no algorithms configured")
	}
	if cfg.ShardsPerAlg == 0 {
		cfg.ShardsPerAlg = 2
	}
	if cfg.ShardsPerAlg < 1 {
		return nil, fmt.Errorf("server: shards per algorithm %d out of range", cfg.ShardsPerAlg)
	}
	if cfg.WorkersPerShard == 0 {
		cfg.WorkersPerShard = runtime.NumCPU() / (len(cfg.Algorithms) * cfg.ShardsPerAlg)
		if cfg.WorkersPerShard < 1 {
			cfg.WorkersPerShard = 1
		}
	}
	if cfg.MaxRequestBytes == 0 {
		cfg.MaxRequestBytes = 16 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("server: max in-flight %d out of range", cfg.MaxInflight)
	}
	if cfg.MaxLeaseSegments == 0 {
		cfg.MaxLeaseSegments = 65536
	}
	if cfg.MaxLeaseSegments < 1 || uint64(cfg.MaxLeaseSegments) > maxLeaseSegmentsHard {
		return nil, fmt.Errorf("server: max lease segments %d out of range", cfg.MaxLeaseSegments)
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.QuarantineAfter < 1 {
		return nil, fmt.Errorf("server: quarantine-after %d out of range", cfg.QuarantineAfter)
	}
	if cfg.ProbationSegments == 0 {
		cfg.ProbationSegments = 4
	}
	if cfg.ProbationSegments < 1 {
		return nil, fmt.Errorf("server: probation segments %d out of range", cfg.ProbationSegments)
	}
	if cfg.ProbationInterval == 0 {
		cfg.ProbationInterval = time.Second
	}

	s := &Server{
		cfg:   cfg,
		pools: make(map[core.Algorithm]*pool, len(cfg.Algorithms)),
		reg:   metrics.NewRegistry(),
		mux:   http.NewServeMux(),
	}
	s.bytesServed = s.reg.NewCounter("bsrngd_bytes_served_total",
		"Random bytes delivered to clients.")
	s.requests = s.reg.NewLabeledCounter("bsrngd_requests_total",
		"Requests to /bytes by algorithm and HTTP status.", "alg", "status")
	s.checkoutLat = s.reg.NewHistogram("bsrngd_shard_checkout_seconds",
		"Time spent acquiring a stream shard.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	s.streamsActive = s.reg.NewGauge("bsrngd_streams_active",
		"Live core.Stream pools (shards) across all algorithms.")
	s.shardsBusy = s.reg.NewGauge("bsrngd_shards_busy",
		"Shards currently checked out by requests.")
	s.healthFailures = s.reg.NewLabeledCounter("bsrngd_health_failures_total",
		"Segments condemned by the continuous online health tests, by algorithm and test.",
		"alg", "test")
	s.healthQuarantines = s.reg.NewLabeledCounter("bsrngd_health_quarantines_total",
		"Shards ejected from rotation after repeated health failures.", "alg")
	s.healthReseeds = s.reg.NewLabeledCounter("bsrngd_health_reseeds_total",
		"Background shard stream reseeds attempted during rehabilitation.", "alg")
	s.healthReadmits = s.reg.NewLabeledCounter("bsrngd_health_readmits_total",
		"Quarantined shards re-admitted after a clean probation pass.", "alg")
	s.healthQuarantined = s.reg.NewLabeledGauge("bsrngd_health_quarantined_shards",
		"Shards currently quarantined.", "alg")
	s.admissionRejected = s.reg.NewCounter("bsrngd_admission_rejected_total",
		"Requests shed with 429 by MaxInflight admission control.")
	s.streamRequests = s.reg.NewLabeledCounter("bsrngd_stream_requests_total",
		"Requests to /stream by algorithm, mode (pooled, addressed, lease) and HTTP status.",
		"alg", "mode", "status")
	s.streamBytes = s.reg.NewCounter("bsrngd_stream_bytes_total",
		"Bytes delivered over /stream responses.")
	s.streamChunks = s.reg.NewCounter("bsrngd_stream_chunks_flushed_total",
		"Chunks written and flushed on /stream responses.")
	s.streamOpen = s.reg.NewGauge("bsrngd_stream_open",
		"Currently open /stream responses.")
	s.streamDisconnects = s.reg.NewCounter("bsrngd_stream_disconnects_total",
		"Streams ended before their byte budget: client disconnect, drain or pool shutdown.")
	s.leaseRequests = s.reg.NewLabeledCounter("bsrngd_lease_requests_total",
		"Requests to the lease endpoints by algorithm and HTTP status.", "alg", "status")
	s.leasesIssued = s.reg.NewCounter("bsrngd_leases_issued_total",
		"Segment leases issued by POST /lease.")
	s.leaseStreams = s.reg.NewCounter("bsrngd_lease_streams_total",
		"Stream requests addressed through a lease token.")
	s.respBufReused = s.reg.NewCounter("bsrngd_response_buffers_reused_total",
		"Per-request response buffers reused from the pool instead of freshly allocated.")
	s.reg.NewGaugeFunc("bsrngd_inflight_requests",
		"Concurrent /bytes requests currently being served.",
		func() float64 { return float64(s.inflightNow.Load()) })

	for _, alg := range cfg.Algorithms {
		if _, dup := s.pools[alg]; dup {
			return nil, fmt.Errorf("server: algorithm %v configured twice", alg)
		}
		algL := alg.String()
		s.healthQuarantined.With(algL).Set(0)
		p, err := newPool(poolConfig{
			alg:               alg,
			seed:              cfg.Seed,
			shards:            cfg.ShardsPerAlg,
			workers:           cfg.WorkersPerShard,
			staging:           cfg.StagingBytes,
			lanes:             cfg.Lanes,
			healthOff:         cfg.DisableHealth,
			healthCfg:         cfg.Health,
			quarantineAfter:   cfg.QuarantineAfter,
			probationSegments: cfg.ProbationSegments,
			probationInterval: cfg.ProbationInterval,
			onFailure:         func(test string) { s.healthFailures.With(algL, test).Inc() },
			onQuarantine: func() {
				s.healthQuarantines.With(algL).Inc()
				s.healthQuarantined.With(algL).Add(1)
			},
			onReseed: func() { s.healthReseeds.With(algL).Inc() },
			onReadmit: func() {
				s.healthReadmits.With(algL).Inc()
				s.healthQuarantined.With(algL).Add(-1)
			},
		})
		if err != nil {
			s.closePools()
			return nil, err
		}
		s.pools[alg] = p
	}
	s.streamsActive.Set(int64(len(cfg.Algorithms) * cfg.ShardsPerAlg))
	s.reg.NewGaugeFunc("bsrngd_engine_chunks_produced_total",
		"Staging chunks produced by stream workers, summed over shards.",
		func() float64 { return float64(s.poolStats().ChunksProduced) })
	s.reg.NewGaugeFunc("bsrngd_engine_bytes_delivered_total",
		"Bytes delivered by stream Read, summed over shards.",
		func() float64 { return float64(s.poolStats().BytesDelivered) })
	s.reg.NewGaugeFunc("bsrngd_engine_recycle_hits_total",
		"Staging buffers recycled from the free list, summed over shards.",
		func() float64 { return float64(s.poolStats().RecycleHits) })
	s.reg.NewGaugeFunc("bsrngd_health_segments_checked_total",
		"Segments evaluated by the continuous health tests across all pools.",
		func() float64 {
			var sum uint64
			for _, p := range s.pools {
				sum += p.healthSnapshot().SegmentsChecked
			}
			return float64(sum)
		})
	s.reg.NewGaugeFunc("bsrngd_health_engine_reseeds_total",
		"In-stream engine reseeds triggered by condemned segments, summed over shards.",
		func() float64 { return float64(s.poolStats().EngineReseeds) })

	s.mux.HandleFunc("GET /bytes", s.handleBytes)
	s.mux.HandleFunc("GET /stream", s.handleStream)
	s.mux.HandleFunc("POST /lease", s.handleLeaseCreate)
	s.mux.HandleFunc("GET /lease/{id}", s.handleLeaseGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) poolStats() core.StreamStats {
	var sum core.StreamStats
	for _, p := range s.pools {
		st := p.stats()
		sum.ChunksProduced += st.ChunksProduced
		sum.BytesDelivered += st.BytesDelivered
		sum.RecycleHits += st.RecycleHits
	}
	return sum
}

// enter registers an in-flight request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Shutdown drains the service: new /bytes and /healthz requests get
// 503, in-flight requests run to completion, then the stream pools are
// closed. If ctx expires first the pools are closed anyway, cutting
// stragglers short (their stream reads return core.ErrClosed), and the
// context error is returned. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	//bsrng:lint-ignore goroutine-hygiene WaitGroup-to-channel adapter: Wait cannot select, and the goroutine's lifetime is bounded by the in-flight requests Shutdown is draining
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closePools()
	s.streamsActive.Set(0)
	return err
}

func (s *Server) closePools() {
	for _, p := range s.pools {
		p.close()
	}
}

// healthzResponse is the /healthz document: overall status plus the
// per-algorithm pool state.
type healthzResponse struct {
	// Status is "ok", "degraded" (some algorithm's pool is fully
	// quarantined) or "draining" (shutdown in progress). The non-ok
	// states respond 503.
	Status string                `json:"status"`
	Pools  map[string]poolHealth `json:"pools"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()

	resp := healthzResponse{Status: "ok", Pools: make(map[string]poolHealth, len(s.pools))}
	for alg, p := range s.pools {
		resp.Pools[alg.String()] = p.healthSnapshot()
		if p.fullyQuarantined() {
			resp.Status = "degraded"
		}
	}
	if draining {
		resp.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if resp.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// fail records and writes an error response for /bytes.
func (s *Server) fail(w http.ResponseWriter, algLabel string, status int, msg string) {
	s.requests.With(algLabel, strconv.Itoa(status)).Inc()
	http.Error(w, msg, status)
}

func (s *Server) handleBytes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	algName := q.Get("alg")
	if algName == "" {
		algName = "mickey"
	}
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		s.fail(w, "invalid", http.StatusBadRequest, err.Error())
		return
	}
	p, ok := s.pools[alg]
	if !ok {
		s.fail(w, alg.String(), http.StatusBadRequest,
			fmt.Sprintf("algorithm %v not served", alg))
		return
	}
	n := int64(32)
	if v := q.Get("n"); v != "" {
		n, err = strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			s.fail(w, alg.String(), http.StatusBadRequest, "n must be a positive integer")
			return
		}
	}
	if n > s.cfg.MaxRequestBytes {
		s.fail(w, alg.String(), http.StatusRequestEntityTooLarge,
			fmt.Sprintf("n exceeds per-request cap %d", s.cfg.MaxRequestBytes))
		return
	}
	useHex := false
	if v := q.Get("hex"); v != "" && v != "0" && v != "false" {
		useHex = true
	}

	if !s.enter() {
		s.fail(w, alg.String(), http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.inflight.Done()

	// Admission control: when the configured in-flight budget is spent
	// (e.g. a quarantine shrank the pool under sustained load), shed the
	// request immediately instead of piling it onto checkout.
	n2 := s.inflightNow.Add(1)
	defer s.inflightNow.Add(-1)
	if s.cfg.MaxInflight > 0 && n2 > int64(s.cfg.MaxInflight) {
		s.admissionRejected.Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, alg.String(), http.StatusTooManyRequests,
			fmt.Sprintf("server at max in-flight requests (%d)", s.cfg.MaxInflight))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	t0 := time.Now()
	sh, err := p.checkout(ctx)
	s.checkoutLat.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.fail(w, alg.String(), http.StatusServiceUnavailable, "all shards busy")
		return
	}
	st := sh.stream.Load()
	s.shardsBusy.Add(1)
	defer func() {
		p.handback(sh)
		s.shardsBusy.Add(-1)
	}()
	if s.testHookServing != nil {
		s.testHookServing()
	}

	if useHex {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	}
	w.Header().Set("X-Bsrng-Algorithm", alg.String())
	w.Header().Set("X-Bsrng-Shard", strconv.Itoa(sh.id))

	var served int64
	if useHex {
		served = s.serveHex(w, st, n)
		fmt.Fprintln(w)
	} else {
		// Bulk path: the shard stream writes its staging chunks straight
		// to the response — no per-request buffer, each byte copied once
		// (chunk → ResponseWriter). The limit writer truncates the final
		// chunk so the shard's stream cursor advances by exactly n and
		// the next request resumes the deterministic stream mid-chunk.
		lw := &limitedWriter{w: w, n: n}
		served, err = st.WriteTo(lw)
		_ = err // budget spent, client gone, or stream closed: served says how far we got
	}
	s.bytesServed.Add(uint64(served))
	s.requests.With(alg.String(), strconv.Itoa(http.StatusOK)).Inc()
}

// respBufBytes is the hex path's per-request staging buffer size.
const respBufBytes = 64 << 10

// getRespBuf checks a response buffer out of the pool, counting reuse.
func (s *Server) getRespBuf() []byte {
	if b, ok := s.respBufs.Get().(*[]byte); ok {
		s.respBufReused.Inc()
		return *b
	}
	return make([]byte, respBufBytes)
}

// serveHex streams n bytes hex-encoded through a pooled buffer.
func (s *Server) serveHex(w http.ResponseWriter, st *core.Stream, n int64) int64 {
	buf := s.getRespBuf()
	defer s.respBufs.Put(&buf)
	enc := hex.NewEncoder(w)
	var served int64
	for served < n {
		k := int64(len(buf))
		if k > n-served {
			k = n - served
		}
		if _, err := st.Read(buf[:k]); err != nil {
			break // stream closed under us (forced shutdown); stop short
		}
		if _, err := enc.Write(buf[:k]); err != nil {
			break // client went away
		}
		served += k
	}
	return served
}

// errResponseFull marks a response whose byte budget has been spent; it
// stops Stream.WriteTo after exactly the requested count.
var errResponseFull = errors.New("server: response budget spent")

// limitedWriter forwards to w until n bytes have been written, then
// fails with errResponseFull. An oversized write is truncated to the
// remaining budget, so the source's cursor advances by exactly the
// bytes the response consumed.
type limitedWriter struct {
	w io.Writer
	n int64
}

func (lw *limitedWriter) Write(p []byte) (int, error) {
	if lw.n <= 0 {
		return 0, errResponseFull
	}
	trunc := false
	if int64(len(p)) > lw.n {
		p = p[:lw.n]
		trunc = true
	}
	k, err := lw.w.Write(p)
	lw.n -= int64(k)
	if err == nil && (trunc || lw.n == 0) {
		err = errResponseFull
	}
	return k, err
}
