// Package server is bsrngd's serving layer: an HTTP front end over a
// sharded pool of deterministic core.Stream worker pools — the paper's
// bitsliced engines operated as a bulk entropy service. Each algorithm
// gets its own shard set; requests check a shard out (round-robin),
// stream bytes from it, and return it. Everything is instrumented
// through internal/metrics and exposed on /metrics.
//
// Endpoints:
//
//	GET /bytes?alg=mickey&n=1024[&hex=1]  — n pseudo-random bytes
//	GET /healthz                          — 200 ok / 503 draining
//	GET /metrics                          — text exposition
package server

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Config tunes the service; zero values select the documented defaults.
type Config struct {
	// Seed is the deterministic base seed. Shard 0 of every algorithm
	// serves exactly the byte stream of core.NewStream(alg, Seed, ...).
	Seed uint64
	// Algorithms to serve; nil means all four engines.
	Algorithms []core.Algorithm
	// ShardsPerAlg is the number of independent streams per algorithm
	// (default 2). More shards = more concurrent /bytes requests per
	// algorithm before checkout blocks.
	ShardsPerAlg int
	// WorkersPerShard is the core.Stream worker count per shard
	// (default: NumCPU spread evenly over all shards, min 1).
	WorkersPerShard int
	// StagingBytes is the per-worker chunk size (default 64 KiB).
	StagingBytes int
	// Lanes is the engine datapath width for every shard stream (default
	// core.DefaultLanes; see core.SupportedLanes). The served bytes are
	// identical at every width.
	Lanes int
	// MaxRequestBytes caps n on /bytes (default 16 MiB).
	MaxRequestBytes int64
	// RequestTimeout bounds shard checkout + generation (default 30s).
	RequestTimeout time.Duration
}

// Server owns the shard pools, the metrics registry and the HTTP mux.
type Server struct {
	cfg   Config
	pools map[core.Algorithm]*pool
	reg   *metrics.Registry
	mux   *http.ServeMux

	mu       sync.RWMutex // guards draining against inflight.Add
	draining bool
	inflight sync.WaitGroup

	bytesServed   *metrics.Counter
	requests      *metrics.LabeledCounter
	checkoutLat   *metrics.Histogram
	streamsActive *metrics.Gauge
	shardsBusy    *metrics.Gauge

	// testHookServing, when set, runs while a /bytes request holds its
	// shard — it lets tests freeze a request in flight.
	testHookServing func()
}

// New builds the pools and registers the metric set.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithms == nil {
		cfg.Algorithms = core.Algorithms
	}
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("server: no algorithms configured")
	}
	if cfg.ShardsPerAlg == 0 {
		cfg.ShardsPerAlg = 2
	}
	if cfg.ShardsPerAlg < 1 {
		return nil, fmt.Errorf("server: shards per algorithm %d out of range", cfg.ShardsPerAlg)
	}
	if cfg.WorkersPerShard == 0 {
		cfg.WorkersPerShard = runtime.NumCPU() / (len(cfg.Algorithms) * cfg.ShardsPerAlg)
		if cfg.WorkersPerShard < 1 {
			cfg.WorkersPerShard = 1
		}
	}
	if cfg.MaxRequestBytes == 0 {
		cfg.MaxRequestBytes = 16 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}

	s := &Server{
		cfg:   cfg,
		pools: make(map[core.Algorithm]*pool, len(cfg.Algorithms)),
		reg:   metrics.NewRegistry(),
		mux:   http.NewServeMux(),
	}
	s.bytesServed = s.reg.NewCounter("bytes_served_total",
		"Random bytes delivered to clients.")
	s.requests = s.reg.NewLabeledCounter("requests_total",
		"Requests to /bytes by algorithm and HTTP status.", "alg", "status")
	s.checkoutLat = s.reg.NewHistogram("shard_checkout_seconds",
		"Time spent acquiring a stream shard.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	s.streamsActive = s.reg.NewGauge("streams_active",
		"Live core.Stream pools (shards) across all algorithms.")
	s.shardsBusy = s.reg.NewGauge("shards_busy",
		"Shards currently checked out by requests.")

	for _, alg := range cfg.Algorithms {
		if _, dup := s.pools[alg]; dup {
			return nil, fmt.Errorf("server: algorithm %v configured twice", alg)
		}
		p, err := newPool(alg, cfg.Seed, cfg.ShardsPerAlg, cfg.WorkersPerShard, cfg.StagingBytes, cfg.Lanes)
		if err != nil {
			s.closePools()
			return nil, err
		}
		s.pools[alg] = p
	}
	s.streamsActive.Set(int64(len(cfg.Algorithms) * cfg.ShardsPerAlg))
	s.reg.NewGaugeFunc("engine_chunks_produced_total",
		"Staging chunks produced by stream workers, summed over shards.",
		func() float64 { return float64(s.poolStats().ChunksProduced) })
	s.reg.NewGaugeFunc("engine_bytes_delivered_total",
		"Bytes delivered by stream Read, summed over shards.",
		func() float64 { return float64(s.poolStats().BytesDelivered) })
	s.reg.NewGaugeFunc("engine_recycle_hits_total",
		"Staging buffers recycled from the free list, summed over shards.",
		func() float64 { return float64(s.poolStats().RecycleHits) })

	s.mux.HandleFunc("GET /bytes", s.handleBytes)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) poolStats() core.StreamStats {
	var sum core.StreamStats
	for _, p := range s.pools {
		st := p.stats()
		sum.ChunksProduced += st.ChunksProduced
		sum.BytesDelivered += st.BytesDelivered
		sum.RecycleHits += st.RecycleHits
	}
	return sum
}

// enter registers an in-flight request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Shutdown drains the service: new /bytes and /healthz requests get
// 503, in-flight requests run to completion, then the stream pools are
// closed. If ctx expires first the pools are closed anyway, cutting
// stragglers short (their stream reads return core.ErrClosed), and the
// context error is returned. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closePools()
	s.streamsActive.Set(0)
	return err
}

func (s *Server) closePools() {
	for _, p := range s.pools {
		p.close()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// fail records and writes an error response for /bytes.
func (s *Server) fail(w http.ResponseWriter, algLabel string, status int, msg string) {
	s.requests.With(algLabel, strconv.Itoa(status)).Inc()
	http.Error(w, msg, status)
}

func (s *Server) handleBytes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	algName := q.Get("alg")
	if algName == "" {
		algName = "mickey"
	}
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		s.fail(w, "invalid", http.StatusBadRequest, err.Error())
		return
	}
	p, ok := s.pools[alg]
	if !ok {
		s.fail(w, alg.String(), http.StatusBadRequest,
			fmt.Sprintf("algorithm %v not served", alg))
		return
	}
	n := int64(32)
	if v := q.Get("n"); v != "" {
		n, err = strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			s.fail(w, alg.String(), http.StatusBadRequest, "n must be a positive integer")
			return
		}
	}
	if n > s.cfg.MaxRequestBytes {
		s.fail(w, alg.String(), http.StatusRequestEntityTooLarge,
			fmt.Sprintf("n exceeds per-request cap %d", s.cfg.MaxRequestBytes))
		return
	}
	useHex := false
	if v := q.Get("hex"); v != "" && v != "0" && v != "false" {
		useHex = true
	}

	if !s.enter() {
		s.fail(w, alg.String(), http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.inflight.Done()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	t0 := time.Now()
	sh, err := p.checkout(ctx)
	s.checkoutLat.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.fail(w, alg.String(), http.StatusServiceUnavailable, "all shards busy")
		return
	}
	s.shardsBusy.Add(1)
	defer func() {
		sh.release()
		s.shardsBusy.Add(-1)
	}()
	if s.testHookServing != nil {
		s.testHookServing()
	}

	if useHex {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	}
	w.Header().Set("X-Bsrng-Algorithm", alg.String())
	w.Header().Set("X-Bsrng-Shard", strconv.Itoa(sh.id))

	buf := make([]byte, 64<<10)
	var served int64
	for served < n {
		k := int64(len(buf))
		if k > n-served {
			k = n - served
		}
		if _, err := sh.stream.Read(buf[:k]); err != nil {
			break // stream closed under us (forced shutdown); stop short
		}
		var werr error
		if useHex {
			_, werr = fmt.Fprint(w, hex.EncodeToString(buf[:k]))
		} else {
			_, werr = w.Write(buf[:k])
		}
		if werr != nil {
			break // client went away
		}
		served += k
	}
	if useHex {
		fmt.Fprintln(w)
	}
	s.bytesServed.Add(uint64(served))
	s.requests.With(alg.String(), strconv.Itoa(http.StatusOK)).Inc()
}
