package server

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Segment leases pin a client to a deterministic window of the
// (seed, domain, segment) address space. A lease is not server state:
// the id is a self-describing token encoding (algorithm, domain, start
// segment, segment count), so GET /lease/{id} and /stream?lease= keep
// working across daemon restarts and on any replica sharing the seed —
// and anyone holding the seed can regenerate the leased window with
// core.NewSegmentReader and verify any sub-range byte-for-byte.
//
// POST /lease allocates each lease its own domain from a reserved range
// far above the shard-worker domains, starting at segment 0, so leased
// streams never overlap the pooled /bytes /stream traffic. Allocation
// is a boot-local counter: after a restart new leases reuse domains
// (deterministically — the bytes are the same), while previously issued
// tokens stay valid forever.

const (
	// leaseDomainBase separates lease domains from stream-worker domains
	// (small integers: worker w serves domain w+1).
	leaseDomainBase = uint64(1) << 32
	// maxLeaseStartSegment bounds start segments (and /stream segment=)
	// so offset arithmetic stays far from uint64 wrap.
	maxLeaseStartSegment = uint64(1) << 40
	// maxLeaseSegmentsHard is the absolute per-lease segment bound;
	// Config.MaxLeaseSegments tightens it.
	maxLeaseSegmentsHard = uint64(1) << 30
	// leaseTokenVersion prefixes every encoded token.
	leaseTokenVersion = "1"
)

// maxAddressableBytes bounds client-supplied byte offsets.
const maxAddressableBytes = uint64(1) << 52

// lease is the decoded form of a lease token.
type lease struct {
	Alg          core.Algorithm
	Domain       uint64
	StartSegment uint64
	Segments     uint64
}

// Lease is the exported view of a decoded lease token. Tokens are pure
// capabilities over the deterministic (alg, domain, segment) address
// space — no server state — so any tier holding a token can derive
// where its window lives; internal/cluster's router uses this to route
// lease traffic to the owning node.
type Lease struct {
	Alg          core.Algorithm
	Domain       uint64
	StartSegment uint64
	Segments     uint64
}

// Bytes is the lease window size in bytes.
func (l Lease) Bytes() uint64 { return l.Segments * core.SegmentBytes }

// DecodeLeaseToken parses and validates a lease token without touching
// any server: the inverse of the encoding POST /lease hands out.
func DecodeLeaseToken(id string) (Lease, error) {
	l, err := decodeLease(id)
	if err != nil {
		return Lease{}, err
	}
	return Lease{Alg: l.Alg, Domain: l.Domain, StartSegment: l.StartSegment, Segments: l.Segments}, nil
}

// bytes is the lease window size.
func (l lease) bytes() uint64 { return l.Segments * core.SegmentBytes }

// id encodes the lease as a URL-safe, self-describing token.
func (l lease) id() string {
	raw := fmt.Sprintf("%s|%s|%d|%d|%d",
		leaseTokenVersion, l.Alg, l.Domain, l.StartSegment, l.Segments)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeLease parses and validates a lease token.
func decodeLease(id string) (lease, error) {
	raw, err := base64.RawURLEncoding.DecodeString(id)
	if err != nil {
		return lease{}, fmt.Errorf("not base64url: %w", err)
	}
	parts := strings.Split(string(raw), "|")
	if len(parts) != 5 || parts[0] != leaseTokenVersion {
		return lease{}, fmt.Errorf("want 5 fields of version %s", leaseTokenVersion)
	}
	alg, err := core.ParseAlgorithm(parts[1])
	if err != nil {
		return lease{}, err
	}
	domain, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return lease{}, fmt.Errorf("bad domain: %w", err)
	}
	start, err := strconv.ParseUint(parts[3], 10, 64)
	if err != nil || start >= maxLeaseStartSegment {
		return lease{}, fmt.Errorf("bad start segment %q", parts[3])
	}
	segs, err := strconv.ParseUint(parts[4], 10, 64)
	if err != nil || segs == 0 || segs > maxLeaseSegmentsHard {
		return lease{}, fmt.Errorf("bad segment count %q", parts[4])
	}
	return lease{Alg: alg, Domain: domain, StartSegment: start, Segments: segs}, nil
}

// leaseDoc is the JSON view of a lease returned by the lease endpoints.
type leaseDoc struct {
	ID           string `json:"id"`
	Algorithm    string `json:"alg"`
	Domain       uint64 `json:"domain"`
	StartSegment uint64 `json:"start_segment"`
	Segments     uint64 `json:"segments"`
	SegmentBytes int    `json:"segment_bytes"`
	Bytes        uint64 `json:"bytes"`
	// StreamPath is a ready-made resume URL: append &off=<bytes already
	// consumed> after a disconnect.
	StreamPath string `json:"stream_path"`
}

func (s *Server) leaseDoc(l lease) leaseDoc {
	id := l.id()
	return leaseDoc{
		ID:           id,
		Algorithm:    l.Alg.String(),
		Domain:       l.Domain,
		StartSegment: l.StartSegment,
		Segments:     l.Segments,
		SegmentBytes: core.SegmentBytes,
		Bytes:        l.bytes(),
		StreamPath:   "/stream?lease=" + url.QueryEscape(id),
	}
}

func writeLease(w http.ResponseWriter, status int, doc leaseDoc) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleLeaseCreate allocates a fresh lease: POST /lease?alg=&segments=.
func (s *Server) handleLeaseCreate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	alg, herr := s.parseAlg(q.Get("alg"))
	if herr != nil {
		s.leaseRequests.With("invalid", strconv.Itoa(herr.status)).Inc()
		http.Error(w, herr.msg, herr.status)
		return
	}
	segs := uint64(s.cfg.MaxLeaseSegments)
	if v := q.Get("segments"); v != "" {
		var err error
		segs, err = strconv.ParseUint(v, 10, 64)
		if err != nil || segs == 0 {
			s.leaseRequests.With(alg.String(), strconv.Itoa(http.StatusBadRequest)).Inc()
			http.Error(w, "segments must be a positive integer", http.StatusBadRequest)
			return
		}
		if segs > uint64(s.cfg.MaxLeaseSegments) {
			s.leaseRequests.With(alg.String(), strconv.Itoa(http.StatusRequestEntityTooLarge)).Inc()
			http.Error(w, fmt.Sprintf("segments exceeds per-lease cap %d", s.cfg.MaxLeaseSegments),
				http.StatusRequestEntityTooLarge)
			return
		}
	}
	l := lease{
		Alg:      alg,
		Domain:   leaseDomainBase + s.leaseCounter.Add(1),
		Segments: segs,
	}
	s.leasesIssued.Inc()
	s.leaseRequests.With(alg.String(), strconv.Itoa(http.StatusCreated)).Inc()
	writeLease(w, http.StatusCreated, s.leaseDoc(l))
}

// handleLeaseGet resolves a lease token: GET /lease/{id}. Tokens are
// stateless, so any structurally valid token naming a served algorithm
// resolves — including tokens issued before a restart.
func (s *Server) handleLeaseGet(w http.ResponseWriter, r *http.Request) {
	l, err := decodeLease(r.PathValue("id"))
	if err != nil {
		s.leaseRequests.With("invalid", strconv.Itoa(http.StatusBadRequest)).Inc()
		http.Error(w, fmt.Sprintf("invalid lease token: %v", err), http.StatusBadRequest)
		return
	}
	if _, ok := s.pools[l.Alg]; !ok {
		s.leaseRequests.With(l.Alg.String(), strconv.Itoa(http.StatusNotFound)).Inc()
		http.Error(w, fmt.Sprintf("lease algorithm %v not served here", l.Alg), http.StatusNotFound)
		return
	}
	s.leaseRequests.With(l.Alg.String(), strconv.Itoa(http.StatusOK)).Inc()
	writeLease(w, http.StatusOK, s.leaseDoc(l))
}
