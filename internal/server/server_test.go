package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// The acceptance contract: /bytes?alg=mickey&n=1024 on a freshly seeded
// server returns exactly the prefix of the equivalent library stream.
func TestBytesDeterministicSeededOutput(t *testing.T) {
	cfg := Config{Seed: 42, ShardsPerAlg: 1, WorkersPerShard: 2, StagingBytes: 2048}
	_, ts := newTestServer(t, cfg)

	status, body, hdr := get(t, ts.URL+"/bytes?alg=mickey&n=1024")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(body) != 1024 {
		t.Fatalf("got %d bytes", len(body))
	}
	if hdr.Get("X-Bsrng-Algorithm") != "mickey" {
		t.Errorf("algorithm header %q", hdr.Get("X-Bsrng-Algorithm"))
	}

	ref, err := core.NewStream(core.MICKEY, 42, core.StreamConfig{Workers: 2, StagingBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]byte, 2048)
	ref.Read(want)
	if !bytes.Equal(body, want[:1024]) {
		t.Fatal("served bytes diverge from library stream prefix")
	}

	// A second request continues the same shard stream, not a reset.
	status, body2, _ := get(t, ts.URL+"/bytes?alg=mickey&n=1024")
	if status != http.StatusOK {
		t.Fatalf("second request status %d", status)
	}
	if !bytes.Equal(body2, want[1024:2048]) {
		t.Fatal("second request does not continue the stream")
	}
}

func TestBytesHexOutput(t *testing.T) {
	cfg := Config{Seed: 7, ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024}
	_, ts := newTestServer(t, cfg)
	status, body, hdr := get(t, ts.URL+"/bytes?alg=grain&n=16&hex=1")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	s := string(body)
	if len(s) != 33 || s[32] != '\n' {
		t.Fatalf("unexpected hex body %q", s)
	}
	raw, err := hex.DecodeString(s[:32])
	if err != nil {
		t.Fatalf("not hex: %v", err)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("hex content type %q", hdr.Get("Content-Type"))
	}
	ref, _ := core.NewStream(core.GRAIN, 7, core.StreamConfig{Workers: 1, StagingBytes: 1024})
	defer ref.Close()
	want := make([]byte, 16)
	ref.Read(want)
	if !bytes.Equal(raw, want) {
		t.Fatal("hex bytes diverge from library stream")
	}
}

func TestMetricsAfterRequest(t *testing.T) {
	cfg := Config{Seed: 1, ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024}
	_, ts := newTestServer(t, cfg)
	if status, _, _ := get(t, ts.URL+"/bytes?alg=trivium&n=4096"); status != http.StatusOK {
		t.Fatalf("bytes status %d", status)
	}
	status, body, _ := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	out := string(body)
	for _, want := range []string{
		"bsrngd_bytes_served_total 4096",
		`bsrngd_requests_total{alg="trivium",status="200"} 1`,
		"bsrngd_shard_checkout_seconds_count 1",
		fmt.Sprintf("bsrngd_streams_active %d", len(core.ServedAlgorithms)), // default algorithms × 1 shard
		"bsrngd_shards_busy 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	// Engine-level gauges must be live and non-zero after traffic.
	for _, name := range []string{
		"bsrngd_engine_chunks_produced_total",
		"bsrngd_engine_bytes_delivered_total",
	} {
		if strings.Contains(out, name+" 0\n") {
			t.Errorf("%s still zero after a request:\n%s", name, out)
		}
	}
}

func TestBadRequests(t *testing.T) {
	cfg := Config{Seed: 1, ShardsPerAlg: 1, WorkersPerShard: 1,
		StagingBytes: 1024, MaxRequestBytes: 1 << 10}
	_, ts := newTestServer(t, cfg)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/bytes?alg=rot13&n=16", http.StatusBadRequest},
		{"/bytes?alg=mickey&n=0", http.StatusBadRequest},
		{"/bytes?alg=mickey&n=-5", http.StatusBadRequest},
		{"/bytes?alg=mickey&n=zzz", http.StatusBadRequest},
		{"/bytes?alg=mickey&n=2048", http.StatusRequestEntityTooLarge},
		{"/nope", http.StatusNotFound},
	} {
		if status, _, _ := get(t, ts.URL+tc.path); status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.path, status, tc.want)
		}
	}
	// Error statuses are visible in request metrics.
	_, body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), `bsrngd_requests_total{alg="invalid",status="400"}`) {
		t.Errorf("invalid-alg requests not counted:\n%s", body)
	}
	if !strings.Contains(string(body), `bsrngd_requests_total{alg="mickey",status="413"} 1`) {
		t.Errorf("oversized requests not counted:\n%s", body)
	}
}

func TestAlgorithmNotServed(t *testing.T) {
	cfg := Config{Seed: 1, Algorithms: []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024}
	_, ts := newTestServer(t, cfg)
	if status, _, _ := get(t, ts.URL+"/bytes?alg=mickey&n=16"); status != http.StatusBadRequest {
		t.Errorf("unserved algorithm status %d, want 400", status)
	}
	if status, _, _ := get(t, ts.URL+"/bytes?alg=grain&n=16"); status != http.StatusOK {
		t.Errorf("served algorithm status %d, want 200", status)
	}
}

// Shutdown must 503 new work, wait for in-flight requests, then close
// the pools — the SIGTERM drain path of cmd/bsrngd.
func TestShutdownDrainsInFlight(t *testing.T) {
	cfg := Config{Seed: 3, ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	// Set before NewServer spawns the accept loop so handler goroutines
	// observe the hook without a data race.
	s.testHookServing = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	type result struct {
		status int
		n      int
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/bytes?alg=mickey&n=2048")
		if err != nil {
			reqDone <- result{-1, 0}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		reqDone <- result{resp.StatusCode, len(body)}
	}()
	<-entered // request is in flight, holding its shard

	shutDone := make(chan error, 1)
	go func() { shutDone <- s.Shutdown(context.Background()) }()

	// healthz flips to draining promptly, while the request is still open.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if status, _, _ := get(t, ts.URL+"/healthz"); status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// New byte requests are refused during the drain.
	if status, _, _ := get(t, ts.URL+"/bytes?alg=mickey&n=16"); status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", status)
	}
	// Shutdown must still be blocked on the in-flight request.
	select {
	case <-shutDone:
		t.Fatal("Shutdown returned before in-flight request finished")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-reqDone
	if res.status != http.StatusOK || res.n != 2048 {
		t.Fatalf("in-flight request: status %d, %d bytes; want full 200", res.status, res.n)
	}
}

// A held shard plus a short request timeout produces 503, not a hang.
func TestCheckoutTimeout(t *testing.T) {
	cfg := Config{Seed: 3, ShardsPerAlg: 1, WorkersPerShard: 1,
		StagingBytes: 1024, RequestTimeout: 50 * time.Millisecond}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookServing = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default: // later requests pass straight through
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	go http.Get(ts.URL + "/bytes?alg=grain&n=64") //nolint:errcheck
	<-entered

	start := time.Now()
	status, body, _ := get(t, ts.URL+"/bytes?alg=grain&n=64")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("contended request got %d (%q), want 503", status, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("503 took %v; timeout not honored", elapsed)
	}
	close(release)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Algorithms: []core.Algorithm{}}); err == nil {
		t.Error("empty algorithm list accepted")
	}
	if _, err := New(Config{ShardsPerAlg: -1}); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := New(Config{Algorithms: []core.Algorithm{core.GRAIN, core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1}); err == nil {
		t.Error("duplicate algorithm accepted")
	}
	if _, err := New(Config{Algorithms: []core.Algorithm{core.Algorithm(99)},
		ShardsPerAlg: 1, WorkersPerShard: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, err := New(Config{Seed: 1, ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
