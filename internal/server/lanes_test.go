package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// The service contract extends the core one: the bytes served for a
// given (alg, seed) must not depend on the engine lane width.
func TestBytesWidthIndependence(t *testing.T) {
	const path = "/bytes?alg=grain&n=8192"
	fetch := func(lanes int) []byte {
		cfg := Config{Seed: 99, Algorithms: []core.Algorithm{core.GRAIN},
			ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 4096, Lanes: lanes}
		_, ts := newTestServer(t, cfg)
		status, body, _ := get(t, ts.URL+path)
		if status != http.StatusOK {
			t.Fatalf("lanes=%d: status %d", lanes, status)
		}
		return body
	}
	want := fetch(64)
	for _, lanes := range []int{256, 512} {
		if got := fetch(lanes); !bytes.Equal(got, want) {
			t.Errorf("lanes=%d: served bytes diverge from 64-lane service", lanes)
		}
	}
}

// A wide-lane server must survive concurrent /bytes traffic; run under
// -race this pins down the sharing discipline of the vector engines.
func TestWideLaneConcurrentRequests(t *testing.T) {
	cfg := Config{Seed: 5, Algorithms: []core.Algorithm{core.TRIVIUM},
		ShardsPerAlg: 2, WorkersPerShard: 2, StagingBytes: 4096, Lanes: 256}
	_, ts := newTestServer(t, cfg)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, _ := get(t, ts.URL+"/bytes?alg=trivium&n=16384")
			if status != http.StatusOK {
				errs <- fmt.Errorf("status %d", status)
				return
			}
			if len(body) != 16384 {
				errs <- fmt.Errorf("got %d bytes", len(body))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// An invalid Lanes value must be rejected at construction, not at the
// first request.
func TestConfigRejectsBadLanes(t *testing.T) {
	for _, lanes := range []int{-1, 1, 63, 128, 1024} {
		if _, err := New(Config{ShardsPerAlg: 1, WorkersPerShard: 1, Lanes: lanes}); err == nil {
			t.Errorf("Lanes=%d accepted", lanes)
		}
	}
}

// The 400 response for an unknown algorithm must name the valid set so
// a client can self-correct, and parsing must be case-insensitive.
func TestBadAlgorithmResponseListsValidSet(t *testing.T) {
	cfg := Config{Seed: 1, ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024}
	_, ts := newTestServer(t, cfg)

	status, body, _ := get(t, ts.URL+"/bytes?alg=rot13&n=16")
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	for _, name := range core.AlgorithmNames {
		if !strings.Contains(string(body), name) {
			t.Errorf("400 body %q does not mention %q", body, name)
		}
	}

	// Case-insensitive algorithm names serve normally.
	status, _, hdr := get(t, ts.URL+"/bytes?alg=MICKEY&n=16")
	if status != http.StatusOK {
		t.Errorf("uppercase alg status %d, want 200", status)
	}
	if got := hdr.Get("X-Bsrng-Algorithm"); got != "mickey" {
		t.Errorf("algorithm header %q, want mickey", got)
	}
}
