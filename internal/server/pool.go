package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/health"
)

// shard is one exclusive core.Stream behind a one-token channel
// semaphore, so checkout can block with a context (sync.Mutex cannot).
// Holding the token means owning the stream. A quarantined shard's
// token is withheld by the pool until rehabilitation re-admits it, so
// quarantine and checkout share one mechanism.
type shard struct {
	id     int
	stream atomic.Pointer[core.Stream]
	sem    chan struct{}

	quarantined atomic.Bool

	// The fields below are only touched while holding the shard's token
	// (a request in handback, or the rehab goroutine that owns the
	// withheld token), so they need no further synchronization.
	epoch        uint64 // reseed generation; bumped per rehab attempt
	strikes      int    // consecutive checkouts that observed new health failures
	seenFailures uint64 // stream HealthFailures watermark at last handback
}

// checkoutRescanInterval bounds how stale a blocked checkout's view of
// the shard set can get: even if a release nudge is lost to a full
// channel, the waiter rescans every interval.
const checkoutRescanInterval = time.Millisecond

// reseedSeedStep mixes the shard's reseed epoch into its stream seed so
// a rehabilitated shard draws fresh, unrelated key material (an odd
// multiplier keeps distinct epochs distinct mod 2^64).
const reseedSeedStep = 0xA24BAED4963EE407

// errCheckoutFault is the injected checkout failure (failpoint
// server.checkout.fail.<alg>).
var errCheckoutFault = errors.New("server: injected checkout fault")

// poolConfig carries everything a per-algorithm pool needs, including
// the server's metric callbacks (nil callbacks are skipped).
type poolConfig struct {
	alg     core.Algorithm
	seed    uint64
	shards  int
	workers int
	staging int
	lanes   int

	healthOff         bool
	healthCfg         health.Config
	quarantineAfter   int
	probationSegments int
	probationInterval time.Duration

	onFailure    func(test string)
	onQuarantine func()
	onReseed     func()
	onReadmit    func()
}

// pool is the per-algorithm shard set with its continuous health state.
// Requests check shards out round-robin; a blocked checkout waits for
// any shard to free up (release nudges + a rescan ticker), never for
// one specific shard.
type pool struct {
	cfg     poolConfig
	checker *health.Checker // nil when health checks are disabled
	shards  []*shard
	next    atomic.Uint64
	nudge   chan struct{} // release/readmit wakeups for blocked checkouts

	closed    chan struct{}
	closeOnce sync.Once
	rehabs    sync.WaitGroup

	quarantinedCount atomic.Int64
	lastFailure      atomic.Pointer[string]

	// Failpoint names, precomputed per pool: DESIGN.md §8 lists them.
	fpCheckout  string // server.checkout.fail.<alg>
	fpCorrupt   string // server.segment.corrupt.<alg>
	fpProbation string // server.probation.fail.<alg>
}

// shardSeed derives the stream seed for shard i. Shard 0 serves the
// configured seed verbatim — that is the determinism contract the
// integration tests pin down — and later shards take golden-ratio
// offsets so their worker seed domains never collide in practice.
func shardSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9E3779B97F4A7C15
}

func newPool(cfg poolConfig) (*pool, error) {
	p := &pool{
		cfg:         cfg,
		nudge:       make(chan struct{}, cfg.shards),
		closed:      make(chan struct{}),
		fpCheckout:  "server.checkout.fail." + cfg.alg.String(),
		fpCorrupt:   "server.segment.corrupt." + cfg.alg.String(),
		fpProbation: "server.probation.fail." + cfg.alg.String(),
	}
	if !cfg.healthOff {
		p.checker = health.NewChecker(cfg.healthCfg)
	}
	for i := 0; i < cfg.shards; i++ {
		sh := &shard{id: i, sem: make(chan struct{}, 1)}
		st, err := p.newShardStream(sh)
		if err != nil {
			p.close()
			return nil, err
		}
		sh.stream.Store(st)
		sh.sem <- struct{}{}
		p.shards = append(p.shards, sh)
	}
	return p, nil
}

// newShardStream builds the shard's stream at its current reseed epoch,
// wired to the pool's health hook.
func (p *pool) newShardStream(sh *shard) (*core.Stream, error) {
	seed := shardSeed(p.cfg.seed, sh.id) + reseedSeedStep*sh.epoch
	var hook func([]byte) error
	if p.checker != nil {
		hook = p.healthHook
	}
	return core.NewStream(p.cfg.alg, seed, core.StreamConfig{
		Workers:      p.cfg.workers,
		StagingBytes: p.cfg.staging,
		Lanes:        p.cfg.lanes,
		Health:       hook,
	})
}

// healthHook runs in stream worker goroutines: it applies the per-pool
// corruption failpoint (chaos tests only; unarmed it is one atomic
// load) and evaluates the segment against the continuous tests.
func (p *pool) healthHook(seg []byte) error {
	if faultinject.Hit(p.fpCorrupt) {
		for i := range seg {
			seg[i] = 0
		}
	}
	err := p.checker.Check(seg)
	if err != nil {
		var f *health.Failure
		if errors.As(err, &f) {
			name := f.Test.String()
			p.lastFailure.Store(&name)
			if p.cfg.onFailure != nil {
				p.cfg.onFailure(name)
			}
		}
	}
	return err
}

// checkout acquires a shard: a non-blocking scan for any idle shard
// starting at the round-robin cursor, then a wait for ANY shard to free
// up (not just the cursor's — a request must never starve behind one
// busy shard while another is idle), bounded by ctx.
func (p *pool) checkout(ctx context.Context) (*shard, error) {
	if faultinject.Hit(p.fpCheckout) {
		return nil, errCheckoutFault
	}
	start := int(p.next.Add(1)-1) % len(p.shards)
	for {
		for i := 0; i < len(p.shards); i++ {
			sh := p.shards[(start+i)%len(p.shards)]
			select {
			case <-sh.sem:
				return sh, nil
			default:
			}
		}
		timer := time.NewTimer(checkoutRescanInterval)
		select {
		case <-p.nudge:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// wake lets one blocked checkout rescan; dropping the nudge when the
// channel is full is fine because every waiter also rescans on a
// ticker.
func (p *pool) wake() {
	select {
	case p.nudge <- struct{}{}:
	default:
	}
}

// handback returns a checked-out shard. If the shard's stream tripped
// new health failures while this holder owned it, the shard earns a
// strike; quarantineAfter consecutive striking checkouts eject it from
// rotation (the token is withheld) and hand it to the background
// rehabilitation loop.
func (p *pool) handback(sh *shard) {
	if p.checker != nil {
		st := sh.stream.Load().Stats()
		if st.HealthFailures > sh.seenFailures {
			sh.seenFailures = st.HealthFailures
			sh.strikes++
			if sh.strikes >= p.cfg.quarantineAfter {
				p.quarantine(sh)
				return
			}
		} else {
			sh.strikes = 0
		}
	}
	sh.sem <- struct{}{}
	p.wake()
}

// quarantine ejects the shard (caller holds its token, which is NOT
// returned) and starts the rehab loop.
func (p *pool) quarantine(sh *shard) {
	sh.quarantined.Store(true)
	p.quarantinedCount.Add(1)
	if p.cfg.onQuarantine != nil {
		p.cfg.onQuarantine()
	}
	p.rehabs.Add(1)
	go p.rehab(sh)
}

// rehab is the background recovery loop of one quarantined shard:
// reseed (a fresh stream at a bumped epoch), run a probation pass of
// probationSegments segments through the health checker, and re-admit
// on success; a failed probation retries after probationInterval. The
// loop exits when the pool closes.
func (p *pool) rehab(sh *shard) {
	defer p.rehabs.Done()
	for {
		select {
		case <-p.closed:
			return
		default:
		}
		if p.probation(sh) {
			sh.strikes = 0
			sh.seenFailures = 0
			sh.quarantined.Store(false)
			p.quarantinedCount.Add(-1)
			if p.cfg.onReadmit != nil {
				p.cfg.onReadmit()
			}
			sh.sem <- struct{}{}
			p.wake()
			return
		}
		select {
		case <-p.closed:
			return
		case <-time.After(p.cfg.probationInterval):
		}
	}
}

// probation runs one reseed + probation attempt; on success the shard's
// stream is swapped for the rehabilitated one and the condemned stream
// is closed.
func (p *pool) probation(sh *shard) bool {
	if faultinject.Hit(p.fpProbation) {
		return false
	}
	sh.epoch++
	st, err := p.newShardStream(sh)
	if err != nil {
		return false
	}
	if p.cfg.onReseed != nil {
		p.cfg.onReseed()
	}
	buf := make([]byte, core.SegmentBytes)
	for i := 0; i < p.cfg.probationSegments; i++ {
		if _, err := st.Read(buf); err != nil {
			st.Close()
			return false
		}
	}
	if ss := st.Stats(); ss.HealthFailures != 0 || ss.HealthUnrecovered != 0 {
		st.Close()
		return false
	}
	old := sh.stream.Swap(st)
	old.Close()
	return true
}

// close stops rehab loops, then the shard streams. Safe to call twice.
func (p *pool) close() {
	p.closeOnce.Do(func() { close(p.closed) })
	p.rehabs.Wait()
	for _, sh := range p.shards {
		sh.stream.Load().Close()
	}
}

// stats sums the engine counters across the pool's shards.
func (p *pool) stats() core.StreamStats {
	var sum core.StreamStats
	for _, sh := range p.shards {
		st := sh.stream.Load().Stats()
		sum.ChunksProduced += st.ChunksProduced
		sum.BytesDelivered += st.BytesDelivered
		sum.RecycleHits += st.RecycleHits
		sum.HealthFailures += st.HealthFailures
		sum.EngineReseeds += st.EngineReseeds
		sum.HealthUnrecovered += st.HealthUnrecovered
	}
	return sum
}

// poolHealth is the /healthz view of one algorithm's shard set.
type poolHealth struct {
	Shards          int    `json:"shards"`
	Quarantined     int    `json:"quarantined"`
	SegmentsChecked uint64 `json:"segments_checked"`
	HealthFailures  uint64 `json:"health_failures"`
	LastFailure     string `json:"last_failure,omitempty"`
}

// healthSnapshot is safe to call concurrently with serving and rehab.
func (p *pool) healthSnapshot() poolHealth {
	h := poolHealth{Shards: len(p.shards), Quarantined: int(p.quarantinedCount.Load())}
	if p.checker != nil {
		cs := p.checker.Stats()
		h.SegmentsChecked = cs.Segments
		h.HealthFailures = cs.Total()
	}
	if lf := p.lastFailure.Load(); lf != nil {
		h.LastFailure = *lf
	}
	return h
}

// fullyQuarantined reports whether no shard can serve — the condition
// that degrades /healthz to 503 for this algorithm.
func (p *pool) fullyQuarantined() bool {
	return int(p.quarantinedCount.Load()) == len(p.shards)
}
