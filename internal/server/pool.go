package server

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
)

// shard is one exclusive core.Stream behind a one-token channel
// semaphore, so checkout can block with a context (sync.Mutex cannot).
// Holding the token means owning the stream.
type shard struct {
	id     int
	stream *core.Stream
	sem    chan struct{}
}

func (sh *shard) release() { sh.sem <- struct{}{} }

// pool is the per-algorithm shard set. Requests check shards out
// round-robin; an idle shard anywhere in the pool is preferred over
// blocking on the round-robin choice.
type pool struct {
	alg    core.Algorithm
	shards []*shard
	next   atomic.Uint64
}

// shardSeed derives the stream seed for shard i. Shard 0 serves the
// configured seed verbatim — that is the determinism contract the
// integration tests pin down — and later shards take golden-ratio
// offsets so their worker seed domains never collide in practice.
func shardSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9E3779B97F4A7C15
}

func newPool(alg core.Algorithm, seed uint64, shards, workers, staging, lanes int) (*pool, error) {
	p := &pool{alg: alg}
	for i := 0; i < shards; i++ {
		st, err := core.NewStream(alg, shardSeed(seed, i), core.StreamConfig{
			Workers:      workers,
			StagingBytes: staging,
			Lanes:        lanes,
		})
		if err != nil {
			p.close()
			return nil, err
		}
		sh := &shard{id: i, stream: st, sem: make(chan struct{}, 1)}
		sh.sem <- struct{}{}
		p.shards = append(p.shards, sh)
	}
	return p, nil
}

// checkout acquires a shard: fast-path scan for any idle shard starting
// at the round-robin cursor, then a blocking wait on the cursor's shard
// bounded by ctx.
func (p *pool) checkout(ctx context.Context) (*shard, error) {
	start := int(p.next.Add(1)-1) % len(p.shards)
	for i := 0; i < len(p.shards); i++ {
		sh := p.shards[(start+i)%len(p.shards)]
		select {
		case <-sh.sem:
			return sh, nil
		default:
		}
	}
	sh := p.shards[start]
	select {
	case <-sh.sem:
		return sh, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *pool) close() {
	for _, sh := range p.shards {
		sh.stream.Close()
	}
}

// stats sums the engine counters across the pool's shards.
func (p *pool) stats() core.StreamStats {
	var sum core.StreamStats
	for _, sh := range p.shards {
		st := sh.stream.Stats()
		sum.ChunksProduced += st.ChunksProduced
		sum.BytesDelivered += st.BytesDelivered
		sum.RecycleHits += st.RecycleHits
	}
	return sum
}
