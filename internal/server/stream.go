package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
)

// GET /stream is the long-lived streaming delivery endpoint: a chunked
// binary response flushed after every chunk, so a consumer sees bytes
// as they are generated instead of waiting for the full body. It comes
// in three modes sharing one handler:
//
//   - pooled (no addressing params): the request checks a shard out of
//     the algorithm's pool — exactly like /bytes — and streams the
//     shard's continuation via the zero-copy Stream.WriteTo path. The
//     bytes are whatever the shared shard stream serves next.
//
//   - addressed (any of segment=, domain=, off=, lanes= present): the
//     request names a window of the deterministic (seed, domain,
//     segment) address space and is served by a per-request
//     core.SegmentReader — no shard is held, the response is
//     byte-reproducible by anyone holding the seed, and lanes= selects
//     the datapath width (the bytes are identical at every width).
//
//   - lease (lease=<id>): like addressed, but the window comes from a
//     lease token issued by POST /lease; off= resumes mid-window after
//     a disconnect (absolute resume position = lease start + off).
//
// Every mode honors the per-request byte cap, MaxInflight admission
// control (429 + Retry-After), client disconnects (the stream ends, the
// shard token — if any — is returned) and graceful drain (the stream
// ends at the next chunk boundary).

// streamChunkCap bounds how much one /stream chunk can carry: the
// addressed path reuses the pooled 64 KiB response buffers, and the
// pooled path flushes per staging chunk.
const streamChunkCap = respBufBytes

// errStreamDraining ends an in-flight /stream at the next chunk
// boundary when the server starts draining.
var errStreamDraining = errors.New("server: draining")

// streamParams is one parsed /stream request.
type streamParams struct {
	mode   string // "pooled", "addressed" or "lease"
	alg    core.Algorithm
	domain uint64
	offset uint64 // absolute byte offset into (seed, domain); addressed modes only
	n      int64
	lanes  int
}

// parseStream validates the request into streamParams. It returns a
// non-nil *httpError describing the failure response otherwise.
func (s *Server) parseStream(r *http.Request) (streamParams, *httpError) {
	q := r.URL.Query()
	p := streamParams{mode: "pooled"}

	if v := q.Get("hex"); v != "" && v != "0" && v != "false" {
		return p, &httpError{http.StatusBadRequest, "hex is not supported on /stream; use /bytes"}
	}

	var (
		window   int64 = -1 // lease byte budget left from the offset; -1 = unbounded
		leaseTok       = q.Get("lease")
	)
	addressed := leaseTok != "" || q.Has("segment") || q.Has("domain") || q.Has("off") || q.Has("lanes")

	var off uint64
	if v := q.Get("off"); v != "" {
		var err error
		off, err = strconv.ParseUint(v, 10, 64)
		if err != nil || off >= maxAddressableBytes {
			return p, &httpError{http.StatusBadRequest, "off must be a byte offset below 2^52"}
		}
	}

	if leaseTok != "" {
		p.mode = "lease"
		l, err := decodeLease(leaseTok)
		if err != nil {
			return p, &httpError{http.StatusBadRequest, fmt.Sprintf("invalid lease token: %v", err)}
		}
		if a := q.Get("alg"); a != "" && a != l.Alg.String() {
			return p, &httpError{http.StatusBadRequest,
				fmt.Sprintf("alg=%s contradicts the lease's algorithm %s", a, l.Alg)}
		}
		if off >= l.bytes() {
			return p, &httpError{http.StatusRequestedRangeNotSatisfiable,
				fmt.Sprintf("off %d is past the lease window (%d bytes)", off, l.bytes())}
		}
		p.alg = l.Alg
		p.domain = l.Domain
		p.offset = l.StartSegment*core.SegmentBytes + off
		window = int64(l.bytes() - off)
	} else {
		alg, herr := s.parseAlg(q.Get("alg"))
		if herr != nil {
			return p, herr
		}
		p.alg = alg
		if addressed {
			p.mode = "addressed"
			if v := q.Get("domain"); v != "" {
				d, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return p, &httpError{http.StatusBadRequest, "domain must be an unsigned integer"}
				}
				p.domain = d
			}
			var seg uint64
			if v := q.Get("segment"); v != "" {
				var err error
				seg, err = strconv.ParseUint(v, 10, 64)
				if err != nil || seg >= maxLeaseStartSegment {
					return p, &httpError{http.StatusBadRequest, "segment must be an index below 2^40"}
				}
			}
			p.offset = seg*core.SegmentBytes + off
		} else if off != 0 {
			return p, &httpError{http.StatusBadRequest, "off requires segment=, domain= or lease="}
		}
	}

	if p.mode != "pooled" {
		if v := q.Get("lanes"); v != "" {
			lanes, err := strconv.Atoi(v)
			if err != nil || core.ValidateLanes(lanes) != nil {
				return p, &httpError{http.StatusBadRequest,
					fmt.Sprintf("lanes must be one of %v", core.SupportedLanes)}
			}
			p.lanes = lanes
		}
	} else if q.Has("lanes") {
		// Unreachable (lanes makes a request addressed) but kept as a guard
		// for future routing changes.
		return p, &httpError{http.StatusBadRequest, "lanes is only valid on addressed streams"}
	}

	// n defaults to the remaining lease window, else to the per-request
	// cap: a /stream without n is "as much as one request may carry".
	p.n = s.cfg.MaxRequestBytes
	if window >= 0 && window < p.n {
		p.n = window
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return p, &httpError{http.StatusBadRequest, "n must be a positive integer"}
		}
		if n > s.cfg.MaxRequestBytes {
			return p, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("n exceeds per-request cap %d", s.cfg.MaxRequestBytes)}
		}
		p.n = n
		if window >= 0 && p.n > window {
			p.n = window // clamp to the lease window: resume semantics, not an error
		}
	}
	return p, nil
}

// httpError is a deferred error response: status plus body message.
type httpError struct {
	status int
	msg    string
}

// parseAlg resolves an algorithm name (default mickey) against the
// served pools.
func (s *Server) parseAlg(name string) (core.Algorithm, *httpError) {
	if name == "" {
		name = "mickey"
	}
	alg, err := core.ParseAlgorithm(name)
	if err != nil {
		return 0, &httpError{http.StatusBadRequest, err.Error()}
	}
	if _, ok := s.pools[alg]; !ok {
		return 0, &httpError{http.StatusBadRequest, fmt.Sprintf("algorithm %v not served", alg)}
	}
	return alg, nil
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	p, herr := s.parseStream(r)
	algLabel := "invalid"
	if herr == nil {
		algLabel = p.alg.String()
	}
	record := func(status int) {
		s.streamRequests.With(algLabel, p.mode, strconv.Itoa(status)).Inc()
	}
	if herr != nil {
		record(herr.status)
		http.Error(w, herr.msg, herr.status)
		return
	}

	if !s.enter() {
		record(http.StatusServiceUnavailable)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer s.inflight.Done()

	// Admission control is shared with /bytes: a long-lived stream holds
	// one in-flight slot for its whole duration.
	inflight := s.inflightNow.Add(1)
	defer s.inflightNow.Add(-1)
	if s.cfg.MaxInflight > 0 && inflight > int64(s.cfg.MaxInflight) {
		s.admissionRejected.Inc()
		w.Header().Set("Retry-After", "1")
		record(http.StatusTooManyRequests)
		http.Error(w, fmt.Sprintf("server at max in-flight requests (%d)", s.cfg.MaxInflight),
			http.StatusTooManyRequests)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Bsrng-Algorithm", p.alg.String())
	w.Header().Set("X-Bsrng-Mode", p.mode)

	s.streamOpen.Add(1)
	defer s.streamOpen.Add(-1)

	var (
		served int64
		err    error
	)
	if p.mode == "pooled" {
		served, err = s.servePooledStream(w, r, p)
		if err != nil {
			// Checkout failed before any byte was written: a plain error
			// response is still possible.
			record(http.StatusServiceUnavailable)
			http.Error(w, "all shards busy", http.StatusServiceUnavailable)
			return
		}
	} else {
		var herr *httpError
		served, herr = s.serveAddressedStream(w, r, p)
		if herr != nil {
			record(herr.status)
			http.Error(w, herr.msg, herr.status)
			return
		}
		if p.mode == "lease" {
			s.leaseStreams.Inc()
		}
	}
	s.streamBytes.Add(uint64(served))
	s.bytesServed.Add(uint64(served))
	record(http.StatusOK)
	if served < p.n {
		// Ended early: client went away, drain began, or the pool closed.
		s.streamDisconnects.Inc()
	}
}

// servePooledStream checks a shard out and rides Stream.WriteTo: each
// staging chunk the engine filled is written straight to the response
// and flushed. A non-nil error means checkout failed and nothing was
// written; after the first byte, failures end the stream silently
// (served < n tells the caller).
func (s *Server) servePooledStream(w http.ResponseWriter, r *http.Request, p streamParams) (int64, error) {
	pool := s.pools[p.alg]
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	t0 := time.Now()
	sh, err := pool.checkout(ctx)
	cancel()
	s.checkoutLat.Observe(time.Since(t0).Seconds())
	if err != nil {
		return 0, err
	}
	st := sh.stream.Load()
	s.shardsBusy.Add(1)
	defer func() {
		pool.handback(sh)
		s.shardsBusy.Add(-1)
	}()
	if s.testHookServing != nil {
		s.testHookServing()
	}
	w.Header().Set("X-Bsrng-Shard", strconv.Itoa(sh.id))

	cw := &chunkWriter{s: s, w: w, ctx: r.Context(), flush: flusherFor(w)}
	served, werr := st.WriteTo(&limitedWriter{w: cw, n: p.n})
	_ = werr // budget spent, client gone, drain, or stream closed; served says how far
	return served, nil
}

// serveAddressedStream serves a deterministic window of the
// (seed, domain, segment) address space from a per-request
// core.SegmentReader through a pooled chunk buffer. The reader's
// aligned path writes whole segments straight into the buffer (the
// zero-copy engine path), so the steady state allocates nothing per
// chunk. A non-nil *httpError means nothing was written.
func (s *Server) serveAddressedStream(w http.ResponseWriter, r *http.Request, p streamParams) (int64, *httpError) {
	src, err := core.NewSegmentReader(p.alg, s.cfg.Seed, p.domain, p.lanes, p.offset)
	if err != nil {
		return 0, &httpError{http.StatusBadRequest, err.Error()}
	}
	w.Header().Set("X-Bsrng-Domain", strconv.FormatUint(p.domain, 10))
	w.Header().Set("X-Bsrng-Offset", strconv.FormatUint(p.offset, 10))
	buf := s.getRespBuf()
	defer s.respBufs.Put(&buf)
	cw := &chunkWriter{s: s, w: w, ctx: r.Context(), flush: flusherFor(w)}
	served, _ := streamCopy(cw, src, buf, p.n)
	return served, nil
}

// streamCopy pumps n bytes from src (an infallible reader: a
// SegmentReader) to w in len(buf)-sized chunks. It stops at w's first
// error — disconnect, drain — and reports how far it got.
func streamCopy(w io.Writer, src io.Reader, buf []byte, n int64) (int64, error) {
	var served int64
	for served < n {
		k := int64(len(buf))
		if k > n-served {
			k = n - served
		}
		if _, err := src.Read(buf[:k]); err != nil {
			return served, err
		}
		wk, err := w.Write(buf[:k])
		served += int64(wk)
		if err != nil {
			return served, err
		}
	}
	return served, nil
}

// chunkWriter is the per-chunk policy of a /stream response: refuse to
// start a chunk once the client is gone or the server is draining,
// write, flush so the chunk leaves the process immediately, and count
// it. Wrapped by limitedWriter on the pooled path so the shard stream's
// cursor advances by exactly the bytes the response consumed.
type chunkWriter struct {
	s     *Server
	w     io.Writer
	ctx   context.Context
	flush func()
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	if err := cw.ctx.Err(); err != nil {
		return 0, err
	}
	if cw.s.isDraining() {
		return 0, errStreamDraining
	}
	k, err := cw.w.Write(p)
	if k > 0 {
		if cw.flush != nil {
			cw.flush()
		}
		cw.s.streamChunks.Inc()
	}
	return k, err
}

// flusherFor extracts the response's flush hook; nil when the writer
// cannot flush (plain io.Writer in tests).
func flusherFor(w io.Writer) func() {
	if f, ok := w.(http.Flusher); ok {
		return f.Flush
	}
	return nil
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}
