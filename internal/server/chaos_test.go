package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/health"
)

// metricValue extracts one un-labeled or exact-labeled sample from a
// /metrics body.
func metricValue(t *testing.T, body []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
			if err != nil {
				t.Fatalf("metric %s: bad sample %q", name, line)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, body)
	return 0
}

func getHealthz(t *testing.T, url string) (int, healthzResponse) {
	t.Helper()
	status, body, _ := get(t, url+"/healthz")
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz is not JSON (%v): %s", err, body)
	}
	return status, hz
}

// The tentpole chaos scenario, end to end: healthy deterministic
// serving, then fault-injected corruption under concurrent traffic
// until every shard is quarantined and /healthz degrades, then fault
// removal, background reseed, probation, re-admission and a return to
// healthy service — with the health metrics accounting for every phase.
func TestChaosQuarantineAndRecovery(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out")
	}
	t.Cleanup(faultinject.Reset)

	const seed = 42
	cfg := Config{
		Seed:         seed,
		Algorithms:   []core.Algorithm{core.MICKEY},
		ShardsPerAlg: 2, WorkersPerShard: 1, StagingBytes: core.SegmentBytes,
		RequestTimeout:  250 * time.Millisecond,
		QuarantineAfter: 2, ProbationSegments: 2, ProbationInterval: 5 * time.Millisecond,
	}
	_, ts := newTestServer(t, cfg)
	fpCorrupt := "server.segment.corrupt." + core.MICKEY.String()
	fpCheckout := "server.checkout.fail." + core.MICKEY.String()

	// --- Phase A: healthy baseline is byte-identical to the library ---
	// Sequential segment-sized requests alternate over the two shards;
	// bucket them by the shard header and compare each shard's
	// concatenation against its reference stream.
	perShard := map[string][]byte{}
	for i := 0; i < 8; i++ {
		status, body, hdr := get(t, ts.URL+"/bytes?alg=mickey&n=2048")
		if status != http.StatusOK {
			t.Fatalf("baseline request %d: status %d", i, status)
		}
		id := hdr.Get("X-Bsrng-Shard")
		perShard[id] = append(perShard[id], body...)
	}
	for id, got := range perShard {
		shardID, _ := strconv.Atoi(id)
		ref, err := core.NewStream(core.MICKEY, shardSeed(seed, shardID),
			core.StreamConfig{Workers: 1, StagingBytes: core.SegmentBytes})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(got))
		ref.Read(want)
		ref.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %s healthy bytes diverge from the library stream", id)
		}
	}

	// --- Phase B: corrupt every segment under concurrent traffic ---
	faultinject.ArmRange(fpCorrupt, 1, 1<<40)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/bytes?alg=mickey&n=2048")
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("chaos traffic: unexpected status %d", resp.StatusCode)
				}
			}
		}()
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		status, hz := getHealthz(t, ts.URL)
		if status == http.StatusServiceUnavailable && hz.Status == "degraded" {
			ph := hz.Pools["mickey"]
			if ph.Shards != 2 || ph.Quarantined != 2 {
				t.Fatalf("degraded pool state %+v, want 2/2 quarantined", ph)
			}
			if ph.HealthFailures == 0 || ph.LastFailure == "" {
				t.Fatalf("degraded pool hides its failures: %+v", ph)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never degraded; last: status=%d %+v", status, hz)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Fully quarantined: a sequential request gets 503 once checkout
	// times out, and the quarantine metrics reflect both ejections.
	if status, _, _ := get(t, ts.URL+"/bytes?alg=mickey&n=64"); status != http.StatusServiceUnavailable {
		t.Fatalf("request to a fully quarantined pool: status %d, want 503", status)
	}
	_, mbody, _ := get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, `bsrngd_health_quarantines_total{alg="mickey"}`); got != 2 {
		t.Errorf("quarantines_total = %v, want 2", got)
	}
	if got := metricValue(t, mbody, `bsrngd_health_quarantined_shards{alg="mickey"}`); got != 2 {
		t.Errorf("quarantined_shards gauge = %v, want 2", got)
	}
	if !strings.Contains(string(mbody), `bsrngd_health_failures_total{alg="mickey",test="`) {
		t.Errorf("no per-test health failure counters exported:\n%s", mbody)
	}

	// --- Phase C: heal the fault; rehabilitation re-admits both shards ---
	faultinject.Disarm(fpCorrupt)
	for {
		status, hz := getHealthz(t, ts.URL)
		if status == http.StatusOK && hz.Status == "ok" && hz.Pools["mickey"].Quarantined == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered; last: status=%d %+v", status, hz)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, mbody, _ = get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, `bsrngd_health_readmits_total{alg="mickey"}`); got != 2 {
		t.Errorf("readmits_total = %v, want 2", got)
	}
	if got := metricValue(t, mbody, `bsrngd_health_reseeds_total{alg="mickey"}`); got < 2 {
		t.Errorf("reseeds_total = %v, want ≥ 2 (one per rehabilitated shard)", got)
	}
	if got := metricValue(t, mbody, `bsrngd_health_quarantined_shards{alg="mickey"}`); got != 0 {
		t.Errorf("quarantined_shards gauge = %v after recovery, want 0", got)
	}

	// Recovered service is healthy: traffic flows, the reseeded streams
	// pass the online tests, and no new failures accumulate.
	_, before := getHealthz(t, ts.URL)
	checker := health.NewChecker(health.Config{})
	for i := 0; i < 8; i++ {
		status, body, _ := get(t, ts.URL+"/bytes?alg=mickey&n=2048")
		if status != http.StatusOK {
			t.Fatalf("post-recovery request %d: status %d", i, status)
		}
		if err := checker.Check(body); err != nil {
			t.Fatalf("post-recovery segment %d fails health tests: %v", i, err)
		}
	}
	_, after := getHealthz(t, ts.URL)
	if after.Pools["mickey"].HealthFailures != before.Pools["mickey"].HealthFailures {
		t.Errorf("health failures grew after recovery: %d -> %d",
			before.Pools["mickey"].HealthFailures, after.Pools["mickey"].HealthFailures)
	}
	if after.Pools["mickey"].SegmentsChecked <= before.Pools["mickey"].SegmentsChecked {
		t.Error("online tests stopped running after recovery")
	}

	// --- Phase D: a forced checkout error surfaces as 503, then heals ---
	faultinject.Arm(fpCheckout, 1)
	if status, _, _ := get(t, ts.URL+"/bytes?alg=mickey&n=64"); status != http.StatusServiceUnavailable {
		t.Fatalf("injected checkout fault: status %d, want 503", status)
	}
	if got := faultinject.Fired(fpCheckout); got != 1 {
		t.Fatalf("checkout failpoint fired %d times, want 1", got)
	}
	if status, _, _ := get(t, ts.URL+"/bytes?alg=mickey&n=64"); status != http.StatusOK {
		t.Fatalf("request after one-shot checkout fault: status %d, want 200", status)
	}
}

// Two identically-faulted servers must serve identical bytes, and those
// bytes must match the library stream under the same fault — the
// discard/reseed episode itself is deterministic, not just the healthy
// prefix.
func TestChaosDoubleRunByteIdentical(t *testing.T) {
	if !faultinject.Available() {
		t.Skip("faultinject compiled out")
	}
	t.Cleanup(faultinject.Reset)

	const (
		seed       = 42
		corruptNth = 3 // corrupt the 3rd checked segment of the run
		segments   = 8
	)
	fpCorrupt := "server.segment.corrupt." + core.MICKEY.String()

	run := func() []byte {
		faultinject.Reset()
		// Armed BEFORE the server exists: with a single shard and a single
		// worker the Nth checked segment is the Nth produced segment,
		// independent of request timing.
		faultinject.Arm(fpCorrupt, corruptNth)
		s, err := New(Config{
			Seed:         seed,
			Algorithms:   []core.Algorithm{core.MICKEY},
			ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: core.SegmentBytes,
			QuarantineAfter: 100, // a single healed fault must not eject the shard
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Shutdown(context.Background())
		}()
		var out []byte
		for i := 0; i < segments; i++ {
			status, body, _ := get(t, ts.URL+"/bytes?alg=mickey&n=2048")
			if status != http.StatusOK {
				t.Fatalf("segment %d: status %d", i, status)
			}
			out = append(out, body...)
		}
		return out
	}

	a := run()
	b := run()
	if faultinject.Fired(fpCorrupt) != 1 {
		t.Fatal("corruption failpoint never fired — the scenario is vacuous")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identically-faulted servers served different bytes")
	}

	// The library stream with the same per-check corruption hook defines
	// the expected bytes of the whole episode (core keys the replacement
	// segment from the same reseed epoch derivation).
	checker := health.NewChecker(health.Config{})
	var n atomic.Uint64
	hook := func(seg []byte) error {
		if n.Add(1) == corruptNth {
			for i := range seg {
				seg[i] = 0
			}
		}
		return checker.Check(seg)
	}
	ref, err := core.NewStream(core.MICKEY, seed, core.StreamConfig{
		Workers: 1, StagingBytes: core.SegmentBytes, Health: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]byte, len(a))
	if _, err := ref.Read(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, want) {
		t.Fatal("served chaos bytes diverge from the library stream under the same fault")
	}
	zero := make([]byte, core.SegmentBytes)
	for off := 0; off < len(a); off += core.SegmentBytes {
		if bytes.Equal(a[off:off+core.SegmentBytes], zero) {
			t.Fatalf("corrupted segment at offset %d was served to a client", off)
		}
	}
}

// MaxInflight sheds excess load with 429 + Retry-After instead of
// queueing it on shard checkout, and the shed requests are visible in
// the admission metrics.
func TestAdmissionControlShedsLoad(t *testing.T) {
	s, err := New(Config{
		Seed:         5,
		Algorithms:   []core.Algorithm{core.GRAIN},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024,
		MaxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookServing = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default: // later requests pass straight through
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/bytes?alg=grain&n=64")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered // first request holds the in-flight budget

	status, _, hdr := get(t, ts.URL+"/bytes?alg=grain&n=64")
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want %q", hdr.Get("Retry-After"), "1")
	}

	close(release)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("in-budget request: status %d, want 200", st)
	}
	// The budget is released with the request.
	if status, _, _ := get(t, ts.URL+"/bytes?alg=grain&n=64"); status != http.StatusOK {
		t.Fatalf("request after budget freed: status %d, want 200", status)
	}

	_, mbody, _ := get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, "bsrngd_admission_rejected_total"); got != 1 {
		t.Errorf("admission_rejected_total = %v, want 1", got)
	}
	if !strings.Contains(string(mbody), `bsrngd_requests_total{alg="grain",status="429"} 1`) {
		t.Errorf("shed request not counted in bsrngd_requests_total:\n%s", mbody)
	}
}

// /healthz carries the per-algorithm pool state as JSON while keeping
// the 200-when-ok contract, and reports nothing checked when the online
// tests are disabled.
func TestHealthzReportsPoolState(t *testing.T) {
	cfg := Config{Seed: 2, ShardsPerAlg: 2, WorkersPerShard: 1, StagingBytes: 2048}
	_, ts := newTestServer(t, cfg)

	if status, _, _ := get(t, ts.URL+"/bytes?alg=grain&n=2048"); status != http.StatusOK {
		t.Fatal("priming request failed")
	}
	status, body, hdr := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("healthz content type %q", ct)
	}
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz is not JSON (%v): %s", err, body)
	}
	if hz.Status != "ok" {
		t.Errorf("status %q, want ok", hz.Status)
	}
	if len(hz.Pools) != len(core.ServedAlgorithms) {
		t.Errorf("healthz reports %d pools, want %d", len(hz.Pools), len(core.ServedAlgorithms))
	}
	for _, alg := range core.ServedAlgorithms {
		ph, ok := hz.Pools[alg.String()]
		if !ok {
			t.Errorf("pool %v missing from healthz", alg)
			continue
		}
		if ph.Shards != 2 || ph.Quarantined != 0 {
			t.Errorf("pool %v state %+v, want 2 shards, none quarantined", alg, ph)
		}
	}
	if hz.Pools["grain"].SegmentsChecked == 0 {
		t.Error("grain pool served traffic but reports zero checked segments")
	}

	// With the online tests disabled, nothing is checked and nothing can
	// quarantine — but the endpoint still reports the pool shape.
	_, ts2 := newTestServer(t, Config{
		Seed:         2,
		Algorithms:   []core.Algorithm{core.MICKEY},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 2048,
		DisableHealth: true,
	})
	if status, _, _ := get(t, ts2.URL+"/bytes?alg=mickey&n=2048"); status != http.StatusOK {
		t.Fatal("health-off request failed")
	}
	status, hz2 := getHealthz(t, ts2.URL)
	if status != http.StatusOK || hz2.Status != "ok" {
		t.Fatalf("health-off healthz: status=%d %+v", status, hz2)
	}
	if ph := hz2.Pools["mickey"]; ph.Shards != 1 || ph.SegmentsChecked != 0 || ph.HealthFailures != 0 {
		t.Errorf("health-off pool state %+v, want 1 shard and zero health activity", ph)
	}
}
