package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// post issues a body-less POST and decodes the lease document when the
// response is JSON.
func post(t *testing.T, url string) (int, leaseDoc, []byte) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc leaseDoc
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("lease response is not JSON (%v): %s", err, body)
		}
	}
	return resp.StatusCode, doc, body
}

// The lease surface: POST /lease allocates distinct domains with
// validated windows, GET /lease/{id} resolves any structurally valid
// token, and the failure modes are specific.
func TestLeaseAPI(t *testing.T) {
	cfg := Config{
		Seed:         9,
		Algorithms:   []core.Algorithm{core.GRAIN, core.MICKEY},
		ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024,
		MaxLeaseSegments: 16,
	}
	_, ts := newTestServer(t, cfg)

	status, doc, body := post(t, ts.URL+"/lease?alg=grain&segments=4")
	if status != http.StatusCreated {
		t.Fatalf("create: status %d (%s)", status, body)
	}
	if doc.Algorithm != "grain" || doc.Segments != 4 || doc.SegmentBytes != core.SegmentBytes {
		t.Fatalf("lease doc %+v", doc)
	}
	if doc.Bytes != 4*core.SegmentBytes {
		t.Errorf("lease bytes %d, want %d", doc.Bytes, 4*core.SegmentBytes)
	}
	if doc.Domain < leaseDomainBase {
		t.Errorf("lease domain %d inside the stream-worker range", doc.Domain)
	}
	if !strings.HasPrefix(doc.StreamPath, "/stream?lease=") {
		t.Errorf("stream path %q", doc.StreamPath)
	}

	// Each lease gets its own domain: concurrent holders never overlap.
	_, doc2, _ := post(t, ts.URL+"/lease?alg=grain&segments=4")
	if doc2.Domain == doc.Domain {
		t.Error("two leases share a domain")
	}

	// The window defaults to the configured cap.
	status, doc3, _ := post(t, ts.URL+"/lease?alg=mickey")
	if status != http.StatusCreated || doc3.Segments != 16 {
		t.Fatalf("default window: status %d, %d segments, want cap 16", status, doc3.Segments)
	}

	for _, tc := range []struct {
		name string
		path string
		want int
	}{
		{"over window cap", "/lease?alg=grain&segments=17", http.StatusRequestEntityTooLarge},
		{"zero segments", "/lease?alg=grain&segments=0", http.StatusBadRequest},
		{"unknown alg", "/lease?alg=nope", http.StatusBadRequest},
	} {
		if status, _, _ := post(t, ts.URL+tc.path); status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		}
	}

	// Tokens resolve statelessly.
	status, body, _ = get(t, ts.URL+"/lease/"+doc.ID)
	if status != http.StatusOK {
		t.Fatalf("resolve: status %d", status)
	}
	var echo leaseDoc
	if err := json.Unmarshal(body, &echo); err != nil || echo != doc {
		t.Fatalf("resolved doc %+v != issued doc %+v (err %v)", echo, doc, err)
	}
	if status, _, _ := get(t, ts.URL+"/lease/garbage!"); status != http.StatusBadRequest {
		t.Error("garbage token did not 400")
	}
	unserved := lease{Alg: core.TRIVIUM, Domain: leaseDomainBase + 1, Segments: 2}.id()
	if status, _, _ := get(t, ts.URL+"/lease/"+unserved); status != http.StatusNotFound {
		t.Error("token for an unserved algorithm did not 404")
	}

	_, mbody, _ := get(t, ts.URL+"/metrics")
	if got := metricValue(t, mbody, "bsrngd_leases_issued_total"); got != 3 {
		t.Errorf("leases_issued_total = %v, want 3", got)
	}
}

// Satellite differential: a lease window served over /stream survives a
// daemon restart and is byte-identical at lanes 64/256/512 — to itself,
// to the library SegmentReader, and when resumed mid-segment — because
// the token addresses the deterministic (seed, domain, segment) space,
// not server state.
func TestLeaseStreamRestartAndLanesDifferential(t *testing.T) {
	const seed = 77
	boot := func(lanes int) (*httptest.Server, func()) {
		s, err := New(Config{
			Seed:         seed,
			Algorithms:   []core.Algorithm{core.TRIVIUM},
			ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 2048,
			Lanes: lanes,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return ts, func() {
			ts.Close()
			s.Shutdown(context.Background())
		}
	}

	// First daemon life: issue the lease and pull the whole window.
	tsA, closeA := boot(0)
	status, doc, body := post(t, tsA.URL+"/lease?alg=trivium&segments=4")
	if status != http.StatusCreated {
		t.Fatalf("lease create: status %d (%s)", status, body)
	}
	status, full, hdr := get(t, tsA.URL+doc.StreamPath)
	if status != http.StatusOK {
		t.Fatalf("lease stream: status %d", status)
	}
	if got := hdr.Get("X-Bsrng-Mode"); got != "lease" {
		t.Errorf("mode header %q, want lease", got)
	}
	// n defaulted to the remaining window: the full lease in one pull.
	if len(full) != int(doc.Bytes) {
		t.Fatalf("lease stream served %d bytes, want the %d-byte window", len(full), doc.Bytes)
	}
	closeA() // daemon restarts; the token outlives it

	// The library defines the expected bytes for anyone holding the seed.
	src, err := core.NewSegmentReader(core.TRIVIUM, seed, doc.Domain, 0,
		doc.StartSegment*core.SegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, doc.Bytes)
	if _, err := io.ReadFull(src, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, want) {
		t.Fatal("lease window diverges from core.NewSegmentReader")
	}

	for _, lanes := range core.SupportedLanes {
		tsB, closeB := boot(lanes)
		if status, _, _ := get(t, tsB.URL+"/lease/"+doc.ID); status != http.StatusOK {
			t.Fatalf("lanes=%d: lease token did not survive the restart", lanes)
		}
		status, got, _ := get(t, fmt.Sprintf("%s%s&lanes=%d", tsB.URL, doc.StreamPath, lanes))
		if status != http.StatusOK || !bytes.Equal(got, full) {
			t.Fatalf("lanes=%d: restarted window (status %d) not byte-identical", lanes, status)
		}

		// Resume mid-segment after a simulated disconnect: off is absolute
		// into the lease window, landing inside segment 1.
		const off = core.SegmentBytes + 777
		status, tail, hdr := get(t,
			fmt.Sprintf("%s%s&off=%d&lanes=%d", tsB.URL, doc.StreamPath, off, lanes))
		if status != http.StatusOK {
			t.Fatalf("lanes=%d: resume status %d", lanes, status)
		}
		if hdr.Get("X-Bsrng-Mode") != "lease" {
			t.Errorf("resume mode header %q", hdr.Get("X-Bsrng-Mode"))
		}
		if !bytes.Equal(tail, full[off:]) {
			t.Fatalf("lanes=%d: resume from offset %d diverges from the original window", lanes, off)
		}
		// An n past the remaining window clamps to it (resume semantics).
		status, clamped, _ := get(t,
			fmt.Sprintf("%s%s&off=%d&n=%d&lanes=%d", tsB.URL, doc.StreamPath, off, doc.Bytes, lanes))
		if status != http.StatusOK || len(clamped) != int(doc.Bytes)-off {
			t.Fatalf("lanes=%d: clamped resume served %d bytes, want %d",
				lanes, len(clamped), int(doc.Bytes)-off)
		}
		closeB()
	}
}
