package server

import (
	"bytes"
	"encoding/hex"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestResponseBufferPoolReuse pins the hex path's buffer pooling: the
// first request warms the pool, later ones reuse it, and the reuse
// counter is exported on /metrics.
func TestResponseBufferPoolReuse(t *testing.T) {
	cfg := Config{Seed: 3, ShardsPerAlg: 1, WorkersPerShard: 1, StagingBytes: 1024}
	s, ts := newTestServer(t, cfg)

	for i := 0; i < 3; i++ {
		if status, _, _ := get(t, ts.URL+"/bytes?alg=grain&n=64&hex=1"); status != http.StatusOK {
			t.Fatalf("request %d status %d", i, status)
		}
	}
	// sync.Pool may drop buffers under GC pressure, so require only that
	// reuse happened, not an exact count.
	if got := s.respBufReused.Value(); got < 1 {
		t.Fatalf("response buffer reuse counter = %d after 3 hex requests, want ≥ 1", got)
	}
	status, body, _ := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	if !strings.Contains(string(body), "bsrngd_response_buffers_reused_total") {
		t.Fatal("metrics missing bsrngd_response_buffers_reused_total")
	}
}

// TestMixedHexBinaryContinuation alternates hex and binary requests on
// one shard and checks the concatenated payloads are the canonical
// stream — the binary WriteTo path and the buffered hex path share the
// shard's cursor, including mid-chunk handoffs (n is never
// chunk-aligned here).
func TestMixedHexBinaryContinuation(t *testing.T) {
	cfg := Config{Seed: 11, ShardsPerAlg: 1, WorkersPerShard: 2, StagingBytes: 2048}
	_, ts := newTestServer(t, cfg)

	var got bytes.Buffer
	for i := 0; i < 4; i++ {
		if i%2 == 0 {
			status, body, _ := get(t, ts.URL+"/bytes?alg=trivium&n=1500")
			if status != http.StatusOK {
				t.Fatalf("binary request %d status %d", i, status)
			}
			got.Write(body)
		} else {
			status, body, _ := get(t, ts.URL+"/bytes?alg=trivium&n=700&hex=1")
			if status != http.StatusOK {
				t.Fatalf("hex request %d status %d", i, status)
			}
			raw, err := hex.DecodeString(strings.TrimSuffix(string(body), "\n"))
			if err != nil {
				t.Fatalf("hex request %d: %v", i, err)
			}
			got.Write(raw)
		}
	}

	ref, err := core.NewStream(core.TRIVIUM, 11, core.StreamConfig{Workers: 2, StagingBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]byte, got.Len())
	if _, err := ref.Read(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("mixed hex/binary requests diverge from canonical stream")
	}
}
