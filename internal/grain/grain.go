// Package grain implements the Grain v1 stream cipher (Hell, Johansson,
// Meier — eSTREAM Profile 2) in a specification-clarity reference form and
// the bitsliced 64-lane form of the paper's §4 (Fig. 4 shows the cipher's
// LFSR+NFSR structure).
//
// Grain v1: an 80-bit LFSR and an 80-bit NFSR clocked together; the filter
// h(x) taps both registers; initialization runs 160 clocks with the output
// fed back into both registers. Key and IV bits are loaded MSB-first
// within bytes (the same convention as this repo's MICKEY module); official
// eSTREAM known-answer vectors are unavailable offline, so conformance is
// established by reference ↔ bitsliced cross-validation plus statistical
// testing (see DESIGN.md §2).
package grain

import "fmt"

// KeySize is the Grain v1 key length in bytes (80 bits).
const KeySize = 10

// IVSize is the Grain v1 initialization-vector length in bytes (64 bits).
const IVSize = 8

// regBits is the length of each register.
const regBits = 80

// initClocks is the number of initialization clocks mandated by the spec.
const initClocks = 160

// Ref is the one-byte-per-bit reference implementation.
type Ref struct {
	s [regBits]uint8 // LFSR
	b [regBits]uint8 // NFSR
}

// NewRef returns a keyed Grain v1 instance.
func NewRef(key, iv []byte) (*Ref, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("grain: key must be %d bytes", KeySize)
	}
	if len(iv) != IVSize {
		return nil, fmt.Errorf("grain: iv must be %d bytes", IVSize)
	}
	g := &Ref{}
	for i := 0; i < regBits; i++ {
		g.b[i] = bitOf(key, i)
	}
	for i := 0; i < 64; i++ {
		g.s[i] = bitOf(iv, i)
	}
	for i := 64; i < regBits; i++ {
		g.s[i] = 1
	}
	for i := 0; i < initClocks; i++ {
		z := g.outputBit()
		g.clock(z, z)
	}
	return g, nil
}

// bitOf extracts bit i MSB-first within bytes.
func bitOf(p []byte, i int) uint8 {
	return (p[i>>3] >> uint(7-i&7)) & 1
}

// lfsrFeedback computes s[t+80] = s62+s51+s38+s23+s13+s0.
func (g *Ref) lfsrFeedback() uint8 {
	return g.s[62] ^ g.s[51] ^ g.s[38] ^ g.s[23] ^ g.s[13] ^ g.s[0]
}

// nfsrFeedback computes b[t+80] = s0 + g(b...), the spec's nonlinear
// feedback with the LFSR masking bit.
func (g *Ref) nfsrFeedback() uint8 {
	b := &g.b
	lin := b[62] ^ b[60] ^ b[52] ^ b[45] ^ b[37] ^ b[33] ^ b[28] ^ b[21] ^ b[14] ^ b[9] ^ b[0]
	nl := b[63]&b[60] ^ b[37]&b[33] ^ b[15]&b[9] ^
		b[60]&b[52]&b[45] ^ b[33]&b[28]&b[21] ^
		b[63]&b[45]&b[28]&b[9] ^ b[60]&b[52]&b[37]&b[33] ^ b[63]&b[60]&b[21]&b[15] ^
		b[63]&b[60]&b[52]&b[45]&b[37] ^ b[33]&b[28]&b[21]&b[15]&b[9] ^
		b[52]&b[45]&b[37]&b[33]&b[28]&b[21]
	return g.s[0] ^ lin ^ nl
}

// outputBit computes z = Σ_{k∈A} b_k + h(s3, s25, s46, s64, b63),
// A = {1, 2, 4, 10, 31, 43, 56}.
func (g *Ref) outputBit() uint8 {
	x0, x1, x2, x3, x4 := g.s[3], g.s[25], g.s[46], g.s[64], g.b[63]
	h := x1 ^ x4 ^ x0&x3 ^ x2&x3 ^ x3&x4 ^
		x0&x1&x2 ^ x0&x2&x3 ^ x0&x2&x4 ^ x1&x2&x4 ^ x2&x3&x4
	a := g.b[1] ^ g.b[2] ^ g.b[4] ^ g.b[10] ^ g.b[31] ^ g.b[43] ^ g.b[56]
	return a ^ h
}

// clock shifts both registers, XORing fbS/fbB (the initialization
// feedback of the output bit; zero in keystream mode) into the new bits.
func (g *Ref) clock(fbS, fbB uint8) {
	ns := g.lfsrFeedback() ^ fbS
	nb := g.nfsrFeedback() ^ fbB
	copy(g.s[:], g.s[1:])
	copy(g.b[:], g.b[1:])
	g.s[regBits-1] = ns
	g.b[regBits-1] = nb
}

// KeystreamBit emits the next keystream bit.
func (g *Ref) KeystreamBit() uint8 {
	z := g.outputBit()
	g.clock(0, 0)
	return z
}

// Keystream fills dst with keystream bytes, bits packed MSB-first.
func (g *Ref) Keystream(dst []byte) {
	for i := range dst {
		var by byte
		for j := 7; j >= 0; j-- {
			by |= g.KeystreamBit() << uint(j)
		}
		dst[i] = by
	}
}
