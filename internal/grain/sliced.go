package grain

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitslice"
)

// window is the number of clocks run between buffer rebases. Instead of
// shifting 160 planes every clock (the naive cost the paper's §4.3
// eliminates), the bitsliced engine appends each new state plane after the
// live window and slides the window origin; one bulk copy per 64 clocks
// rebases the buffers.
const window = 64

// Sliced is the bitsliced 64-lane Grain v1 engine: one uint64 plane per
// register bit, 64 independent cipher instances per word, all register
// shifts replaced by index renaming.
type Sliced struct {
	s, b  []uint64 // plane buffers of length regBits+window
	pos   int      // window origin: state bit i of the current clock is s[pos+i]
	lanes int
}

// NewSliced builds a 64-lane (or fewer) engine; keys[L]/ivs[L] belong to
// lane L. Initialization runs the spec's 160 feedback clocks for all lanes
// in lock-step.
func NewSliced(keys, ivs [][]byte) (*Sliced, error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.W {
		return nil, fmt.Errorf("grain: lane count %d out of range [1,64]", lanes)
	}
	if len(ivs) != lanes {
		return nil, fmt.Errorf("grain: %d keys but %d ivs", lanes, len(ivs))
	}
	g := &Sliced{
		s:     make([]uint64, regBits+window),
		b:     make([]uint64, regBits+window),
		lanes: lanes,
	}
	for l := 0; l < lanes; l++ {
		if len(keys[l]) != KeySize {
			return nil, fmt.Errorf("grain: lane %d key must be %d bytes", l, KeySize)
		}
		if len(ivs[l]) != IVSize {
			return nil, fmt.Errorf("grain: lane %d iv must be %d bytes", l, IVSize)
		}
		for i := 0; i < regBits; i++ {
			bitslice.SetLaneBit(g.b, i, l, bitOf(keys[l], i))
		}
		for i := 0; i < 64; i++ {
			bitslice.SetLaneBit(g.s, i, l, bitOf(ivs[l], i))
		}
		for i := 64; i < regBits; i++ {
			bitslice.SetLaneBit(g.s, i, l, 1)
		}
	}
	for i := 0; i < initClocks; i++ {
		z := g.outputWord()
		g.clock(z, z)
	}
	return g, nil
}

// Lanes returns the number of active lanes.
func (g *Sliced) Lanes() int { return g.lanes }

func (g *Sliced) outputWord() uint64 {
	s := g.s[g.pos:]
	b := g.b[g.pos:]
	x0, x1, x2, x3, x4 := s[3], s[25], s[46], s[64], b[63]
	h := x1 ^ x4 ^ x0&x3 ^ x2&x3 ^ x3&x4 ^
		x0&x1&x2 ^ x0&x2&x3 ^ x0&x2&x4 ^ x1&x2&x4 ^ x2&x3&x4
	a := b[1] ^ b[2] ^ b[4] ^ b[10] ^ b[31] ^ b[43] ^ b[56]
	return a ^ h
}

// clock advances all lanes one step, XORing the feedback words into the
// new planes (used during initialization; zero words in keystream mode).
func (g *Sliced) clock(fbS, fbB uint64) {
	s := g.s[g.pos:]
	b := g.b[g.pos:]
	ns := s[62] ^ s[51] ^ s[38] ^ s[23] ^ s[13] ^ s[0] ^ fbS
	lin := b[62] ^ b[60] ^ b[52] ^ b[45] ^ b[37] ^ b[33] ^ b[28] ^ b[21] ^ b[14] ^ b[9] ^ b[0]
	nl := b[63]&b[60] ^ b[37]&b[33] ^ b[15]&b[9] ^
		b[60]&b[52]&b[45] ^ b[33]&b[28]&b[21] ^
		b[63]&b[45]&b[28]&b[9] ^ b[60]&b[52]&b[37]&b[33] ^ b[63]&b[60]&b[21]&b[15] ^
		b[63]&b[60]&b[52]&b[45]&b[37] ^ b[33]&b[28]&b[21]&b[15]&b[9] ^
		b[52]&b[45]&b[37]&b[33]&b[28]&b[21]
	nb := s[0] ^ lin ^ nl ^ fbB

	g.s[g.pos+regBits] = ns
	g.b[g.pos+regBits] = nb
	g.pos++
	if g.pos == window {
		copy(g.s[:regBits], g.s[window:])
		copy(g.b[:regBits], g.b[window:])
		g.pos = 0
	}
}

// ClockWord emits one keystream word (bit L = lane L's next bit) and
// advances the generator.
func (g *Sliced) ClockWord() uint64 {
	z := g.outputWord()
	g.clock(0, 0)
	return z
}

// KeystreamBlock runs 64 clocks and transposes so that out[L], written
// little-endian, is 8 keystream bytes of lane L with MSB-first bit packing
// (byte-compatible with Ref.Keystream).
func (g *Sliced) KeystreamBlock(out *[64]uint64) {
	for t := 0; t < 64; t++ {
		out[(t&^7)|(7-t&7)] = g.ClockWord()
	}
	bitslice.Transpose64(out)
}

// Keystream fills one equal-length buffer per lane with that lane's
// keystream bytes; lengths must be equal multiples of 8.
func (g *Sliced) Keystream(bufs [][]byte) error {
	if len(bufs) != g.lanes {
		return fmt.Errorf("grain: %d buffers for %d lanes", len(bufs), g.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("grain: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("grain: buffer length must be a multiple of 8")
	}
	var blk [64]uint64
	for off := 0; off < n; off += 8 {
		g.KeystreamBlock(&blk)
		for l := 0; l < g.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], blk[l])
		}
	}
	return nil
}

// KeystreamWords fills dst with raw device-order keystream words.
func (g *Sliced) KeystreamWords(dst []uint64) {
	for i := range dst {
		dst[i] = g.ClockWord()
	}
}
