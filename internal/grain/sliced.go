package grain

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/bitslice"
)

// window is the number of clocks run between buffer rebases. Instead of
// shifting 160 planes every clock (the naive cost the paper's §4.3
// eliminates), the bitsliced engine appends each new state plane after the
// live window and slides the window origin; one bulk copy per 64 clocks
// rebases the buffers.
const window = 64

// SlicedVec is the bitsliced Grain v1 engine over the plane width V: one
// V-plane per register bit, 64·K independent cipher instances per plane,
// all register shifts replaced by index renaming. Every lane-wise
// operation applies independently to each of V's K words, so the wide
// engine is K lock-stepped 64-lane engines under one control flow.
type SlicedVec[V bitslice.Vec] struct {
	s, b  []V // plane buffers of length regBits+window
	pos   int // window origin: state bit i of the current clock is s[pos+i]
	lanes int

	// vals is Reseed's packing scratch: one word per lane, so reloading
	// key/IV material packs 64 bits per lane at a time (a word transpose)
	// instead of setting 144 bits per lane one by one — and allocates
	// nothing on the per-pass rekey path.
	vals []uint64
}

// Sliced is the native 64-lane engine (the uint64 datapath).
type Sliced = SlicedVec[bitslice.V64]

// NewSliced builds a 64-lane (or fewer) engine; keys[L]/ivs[L] belong to
// lane L. Initialization runs the spec's 160 feedback clocks for all lanes
// in lock-step.
func NewSliced(keys, ivs [][]byte) (*Sliced, error) {
	return NewSlicedVec[bitslice.V64](keys, ivs)
}

// NewSlicedVec builds an engine of up to bitslice.VecLanes[V]() lanes.
func NewSlicedVec[V bitslice.Vec](keys, ivs [][]byte) (*SlicedVec[V], error) {
	lanes := len(keys)
	if lanes == 0 || lanes > bitslice.VecLanes[V]() {
		return nil, fmt.Errorf("grain: lane count %d out of range [1,%d]", lanes, bitslice.VecLanes[V]())
	}
	g := &SlicedVec[V]{
		s:     make([]V, regBits+window),
		b:     make([]V, regBits+window),
		lanes: lanes,
		vals:  make([]uint64, lanes),
	}
	if err := g.Reseed(keys, ivs); err != nil {
		return nil, err
	}
	return g, nil
}

// Reseed reloads fresh per-lane key/IV material and re-runs the spec's
// initialization clocks, reusing the engine's buffers. The lane count
// must match the one the engine was built with.
func (g *SlicedVec[V]) Reseed(keys, ivs [][]byte) error {
	if len(keys) != g.lanes {
		return fmt.Errorf("grain: %d keys for %d lanes", len(keys), g.lanes)
	}
	if len(ivs) != g.lanes {
		return fmt.Errorf("grain: %d keys but %d ivs", len(keys), len(ivs))
	}
	for l := 0; l < g.lanes; l++ {
		if len(keys[l]) != KeySize {
			return fmt.Errorf("grain: lane %d key must be %d bytes", l, KeySize)
		}
		if len(ivs[l]) != IVSize {
			return fmt.Errorf("grain: lane %d iv must be %d bytes", l, IVSize)
		}
	}
	g.pos = 0
	// Load the registers 64 bits per lane at a time: pack the (MSB-first
	// within bytes) material into one word per lane and word-transpose it
	// into planes. Every plane in [0, regBits) is overwritten and the
	// window tail is fully rewritten before it is ever read, so no
	// zeroing pass is needed.
	g.packPlanes(g.b[:64], keys, 0, 8)        // NFSR bits 0..63
	g.packPlanes(g.b[64:regBits], keys, 8, 2) // NFSR bits 64..79
	g.packPlanes(g.s[:64], ivs, 0, 8)         // LFSR bits 0..63 = IV
	ones := bitslice.BroadcastVec[V](1)
	for i := 64; i < regBits; i++ { // LFSR bits 64..79 = all-ones
		g.s[i] = ones
	}
	// Mask the all-ones planes down to the active lanes so inactive lane
	// bits stay zero, as the bit-by-bit load left them.
	if g.lanes < bitslice.VecLanes[V]() {
		var mask V
		for l := 0; l < g.lanes; l++ {
			mask[l>>6] |= uint64(1) << uint(l&63)
		}
		for i := 64; i < regBits; i++ {
			for k := 0; k < len(mask); k++ {
				g.s[i][k] &= mask[k]
			}
		}
	}
	for i := 0; i < initClocks; i++ {
		z := g.outputVec()
		g.clock(z, z)
	}
	return nil
}

// packPlanes fills dst (up to 64 planes) from byte material: plane i,
// lane L = bit i (MSB-first within bytes) of src[L][off:off+nbytes].
func (g *SlicedVec[V]) packPlanes(dst []V, src [][]byte, off, nbytes int) {
	for l := 0; l < g.lanes; l++ {
		var w uint64
		for j := 0; j < nbytes; j++ {
			w |= uint64(bits.Reverse8(src[l][off+j])) << uint(8*j)
		}
		g.vals[l] = w
	}
	planes := bitslice.PackWordsVec[V](g.vals)
	copy(dst, planes[:])
}

// Lanes returns the number of active lanes.
func (g *SlicedVec[V]) Lanes() int { return g.lanes }

func (g *SlicedVec[V]) outputVec() V {
	// Exact-length reslices let the compiler drop the bounds checks on
	// the constant tap indices below.
	s := g.s[g.pos:][:65]
	b := g.b[g.pos:][:64]
	var z V
	for k := 0; k < len(z); k++ {
		x0, x1, x2, x3, x4 := s[3][k], s[25][k], s[46][k], s[64][k], b[63][k]
		h := x1 ^ x4 ^ x0&x3 ^ x2&x3 ^ x3&x4 ^
			x0&x1&x2 ^ x0&x2&x3 ^ x0&x2&x4 ^ x1&x2&x4 ^ x2&x3&x4
		a := b[1][k] ^ b[2][k] ^ b[4][k] ^ b[10][k] ^ b[31][k] ^ b[43][k] ^ b[56][k]
		z[k] = a ^ h
	}
	return z
}

// clock advances all lanes one step, XORing the feedback planes into the
// new planes (used during initialization; zero planes in keystream mode).
func (g *SlicedVec[V]) clock(fbS, fbB V) {
	s := g.s[g.pos:][:63]
	b := g.b[g.pos:][:64]
	var ns, nb V
	for k := 0; k < len(fbS); k++ {
		ns[k] = s[62][k] ^ s[51][k] ^ s[38][k] ^ s[23][k] ^ s[13][k] ^ s[0][k] ^ fbS[k]
		lin := b[62][k] ^ b[60][k] ^ b[52][k] ^ b[45][k] ^ b[37][k] ^ b[33][k] ^
			b[28][k] ^ b[21][k] ^ b[14][k] ^ b[9][k] ^ b[0][k]
		nl := b[63][k]&b[60][k] ^ b[37][k]&b[33][k] ^ b[15][k]&b[9][k] ^
			b[60][k]&b[52][k]&b[45][k] ^ b[33][k]&b[28][k]&b[21][k] ^
			b[63][k]&b[45][k]&b[28][k]&b[9][k] ^ b[60][k]&b[52][k]&b[37][k]&b[33][k] ^
			b[63][k]&b[60][k]&b[21][k]&b[15][k] ^
			b[63][k]&b[60][k]&b[52][k]&b[45][k]&b[37][k] ^
			b[33][k]&b[28][k]&b[21][k]&b[15][k]&b[9][k] ^
			b[52][k]&b[45][k]&b[37][k]&b[33][k]&b[28][k]&b[21][k]
		nb[k] = s[0][k] ^ lin ^ nl ^ fbB[k]
	}

	g.s[g.pos+regBits] = ns
	g.b[g.pos+regBits] = nb
	g.pos++
	if g.pos == window {
		copy(g.s[:regBits], g.s[window:])
		copy(g.b[:regBits], g.b[window:])
		g.pos = 0
	}
}

// ClockVec emits one keystream plane (lane L = lane L's next bit) and
// advances the generator. Output filter and register feedback are fused
// into one pass over the lanes: in keystream mode the feedback planes
// are zero, so the separate outputVec+clock round trip (two loop bodies,
// two sets of slice headers per clock) collapses into one.
func (g *SlicedVec[V]) ClockVec() V {
	s := g.s[g.pos:][:65]
	b := g.b[g.pos:][:64]
	var z, ns, nb V
	for k := 0; k < len(z); k++ {
		x0, x1, x2, x3, x4 := s[3][k], s[25][k], s[46][k], s[64][k], b[63][k]
		h := x1 ^ x4 ^ x0&x3 ^ x2&x3 ^ x3&x4 ^
			x0&x1&x2 ^ x0&x2&x3 ^ x0&x2&x4 ^ x1&x2&x4 ^ x2&x3&x4
		a := b[1][k] ^ b[2][k] ^ b[4][k] ^ b[10][k] ^ b[31][k] ^ b[43][k] ^ b[56][k]
		z[k] = a ^ h

		ns[k] = s[62][k] ^ s[51][k] ^ s[38][k] ^ s[23][k] ^ s[13][k] ^ s[0][k]
		lin := b[62][k] ^ b[60][k] ^ b[52][k] ^ b[45][k] ^ b[37][k] ^ b[33][k] ^
			b[28][k] ^ b[21][k] ^ b[14][k] ^ b[9][k] ^ b[0][k]
		nl := x4&b[60][k] ^ b[37][k]&b[33][k] ^ b[15][k]&b[9][k] ^
			b[60][k]&b[52][k]&b[45][k] ^ b[33][k]&b[28][k]&b[21][k] ^
			x4&b[45][k]&b[28][k]&b[9][k] ^ b[60][k]&b[52][k]&b[37][k]&b[33][k] ^
			x4&b[60][k]&b[21][k]&b[15][k] ^
			x4&b[60][k]&b[52][k]&b[45][k]&b[37][k] ^
			b[33][k]&b[28][k]&b[21][k]&b[15][k]&b[9][k] ^
			b[52][k]&b[45][k]&b[37][k]&b[33][k]&b[28][k]&b[21][k]
		nb[k] = s[0][k] ^ lin ^ nl
	}
	g.s[g.pos+regBits] = ns
	g.b[g.pos+regBits] = nb
	g.pos++
	if g.pos == window {
		copy(g.s[:regBits], g.s[window:])
		copy(g.b[:regBits], g.b[window:])
		g.pos = 0
	}
	return z
}

// ClockWord emits the keystream word of lanes 0..63 and advances all
// lanes; for the 64-lane engine this is the whole keystream plane.
func (g *SlicedVec[V]) ClockWord() uint64 {
	z := g.ClockVec()
	return z[0]
}

// KeystreamBlockVec runs 64 clocks and transposes so that out[j][k],
// written little-endian, is 8 keystream bytes of lane 64·k+j with
// MSB-first bit packing (byte-compatible with Ref.Keystream).
func (g *SlicedVec[V]) KeystreamBlockVec(out *[64]V) {
	for t := 0; t < 64; t++ {
		out[(t&^7)|(7-t&7)] = g.ClockVec()
	}
	bitslice.TransposeVec(out)
}

// KeystreamBlock is KeystreamBlockVec restricted to lanes 0..63.
func (g *SlicedVec[V]) KeystreamBlock(out *[64]uint64) {
	var blk [64]V
	g.KeystreamBlockVec(&blk)
	for i := range out {
		out[i] = blk[i][0]
	}
}

// Keystream fills one equal-length buffer per lane with that lane's
// keystream bytes; lengths must be equal multiples of 8.
func (g *SlicedVec[V]) Keystream(bufs [][]byte) error {
	if len(bufs) != g.lanes {
		return fmt.Errorf("grain: %d buffers for %d lanes", len(bufs), g.lanes)
	}
	if len(bufs) == 0 {
		return nil
	}
	n := len(bufs[0])
	for _, b := range bufs {
		if len(b) != n {
			return fmt.Errorf("grain: ragged keystream buffers")
		}
	}
	if n%8 != 0 {
		return fmt.Errorf("grain: buffer length must be a multiple of 8")
	}
	var blk [64]V
	for off := 0; off < n; off += 8 {
		g.KeystreamBlockVec(&blk)
		for l := 0; l < g.lanes; l++ {
			binary.LittleEndian.PutUint64(bufs[l][off:off+8], blk[l&63][l>>6])
		}
	}
	return nil
}

// KeystreamWords fills dst with raw device-order keystream words of lanes
// 0..63.
func (g *SlicedVec[V]) KeystreamWords(dst []uint64) {
	for i := range dst {
		dst[i] = g.ClockWord()
	}
}
