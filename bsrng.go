// Package bsrng is a high-throughput parallel bitsliced pseudo-random
// number generator library — a from-scratch Go reproduction of
// "BSRNG: A High Throughput Parallel BitSliced Approach for Random Number
// Generators" (ICPP Workshops 2020).
//
// The library generates cryptographically-grade pseudo-random bytes with
// bitsliced (column-major) implementations of the MICKEY 2.0 and Grain v1
// stream ciphers and AES-128 in counter mode: one 64-bit word carries the
// same state bit of 64 independent cipher instances, so every XOR/AND
// advances 64 generators at once and the LFSR shift-and-mask work
// disappears into register renaming.
//
// Quick start:
//
//	g, err := bsrng.New(bsrng.MICKEY, 42)
//	if err != nil { ... }
//	buf := make([]byte, 1<<20)
//	g.Read(buf) // deterministic, seeded, NIST SP 800-22-clean bytes
//
// For multi-core throughput use Stream (a deterministic worker pool) or
// Fill (a one-shot parallel fill):
//
//	s, err := bsrng.NewStream(bsrng.GRAIN, 42, bsrng.StreamConfig{})
//	defer s.Close()
//	s.Read(buf)
//
// Stream's datapath is zero-copy: each worker's engine writes segments
// straight into the staging chunk it hands to the consumer, so the
// steady state allocates nothing and each output byte is copied at most
// once (chunk → your buffer). To skip that last copy too, consume via
// s.WriteTo(w) or s.NextChunk()/s.Recycle().
//
// The repository also contains the paper's full evaluation apparatus: the
// naive baselines, the cuRAND generator family, an NIST SP 800-22
// implementation, and the GPU roofline model that regenerates the paper's
// tables and figures (see cmd/experiments and EXPERIMENTS.md).
package bsrng

import (
	"repro/internal/core"
	"repro/internal/health"
)

// Algorithm selects the underlying bitsliced CSPRNG.
type Algorithm = core.Algorithm

// The supported algorithms.
const (
	// MICKEY is the bitsliced MICKEY 2.0 engine — the paper's headline
	// generator.
	MICKEY = core.MICKEY
	// GRAIN is the bitsliced Grain v1 engine — the fastest engine on CPU.
	GRAIN = core.GRAIN
	// AESCTR is the bitsliced AES-128 counter-mode engine.
	AESCTR = core.AESCTR
	// TRIVIUM is the bitsliced Trivium engine (extension beyond the
	// paper's three ciphers; fastest in this repository).
	TRIVIUM = core.TRIVIUM
	// XORGENS is the bitsliced xorgens-style F₂-linear engine (Brent's
	// xorgens4096 recurrence).
	XORGENS = core.XORGENS
)

// Chaotic returns the chaotic-iterations post-processed mode of base
// (Bahi et al.): the base keystream hardened by an XOR-form CIPRNG
// layer. Parseable/printable as "chaotic(<base>)".
func Chaotic(base Algorithm) Algorithm { return core.Chaotic(base) }

// Algorithms lists all base engines.
var Algorithms = core.Algorithms

// ServedAlgorithms is the default serving/benchmark/certification
// matrix: every base engine plus one chaotic post-processed mode.
var ServedAlgorithms = core.ServedAlgorithms

// ParseAlgorithm maps a name like "mickey", "grain", "aes-ctr",
// "trivium", "xorgens" or "chaotic(<name>)" to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// DefaultLanes is the engine datapath width used when none is chosen:
// the native 64-lane uint64 datapath.
const DefaultLanes = core.DefaultLanes

// SupportedLanes lists the valid engine lane widths (64, 256 and 512).
// The emitted byte stream is identical at every width — lane count only
// trades memory and per-pass batch size for instruction-level
// parallelism.
var SupportedLanes = core.SupportedLanes

// Generator is a deterministic single-engine generator (a wide-lane
// bitsliced cipher bank behind an io.Reader).
type Generator = core.Generator

// New builds a seeded Generator at the default lane width.
func New(alg Algorithm, seed uint64) (*Generator, error) {
	return core.NewGenerator(alg, seed)
}

// NewWithLanes builds a seeded Generator at an explicit lane width
// (0 = DefaultLanes; see SupportedLanes).
func NewWithLanes(alg Algorithm, seed uint64, lanes int) (*Generator, error) {
	return core.NewGeneratorLanes(alg, seed, lanes)
}

// SegmentBytes is the unit of the canonical segment-addressed stream:
// segment j of a (seed, domain) space is SegmentBytes bytes, keyed
// only by its absolute index, so any window is randomly addressable.
const SegmentBytes = core.SegmentBytes

// NewSegmentReader opens the canonical segment stream of (alg, seed,
// domain) at an absolute byte offset — including mid-segment — and
// returns a Generator positioned there. The bytes are a pure function
// of (alg, seed, domain, offset) at every supported lane width, which
// is what makes bsrngd's addressed /stream windows and lease resume
// verifiable offline: any holder of the seed can re-derive a served
// window byte-for-byte.
func NewSegmentReader(alg Algorithm, seed, domain uint64, lanes int, offset uint64) (*Generator, error) {
	return core.NewSegmentReader(alg, seed, domain, lanes, offset)
}

// Stream is the multi-core generator: one bitsliced engine per worker,
// deterministic output for a fixed configuration. Consume it with Read
// (io.Reader), WriteTo (io.WriterTo; copies each staging chunk exactly
// once, into the writer) or NextChunk/Recycle (zero-copy chunk handoff).
type Stream = core.Stream

// StreamConfig tunes the Stream (zero values = all CPUs, 64 KiB staging,
// DefaultLanes-wide engines).
type StreamConfig = core.StreamConfig

// StreamStats is a snapshot of a Stream's throughput and health
// counters (chunks produced, bytes delivered, free-list recycle hits,
// condemned segments, engine reseeds).
type StreamStats = core.StreamStats

// ErrStreamClosed is returned by Stream.Read once Close has been
// observed.
var ErrStreamClosed = core.ErrClosed

// NewStream starts a Stream worker pool; call Close when done.
func NewStream(alg Algorithm, seed uint64, cfg StreamConfig) (*Stream, error) {
	return core.NewStream(alg, seed, cfg)
}

// Fill writes len(dst) deterministic pseudo-random bytes using the given
// number of workers (0 = all CPUs).
func Fill(alg Algorithm, seed uint64, workers int, dst []byte) error {
	return core.Fill(alg, seed, workers, dst)
}

// FillLanes is Fill at an explicit lane width (0 = DefaultLanes). The
// output is identical at every width.
func FillLanes(alg Algorithm, seed uint64, workers, lanes int, dst []byte) error {
	return core.FillLanes(alg, seed, workers, lanes, dst)
}

// HealthConfig sets the cutoffs of the continuous online health tests
// (zero values = the documented defaults; see internal/health).
type HealthConfig = health.Config

// HealthChecker runs SP 800-90B-style (RCT, APT) and FIPS 140-2-style
// (monobit, long-run) continuous tests against 2048-byte segments. Its
// Check method is safe for concurrent use and plugs directly into
// StreamConfig.Health:
//
//	checker := bsrng.NewHealthChecker(bsrng.HealthConfig{})
//	s, _ := bsrng.NewStream(bsrng.MICKEY, 42, bsrng.StreamConfig{Health: checker.Check})
//
// A condemned segment is discarded, the producing engine reseeds with
// fresh material and the slot is regenerated before delivery;
// StreamStats counts the events.
type HealthChecker = health.Checker

// HealthFailure is the error a HealthChecker returns for a condemned
// segment, naming the tripped test and the observed statistic.
type HealthFailure = health.Failure

// NewHealthChecker builds a checker with the given cutoffs.
func NewHealthChecker(cfg HealthConfig) *HealthChecker {
	return health.NewChecker(cfg)
}

// Source64 adapts a Generator to math/rand.Source64.
type Source64 = core.Source64

// NewSource64 builds the math/rand adapter.
func NewSource64(alg Algorithm, seed uint64) (*Source64, error) {
	return core.NewSource64(alg, seed)
}
