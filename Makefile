# Local mirror of .github/workflows/ci.yml — `make verify` runs the
# exact CI steps, so tier-1 verification is one command.

GO ?= go

.PHONY: verify fmt-check vet lint build test race bench-smoke bench bench-compare fuzz fmt serve cover nofaultinject

verify: fmt-check vet lint build test race bench-smoke
	@echo "verify: all checks passed"

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism, failpoint names, metric names,
# atomic/plain mixes, goroutine hygiene, error conventions) — see
# DESIGN.md §9.
lint:
	$(GO) run ./cmd/bsrnglint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The production configuration: the failpoint registry compiled to
# no-ops. Chaos tests skip themselves via faultinject.Available().
nofaultinject:
	$(GO) build -tags bsrng_nofaultinject ./...
	$(GO) test -tags bsrng_nofaultinject ./...

# One iteration of every benchmark, so bench code can never rot.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Measured CPU throughput (alg × lanes × workers) as machine-readable
# JSON. BENCH_MINTIME trades accuracy for runtime.
BENCH_MINTIME ?= 1s
bench:
	$(GO) run ./cmd/benchcpu -out BENCH_cpu.json -mintime $(BENCH_MINTIME)

# Warn-only throughput drift check: remeasure, then diff against the
# committed BENCH_cpu.json. Never fails — benchmark runners are noisy —
# but surfaces per-cell regressions for review (mirrors the CI step).
bench-compare: bench
	git show HEAD:BENCH_cpu.json | $(GO) run ./cmd/benchcompare -base - -new BENCH_cpu.json

# A short pass over every native fuzz target (regression corpora under
# internal/bitslice/testdata/fuzz always run as part of `make test`).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzPackBitsRoundTrip -fuzztime=$(FUZZTIME) ./internal/bitslice/
	$(GO) test -run=NONE -fuzz=FuzzPackWordsRoundTrip -fuzztime=$(FUZZTIME) ./internal/bitslice/
	$(GO) test -run=NONE -fuzz=FuzzTransposeVec -fuzztime=$(FUZZTIME) ./internal/bitslice/

# Whole-repo coverage profile plus hard floors on the packages whose
# correctness the chaos harness leans on (mirrors the CI coverage job).
COVER_FLOOR ?= 85.0
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@for pkg in internal/health internal/faultinject internal/lint; do \
		{ head -n 1 coverage.out; grep "^repro/$$pkg/" coverage.out; } > coverage.pkg.out; \
		pct="$$($(GO) tool cover -func=coverage.pkg.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (p+0 >= floor+0) ? 0 : 1 }' \
			|| { echo "coverage: $$pkg below the $(COVER_FLOOR)% floor" >&2; exit 1; }; \
	done; \
	rm -f coverage.pkg.out

fmt:
	gofmt -w .

serve:
	$(GO) run ./cmd/bsrngd
