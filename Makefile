# Local mirror of .github/workflows/ci.yml — `make verify` runs the
# exact CI steps, so tier-1 verification is one command.

GO ?= go

.PHONY: verify fmt-check vet lint lint-test escape-gate build test race bench-smoke bench bench-compare certify certify-smoke loadtest loadtest-cluster fuzz fuzz-corpus fmt serve cover nofaultinject

verify: fmt-check vet lint lint-test escape-gate build test race certify-smoke loadtest loadtest-cluster bench-smoke
	@echo "verify: all checks passed"

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism, failpoint names, metric names,
# atomic/plain mixes, goroutine hygiene, error conventions) — see
# DESIGN.md §9.
lint:
	$(GO) run ./cmd/bsrnglint ./...

# The analyzer suite's own tests, run without -short so the golden
# fixtures and the module-wide TestRepoIsClean/TestRunCleanTree gates
# can never be skipped (other test runs may use -short).
lint-test:
	$(GO) test ./internal/lint ./cmd/bsrnglint

# Compiler-assisted allocation gate (DESIGN.md §14): every heap-escape
# diagnostic in a hot-path function must carry a reasoned waiver in the
# committed .escapeallow file.
escape-gate:
	$(GO) run ./cmd/escapecheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The production configuration: the failpoint registry compiled to
# no-ops. Chaos tests skip themselves via faultinject.Available().
nofaultinject:
	$(GO) build -tags bsrng_nofaultinject ./...
	$(GO) test -tags bsrng_nofaultinject ./...

# One iteration of every benchmark, so bench code can never rot.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Measured CPU throughput (alg × lanes × workers) as machine-readable
# JSON. BENCH_MINTIME trades accuracy for runtime.
BENCH_MINTIME ?= 1s
bench:
	$(GO) run ./cmd/benchcpu -out BENCH_cpu.json -mintime $(BENCH_MINTIME)

# Gating throughput drift check: remeasure, then diff against the
# committed BENCH_cpu.json. A cell more than BENCH_FAIL_AT slower fails;
# waive intentional baseline changes per-cell via the committed
# .benchallow file (alg/lanes/workers patterns — see `benchcompare -h`).
# BENCH_STRICT cells fail at the warn threshold and ignore .benchallow:
# aes-ctr throughput is the paper's headline claim, so any regression
# there stops the build instead of warning.
BENCH_FAIL_AT ?= 0.25
BENCH_STRICT ?= aes-ctr/*/*
bench-compare: bench
	git show HEAD:BENCH_cpu.json | $(GO) run ./cmd/benchcompare \
		-base - -new BENCH_cpu.json -fail-at $(BENCH_FAIL_AT) \
		-strict '$(BENCH_STRICT)' \
		-allow "$$(cat .benchallow 2>/dev/null || true)"

# Served-path certification smoke cell (mirrors the CI verify step):
# boots a real bsrngd, pulls served segments, cross-checks them against
# the library stream and runs the fast battery. `make certify` is the
# full nightly matrix (see .github/workflows/certify.yml).
certify-smoke:
	$(GO) run ./cmd/certify -short -out CERTIFY.json -md CERTIFY.md

certify:
	$(GO) run ./cmd/certify -out CERTIFY.json -md CERTIFY.md

# Short deterministic load cell (mirrors the CI verify step): boot a
# bsrngd in-process, drive the mixed /bytes + /stream + lease workload
# with library verification, and emit LOAD.json. Scale the same command
# up by hand for a real soak, e.g.
# `go run ./cmd/loadgen -clients 1000 -requests 20 -verify`.
loadtest:
	$(GO) run ./cmd/loadgen -clients 16 -requests 8 -verify -out LOAD.json

# Cluster smoke (mirrors the CI step): boot 3 bsrngd nodes behind the
# in-process consistent-hash router, drive the same verified workload
# through the router with pulsed forward-fault injection, and emit
# LOAD_cluster.json (per-node distribution + router counters). A
# single-algorithm workload keeps the window digest comparable to a
# single-node run of the same flags — the router must not change bytes.
loadtest-cluster:
	$(GO) run ./cmd/loadgen -cluster 3 -cluster-chaos 2 -clients 16 -requests 8 \
		-algs grain -verify -out LOAD_cluster.json

# Blocking replay of every committed fuzz seed corpus (mirrors the CI
# fuzz-corpus job).
fuzz-corpus:
	$(GO) test -run=Fuzz -short ./...

# A short pass over every native fuzz target (regression corpora under
# testdata/fuzz always replay blockingly via `make fuzz-corpus`).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzPackBitsRoundTrip -fuzztime=$(FUZZTIME) ./internal/bitslice/
	$(GO) test -run=NONE -fuzz=FuzzPackWordsRoundTrip -fuzztime=$(FUZZTIME) ./internal/bitslice/
	$(GO) test -run=NONE -fuzz=FuzzTransposeVec -fuzztime=$(FUZZTIME) ./internal/bitslice/
	$(GO) test -run=NONE -fuzz=FuzzSlicedMatchesRef -fuzztime=$(FUZZTIME) ./internal/xorgens/

# Whole-repo coverage profile plus hard floors on the packages whose
# correctness the chaos harness leans on (mirrors the CI coverage job).
COVER_FLOOR ?= 85.0
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@for pkg in internal/health internal/faultinject internal/lint internal/certify internal/loadtest internal/cluster cmd/nist cmd/certify cmd/loadgen cmd/escapecheck; do \
		{ head -n 1 coverage.out; grep "^repro/$$pkg/" coverage.out; } > coverage.pkg.out; \
		pct="$$($(GO) tool cover -func=coverage.pkg.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (p+0 >= floor+0) ? 0 : 1 }' \
			|| { echo "coverage: $$pkg below the $(COVER_FLOOR)% floor" >&2; exit 1; }; \
	done; \
	rm -f coverage.pkg.out

fmt:
	gofmt -w .

serve:
	$(GO) run ./cmd/bsrngd
