# Local mirror of .github/workflows/ci.yml — `make verify` runs the
# exact CI steps, so tier-1 verification is one command.

GO ?= go

.PHONY: verify fmt-check vet build test race bench-smoke fmt serve

verify: fmt-check vet build test race bench-smoke
	@echo "verify: all checks passed"

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/core/... ./internal/server/...

# One iteration of every benchmark, so bench code can never rot.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

serve:
	$(GO) run ./cmd/bsrngd
